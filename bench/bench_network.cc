// Experiment: the real network transport — pipelined RPC over TCP feeding group
// commit.
//
// The paper's server is single-machine with remote clients over RPC; this bench
// measures what the TCP transport adds on top of the engine's group commit: many
// sockets' decoded updates entering the commit pipeline as shared ingest batches, so
// one fsync covers requests from many connections.
//
// Two sweeps, both against a real NetServer on a loopback socket:
//
//   1. Pipelining depth. One connection keeps D updates in flight (sliding window of
//      Submit/Await). D=1 is the paper's serial remote client: every update pays a
//      full device-latency fsync window. Deeper pipelines let the dispatch pool carry
//      queued updates into shared ingest batches, so throughput multiplies while the
//      client still sees every ack only after ITS record is durable.
//   2. Connection count. C channels (up to 1024, quick mode included — the transport
//      must sustain >= 1000 concurrent sockets) each pipeline a few updates; the
//      sweep reports aggregate throughput and physical fsyncs per update.
//
// Device latency is a wall-clock dilation of File::Sync (same idiom as
// bench_shard_scaling: SimDisk charges simulated time but returns instantly in wall
// time), which makes the serial-vs-pipelined ratio a property of commit-path
// batching, not host core count — it holds on a single-core CI runner.
//
// `--enforce` fails the run unless depth-16 pipelining delivers >= 3x the throughput
// of the serial client on the same socket AND the 1024-connection sweep commits at
// < 1 fsync per update.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <thread>

#include "bench/bench_common.h"
#include "src/core/database.h"
#include "src/net/client.h"
#include "src/net/ingest.h"
#include "src/net/server.h"
#include "src/obs/metrics.h"
#include "src/rpc/client.h"

namespace sdb::bench {
namespace {

// Wraps a Vfs so every File::Sync also takes ~`delay` of wall time, standing in for
// device latency (same idiom as bench_shard_scaling / bench_group_commit).
class WallDelaySyncFile final : public File {
 public:
  WallDelaySyncFile(std::unique_ptr<File> inner, std::chrono::microseconds delay)
      : inner_(std::move(inner)), delay_(delay) {}

  Result<Bytes> ReadAt(std::uint64_t offset, std::size_t length) override {
    return inner_->ReadAt(offset, length);
  }
  Status Append(ByteSpan data) override { return inner_->Append(data); }
  Status WriteAt(std::uint64_t offset, ByteSpan data) override {
    return inner_->WriteAt(offset, data);
  }
  Status Truncate(std::uint64_t new_size) override { return inner_->Truncate(new_size); }
  Status Sync() override {
    std::this_thread::sleep_for(delay_);
    return inner_->Sync();
  }
  Result<std::uint64_t> Size() override { return inner_->Size(); }
  Status Close() override { return inner_->Close(); }

 private:
  std::unique_ptr<File> inner_;
  std::chrono::microseconds delay_;
};

class WallDelaySyncFs final : public Vfs {
 public:
  WallDelaySyncFs(Vfs& inner, std::chrono::microseconds delay)
      : inner_(inner), delay_(delay) {}

  Result<std::unique_ptr<File>> Open(std::string_view path, OpenMode mode) override {
    SDB_ASSIGN_OR_RETURN(std::unique_ptr<File> file, inner_.Open(path, mode));
    return std::unique_ptr<File>(new WallDelaySyncFile(std::move(file), delay_));
  }
  Status Delete(std::string_view path) override { return inner_.Delete(path); }
  Status Rename(std::string_view from, std::string_view to) override {
    return inner_.Rename(from, to);
  }
  Result<bool> Exists(std::string_view path) override { return inner_.Exists(path); }
  Result<std::vector<std::string>> List(std::string_view dir) override {
    return inner_.List(dir);
  }
  Status CreateDir(std::string_view path) override { return inner_.CreateDir(path); }
  Status SyncDir(std::string_view dir) override { return inner_.SyncDir(dir); }

 private:
  Vfs& inner_;
  std::chrono::microseconds delay_;
};

struct PutRequest {
  std::string key;
  std::string value;
  SDB_PICKLE_FIELDS(PutRequest, key, value)
};
struct PutAck {
  std::uint8_t applied = 0;
  SDB_PICKLE_FIELDS(PutAck, applied)
};

int DepthUpdates() { return QuickMode() ? 256 : 1024; }
int PutsPerConnection() { return QuickMode() ? 4 : 8; }
std::chrono::microseconds SyncDelay() {
  return std::chrono::microseconds(QuickMode() ? 300 : 1000);
}
std::vector<int> Depths() { return {1, 4, 16, 64}; }
// 1024 stays in quick mode: sustaining >= 1000 concurrent connections is part of the
// transport's contract, not a tuning point.
std::vector<int> ConnectionCounts() {
  return QuickMode() ? std::vector<int>{64, 1024} : std::vector<int>{64, 256, 1024};
}

// A complete server stack: simulated filesystem with wall-dilated syncs, a KV
// database, and a NetServer exposing Kv.Put as a batchable update method.
struct NetFixture {
  std::unique_ptr<SimEnv> env;
  std::unique_ptr<WallDelaySyncFs> vfs;
  std::unique_ptr<BenchKvApp> app;
  std::unique_ptr<Database> db;
  std::unique_ptr<rpc::RpcServer> rpc;
  std::unique_ptr<net::NetServer> server;  // declared last: stops before the rest dies
};

NetFixture StartFixture() {
  NetFixture fixture;
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;
  fixture.env = std::make_unique<SimEnv>(env_options);
  fixture.vfs = std::make_unique<WallDelaySyncFs>(fixture.env->fs(), SyncDelay());
  fixture.app = std::make_unique<BenchKvApp>();

  DatabaseOptions options;
  options.vfs = fixture.vfs.get();
  options.dir = "bench";
  options.clock = &fixture.env->clock();
  auto db = Database::Open(*fixture.app, std::move(options));
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    std::abort();
  }
  fixture.db = std::move(*db);

  fixture.rpc = std::make_unique<rpc::RpcServer>();
  BenchKvApp* app = fixture.app.get();
  rpc::RegisterUpdateMethod<PutRequest, PutAck>(
      *fixture.rpc, "Kv", "Put", std::make_shared<net::DatabaseUpdateSink>(*fixture.db),
      [app](const PutRequest& request) -> Result<rpc::TypedUpdatePlan<PutAck>> {
        return rpc::TypedUpdatePlan<PutAck>{app->PreparePut(request.key, request.value),
                                            PutAck{1}};
      });

  auto server = net::NetServer::Start(*fixture.rpc);
  if (!server.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", server.status().ToString().c_str());
    std::abort();
  }
  fixture.server = std::move(*server);
  return fixture;
}

std::unique_ptr<net::NetChannel> MustConnect(std::uint16_t port) {
  auto channel = net::NetChannel::Connect("127.0.0.1", port);
  if (!channel.ok()) {
    std::fprintf(stderr, "connect failed: %s\n", channel.status().ToString().c_str());
    std::abort();
  }
  return std::move(*channel);
}

std::uint64_t MustSubmit(net::NetChannel& channel, const std::string& key,
                         const std::string& value) {
  auto id = net::SubmitCall<PutRequest>(channel, "Kv", "Put", PutRequest{key, value});
  if (!id.ok()) {
    std::fprintf(stderr, "submit failed: %s\n", id.status().ToString().c_str());
    std::abort();
  }
  return *id;
}

void MustAwait(net::NetChannel& channel, std::uint64_t id) {
  auto ack = net::AwaitCall<PutAck>(channel, id);
  if (!ack.ok() || ack->applied != 1) {
    std::fprintf(stderr, "await failed: %s\n", ack.status().ToString().c_str());
    std::abort();
  }
}

double Percentile(std::vector<double>& sorted_micros, double q) {
  if (sorted_micros.empty()) {
    return 0;
  }
  std::size_t index = static_cast<std::size_t>(
      q * static_cast<double>(sorted_micros.size() - 1) + 0.5);
  return sorted_micros[std::min(index, sorted_micros.size() - 1)];
}

struct DepthResult {
  int depth = 0;
  std::uint64_t updates = 0;
  double updates_per_sec = 0;
  std::uint64_t syncs = 0;
  double fsyncs_per_update = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
};

// One connection, `depth` updates kept in flight via a Submit/Await sliding window.
DepthResult RunDepth(int depth) {
  NetFixture fixture = StartFixture();
  std::unique_ptr<net::NetChannel> channel = MustConnect(fixture.server->port());

  const int total = DepthUpdates();
  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(total));
  std::deque<std::pair<std::uint64_t, std::chrono::steady_clock::time_point>> window;

  auto wall_start = std::chrono::steady_clock::now();
  for (int i = 0; i < total; ++i) {
    std::string key = "k" + std::to_string(i);
    window.emplace_back(MustSubmit(*channel, key, "value-" + key),
                        std::chrono::steady_clock::now());
    if (window.size() >= static_cast<std::size_t>(depth)) {
      auto [id, submitted] = window.front();
      window.pop_front();
      MustAwait(*channel, id);
      latencies.push_back(static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - submitted)
              .count()));
    }
  }
  while (!window.empty()) {
    auto [id, submitted] = window.front();
    window.pop_front();
    MustAwait(*channel, id);
    latencies.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - submitted)
            .count()));
  }
  double wall_micros = static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());

  const DatabaseStats stats = fixture.db->stats();
  std::sort(latencies.begin(), latencies.end());
  DepthResult result;
  result.depth = depth;
  result.updates = stats.updates;
  result.updates_per_sec =
      wall_micros == 0 ? 0 : static_cast<double>(stats.updates) * 1e6 / wall_micros;
  result.syncs = stats.group_commit.syncs;
  result.fsyncs_per_update = stats.group_commit.fsyncs_per_record();
  result.p50_us = Percentile(latencies, 0.50);
  result.p95_us = Percentile(latencies, 0.95);
  result.p99_us = Percentile(latencies, 0.99);
  return result;
}

struct ConnResult {
  int connections = 0;
  std::uint64_t updates = 0;
  double updates_per_sec = 0;
  std::uint64_t syncs = 0;
  double fsyncs_per_update = 0;
  std::uint64_t ingest_batches = 0;
  double updates_per_batch = 0;
};

// C concurrent connections, each pipelining PutsPerConnection() updates. Submits go
// round-robin across the sockets so the dispatch pool sees interleaved traffic from
// every connection — the shape the ingest batcher exists for.
ConnResult RunConnections(int conns) {
  NetFixture fixture = StartFixture();
  std::vector<std::unique_ptr<net::NetChannel>> channels;
  channels.reserve(static_cast<std::size_t>(conns));
  for (int c = 0; c < conns; ++c) {
    channels.push_back(MustConnect(fixture.server->port()));
  }

  const int per_conn = PutsPerConnection();
  std::vector<std::vector<std::uint64_t>> ids(channels.size());
  auto wall_start = std::chrono::steady_clock::now();
  for (int i = 0; i < per_conn; ++i) {
    for (std::size_t c = 0; c < channels.size(); ++c) {
      std::string key = "c" + std::to_string(c) + "-k" + std::to_string(i);
      ids[c].push_back(MustSubmit(*channels[c], key, "value-" + key));
    }
  }
  for (std::size_t c = 0; c < channels.size(); ++c) {
    for (std::uint64_t id : ids[c]) {
      MustAwait(*channels[c], id);
    }
  }
  double wall_micros = static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());

  const DatabaseStats stats = fixture.db->stats();
  const net::NetServer::Stats net_stats = fixture.server->stats();
  if (net_stats.connections_accepted != static_cast<std::uint64_t>(conns)) {
    std::fprintf(stderr, "expected %d connections, server saw %llu\n", conns,
                 static_cast<unsigned long long>(net_stats.connections_accepted));
    std::abort();
  }
  ConnResult result;
  result.connections = conns;
  result.updates = stats.updates;
  result.updates_per_sec =
      wall_micros == 0 ? 0 : static_cast<double>(stats.updates) * 1e6 / wall_micros;
  result.syncs = stats.group_commit.syncs;
  result.fsyncs_per_update = stats.group_commit.fsyncs_per_record();
  result.ingest_batches = net_stats.ingest_batches;
  result.updates_per_batch =
      net_stats.ingest_batches == 0
          ? 0
          : static_cast<double>(net_stats.ingest_updates) /
                static_cast<double>(net_stats.ingest_batches);
  return result;
}

std::string Format(const char* fmt, double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), fmt, v);
  return buffer;
}

int Run(bool enforce) {
  Banner("Network transport: pipelined TCP clients feeding group commit",
         "remote clients over RPC; group commit lets concurrent updates share one "
         "log force (Sections 5 and 7)");
  std::printf("\n%d updates per depth, %d connections peak, %lld us device sync "
              "latency%s\n",
              DepthUpdates(), ConnectionCounts().back(),
              static_cast<long long>(SyncDelay().count()),
              QuickMode() ? " (quick mode)" : "");

  std::printf("\nPipelining depth (one connection, sliding Submit/Await window):\n");
  Table depth_table(
      {"depth", "updates/s", "fsyncs/update", "p50", "p95", "p99"});
  std::vector<DepthResult> depth_results;
  for (int depth : Depths()) {
    DepthResult r = RunDepth(depth);
    depth_results.push_back(r);
    depth_table.AddRow({std::to_string(r.depth), Format("%.0f", r.updates_per_sec),
                        Format("%.3f", r.fsyncs_per_update), Ms(r.p50_us),
                        Ms(r.p95_us), Ms(r.p99_us)});
  }
  depth_table.Print();

  std::printf("\nConnection count (each pipelines %d updates):\n", PutsPerConnection());
  Table conn_table({"connections", "updates", "updates/s", "fsyncs/update",
                    "updates/ingest batch"});
  std::vector<ConnResult> conn_results;
  for (int conns : ConnectionCounts()) {
    ConnResult r = RunConnections(conns);
    conn_results.push_back(r);
    conn_table.AddRow({std::to_string(r.connections), Count(r.updates),
                       Format("%.0f", r.updates_per_sec),
                       Format("%.3f", r.fsyncs_per_update),
                       Format("%.1f", r.updates_per_batch)});
  }
  conn_table.Print();

  const DepthResult* serial = nullptr;
  const DepthResult* deep = nullptr;
  for (const DepthResult& r : depth_results) {
    if (r.depth == 1) {
      serial = &r;
    }
    if (r.depth == 16) {
      deep = &r;
    }
  }
  double ratio = (serial != nullptr && deep != nullptr && serial->updates_per_sec > 0)
                     ? deep->updates_per_sec / serial->updates_per_sec
                     : 0;
  const ConnResult& widest = conn_results.back();
  std::printf("\ndepth 16 vs serial on one socket: %.1fx throughput; %d connections: "
              "%.3f fsyncs/update\n",
              ratio, widest.connections, widest.fsyncs_per_update);

  // The client-side round-trip histogram every NetChannel feeds (docs/OBSERVABILITY.md).
  const obs::HistogramSnapshot rpc_us =
      obs::GlobalRegistry().GetHistogram("net.client.rpc_us").Snapshot();
  std::printf("net.client.rpc_us: count=%llu p50=%s p95=%s p99=%s\n",
              static_cast<unsigned long long>(rpc_us.count), Ms(rpc_us.p50()).c_str(),
              Ms(rpc_us.p95()).c_str(), Ms(rpc_us.p99()).c_str());

  std::string json = "{\n  \"bench\": \"network\",\n  \"depth_rows\": [\n";
  for (std::size_t i = 0; i < depth_results.size(); ++i) {
    const DepthResult& r = depth_results[i];
    json += "    {\"depth\": " + std::to_string(r.depth) +
            ", \"updates\": " + std::to_string(r.updates) +
            ", \"updates_per_sec\": " + Format("%.1f", r.updates_per_sec) +
            ", \"syncs\": " + std::to_string(r.syncs) +
            ", \"fsyncs_per_update\": " + Format("%.4f", r.fsyncs_per_update) +
            ", \"p50_us\": " + Format("%.1f", r.p50_us) +
            ", \"p95_us\": " + Format("%.1f", r.p95_us) +
            ", \"p99_us\": " + Format("%.1f", r.p99_us) + "}";
    json += (i + 1 < depth_results.size()) ? ",\n" : "\n";
  }
  json += "  ],\n  \"connection_rows\": [\n";
  for (std::size_t i = 0; i < conn_results.size(); ++i) {
    const ConnResult& r = conn_results[i];
    json += "    {\"connections\": " + std::to_string(r.connections) +
            ", \"updates\": " + std::to_string(r.updates) +
            ", \"updates_per_sec\": " + Format("%.1f", r.updates_per_sec) +
            ", \"syncs\": " + std::to_string(r.syncs) +
            ", \"fsyncs_per_update\": " + Format("%.4f", r.fsyncs_per_update) +
            ", \"updates_per_ingest_batch\": " + Format("%.2f", r.updates_per_batch) +
            "}";
    json += (i + 1 < conn_results.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"depth16_vs_serial\": " + Format("%.3f", ratio) + ",\n";
  json += "  \"fsyncs_per_update_" + std::to_string(widest.connections) +
          "conns\": " + Format("%.4f", widest.fsyncs_per_update) + ",\n";
  json += "  \"client_rpc_p99_us\": " + Format("%.1f", rpc_us.p99()) + ",\n";
  json += "  \"registry\": " + obs::GlobalRegistry().DumpJson() + "\n}";
  MaybeWriteBenchJson("network", json);

  if (enforce) {
    bool ok = true;
    if (ratio < 3.0) {
      std::printf("enforce: FAIL (depth-16 pipelining %.2fx < 3x serial)\n", ratio);
      ok = false;
    }
    if (widest.fsyncs_per_update >= 1.0) {
      std::printf("enforce: FAIL (fsyncs/update %.3f >= 1 at %d connections)\n",
                  widest.fsyncs_per_update, widest.connections);
      ok = false;
    }
    if (!ok) {
      return 1;
    }
    std::printf("enforce: OK (%.1fx >= 3x, %.3f fsyncs/update < 1 at %d connections)\n",
                ratio, widest.fsyncs_per_update, widest.connections);
  }
  return 0;
}

}  // namespace
}  // namespace sdb::bench

int main(int argc, char** argv) {
  // 1024 channel fds + 1024 server-side fds + epoll/eventfd overhead: lift the
  // soft nofile limit to whatever the hard limit allows before sweeping.
  rlimit limit{};
  if (getrlimit(RLIMIT_NOFILE, &limit) == 0 && limit.rlim_cur < limit.rlim_max) {
    limit.rlim_cur = limit.rlim_max;
    (void)setrlimit(RLIMIT_NOFILE, &limit);
  }
  bool enforce = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--enforce") == 0) {
      enforce = true;
    }
  }
  return sdb::bench::Run(enforce);
}
