// Experiment: automatic cross-thread group commit (paper Section 5).
//
// "If an update rate faster than [~15 updates/s] were needed, the implementation
// could be speeded up considerably, most obviously by ... arranging to record
// multiple commit records in a single log entry." This bench drives K concurrent
// updaters through the engine twice — once with the group-commit pipeline (the
// default) and once with the serial one-fsync-per-update path — and reports
// fsyncs/update and updates/s on both backends:
//
//   - SimFs: the simulated MicroVAX-era disk; elapsed is simulated time, so the win
//     is the charged seek/transfer cost of the syncs themselves. A small wall-clock
//     dilation of each fsync stands in for device latency so threads interleave the
//     way they would against real hardware.
//   - PosixFs: the host file system; elapsed is wall-clock and the fsyncs are real.
//
// Also reports single-threaded update latency pipeline-vs-serial: the pipeline must
// be within noise when there is nothing to coalesce.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "bench/bench_common.h"
#include "src/storage/posix_fs.h"

namespace sdb::bench {
namespace {

// Full run: 240 updates (divisible by every thread count) across {1..16} threads.
// Quick mode shrinks both so CI can smoke the bench in seconds.
int TotalUpdates() { return QuickMode() ? 64 : 240; }
std::vector<int> ThreadCounts() {
  return QuickMode() ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8, 16};
}

// Wraps a Vfs so every File::Sync also takes ~`delay` of wall time. SimDisk charges
// simulated time but returns instantly in wall time, which would leave concurrent
// updaters no window to pile onto a batch; this restores the device-latency window
// without touching the simulated cost accounting.
class WallDelaySyncFile final : public File {
 public:
  WallDelaySyncFile(std::unique_ptr<File> inner, std::chrono::microseconds delay)
      : inner_(std::move(inner)), delay_(delay) {}

  Result<Bytes> ReadAt(std::uint64_t offset, std::size_t length) override {
    return inner_->ReadAt(offset, length);
  }
  Status Append(ByteSpan data) override { return inner_->Append(data); }
  Status WriteAt(std::uint64_t offset, ByteSpan data) override {
    return inner_->WriteAt(offset, data);
  }
  Status Truncate(std::uint64_t new_size) override { return inner_->Truncate(new_size); }
  Status Sync() override {
    std::this_thread::sleep_for(delay_);
    return inner_->Sync();
  }
  Result<std::uint64_t> Size() override { return inner_->Size(); }
  Status Close() override { return inner_->Close(); }

 private:
  std::unique_ptr<File> inner_;
  std::chrono::microseconds delay_;
};

class WallDelaySyncFs final : public Vfs {
 public:
  WallDelaySyncFs(Vfs& inner, std::chrono::microseconds delay)
      : inner_(inner), delay_(delay) {}

  Result<std::unique_ptr<File>> Open(std::string_view path, OpenMode mode) override {
    SDB_ASSIGN_OR_RETURN(std::unique_ptr<File> file, inner_.Open(path, mode));
    return std::unique_ptr<File>(new WallDelaySyncFile(std::move(file), delay_));
  }
  Status Delete(std::string_view path) override { return inner_.Delete(path); }
  Status Rename(std::string_view from, std::string_view to) override {
    return inner_.Rename(from, to);
  }
  Result<bool> Exists(std::string_view path) override { return inner_.Exists(path); }
  Result<std::vector<std::string>> List(std::string_view dir) override {
    return inner_.List(dir);
  }
  Status CreateDir(std::string_view path) override { return inner_.CreateDir(path); }
  Status SyncDir(std::string_view dir) override { return inner_.SyncDir(dir); }

 private:
  Vfs& inner_;
  std::chrono::microseconds delay_;
};

struct RunResult {
  double elapsed_micros = 0;  // simulated (SimFs) or wall (PosixFs)
  std::uint64_t updates = 0;
  std::uint64_t fsyncs = 0;
  double records_per_sync = 0;
  std::string metrics_json;  // the database's registry dump at end of run
};

// Drives `threads` workers, kTotalUpdates updates in total, against a database in
// `dir` on `vfs`. Returns the fsyncs attributable to update commits.
RunResult RunWorkload(Vfs& vfs, Clock& clock, const std::string& dir, int threads,
                      bool pipeline) {
  BenchKvApp app;
  DatabaseOptions options;
  options.vfs = &vfs;
  options.dir = dir;
  options.clock = &clock;
  options.group_commit.enabled = pipeline;

  auto db_or = Database::Open(app, options);
  if (!db_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db_or.status().ToString().c_str());
    std::abort();
  }
  std::unique_ptr<Database> db = std::move(*db_or);
  std::uint64_t fsyncs_before = db->log_writer_stats().commits;

  RunResult result;
  int per_thread = TotalUpdates() / threads;
  Micros sim_start = clock.NowMicros();
  auto wall_start = std::chrono::steady_clock::now();

  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < per_thread; ++i) {
        std::string key = "t" + std::to_string(t) + "-k" + std::to_string(i);
        Status status = db->Update(app.PreparePut(key, "value-" + key));
        if (!status.ok()) {
          std::fprintf(stderr, "update failed: %s\n", status.ToString().c_str());
          std::abort();
        }
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }

  Micros sim_elapsed = clock.NowMicros() - sim_start;
  double wall_elapsed = static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());
  // SimClock stands still under PosixFs (nothing charges it); fall back to wall.
  result.elapsed_micros = sim_elapsed > 0 ? static_cast<double>(sim_elapsed) : wall_elapsed;

  DatabaseStats stats = db->stats();
  result.metrics_json = db->MetricsReportJson();
  result.updates = stats.updates;
  if (pipeline) {
    result.fsyncs = stats.group_commit.syncs;
    result.records_per_sync = stats.group_commit.records_per_sync();
  } else {
    result.fsyncs = db->log_writer_stats().commits - fsyncs_before;
    result.records_per_sync =
        result.fsyncs == 0 ? 0.0
                           : static_cast<double>(result.updates) /
                                 static_cast<double>(result.fsyncs);
  }
  return result;
}

void AddRows(Table& table, const char* backend, int threads, const RunResult& serial,
             const RunResult& pipeline) {
  double serial_rate = static_cast<double>(serial.updates) / (serial.elapsed_micros / 1e6);
  double pipeline_rate =
      static_cast<double>(pipeline.updates) / (pipeline.elapsed_micros / 1e6);
  table.AddRow({backend, Count(threads), "serial", Count(serial.updates),
                Count(serial.fsyncs),
                Num(static_cast<double>(serial.fsyncs) / serial.updates),
                Num(serial_rate), Num(1.0, "x")});
  table.AddRow({backend, Count(threads), "pipeline", Count(pipeline.updates),
                Count(pipeline.fsyncs),
                Num(static_cast<double>(pipeline.fsyncs) / pipeline.updates),
                Num(pipeline_rate), Num(pipeline_rate / serial_rate, "x")});
}

void RunSimBackend(Table& table, double* single_thread_regression,
                   std::string* pipeline_metrics_json) {
  for (int threads : ThreadCounts()) {
    RunResult results[2];
    for (bool pipeline : {false, true}) {
      SimEnvOptions env_options;
      SimEnv env(env_options);
      WallDelaySyncFs fs(env.fs(), std::chrono::microseconds(300));
      results[pipeline ? 1 : 0] =
          RunWorkload(fs, env.clock(), "db", threads, pipeline);
    }
    AddRows(table, "SimFs", threads, results[0], results[1]);
    if (threads == 1 && single_thread_regression != nullptr) {
      // Simulated time is deterministic; one trial per mode is exact.
      *single_thread_regression =
          results[1].elapsed_micros / results[0].elapsed_micros - 1.0;
    }
    if (pipeline_metrics_json != nullptr) {
      // Keep the highest-concurrency pipeline dump: the one with real batching.
      *pipeline_metrics_json = results[1].metrics_json;
    }
  }
}

void RunPosixBackend(Table& table, double* single_thread_regression) {
  namespace fsys = std::filesystem;
  fsys::path root = fsys::current_path() / "bench_group_commit_tmp";
  std::error_code ec;
  fsys::remove_all(root, ec);
  fsys::create_directories(root);

  WallClock wall;
  int run = 0;
  for (int threads : ThreadCounts()) {
    RunResult results[2];
    for (bool pipeline : {false, true}) {
      std::string dir = "run" + std::to_string(run++);
      PosixFs fs(root.string());
      results[pipeline ? 1 : 0] = RunWorkload(fs, wall, dir, threads, pipeline);
    }
    AddRows(table, "PosixFs", threads, results[0], results[1]);
  }

  if (single_thread_regression != nullptr) {
    // Wall-clock fsync latency is noisy (single runs vary tens of percent), so the
    // latency comparison takes the best of several alternating trials per mode.
    const int kTrials = QuickMode() ? 2 : 5;
    double best[2] = {1e18, 1e18};
    for (int trial = 0; trial < kTrials; ++trial) {
      for (bool pipeline : {false, true}) {
        std::string dir = "run" + std::to_string(run++);
        PosixFs fs(root.string());
        RunResult r = RunWorkload(fs, wall, dir, 1, pipeline);
        best[pipeline ? 1 : 0] = std::min(best[pipeline ? 1 : 0], r.elapsed_micros);
      }
    }
    *single_thread_regression = best[1] / best[0] - 1.0;
  }
  fsys::remove_all(root, ec);
}

void Run() {
  Banner("Group commit: K concurrent updaters, coalesced commits vs one fsync each",
         "\"arranging to record multiple commit records in a single log entry\" "
         "(Section 5) lifts the ~15 updates/s ceiling");

  Table table({"backend", "threads", "mode", "updates", "fsyncs", "fsyncs/update",
               "updates/s", "speedup"});
  double sim_regression = 0.0;
  double posix_regression = 0.0;
  std::string pipeline_metrics_json;
  RunSimBackend(table, &sim_regression, &pipeline_metrics_json);
  RunPosixBackend(table, &posix_regression);
  table.Print();

  std::printf(
      "\nSingle-thread latency, pipeline vs serial: %+.1f%% (SimFs, simulated), "
      "%+.1f%% (PosixFs, wall)\n",
      sim_regression * 100.0, posix_regression * 100.0);
  std::printf(
      "SimFs rows: elapsed is simulated time (the charged cost of the disk ops); "
      "PosixFs rows: wall-clock with real fsyncs.\n");

  std::string json = "{\"bench\":\"group_commit\",\"quick\":";
  json += QuickMode() ? "true" : "false";
  json += ",\"single_thread_regression_sim\":" + std::to_string(sim_regression);
  json += ",\"metrics\":" + pipeline_metrics_json + "}";
  MaybeWriteBenchJson("group_commit", json);
}

}  // namespace
}  // namespace sdb::bench

int main() {
  sdb::bench::Run();
  return 0;
}
