// T1 — The Section 3 lock compatibility matrix, demonstrated live.
//
// Paper (Section 3):
//               shared      update      exclusive
//   shared      compatible  compatible  conflict
//   update      compatible  conflict    conflict
//   exclusive   conflict    conflict    conflict
//
// Each cell is probed with two real threads: the second acquisition either completes
// promptly (compatible) or is still blocked after a grace period (conflict). A second
// table demonstrates the paper's availability property: enquiries proceed during a
// checkpoint (update mode) and during an update's disk write, and are excluded only
// during the in-memory apply (exclusive mode).
#include <atomic>
#include <chrono>
#include <thread>

#include "bench/bench_common.h"
#include "src/core/sue_lock.h"

namespace sdb::bench {
namespace {

using namespace std::chrono_literals;

enum class Mode { kShared, kUpdate, kExclusive };

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kShared:
      return "shared";
    case Mode::kUpdate:
      return "update";
    case Mode::kExclusive:
      return "exclusive";
  }
  return "?";
}

// Returns true if `second` can be acquired while `first` is held.
bool Compatible(Mode first, Mode second) {
  SueLock lock;
  // Hold `first`.
  if (first == Mode::kShared) {
    lock.AcquireShared();
  } else {
    lock.AcquireUpdate();
    if (first == Mode::kExclusive) {
      lock.UpgradeToExclusive();
    }
  }

  std::atomic<bool> acquired{false};
  std::thread prober([&] {
    if (second == Mode::kShared) {
      lock.AcquireShared();
      acquired = true;
      lock.ReleaseShared();
    } else {
      lock.AcquireUpdate();
      if (second == Mode::kExclusive) {
        lock.UpgradeToExclusive();
        acquired = true;
        lock.DowngradeToUpdate();
      } else {
        acquired = true;
      }
      lock.ReleaseUpdate();
    }
  });

  auto deadline = std::chrono::steady_clock::now() + 200ms;
  while (!acquired.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  bool result = acquired.load();

  // Release `first` so the prober can finish.
  if (first == Mode::kShared) {
    lock.ReleaseShared();
  } else {
    if (first == Mode::kExclusive) {
      lock.DowngradeToUpdate();
    }
    lock.ReleaseUpdate();
  }
  prober.join();
  return result;
}

void Run() {
  Banner("T1: lock compatibility matrix (Section 3)",
         "shared||shared, shared||update compatible; everything else conflicts; "
         "enquiries are never excluded during disk transfers");

  Table matrix({"held \\ requested", "shared", "update", "exclusive"});
  for (Mode held : {Mode::kShared, Mode::kUpdate, Mode::kExclusive}) {
    std::vector<std::string> row{ModeName(held)};
    for (Mode requested : {Mode::kShared, Mode::kUpdate, Mode::kExclusive}) {
      row.push_back(Compatible(held, requested) ? "compatible" : "conflict");
    }
    matrix.AddRow(std::move(row));
  }
  matrix.Print();

  // Availability demonstration: enquiries keep completing while a checkpoint runs.
  std::printf("\nAvailability during a checkpoint (update lock held ~1 s wall):\n");
  NameServerFixture fixture = BuildNameServer(256 << 10);
  std::atomic<bool> checkpointing{false};
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> enquiries_during{0};

  std::thread checkpointer([&] {
    checkpointing = true;
    // Stretch the wall-clock duration: run several checkpoints back to back.
    for (int i = 0; i < 5; ++i) {
      if (!fixture.server->Checkpoint().ok()) {
        break;
      }
    }
    done = true;
  });
  while (!checkpointing.load()) {
    std::this_thread::sleep_for(1ms);
  }
  const std::string& probe = fixture.paths.front();
  while (!done.load()) {
    if (fixture.server->Lookup(probe).ok()) {
      enquiries_during.fetch_add(1);
    }
  }
  checkpointer.join();

  std::printf("enquiries completed while checkpoints held the update lock: %llu\n",
              static_cast<unsigned long long>(enquiries_during.load()));
  std::printf("(> 0 demonstrates \"updates are prevented while the checkpoint is being "
              "made\" — but enquiries are not)\n");
}

}  // namespace
}  // namespace sdb::bench

int main() {
  sdb::bench::Run();
  return 0;
}
