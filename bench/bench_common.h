// Shared support for the experiment harness: aligned table printing, paper-reference
// annotation, and workload builders (the paper's 1 MB name-server database).
//
// Every binary in bench/ regenerates one table of the paper's evaluation (see
// DESIGN.md Section 4 for the experiment index and EXPERIMENTS.md for recorded
// results). Numbers labelled "sim" are simulated MicroVAX-era milliseconds from the
// calibrated cost model; "wall" numbers are host wall-clock.
#ifndef SMALLDB_BENCH_BENCH_COMMON_H_
#define SMALLDB_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/nameserver/name_server.h"
#include "src/pickle/pickle.h"
#include "src/pickle/traits.h"
#include "src/storage/sim_env.h"

namespace sdb::bench {

// --- run modes & machine-readable output ---

// SDB_BENCH_QUICK=1 shrinks workloads to CI-smoke size (seconds, not minutes).
// Numbers from quick runs are not comparable to EXPERIMENTS.md.
inline bool QuickMode() {
  static const bool quick = std::getenv("SDB_BENCH_QUICK") != nullptr;
  return quick;
}

// When SDB_BENCH_JSON is set, writes `json` to BENCH_<name>.json — in the directory
// the variable names, or the working directory when it is "1". Benches call this at
// the end of a run with their headline numbers plus a metrics registry dump, so CI
// can validate the stage breakdown without scraping tables.
inline void MaybeWriteBenchJson(const std::string& name, const std::string& json) {
  const char* env = std::getenv("SDB_BENCH_JSON");
  if (env == nullptr) {
    return;
  }
  std::string dir(env);
  std::string path = (dir.empty() || dir == "1") ? "" : dir + "/";
  path += "BENCH_" + name + ".json";
  std::ofstream out(path, std::ios::trunc);
  out << json << "\n";
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return;
  }
  std::printf("\nwrote %s\n", path.c_str());
}

// --- table printing ---

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void Print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
      for (const auto& row : rows_) {
        if (c < row.size()) {
          widths[c] = std::max(widths[c], row[c].size());
        }
      }
    }
    PrintRow(headers_, widths);
    std::string rule;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      rule += std::string(widths[c] + 2, '-');
      if (c + 1 < widths.size()) {
        rule += "+";
      }
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) {
      PrintRow(row, widths);
    }
  }

 private:
  static void PrintRow(const std::vector<std::string>& cells,
                       const std::vector<std::size_t>& widths) {
    std::string line;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      std::string cell = c < cells.size() ? cells[c] : "";
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " ";
      if (c + 1 < widths.size()) {
        line += "|";
      }
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline void Banner(const std::string& experiment, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Paper claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

inline std::string Ms(double micros) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.1f ms", micros / 1000.0);
  return buffer;
}

inline std::string Secs(double micros) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.1f s", micros / 1e6);
  return buffer;
}

inline std::string Num(double v, const char* suffix = "") {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.1f%s", v, suffix);
  return buffer;
}

inline std::string Count(std::uint64_t v) { return std::to_string(v); }

// --- workloads ---

struct NameServerFixture {
  std::unique_ptr<SimEnv> env;
  std::unique_ptr<ns::NameServer> server;
  std::vector<std::string> paths;  // every bound name, for enquiry sampling
};

// Opens a name server in a fresh simulated environment and populates it to roughly
// `target_bytes` of in-memory database (the paper's is 1 MB), using three-component
// paths and ~100-byte values. Deterministic from `seed`.
inline NameServerFixture BuildNameServer(std::size_t target_bytes, std::uint64_t seed = 42,
                                         std::size_t value_size = 100) {
  NameServerFixture fixture;
  SimEnvOptions env_options;
  fixture.env = std::make_unique<SimEnv>(env_options);

  ns::NameServerOptions options;
  options.db.vfs = &fixture.env->fs();
  options.db.dir = "ns";
  options.db.clock = &fixture.env->clock();
  options.cost = &fixture.env->cost_model();
  options.replica_id = "bench";
  auto opened = ns::NameServer::Open(options);
  if (!opened.ok()) {
    std::fprintf(stderr, "fixture open failed: %s\n", opened.status().ToString().c_str());
    std::abort();
  }
  fixture.server = std::move(*opened);

  Rng rng(seed);
  int i = 0;
  while (fixture.server->tree().approximate_bytes() < target_bytes) {
    std::string path = "org/dept" + std::to_string(i % 40) + "/member" + std::to_string(i);
    Status status = fixture.server->Set(path, rng.NextString(value_size));
    if (!status.ok()) {
      std::fprintf(stderr, "fixture populate failed: %s\n", status.ToString().c_str());
      std::abort();
    }
    fixture.paths.push_back(std::move(path));
    ++i;
  }
  return fixture;
}

// A plain key-value Application for engine-level benches (mirrors the test app).
struct BenchKvRecord {
  std::string key;
  std::string value;
  SDB_PICKLE_FIELDS(BenchKvRecord, key, value)
};

class BenchKvApp final : public Application {
 public:
  explicit BenchKvApp(const CostModel* cost = nullptr) : cost_(cost) {}

  Status ResetState() override {
    state.clear();
    return OkStatus();
  }
  Result<Bytes> SerializeState() override {
    PickleWriter writer;
    writer.Write(state);
    return std::move(writer).FinishEnvelope("BenchKvApp.state", cost_);
  }
  Status DeserializeState(ByteSpan data) override {
    SDB_ASSIGN_OR_RETURN(PickleReader reader,
                         PickleReader::FromEnvelope(data, "BenchKvApp.state", cost_));
    return reader.Read(state);
  }
  Status ApplyUpdate(ByteSpan record) override {
    SDB_ASSIGN_OR_RETURN(BenchKvRecord update, PickleRead<BenchKvRecord>(record, cost_));
    state.insert_or_assign(std::move(update.key), std::move(update.value));
    return OkStatus();
  }

  std::function<Result<Bytes>()> PreparePut(std::string key, std::string value) {
    return [this, key = std::move(key), value = std::move(value)]() -> Result<Bytes> {
      return PickleWrite(BenchKvRecord{key, value}, cost_);
    };
  }

  std::map<std::string, std::string> state;

 private:
  const CostModel* cost_;
};

}  // namespace sdb::bench

#endif  // SMALLDB_BENCH_BENCH_COMMON_H_
