// E8 — Transient-failure recovery matrix.
//
// Paper (Section 4): "If a transient failure occurs during an update, recovery is
// easy. If the update's log entry was completed, then the update will be completed
// during the normal restart sequence ... If there is no log entry whatever ... the
// behavior is as if the update had not occurred. The implementation can detect a
// partially written log entry ... such a partial log entry is discarded. If a
// transient error occurs while writing a new checkpoint, the implementation restarts
// using the previous checkpoint and log."
//
// Methodology: a scripted workload (updates + one checkpoint) is run repeatedly, with
// a crash injected at every durable disk operation, for each fault flavour. After each
// crash the database is reopened and checked. The same harness then runs against the
// ad-hoc in-place baseline, which the paper calls "quite vulnerable".
#include "bench/bench_common.h"
#include "src/baselines/adhoc_page_db.h"

namespace sdb::bench {
namespace {

struct MatrixCounts {
  std::uint64_t trials = 0;
  std::uint64_t acked_preserved = 0;
  std::uint64_t acked_total = 0;
  std::uint64_t unacked_clean = 0;
  std::uint64_t unacked_total = 0;
  std::uint64_t recovery_failures = 0;
  std::uint64_t corrupt_states = 0;
};

const char* FaultName(FaultAction action) {
  switch (action) {
    case FaultAction::kCrashBefore:
      return "crash before write";
    case FaultAction::kCrashTorn:
      return "torn write";
    case FaultAction::kCrashAfter:
      return "crash after write";
    default:
      return "?";
  }
}

// --- smalldb script ---

struct SmallDbScriptOutcome {
  std::vector<std::string> acknowledged;
  std::vector<std::string> failed;
  std::uint64_t total_ops = 0;
};

SmallDbScriptOutcome RunSmallDbScript(SimEnv& env) {
  SmallDbScriptOutcome outcome;
  BenchKvApp app(nullptr);
  DatabaseOptions options;
  options.vfs = &env.fs();
  options.dir = "db";
  auto db_or = Database::Open(app, options);
  if (!db_or.ok()) {
    return outcome;
  }
  auto db = std::move(*db_or);
  int step = 0;
  auto update = [&](const std::string& key) {
    Status status = db->Update(app.PreparePut(key, "value-" + key));
    (status.ok() ? outcome.acknowledged : outcome.failed).push_back(key);
    return status.ok();
  };
  for (const char* key : {"a", "b", "c"}) {
    if (!update(key)) {
      return outcome;
    }
    ++step;
  }
  if (!db->Checkpoint().ok()) {
    return outcome;
  }
  for (const char* key : {"d", "e", "f"}) {
    if (!update(key)) {
      return outcome;
    }
  }
  outcome.total_ops = env.disk().next_durable_op_sequence() - 1;
  return outcome;
}

MatrixCounts RunSmallDbMatrix(FaultAction action) {
  MatrixCounts counts;
  std::uint64_t total_ops = 0;
  {
    SimEnvOptions env_options;
    env_options.microvax_cost_model = false;
    SimEnv env(env_options);
    total_ops = RunSmallDbScript(env).total_ops;
  }
  for (std::uint64_t crash_at = 1; crash_at <= total_ops; ++crash_at) {
    SimEnvOptions env_options;
    env_options.microvax_cost_model = false;
    SimEnv env(env_options);
    CrashPlan plan(crash_at, action);
    env.disk().SetFaultInjector(plan.AsInjector());
    SmallDbScriptOutcome outcome = RunSmallDbScript(env);
    env.disk().SetFaultInjector(nullptr);
    env.fs().Crash();
    if (!env.fs().Recover().ok()) {
      ++counts.recovery_failures;
      continue;
    }
    ++counts.trials;

    BenchKvApp app(nullptr);
    DatabaseOptions options;
    options.vfs = &env.fs();
    options.dir = "db";
    auto db = Database::Open(app, options);
    if (!db.ok()) {
      ++counts.recovery_failures;
      continue;
    }
    for (const std::string& key : outcome.acknowledged) {
      ++counts.acked_total;
      if (app.state.count(key) != 0 && app.state[key] == "value-" + key) {
        ++counts.acked_preserved;
      }
    }
    for (const std::string& key : outcome.failed) {
      ++counts.unacked_total;
      bool absent = app.state.count(key) == 0;
      bool exact = !absent && app.state[key] == "value-" + key;
      if (absent || exact) {
        ++counts.unacked_clean;
      } else {
        ++counts.corrupt_states;
      }
    }
  }
  return counts;
}

// --- ad-hoc baseline script (multi-page in-place overwrites) ---

MatrixCounts RunAdHocMatrix(FaultAction action) {
  MatrixCounts counts;
  auto run_script = [](SimEnv& env, std::vector<std::string>& acked,
                       std::vector<std::string>& failed) -> std::uint64_t {
    auto db_or = baselines::AdHocPageDb::Open(env.fs(), "db");
    if (!db_or.ok()) {
      return 0;
    }
    auto db = std::move(*db_or);
    (void)env.fs().SyncDir("db");
    for (const char* key : {"a", "b", "c"}) {
      std::string value(900, key[0]);  // multi-slot values: multi-page updates
      Status status = db->Put(key, value);
      (status.ok() ? acked : failed).push_back(key);
      if (!status.ok()) {
        return 0;
      }
    }
    // Overwrites in place.
    for (const char* key : {"a", "b", "c"}) {
      std::string value(900, static_cast<char>(std::toupper(key[0])));
      Status status = db->Put(key, value);
      (status.ok() ? acked : failed).push_back(std::string(key) + "#2");
      if (!status.ok()) {
        return 0;
      }
    }
    return env.disk().next_durable_op_sequence() - 1;
  };

  std::uint64_t total_ops = 0;
  {
    SimEnvOptions env_options;
    env_options.microvax_cost_model = false;
    SimEnv env(env_options);
    std::vector<std::string> acked, failed;
    total_ops = run_script(env, acked, failed);
  }

  for (std::uint64_t crash_at = 1; crash_at <= total_ops; ++crash_at) {
    SimEnvOptions env_options;
    env_options.microvax_cost_model = false;
    SimEnv env(env_options);
    CrashPlan plan(crash_at, action);
    env.disk().SetFaultInjector(plan.AsInjector());
    std::vector<std::string> acked, failed;
    run_script(env, acked, failed);
    env.disk().SetFaultInjector(nullptr);
    env.fs().Crash();
    if (!env.fs().Recover().ok()) {
      ++counts.recovery_failures;
      continue;
    }
    ++counts.trials;

    auto reopened = baselines::AdHocPageDb::Open(env.fs(), "db");
    if (!reopened.ok() || !(*reopened)->Verify().ok()) {
      ++counts.corrupt_states;  // the "restore from backup" case
      continue;
    }
    // Check acknowledged values: first-round 'x' acked then second-round overwrite
    // acked means uppercase expected; verify whichever was last acknowledged.
    for (const std::string& label : acked) {
      bool second = label.size() > 1 && label[1] == '#';
      std::string key = label.substr(0, 1);
      // Only judge the final acknowledged write of each key.
      bool later_ack_exists = false;
      for (const std::string& other : acked) {
        if (other != label && other.substr(0, 1) == key &&
            other.size() > label.size()) {
          later_ack_exists = true;
        }
      }
      if (later_ack_exists) {
        continue;
      }
      ++counts.acked_total;
      Result<std::string> value = (*reopened)->Get(key);
      std::string expected(900, second ? static_cast<char>(std::toupper(key[0])) : key[0]);
      if (value.ok() && *value == expected) {
        ++counts.acked_preserved;
      }
    }
  }
  return counts;
}

std::string Percent(std::uint64_t num, std::uint64_t den) {
  if (den == 0) {
    return "-";
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.0f%% (%llu/%llu)",
                100.0 * static_cast<double>(num) / static_cast<double>(den),
                static_cast<unsigned long long>(num), static_cast<unsigned long long>(den));
  return buffer;
}

void Run() {
  Banner("E8: transient-failure recovery matrix",
         "committed updates survive any crash; uncommitted updates vanish cleanly; a "
         "partial log entry is discarded; an interrupted checkpoint falls back");

  Table table({"system", "fault flavour", "crash points", "acked preserved",
               "unacked clean", "recovery failures", "corrupt states"});
  for (FaultAction action :
       {FaultAction::kCrashBefore, FaultAction::kCrashTorn, FaultAction::kCrashAfter}) {
    MatrixCounts counts = RunSmallDbMatrix(action);
    table.AddRow({"smalldb", FaultName(action), Count(counts.trials),
                  Percent(counts.acked_preserved, counts.acked_total),
                  Percent(counts.unacked_clean, counts.unacked_total),
                  Count(counts.recovery_failures), Count(counts.corrupt_states)});
  }
  for (FaultAction action : {FaultAction::kCrashTorn, FaultAction::kCrashAfter}) {
    MatrixCounts counts = RunAdHocMatrix(action);
    table.AddRow({"ad hoc in-place", FaultName(action), Count(counts.trials),
                  Percent(counts.acked_preserved, counts.acked_total), "-",
                  Count(counts.recovery_failures), Count(counts.corrupt_states)});
  }
  table.Print();
  std::printf("\n(smalldb must show 100%% / 100%% with zero failures; the ad-hoc "
              "baseline's corrupt states are the paper's \"requiring restoration of "
              "the database from a backup copy\")\n");
}

}  // namespace
}  // namespace sdb::bench

int main() {
  sdb::bench::Run();
  return 0;
}
