// E6 — Remote (RPC) operation latency.
//
// Paper (Section 5): "Our round-trip network communication costs are about 8 msecs for
// name server operations, so remote network clients can perform a name server enquiry
// in 13 msecs and an update in 62 msecs elapsed time."
#include "bench/bench_common.h"
#include "src/nameserver/name_service_rpc.h"

namespace sdb::bench {
namespace {

void Run() {
  Banner("E6: remote operation latency over RPC",
         "8 ms round trip => 13 ms remote enquiry, 62 ms remote update");

  NameServerFixture fixture = BuildNameServer(1 << 20);
  SimClock& clock = fixture.env->clock();

  rpc::RpcServer rpc_server(&clock);
  RegisterNameService(rpc_server, *fixture.server);
  rpc::LoopbackChannel channel(rpc_server, rpc::LoopbackOptions{&clock, 8000});
  ns::NameServiceClient client(channel);

  Rng rng(13);

  // Raw round trip (a no-op-ish call): the network share.
  Micros start = clock.NowMicros();
  constexpr int kPings = 50;
  for (int i = 0; i < kPings; ++i) {
    (void)client.Lookup("");  // root lookup: no exploration, pure round trip + dispatch
  }
  double ping = static_cast<double>(clock.NowMicros() - start) / kPings;

  // Remote enquiries on bound names.
  start = clock.NowMicros();
  constexpr int kEnquiries = 100;
  for (int i = 0; i < kEnquiries; ++i) {
    auto value = client.Lookup(fixture.paths[rng.NextBelow(fixture.paths.size())]);
    if (!value.ok()) {
      std::fprintf(stderr, "remote lookup failed: %s\n", value.status().ToString().c_str());
      return;
    }
  }
  double enquiry = static_cast<double>(clock.NowMicros() - start) / kEnquiries;

  // Remote updates at paper record scale.
  start = clock.NowMicros();
  constexpr int kUpdates = 50;
  for (int i = 0; i < kUpdates; ++i) {
    Status status = client.Set("org/dept" + std::to_string(i % 40) + "/remote" +
                                   std::to_string(i),
                               rng.NextString(300));
    if (!status.ok()) {
      std::fprintf(stderr, "remote update failed: %s\n", status.ToString().c_str());
      return;
    }
  }
  double update = static_cast<double>(clock.NowMicros() - start) / kUpdates;

  Table table({"operation", "paper (MicroVAX + net)", "measured (sim)"});
  table.AddRow({"network round trip", "~8 ms", Ms(ping)});
  table.AddRow({"remote enquiry", "13 ms", Ms(enquiry)});
  table.AddRow({"remote update", "62 ms", Ms(update)});
  table.Print();

  std::printf("\nServer-side per-method metrics (handler time excludes the network):\n");
  Table metrics_table({"method", "calls", "errors", "mean handler time (sim)"});
  for (const rpc::MethodMetrics& metrics : rpc_server.metrics()) {
    metrics_table.AddRow(
        {metrics.method, Count(metrics.calls), Count(metrics.errors),
         Ms(static_cast<double>(metrics.handler_micros) /
            static_cast<double>(metrics.calls ? metrics.calls : 1))});
  }
  metrics_table.Print();
}

}  // namespace
}  // namespace sdb::bench

int main() {
  sdb::bench::Run();
  return 0;
}
