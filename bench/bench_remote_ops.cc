// E6 — Remote (RPC) operation latency.
//
// Paper (Section 5): "Our round-trip network communication costs are about 8 msecs for
// name server operations, so remote network clients can perform a name server enquiry
// in 13 msecs and an update in 62 msecs elapsed time."
//
// Default transport is the in-process loopback channel with the paper's simulated
// 8 ms round trip. `--transport=tcp` runs the same workload through the real TCP
// stack (NetServer + NetChannel on a loopback socket) with the same 8 ms simulated
// charge per round trip, so the paper's arithmetic holds while real frames cross a
// real connection — a fidelity check that the transport swap is behavior-neutral.
#include <cstring>

#include "bench/bench_common.h"
#include "src/nameserver/name_service_rpc.h"
#include "src/net/client.h"
#include "src/net/ingest.h"
#include "src/net/server.h"

namespace sdb::bench {
namespace {

void Run(bool tcp) {
  Banner("E6: remote operation latency over RPC",
         "8 ms round trip => 13 ms remote enquiry, 62 ms remote update");
  std::printf("\ntransport: %s\n", tcp ? "tcp (real sockets, simulated 8 ms charge)"
                                       : "loopback (simulated)");

  NameServerFixture fixture = BuildNameServer(1 << 20);
  SimClock& clock = fixture.env->clock();

  rpc::RpcServer rpc_server(&clock);
  std::unique_ptr<net::NetServer> net_server;
  std::unique_ptr<net::NetChannel> net_channel;
  std::unique_ptr<rpc::LoopbackChannel> loopback;
  rpc::Channel* channel = nullptr;
  if (tcp) {
    // Register with the batch-ingest sink so updates arriving over TCP take the
    // same CommitMany path a production transport would.
    RegisterNameService(rpc_server, *fixture.server,
                        std::make_shared<net::DatabaseUpdateSink>(
                            fixture.server->database()));
    auto started = net::NetServer::Start(rpc_server);
    if (!started.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   started.status().ToString().c_str());
      return;
    }
    net_server = std::move(*started);
    net::NetChannelOptions options;
    options.charge_clock = &clock;
    options.charge_micros = 8000;
    auto connected = net::NetChannel::Connect("127.0.0.1", net_server->port(), options);
    if (!connected.ok()) {
      std::fprintf(stderr, "connect failed: %s\n",
                   connected.status().ToString().c_str());
      return;
    }
    net_channel = std::move(*connected);
    channel = net_channel.get();
  } else {
    RegisterNameService(rpc_server, *fixture.server);
    loopback = std::make_unique<rpc::LoopbackChannel>(rpc_server,
                                                      rpc::LoopbackOptions{&clock, 8000});
    channel = loopback.get();
  }
  ns::NameServiceClient client(*channel);

  Rng rng(13);

  // Raw round trip (a no-op-ish call): the network share.
  Micros start = clock.NowMicros();
  constexpr int kPings = 50;
  for (int i = 0; i < kPings; ++i) {
    (void)client.Lookup("");  // root lookup: no exploration, pure round trip + dispatch
  }
  double ping = static_cast<double>(clock.NowMicros() - start) / kPings;

  // Remote enquiries on bound names.
  start = clock.NowMicros();
  constexpr int kEnquiries = 100;
  for (int i = 0; i < kEnquiries; ++i) {
    auto value = client.Lookup(fixture.paths[rng.NextBelow(fixture.paths.size())]);
    if (!value.ok()) {
      std::fprintf(stderr, "remote lookup failed: %s\n", value.status().ToString().c_str());
      return;
    }
  }
  double enquiry = static_cast<double>(clock.NowMicros() - start) / kEnquiries;

  // Remote updates at paper record scale.
  start = clock.NowMicros();
  constexpr int kUpdates = 50;
  for (int i = 0; i < kUpdates; ++i) {
    Status status = client.Set("org/dept" + std::to_string(i % 40) + "/remote" +
                                   std::to_string(i),
                               rng.NextString(300));
    if (!status.ok()) {
      std::fprintf(stderr, "remote update failed: %s\n", status.ToString().c_str());
      return;
    }
  }
  double update = static_cast<double>(clock.NowMicros() - start) / kUpdates;

  Table table({"operation", "paper (MicroVAX + net)", "measured (sim)"});
  table.AddRow({"network round trip", "~8 ms", Ms(ping)});
  table.AddRow({"remote enquiry", "13 ms", Ms(enquiry)});
  table.AddRow({"remote update", "62 ms", Ms(update)});
  table.Print();

  std::printf("\nServer-side per-method metrics (handler time excludes the network):\n");
  Table metrics_table({"method", "calls", "errors", "mean handler time (sim)"});
  for (const rpc::MethodMetrics& metrics : rpc_server.metrics()) {
    metrics_table.AddRow(
        {metrics.method, Count(metrics.calls), Count(metrics.errors),
         Ms(static_cast<double>(metrics.handler_micros) /
            static_cast<double>(metrics.calls ? metrics.calls : 1))});
  }
  metrics_table.Print();
}

}  // namespace
}  // namespace sdb::bench

int main(int argc, char** argv) {
  bool tcp = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--transport=tcp") == 0) {
      tcp = true;
    }
  }
  sdb::bench::Run(tcp);
  return 0;
}
