// E10 — Scaling with database size, and the Section 7 partitioning suggestion.
//
// Paper (Section 7): "As [the database] becomes larger, checkpoints take longer
// (thereby restricting the acceptable frequency of updates) and restarts take longer.
// However, it seems likely that many larger databases ... could be handled by
// considering them as multiple separate databases for the purpose of writing
// checkpoints."
#include "bench/bench_common.h"
#include "src/core/partitioned.h"
#include "src/core/shared_log.h"

namespace sdb::bench {
namespace {

void SizeSweep() {
  Table table({"db size", "checkpoint (sim)", "cold restart (sim)", "checkpoint bytes"});
  for (std::size_t kb : {128u, 256u, 512u, 1024u, 2048u, 4096u}) {
    NameServerFixture fixture = BuildNameServer(kb * 1024);
    SimClock& clock = fixture.env->clock();

    Micros start = clock.NowMicros();
    if (!fixture.server->Checkpoint().ok()) {
      return;
    }
    Micros checkpoint = clock.NowMicros() - start;
    std::string checkpoint_path =
        "ns/checkpoint" + std::to_string(fixture.server->database().current_version());
    auto file = *fixture.env->fs().Open(checkpoint_path, OpenMode::kRead);
    std::uint64_t checkpoint_bytes = *file->Size();

    fixture.server.reset();
    fixture.env->fs().Crash();
    start = clock.NowMicros();
    if (!fixture.env->fs().Recover().ok()) {
      return;
    }
    ns::NameServerOptions options;
    options.db.vfs = &fixture.env->fs();
    options.db.dir = "ns";
    options.db.clock = &clock;
    options.cost = &fixture.env->cost_model();
    options.replica_id = "bench";
    auto reopened = ns::NameServer::Open(options);
    if (!reopened.ok()) {
      return;
    }
    Micros restart = clock.NowMicros() - start;

    table.AddRow({std::to_string(kb) + " KB", Secs(static_cast<double>(checkpoint)),
                  Secs(static_cast<double>(restart)),
                  std::to_string(checkpoint_bytes / 1024) + " KB"});
  }
  table.Print();
}

void PartitioningComparison() {
  std::printf("\nSection 7 extension: one 2 MB database vs 4 partitions of 512 KB\n");
  Table table({"configuration", "total checkpoint work (sim)",
               "max single stall (sim)", "notes"});

  // Monolithic.
  {
    NameServerFixture fixture = BuildNameServer(2 << 20);
    SimClock& clock = fixture.env->clock();
    Micros start = clock.NowMicros();
    if (!fixture.server->Checkpoint().ok()) {
      return;
    }
    Micros elapsed = clock.NowMicros() - start;
    table.AddRow({"monolithic 2 MB", Secs(static_cast<double>(elapsed)),
                  Secs(static_cast<double>(elapsed)), "updates stalled for the whole time"});
  }

  // Partitioned: four engine instances, checkpointed one at a time.
  {
    SimEnvOptions env_options;
    SimEnv env(env_options);
    std::vector<std::unique_ptr<BenchKvApp>> apps;
    std::vector<PartitionedDatabase::PartitionSpec> specs;
    for (int i = 0; i < 4; ++i) {
      apps.push_back(std::make_unique<BenchKvApp>(&env.cost_model()));
      specs.push_back({apps.back().get(), "part" + std::to_string(i)});
    }
    DatabaseOptions base;
    base.vfs = &env.fs();
    base.clock = &env.clock();
    auto db_or = PartitionedDatabase::Open(std::move(specs), base);
    if (!db_or.ok()) {
      return;
    }
    auto db = std::move(*db_or);
    // ~512 KB of 100-byte values per partition.
    Rng rng(29);
    for (int p = 0; p < 4; ++p) {
      for (int i = 0; i < 2600; ++i) {
        if (!db->Update(p, apps[p]->PreparePut("key" + std::to_string(i),
                                               rng.NextString(100)))
                 .ok()) {
          return;
        }
      }
    }
    Micros total = 0;
    Micros max_stall = 0;
    for (std::size_t p = 0; p < 4; ++p) {
      Micros start = env.clock().NowMicros();
      if (!db->partition(p).Checkpoint().ok()) {
        return;
      }
      Micros stall = env.clock().NowMicros() - start;
      total += stall;
      max_stall = std::max(max_stall, stall);
    }
    table.AddRow({"4 partitions x ~512 KB", Secs(static_cast<double>(total)),
                  Secs(static_cast<double>(max_stall)),
                  "only one partition stalled at a time"});
  }

  // The paper's other option: "a single log file with more complicated rules for
  // flushing the log".
  {
    SimEnvOptions env_options;
    SimEnv env(env_options);
    std::vector<std::unique_ptr<BenchKvApp>> apps;
    std::vector<Application*> raw;
    for (int i = 0; i < 4; ++i) {
      apps.push_back(std::make_unique<BenchKvApp>(&env.cost_model()));
      raw.push_back(apps.back().get());
    }
    SharedLogOptions options;
    options.vfs = &env.fs();
    options.dir = "shared";
    options.clock = &env.clock();
    auto db_or = SharedLogDatabase::Open(raw, options);
    if (!db_or.ok()) {
      return;
    }
    auto db = std::move(*db_or);
    Rng rng(29);
    for (int p = 0; p < 4; ++p) {
      for (int i = 0; i < 2600; ++i) {
        if (!db->Update(static_cast<std::size_t>(p),
                        apps[static_cast<std::size_t>(p)]->PreparePut(
                            "key" + std::to_string(i), rng.NextString(100)))
                 .ok()) {
          return;
        }
      }
    }
    Micros total = 0;
    Micros max_stall = 0;
    for (std::size_t p = 0; p < 4; ++p) {
      Micros start = env.clock().NowMicros();
      if (!db->Checkpoint(p).ok()) {
        return;
      }
      Micros stall = env.clock().NowMicros() - start;
      total += stall;
      max_stall = std::max(max_stall, stall);
    }
    std::uint64_t before_rotation = db->log_bytes();
    bool rotated = *db->MaybeRotateLog();
    char note[128];
    std::snprintf(note, sizeof(note),
                  "one fsync stream; %s %zu KB of shared log after all 4 checkpointed",
                  rotated ? "rotation reclaimed" : "could not reclaim",
                  static_cast<std::size_t>(before_rotation) / 1024);
    table.AddRow({"4 partitions, ONE shared log", Secs(static_cast<double>(total)),
                  Secs(static_cast<double>(max_stall)), note});
  }
  table.Print();
}

void Run() {
  Banner("E10: scaling with database size + partitioning",
         "checkpoint and restart times grow with size; splitting into sub-databases "
         "bounds the per-checkpoint stall");
  SizeSweep();
  PartitioningComparison();
}

}  // namespace
}  // namespace sdb::bench

int main() {
  sdb::bench::Run();
  return 0;
}
