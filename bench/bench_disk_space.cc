// E13 — Disk-space accounting and the log-padding ablation.
//
// Paper (Section 5): "This design does require extra disk space. The total
// requirement consists of the virtual memory image ..., two copies of the checkpoint
// and the log file. In addition, one extra checkpoint and log file can be retained for
// recovery from hard errors. This is more than would be required by the other
// techniques. However, ... the total amount of disk space involved is quite small."
#include "bench/bench_common.h"
#include "src/core/log_format.h"

namespace sdb::bench {
namespace {

std::uint64_t FileSize(SimEnv& env, const std::string& path) {
  auto file = env.fs().Open(path, OpenMode::kRead);
  if (!file.ok()) {
    return 0;
  }
  Result<std::uint64_t> size = (*file)->Size();
  return size.ok() ? *size : 0;
}

void SpaceAccounting() {
  Table table({"configuration", "in-memory image", "checkpoints on disk", "logs on disk",
               "peak during switch", "note"});

  for (bool keep_previous : {false, true}) {
    NameServerFixture fixture;
    fixture.env = std::make_unique<SimEnv>(SimEnvOptions{});
    ns::NameServerOptions options;
    options.db.vfs = &fixture.env->fs();
    options.db.dir = "ns";
    options.db.clock = &fixture.env->clock();
    options.cost = &fixture.env->cost_model();
    options.db.keep_previous_checkpoint = keep_previous;
    options.replica_id = "bench";
    fixture.server = *ns::NameServer::Open(options);
    {
      Rng populate_rng(42);
      for (int i = 0; i < 1200; ++i) {
        (void)fixture.server->Set(
            "org/dept" + std::to_string(i % 40) + "/member" + std::to_string(i),
            populate_rng.NextString(100));
      }
    }
    ns::NameServer& target = *fixture.server;
    Rng rng(77);
    (void)target.Checkpoint();
    for (int i = 0; i < 100; ++i) {
      (void)target.Set("org/dept0/extra" + std::to_string(i), rng.NextString(100));
    }
    // Peak during the next switch: old checkpoint + new checkpoint + both logs.
    std::uint64_t before_bytes = 0;
    {
      auto names = *fixture.env->fs().List("ns");
      for (const std::string& name : names) {
        before_bytes += FileSize(*fixture.env, "ns/" + name);
      }
    }
    (void)target.Checkpoint();
    std::uint64_t checkpoint_bytes = 0;
    std::uint64_t log_bytes = 0;
    std::uint64_t total_after = 0;
    {
      auto names = *fixture.env->fs().List("ns");
      for (const std::string& name : names) {
        std::uint64_t size = FileSize(*fixture.env, "ns/" + name);
        total_after += size;
        if (name.rfind("checkpoint", 0) == 0) {
          checkpoint_bytes += size;
        }
        if (name.rfind("logfile", 0) == 0) {
          log_bytes += size;
        }
      }
    }
    // Peak: everything before the switch plus the new checkpoint (written before the
    // old is deleted).
    std::uint64_t peak = before_bytes + checkpoint_bytes;
    char in_memory[32];
    std::snprintf(in_memory, sizeof(in_memory), "%zu KB",
                  target.tree().approximate_bytes() / 1024);
    table.AddRow({keep_previous ? "with previous generation retained" : "default",
                  in_memory, std::to_string(checkpoint_bytes / 1024) + " KB",
                  std::to_string(log_bytes / 1024) + " KB",
                  std::to_string(peak / 1024) + " KB",
                  keep_previous ? "hard-error fallback available" : "two copies at switch only"});
  }
  table.Print();
}

void PaddingAblation() {
  std::printf("\nAblation: page-aligned commits (torn-tail isolation) vs unpadded\n");
  Table table({"log padding", "log bytes for 100 updates", "bytes/update",
               "what a torn tail can damage"});
  for (bool pad : {true, false}) {
    SimEnvOptions env_options;
    env_options.microvax_cost_model = false;
    SimEnv env(env_options);
    BenchKvApp app(nullptr);
    DatabaseOptions options;
    options.vfs = &env.fs();
    options.dir = "db";
    options.log_writer.pad_to_page_boundary = pad;
    auto db = *Database::Open(app, options);
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
      (void)db->Update(app.PreparePut("key" + std::to_string(i), rng.NextString(60)));
    }
    table.AddRow({pad ? "page-aligned (default)" : "unpadded",
                  std::to_string(db->log_bytes()) + " B", Num(db->log_bytes() / 100.0, " B"),
                  pad ? "only the uncommitted entry"
                      : "may destroy the previous COMMITTED entry sharing the page"});
  }
  table.Print();
  std::printf("(the padding is what makes the crash matrix come out 100%%: a torn "
              "rewrite of a shared tail page would otherwise lose acknowledged data)\n");
}

void Run() {
  Banner("E13: disk-space accounting (Section 5) + log padding ablation",
         "two copies of the checkpoint during a switch, plus the log; optionally one "
         "extra generation for hard errors — \"quite small\" for these databases");
  SpaceAccounting();
  PaddingAblation();
}

}  // namespace
}  // namespace sdb::bench

int main() {
  sdb::bench::Run();
  return 0;
}
