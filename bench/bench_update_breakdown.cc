// E2 — Update cost breakdown and the pickle-overhead ablation.
//
// Paper (Section 5): update = 54 ms: exploring (6 ms) + modifying (6 ms) the virtual
// memory structure, converting the parameters into a log entry (22 ms of PickleWrite),
// and the disk write of the log entry (20 ms). Section 6: "about 40% of the cost of an
// update is in PickleWrite".
#include <chrono>

#include "bench/bench_common.h"
#include "src/nameserver/updates.h"

namespace sdb::bench {
namespace {

// A hand-written marshaller for NameServerUpdate: what the paper contrasts pickles
// against ("we are paying a little in our performance for using such a general
// package"). Measured in host wall-clock against the generic pickler.
Bytes HandMarshal(const ns::NameServerUpdate& update) {
  ByteWriter out;
  out.PutU8(update.kind);
  out.PutLengthPrefixed(update.path);
  out.PutLengthPrefixed(update.value);
  out.PutU64(update.lamport);
  out.PutLengthPrefixed(update.origin);
  out.PutU64(update.sequence);
  return std::move(out).Take();
}

void Run() {
  Banner("E2: update cost breakdown",
         "explore 6 ms + modify 6 ms + pickle 22 ms + disk write 20 ms = 54 ms; "
         "PickleWrite is ~40% of an update");

  NameServerFixture fixture = BuildNameServer(1 << 20);
  SimClock& clock = fixture.env->clock();
  const CostModel& cost = fixture.env->cost_model();

  // Phase-by-phase simulation of one paper-scale update, measured independently so the
  // pickle and exploration shares are visible (the engine's own breakdown merges
  // explore+pickle into 'prepare').
  Rng rng(3);
  std::string path = "org/dept9/member-breakdown";
  std::string value = rng.NextString(300);

  // (a) explore: walk the three-component path.
  Micros t0 = clock.NowMicros();
  (void)fixture.server->tree().Exists(path);
  Micros explore = clock.NowMicros() - t0;

  // (b) pickle: convert the update parameters to a log record.
  ns::NameServerUpdate update;
  update.kind = static_cast<std::uint8_t>(ns::UpdateKind::kSet);
  update.path = path;
  update.value = value;
  update.lamport = 1;
  update.origin = "bench";
  update.sequence = 1;
  t0 = clock.NowMicros();
  Bytes record = ns::EncodeUpdate(update, &cost);
  Micros pickle = clock.NowMicros() - t0;

  // (c..d) the full engine update, whose breakdown separates log write and apply.
  Status status = fixture.server->Set(path, value);
  if (!status.ok()) {
    std::fprintf(stderr, "update failed: %s\n", status.ToString().c_str());
    return;
  }
  UpdateBreakdown breakdown = fixture.server->database().stats().last_update;

  double total = static_cast<double>(breakdown.total_micros);
  Table table({"phase", "paper (MicroVAX)", "measured (sim)", "share of update"});
  table.AddRow({"explore virtual memory", "6 ms", Ms(static_cast<double>(explore)), "-"});
  table.AddRow({"pickle update parameters", "22 ms", Ms(static_cast<double>(pickle)),
                Num(100.0 * static_cast<double>(pickle) / total, "%")});
  table.AddRow({"log entry disk write", "20 ms", Ms(static_cast<double>(breakdown.log_micros)),
                Num(100.0 * static_cast<double>(breakdown.log_micros) / total, "%")});
  table.AddRow({"apply to virtual memory", "6 ms",
                Ms(static_cast<double>(breakdown.apply_micros)), "-"});
  table.AddRow({"total update", "54 ms", Ms(total), "100%"});
  table.Print();

  std::printf("\nrecord size: %zu bytes (the paper's 22 ms / 52 us-per-byte implies ~420)\n",
              record.size());

  // Ablation: generic pickles vs a hand-written marshaller, host wall-clock. The paper
  // pays ~40%% of each update for the generality of pickles; the same trade exists on
  // modern hardware, just at nanosecond scale.
  constexpr int kReps = 200'000;
  auto wall = [&](auto&& fn) {
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kReps; ++i) {
      fn();
    }
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start)
               .count() /
           static_cast<double>(kReps);
  };
  volatile std::size_t sink = 0;
  double generic_ns = wall([&] { sink = PickleWrite(update).size(); });
  double hand_ns = wall([&] { sink = HandMarshal(update).size(); });
  (void)sink;

  std::printf("\nAblation: generic pickle vs hand-coded marshaller (host wall-clock)\n");
  Table ablation({"marshaller", "ns/record", "relative"});
  ablation.AddRow({"generic PickleWrite (runtime framing + CRC)", Num(generic_ns, " ns"),
                   Num(generic_ns / hand_ns, "x")});
  ablation.AddRow({"hand-coded field writer", Num(hand_ns, " ns"), "1.0x"});
  ablation.Print();
  std::printf("(the paper kept the generic package: \"we benefit greatly in the "
              "simplicity of our name server implementation\")\n");
}

}  // namespace
}  // namespace sdb::bench

int main() {
  sdb::bench::Run();
  return 0;
}
