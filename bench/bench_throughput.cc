// E5 — Sustained update throughput and the group-commit extension.
//
// Paper (Section 1): target burst rate up to 10 transactions/second. Section 5: "The
// name server can maintain a short term update rate of more than 15 transactions per
// second, unless it decides to make a new checkpoint." Section 5 also notes that the
// only faster schemes "involve arranging to record multiple commit records in a single
// log entry" — group commit, measured here as an ablation.
//
// This binary also uses google-benchmark for host wall-clock engine throughput (the
// simulated numbers are the paper-comparable ones).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace sdb::bench {
namespace {

void SimulatedThroughputTable() {
  Banner("E5: sustained update throughput",
         "burst target 10 tps; measured > 15 tps short-term on the MicroVAX");

  Table table({"configuration", "updates", "sim elapsed", "sim updates/s", "paper"});

  // Plain single-commit updates.
  {
    NameServerFixture fixture = BuildNameServer(1 << 20);
    SimClock& clock = fixture.env->clock();
    Rng rng(5);
    constexpr int kUpdates = 200;
    Micros start = clock.NowMicros();
    for (int i = 0; i < kUpdates; ++i) {
      if (!fixture.server
               ->Set("org/dept" + std::to_string(i % 40) + "/tp" + std::to_string(i),
                     rng.NextString(300))
               .ok()) {
        return;
      }
    }
    double seconds = static_cast<double>(clock.NowMicros() - start) / 1e6;
    table.AddRow({"one commit per update", Count(kUpdates), Secs(seconds * 1e6),
                  Num(kUpdates / seconds, " tps"), "> 15 tps"});
  }

  // Group commit: k updates per log disk write.
  for (std::size_t batch : {2u, 4u, 8u}) {
    SimEnvOptions env_options;
    SimEnv env(env_options);
    BenchKvApp app(&env.cost_model());
    DatabaseOptions options;
    options.vfs = &env.fs();
    options.dir = "db";
    options.clock = &env.clock();
    auto db = *Database::Open(app, options);
    Rng rng(5);
    constexpr int kUpdates = 200;
    Micros start = env.clock().NowMicros();
    for (int i = 0; i < kUpdates; i += static_cast<int>(batch)) {
      std::vector<std::function<Result<Bytes>()>> prepares;
      for (std::size_t j = 0; j < batch; ++j) {
        prepares.push_back(
            app.PreparePut("key" + std::to_string(i + static_cast<int>(j)),
                           rng.NextString(300)));
      }
      if (!db->UpdateBatch(prepares).ok()) {
        return;
      }
    }
    double seconds = static_cast<double>(env.clock().NowMicros() - start) / 1e6;
    table.AddRow({"group commit x" + std::to_string(batch), Count(kUpdates),
                  Secs(seconds * 1e6), Num(kUpdates / seconds, " tps"),
                  "\"equally applicable\" (S5)"});
  }
  table.Print();

  // Mixed workloads: the paper's target is enquiry-heavy traffic with a moderate
  // update rate; throughput rises steeply as the write fraction falls because
  // enquiries never touch the disk.
  {
    std::printf("\nMixed enquiry/update workloads (1 MB database):\n");
    Table mixed({"write fraction", "ops", "sim elapsed", "sim ops/s", "mean op latency"});
    for (double write_fraction : {1.0, 0.5, 0.1, 0.01}) {
      NameServerFixture fixture = BuildNameServer(1 << 20);
      SimClock& clock = fixture.env->clock();
      Rng rng(5);
      constexpr int kOps = 400;
      Micros start = clock.NowMicros();
      for (int i = 0; i < kOps; ++i) {
        if (rng.NextDouble() < write_fraction) {
          if (!fixture.server
                   ->Set("org/dept" + std::to_string(i % 40) + "/mx" + std::to_string(i),
                         rng.NextString(300))
                   .ok()) {
            return;
          }
        } else {
          (void)fixture.server->Lookup(
              fixture.paths[rng.NextBelow(fixture.paths.size())]);
        }
      }
      double elapsed = static_cast<double>(clock.NowMicros() - start);
      char label[32];
      std::snprintf(label, sizeof(label), "%.0f%% writes", write_fraction * 100);
      mixed.AddRow({label, Count(kOps), Secs(elapsed), Num(kOps / (elapsed / 1e6), " ops/s"),
                    Ms(elapsed / kOps)});
    }
    mixed.Print();
  }

  // Checkpoint interference: throughput over a window containing a checkpoint.
  {
    NameServerFixture fixture = BuildNameServer(1 << 20);
    SimClock& clock = fixture.env->clock();
    Rng rng(5);
    Micros start = clock.NowMicros();
    constexpr int kUpdates = 100;
    for (int i = 0; i < kUpdates; ++i) {
      if (i == kUpdates / 2) {
        if (!fixture.server->Checkpoint().ok()) {
          return;
        }
      }
      if (!fixture.server
               ->Set("org/dept0/ck" + std::to_string(i), rng.NextString(300))
               .ok()) {
        return;
      }
    }
    double seconds = static_cast<double>(clock.NowMicros() - start) / 1e6;
    std::printf("\nwith one checkpoint mid-window: %d updates in %s sim => %.1f tps "
                "(\"unless it decides to make a new checkpoint\")\n",
                kUpdates, Secs(seconds * 1e6).c_str(), kUpdates / seconds);
  }
}

// Host wall-clock engine throughput (google-benchmark): how fast the engine itself
// runs when the disk is simulated but uncharged.
void BM_EngineUpdate(benchmark::State& state) {
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;
  SimEnv env(env_options);
  BenchKvApp app(nullptr);
  DatabaseOptions options;
  options.vfs = &env.fs();
  options.dir = "db";
  auto db = *Database::Open(app, options);
  Rng rng(1);
  int i = 0;
  for (auto _ : state) {
    Status status = db->Update(app.PreparePut("key" + std::to_string(i++ % 1000),
                                              "value-payload-of-modest-size"));
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineUpdate);

void BM_EngineEnquiry(benchmark::State& state) {
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;
  SimEnv env(env_options);
  BenchKvApp app(nullptr);
  DatabaseOptions options;
  options.vfs = &env.fs();
  options.dir = "db";
  auto db = *Database::Open(app, options);
  (void)db->Update(app.PreparePut("key", "value"));
  for (auto _ : state) {
    Status status = db->Enquire([&app] {
      benchmark::DoNotOptimize(app.state.find("key"));
      return OkStatus();
    });
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineEnquiry);

}  // namespace
}  // namespace sdb::bench

int main(int argc, char** argv) {
  sdb::bench::SimulatedThroughputTable();
  std::printf("\nHost wall-clock engine throughput (google-benchmark):\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
