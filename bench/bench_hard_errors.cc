// E12 — Hard-error recovery.
//
// Paper (Section 4): "recovery from a hard error in the log could consist of ignoring
// just the damaged log entry ... Recovery from a hard error in the checkpoint could be
// achieved by keeping one previous checkpoint and log ... We respond to a hard error
// on a particular name server replica by restoring its data from another replica. This
// causes us to lose only those updates that had been applied to the damaged replica
// but not propagated."
#include "bench/bench_common.h"
#include "src/nameserver/replication.h"

namespace sdb::bench {
namespace {

void DamagedLogEntryScenario(Table& table) {
  SimEnvOptions env_options;
  SimEnv env(env_options);
  BenchKvApp app(&env.cost_model());
  DatabaseOptions options;
  options.vfs = &env.fs();
  options.dir = "db";
  options.clock = &env.clock();
  {
    auto db = *Database::Open(app, options);
    for (int i = 0; i < 10; ++i) {
      if (!db->Update(app.PreparePut("key" + std::to_string(i), "v")).ok()) {
        return;
      }
    }
  }
  // A page in the middle of the log decays.
  (void)env.fs().InjectBadFilePage("db/logfile1", 4);
  env.fs().Crash();
  (void)env.fs().Recover();

  BenchKvApp strict_app(&env.cost_model());
  bool strict_fails = !Database::Open(strict_app, options).ok();

  options.skip_damaged_log_entries = true;
  BenchKvApp lenient_app(&env.cost_model());
  auto db = Database::Open(lenient_app, options);
  std::string recovered = db.ok()
                              ? std::to_string(lenient_app.state.size()) + "/10 updates"
                              : "open failed";
  table.AddRow({"damaged log entry (1 of 10)",
                strict_fails ? "strict mode refuses (correct)" : "strict mode PASSED?!",
                "skip-damaged mode: " + recovered,
                db.ok() ? Count((*db)->stats().restart.entries_skipped) + " skipped" : "-"});
}

void DamagedCheckpointScenario(Table& table) {
  SimEnvOptions env_options;
  SimEnv env(env_options);
  BenchKvApp app(&env.cost_model());
  DatabaseOptions options;
  options.vfs = &env.fs();
  options.dir = "db";
  options.clock = &env.clock();
  options.keep_previous_checkpoint = true;
  options.fallback_to_previous_checkpoint = true;
  {
    auto db = *Database::Open(app, options);
    for (int i = 0; i < 5; ++i) {
      (void)db->Update(app.PreparePut("gen1-" + std::to_string(i), "v"));
    }
    (void)db->Checkpoint();  // -> version 2; generation 1 retained
    for (int i = 0; i < 5; ++i) {
      (void)db->Update(app.PreparePut("gen2-" + std::to_string(i), "v"));
    }
  }
  // The current checkpoint decays on the medium.
  (void)env.fs().InjectBadFilePage("db/checkpoint2", 0);
  env.fs().Crash();
  (void)env.fs().Recover();

  Micros start = env.clock().NowMicros();
  BenchKvApp recovered_app(&env.cost_model());
  auto db = Database::Open(recovered_app, options);
  Micros restart = env.clock().NowMicros() - start;
  std::string state = db.ok() ? std::to_string(recovered_app.state.size()) + "/10 updates"
                              : "open failed: " + db.status().ToString();
  table.AddRow({"damaged current checkpoint",
                db.ok() && (*db)->stats().restart.used_previous_checkpoint
                    ? "fell back to previous generation"
                    : "no fallback",
                state, Secs(static_cast<double>(restart)) + " restart"});
}

void ReplicaRestoreScenario(Table& table) {
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;
  SimEnv env(env_options);
  auto open_server = [&](int i) {
    ns::NameServerOptions options;
    options.db.vfs = &env.fs();
    options.db.dir = "replica" + std::to_string(i);
    options.db.clock = &env.clock();
    options.replica_id = "r" + std::to_string(i);
    return *ns::NameServer::Open(options);
  };
  auto s0 = open_server(0);
  auto s1 = open_server(1);
  rpc::RpcServer rpc1;
  RegisterNameService(rpc1, *s1);
  rpc::LoopbackChannel to1(rpc1, {&env.clock(), 8000});
  rpc::RpcServer rpc0;
  RegisterNameService(rpc0, *s0);
  rpc::LoopbackChannel to0(rpc0, {&env.clock(), 8000});
  ns::Replicator rep0(*s0);
  rep0.AddPeer("r1", to1);

  for (int i = 0; i < 20; ++i) {
    (void)s0->Set("cfg/item" + std::to_string(i), "v" + std::to_string(i));
  }
  (void)rep0.Propagate();
  // Two more updates that never propagate before the hard error.
  (void)s0->Set("cfg/unpropagated1", "x");
  (void)s0->Set("cfg/unpropagated2", "y");

  (void)rep0.RestoreFromPeer("r1");
  int surviving = 0;
  for (int i = 0; i < 20; ++i) {
    if (s0->Lookup("cfg/item" + std::to_string(i)).ok()) {
      ++surviving;
    }
  }
  int lost = 0;
  for (const char* path : {"cfg/unpropagated1", "cfg/unpropagated2"}) {
    if (!s0->Lookup(path).ok()) {
      ++lost;
    }
  }
  table.AddRow({"replica hard error -> restore from peer",
                std::to_string(surviving) + "/20 propagated updates survive",
                std::to_string(lost) + "/2 unpropagated updates lost",
                "paper: \"unlikely to amount to more than the most recent update\""});
}

void Run() {
  Banner("E12: hard-error recovery",
         "skip a damaged log entry; fall back to the previous checkpoint+logs; restore "
         "a replica from a peer losing only the unpropagated tail");
  Table table({"scenario", "behaviour", "state recovered", "notes"});
  DamagedLogEntryScenario(table);
  DamagedCheckpointScenario(table);
  ReplicaRestoreScenario(table);
  table.Print();
}

}  // namespace
}  // namespace sdb::bench

int main() {
  sdb::bench::Run();
  return 0;
}
