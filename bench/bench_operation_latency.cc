// E1 — Operation latency on the paper's 1 MB name-server database.
//
// Paper (Section 5): "A typical simple enquiry operation takes 5 msecs ... A typical
// update takes 54 msecs", both excluding network costs.
#include "bench/bench_common.h"

namespace sdb::bench {
namespace {

void Run() {
  Banner("E1: operation latency (local, 1 MB database)",
         "simple enquiry ~5 ms; update ~54 ms (MicroVAX II)");

  NameServerFixture fixture = BuildNameServer(QuickMode() ? (1 << 16) : (1 << 20));
  ns::NameServer& server = *fixture.server;
  SimClock& clock = fixture.env->clock();
  Rng rng(7);

  // Simple enquiries: average over a sample of bound names.
  const int kEnquiries = QuickMode() ? 40 : 200;
  Micros enquiry_start = clock.NowMicros();
  for (int i = 0; i < kEnquiries; ++i) {
    const std::string& path = fixture.paths[rng.NextBelow(fixture.paths.size())];
    Result<std::string> value = server.Lookup(path);
    if (!value.ok()) {
      std::fprintf(stderr, "lookup failed: %s\n", value.status().ToString().c_str());
      return;
    }
  }
  double enquiry_micros =
      static_cast<double>(clock.NowMicros() - enquiry_start) / kEnquiries;

  // Browsing (List) enquiries.
  Micros list_start = clock.NowMicros();
  const int kLists = QuickMode() ? 10 : 50;
  for (int i = 0; i < kLists; ++i) {
    (void)*server.List("org/dept" + std::to_string(rng.NextBelow(40)));
  }
  double list_micros = static_cast<double>(clock.NowMicros() - list_start) / kLists;

  // Updates at the paper's record size (~300-byte values, three-component names).
  const int kUpdates = QuickMode() ? 20 : 100;
  Micros update_start = clock.NowMicros();
  for (int i = 0; i < kUpdates; ++i) {
    Status status = server.Set("org/dept" + std::to_string(i % 40) + "/update" +
                                   std::to_string(i),
                               rng.NextString(300));
    if (!status.ok()) {
      std::fprintf(stderr, "update failed: %s\n", status.ToString().c_str());
      return;
    }
  }
  double update_micros = static_cast<double>(clock.NowMicros() - update_start) / kUpdates;

  std::printf("database: ~%zu KB in memory, %zu names\n\n",
              server.tree().approximate_bytes() / 1024, fixture.paths.size());
  Table table({"operation", "paper (MicroVAX)", "measured (sim)", "notes"});
  table.AddRow({"simple enquiry", "5 ms", Ms(enquiry_micros), "virtual memory only"});
  table.AddRow({"browse (list one directory)", "-", Ms(list_micros),
                "per-child exploration"});
  table.AddRow({"update", "54 ms", Ms(update_micros), "includes the one disk write"});
  table.Print();

  // The per-stage commit breakdown for the updates above, from the database's own
  // metrics registry (commit.stage.*_us covers lock wait through apply).
  std::printf("\n%s", server.database().MetricsReport().c_str());

  std::string json = "{\"bench\":\"operation_latency\",\"quick\":";
  json += QuickMode() ? "true" : "false";
  json += ",\"enquiry_us\":" + std::to_string(enquiry_micros);
  json += ",\"list_us\":" + std::to_string(list_micros);
  json += ",\"update_us\":" + std::to_string(update_micros);
  json += ",\"metrics\":" + server.database().MetricsReportJson() + "}";
  MaybeWriteBenchJson("operation_latency", json);
}

}  // namespace
}  // namespace sdb::bench

int main() {
  sdb::bench::Run();
  return 0;
}
