// E3 — Checkpoint cost, and the concurrent-checkpoint update stall.
//
// Paper (Section 5): "A checkpoint operation takes about one minute. This involves
// converting the entire virtual memory structure ... (55 seconds), and the disk
// writes (5 seconds)" for the 1 MB database — and the update lock is held throughout.
//
// The second section measures what concurrent checkpointing buys back: wall-clock
// update latency while a checkpoint is in flight, for the paper-original full-stall
// mode (concurrent_checkpoint=false) vs the snapshot-and-rotate mode, against a
// quiesced baseline. `--enforce` fails the run unless the max in-checkpoint update
// latency drops by at least 10x.
// The third section measures what delta checkpoints buy: with a large heap and a
// small churn window, checkpoint bytes written must track the churn, not the
// database. `--section=churn --enforce` fails the run unless delta bytes stay
// within 2x of the churned bytes and at least 10x below a full checkpoint at 1%
// churn.
#include <algorithm>
#include <atomic>
#include <cstring>
#include <thread>

#include "bench/bench_common.h"
#include "src/common/clock.h"
#include "src/sim/kv_app.h"

namespace sdb::bench {
namespace {

void RunCheckpointCostTable() {
  Banner("E3: checkpoint cost vs database size",
         "1 MB database: ~55 s pickling + ~5 s disk = ~1 minute");

  Table table({"db size", "serialize (sim)", "disk (sim)", "total (sim)",
               "paper @1MB", "checkpoint bytes"});

  for (std::size_t kb : {128u, 512u, 1024u, 2048u}) {
    NameServerFixture fixture = BuildNameServer(kb * 1024);
    Status status = fixture.server->Checkpoint();
    if (!status.ok()) {
      std::fprintf(stderr, "checkpoint failed: %s\n", status.ToString().c_str());
      return;
    }
    CheckpointBreakdown breakdown = fixture.server->database().stats().last_checkpoint;
    std::string checkpoint_path =
        "ns/checkpoint" + std::to_string(fixture.server->database().current_version());
    auto file = *fixture.env->fs().Open(checkpoint_path, OpenMode::kRead);
    std::uint64_t bytes = *file->Size();

    table.AddRow({std::to_string(kb) + " KB",
                  Secs(static_cast<double>(breakdown.serialize_micros)),
                  Secs(static_cast<double>(breakdown.disk_micros)),
                  Secs(static_cast<double>(breakdown.total_micros)),
                  kb == 1024 ? "55 s + 5 s = 60 s" : "-",
                  std::to_string(bytes / 1024) + " KB"});
  }
  table.Print();
  std::printf("\n(with concurrent_checkpoint=false these durations are the update-"
              "unavailability window; the stall section below measures the "
              "concurrent mode)\n");
}

// --- update-stall measurement ---

// Layered key-value Application exercising the CaptureSnapshot override: updates go
// to a live delta map, and a snapshot is an O(1) freeze of that delta. The returned
// closure merges the immutable layers off-thread — the shape an application built
// for concurrent checkpointing would use, so the stall we measure is the protocol's,
// not the serializer's.
class BenchStallApp final : public Application {
 public:
  Status ResetState() override {
    stable_ = std::make_shared<std::map<std::string, std::string>>();
    frozen_.clear();
    live_ = std::make_shared<std::map<std::string, std::string>>();
    return OkStatus();
  }

  Result<Bytes> SerializeState() override { return SerializeLayers(AllLayers()); }

  Status DeserializeState(ByteSpan data) override {
    SDB_ASSIGN_OR_RETURN(PickleReader reader,
                         PickleReader::FromEnvelope(data, "BenchStallApp.state"));
    auto loaded = std::make_shared<std::map<std::string, std::string>>();
    SDB_RETURN_IF_ERROR(reader.Read(*loaded));
    stable_ = std::move(loaded);
    frozen_.clear();
    live_ = std::make_shared<std::map<std::string, std::string>>();
    return OkStatus();
  }

  Status ApplyUpdate(ByteSpan record) override {
    SDB_ASSIGN_OR_RETURN(BenchKvRecord update, PickleRead<BenchKvRecord>(record));
    live_->insert_or_assign(std::move(update.key), std::move(update.value));
    return OkStatus();
  }

  // Under the update lock: freeze the live delta (pointer swap) and hand back a
  // closure over the now-immutable layers. No byte is copied while the lock is held.
  Result<std::function<Result<Bytes>()>> CaptureSnapshot() override {
    if (!live_->empty()) {
      frozen_.push_back(live_);
      live_ = std::make_shared<std::map<std::string, std::string>>();
    }
    std::vector<std::shared_ptr<const std::map<std::string, std::string>>> layers =
        AllLayers(/*include_live=*/false);
    return std::function<Result<Bytes>()>(
        [layers = std::move(layers)]() { return SerializeLayers(layers); });
  }

  std::function<Result<Bytes>()> PreparePut(std::string key, std::string value) {
    return [key = std::move(key), value = std::move(value)]() -> Result<Bytes> {
      return PickleWrite(BenchKvRecord{key, value});
    };
  }

 private:
  std::vector<std::shared_ptr<const std::map<std::string, std::string>>> AllLayers(
      bool include_live = true) const {
    std::vector<std::shared_ptr<const std::map<std::string, std::string>>> layers;
    layers.push_back(stable_);
    layers.insert(layers.end(), frozen_.begin(), frozen_.end());
    if (include_live) {
      layers.push_back(live_);
    }
    return layers;
  }

  static Result<Bytes> SerializeLayers(
      const std::vector<std::shared_ptr<const std::map<std::string, std::string>>>&
          layers) {
    std::map<std::string, std::string> merged;
    for (const auto& layer : layers) {
      for (const auto& [key, value] : *layer) {
        merged.insert_or_assign(key, value);
      }
    }
    PickleWriter writer;
    writer.Write(merged);
    return std::move(writer).FinishEnvelope("BenchStallApp.state");
  }

  std::shared_ptr<std::map<std::string, std::string>> stable_ =
      std::make_shared<std::map<std::string, std::string>>();
  std::vector<std::shared_ptr<const std::map<std::string, std::string>>> frozen_;
  std::shared_ptr<std::map<std::string, std::string>> live_ =
      std::make_shared<std::map<std::string, std::string>>();
};

struct LatencySample {
  Micros start = 0;
  Micros latency = 0;
};

struct StallNumbers {
  double max_us = 0;
  double p99_us = 0;
  std::size_t samples = 0;
  double checkpoint_us = 0;  // wall duration of the Checkpoint() call
};

StallNumbers Summarize(const std::vector<LatencySample>& samples, Micros from,
                       Micros to) {
  std::vector<double> window;
  for (const LatencySample& s : samples) {
    // Overlap, not containment: an update blocked by the checkpoint may have
    // STARTED just before the bracket — it is exactly the sample that matters.
    if (s.start <= to && s.start + s.latency >= from) {
      window.push_back(static_cast<double>(s.latency));
    }
  }
  StallNumbers out;
  out.samples = window.size();
  if (window.empty()) {
    return out;
  }
  std::sort(window.begin(), window.end());
  out.max_us = window.back();
  out.p99_us = window[(window.size() * 99) / 100];
  return out;
}

// One measured run: populate, spin an updater thread, bracket a Checkpoint() call
// with wall timestamps, then bracket an equally long quiesced window. Returns the
// in-checkpoint numbers plus the quiesced baseline.
//
// Two stall views are produced. `lock_held_us` is the engine's own measurement of
// the update-unavailability window (the update lock's hold time: the whole persist
// in full-stall mode, the snapshot-and-rotate instant in concurrent mode), taken on
// the checkpointing thread — deterministic enough to enforce a ratio on, even on a
// single-core host where an updater thread's observed latency is dominated by
// scheduler preemption. The updater-observed numbers are reported alongside.
struct StallRun {
  StallNumbers during;
  StallNumbers quiesced;
  double lock_held_us = 0;  // min over windows of the engine-reported stall
};

StallRun MeasureStall(bool concurrent, std::size_t initial_keys) {
  WallClock wall;
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;  // wall-clock run: no simulated charging
  SimEnv env(env_options);

  BenchStallApp app;
  DatabaseOptions options;
  options.vfs = &env.fs();
  options.dir = "db";
  options.clock = &wall;  // engine-reported breakdowns in wall micros
  options.concurrent_checkpoint = concurrent;
  auto db_or = Database::Open(app, options);
  if (!db_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db_or.status().ToString().c_str());
    std::abort();
  }
  std::unique_ptr<Database> db = std::move(*db_or);

  Rng rng(7);
  for (std::size_t i = 0; i < initial_keys; ++i) {
    Status status =
        db->Update(app.PreparePut("key" + std::to_string(i), rng.NextString(100)));
    if (!status.ok()) {
      std::fprintf(stderr, "populate failed: %s\n", status.ToString().c_str());
      std::abort();
    }
  }

  std::atomic<bool> stop{false};
  std::vector<LatencySample> samples;
  samples.reserve(1 << 20);
  std::thread updater([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      LatencySample sample;
      sample.start = wall.NowMicros();
      Status status = db->Update(
          app.PreparePut("hot" + std::to_string(i % 512), "v" + std::to_string(i)));
      sample.latency = wall.NowMicros() - sample.start;
      if (status.ok()) {
        samples.push_back(sample);
      }
      ++i;
    }
  });

  // Bracket several checkpoint windows. The protocol stall shows up in EVERY
  // window; ambient jitter (scheduler hiccups, allocator growth) does not — so the
  // per-mode headline is the min over windows of the per-window max latency.
  constexpr int kWindows = 3;
  Micros t0[kWindows];
  Micros t1[kWindows];
  double lock_held[kWindows];
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  for (int w = 0; w < kWindows; ++w) {
    t0[w] = wall.NowMicros();
    Status checkpoint = db->Checkpoint();
    t1[w] = wall.NowMicros();
    if (!checkpoint.ok()) {
      std::fprintf(stderr, "checkpoint failed: %s\n", checkpoint.ToString().c_str());
      std::abort();
    }
    CheckpointBreakdown breakdown = db->stats().last_checkpoint;
    // Full-stall mode holds the update lock through the whole persist; concurrent
    // mode only through the snapshot-and-rotate step.
    lock_held[w] = static_cast<double>(concurrent ? breakdown.stall_micros
                                                  : breakdown.total_micros);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Quiesced baseline: an equally long checkpoint-free window.
  Micros q0 = wall.NowMicros();
  auto window = std::chrono::microseconds(std::max<Micros>(t1[0] - t0[0], 2000));
  std::this_thread::sleep_for(window);
  Micros q1 = wall.NowMicros();

  stop.store(true);
  updater.join();

  StallRun run;
  run.during.max_us = 0;
  for (int w = 0; w < kWindows; ++w) {
    StallNumbers numbers = Summarize(samples, t0[w], t1[w]);
    if (w == 0 || numbers.max_us < run.during.max_us) {
      run.during.max_us = numbers.max_us;  // min over windows of per-window max
    }
    run.during.p99_us = std::max(run.during.p99_us, numbers.p99_us);
    run.during.samples += numbers.samples;
    run.during.checkpoint_us +=
        static_cast<double>(t1[w] - t0[w]) / static_cast<double>(kWindows);
    if (w == 0 || lock_held[w] < run.lock_held_us) {
      run.lock_held_us = lock_held[w];
    }
  }
  run.quiesced = Summarize(samples, q0, q1);
  run.quiesced.checkpoint_us = 0;
  return run;
}

int RunStallSection(bool enforce) {
  Banner("Update stall during an in-flight checkpoint",
         "the original protocol holds the update lock for the whole checkpoint; "
         "concurrent checkpointing bounds the stall to the snapshot instant");

  // Sized so the full-stall serialize dwarfs ambient scheduler jitter (~5 ms): the
  // ratio being enforced compares a ~100 ms lock-held serialize against the
  // rotation-only stall, which sits at the noise floor.
  const std::size_t initial_keys = QuickMode() ? 100'000 : 300'000;

  StallRun legacy = MeasureStall(/*concurrent=*/false, initial_keys);
  StallRun concurrent = MeasureStall(/*concurrent=*/true, initial_keys);

  Table table({"mode", "checkpoint (wall)", "lock held (min of 3)",
               "updates in window", "observed max", "observed p99"});
  table.AddRow({"full-stall (paper)", Ms(legacy.during.checkpoint_us),
                Ms(legacy.lock_held_us), Count(legacy.during.samples),
                Ms(legacy.during.max_us), Ms(legacy.during.p99_us)});
  table.AddRow({"concurrent", Ms(concurrent.during.checkpoint_us),
                Ms(concurrent.lock_held_us), Count(concurrent.during.samples),
                Ms(concurrent.during.max_us), Ms(concurrent.during.p99_us)});
  table.AddRow({"quiesced baseline", "-", "-", Count(concurrent.quiesced.samples),
                Ms(concurrent.quiesced.max_us), Ms(concurrent.quiesced.p99_us)});
  table.Print();

  // The enforced ratio compares update-unavailability windows (update-lock hold
  // time during a checkpoint), measured by the engine on the checkpointing thread.
  // The updater-observed columns corroborate it but include scheduler preemption —
  // on a single-core host the observed floor is the OS timeslice, not the protocol.
  double ratio =
      concurrent.lock_held_us > 0 ? legacy.lock_held_us / concurrent.lock_held_us : 0;
  std::printf("\nupdate-stall reduction: %.1fx (full-stall holds the lock %.1f ms, "
              "concurrent %.2f ms)\n",
              ratio, legacy.lock_held_us / 1000.0, concurrent.lock_held_us / 1000.0);

  std::string json = "{\n";
  json += "  \"bench\": \"checkpoint_cost\",\n";
  json += "  \"initial_keys\": " + std::to_string(initial_keys) + ",\n";
  json += "  \"legacy_checkpoint_us\": " + Num(legacy.during.checkpoint_us) + ",\n";
  json += "  \"legacy_lock_held_us\": " + Num(legacy.lock_held_us) + ",\n";
  json += "  \"legacy_observed_max_us\": " + Num(legacy.during.max_us) + ",\n";
  json += "  \"concurrent_checkpoint_us\": " + Num(concurrent.during.checkpoint_us) + ",\n";
  json += "  \"concurrent_lock_held_us\": " + Num(concurrent.lock_held_us) + ",\n";
  json += "  \"concurrent_observed_max_us\": " + Num(concurrent.during.max_us) + ",\n";
  json += "  \"quiesced_observed_max_us\": " + Num(concurrent.quiesced.max_us) + ",\n";
  json += "  \"updates_during_legacy_checkpoint\": " +
          std::to_string(legacy.during.samples) + ",\n";
  json += "  \"updates_during_concurrent_checkpoint\": " +
          std::to_string(concurrent.during.samples) + ",\n";
  json += "  \"stall_reduction\": " + Num(ratio) + "\n";
  json += "}";
  MaybeWriteBenchJson("checkpoint_cost", json);

  if (enforce) {
    // The acceptance bar: the update stall during an in-flight checkpoint must drop
    // by at least 10x vs the full-stall protocol.
    if (ratio < 10.0) {
      std::fprintf(stderr,
                   "FAIL: stall reduction %.1fx < 10x (legacy lock-held %.1f us, "
                   "concurrent %.1f us)\n",
                   ratio, legacy.lock_held_us, concurrent.lock_held_us);
      return 1;
    }
    // In concurrent mode, updates must actually flow while the checkpoint persists.
    if (concurrent.during.samples == 0) {
      std::fprintf(stderr, "FAIL: no updates completed during concurrent checkpoint\n");
      return 1;
    }
    std::printf("enforce: OK (reduction %.1fx >= 10x)\n", ratio);
  }
  return 0;
}

// --- delta-checkpoint churn sweep ---

struct ChurnPoint {
  double pct = 0;
  std::uint64_t dirtied = 0;
  std::uint64_t churn_bytes = 0;  // raw key+value bytes rewritten between checkpoints
  std::uint64_t delta_bytes = 0;  // the delta checkpoint file those rewrites cost
  std::uint64_t full_bytes = 0;   // what a full checkpoint of the same heap costs
};

// One churn fraction: build a fresh heap of `total_keys`, checkpoint it (the first
// delta swallows the whole populate window), rewrite `pct` percent of the keys, and
// measure the next delta checkpoint's file size against a full serialization.
ChurnPoint MeasureChurn(double pct, std::size_t total_keys, std::size_t value_size) {
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;
  SimEnv env(env_options);

  sim::KvApp app;
  DatabaseOptions options;
  options.vfs = &env.fs();
  options.dir = "db";
  options.clock = &env.clock();
  // No compaction mid-measurement: the point under test is one delta's size.
  options.delta_checkpoint.background_compaction = false;
  options.delta_checkpoint.compact_after_deltas = 1000;
  options.delta_checkpoint.compact_delta_base_ratio = 0;
  auto db_or = Database::Open(app, options);
  if (!db_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db_or.status().ToString().c_str());
    std::abort();
  }
  std::unique_ptr<Database> db = std::move(*db_or);

  Rng rng(11);
  for (std::size_t i = 0; i < total_keys; ++i) {
    Status status =
        db->Update(app.PreparePut("key" + std::to_string(i), rng.NextString(value_size)));
    if (!status.ok()) {
      std::fprintf(stderr, "populate failed: %s\n", status.ToString().c_str());
      std::abort();
    }
  }
  if (Status status = db->Checkpoint(); !status.ok()) {
    std::fprintf(stderr, "baseline checkpoint failed: %s\n", status.ToString().c_str());
    std::abort();
  }

  ChurnPoint point;
  point.pct = pct;
  point.dirtied = static_cast<std::uint64_t>(
      static_cast<double>(total_keys) * pct / 100.0);
  std::size_t stride = std::max<std::size_t>(total_keys / std::max<std::uint64_t>(point.dirtied, 1), 1);
  for (std::uint64_t i = 0; i < point.dirtied; ++i) {
    std::string key = "key" + std::to_string((i * stride) % total_keys);
    std::string value = rng.NextString(value_size);
    point.churn_bytes += key.size() + value.size();
    Status status = db->Update(app.PreparePut(std::move(key), std::move(value)));
    if (!status.ok()) {
      std::fprintf(stderr, "churn failed: %s\n", status.ToString().c_str());
      std::abort();
    }
  }
  if (Status status = db->Checkpoint(); !status.ok()) {
    std::fprintf(stderr, "churn checkpoint failed: %s\n", status.ToString().c_str());
    std::abort();
  }

  std::string delta_path = "db/delta" + std::to_string(db->current_version());
  auto delta_file = env.fs().Open(delta_path, OpenMode::kRead);
  if (!delta_file.ok()) {
    std::fprintf(stderr, "expected a delta checkpoint at %s: %s\n", delta_path.c_str(),
                 delta_file.status().ToString().c_str());
    std::abort();
  }
  point.delta_bytes = *(*delta_file)->Size();
  point.full_bytes = (*app.SerializeState()).size();
  return point;
}

int RunDeltaChurnSection(bool enforce) {
  Banner("Delta checkpoints: cost tracks the churn, not the database",
         "a checkpoint 'converts the entire virtual memory structure' — the delta "
         "extension writes only what changed since the previous checkpoint");

  const std::size_t total_keys = QuickMode() ? 20'000 : 100'000;
  const std::size_t value_size = 100;

  Table table({"churn", "keys dirtied", "churn bytes", "delta checkpoint",
               "full checkpoint", "full/delta"});
  std::vector<ChurnPoint> points;
  for (double pct : {1.0, 10.0, 50.0}) {
    ChurnPoint point = MeasureChurn(pct, total_keys, value_size);
    double reduction = point.delta_bytes > 0
                           ? static_cast<double>(point.full_bytes) /
                                 static_cast<double>(point.delta_bytes)
                           : 0;
    table.AddRow({Num(point.pct, "%"), Count(point.dirtied), Count(point.churn_bytes),
                  Count(point.delta_bytes) + " B", Count(point.full_bytes) + " B",
                  Num(reduction, "x")});
    points.push_back(point);
  }
  table.Print();

  const ChurnPoint& low = points.front();  // the 1% point carries the headline claim
  double delta_vs_churn = low.churn_bytes > 0
                              ? static_cast<double>(low.delta_bytes) /
                                    static_cast<double>(low.churn_bytes)
                              : 0;
  double full_vs_delta = low.delta_bytes > 0
                             ? static_cast<double>(low.full_bytes) /
                                   static_cast<double>(low.delta_bytes)
                             : 0;
  std::printf("\nat 1%% churn: delta writes %.2fx the churned bytes and 1/%.0fth of a "
              "full checkpoint\n",
              delta_vs_churn, full_vs_delta);

  std::string json = "{\n";
  json += "  \"bench\": \"checkpoint_delta\",\n";
  json += "  \"total_keys\": " + std::to_string(total_keys) + ",\n";
  json += "  \"churn\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ChurnPoint& p = points[i];
    json += "    {\"pct\": " + Num(p.pct) + ", \"dirtied\": " + std::to_string(p.dirtied) +
            ", \"churn_bytes\": " + std::to_string(p.churn_bytes) +
            ", \"delta_bytes\": " + std::to_string(p.delta_bytes) +
            ", \"full_bytes\": " + std::to_string(p.full_bytes) + "}";
    json += i + 1 < points.size() ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"delta_vs_churn_at_1pct\": " + Num(delta_vs_churn) + ",\n";
  json += "  \"full_vs_delta_at_1pct\": " + Num(full_vs_delta) + "\n";
  json += "}";
  MaybeWriteBenchJson("checkpoint_delta", json);

  if (enforce) {
    // The acceptance bars: delta bytes track churn (within pickle + tombstone
    // overhead), and at 1% churn a delta beats a full checkpoint by >= 10x.
    if (delta_vs_churn > 2.0) {
      std::fprintf(stderr,
                   "FAIL: delta checkpoint wrote %.2fx the churned bytes (want <= 2x: "
                   "%llu delta bytes vs %llu churned)\n",
                   delta_vs_churn, static_cast<unsigned long long>(low.delta_bytes),
                   static_cast<unsigned long long>(low.churn_bytes));
      return 1;
    }
    if (full_vs_delta < 10.0) {
      std::fprintf(stderr,
                   "FAIL: at 1%% churn the delta is only %.1fx below a full checkpoint "
                   "(want >= 10x)\n",
                   full_vs_delta);
      return 1;
    }
    std::printf("enforce: OK (delta/churn %.2fx <= 2x, full/delta %.0fx >= 10x)\n",
                delta_vs_churn, full_vs_delta);
  }
  return 0;
}

}  // namespace
}  // namespace sdb::bench

int main(int argc, char** argv) {
  bool enforce = false;
  std::string section = "all";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--enforce") == 0) {
      enforce = true;
    } else if (std::strncmp(argv[i], "--section=", 10) == 0) {
      section = argv[i] + 10;
    }
  }
  int rc = 0;
  if (section == "all" || section == "cost") {
    sdb::bench::RunCheckpointCostTable();
  }
  if (section == "all" || section == "stall") {
    rc |= sdb::bench::RunStallSection(enforce);
  }
  if (section == "all" || section == "churn") {
    rc |= sdb::bench::RunDeltaChurnSection(enforce);
  }
  return rc;
}
