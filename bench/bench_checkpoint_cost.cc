// E3 — Checkpoint cost.
//
// Paper (Section 5): "A checkpoint operation takes about one minute. This involves
// converting the entire virtual memory structure ... (55 seconds), and the disk
// writes (5 seconds)" for the 1 MB database.
#include "bench/bench_common.h"

namespace sdb::bench {
namespace {

void Run() {
  Banner("E3: checkpoint cost vs database size",
         "1 MB database: ~55 s pickling + ~5 s disk = ~1 minute");

  Table table({"db size", "serialize (sim)", "disk (sim)", "total (sim)",
               "paper @1MB", "checkpoint bytes"});

  for (std::size_t kb : {128u, 512u, 1024u, 2048u}) {
    NameServerFixture fixture = BuildNameServer(kb * 1024);
    Status status = fixture.server->Checkpoint();
    if (!status.ok()) {
      std::fprintf(stderr, "checkpoint failed: %s\n", status.ToString().c_str());
      return;
    }
    CheckpointBreakdown breakdown = fixture.server->database().stats().last_checkpoint;
    std::string checkpoint_path =
        "ns/checkpoint" + std::to_string(fixture.server->database().current_version());
    auto file = *fixture.env->fs().Open(checkpoint_path, OpenMode::kRead);
    std::uint64_t bytes = *file->Size();

    table.AddRow({std::to_string(kb) + " KB",
                  Secs(static_cast<double>(breakdown.serialize_micros)),
                  Secs(static_cast<double>(breakdown.disk_micros)),
                  Secs(static_cast<double>(breakdown.total_micros)),
                  kb == 1024 ? "55 s + 5 s = 60 s" : "-",
                  std::to_string(bytes / 1024) + " KB"});
  }
  table.Print();
  std::printf("\n(checkpoint duration is the update-unavailability window: the update "
              "lock is held throughout, enquiries keep running)\n");
}

}  // namespace
}  // namespace sdb::bench

int main() {
  sdb::bench::Run();
  return 0;
}
