// E4 — Restart time vs log length.
//
// Paper (Section 5): "Restart takes about 20 seconds to read the checkpoint, plus
// about 20 msecs per log entry", and "a log containing 10,000 updates would cause the
// restart time to be about 5 minutes".
#include "bench/bench_common.h"

namespace sdb::bench {
namespace {

void Run() {
  Banner("E4: restart time vs log length (1 MB checkpoint)",
         "20 s checkpoint read + ~20 ms per log entry; 10,000 entries => ~5 min");

  Table table({"log entries", "disk read + unpickle (sim)", "log replay CPU (sim)",
               "total restart (sim)", "replay per entry (sim)", "paper"});

  for (int entries : {0, 100, 1000, 10000}) {
    NameServerFixture fixture = BuildNameServer(1 << 20);
    // Checkpoint so the log starts empty, then accumulate exactly `entries` updates.
    if (!fixture.server->Checkpoint().ok()) {
      return;
    }
    Rng rng(11);
    for (int i = 0; i < entries; ++i) {
      Status status =
          fixture.server->Set("org/dept" + std::to_string(i % 40) + "/restart" +
                                  std::to_string(i),
                              rng.NextString(300));
      if (!status.ok()) {
        std::fprintf(stderr, "update failed: %s\n", status.ToString().c_str());
        return;
      }
    }

    // Power failure; the next open is a cold restart. The disk reads happen during
    // the remount (the cache is cold), so the stopwatch covers remount + open.
    fixture.server.reset();
    fixture.env->fs().Crash();
    Micros start = fixture.env->clock().NowMicros();
    if (!fixture.env->fs().Recover().ok()) {
      return;
    }

    ns::NameServerOptions options;
    options.db.vfs = &fixture.env->fs();
    options.db.dir = "ns";
    options.db.clock = &fixture.env->clock();
    options.cost = &fixture.env->cost_model();
    options.replica_id = "bench";
    auto reopened = ns::NameServer::Open(options);
    if (!reopened.ok()) {
      std::fprintf(stderr, "reopen failed: %s\n", reopened.status().ToString().c_str());
      return;
    }
    Micros total = fixture.env->clock().NowMicros() - start;
    RestartBreakdown restart = (*reopened)->database().stats().restart;
    double replay = static_cast<double>(restart.replay_micros);
    double checkpoint_read = static_cast<double>(total) - replay;

    std::string paper = "-";
    if (entries == 0) {
      paper = "~20 s";
    } else if (entries == 10000) {
      paper = "~5 min";
    }
    table.AddRow({Count(entries), Secs(checkpoint_read), Secs(replay),
                  Secs(static_cast<double>(total)),
                  entries > 0 ? Ms(replay / entries) : "-", paper});
  }
  table.Print();
}

}  // namespace
}  // namespace sdb::bench

int main() {
  sdb::bench::Run();
  return 0;
}
