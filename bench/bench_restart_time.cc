// E4 — Restart time vs log length, plus the parallel-recovery core-scaling curve.
//
// Paper (Section 5): "Restart takes about 20 seconds to read the checkpoint, plus
// about 20 msecs per log entry", and "a log containing 10,000 updates would cause the
// restart time to be about 5 minutes".
//
// The second section measures ISSUE 8's tentpole: multi-core log replay. A CPU-bound
// application replays the same log at recovery_threads = 1, 2, 4, ... N
// (N = min(8, hardware cores)) on wall clock; every recovered state must be
// byte-identical to the serial baseline, and `--enforce` additionally fails the run
// unless replay at N cores takes <= 1/(N/2) of the single-core replay time.
#include <cstring>
#include <thread>

#include "bench/bench_common.h"

namespace sdb::bench {
namespace {

void Run() {
  Banner("E4: restart time vs log length (1 MB checkpoint)",
         "20 s checkpoint read + ~20 ms per log entry; 10,000 entries => ~5 min");

  Table table({"log entries", "disk read + unpickle (sim)", "log replay CPU (sim)",
               "total restart (sim)", "replay per entry (sim)", "paper"});

  for (int entries : {0, 100, 1000, 10000}) {
    NameServerFixture fixture = BuildNameServer(1 << 20);
    // Checkpoint so the log starts empty, then accumulate exactly `entries` updates.
    if (!fixture.server->Checkpoint().ok()) {
      return;
    }
    Rng rng(11);
    for (int i = 0; i < entries; ++i) {
      Status status =
          fixture.server->Set("org/dept" + std::to_string(i % 40) + "/restart" +
                                  std::to_string(i),
                              rng.NextString(300));
      if (!status.ok()) {
        std::fprintf(stderr, "update failed: %s\n", status.ToString().c_str());
        return;
      }
    }

    // Power failure; the next open is a cold restart. The disk reads happen during
    // the remount (the cache is cold), so the stopwatch covers remount + open.
    fixture.server.reset();
    fixture.env->fs().Crash();
    Micros start = fixture.env->clock().NowMicros();
    if (!fixture.env->fs().Recover().ok()) {
      return;
    }

    ns::NameServerOptions options;
    options.db.vfs = &fixture.env->fs();
    options.db.dir = "ns";
    options.db.clock = &fixture.env->clock();
    options.cost = &fixture.env->cost_model();
    options.replica_id = "bench";
    auto reopened = ns::NameServer::Open(options);
    if (!reopened.ok()) {
      std::fprintf(stderr, "reopen failed: %s\n", reopened.status().ToString().c_str());
      return;
    }
    Micros total = fixture.env->clock().NowMicros() - start;
    RestartBreakdown restart = (*reopened)->database().stats().restart;
    double replay = static_cast<double>(restart.replay_micros);
    double checkpoint_read = static_cast<double>(total) - replay;

    std::string paper = "-";
    if (entries == 0) {
      paper = "~20 s";
    } else if (entries == 10000) {
      paper = "~5 min";
    }
    table.AddRow({Count(entries), Secs(checkpoint_read), Secs(replay),
                  Secs(static_cast<double>(total)),
                  entries > 0 ? Ms(replay / entries) : "-", paper});
  }
  table.Print();
}

// --- core scaling ---

// Deterministic CPU cost per applied entry, standing in for real unpickle +
// index-maintenance work; FNV over the value so the loop cannot be hoisted.
std::uint64_t BurnCpu(std::string_view value, int rounds) {
  std::uint64_t h = 14695981039346656037ull;
  for (int r = 0; r < rounds; ++r) {
    for (char c : value) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
  }
  return h;
}

constexpr int kBurnRounds = 300;

// A key-value Application whose apply is CPU-bound (the BurnCpu loop) and which
// supports batched replay, so the replay pipeline — not the disk — dominates
// restart time and the thread count is the variable under test.
class CpuReplayApp final : public Application {
 public:
  class Batch final : public ReplayBatch {
   public:
    Status Apply(ByteSpan record) override {
      SDB_ASSIGN_OR_RETURN(BenchKvRecord update, PickleRead<BenchKvRecord>(record));
      checksum ^= BurnCpu(update.value, kBurnRounds);
      effects.insert_or_assign(std::move(update.key), std::move(update.value));
      return OkStatus();
    }
    std::map<std::string, std::string> effects;
    std::uint64_t checksum = 0;
  };

  Status ResetState() override {
    state.clear();
    return OkStatus();
  }
  Result<Bytes> SerializeState() override {
    PickleWriter writer;
    writer.Write(state);
    return std::move(writer).FinishEnvelope("CpuReplayApp.state");
  }
  Status DeserializeState(ByteSpan data) override {
    SDB_ASSIGN_OR_RETURN(PickleReader reader,
                         PickleReader::FromEnvelope(data, "CpuReplayApp.state"));
    return reader.Read(state);
  }
  Status ApplyUpdate(ByteSpan record) override {
    SDB_ASSIGN_OR_RETURN(BenchKvRecord update, PickleRead<BenchKvRecord>(record));
    checksum ^= BurnCpu(update.value, kBurnRounds);
    state.insert_or_assign(std::move(update.key), std::move(update.value));
    return OkStatus();
  }
  bool ReplayKeyOf(ByteSpan record, std::string* key) override {
    Result<BenchKvRecord> update = PickleRead<BenchKvRecord>(record);
    if (!update.ok()) {
      return false;
    }
    *key = std::move(update->key);
    return true;
  }
  std::unique_ptr<ReplayBatch> StartReplayBatch() override {
    return std::make_unique<Batch>();
  }
  Status MergeReplayBatch(ReplayBatch& batch) override {
    Batch& done = static_cast<Batch&>(batch);
    checksum ^= done.checksum;
    for (auto& [key, value] : done.effects) {
      state.insert_or_assign(key, std::move(value));
    }
    return OkStatus();
  }

  std::function<Result<Bytes>()> PreparePut(std::string key, std::string value) {
    return [key = std::move(key), value = std::move(value)]() -> Result<Bytes> {
      return PickleWrite(BenchKvRecord{key, value});
    };
  }

  std::map<std::string, std::string> state;
  std::uint64_t checksum = 0;
};

struct ScalingPoint {
  int threads = 0;
  Micros replay_wall = 0;
  Micros replay_cpu = 0;
  std::uint64_t batches = 0;
  std::uint64_t threads_used = 0;
};

int RunCoreScaling(bool enforce) {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int peak = std::min(8, hw > 0 ? hw : 1);
  const int entries = QuickMode() ? 4000 : 20000;

  Banner("Restart core scaling: parallel log replay (wall clock)",
         "serial replay pays ~per-entry CPU sequentially; key-disjoint batches "
         "spread it across cores with an identical recovered state");
  std::printf("\n%d log entries, %d burn rounds/apply, %d hardware cores%s\n\n",
              entries, kBurnRounds, hw, QuickMode() ? " (quick mode)" : "");

  // Build once on the simulated file system. The database itself runs on the real
  // wall clock (clock = nullptr) so replay_micros measures host elapsed time.
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;
  SimEnv env(env_options);
  DatabaseOptions options;
  options.vfs = &env.fs();
  options.dir = "db";
  options.clock = nullptr;
  {
    CpuReplayApp app;
    auto db = Database::Open(app, options);
    if (!db.ok()) {
      std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
      return 1;
    }
    Rng rng(7);
    for (int i = 0; i < entries; ++i) {
      std::string key = "key-" + std::to_string(i % 512);
      Status status = (*db)->Update(app.PreparePut(key, rng.NextString(64)));
      if (!status.ok()) {
        std::fprintf(stderr, "update failed: %s\n", status.ToString().c_str());
        return 1;
      }
    }
  }
  env.fs().Crash();
  if (!env.fs().Recover().ok()) {
    return 1;
  }

  std::vector<int> thread_counts{1};
  for (int t : {2, 4, 8}) {
    if (t <= peak) {
      thread_counts.push_back(t);
    }
  }
  if (thread_counts.back() != peak) {
    thread_counts.push_back(peak);
  }

  // Read-only recovery has zero directory side effects, so every thread count
  // replays the identical log. Best-of-2 per point absorbs scheduler noise.
  Bytes baseline;
  std::vector<ScalingPoint> points;
  for (int threads : thread_counts) {
    ScalingPoint point;
    point.threads = threads;
    for (int run = 0; run < 2; ++run) {
      CpuReplayApp app;
      DatabaseOptions recover_options = options;
      recover_options.recovery_threads = threads;
      auto db = Database::OpenReadOnly(app, recover_options);
      if (!db.ok()) {
        std::fprintf(stderr, "recovery at %d threads failed: %s\n", threads,
                     db.status().ToString().c_str());
        return 1;
      }
      const RestartBreakdown& restart = (*db)->stats().restart;
      if (run == 0 || restart.replay_micros < point.replay_wall) {
        point.replay_wall = restart.replay_micros;
        point.replay_cpu = restart.replay_cpu_micros;
        point.batches = restart.replay_batches;
        point.threads_used = restart.replay_threads_used;
      }
      auto snapshot = app.SerializeState();
      if (!snapshot.ok()) {
        return 1;
      }
      // Equivalence is not negotiable, enforce flag or no: every thread count must
      // recover the byte-identical state.
      if (threads == 1 && run == 0) {
        baseline = *snapshot;
      } else if (*snapshot != baseline) {
        std::fprintf(stderr,
                     "FATAL: recovery at %d threads diverged from serial replay\n",
                     threads);
        return 1;
      }
    }
    points.push_back(point);
  }

  const double serial_wall = static_cast<double>(points.front().replay_wall);
  Table table({"recovery threads", "replay (wall)", "replay CPU (sum)", "batches",
               "speedup"});
  for (const ScalingPoint& point : points) {
    double speedup = point.replay_wall > 0
                         ? serial_wall / static_cast<double>(point.replay_wall)
                         : 0;
    table.AddRow({std::to_string(point.threads), Ms(point.replay_wall),
                  Ms(point.replay_cpu), Count(point.batches),
                  Num(speedup, "x")});
  }
  table.Print();

  std::string json = "{\n  \"bench\": \"restart_scaling\",\n  \"entries\": " +
                     std::to_string(entries) + ",\n  \"hardware_cores\": " +
                     std::to_string(hw) + ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ScalingPoint& p = points[i];
    json += "    {\"threads\": " + std::to_string(p.threads) +
            ", \"replay_wall_us\": " + std::to_string(p.replay_wall) +
            ", \"replay_cpu_us\": " + std::to_string(p.replay_cpu) +
            ", \"batches\": " + std::to_string(p.batches) +
            ", \"threads_used\": " + std::to_string(p.threads_used) + "}";
    json += (i + 1 < points.size()) ? ",\n" : "\n";
  }
  const ScalingPoint& last = points.back();
  double peak_speedup =
      last.replay_wall > 0 ? serial_wall / static_cast<double>(last.replay_wall) : 0;
  json += "  ],\n  \"peak_threads\": " + std::to_string(peak) +
          ",\n  \"peak_speedup\": " + std::to_string(peak_speedup) + "\n}";
  MaybeWriteBenchJson("restart_scaling", json);

  if (enforce) {
    if (peak < 2) {
      std::printf("enforce: SKIP (only %d hardware core(s); nothing to scale)\n", hw);
      return 0;
    }
    // The flat-curve contract: N cores must cut replay to at most 1/(N/2) of the
    // serial time — half the ideal speedup, leaving room for the sequential
    // partition pass and merge.
    const double bound = serial_wall / (static_cast<double>(peak) / 2.0);
    if (static_cast<double>(last.replay_wall) > bound) {
      std::printf("enforce: FAIL (replay at %d threads took %lld us > bound %.0f us; "
                  "%.2fx speedup)\n",
                  peak, static_cast<long long>(last.replay_wall), bound, peak_speedup);
      return 1;
    }
    std::printf("enforce: OK (replay at %d threads: %.2fx speedup >= %.1fx bound)\n",
                peak, peak_speedup, static_cast<double>(peak) / 2.0);
  }
  return 0;
}

}  // namespace
}  // namespace sdb::bench

int main(int argc, char** argv) {
  bool enforce = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--enforce") == 0) {
      enforce = true;
    }
  }
  sdb::bench::Run();
  return sdb::bench::RunCoreScaling(enforce);
}
