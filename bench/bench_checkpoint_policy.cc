// E9 — The checkpoint-frequency trade-off.
//
// Paper (Section 5): "The implementor (or the system manager) can tradeoff between the
// time required for a restart and the availability for updates by deciding how often
// to make a checkpoint ... frequent checkpoints are bad [updates are prevented] ... if
// checkpoints are too rare then the log file may consume excessive disk space [and]
// the restart time ... will be too long. However, with update rates of up to [10,000]
// per day ... a simple scheme of making a checkpoint each night will suffice."
//
// A simulated day: 10,000 updates spread over 24 hours against the 1 MB database, for
// several checkpoint policies. Reported: update-stall time (checkpoint duration x
// count), worst-case restart (crash just before the next checkpoint), and peak log.
#include "bench/bench_common.h"

namespace sdb::bench {
namespace {

void Run() {
  Banner("E9: checkpoint-frequency trade-off over a 10,000-update day",
         "nightly checkpointing suffices at <= 10k updates/day; more checkpoints buy "
         "faster restarts at the cost of update availability");

  Table table({"policy", "checkpoints", "update stall total (sim)",
               "peak log size", "worst-case restart (sim)", "disk space peak"});

  for (std::uint64_t every_n : {1000ull, 2500ull, 5000ull, 10000ull}) {
    NameServerFixture fixture = BuildNameServer(1 << 20);
    SimClock& clock = fixture.env->clock();
    // Checkpoint the populated base so the day starts with an empty log.
    if (!fixture.server->Checkpoint().ok()) {
      return;
    }

    constexpr int kUpdatesPerDay = 10'000;
    const Micros gap = 24ll * 3600 * kMicrosPerSecond / kUpdatesPerDay;

    Rng rng(23);
    Micros stall_total = 0;
    std::uint64_t checkpoints = 0;
    std::uint64_t peak_log = 0;
    std::uint64_t peak_disk = 0;
    Database& db = fixture.server->database();

    for (int i = 1; i <= kUpdatesPerDay; ++i) {
      clock.Charge(gap);  // the day passes between updates
      Status status =
          fixture.server->Set("org/dept" + std::to_string(i % 40) + "/m" +
                                  std::to_string(i % 2000),
                              rng.NextString(100));
      if (!status.ok()) {
        std::fprintf(stderr, "update failed: %s\n", status.ToString().c_str());
        return;
      }
      peak_log = std::max(peak_log, db.log_bytes());
      peak_disk = std::max(peak_disk, fixture.env->disk().stats().bytes_written);
      if (static_cast<std::uint64_t>(i) % every_n == 0) {
        Micros start = clock.NowMicros();
        if (!fixture.server->Checkpoint().ok()) {
          return;
        }
        stall_total += clock.NowMicros() - start;
        ++checkpoints;
      }
    }

    // Worst-case restart: crash with the log at its fullest. Reconstruct that state:
    // we measure restart right now (log holds up to every_n - 1... after the final
    // checkpoint the log is empty, so instead estimate with a fresh fill of every_n
    // entries). Simpler and honest: run every_n more updates, then crash + reopen.
    for (std::uint64_t i = 0; i < every_n; ++i) {
      if (!fixture.server
               ->Set("org/dept0/worst" + std::to_string(i % 2000), rng.NextString(100))
               .ok()) {
        return;
      }
    }
    fixture.server.reset();
    fixture.env->fs().Crash();
    Micros restart_start = clock.NowMicros();
    if (!fixture.env->fs().Recover().ok()) {
      return;
    }
    ns::NameServerOptions options;
    options.db.vfs = &fixture.env->fs();
    options.db.dir = "ns";
    options.db.clock = &clock;
    options.cost = &fixture.env->cost_model();
    options.replica_id = "bench";
    auto reopened = ns::NameServer::Open(options);
    if (!reopened.ok()) {
      std::fprintf(stderr, "reopen failed: %s\n", reopened.status().ToString().c_str());
      return;
    }
    Micros restart = clock.NowMicros() - restart_start;

    std::string label = every_n == 10000 ? "nightly (every 10000)"
                                         : "every " + std::to_string(every_n);
    table.AddRow({label, Count(checkpoints), Secs(static_cast<double>(stall_total)),
                  std::to_string(peak_log / 1024) + " KB",
                  Secs(static_cast<double>(restart)),
                  std::to_string(peak_disk / (1024 * 1024)) + " MB written"});
  }
  table.Print();
  std::printf("\n(update availability = 24 h minus the stall column; restart grows "
              "with the log, stalls grow with checkpoint count — the paper's knob)\n");
}

}  // namespace
}  // namespace sdb::bench

int main() {
  sdb::bench::Run();
  return 0;
}
