// E11 — Code-size inventory (Section 6's simplicity argument, quantified).
//
// Paper (Section 6): checkpoint+log package 638 source lines; name-server database
// semantics 1404 lines; pickle package 1648 lines (pre-existing); generated RPC stubs
// 663 (server) + 622 (client) lines.
//
// This binary counts the reproduction's source lines per module at run time (the
// source tree path is baked in at configure time) and prints them against the paper's.
#include <filesystem>
#include <fstream>

#include "bench/bench_common.h"

#ifndef SDB_SOURCE_DIR
#define SDB_SOURCE_DIR "."
#endif

namespace sdb::bench {
namespace {

std::uint64_t CountLines(const std::filesystem::path& root) {
  std::uint64_t lines = 0;
  std::error_code ec;
  if (!std::filesystem::exists(root, ec)) {
    return 0;
  }
  for (const auto& entry : std::filesystem::recursive_directory_iterator(root, ec)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    std::string ext = entry.path().extension().string();
    if (ext != ".cc" && ext != ".h") {
      continue;
    }
    std::ifstream in(entry.path());
    std::string line;
    while (std::getline(in, line)) {
      ++lines;
    }
  }
  return lines;
}

void Run() {
  Banner("E11: code-size inventory (Section 6)",
         "checkpoint+log 638 lines; name-server semantics 1404; pickles 1648; RPC "
         "stubs 663+622 — the design's simplicity, in numbers");

  std::filesystem::path src = std::filesystem::path(SDB_SOURCE_DIR) / "src";

  Table table({"module", "paper (Modula-2+ lines)", "this reproduction (C++ lines)",
               "notes"});
  table.AddRow({"checkpoint + log engine", "638", Count(CountLines(src / "core")),
                "includes recovery, policies, partitioning"});
  table.AddRow({"name-server database semantics", "1404",
                Count(CountLines(src / "nameserver")),
                "includes replication (2 extra programmer-months in the paper)"});
  table.AddRow({"pickle package", "1648",
                Count(CountLines(src / "pickle") + CountLines(src / "typedheap")),
                "static traits + runtime-typed heap pickler"});
  table.AddRow({"RPC stubs + runtime", "663 + 622", Count(CountLines(src / "rpc")),
                "templates instead of a stub generator"});
  table.AddRow({"storage substrate (no 1987 analogue)", "-",
                Count(CountLines(src / "storage")),
                "simulated disk + file system the paper got from Unix"});
  table.AddRow({"common + baselines", "-",
                Count(CountLines(src / "common") + CountLines(src / "baselines")),
                "error model, coding, Section 2 comparison systems"});
  table.AddRow({"file-directory service", "-", Count(CountLines(src / "dirsvc")),
                "a second application on the engine (Section 1's list)"});
  table.Print();
}

}  // namespace
}  // namespace sdb::bench

int main() {
  sdb::bench::Run();
  return 0;
}
