// Experiment: sharded engine scaling (paper Section 7).
//
// "It seems likely that many larger databases ... could be handled by considering
// them as multiple separate databases for the purpose of writing checkpoints ...
// [with] a single log file with more complicated rules for flushing the log." This
// bench sweeps shard count x writer threads through ShardedDatabase and reports
// aggregate updates/s and physical fsyncs per update.
//
// Methodology: every configuration runs with the per-shard batch bound pinned to ONE
// record, so a shard's pipeline pays a full device-latency fsync window per update —
// the paper's serial commit discipline. What the sweep then isolates is exactly the
// tentpole mechanism: with N shards, N pipelines ride the cross-shard coalescer and
// one covering fsync commits batches from many shards at once, so aggregate
// throughput multiplies and fsyncs/update collapses below 1. Device latency is a
// wall-clock dilation of Sync (SimDisk charges simulated time but returns instantly
// in wall time), which makes the scaling ratio a property of commit-path overlap,
// not of host core count — it holds on a single-core CI runner.
//
// `--enforce` fails the run unless, at 8 writer threads, 8 shards deliver >= 3x the
// aggregate update throughput of 1 shard AND fsyncs/update < 1.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "bench/bench_common.h"
#include "src/core/sharded.h"

namespace sdb::bench {
namespace {

// Wraps a Vfs so every File::Sync also takes ~`delay` of wall time, standing in for
// device latency (same idiom as bench_group_commit).
class WallDelaySyncFile final : public File {
 public:
  WallDelaySyncFile(std::unique_ptr<File> inner, std::chrono::microseconds delay)
      : inner_(std::move(inner)), delay_(delay) {}

  Result<Bytes> ReadAt(std::uint64_t offset, std::size_t length) override {
    return inner_->ReadAt(offset, length);
  }
  Status Append(ByteSpan data) override { return inner_->Append(data); }
  Status WriteAt(std::uint64_t offset, ByteSpan data) override {
    return inner_->WriteAt(offset, data);
  }
  Status Truncate(std::uint64_t new_size) override { return inner_->Truncate(new_size); }
  Status Sync() override {
    std::this_thread::sleep_for(delay_);
    return inner_->Sync();
  }
  Result<std::uint64_t> Size() override { return inner_->Size(); }
  Status Close() override { return inner_->Close(); }

 private:
  std::unique_ptr<File> inner_;
  std::chrono::microseconds delay_;
};

class WallDelaySyncFs final : public Vfs {
 public:
  WallDelaySyncFs(Vfs& inner, std::chrono::microseconds delay)
      : inner_(inner), delay_(delay) {}

  Result<std::unique_ptr<File>> Open(std::string_view path, OpenMode mode) override {
    SDB_ASSIGN_OR_RETURN(std::unique_ptr<File> file, inner_.Open(path, mode));
    return std::unique_ptr<File>(new WallDelaySyncFile(std::move(file), delay_));
  }
  Status Delete(std::string_view path) override { return inner_.Delete(path); }
  Status Rename(std::string_view from, std::string_view to) override {
    return inner_.Rename(from, to);
  }
  Result<bool> Exists(std::string_view path) override { return inner_.Exists(path); }
  Result<std::vector<std::string>> List(std::string_view dir) override {
    return inner_.List(dir);
  }
  Status CreateDir(std::string_view path) override { return inner_.CreateDir(path); }
  Status SyncDir(std::string_view dir) override { return inner_.SyncDir(dir); }

 private:
  Vfs& inner_;
  std::chrono::microseconds delay_;
};

// One shard's application: a plain KV map.
class ShardKvApp final : public Application {
 public:
  Status ResetState() override {
    state_.clear();
    return OkStatus();
  }
  Result<Bytes> SerializeState() override {
    PickleWriter writer;
    writer.Write(state_);
    return std::move(writer).FinishEnvelope("BenchShardKv.state");
  }
  Status DeserializeState(ByteSpan data) override {
    SDB_ASSIGN_OR_RETURN(PickleReader reader,
                         PickleReader::FromEnvelope(data, "BenchShardKv.state"));
    return reader.Read(state_);
  }
  Status ApplyUpdate(ByteSpan record) override {
    SDB_ASSIGN_OR_RETURN(PickleReader reader, PickleReader::FromEnvelope(
                                                  record, "BenchShardKv.update"));
    std::pair<std::string, std::string> kv;
    SDB_RETURN_IF_ERROR(reader.Read(kv));
    state_.insert_or_assign(std::move(kv.first), std::move(kv.second));
    return OkStatus();
  }

  static Result<Bytes> EncodePut(const std::string& key, const std::string& value) {
    PickleWriter writer;
    writer.Write(std::make_pair(key, value));
    return std::move(writer).FinishEnvelope("BenchShardKv.update");
  }

 private:
  std::map<std::string, std::string> state_;
};

int TotalUpdates() { return QuickMode() ? 160 : 1600; }
std::chrono::microseconds SyncDelay() {
  return std::chrono::microseconds(QuickMode() ? 300 : 1000);
}
std::vector<int> ShardCounts() { return {1, 2, 4, 8}; }
std::vector<int> ThreadCounts() {
  return QuickMode() ? std::vector<int>{1, 8} : std::vector<int>{1, 2, 4, 8};
}

struct RunResult {
  int shards = 0;
  int threads = 0;
  std::uint64_t updates = 0;
  double wall_micros = 0;
  double updates_per_sec = 0;
  std::uint64_t covering_fsyncs = 0;
  double fsyncs_per_update = 0;
  std::uint64_t max_batches_per_fsync = 0;
};

RunResult RunWorkload(int shards, int threads) {
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;
  SimEnv env(env_options);
  WallDelaySyncFs vfs(env.fs(), SyncDelay());

  std::vector<std::unique_ptr<ShardKvApp>> apps;
  std::vector<Application*> raw;
  for (int p = 0; p < shards; ++p) {
    apps.push_back(std::make_unique<ShardKvApp>());
    raw.push_back(apps.back().get());
  }
  ShardedOptions options;
  options.vfs = &vfs;
  options.dir = "bench";
  options.clock = &env.clock();
  // One record per batch: each pipeline runs the paper's serial commit discipline,
  // so any fsync sharing is the cross-shard coalescer's doing, not in-shard batching.
  options.group_commit.max_batch_records = 1;

  auto db_or = ShardedDatabase::Open(raw, std::move(options));
  if (!db_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db_or.status().ToString().c_str());
    std::abort();
  }
  std::unique_ptr<ShardedDatabase> db = std::move(*db_or);

  const int per_thread = TotalUpdates() / threads;
  auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < per_thread; ++i) {
        std::string key = "t" + std::to_string(t) + "-k" + std::to_string(i);
        Status status = db->UpdateKey(key, [&key]() -> Result<Bytes> {
          return ShardKvApp::EncodePut(key, "value-" + key);
        });
        if (!status.ok()) {
          std::fprintf(stderr, "update failed: %s\n", status.ToString().c_str());
          std::abort();
        }
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  double wall_micros = static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());

  const ShardedStats stats = db->stats();
  RunResult result;
  result.shards = shards;
  result.threads = threads;
  result.updates = stats.updates;
  result.wall_micros = wall_micros;
  result.updates_per_sec =
      wall_micros == 0 ? 0 : static_cast<double>(stats.updates) * 1e6 / wall_micros;
  result.covering_fsyncs = stats.covering_fsyncs;
  result.fsyncs_per_update = stats.fsyncs_per_update();
  result.max_batches_per_fsync = stats.max_batches_per_fsync;
  return result;
}

std::string Format(const char* fmt, double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), fmt, v);
  return buffer;
}

int Run(bool enforce) {
  Banner("Shard scaling: N-way key-routed shards, one cross-shard fsync coalescer",
         "multiple separate databases over a single log file with more complicated "
         "rules for flushing (Section 7)");
  std::printf("\n%d updates per configuration, %lld us device sync latency%s\n\n",
              TotalUpdates(),
              static_cast<long long>(SyncDelay().count()),
              QuickMode() ? " (quick mode)" : "");

  Table table({"shards", "threads", "updates/s", "fsyncs/update", "max batches/fsync"});
  std::vector<RunResult> results;
  for (int shards : ShardCounts()) {
    for (int threads : ThreadCounts()) {
      RunResult r = RunWorkload(shards, threads);
      results.push_back(r);
      table.AddRow({std::to_string(r.shards), std::to_string(r.threads),
                    Format("%.0f", r.updates_per_sec),
                    Format("%.3f", r.fsyncs_per_update),
                    std::to_string(r.max_batches_per_fsync)});
    }
  }
  table.Print();

  // The headline comparison: most-parallel writer count, 8 shards vs 1.
  const int peak_threads = ThreadCounts().back();
  const RunResult* base = nullptr;
  const RunResult* wide = nullptr;
  for (const RunResult& r : results) {
    if (r.threads != peak_threads) {
      continue;
    }
    if (r.shards == 1) {
      base = &r;
    }
    if (r.shards == 8) {
      wide = &r;
    }
  }
  double ratio = (base != nullptr && wide != nullptr && base->updates_per_sec > 0)
                     ? wide->updates_per_sec / base->updates_per_sec
                     : 0;
  std::printf("\n8 shards vs 1 at %d threads: %.1fx aggregate throughput, "
              "%.3f fsyncs/update\n",
              peak_threads, ratio, wide != nullptr ? wide->fsyncs_per_update : 0.0);

  std::string json = "{\n  \"bench\": \"shard_scaling\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    json += "    {\"shards\": " + std::to_string(r.shards) +
            ", \"threads\": " + std::to_string(r.threads) +
            ", \"updates\": " + std::to_string(r.updates) +
            ", \"updates_per_sec\": " + Format("%.1f", r.updates_per_sec) +
            ", \"covering_fsyncs\": " + std::to_string(r.covering_fsyncs) +
            ", \"fsyncs_per_update\": " + Format("%.4f", r.fsyncs_per_update) +
            ", \"max_batches_per_fsync\": " + std::to_string(r.max_batches_per_fsync) +
            "}";
    json += (i + 1 < results.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"scaling_8v1\": " + Format("%.3f", ratio) + ",\n";
  json += "  \"fsyncs_per_update_8shards\": " +
          Format("%.4f", wide != nullptr ? wide->fsyncs_per_update : 0.0) + "\n}";
  MaybeWriteBenchJson("shard_scaling", json);

  if (enforce) {
    bool ok = true;
    if (ratio < 3.0) {
      std::printf("enforce: FAIL (8-shard scaling %.2fx < 3x)\n", ratio);
      ok = false;
    }
    if (wide == nullptr || wide->fsyncs_per_update >= 1.0) {
      std::printf("enforce: FAIL (fsyncs/update %.3f >= 1 at 8 shards)\n",
                  wide != nullptr ? wide->fsyncs_per_update : -1.0);
      ok = false;
    }
    if (!ok) {
      return 1;
    }
    std::printf("enforce: OK (%.1fx >= 3x, %.3f fsyncs/update < 1)\n", ratio,
                wide->fsyncs_per_update);
  }
  return 0;
}

}  // namespace
}  // namespace sdb::bench

int main(int argc, char** argv) {
  bool enforce = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--enforce") == 0) {
      enforce = true;
    }
  }
  return sdb::bench::Run(enforce);
}
