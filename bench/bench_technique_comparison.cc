// E7 — The Section 2 technique comparison, measured.
//
// Paper (Section 2):
//   - text files: "an update involves rewriting the entire file"; reliability via
//     atomic rename; "generally not practicable to produce good performance".
//   - ad hoc page schemes: "typically one disk write per update" but "quite
//     vulnerable to transient errors", especially multi-page updates.
//   - naive atomic commit: "two disk writes ... performs about a factor of two worse
//     for updates" with much better reliability.
//   - this design (smalldb): enquiries never touch the disk, one disk write per
//     update, full transient-failure recovery.
#include "bench/bench_common.h"
#include "src/baselines/adhoc_page_db.h"
#include "src/baselines/smalldb_kv.h"
#include "src/baselines/textfile_db.h"
#include "src/baselines/wal_commit_db.h"

namespace sdb::bench {
namespace {

using baselines::KvDatabase;

struct Measured {
  double update_ms = 0;
  double writes_per_update = 0;
  double bytes_per_update = 0;
  double enquiry_ms = 0;
  std::string crash_safety;
};

std::unique_ptr<KvDatabase> OpenKind(SimEnv& env, std::string_view kind, std::string dir) {
  if (kind == "textfile") {
    return std::move(*baselines::TextFileDb::Open(env.fs(), std::move(dir)));
  }
  if (kind == "adhoc") {
    return std::move(*baselines::AdHocPageDb::Open(env.fs(), std::move(dir)));
  }
  if (kind == "walcommit") {
    return std::move(*baselines::WalCommitDb::Open(env.fs(), std::move(dir)));
  }
  DatabaseOptions options;
  options.vfs = &env.fs();
  options.dir = std::move(dir);
  options.clock = &env.clock();
  return std::move(*baselines::SmallDbKv::Open(options, &env.cost_model()));
}

Measured MeasureKind(std::string_view kind) {
  Measured m;
  SimEnvOptions env_options;
  SimEnv env(env_options);
  auto db = OpenKind(env, kind, "db");

  Rng rng(17);
  // Populate: 200 keys of 100-byte values (a small operating-system database).
  for (int i = 0; i < 200; ++i) {
    if (!db->Put("key" + std::to_string(i), rng.NextString(100)).ok()) {
      std::abort();
    }
  }

  // Updates.
  constexpr int kUpdates = 50;
  SimDiskStats before = env.disk().stats();
  Micros start = env.clock().NowMicros();
  for (int i = 0; i < kUpdates; ++i) {
    if (!db->Put("key" + std::to_string(i % 200), rng.NextString(100)).ok()) {
      std::abort();
    }
  }
  SimDiskStats after = env.disk().stats();
  m.update_ms = static_cast<double>(env.clock().NowMicros() - start) / kUpdates / 1000.0;
  m.writes_per_update =
      static_cast<double>(after.page_writes - before.page_writes) / kUpdates;
  m.bytes_per_update =
      static_cast<double>(after.bytes_written - before.bytes_written) / kUpdates;

  // Enquiries (all techniques cache in memory; the point is none should hit the disk).
  start = env.clock().NowMicros();
  constexpr int kReads = 100;
  for (int i = 0; i < kReads; ++i) {
    if (!db->Get("key" + std::to_string(i % 200)).ok()) {
      std::abort();
    }
  }
  m.enquiry_ms = static_cast<double>(env.clock().NowMicros() - start) / kReads / 1000.0;

  // Crash probe: tear a mid-update disk write of a multi-page value, then check
  // whether the reopened database is intact.
  {
    SimEnvOptions probe_options;
    probe_options.microvax_cost_model = false;
    SimEnv probe_env(probe_options);
    {
      auto probe_db = OpenKind(probe_env, kind, "probe");
      if (!probe_db->Put("victim", std::string(900, 'A')).ok()) {
        std::abort();
      }
      (void)probe_env.fs().SyncDir("probe");
      CrashPlan plan(probe_env.disk().next_durable_op_sequence() + 1,
                     FaultAction::kCrashTorn);
      probe_env.disk().SetFaultInjector(plan.AsInjector());
      (void)probe_db->Put("victim", std::string(900, 'B'));
      probe_env.disk().SetFaultInjector(nullptr);
    }
    probe_env.fs().Crash();
    (void)probe_env.fs().Recover();
    auto reopened_kind = [&]() -> Result<std::unique_ptr<KvDatabase>> {
      if (kind == "textfile") {
        auto r = baselines::TextFileDb::Open(probe_env.fs(), "probe");
        if (!r.ok()) return r.status();
        return {std::unique_ptr<KvDatabase>(std::move(*r))};
      }
      if (kind == "adhoc") {
        auto r = baselines::AdHocPageDb::Open(probe_env.fs(), "probe");
        if (!r.ok()) return r.status();
        return {std::unique_ptr<KvDatabase>(std::move(*r))};
      }
      if (kind == "walcommit") {
        auto r = baselines::WalCommitDb::Open(probe_env.fs(), "probe");
        if (!r.ok()) return r.status();
        return {std::unique_ptr<KvDatabase>(std::move(*r))};
      }
      DatabaseOptions options;
      options.vfs = &probe_env.fs();
      options.dir = "probe";
      auto r = baselines::SmallDbKv::Open(options);
      if (!r.ok()) return r.status();
      return {std::unique_ptr<KvDatabase>(std::move(*r))};
    }();
    if (!reopened_kind.ok()) {
      m.crash_safety = "UNRECOVERABLE (restore from backup)";
    } else {
      Status verify = (*reopened_kind)->Verify();
      Result<std::string> value = (*reopened_kind)->Get("victim");
      bool intact = value.ok() && (*value == std::string(900, 'A') ||
                                   *value == std::string(900, 'B'));
      if (verify.ok() && intact) {
        m.crash_safety = "safe (old or new value)";
      } else if (!verify.ok()) {
        m.crash_safety = "CORRUPT (detected; needs backup)";
      } else {
        m.crash_safety = "SILENTLY WRONG VALUE";
      }
    }
  }
  return m;
}

void Run() {
  Banner("E7: implementation-technique comparison (Section 2)",
         "text files rewrite everything; ad hoc ~1 write but fragile; naive atomic "
         "commit = 2 writes (~2x worse); this design = 1 write and safe");

  Table table({"technique", "update (sim)", "disk writes/upd", "bytes/upd",
               "enquiry (sim)", "torn multi-page update"});
  struct Row {
    const char* kind;
    const char* label;
  };
  for (const Row& row : std::initializer_list<Row>{
           {"textfile", "text file + atomic rename"},
           {"adhoc", "ad hoc pages, in-place"},
           {"walcommit", "naive atomic commit (WAL+data)"},
           {"smalldb", "this paper (log + checkpoint)"}}) {
    Measured m = MeasureKind(row.kind);
    table.AddRow({row.label, Num(m.update_ms, " ms"), Num(m.writes_per_update),
                  Num(m.bytes_per_update, " B"), Num(m.enquiry_ms, " ms"),
                  m.crash_safety});
  }
  table.Print();
  std::printf("\n(the naive-atomic-commit/this-design disk-write ratio is the paper's "
              "\"factor of two\")\n");
}

}  // namespace
}  // namespace sdb::bench

int main() {
  sdb::bench::Run();
  return 0;
}
