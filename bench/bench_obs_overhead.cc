// Observability overhead guard: single-thread update latency with stage timing on
// vs off must differ by less than 3%.
//
// Two comparisons, both best-of-N interleaved trials of wall-clock time:
//
//   - PosixFs (enforced with --enforce): real fsync per commit, the deployment shape
//     the <3% budget is written against. The instrumented run pays every clock read,
//     histogram record, and trace-ring push; the baseline run flips the same runtime
//     switch that -DSDB_OBS_DISABLED hard-wires to false, so it matches a
//     compiled-out build up to one always-false branch per probe.
//   - SimFs (reported only): no real device, so updates are a few microseconds of
//     pure CPU. This deliberately exaggerates the relative cost of instrumentation;
//     it is printed as the worst-case CPU number, not enforced.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>

#include "bench/bench_common.h"
#include "src/obs/metrics.h"
#include "src/storage/posix_fs.h"

namespace sdb::bench {
namespace {

constexpr double kBudget = 0.03;  // 3% — the ISSUE's overhead ceiling

// Times `updates` single-thread updates (paper-sized 300-byte values) against a
// fresh database on `vfs`, returning wall-clock microseconds.
double TimeUpdates(Vfs& vfs, Clock& clock, const std::string& dir, int updates) {
  BenchKvApp app;
  DatabaseOptions options;
  options.vfs = &vfs;
  options.dir = dir;
  options.clock = &clock;

  auto db_or = Database::Open(app, options);
  if (!db_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db_or.status().ToString().c_str());
    std::abort();
  }
  std::unique_ptr<Database> db = std::move(*db_or);
  Rng rng(17);

  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < updates; ++i) {
    Status status = db->Update(app.PreparePut("k" + std::to_string(i), rng.NextString(300)));
    if (!status.ok()) {
      std::fprintf(stderr, "update failed: %s\n", status.ToString().c_str());
      std::abort();
    }
  }
  return static_cast<double>(std::chrono::duration_cast<std::chrono::microseconds>(
                                 std::chrono::steady_clock::now() - start)
                                 .count());
}

// Best-of-`trials` for both modes, interleaved so drift hits them equally.
// Returns instrumented/baseline - 1.
double MeasurePosixOverhead(int updates, int trials) {
  namespace fsys = std::filesystem;
  fsys::path root = fsys::current_path() / "bench_obs_overhead_tmp";
  std::error_code ec;
  fsys::remove_all(root, ec);
  fsys::create_directories(root);

  WallClock wall;
  double best[2] = {1e18, 1e18};
  int run = 0;
  for (int trial = 0; trial < trials; ++trial) {
    for (bool timing : {false, true}) {
      obs::SetTimingEnabled(timing);
      PosixFs fs(root.string());
      double elapsed = TimeUpdates(fs, wall, "run" + std::to_string(run++), updates);
      best[timing ? 1 : 0] = std::min(best[timing ? 1 : 0], elapsed);
    }
  }
  obs::SetTimingEnabled(true);
  fsys::remove_all(root, ec);
  return best[1] / best[0] - 1.0;
}

double MeasureSimOverhead(int updates, int trials) {
  double best[2] = {1e18, 1e18};
  for (int trial = 0; trial < trials; ++trial) {
    for (bool timing : {false, true}) {
      obs::SetTimingEnabled(timing);
      SimEnv env;
      double elapsed = TimeUpdates(env.fs(), env.clock(), "db", updates);
      best[timing ? 1 : 0] = std::min(best[timing ? 1 : 0], elapsed);
    }
  }
  obs::SetTimingEnabled(true);
  return best[1] / best[0] - 1.0;
}

int Run(bool enforce) {
  Banner("Observability overhead: stage timing on vs off, single-thread updates",
         "instrumentation must cost <3% of update throughput");
#ifdef SDB_OBS_DISABLED
  std::printf("built with SDB_OBS_DISABLED: timing is compiled out, both modes are "
              "the baseline.\n");
#endif

  // Trials need to be long enough (tens of milliseconds) that per-fsync jitter
  // averages out before taking the minimum; short windows swing by ±10%.
  const int updates = QuickMode() ? 150 : 300;
  const int trials = QuickMode() ? 5 : 7;
  double posix = MeasurePosixOverhead(updates, trials);
  const int sim_updates = QuickMode() ? 500 : 3000;
  double sim = MeasureSimOverhead(sim_updates, trials);

  Table table({"backend", "updates/trial", "trials", "overhead", "enforced"});
  table.AddRow({"PosixFs (real fsync per commit)", Count(updates), Count(trials),
                Num(posix * 100.0, "%"), enforce ? "< 3%" : "no"});
  table.AddRow({"SimFs (CPU only, no device)", Count(sim_updates), Count(trials),
                Num(sim * 100.0, "%"), "no (informational)"});
  table.Print();

  // Wall-clock fsync minima occasionally wobble past 3% under parallel test load;
  // re-measure with more trials before declaring a regression. A persistent excess
  // across ever-longer runs is a real one.
  int retry_trials = trials;
  for (int attempt = 0; enforce && posix >= kBudget && attempt < 2; ++attempt) {
    retry_trials *= 2;
    std::printf("\nover budget at %.1f%%; re-measuring with %d trials...\n",
                posix * 100.0, retry_trials);
    posix = MeasurePosixOverhead(updates, retry_trials);
    std::printf("re-measured overhead: %.1f%%\n", posix * 100.0);
  }
  if (enforce && posix >= kBudget) {
    std::fprintf(stderr, "FAIL: instrumentation overhead %.1f%% >= 3%%\n",
                 posix * 100.0);
    return 1;
  }
  std::printf("\nPASS: instrumentation overhead within the 3%% budget\n");
  return 0;
}

}  // namespace
}  // namespace sdb::bench

int main(int argc, char** argv) {
  bool enforce = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--enforce") == 0) {
      enforce = true;
    }
  }
  return sdb::bench::Run(enforce);
}
