// Crash-recovery walkthrough on the simulated storage stack.
//
// Narrates the paper's Section 4 reliability argument with real injected failures:
//   1. a crash during the log disk write (torn page) — the update vanishes cleanly;
//   2. a crash just after the commit point — the update survives via log replay;
//   3. a crash in the middle of the checkpoint switch — restart falls back to the
//      previous generation and loses nothing.
//
//   build/examples/crash_recovery_demo
#include <cstdio>

#include "src/baselines/smalldb_kv.h"
#include "src/storage/sim_env.h"

using namespace sdb;

namespace {

std::unique_ptr<baselines::SmallDbKv> Reopen(SimEnv& env) {
  env.fs().Crash();
  if (Status s = env.fs().Recover(); !s.ok()) {
    std::fprintf(stderr, "recover failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  DatabaseOptions options;
  options.vfs = &env.fs();
  options.dir = "db";
  auto db = baselines::SmallDbKv::Open(options);
  if (!db.ok()) {
    std::fprintf(stderr, "reopen failed: %s\n", db.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*db);
}

void Report(const char* key, const Result<std::string>& value) {
  std::printf("    %-10s : %s\n", key,
              value.ok() ? ("present = " + *value).c_str()
                         : value.status().ToString().c_str());
}

}  // namespace

int main() {
  SimEnvOptions env_options;
  env_options.microvax_cost_model = false;
  SimEnv env(env_options);

  DatabaseOptions options;
  options.vfs = &env.fs();
  options.dir = "db";
  auto db = *baselines::SmallDbKv::Open(options);

  std::printf("== scenario 1: power fails DURING the commit disk write ==\n");
  (void)db->Put("safe", "committed before the crash");
  {
    CrashPlan plan(env.disk().next_durable_op_sequence(), FaultAction::kCrashTorn);
    env.disk().SetFaultInjector(plan.AsInjector());
    Status status = db->Put("doomed", "never committed");
    std::printf("  Put(\"doomed\") returned: %s\n", status.ToString().c_str());
    env.disk().SetFaultInjector(nullptr);
  }
  std::printf("  restarting (checkpoint load + log replay; the torn log page reads "
              "back as an error and the partial entry is discarded)...\n");
  db = Reopen(env);
  Report("safe", db->Get("safe"));
  Report("doomed", db->Get("doomed"));

  std::printf("\n== scenario 2: power fails right AFTER the commit point ==\n");
  {
    Status status = db->Put("phoenix", "rises after restart");
    std::printf("  Put(\"phoenix\") returned: %s — the log fsync completed, so this "
                "update is committed\n",
                status.ToString().c_str());
    std::printf("  ...power fails immediately afterwards (nothing else reached the "
                "disk)\n");
  }
  db = Reopen(env);
  Report("phoenix", db->Get("phoenix"));
  std::printf("  (an update whose log write completed is always completed at "
              "restart: the commit point is the disk write)\n");

  std::printf("\n== scenario 3: power fails in the middle of a checkpoint ==\n");
  std::printf("  before: generation %llu, log holds the updates above\n",
              static_cast<unsigned long long>(db->database().current_version()));
  {
    CrashPlan plan(env.disk().next_durable_op_sequence() + 2, FaultAction::kCrashBefore);
    env.disk().SetFaultInjector(plan.AsInjector());
    Status status = db->Checkpoint();
    std::printf("  Checkpoint() returned: %s\n", status.ToString().c_str());
    env.disk().SetFaultInjector(nullptr);
  }
  db = Reopen(env);
  std::printf("  after restart: generation %llu (the interrupted switch was rolled "
              "back; stray files deleted)\n",
              static_cast<unsigned long long>(db->database().current_version()));
  Report("safe", db->Get("safe"));
  Report("phoenix", db->Get("phoenix"));

  std::printf("\n== and a checkpoint that completes ==\n");
  if (Status s = db->Checkpoint(); !s.ok()) {
    std::fprintf(stderr, "checkpoint failed: %s\n", s.ToString().c_str());
    return 1;
  }
  db = Reopen(env);
  std::printf("  after restart: generation %llu, %llu log entries replayed (log was "
              "reset by the checkpoint)\n",
              static_cast<unsigned long long>(db->database().current_version()),
              static_cast<unsigned long long>(
                  db->database().stats().restart.entries_replayed));
  Report("safe", db->Get("safe"));
  Report("phoenix", db->Get("phoenix"));
  return 0;
}
