// Building your own database on the engine: a user-accounts table (the paper's
// motivating example of "records of user accounts", i.e. /etc/passwd done right).
//
// Shows the full adoption pattern for the core library:
//   1. define your in-memory state (a strongly typed structure of your choosing);
//   2. define your update records and give them pickling (SDB_PICKLE_FIELDS);
//   3. implement the Application interface (serialize / deserialize / apply);
//   4. express each operation as precondition-check + record + apply.
//
//   build/examples/user_accounts
#include <cstdio>
#include <map>

#include "src/core/database.h"
#include "src/pickle/pickle.h"
#include "src/pickle/traits.h"
#include "src/storage/posix_fs.h"

namespace {

using namespace sdb;

struct Account {
  std::string name;
  std::uint32_t uid = 0;
  std::string shell;
  std::string home;
  bool locked = false;

  SDB_PICKLE_FIELDS(Account, name, uid, shell, home, locked)
};

// One update record type covering all mutations, tagged by op.
struct AccountUpdate {
  std::uint8_t op = 0;  // 1=create, 2=set-shell, 3=lock, 4=delete
  Account account;      // full record for create; name+fields used otherwise

  SDB_PICKLE_FIELDS(AccountUpdate, op, account)
};

struct AccountsState {
  std::map<std::string, Account, std::less<>> by_name;
  std::uint32_t next_uid = 1000;

  SDB_PICKLE_FIELDS(AccountsState, by_name, next_uid)
};

class AccountsApp final : public Application {
 public:
  Status ResetState() override {
    state_ = AccountsState{};
    return OkStatus();
  }
  Result<Bytes> SerializeState() override { return PickleWrite(state_); }
  Status DeserializeState(ByteSpan data) override {
    SDB_ASSIGN_OR_RETURN(state_, PickleRead<AccountsState>(data));
    return OkStatus();
  }
  Status ApplyUpdate(ByteSpan record) override {
    SDB_ASSIGN_OR_RETURN(AccountUpdate update, PickleRead<AccountUpdate>(record));
    Account& target = state_.by_name[update.account.name];
    switch (update.op) {
      case 1:
        target = update.account;
        state_.next_uid = std::max(state_.next_uid, update.account.uid + 1);
        return OkStatus();
      case 2:
        target.shell = update.account.shell;
        return OkStatus();
      case 3:
        target.locked = true;
        return OkStatus();
      case 4:
        state_.by_name.erase(update.account.name);
        return OkStatus();
      default:
        return CorruptionError("unknown account op");
    }
  }

  const AccountsState& state() const { return state_; }

  // --- operations: precondition + pickled record, run through the engine ---

  Status CreateAccount(Database& db, std::string name, std::string shell) {
    return db.Update([this, &name, &shell]() -> Result<Bytes> {
      if (state_.by_name.count(name) != 0) {
        return AlreadyExistsError("account exists: " + name);
      }
      AccountUpdate update;
      update.op = 1;
      update.account = Account{name, state_.next_uid, shell, "/home/" + name, false};
      return PickleWrite(update);
    });
  }

  Status SetShell(Database& db, std::string name, std::string shell) {
    return db.Update([this, &name, &shell]() -> Result<Bytes> {
      if (state_.by_name.count(name) == 0) {
        return NotFoundError("no such account: " + name);
      }
      AccountUpdate update;
      update.op = 2;
      update.account.name = name;
      update.account.shell = shell;
      return PickleWrite(update);
    });
  }

  Status Lock(Database& db, std::string name) {
    return db.Update([this, &name]() -> Result<Bytes> {
      auto it = state_.by_name.find(name);
      if (it == state_.by_name.end()) {
        return NotFoundError("no such account: " + name);
      }
      if (it->second.locked) {
        return FailedPreconditionError("already locked: " + name);
      }
      AccountUpdate update;
      update.op = 3;
      update.account.name = name;
      return PickleWrite(update);
    });
  }

 private:
  AccountsState state_;
};

}  // namespace

int main() {
  PosixFs fs;
  AccountsApp app;
  DatabaseOptions options;
  options.vfs = &fs;
  options.dir = "accounts-data";
  options.checkpoint_policy.every_n_updates = 100;

  auto db = Database::Open(app, options);
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    return 1;
  }

  std::printf("accounts recovered from disk: %zu\n\n", app.state().by_name.size());

  auto report = [](const char* what, const Status& status) {
    std::printf("  %-34s -> %s\n", what, status.ToString().c_str());
  };
  report("create alice (zsh)", app.CreateAccount(**db, "alice", "/bin/zsh"));
  report("create bob (bash)", app.CreateAccount(**db, "bob", "/bin/bash"));
  report("create alice again", app.CreateAccount(**db, "alice", "/bin/sh"));
  report("change bob's shell", app.SetShell(**db, "bob", "/bin/fish"));
  report("lock alice", app.Lock(**db, "alice"));
  report("lock alice again", app.Lock(**db, "alice"));

  std::printf("\ncurrent table (read under the shared lock):\n");
  Status enquiry = (*db)->Enquire([&app] {
    std::printf("  %-8s %-6s %-10s %-14s %s\n", "name", "uid", "shell", "home", "locked");
    for (const auto& [name, account] : app.state().by_name) {
      std::printf("  %-8s %-6u %-10s %-14s %s\n", account.name.c_str(), account.uid,
                  account.shell.c_str(), account.home.c_str(),
                  account.locked ? "yes" : "no");
    }
    return OkStatus();
  });
  if (!enquiry.ok()) {
    return 1;
  }

  std::printf("\n(re-running keeps accumulating state; precondition failures above "
              "never touched the log)\n");
  return 0;
}
