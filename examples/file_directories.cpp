// The paper's fourth motivating database: "file directories" — a file-system metadata
// service on the engine, demonstrating two-path rename as a single-shot transaction.
//
//   build/examples/file_directories
//
// Like the other examples this runs on the real file system (./dirsvc-data) and
// recovers its state on every run.
#include <cstdio>

#include "src/dirsvc/directory_service.h"
#include "src/storage/posix_fs.h"

using namespace sdb;

namespace {

void Tree(dirsvc::DirectoryService& svc, const std::string& path, int depth) {
  auto names = svc.ReadDir(path);
  if (!names.ok()) {
    return;
  }
  for (const std::string& name : *names) {
    std::string child = path.empty() ? name : path + "/" + name;
    dirsvc::EntryAttrs attrs = *svc.Stat(child);
    bool is_dir = attrs.type == static_cast<std::uint8_t>(dirsvc::EntryType::kDirectory);
    std::printf("  %*s%s%s", depth * 2, "", name.c_str(), is_dir ? "/" : "");
    if (!is_dir) {
      std::printf("  (%llu bytes, %s)", static_cast<unsigned long long>(attrs.size),
                  attrs.owner.c_str());
    }
    std::printf("\n");
    if (is_dir) {
      Tree(svc, child, depth + 1);
    }
  }
}

}  // namespace

int main() {
  PosixFs fs;
  dirsvc::DirectoryServiceOptions options;
  options.db.vfs = &fs;
  options.db.dir = "dirsvc-data";
  options.db.checkpoint_policy.every_n_updates = 200;

  auto svc = dirsvc::DirectoryService::Open(std::move(options));
  if (!svc.ok()) {
    std::fprintf(stderr, "open failed: %s\n", svc.status().ToString().c_str());
    return 1;
  }
  dirsvc::DirectoryService& dirs = **svc;

  std::printf("recovered %llu entries from disk\n\n",
              static_cast<unsigned long long>(dirs.entry_count()));

  auto show = [](const char* what, const Status& status) {
    std::printf("  %-40s -> %s\n", what, status.ToString().c_str());
  };
  std::uint64_t now = 1700000000;
  show("MkDir projects", dirs.MkDir("projects", "alice", now));
  show("MkDir projects/smalldb", dirs.MkDir("projects/smalldb", "alice", now));
  show("CreateFile .../engine.cc (12 KB)",
       dirs.CreateFile("projects/smalldb/engine.cc", "alice", 12288, now));
  show("CreateFile .../draft.txt", dirs.CreateFile("projects/draft.txt", "alice", 640, now));
  show("MkDir archive", dirs.MkDir("archive", "alice", now));

  std::printf("\nsingle-shot two-path transaction: Rename(projects/draft.txt, "
              "archive/paper-v1.txt)\n");
  show("Rename",
       dirs.Rename("projects/draft.txt", "archive/paper-v1.txt"));
  std::printf("\nprecondition failures never reach the log:\n");
  show("Rename archive -> projects/smalldb (occupied, non-empty)",
       dirs.Rename("archive", "projects/smalldb"));
  show("Unlink projects (not empty)", dirs.Unlink("projects"));

  std::printf("\ncurrent tree:\n");
  Tree(dirs, "", 0);

  std::printf("\n(run me again — everything persists through checkpoint + log)\n");
  return 0;
}
