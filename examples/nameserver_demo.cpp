// The paper's example application: a name server mapping string names to values,
// where the namespace is a tree with string-labelled arcs (a tree of hash tables on
// the managed typed heap).
//
//   build/examples/nameserver_demo
//
// Demonstrates enquiries, browsing, updates, subtree removal, checkpointing, and
// recovery across restarts — all on the real file system in ./nameserver-data.
#include <cstdio>

#include "src/nameserver/name_server.h"
#include "src/storage/posix_fs.h"

namespace {

void Show(const char* label, const sdb::Status& status) {
  std::printf("  %-40s -> %s\n", label, status.ToString().c_str());
}

}  // namespace

int main() {
  sdb::PosixFs fs;

  sdb::ns::NameServerOptions options;
  options.db.vfs = &fs;
  options.db.dir = "nameserver-data";
  options.replica_id = "demo-server";

  auto server = sdb::ns::NameServer::Open(options);
  if (!server.ok()) {
    std::fprintf(stderr, "open failed: %s\n", server.status().ToString().c_str());
    return 1;
  }
  sdb::ns::NameServer& ns = **server;

  auto replayed = ns.database().stats().restart.entries_replayed;
  if (replayed > 0 || ns.database().current_version() > 1) {
    std::printf("recovered existing database (generation %llu, %llu log entries "
                "replayed)\n\n",
                static_cast<unsigned long long>(ns.database().current_version()),
                static_cast<unsigned long long>(replayed));
  }

  std::printf("binding names (each update = precondition check, one fsync'd log "
              "append, in-memory apply):\n");
  Show("Set hosts/alpha = 10.0.0.1", ns.Set("hosts/alpha", "10.0.0.1"));
  Show("Set hosts/beta  = 10.0.0.2", ns.Set("hosts/beta", "10.0.0.2"));
  Show("Set services/web/primary = alpha:80", ns.Set("services/web/primary", "alpha:80"));
  Show("Set services/web/backup  = beta:80", ns.Set("services/web/backup", "beta:80"));
  Show("Set services/mail/mx = alpha:25", ns.Set("services/mail/mx", "alpha:25"));

  std::printf("\nenquiries (pure virtual-memory lookups; the disk is not involved):\n");
  for (const char* path : {"hosts/alpha", "services/web/primary"}) {
    auto value = ns.Lookup(path);
    std::printf("  Lookup %-24s = %s\n", path,
                value.ok() ? value->c_str() : value.status().ToString().c_str());
  }

  std::printf("\nbrowsing the tree of hash tables:\n");
  for (const char* dir : {"", "services", "services/web"}) {
    auto labels = ns.List(dir);
    std::printf("  List \"%s\": ", dir);
    if (labels.ok()) {
      for (const std::string& label : *labels) {
        std::printf("%s ", label.c_str());
      }
    }
    std::printf("\n");
  }

  std::printf("\nremoving a whole subtree (\"update operations for any set of "
              "sub-trees\"):\n");
  Show("Remove services/mail", ns.Remove("services/mail"));
  Show("Lookup services/mail/mx now", ns.Lookup("services/mail/mx").status());

  std::printf("\nprecondition failure leaves no trace in the log:\n");
  Show("Remove no/such/name", ns.Remove("no/such/name"));

  std::printf("\ncheckpointing (PickleWrite of the whole heap graph, then the atomic "
              "version switch):\n");
  Show("Checkpoint", ns.Checkpoint());
  std::printf("  now at generation %llu with an empty log\n",
              static_cast<unsigned long long>(ns.database().current_version()));

  std::printf("\nrun me again: everything above is recovered from checkpoint + log.\n");
  return 0;
}
