// sdb_inspect: offline inspection of a smalldb database directory.
//
//   build/examples/sdb_inspect <dir>
//
// Resolves the current generation (without modifying anything), verifies the
// checkpoint envelope and every log entry, and prints the directory's state — the
// operational tool you reach for before a backup or after suspicious hardware noise.
#include <cstdio>

#include "src/core/audit.h"
#include "src/core/integrity.h"
#include "src/storage/posix_fs.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <database-dir>\n", argv[0]);
    return 2;
  }
  sdb::PosixFs fs;
  std::string dir = argv[1];

  auto report = sdb::VerifyDatabaseDir(fs, dir);
  if (!report.ok()) {
    std::fprintf(stderr, "cannot inspect %s: %s\n", dir.c_str(),
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("database directory: %s\n", dir.c_str());
  std::printf("  current generation : %llu%s\n",
              static_cast<unsigned long long>(report->version),
              report->pending_switch ? "  (committed switch pending cleanup)" : "");
  std::printf("  checkpoint         : %s, %llu bytes, pickled type '%s'\n",
              report->checkpoint_ok ? "OK" : "DAMAGED",
              static_cast<unsigned long long>(report->checkpoint_bytes),
              report->checkpoint_type.c_str());
  if (!report->chain_deltas.empty() || !report->chain_ok) {
    std::printf("  delta chain        : %s, base checkpoint%llu + %zu delta(s), "
                "%llu delta bytes:",
                report->chain_ok ? "OK" : "DAMAGED",
                static_cast<unsigned long long>(report->chain_base),
                report->chain_deltas.size(),
                static_cast<unsigned long long>(report->chain_delta_bytes));
    for (std::uint64_t version : report->chain_deltas) {
      std::printf(" delta%llu", static_cast<unsigned long long>(version));
    }
    std::printf("\n");
  }
  std::printf("  log                : %s, %llu entries, %llu bytes%s\n",
              report->log_ok ? "OK" : "DAMAGED",
              static_cast<unsigned long long>(report->log_entries),
              static_cast<unsigned long long>(report->log_bytes),
              report->log_has_partial_tail ? "  (torn tail: will be discarded at replay)"
                                           : "");
  if (report->log_damaged_entries > 0) {
    std::printf("  damaged log entries: %llu (open with skip_damaged_log_entries, or "
                "restore from a replica)\n",
                static_cast<unsigned long long>(report->log_damaged_entries));
  }
  if (!report->pending_logs.empty()) {
    std::printf("  pending rotation   : live log is logfile%llu; chain log(s) verified:",
                static_cast<unsigned long long>(report->live_log_version));
    for (std::uint64_t version : report->pending_logs) {
      std::printf(" logfile%llu", static_cast<unsigned long long>(version));
    }
    std::printf("\n");
  }
  if (report->previous_version.has_value()) {
    std::printf("  previous generation: %llu retained (hard-error fallback available)\n",
                static_cast<unsigned long long>(*report->previous_version));
  }
  if (!report->audit_logs.empty()) {
    std::printf("  audit trail        : %zu retained log(s):", report->audit_logs.size());
    for (std::uint64_t version : report->audit_logs) {
      std::printf(" audit%llu", static_cast<unsigned long long>(version));
    }
    std::printf("\n");
  }
  for (const std::string& problem : report->problems) {
    std::printf("  problem            : %s\n", problem.c_str());
  }
  std::printf("verdict: %s\n", report->healthy() ? "HEALTHY" : "NEEDS ATTENTION");
  return report->healthy() ? 0 : 1;
}
