// Quickstart: a durable key-value map in a dozen lines.
//
// SmallDbKv is the library's ready-made key-value application: an in-memory
// std::map made durable with the paper's redo log + checkpoint design. This example
// runs on the real file system (PosixFs) in ./quickstart-data.
//
//   build/examples/quickstart
//
// Run it twice: the second run recovers the first run's state by loading the
// checkpoint and replaying the log.
#include <cstdio>

#include "src/baselines/smalldb_kv.h"
#include "src/storage/posix_fs.h"

int main() {
  sdb::PosixFs fs;

  sdb::DatabaseOptions options;
  options.vfs = &fs;
  options.dir = "quickstart-data";
  // Automatic checkpoint once the log holds 64 KB (the paper would say: nightly).
  options.checkpoint_policy.log_bytes_threshold = 64 * 1024;

  auto db = sdb::baselines::SmallDbKv::Open(options);
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    return 1;
  }

  // Reads are pure in-memory lookups; writes are committed by one fsync'd log append.
  auto previous = (*db)->Get("visits");
  long visits = previous.ok() ? std::strtol(previous->c_str(), nullptr, 10) : 0;
  std::printf("previous visits recorded: %ld\n", visits);

  if (sdb::Status s = (*db)->Put("visits", std::to_string(visits + 1)); !s.ok()) {
    std::fprintf(stderr, "put failed: %s\n", s.ToString().c_str());
    return 1;
  }
  if (sdb::Status s = (*db)->Put("greeting", "hello from smalldb"); !s.ok()) {
    std::fprintf(stderr, "put failed: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("now stored:\n");
  std::vector<std::string> keys = *(*db)->Keys();
  for (const std::string& key : keys) {
    std::printf("  %-10s = %s\n", key.c_str(), (*db)->Get(key)->c_str());
  }

  // An explicit checkpoint: writes checkpoint<N+1>, empties the log, and atomically
  // switches the version file — the paper's Section 3 sequence.
  if (sdb::Status s = (*db)->Checkpoint(); !s.ok()) {
    std::fprintf(stderr, "checkpoint failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("checkpointed; database is now generation %llu\n",
              static_cast<unsigned long long>((*db)->database().current_version()));
  std::printf("run me again — the count survives restarts.\n");
  return 0;
}
