// sdb_dump: print every key/value pair of a SmallDbKv-format database directory,
// opened read-only (zero side effects — safe on a live, quiescent database).
//
//   build/examples/sdb_dump <dir>
//
// Pairs with sdb_inspect: inspect checks the container, dump shows the contents.
#include <cstdio>

#include "src/baselines/smalldb_kv.h"
#include "src/storage/posix_fs.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <database-dir>\n", argv[0]);
    return 2;
  }
  sdb::PosixFs fs;
  sdb::DatabaseOptions options;
  options.vfs = &fs;
  options.dir = argv[1];

  auto kv = sdb::baselines::SmallDbKv::OpenReadOnly(options);
  if (!kv.ok()) {
    std::fprintf(stderr, "cannot open %s read-only: %s\n", argv[1],
                 kv.status().ToString().c_str());
    return 1;
  }

  auto keys = (*kv)->Keys();
  if (!keys.ok()) {
    std::fprintf(stderr, "listing failed: %s\n", keys.status().ToString().c_str());
    return 1;
  }
  std::printf("%zu key(s) in %s (generation %llu):\n", keys->size(), argv[1],
              static_cast<unsigned long long>((*kv)->database().current_version()));
  for (const std::string& key : *keys) {
    auto value = (*kv)->Get(key);
    std::printf("  %-24s = %s\n", key.c_str(),
                value.ok() ? value->c_str() : value.status().ToString().c_str());
  }
  return 0;
}
