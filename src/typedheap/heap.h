// A managed, strongly typed object heap with a mark-sweep garbage collector.
//
// The paper keeps its whole database "as a strongly typed data structure in virtual
// memory ... managed entirely by a general purpose allocator and garbage collector".
// C++ has neither runtime typing nor GC, so this module supplies both: objects are
// allocated against a TypeDesc, field access is kind-checked at run time, and
// Heap::Collect() reclaims everything unreachable from the registered roots.
//
// Collection is explicit (the engine runs it after checkpoints and large deletions);
// there is no allocation-triggered collection, so raw Object* values held across
// Allocate calls stay valid as long as they are reachable when Collect() runs.
#ifndef SMALLDB_SRC_TYPEDHEAP_HEAP_H_
#define SMALLDB_SRC_TYPEDHEAP_HEAP_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/typedheap/type_desc.h"

namespace sdb::th {

class Heap;

// One heap object: a fixed set of slots, one per field of its TypeDesc. All accessors
// are kind-checked; using the wrong accessor is an error, never type confusion.
class Object {
 public:
  using RefList = std::vector<Object*>;
  using StringRefMap = std::map<std::string, Object*, std::less<>>;

  const TypeDesc& type() const { return *type_; }

  // --- scalar fields ---
  Result<std::int64_t> GetInt(std::size_t field) const;
  Status SetInt(std::size_t field, std::int64_t value);
  Result<double> GetReal(std::size_t field) const;
  Status SetReal(std::size_t field, double value);
  Result<const std::string*> GetString(std::size_t field) const;
  Status SetString(std::size_t field, std::string value);

  // --- reference field ---
  Result<Object*> GetRef(std::size_t field) const;  // may be nullptr
  Status SetRef(std::size_t field, Object* value);

  // --- reference-list field ---
  Result<std::size_t> ListSize(std::size_t field) const;
  Result<Object*> ListGet(std::size_t field, std::size_t index) const;
  Status ListAppend(std::size_t field, Object* value);
  Status ListSet(std::size_t field, std::size_t index, Object* value);
  Status ListClear(std::size_t field);

  // --- string->ref map field (the name server's hash tables) ---
  Result<Object*> MapGet(std::size_t field, std::string_view key) const;  // kNotFound if absent
  Status MapSet(std::size_t field, std::string_view key, Object* value);
  Status MapErase(std::size_t field, std::string_view key);  // kNotFound if absent
  Result<std::size_t> MapSize(std::size_t field) const;
  Result<const StringRefMap*> MapView(std::size_t field) const;

  // Approximate memory footprint, for heap statistics.
  std::size_t ApproximateBytes() const;

 private:
  friend class Heap;

  using Slot = std::variant<std::int64_t, double, std::string, Object*, RefList, StringRefMap>;

  explicit Object(const TypeDesc* type);

  Status CheckField(std::size_t field, FieldKind expected) const;

  const TypeDesc* type_;
  std::vector<Slot> slots_;
  bool marked_ = false;
};

struct GcStats {
  std::uint64_t collections = 0;
  std::uint64_t objects_freed = 0;
  std::uint64_t last_live = 0;
  std::uint64_t last_freed = 0;
};

class Heap {
 public:
  Heap() = default;
  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;

  // Allocates a new object of `type` with zero/null/empty fields. The descriptor must
  // outlive the heap (registry-owned descriptors always do).
  Object* Allocate(const TypeDesc* type);

  // Root set management. Roots pin objects across Collect(); the database engine
  // registers its state root here.
  void AddRoot(Object* object);
  void RemoveRoot(Object* object);

  // Mark-sweep collection: frees every object unreachable from the roots.
  // Returns the number of objects freed.
  std::uint64_t Collect();

  std::size_t live_objects() const { return objects_.size(); }
  std::size_t approximate_bytes() const;
  const GcStats& gc_stats() const { return gc_stats_; }

  // Heap integrity check: every reference in every live object (and every root) must
  // point to an object this heap owns. Catches dangling pointers from misuse (holding
  // an Object* across a Collect() that freed it) before they corrupt anything.
  Status Validate() const;

  // Live objects and approximate bytes per type, sorted by type name — the heap
  // profile an operator reads when a database grows unexpectedly.
  struct TypeUsage {
    std::string type_name;
    std::uint64_t objects = 0;
    std::uint64_t approximate_bytes = 0;
  };
  std::vector<TypeUsage> UsageByType() const;

 private:
  static void Mark(Object* object);

  std::vector<std::unique_ptr<Object>> objects_;
  std::set<Object*> roots_;
  GcStats gc_stats_;
};

}  // namespace sdb::th

#endif  // SMALLDB_SRC_TYPEDHEAP_HEAP_H_
