// Runtime type descriptors — "the run-time typing structures that are present for our
// garbage collection mechanism" (paper Section 6).
//
// A TypeDesc describes the shape of a heap object as a list of typed fields. The same
// descriptor drives both the mark phase of the garbage collector (which fields hold
// references) and the heap pickler (how each field is converted to bits), reproducing
// the paper's central implementation trick: one set of runtime type structures serving
// both memory management and persistence.
#ifndef SMALLDB_SRC_TYPEDHEAP_TYPE_DESC_H_
#define SMALLDB_SRC_TYPEDHEAP_TYPE_DESC_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"

namespace sdb::th {

enum class FieldKind : std::uint8_t {
  kInt = 0,       // 64-bit signed integer
  kReal,          // double
  kString,        // byte string
  kRef,           // reference to another heap object (or null)
  kRefList,       // ordered list of references
  kStringRefMap,  // hash table: string -> reference (the name server's arc tables)
};

struct FieldDesc {
  std::string name;
  FieldKind kind;
};

class TypeDesc {
 public:
  TypeDesc(std::string name, std::vector<FieldDesc> fields)
      : name_(std::move(name)), fields_(std::move(fields)) {}

  const std::string& name() const { return name_; }
  const std::vector<FieldDesc>& fields() const { return fields_; }
  std::size_t field_count() const { return fields_.size(); }

  const FieldDesc& field(std::size_t index) const { return fields_[index]; }

  // Index of the field called `name`, or kNotFound.
  Result<std::size_t> FieldIndex(std::string_view name) const;

 private:
  std::string name_;
  std::vector<FieldDesc> fields_;
};

// The execution environment's set of known types. Unpickling a heap graph requires
// every type name in the stream to be registered here — the paper's "addresses are
// replaced with addresses valid in the current execution environment" generalized to
// types. Registration is append-only; descriptors are stable for the registry's life.
class TypeRegistry {
 public:
  // Registers a new type. Fails with kAlreadyExists if the name is taken.
  Result<const TypeDesc*> Register(std::string name, std::vector<FieldDesc> fields);

  Result<const TypeDesc*> Find(std::string_view name) const;

  std::size_t size() const { return types_.size(); }

 private:
  std::map<std::string, std::unique_ptr<TypeDesc>, std::less<>> types_;
};

}  // namespace sdb::th

#endif  // SMALLDB_SRC_TYPEDHEAP_TYPE_DESC_H_
