#include "src/typedheap/heap.h"

#include <algorithm>

#include "src/common/clock.h"
#include "src/obs/metrics.h"

namespace sdb::th {

namespace {

// Process-wide GC metrics ("heap.*" in obs::GlobalRegistry()), aggregated across
// every Heap instance: pause latency, sweep volume, and a live-set gauge tracking
// the most recently collected heap.
struct GcMetrics {
  obs::Counter* collections;
  obs::Counter* objects_swept;
  obs::Gauge* live_objects;
  obs::Gauge* live_bytes;
  obs::Histogram* pause_us;
};

GcMetrics& Metrics() {
  static GcMetrics m = [] {
    obs::Registry& registry = obs::GlobalRegistry();
    return GcMetrics{&registry.GetCounter("heap.gc.collections"),
                     &registry.GetCounter("heap.gc.objects_swept"),
                     &registry.GetGauge("heap.live_objects"),
                     &registry.GetGauge("heap.live_bytes"),
                     &registry.GetHistogram("heap.gc.pause_us")};
  }();
  return m;
}

WallClock& PauseClock() {
  static WallClock clock;
  return clock;
}

}  // namespace

Object::Object(const TypeDesc* type) : type_(type) {
  slots_.reserve(type->field_count());
  for (const FieldDesc& field : type->fields()) {
    switch (field.kind) {
      case FieldKind::kInt:
        slots_.emplace_back(std::int64_t{0});
        break;
      case FieldKind::kReal:
        slots_.emplace_back(0.0);
        break;
      case FieldKind::kString:
        slots_.emplace_back(std::string());
        break;
      case FieldKind::kRef:
        slots_.emplace_back(static_cast<Object*>(nullptr));
        break;
      case FieldKind::kRefList:
        slots_.emplace_back(RefList());
        break;
      case FieldKind::kStringRefMap:
        slots_.emplace_back(StringRefMap());
        break;
    }
  }
}

Status Object::CheckField(std::size_t field, FieldKind expected) const {
  if (field >= slots_.size()) {
    return InvalidArgumentError("field index " + std::to_string(field) + " out of range for type " +
                                type_->name());
  }
  if (type_->field(field).kind != expected) {
    return InvalidArgumentError("field '" + type_->field(field).name + "' of type " +
                                type_->name() + " has a different kind");
  }
  return OkStatus();
}

Result<std::int64_t> Object::GetInt(std::size_t field) const {
  SDB_RETURN_IF_ERROR(CheckField(field, FieldKind::kInt));
  return std::get<std::int64_t>(slots_[field]);
}

Status Object::SetInt(std::size_t field, std::int64_t value) {
  SDB_RETURN_IF_ERROR(CheckField(field, FieldKind::kInt));
  slots_[field] = value;
  return OkStatus();
}

Result<double> Object::GetReal(std::size_t field) const {
  SDB_RETURN_IF_ERROR(CheckField(field, FieldKind::kReal));
  return std::get<double>(slots_[field]);
}

Status Object::SetReal(std::size_t field, double value) {
  SDB_RETURN_IF_ERROR(CheckField(field, FieldKind::kReal));
  slots_[field] = value;
  return OkStatus();
}

Result<const std::string*> Object::GetString(std::size_t field) const {
  SDB_RETURN_IF_ERROR(CheckField(field, FieldKind::kString));
  return &std::get<std::string>(slots_[field]);
}

Status Object::SetString(std::size_t field, std::string value) {
  SDB_RETURN_IF_ERROR(CheckField(field, FieldKind::kString));
  slots_[field] = std::move(value);
  return OkStatus();
}

Result<Object*> Object::GetRef(std::size_t field) const {
  SDB_RETURN_IF_ERROR(CheckField(field, FieldKind::kRef));
  return std::get<Object*>(slots_[field]);
}

Status Object::SetRef(std::size_t field, Object* value) {
  SDB_RETURN_IF_ERROR(CheckField(field, FieldKind::kRef));
  slots_[field] = value;
  return OkStatus();
}

Result<std::size_t> Object::ListSize(std::size_t field) const {
  SDB_RETURN_IF_ERROR(CheckField(field, FieldKind::kRefList));
  return std::get<RefList>(slots_[field]).size();
}

Result<Object*> Object::ListGet(std::size_t field, std::size_t index) const {
  SDB_RETURN_IF_ERROR(CheckField(field, FieldKind::kRefList));
  const RefList& list = std::get<RefList>(slots_[field]);
  if (index >= list.size()) {
    return InvalidArgumentError("list index out of range");
  }
  return list[index];
}

Status Object::ListAppend(std::size_t field, Object* value) {
  SDB_RETURN_IF_ERROR(CheckField(field, FieldKind::kRefList));
  std::get<RefList>(slots_[field]).push_back(value);
  return OkStatus();
}

Status Object::ListSet(std::size_t field, std::size_t index, Object* value) {
  SDB_RETURN_IF_ERROR(CheckField(field, FieldKind::kRefList));
  RefList& list = std::get<RefList>(slots_[field]);
  if (index >= list.size()) {
    return InvalidArgumentError("list index out of range");
  }
  list[index] = value;
  return OkStatus();
}

Status Object::ListClear(std::size_t field) {
  SDB_RETURN_IF_ERROR(CheckField(field, FieldKind::kRefList));
  std::get<RefList>(slots_[field]).clear();
  return OkStatus();
}

Result<Object*> Object::MapGet(std::size_t field, std::string_view key) const {
  SDB_RETURN_IF_ERROR(CheckField(field, FieldKind::kStringRefMap));
  const StringRefMap& map = std::get<StringRefMap>(slots_[field]);
  auto it = map.find(key);
  if (it == map.end()) {
    return NotFoundError("no map entry for key '" + std::string(key) + "'");
  }
  return it->second;
}

Status Object::MapSet(std::size_t field, std::string_view key, Object* value) {
  SDB_RETURN_IF_ERROR(CheckField(field, FieldKind::kStringRefMap));
  std::get<StringRefMap>(slots_[field]).insert_or_assign(std::string(key), value);
  return OkStatus();
}

Status Object::MapErase(std::size_t field, std::string_view key) {
  SDB_RETURN_IF_ERROR(CheckField(field, FieldKind::kStringRefMap));
  StringRefMap& map = std::get<StringRefMap>(slots_[field]);
  auto it = map.find(key);
  if (it == map.end()) {
    return NotFoundError("no map entry for key '" + std::string(key) + "'");
  }
  map.erase(it);
  return OkStatus();
}

Result<std::size_t> Object::MapSize(std::size_t field) const {
  SDB_RETURN_IF_ERROR(CheckField(field, FieldKind::kStringRefMap));
  return std::get<StringRefMap>(slots_[field]).size();
}

Result<const Object::StringRefMap*> Object::MapView(std::size_t field) const {
  SDB_RETURN_IF_ERROR(CheckField(field, FieldKind::kStringRefMap));
  return &std::get<StringRefMap>(slots_[field]);
}

std::size_t Object::ApproximateBytes() const {
  std::size_t bytes = sizeof(Object) + slots_.size() * sizeof(Slot);
  for (const Slot& slot : slots_) {
    if (const auto* str = std::get_if<std::string>(&slot)) {
      bytes += str->size();
    } else if (const auto* list = std::get_if<RefList>(&slot)) {
      bytes += list->size() * sizeof(Object*);
    } else if (const auto* map = std::get_if<StringRefMap>(&slot)) {
      for (const auto& [key, value] : *map) {
        bytes += key.size() + sizeof(Object*) + 32;  // node overhead estimate
      }
    }
  }
  return bytes;
}

Object* Heap::Allocate(const TypeDesc* type) {
  objects_.push_back(std::unique_ptr<Object>(new Object(type)));
  return objects_.back().get();
}

void Heap::AddRoot(Object* object) { roots_.insert(object); }
void Heap::RemoveRoot(Object* object) { roots_.erase(object); }

void Heap::Mark(Object* object) {
  if (object == nullptr || object->marked_) {
    return;
  }
  // Iterative depth-first mark; name trees can be deep and recursion would risk the
  // stack on adversarial shapes.
  std::vector<Object*> stack{object};
  object->marked_ = true;
  while (!stack.empty()) {
    Object* current = stack.back();
    stack.pop_back();
    auto push = [&stack](Object* child) {
      if (child != nullptr && !child->marked_) {
        child->marked_ = true;
        stack.push_back(child);
      }
    };
    for (const Object::Slot& slot : current->slots_) {
      if (auto* const* ref = std::get_if<Object*>(&slot)) {
        push(*ref);
      } else if (const auto* list = std::get_if<Object::RefList>(&slot)) {
        for (Object* child : *list) {
          push(child);
        }
      } else if (const auto* map = std::get_if<Object::StringRefMap>(&slot)) {
        for (const auto& [key, child] : *map) {
          push(child);
        }
      }
    }
  }
}

std::uint64_t Heap::Collect() {
  const bool timing = obs::Enabled();
  Stopwatch pause(PauseClock());
  for (const auto& object : objects_) {
    object->marked_ = false;
  }
  for (Object* root : roots_) {
    Mark(root);
  }
  std::uint64_t freed = 0;
  auto dead = std::remove_if(objects_.begin(), objects_.end(),
                             [&freed](const std::unique_ptr<Object>& object) {
                               if (!object->marked_) {
                                 ++freed;
                                 return true;
                               }
                               return false;
                             });
  objects_.erase(dead, objects_.end());
  ++gc_stats_.collections;
  gc_stats_.objects_freed += freed;
  gc_stats_.last_freed = freed;
  gc_stats_.last_live = objects_.size();
  GcMetrics& metrics = Metrics();
  metrics.collections->Increment();
  metrics.objects_swept->Add(freed);
  metrics.live_objects->Set(static_cast<std::int64_t>(objects_.size()));
  if (timing) {
    metrics.live_bytes->Set(static_cast<std::int64_t>(approximate_bytes()));
    metrics.pause_us->Record(pause.ElapsedMicros());
  }
  return freed;
}

Status Heap::Validate() const {
  std::set<const Object*> owned;
  for (const auto& object : objects_) {
    owned.insert(object.get());
  }
  auto check = [&owned](const Object* ref, const char* where) -> Status {
    if (ref != nullptr && owned.count(ref) == 0) {
      return InternalError(std::string("dangling reference in ") + where);
    }
    return OkStatus();
  };
  for (const Object* root : roots_) {
    SDB_RETURN_IF_ERROR(check(root, "root set"));
  }
  for (const auto& object : objects_) {
    for (const Object::Slot& slot : object->slots_) {
      if (auto* const* ref = std::get_if<Object*>(&slot)) {
        SDB_RETURN_IF_ERROR(check(*ref, object->type_->name().c_str()));
      } else if (const auto* list = std::get_if<Object::RefList>(&slot)) {
        for (const Object* child : *list) {
          SDB_RETURN_IF_ERROR(check(child, object->type_->name().c_str()));
        }
      } else if (const auto* map = std::get_if<Object::StringRefMap>(&slot)) {
        for (const auto& [key, child] : *map) {
          SDB_RETURN_IF_ERROR(check(child, object->type_->name().c_str()));
        }
      }
    }
  }
  return OkStatus();
}

std::vector<Heap::TypeUsage> Heap::UsageByType() const {
  std::map<std::string, TypeUsage> by_type;
  for (const auto& object : objects_) {
    TypeUsage& usage = by_type[object->type().name()];
    usage.type_name = object->type().name();
    ++usage.objects;
    usage.approximate_bytes += object->ApproximateBytes();
  }
  std::vector<TypeUsage> out;
  out.reserve(by_type.size());
  for (auto& [name, usage] : by_type) {
    out.push_back(std::move(usage));
  }
  return out;
}

std::size_t Heap::approximate_bytes() const {
  std::size_t total = 0;
  for (const auto& object : objects_) {
    total += object->ApproximateBytes();
  }
  return total;
}

}  // namespace sdb::th
