// Heap-graph pickling: the reproduction of the paper's PickleWrite / PickleRead.
//
// "The operation PickleWrite takes a pointer to a strongly typed data structure and
// delivers buffers of bits for writing to the disk. Conversely PickleRead reads buffers
// of bits from the disk and delivers a copy of the original data structure. This
// conversion involves identifying the occurrences of addresses in the structure, and
// arranging that when the structure is read back from disk the addresses are replaced
// with addresses valid in the current execution environment. The pickle mechanism is
// entirely automatic: it is driven by the run-time typing structures that are present
// for our garbage collection mechanism."  — Section 6
//
// The stream is self-describing: type names are interned on first use, objects are
// identified by swizzle ids (shared structure and cycles round-trip exactly), and the
// whole stream is wrapped in the CRC-protected pickle envelope.
#ifndef SMALLDB_SRC_TYPEDHEAP_HEAP_PICKLE_H_
#define SMALLDB_SRC_TYPEDHEAP_HEAP_PICKLE_H_

#include "src/common/cost_model.h"
#include "src/pickle/pickle.h"
#include "src/typedheap/heap.h"
#include "src/typedheap/type_desc.h"

namespace sdb::th {

// Pickles the object graph reachable from `root` (which may be null: an empty
// database). Charges pickle-write CPU to `cost` if provided.
Result<Bytes> PickleHeapGraph(const Object* root, const CostModel* cost = nullptr);

// Rebuilds a pickled graph inside `heap`. Every type name in the stream must already be
// registered in `registry`; the returned root is a fresh copy, unreachable from any
// existing root until the caller installs it.
Result<Object*> UnpickleHeapGraph(Heap& heap, const TypeRegistry& registry, ByteSpan data,
                                  const CostModel* cost = nullptr);

}  // namespace sdb::th

#endif  // SMALLDB_SRC_TYPEDHEAP_HEAP_PICKLE_H_
