#include "src/typedheap/heap_pickle.h"

#include <deque>
#include <unordered_map>

namespace sdb::th {
namespace {

constexpr std::string_view kGraphTypeName = "sdb.heapgraph";

// Stream layout (inside the standard pickle envelope):
//   varint type_count
//     per type: LP name, varint field_count, per field: LP field name, u8 kind
//   varint object_count
//   per object: varint type_index              (the whole shape table first...)
//   per object: encoded slots                  (...then all bodies)
//       int: zigzag varint | real: f64 | string: LP bytes
//       ref: varint object id (0 = null, else 1-based discovery index)
//       reflist: varint count, ids...
//       map: varint count, (LP key, id)...
//   varint root id
//
// Objects form a flat table in discovery (BFS) order. Because every object's type
// precedes every body, the reader allocates the complete table up front and forward or
// cyclic references resolve trivially; no recursion is ever needed, so arbitrarily deep
// graphs round-trip.

class GraphWriter {
 public:
  Result<Bytes> Write(const Object* root, const CostModel* cost) {
    if (root != nullptr) {
      Discover(root);
    }

    PickleWriter pickle;
    ByteWriter& out = pickle.bytes();

    out.PutVarint(type_table_.size());
    for (const TypeDesc* type : type_table_) {
      out.PutLengthPrefixed(type->name());
      out.PutVarint(type->field_count());
      for (const FieldDesc& field : type->fields()) {
        out.PutLengthPrefixed(field.name);
        out.PutU8(static_cast<std::uint8_t>(field.kind));
      }
    }

    out.PutVarint(objects_.size());
    for (const Object* object : objects_) {
      out.PutVarint(type_ids_.at(&object->type()));
    }
    for (const Object* object : objects_) {
      SDB_RETURN_IF_ERROR(WriteBody(out, *object));
    }
    out.PutVarint(root == nullptr ? 0 : object_ids_.at(root));
    return std::move(pickle).FinishEnvelope(kGraphTypeName, cost);
  }

 private:
  void Discover(const Object* root) {
    std::deque<const Object*> queue{root};
    object_ids_.emplace(root, 1);
    objects_.push_back(root);
    while (!queue.empty()) {
      const Object* current = queue.front();
      queue.pop_front();
      NoteType(&current->type());
      ForEachRef(*current, [this, &queue](const Object* child) {
        if (child != nullptr && object_ids_.emplace(child, objects_.size() + 1).second) {
          objects_.push_back(child);
          queue.push_back(child);
        }
      });
    }
  }

  template <typename Fn>
  static void ForEachRef(const Object& object, Fn&& fn) {
    const TypeDesc& type = object.type();
    for (std::size_t i = 0; i < type.field_count(); ++i) {
      switch (type.field(i).kind) {
        case FieldKind::kRef:
          fn(object.GetRef(i).value());
          break;
        case FieldKind::kRefList: {
          std::size_t n = object.ListSize(i).value();
          for (std::size_t j = 0; j < n; ++j) {
            fn(object.ListGet(i, j).value());
          }
          break;
        }
        case FieldKind::kStringRefMap:
          for (const auto& [key, child] : *object.MapView(i).value()) {
            fn(child);
          }
          break;
        default:
          break;
      }
    }
  }

  void NoteType(const TypeDesc* type) {
    if (type_ids_.emplace(type, type_table_.size()).second) {
      type_table_.push_back(type);
    }
  }

  std::uint64_t IdOf(const Object* object) const {
    return object == nullptr ? 0 : object_ids_.at(object);
  }

  Status WriteBody(ByteWriter& out, const Object& object) {
    const TypeDesc& type = object.type();
    for (std::size_t i = 0; i < type.field_count(); ++i) {
      switch (type.field(i).kind) {
        case FieldKind::kInt: {
          SDB_ASSIGN_OR_RETURN(std::int64_t v, object.GetInt(i));
          out.PutVarintSigned(v);
          break;
        }
        case FieldKind::kReal: {
          SDB_ASSIGN_OR_RETURN(double v, object.GetReal(i));
          out.PutF64(v);
          break;
        }
        case FieldKind::kString: {
          SDB_ASSIGN_OR_RETURN(const std::string* v, object.GetString(i));
          out.PutLengthPrefixed(*v);
          break;
        }
        case FieldKind::kRef: {
          SDB_ASSIGN_OR_RETURN(Object * child, object.GetRef(i));
          out.PutVarint(IdOf(child));
          break;
        }
        case FieldKind::kRefList: {
          SDB_ASSIGN_OR_RETURN(std::size_t n, object.ListSize(i));
          out.PutVarint(n);
          for (std::size_t j = 0; j < n; ++j) {
            SDB_ASSIGN_OR_RETURN(Object * child, object.ListGet(i, j));
            out.PutVarint(IdOf(child));
          }
          break;
        }
        case FieldKind::kStringRefMap: {
          SDB_ASSIGN_OR_RETURN(const Object::StringRefMap* map, object.MapView(i));
          out.PutVarint(map->size());
          for (const auto& [key, child] : *map) {
            out.PutLengthPrefixed(key);
            out.PutVarint(IdOf(child));
          }
          break;
        }
      }
    }
    return OkStatus();
  }

  std::unordered_map<const Object*, std::uint64_t> object_ids_;
  std::vector<const Object*> objects_;
  std::unordered_map<const TypeDesc*, std::uint64_t> type_ids_;
  std::vector<const TypeDesc*> type_table_;
};

class GraphReader {
 public:
  GraphReader(Heap& heap, const TypeRegistry& registry) : heap_(heap), registry_(registry) {}

  Result<Object*> Read(ByteSpan data, const CostModel* cost) {
    SDB_ASSIGN_OR_RETURN(PickleReader pickle,
                         PickleReader::FromEnvelope(data, kGraphTypeName, cost));
    ByteReader& in = pickle.bytes();

    SDB_RETURN_IF_ERROR(ReadTypeTable(in));

    SDB_ASSIGN_OR_RETURN(std::uint64_t object_count, in.ReadVarint());
    if (object_count > in.remaining() + 1) {
      return CorruptionError("object count exceeds payload size");
    }
    objects_.reserve(static_cast<std::size_t>(object_count));
    for (std::uint64_t i = 0; i < object_count; ++i) {
      SDB_ASSIGN_OR_RETURN(std::uint64_t type_index, in.ReadVarint());
      if (type_index >= types_.size()) {
        return CorruptionError("object references unknown type index");
      }
      objects_.push_back(heap_.Allocate(types_[static_cast<std::size_t>(type_index)]));
    }
    for (Object* object : objects_) {
      SDB_RETURN_IF_ERROR(ReadBody(in, *object));
    }

    SDB_ASSIGN_OR_RETURN(std::uint64_t root_id, in.ReadVarint());
    if (!in.AtEnd()) {
      return CorruptionError("trailing bytes after heap graph");
    }
    return ResolveId(root_id);
  }

 private:
  Status ReadTypeTable(ByteReader& in) {
    SDB_ASSIGN_OR_RETURN(std::uint64_t type_count, in.ReadVarint());
    if (type_count > in.remaining()) {
      return CorruptionError("type count exceeds payload size");
    }
    for (std::uint64_t t = 0; t < type_count; ++t) {
      SDB_ASSIGN_OR_RETURN(std::string name, in.ReadLengthPrefixedString());
      SDB_ASSIGN_OR_RETURN(std::uint64_t field_count, in.ReadVarint());
      Result<const TypeDesc*> found = registry_.Find(name);
      if (!found.ok()) {
        return CorruptionError("pickled type '" + name +
                               "' is not registered in this execution environment");
      }
      const TypeDesc* type = *found;
      if (type->field_count() != field_count) {
        return CorruptionError("type '" + name + "' field count changed since pickling");
      }
      for (std::uint64_t f = 0; f < field_count; ++f) {
        SDB_ASSIGN_OR_RETURN(std::string field_name, in.ReadLengthPrefixedString());
        SDB_ASSIGN_OR_RETURN(std::uint8_t kind, in.ReadU8());
        const FieldDesc& registered = type->field(static_cast<std::size_t>(f));
        if (registered.name != field_name ||
            static_cast<std::uint8_t>(registered.kind) != kind) {
          return CorruptionError("type '" + name + "' field '" + field_name +
                                 "' changed since pickling");
        }
      }
      types_.push_back(type);
    }
    return OkStatus();
  }

  Result<Object*> ResolveId(std::uint64_t id) const {
    if (id == 0) {
      return {static_cast<Object*>(nullptr)};
    }
    if (id > objects_.size()) {
      return CorruptionError("object id out of range");
    }
    return objects_[static_cast<std::size_t>(id - 1)];
  }

  Status ReadBody(ByteReader& in, Object& object) {
    const TypeDesc& type = object.type();
    for (std::size_t i = 0; i < type.field_count(); ++i) {
      switch (type.field(i).kind) {
        case FieldKind::kInt: {
          SDB_ASSIGN_OR_RETURN(std::int64_t v, in.ReadVarintSigned());
          SDB_RETURN_IF_ERROR(object.SetInt(i, v));
          break;
        }
        case FieldKind::kReal: {
          SDB_ASSIGN_OR_RETURN(double v, in.ReadF64());
          SDB_RETURN_IF_ERROR(object.SetReal(i, v));
          break;
        }
        case FieldKind::kString: {
          SDB_ASSIGN_OR_RETURN(std::string v, in.ReadLengthPrefixedString());
          SDB_RETURN_IF_ERROR(object.SetString(i, std::move(v)));
          break;
        }
        case FieldKind::kRef: {
          SDB_ASSIGN_OR_RETURN(std::uint64_t id, in.ReadVarint());
          SDB_ASSIGN_OR_RETURN(Object * child, ResolveId(id));
          SDB_RETURN_IF_ERROR(object.SetRef(i, child));
          break;
        }
        case FieldKind::kRefList: {
          SDB_ASSIGN_OR_RETURN(std::uint64_t n, in.ReadVarint());
          if (n > in.remaining() + 1) {
            return CorruptionError("ref list count exceeds payload");
          }
          for (std::uint64_t j = 0; j < n; ++j) {
            SDB_ASSIGN_OR_RETURN(std::uint64_t id, in.ReadVarint());
            SDB_ASSIGN_OR_RETURN(Object * child, ResolveId(id));
            SDB_RETURN_IF_ERROR(object.ListAppend(i, child));
          }
          break;
        }
        case FieldKind::kStringRefMap: {
          SDB_ASSIGN_OR_RETURN(std::uint64_t n, in.ReadVarint());
          if (n > in.remaining() + 1) {
            return CorruptionError("map count exceeds payload");
          }
          for (std::uint64_t j = 0; j < n; ++j) {
            SDB_ASSIGN_OR_RETURN(std::string key, in.ReadLengthPrefixedString());
            SDB_ASSIGN_OR_RETURN(std::uint64_t id, in.ReadVarint());
            SDB_ASSIGN_OR_RETURN(Object * child, ResolveId(id));
            SDB_RETURN_IF_ERROR(object.MapSet(i, key, child));
          }
          break;
        }
      }
    }
    return OkStatus();
  }

  Heap& heap_;
  const TypeRegistry& registry_;
  std::vector<const TypeDesc*> types_;
  std::vector<Object*> objects_;
};

}  // namespace

Result<Bytes> PickleHeapGraph(const Object* root, const CostModel* cost) {
  GraphWriter writer;
  return writer.Write(root, cost);
}

Result<Object*> UnpickleHeapGraph(Heap& heap, const TypeRegistry& registry, ByteSpan data,
                                  const CostModel* cost) {
  GraphReader reader(heap, registry);
  return reader.Read(data, cost);
}

}  // namespace sdb::th
