#include "src/typedheap/type_desc.h"

namespace sdb::th {

Result<std::size_t> TypeDesc::FieldIndex(std::string_view field_name) const {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == field_name) {
      return i;
    }
  }
  return NotFoundError("type '" + name_ + "' has no field '" + std::string(field_name) + "'");
}

Result<const TypeDesc*> TypeRegistry::Register(std::string name, std::vector<FieldDesc> fields) {
  auto it = types_.find(name);
  if (it != types_.end()) {
    return AlreadyExistsError("type already registered: " + name);
  }
  auto desc = std::make_unique<TypeDesc>(name, std::move(fields));
  const TypeDesc* raw = desc.get();
  types_.emplace(std::move(name), std::move(desc));
  return raw;
}

Result<const TypeDesc*> TypeRegistry::Find(std::string_view name) const {
  auto it = types_.find(name);
  if (it == types_.end()) {
    return NotFoundError("type not registered: " + std::string(name));
  }
  return it->second.get();
}

}  // namespace sdb::th
