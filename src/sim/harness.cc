#include "src/sim/harness.h"

#include <cstdio>
#include <map>
#include <memory>
#include <utility>

#include "src/common/clock.h"
#include "src/core/backup.h"
#include "src/core/database.h"
#include "src/core/sharded.h"
#include "src/net/ingest.h"
#include "src/rpc/client.h"
#include "src/sim/kv_app.h"
#include "src/sim/net_sim.h"
#include "src/sim/oracle.h"
#include "src/storage/sim_disk.h"
#include "src/storage/sim_fs.h"

namespace sdb::sim {

std::string ScheduleKindName(ScheduleKind kind) {
  switch (kind) {
    case ScheduleKind::kNone:
      return "none";
    case ScheduleKind::kMultiCrash:
      return "multi-crash";
    case ScheduleKind::kTransient:
      return "transient";
    case ScheduleKind::kTornSwitch:
      return "torn-switch";
    case ScheduleKind::kMixed:
      return "mixed";
  }
  return "?";
}

bool ParseScheduleKind(std::string_view name, ScheduleKind* out) {
  for (ScheduleKind kind :
       {ScheduleKind::kNone, ScheduleKind::kMultiCrash, ScheduleKind::kTransient,
        ScheduleKind::kTornSwitch, ScheduleKind::kMixed}) {
    if (name == ScheduleKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

RandomFaultOptions FaultOptionsFor(ScheduleKind kind) {
  RandomFaultOptions o;
  switch (kind) {
    case ScheduleKind::kNone:
      break;
    case ScheduleKind::kMultiCrash:
      o.crash_before = 0.010;
      o.crash_torn = 0.015;
      o.crash_after = 0.010;
      o.max_crashes = 4;
      o.max_transients = 0;
      break;
    case ScheduleKind::kTransient:
      o.transient_write = 0.010;
      o.transient_read = 0.020;
      o.max_crashes = 0;
      o.max_transients = 24;
      break;
    case ScheduleKind::kTornSwitch:
      o.torn_metadata_sync = 0.25;
      o.max_crashes = 3;
      o.max_transients = 0;
      break;
    case ScheduleKind::kMixed:
      o.crash_before = 0.005;
      o.crash_torn = 0.008;
      o.crash_after = 0.005;
      o.torn_metadata_sync = 0.10;
      o.transient_write = 0.008;
      o.transient_read = 0.010;
      o.max_crashes = 4;
      o.max_transients = 16;
      break;
  }
  return o;
}

NetFaultOptions NetFaultOptionsFor(ScheduleKind kind) {
  NetFaultOptions o;
  switch (kind) {
    case ScheduleKind::kNone:
      break;
    case ScheduleKind::kMultiCrash:
      // Power failures stay the star; the network adds mild symmetric loss so
      // crash recovery also runs with pending (unacknowledged) operations around.
      o.drop_request = 0.02;
      o.drop_response = 0.02;
      break;
    case ScheduleKind::kTransient:
      // Loss-heavy: drops on both legs plus slow peers — the half-open and retry
      // territory.
      o.drop_request = 0.03;
      o.drop_response = 0.04;
      o.slow_peer = 0.03;
      break;
    case ScheduleKind::kTornSwitch:
      // Corruption-heavy: flipped and truncated frames aim at the decoder's
      // reject-never-crash contract (canary-checked).
      o.corrupt_frame = 0.04;
      o.truncate_frame = 0.04;
      break;
    case ScheduleKind::kMixed:
      o.partition_start = 0.010;
      o.drop_request = 0.015;
      o.drop_response = 0.020;
      o.corrupt_frame = 0.015;
      o.truncate_frame = 0.015;
      o.slow_peer = 0.010;
      break;
  }
  return o;
}

namespace {

// The KV workload's RPC surface, used only in network mode. Put/Delete register as
// batchable updates (the planner defers everything to the app's prepare closures),
// so each dispatched update flows through plan -> CommitMany -> Database::UpdateMany
// — the same ingest path the TCP server drives.
struct KvPutRequest {
  std::string key;
  std::string value;
  SDB_PICKLE_FIELDS(KvPutRequest, key, value)
};
struct KvDeleteRequest {
  std::string key;
  SDB_PICKLE_FIELDS(KvDeleteRequest, key)
};
struct KvAck {
  std::uint8_t ok = 1;
  SDB_PICKLE_FIELDS(KvAck, ok)
};
struct KvLookupRequest {
  std::string key;
  SDB_PICKLE_FIELDS(KvLookupRequest, key)
};
struct KvLookupResponse {
  std::uint8_t found = 0;
  std::string value;
  SDB_PICKLE_FIELDS(KvLookupResponse, found, value)
};
struct KvEnumerateRequest {
  std::uint8_t unused = 0;
  SDB_PICKLE_FIELDS(KvEnumerateRequest, unused)
};
struct KvEnumerateResponse {
  std::map<std::string, std::string> state;
  SDB_PICKLE_FIELDS(KvEnumerateResponse, state)
};

std::string Hex(std::uint64_t value) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

class Runner {
 public:
  Runner(const std::vector<WorkloadStep>& steps, const HarnessOptions& options,
         std::uint64_t seed)
      : steps_(steps), options_(options), disk_(DiskOptions()), fs_(&disk_) {
    if (options_.network && options_.shards <= 1) {
      channel_ = std::make_unique<SimNetChannel>(
          seed, NetFaultOptionsFor(options_.schedule), nullptr, &clock_);
    }
  }

  RunReport Run(FaultInjector injector) {
    report_.steps = steps_;
    (void)fs_.CreateDir("/db");
    disk_.SetFaultInjector(std::move(injector));
    if (channel_ != nullptr) {
      // Fault firings are observable events: mix them so the trace hash covers the
      // network schedule too.
      channel_->SetEventHook([this](std::string_view event) { trace_.Mix(event); });
    }

    Status boot = Reboot();
    if (!boot.ok()) {
      return Fail(boot);
    }

    for (std::size_t i = 0; i < steps_.size(); ++i) {
      const WorkloadStep& step = steps_[i];
      trace_.Mix("step");
      trace_.Mix(static_cast<std::uint64_t>(i));
      trace_.Mix(StepKindName(step.kind));
      Status engine = ExecuteStep(step);
      ++report_.steps_executed;
      trace_.Mix(engine.ok() ? "ok" : "err");
      if (!violation_.ok()) {
        return Fail(violation_.WithContext("at step " + std::to_string(i) + " (" +
                                           StepToString(step) + ")"));
      }
      if (engine.ok()) {
        soft_failures_ = 0;
        continue;
      }
      // The engine refused the step — fault-induced. A crashed disk means power is
      // out: reboot (recover, verify, adopt) and carry on. A persistent run of
      // non-crash failures (a transient wedged an in-flight log switch) gets a
      // deliberate power cycle too, so the loop always makes progress.
      if (disk_.crashed()) {
        trace_.Mix("crash-reboot");
        Status reboot = Reboot();
        if (!reboot.ok()) {
          return Fail(reboot);
        }
        soft_failures_ = 0;
      } else if (++soft_failures_ >= options_.max_soft_failures) {
        trace_.Mix("forced-reboot");
        Status reboot = Reboot();
        if (!reboot.ok()) {
          return Fail(reboot);
        }
        soft_failures_ = 0;
      }
    }

    // Every run ends by proving the durable state: one last power cut + recovery.
    trace_.Mix("final");
    Status final_check = Reboot();
    if (!final_check.ok()) {
      return Fail(final_check);
    }

    report_.ok = true;
    report_.trace_hash = trace_.hash();
    report_.transient_errors = disk_.stats().transient_errors;
    return std::move(report_);
  }

 private:
  SimDiskOptions DiskOptions() {
    SimDiskOptions o;
    o.page_size = options_.disk_page_size;
    o.clock = &clock_;
    return o;
  }

  DatabaseOptions DbOptions() {
    DatabaseOptions o;
    o.vfs = &fs_;
    o.dir = "/db";
    o.clock = &clock_;
    o.log_writer.page_size = options_.disk_page_size;
    o.log_replay_page_size = options_.disk_page_size;
    o.recovery_threads = options_.recovery_threads;
    // Determinism: compaction must run inline at the checkpoint that crossed the
    // threshold, never on a background thread racing the workload's disk ops.
    o.delta_checkpoint.background_compaction = false;
    o.delta_checkpoint.compact_after_deltas = options_.compact_after_deltas;
    o.delta_checkpoint.compact_delta_base_ratio = options_.compact_delta_base_ratio;
    return o;
  }

  bool sharded() const { return options_.shards > 1; }

  ShardedOptions SdbOptions() {
    ShardedOptions o;
    o.vfs = &fs_;
    o.dir = "/db";
    o.clock = &clock_;
    o.log_writer.page_size = options_.disk_page_size;
    o.log_replay_page_size = options_.disk_page_size;
    // Determinism: parallel shard recovery would permute SimDisk op ordinals, so
    // fault points would fire at different ops across identical runs.
    o.recovery_threads = 1;
    // Sharded compaction is always inline (no background thread to race).
    o.delta_checkpoint.compact_after_deltas = options_.compact_after_deltas;
    o.delta_checkpoint.compact_delta_base_ratio = options_.compact_delta_base_ratio;
    return o;
  }

  // The observable state of the sharded ensemble is the union of the per-shard
  // maps; the router makes the shards disjoint, so plain insertion merges cleanly
  // (and std::map keeps the merged view sorted — deterministic for trace mixing).
  std::map<std::string, std::string> MergedState() const {
    std::map<std::string, std::string> merged;
    for (const auto& app : shard_apps_) {
      merged.insert(app->state.begin(), app->state.end());
    }
    return merged;
  }

  // Sharding's structural invariant: every recovered key lives on its home shard.
  // Replay bucketing or router nondeterminism would break this silently — the
  // merged-state oracle check alone cannot see a key applied to the wrong shard
  // (same union), so it is checked separately after every recovery.
  Status CheckRouting() const {
    for (std::size_t p = 0; p < shard_apps_.size(); ++p) {
      for (const auto& [key, value] : shard_apps_[p]->state) {
        std::size_t home = sdb_->ShardForKey(key);
        if (home != p) {
          return InternalError("routing invariant: key " + key + " recovered on shard " +
                               std::to_string(p) + " but routes to shard " +
                               std::to_string(home));
        }
      }
    }
    return OkStatus();
  }

  RunReport Fail(const Status& status) {
    report_.ok = false;
    report_.failure = status.ToString();
    report_.trace_hash = trace_.hash();
    report_.transient_errors = disk_.stats().transient_errors;
    return std::move(report_);
  }

  // Power cycle: cut power, recover the file system, reopen the database, check the
  // recovered state against the oracle, adopt it. Retries absorb faults injected into
  // recovery itself (reads are faultable); the schedule's budgets bound the retries.
  Status Reboot() {
    if (static_cast<int>(++report_.reboots) > options_.max_reboots) {
      return InternalError("exceeded max_reboots — fault schedule never went quiet");
    }
    if (channel_ != nullptr) {
      channel_->SetServer(nullptr);  // the server dies with the power
    }
    rpc_server_.reset();
    db_.reset();
    sdb_.reset();
    Status last_error = OkStatus();
    for (int attempt = 0; attempt < options_.max_recovery_attempts; ++attempt) {
      ++report_.recovery_attempts;
      fs_.Crash();
      Status recovered = fs_.Recover();
      if (!recovered.ok()) {
        trace_.Mix("recover-fault");
        last_error = recovered;
        continue;
      }
      if (sharded()) {
        shard_apps_.clear();
        std::vector<Application*> apps;
        for (int p = 0; p < options_.shards; ++p) {
          shard_apps_.push_back(std::make_unique<KvApp>());
          apps.push_back(shard_apps_.back().get());
        }
        auto opened = ShardedDatabase::Open(std::move(apps), SdbOptions());
        if (!opened.ok()) {
          trace_.Mix("open-fault");
          last_error = opened.status();
          continue;
        }
        sdb_ = std::move(opened).value();
      } else {
        app_ = std::make_unique<KvApp>();
        auto opened = Database::Open(*app_, DbOptions());
        if (!opened.ok()) {
          trace_.Mix("open-fault");
          last_error = opened.status();
          continue;
        }
        db_ = std::move(opened).value();
      }
      std::map<std::string, std::string> state =
          sharded() ? MergedState() : app_->state;
      Status check = oracle_.CheckRecovered(state);
      if (!check.ok()) {
        return check.WithContext("reboot " + std::to_string(report_.reboots));
      }
      if (sharded()) {
        Status routing = CheckRouting();
        if (!routing.ok()) {
          return routing.WithContext("reboot " + std::to_string(report_.reboots));
        }
      }
      oracle_.Adopt(state);
      trace_.Mix("recovered");
      for (const auto& [key, value] : state) {
        trace_.Mix(key);
        trace_.Mix(value);
      }
      if (channel_ != nullptr) {
        RebuildServer();
      }
      return OkStatus();
    }
    return InternalError("recovery did not converge after " +
                         std::to_string(options_.max_recovery_attempts) +
                         " attempts; last error: " + last_error.ToString());
  }

  // Network mode: a fresh RpcServer fronts the just-recovered database. Handlers
  // capture `this` and read the CURRENT app_/db_, so a later reboot's rebuild never
  // leaves them dangling. Ordinals inside channel_ keep counting across reboots.
  void RebuildServer() {
    rpc_server_ = std::make_unique<rpc::RpcServer>();
    update_sink_ = std::make_shared<net::DatabaseUpdateSink>(*db_);
    rpc::RegisterUpdateMethod<KvPutRequest, KvAck>(
        *rpc_server_, "KvService", "Put", update_sink_,
        [this](const KvPutRequest& request) -> Result<rpc::TypedUpdatePlan<KvAck>> {
          return rpc::TypedUpdatePlan<KvAck>{
              app_->PreparePut(request.key, request.value), KvAck{}};
        });
    rpc::RegisterUpdateMethod<KvDeleteRequest, KvAck>(
        *rpc_server_, "KvService", "Delete", update_sink_,
        [this](const KvDeleteRequest& request) -> Result<rpc::TypedUpdatePlan<KvAck>> {
          return rpc::TypedUpdatePlan<KvAck>{app_->PrepareDelete(request.key), KvAck{}};
        });
    rpc::RegisterMethod<KvLookupRequest, KvLookupResponse>(
        *rpc_server_, "KvService", "Lookup",
        [this](const KvLookupRequest& request) -> Result<KvLookupResponse> {
          KvLookupResponse response;
          SDB_RETURN_IF_ERROR(db_->Enquire([&]() -> Status {
            auto it = app_->state.find(request.key);
            if (it != app_->state.end()) {
              response.found = 1;
              response.value = it->second;
            }
            return OkStatus();
          }));
          return response;
        });
    rpc::RegisterMethod<KvEnumerateRequest, KvEnumerateResponse>(
        *rpc_server_, "KvService", "Enumerate",
        [this](const KvEnumerateRequest&) -> Result<KvEnumerateResponse> {
          KvEnumerateResponse response;
          SDB_RETURN_IF_ERROR(db_->Enquire([&]() -> Status {
            response.state = app_->state;
            return OkStatus();
          }));
          return response;
        });
    channel_->SetServer(rpc_server_.get());
  }

  // A canary is SimNetChannel reporting a codec bug (accepted corrupt frame, decoded
  // truncation); unlike an injected network failure it must fail the run.
  static bool IsCanary(const Status& status) {
    return status.ToString().find("canary:") != std::string::npos;
  }

  // The network interpretation of the KV steps. Updates that fail on the wire are
  // PENDING for the oracle — a dropped response means executed-but-unacknowledged,
  // and a dropped request is indistinguishable to the client, so both downgrade to
  // "may or may not be durable". Enquiries that fail on the wire verify nothing.
  Status ExecuteStepNetwork(const WorkloadStep& step) {
    switch (step.kind) {
      case StepKind::kPut: {
        Result<KvAck> ack = rpc::CallMethod<KvPutRequest, KvAck>(
            *channel_, "KvService", "Put", KvPutRequest{step.key, step.value});
        if (ack.ok()) {
          oracle_.AckPut(step.key, step.value);
        } else if (IsCanary(ack.status())) {
          violation_ = ack.status();
        } else {
          oracle_.PendingPut(step.key, step.value);
        }
        return ack.status();
      }
      case StepKind::kDelete: {
        Result<KvAck> ack = rpc::CallMethod<KvDeleteRequest, KvAck>(
            *channel_, "KvService", "Delete", KvDeleteRequest{step.key});
        if (ack.ok()) {
          oracle_.AckDelete(step.key);
        } else if (IsCanary(ack.status())) {
          violation_ = ack.status();
        } else {
          oracle_.PendingDelete(step.key);
        }
        return ack.status();
      }
      case StepKind::kLookup: {
        Result<KvLookupResponse> response = rpc::CallMethod<KvLookupRequest, KvLookupResponse>(
            *channel_, "KvService", "Lookup", KvLookupRequest{step.key});
        if (!response.ok()) {
          if (IsCanary(response.status())) {
            violation_ = response.status();
          }
          return response.status();
        }
        Status check =
            oracle_.CheckKeyRelaxed(step.key, response->found != 0, response->value);
        if (!check.ok()) {
          violation_ = check;
        }
        return OkStatus();
      }
      case StepKind::kEnumerate: {
        // The full-state response is large relative to the sim chunk size, so this
        // leg exercises chunked streaming + reassembly on nearly every enumerate.
        Result<KvEnumerateResponse> response =
            rpc::CallMethod<KvEnumerateRequest, KvEnumerateResponse>(
                *channel_, "KvService", "Enumerate", KvEnumerateRequest{});
        if (!response.ok()) {
          if (IsCanary(response.status())) {
            violation_ = response.status();
          }
          return response.status();
        }
        Status live = oracle_.CheckLiveRelaxed(response->state);
        if (!live.ok()) {
          violation_ = live;
        }
        return OkStatus();
      }
      default:
        return InternalError("step is not a network step");
    }
  }

  // Returns the engine's verdict on the step. Oracle violations (and terminal reboot
  // failures inside a restart step) land in violation_ instead — they fail the run.
  Status ExecuteStep(const WorkloadStep& step) {
    if (sharded()) {
      return ExecuteStepSharded(step);
    }
    if (channel_ != nullptr &&
        (step.kind == StepKind::kPut || step.kind == StepKind::kDelete ||
         step.kind == StepKind::kLookup || step.kind == StepKind::kEnumerate)) {
      return ExecuteStepNetwork(step);
    }
    switch (step.kind) {
      case StepKind::kPut: {
        Status st = db_->Update(app_->PreparePut(step.key, step.value));
        if (st.ok()) {
          oracle_.AckPut(step.key, step.value);
        } else {
          // Unacknowledged: the record may or may not have reached the durable log
          // (a later successful fsync can flush it). The oracle must tolerate both.
          oracle_.PendingPut(step.key, step.value);
        }
        return st;
      }
      case StepKind::kDelete: {
        Status st = db_->Update(app_->PrepareDelete(step.key));
        if (st.ok()) {
          oracle_.AckDelete(step.key);
        } else {
          oracle_.PendingDelete(step.key);
        }
        return st;
      }
      case StepKind::kLookup:
        return db_->Enquire([&]() -> Status {
          auto live = app_->state.find(step.key);
          auto want = oracle_.model().find(step.key);
          bool live_has = live != app_->state.end();
          bool want_has = want != oracle_.model().end();
          if (live_has != want_has ||
              (live_has && live->second != want->second)) {
            violation_ = InternalError(
                "oracle: lookup of " + step.key + " saw " +
                (live_has ? "\"" + live->second + "\"" : "nothing") + ", expected " +
                (want_has ? "\"" + want->second + "\"" : "nothing"));
          }
          return OkStatus();
        });
      case StepKind::kEnumerate:
        return db_->Enquire([&]() -> Status {
          Status live = oracle_.CheckLive(app_->state);
          if (!live.ok()) {
            violation_ = live;
          }
          return OkStatus();
        });
      case StepKind::kCheckpoint:
        return db_->Checkpoint();
      case StepKind::kBackup: {
        // Offline backup + restore + read-only verification against the model. Each
        // attempt gets fresh directory names; a fault mid-copy abandons the partials.
        const std::string bdir = "/bk" + std::to_string(backup_counter_);
        const std::string rdir = "/rs" + std::to_string(backup_counter_);
        ++backup_counter_;
        auto backed = BackupDatabaseDir(fs_, "/db", fs_, bdir);
        if (!backed.ok()) {
          return backed.status();
        }
        auto restored = RestoreDatabaseDir(fs_, bdir, fs_, rdir);
        if (!restored.ok()) {
          return restored.status();
        }
        KvApp replica;
        DatabaseOptions opts = DbOptions();
        opts.dir = rdir;
        auto ro = Database::OpenReadOnly(replica, std::move(opts));
        if (!ro.ok()) {
          return ro.status();
        }
        // The backup captured the live log's cache view: acknowledged state plus
        // possibly unacknowledged records — exactly what CheckRecovered models.
        Status check = oracle_.CheckRecovered(replica.state);
        if (!check.ok()) {
          violation_ = check.WithContext("restored backup " + rdir);
        }
        return OkStatus();
      }
      case StepKind::kRestart: {
        // A deliberate power cut at a step boundary (the paper's nightly restart,
        // minus the graceful shutdown our crash model doesn't need).
        Status st = Reboot();
        if (!st.ok()) {
          violation_ = st;
        }
        return OkStatus();
      }
    }
    return InternalError("unknown step kind");
  }

  // The sharded interpretation of the same step vocabulary. Two steps change
  // meaning: kCheckpoint covers one shard (round-robin, so a workload's checkpoint
  // steps sweep the ensemble), and kBackup becomes a rotation attempt — checkpoint
  // every shard, then apply the shared-log flushing rule — because rotation is the
  // sharded engine's analogue of "capture and truncate the durable state" and is
  // exactly the multi-step protocol worth aiming faults at.
  Status ExecuteStepSharded(const WorkloadStep& step) {
    switch (step.kind) {
      case StepKind::kPut: {
        std::size_t p = sdb_->ShardForKey(step.key);
        Status st =
            sdb_->UpdateKey(step.key, shard_apps_[p]->PreparePut(step.key, step.value));
        if (st.ok()) {
          oracle_.AckPut(step.key, step.value);
        } else {
          oracle_.PendingPut(step.key, step.value);
        }
        return st;
      }
      case StepKind::kDelete: {
        std::size_t p = sdb_->ShardForKey(step.key);
        Status st = sdb_->UpdateKey(step.key, shard_apps_[p]->PrepareDelete(step.key));
        if (st.ok()) {
          oracle_.AckDelete(step.key);
        } else {
          oracle_.PendingDelete(step.key);
        }
        return st;
      }
      case StepKind::kLookup: {
        std::size_t p = sdb_->ShardForKey(step.key);
        return sdb_->EnquireKey(step.key, [&]() -> Status {
          const auto& state = shard_apps_[p]->state;
          auto live = state.find(step.key);
          auto want = oracle_.model().find(step.key);
          bool live_has = live != state.end();
          bool want_has = want != oracle_.model().end();
          if (live_has != want_has ||
              (live_has && live->second != want->second)) {
            violation_ = InternalError(
                "oracle: lookup of " + step.key + " on shard " + std::to_string(p) +
                " saw " + (live_has ? "\"" + live->second + "\"" : "nothing") +
                ", expected " +
                (want_has ? "\"" + want->second + "\"" : "nothing"));
          }
          return OkStatus();
        });
      }
      case StepKind::kEnumerate:
        // EnquireAll holds every shard's shared lock: the merged view is a
        // consistent cross-shard instant, comparable against the oracle.
        return sdb_->EnquireAll([&]() -> Status {
          Status live = oracle_.CheckLive(MergedState());
          if (!live.ok()) {
            violation_ = live;
          }
          return OkStatus();
        });
      case StepKind::kCheckpoint:
        return sdb_->Checkpoint(checkpoint_cursor_++ % options_.shards);
      case StepKind::kBackup: {
        // Rotation attempt. Shards checkpoint sequentially on this thread (not
        // CheckpointAll — its background persist thread would interleave disk ops
        // nondeterministically against the fault schedule's op ordinals).
        for (int p = 0; p < options_.shards; ++p) {
          SDB_RETURN_IF_ERROR(sdb_->Checkpoint(p));
        }
        return sdb_->MaybeRotateLog().status();
      }
      case StepKind::kRestart: {
        Status st = Reboot();
        if (!st.ok()) {
          violation_ = st;
        }
        return OkStatus();
      }
    }
    return InternalError("unknown step kind");
  }

  const std::vector<WorkloadStep>& steps_;
  const HarnessOptions& options_;
  SimClock clock_;
  SimDisk disk_;
  SimFs fs_;
  std::unique_ptr<KvApp> app_;
  std::unique_ptr<Database> db_;
  // Sharded mode (options_.shards > 1): the ensemble replaces app_/db_.
  std::vector<std::unique_ptr<KvApp>> shard_apps_;
  std::unique_ptr<ShardedDatabase> sdb_;
  // Network mode (options_.network, Database mode only): the simulated transport.
  // The channel outlives reboots (its fault ordinals must keep counting); the
  // RpcServer + ingest sink are rebuilt with each recovered database.
  std::unique_ptr<SimNetChannel> channel_;
  std::unique_ptr<rpc::RpcServer> rpc_server_;
  std::shared_ptr<rpc::UpdateSink> update_sink_;
  std::size_t checkpoint_cursor_ = 0;
  ModelOracle oracle_;
  TraceHasher trace_;
  RunReport report_;
  Status violation_ = OkStatus();
  int soft_failures_ = 0;
  std::uint64_t backup_counter_ = 0;
};

}  // namespace

RunReport RunSeed(std::uint64_t seed, const HarnessOptions& options) {
  std::vector<WorkloadStep> steps = GenerateWorkload(seed, options.workload);
  RandomFaultSchedule schedule(seed, FaultOptionsFor(options.schedule));
  Runner runner(steps, options, seed);
  RunReport report = runner.Run(schedule.AsInjector());
  report.seed = seed;
  report.schedule = options.schedule;
  report.shards = options.shards;
  report.network = options.network && options.shards <= 1;
  report.fired_points = schedule.fired_points();
  return report;
}

RunReport RunScript(const std::vector<WorkloadStep>& steps,
                    const std::vector<FaultPoint>& points, const HarnessOptions& options,
                    std::uint64_t seed) {
  ScriptedFaultSchedule schedule(points);
  Runner runner(steps, options, seed);
  RunReport report = runner.Run(schedule.AsInjector());
  report.seed = seed;
  report.schedule = options.schedule;
  report.shards = options.shards;
  report.network = options.network && options.shards <= 1;
  report.fired_points = points;
  return report;
}

std::string ReportToString(const RunReport& report) {
  std::string out;
  if (report.ok) {
    out = "ok seed=" + std::to_string(report.seed) +
          " schedule=" + ScheduleKindName(report.schedule) +
          (report.shards > 1 ? " shards=" + std::to_string(report.shards) : "") +
          (report.network ? " network" : "") +
          " steps=" + std::to_string(report.steps_executed) +
          " reboots=" + std::to_string(report.reboots) +
          " trace=" + Hex(report.trace_hash);
    return out;
  }
  out = "FAILED seed=" + std::to_string(report.seed) +
        " schedule=" + ScheduleKindName(report.schedule) + ": " + report.failure +
        "\n  repro: sim_fuzz --seed=" + std::to_string(report.seed) +
        " --schedule=" + ScheduleKindName(report.schedule) +
        " --steps=" + std::to_string(report.steps.size()) +
        (report.shards > 1 ? " --shards=" + std::to_string(report.shards) : "") +
        (report.network ? " --mix=network" : "") +
        "\n  trace=" + Hex(report.trace_hash) + "\n  fault script (" +
        std::to_string(report.fired_points.size()) + " points):";
  for (const FaultPoint& point : report.fired_points) {
    out += "\n    " + FaultPointToString(point);
  }
  out += "\n  steps (" + std::to_string(report.steps.size()) + "):";
  for (const WorkloadStep& step : report.steps) {
    out += "\n    " + StepToString(step);
  }
  return out;
}

}  // namespace sdb::sim
