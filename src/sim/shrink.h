// Greedy shrinker for failing simulation runs.
//
// A failing RunSeed leaves a replayable pair (steps, fired fault points). Debugging
// wants the smallest such pair that still fails, so the shrinker runs ddmin-style
// chunk removal over the step list and the fault script, re-running the scripted
// harness after each candidate removal and keeping any that still fails (any failure
// counts — a shrink that morphs one oracle violation into another is still progress).
// The replay budget bounds total work; shrinking is best-effort within it.
#ifndef SMALLDB_SRC_SIM_SHRINK_H_
#define SMALLDB_SRC_SIM_SHRINK_H_

#include "src/sim/harness.h"

namespace sdb::sim {

struct ShrinkOptions {
  // Must match the options of the failing run being shrunk.
  HarnessOptions harness;
  // Total scripted replays the shrinker may spend.
  int max_runs = 200;
};

struct ShrinkResult {
  // The minimized failing run (== the input failure if nothing could be removed).
  RunReport report;
  std::vector<WorkloadStep> steps;
  std::vector<FaultPoint> points;
  int runs_used = 0;
  bool reproduced = false;  // the scripted replay of the failure failed too
  bool shrunk = false;      // at least one step or fault point was removed
};

ShrinkResult ShrinkFailure(const RunReport& failing, const ShrinkOptions& options);

}  // namespace sdb::sim

#endif  // SMALLDB_SRC_SIM_SHRINK_H_
