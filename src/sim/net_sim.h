// SimNetChannel: the deterministic network for the simulation harness.
//
// A real socket cannot appear inside a simulated run (its timing and failures are
// not a function of the seed), so the harness's "network" is this channel: every
// request and response still travels through the REAL wire codec — encoded as a
// frame, CRC'd, decoded by a FrameDecoder, responses chunked and reassembled — but
// delivery happens in-process against an RpcServer, and every failure is drawn
// statelessly from (seed, op ordinal), the RandomFaultSchedule idiom. The failures
// are the ones real TCP produces, including the asymmetric ones:
//
//   drop-request   the request never arrives; the operation did NOT execute
//   drop-response  the server executed and committed, then the reply was lost —
//                  the half-open failure; the oracle must treat the op as pending
//   corrupt-frame  a byte flips in flight; the decoder MUST reject the frame
//                  (an accepted bogus frame is reported as a canary error)
//   truncate-frame the peer dies mid-frame; the decoder must keep waiting, never
//                  yield a partial frame
//   partition      a window of ops where nothing gets through in either direction
//   slow-peer      delivery succeeds but charges the SimClock a long delay
//
// The server pointer is settable because the harness rebuilds the RpcServer at
// every reboot; fault ordinals keep counting across reboots, so a run remains a
// pure function of its seed.
#ifndef SMALLDB_SRC_SIM_NET_SIM_H_
#define SMALLDB_SRC_SIM_NET_SIM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "src/common/clock.h"
#include "src/net/frame.h"
#include "src/rpc/server.h"
#include "src/rpc/transport.h"

namespace sdb::sim {

struct NetFaultOptions {
  // Per-round-trip probabilities, drawn independently in the order listed; the
  // first that fires wins the op.
  double partition_start = 0;
  double drop_request = 0;
  double drop_response = 0;
  double corrupt_frame = 0;
  double truncate_frame = 0;
  double slow_peer = 0;

  // A partition swallows this many consecutive round trips once it starts.
  std::uint64_t partition_ops = 3;
  Micros slow_peer_micros = 50 * kMicrosPerMilli;
  // Budget so every run converges: once this many faults fired, the network goes
  // quiet (partitions in progress still drain their window).
  std::uint64_t max_faults = 16;

  // Responses are chunked at this size so reassembly runs constantly (tiny on
  // purpose — a sim Enumerate response spans many chunks).
  std::size_t chunk_payload = 48;
};

class SimNetChannel final : public rpc::Channel {
 public:
  SimNetChannel(std::uint64_t seed, NetFaultOptions options, rpc::RpcServer* server,
                SimClock* clock)
      : seed_(seed), options_(options), server_(server), clock_(clock) {}

  // The harness rebuilds the RpcServer after every reboot; ordinals continue.
  void SetServer(rpc::RpcServer* server) { server_ = server; }

  // Called with the event name whenever a fault fires ("net-drop-request", ...);
  // the harness mixes these into the trace hash.
  void SetEventHook(std::function<void(std::string_view)> hook) {
    on_event_ = std::move(hook);
  }

  Result<Bytes> RoundTrip(ByteSpan request) override;

  std::uint64_t ops() const { return ops_; }
  std::uint64_t faults_fired() const { return faults_; }

 private:
  double Draw(std::uint64_t ordinal, std::uint64_t lane) const;
  void Fire(std::string_view event);

  const std::uint64_t seed_;
  const NetFaultOptions options_;
  rpc::RpcServer* server_;
  SimClock* clock_;
  std::function<void(std::string_view)> on_event_;

  std::uint64_t ops_ = 0;
  std::uint64_t faults_ = 0;
  std::uint64_t partition_left_ = 0;
};

}  // namespace sdb::sim

#endif  // SMALLDB_SRC_SIM_NET_SIM_H_
