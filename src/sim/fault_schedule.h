// Fault schedules: the simulation harness's generalization of CrashPlan.
//
// CrashPlan (src/storage/fault.h) fires once, at one durable operation. Recovery bugs
// hide in *sequences* of failures — a crash during recovery from a crash, a torn
// metadata sync during the checkpoint switch followed by a second crash mid-replay,
// transient controller errors that fail an fsync without cutting power. The two
// injectors here manufacture those sequences:
//
//   - ScriptedFaultSchedule replays an explicit list of FaultPoints. Because SimDisk's
//     op counters never reset across ClearCrash, one script can span many
//     crash/recover cycles; this is also the shrinker's replay vehicle.
//   - RandomFaultSchedule derives every decision statelessly from (seed, op class,
//     op ordinal), so a run is a pure function of its seed regardless of retry loops
//     or thread interleaving, and records what fired as FaultPoints for replay.
#ifndef SMALLDB_SRC_SIM_FAULT_SCHEDULE_H_
#define SMALLDB_SRC_SIM_FAULT_SCHEDULE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/storage/fault.h"

namespace sdb::sim {

// One injection point. Durable ops (page writes + metadata syncs) and page reads count
// on independent sequences (see DurableOp), so (sequence, read_op) names an op
// uniquely within a deterministic run.
struct FaultPoint {
  std::uint64_t sequence = 0;             // 1-based ordinal within its class
  FaultAction action = FaultAction::kNone;
  bool read_op = false;                   // false: durable sequence; true: read sequence
  bool metadata_only = false;             // durable points: fire only on metadata syncs
};

std::string FaultActionName(FaultAction action);
std::string FaultPointToString(const FaultPoint& point);

// Fires each point when the matching op comes by. Thread-safe (immutable script,
// atomic counters) and deterministic.
class ScriptedFaultSchedule {
 public:
  explicit ScriptedFaultSchedule(std::vector<FaultPoint> points)
      : points_(std::move(points)) {}

  FaultAction Decide(const DurableOp& op);

  FaultInjector AsInjector() {
    return [this](const DurableOp& op) { return Decide(op); };
  }

  std::uint64_t fired_count() const { return fired_.load(std::memory_order_relaxed); }
  const std::vector<FaultPoint>& points() const { return points_; }

 private:
  std::vector<FaultPoint> points_;
  std::atomic<std::uint64_t> fired_{0};
};

// Per-op fault probabilities. All default to zero; a default-constructed schedule
// injects nothing.
struct RandomFaultOptions {
  // Durable-op crash flavours (power failures).
  double crash_before = 0;
  double crash_torn = 0;
  double crash_after = 0;
  // Extra torn probability applied only to metadata syncs — concentrates crashes on
  // the checkpoint version-file switch protocol, which is where SyncDir happens.
  double torn_metadata_sync = 0;
  // Non-crashing transient I/O errors.
  double transient_write = 0;  // per durable page write
  double transient_read = 0;   // per disk page read (post-crash reload — faults recovery)
  // Budgets, so every run terminates: once exhausted, the schedule goes quiet.
  std::uint64_t max_crashes = 4;
  std::uint64_t max_transients = 32;
};

class RandomFaultSchedule {
 public:
  RandomFaultSchedule(std::uint64_t seed, RandomFaultOptions options)
      : seed_(seed), options_(options) {}

  FaultAction Decide(const DurableOp& op);

  FaultInjector AsInjector() {
    return [this](const DurableOp& op) { return Decide(op); };
  }

  // Everything that fired, in firing order — a ScriptedFaultSchedule built from this
  // list reproduces the run exactly (all other decisions were kNone).
  std::vector<FaultPoint> fired_points() const;

  std::uint64_t crashes_fired() const;
  std::uint64_t transients_fired() const;

 private:
  // Uniform draw in [0,1) derived purely from (seed, op class, op ordinal): decisions
  // do not depend on call order, so retries and concurrency cannot perturb them.
  double DrawFor(const DurableOp& op) const;

  const std::uint64_t seed_;
  const RandomFaultOptions options_;
  mutable std::mutex mutex_;
  std::uint64_t crashes_ = 0;
  std::uint64_t transients_ = 0;
  std::vector<FaultPoint> fired_;
};

}  // namespace sdb::sim

#endif  // SMALLDB_SRC_SIM_FAULT_SCHEDULE_H_
