#include "src/sim/fault_schedule.h"

namespace sdb::sim {

std::string FaultActionName(FaultAction action) {
  switch (action) {
    case FaultAction::kNone:
      return "none";
    case FaultAction::kCrashBefore:
      return "crash-before";
    case FaultAction::kCrashTorn:
      return "crash-torn";
    case FaultAction::kCrashAfter:
      return "crash-after";
    case FaultAction::kTransientError:
      return "transient-error";
  }
  return "?";
}

std::string FaultPointToString(const FaultPoint& point) {
  std::string out = (point.read_op ? "read-op " : "durable-op ") +
                    std::to_string(point.sequence) + " -> " +
                    FaultActionName(point.action);
  if (point.metadata_only) {
    out += " (metadata syncs only)";
  }
  return out;
}

FaultAction ScriptedFaultSchedule::Decide(const DurableOp& op) {
  bool is_read = op.kind == DurableOp::Kind::kPageRead;
  for (const FaultPoint& point : points_) {
    if (point.read_op != is_read || point.sequence != op.sequence) {
      continue;
    }
    if (point.metadata_only && op.kind != DurableOp::Kind::kMetadataSync) {
      continue;
    }
    if (point.action != FaultAction::kNone) {
      fired_.fetch_add(1, std::memory_order_relaxed);
    }
    return point.action;
  }
  return FaultAction::kNone;
}

namespace {

// SplitMix64 finalizer: a well-mixed 64-bit hash.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

double RandomFaultSchedule::DrawFor(const DurableOp& op) const {
  std::uint64_t op_class = op.kind == DurableOp::Kind::kPageRead ? 2 : 1;
  std::uint64_t h = Mix64(seed_ ^ Mix64(op.sequence ^ (op_class << 56)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

FaultAction RandomFaultSchedule::Decide(const DurableOp& op) {
  double u = DrawFor(op);
  std::lock_guard<std::mutex> lock(mutex_);

  auto fire = [&](FaultAction action) {
    fired_.push_back(FaultPoint{op.sequence, action,
                                op.kind == DurableOp::Kind::kPageRead, false});
    return action;
  };

  if (op.kind == DurableOp::Kind::kPageRead) {
    if (transients_ < options_.max_transients && u < options_.transient_read) {
      ++transients_;
      return fire(FaultAction::kTransientError);
    }
    return FaultAction::kNone;
  }

  // Durable op: stack the thresholds so one draw picks at most one fault.
  double torn = options_.crash_torn +
                (op.kind == DurableOp::Kind::kMetadataSync ? options_.torn_metadata_sync : 0);
  double p_before = options_.crash_before;
  double p_torn = p_before + torn;
  double p_after = p_torn + options_.crash_after;
  double p_transient = p_after + options_.transient_write;

  if (u < p_after) {
    if (crashes_ >= options_.max_crashes) {
      return FaultAction::kNone;
    }
    ++crashes_;
    if (u < p_before) {
      return fire(FaultAction::kCrashBefore);
    }
    if (u < p_torn) {
      return fire(FaultAction::kCrashTorn);
    }
    return fire(FaultAction::kCrashAfter);
  }
  if (u < p_transient) {
    if (transients_ >= options_.max_transients) {
      return FaultAction::kNone;
    }
    ++transients_;
    return fire(FaultAction::kTransientError);
  }
  return FaultAction::kNone;
}

std::vector<FaultPoint> RandomFaultSchedule::fired_points() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fired_;
}

std::uint64_t RandomFaultSchedule::crashes_fired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return crashes_;
}

std::uint64_t RandomFaultSchedule::transients_fired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return transients_;
}

}  // namespace sdb::sim
