#include "src/sim/shrink.h"

#include <algorithm>
#include <utility>

namespace sdb::sim {

namespace {

// One ddmin sweep: try removing chunks, halving the chunk size down to 1. Keeps any
// removal after which `still_fails` says the run still fails. Returns whether the
// list got smaller.
template <typename T, typename StillFails>
bool DdminPass(std::vector<T>& items, StillFails&& still_fails) {
  bool removed_any = false;
  std::size_t chunk = (items.size() + 1) / 2;
  while (chunk >= 1 && !items.empty()) {
    for (std::size_t start = 0; start < items.size();) {
      std::size_t end = std::min(items.size(), start + chunk);
      std::vector<T> candidate;
      candidate.reserve(items.size() - (end - start));
      candidate.insert(candidate.end(), items.begin(),
                       items.begin() + static_cast<std::ptrdiff_t>(start));
      candidate.insert(candidate.end(), items.begin() + static_cast<std::ptrdiff_t>(end),
                       items.end());
      if (still_fails(candidate)) {
        items = std::move(candidate);
        removed_any = true;
        // The next chunk has slid into `start`; retry at the same position.
      } else {
        start = end;
      }
    }
    if (chunk == 1) {
      break;
    }
    chunk /= 2;
  }
  return removed_any;
}

}  // namespace

ShrinkResult ShrinkFailure(const RunReport& failing, const ShrinkOptions& options) {
  ShrinkResult result;
  result.report = failing;
  result.steps = failing.steps;
  result.points = failing.fired_points;

  auto replay_fails = [&](const std::vector<WorkloadStep>& steps,
                          const std::vector<FaultPoint>& points,
                          RunReport* out) -> bool {
    if (result.runs_used >= options.max_runs) {
      return false;  // budget exhausted: treat as "cannot remove"
    }
    ++result.runs_used;
    RunReport report = RunScript(steps, points, options.harness, failing.seed);
    if (!report.ok && out != nullptr) {
      *out = std::move(report);
      return true;
    }
    return !report.ok;
  };

  // The fired points must reproduce the failure as a script before shrinking means
  // anything. (They should: every non-fired decision in the original run was kNone.)
  RunReport reproduced;
  if (!replay_fails(result.steps, result.points, &reproduced)) {
    return result;
  }
  result.reproduced = true;
  result.report = std::move(reproduced);

  // Alternate step- and fault-shrinking passes until a full round removes nothing:
  // dropping steps can make fault points unreachable (removable), and vice versa.
  bool progress = true;
  while (progress && result.runs_used < options.max_runs) {
    progress = false;
    progress |= DdminPass(result.steps, [&](const std::vector<WorkloadStep>& candidate) {
      RunReport report;
      if (!replay_fails(candidate, result.points, &report)) {
        return false;
      }
      result.report = std::move(report);
      return true;
    });
    progress |= DdminPass(result.points, [&](const std::vector<FaultPoint>& candidate) {
      RunReport report;
      if (!replay_fails(result.steps, candidate, &report)) {
        return false;
      }
      result.report = std::move(report);
      return true;
    });
    result.shrunk |= progress;
  }

  result.report.steps = result.steps;
  result.report.fired_points = result.points;
  return result;
}

}  // namespace sdb::sim
