// Seeded workload DSL for the simulation harness.
//
// A workload is a flat list of steps — update / lookup / enumerate / checkpoint /
// backup / restart — attributed to logical clients. The generator is a pure function
// of its seed; the steps are plain data so a failing run can be shrunk (steps removed)
// and printed as a human-readable repro script.
//
// Clients are *logical*: the harness executes steps on one OS thread in list order
// (deterministic scheduling on the SimClock), interleaving clients the way the seeded
// generator shuffled them. Values are tagged with client and step ordinals so the
// oracle can attribute any stray value it finds.
#ifndef SMALLDB_SRC_SIM_WORKLOAD_H_
#define SMALLDB_SRC_SIM_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sdb::sim {

enum class StepKind : std::uint8_t {
  kPut,         // update: insert-or-assign key=value
  kDelete,      // update: erase key (blind; deleting a missing key is a no-op update)
  kLookup,      // enquiry: one key must match the model exactly
  kEnumerate,   // enquiry: the full state must match the model exactly
  kCheckpoint,  // explicit checkpoint (the switch protocol under fault fire)
  kBackup,      // offline backup + restore + read-only verify against the oracle
  kRestart,     // clean close + reopen (no power cut)
};

struct WorkloadStep {
  StepKind kind = StepKind::kPut;
  int client = 0;
  std::string key;
  std::string value;
};

struct WorkloadOptions {
  int steps = 60;
  int clients = 3;
  int keyspace = 16;              // keys are k0..k<keyspace-1>
  std::size_t max_value_bytes = 40;

  // Relative step-kind weights (normalized internally).
  double put_weight = 0.50;
  double delete_weight = 0.12;
  double lookup_weight = 0.15;
  double enumerate_weight = 0.07;
  double checkpoint_weight = 0.08;
  double backup_weight = 0.04;
  double restart_weight = 0.04;
};

// Pure function of (seed, options).
std::vector<WorkloadStep> GenerateWorkload(std::uint64_t seed,
                                           const WorkloadOptions& options);

// A mix that keeps the checkpoint pipeline constantly busy (one step in three is a
// checkpoint), so fault schedules land inside the snapshot / rotation / background
// write / switch window instead of almost always on update commits.
WorkloadOptions CheckpointHeavyWorkload();

// A mix that reboots constantly (one step in five is a restart) over a long put /
// delete stream and almost no checkpoints, so every reboot replays a deep log tail.
// Run with recovery_threads > 1 this aims fault schedules (transient read faults in
// particular — recovery's own page reads) at the parallel replay pipeline.
WorkloadOptions RestartHeavyWorkload();

// A mix for the delta-checkpoint chain: a dense put stream over a small keyspace
// with one step in four a checkpoint and regular restarts. Paired with tiny
// compaction thresholds (the harness's compact_after_deltas / ratio knobs) every
// run grows, collapses and recovers delta chains many times, so fault schedules
// land on delta publication, the compaction rewrite and chain reclamation.
WorkloadOptions CompactionHeavyWorkload();

std::string StepKindName(StepKind kind);
std::string StepToString(const WorkloadStep& step);

}  // namespace sdb::sim

#endif  // SMALLDB_SRC_SIM_WORKLOAD_H_
