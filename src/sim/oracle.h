// ModelOracle: the in-memory reference model of acknowledged-only state.
//
// The paper's Section 4 guarantee, made checkable: at every moment the durable
// database equals {every acknowledged update, in order} plus possibly a suffix of
// updates that were submitted but never acknowledged (their Update() call returned an
// error — a commit whose fsync failed may still have reached the log and will then be
// replayed). The oracle tracks both sets:
//
//   - model_:   the acknowledged state. Live reads between faults must match exactly.
//   - pending_: per key, the values (or deletions) of unacknowledged updates since the
//               last recovery. After a crash, each divergence of the recovered state
//               from model_ must be explained by one of these.
//
// After a recovery verifies, Adopt() snaps the model to the recovered state (the
// durable truth is now known exactly) and clears the pending set.
#ifndef SMALLDB_SRC_SIM_ORACLE_H_
#define SMALLDB_SRC_SIM_ORACLE_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace sdb::sim {

class ModelOracle {
 public:
  // Acknowledged updates (Update() returned OK).
  void AckPut(const std::string& key, const std::string& value);
  void AckDelete(const std::string& key);

  // Unacknowledged updates (Update() returned an error): durable or not, unknown.
  void PendingPut(const std::string& key, const std::string& value);
  void PendingDelete(const std::string& key);

  // Live in-memory state between faults must equal the model exactly (a failed update
  // is never applied in memory).
  Status CheckLive(const std::map<std::string, std::string>& live) const;

  // The network-mode live checks. Over a half-open connection an update can execute
  // and commit while its acknowledgment is lost, so live state may run AHEAD of the
  // acknowledged model: any divergence is acceptable iff a pending (unacknowledged)
  // op on that key explains it — the same explanation rule CheckRecovered applies
  // after a crash. CheckKeyRelaxed is the single-key form for lookups; `found` and
  // `value` are what the live read returned.
  Status CheckLiveRelaxed(const std::map<std::string, std::string>& live) const;
  Status CheckKeyRelaxed(const std::string& key, bool found,
                         const std::string& value) const;

  // Recovered state after a crash: every acknowledged update present with its exact
  // value unless superseded by a pending op for that key; nothing present that neither
  // the model nor the pending set explains.
  Status CheckRecovered(const std::map<std::string, std::string>& recovered) const;

  // Accept the recovered state as the new acknowledged baseline.
  void Adopt(const std::map<std::string, std::string>& recovered);

  const std::map<std::string, std::string>& model() const { return model_; }
  std::size_t pending_ops() const;

 private:
  struct PendingOp {
    bool is_delete = false;
    std::string value;
  };

  // True when some unacknowledged op on `key` explains the observed state: a pending
  // delete when value == nullptr (key absent), a pending put of *value otherwise.
  bool PendingExplains(const std::string& key, const std::string* value) const;

  std::map<std::string, std::string> model_;
  std::map<std::string, std::vector<PendingOp>> pending_;
};

}  // namespace sdb::sim

#endif  // SMALLDB_SRC_SIM_ORACLE_H_
