#include "src/sim/oracle.h"

namespace sdb::sim {

void ModelOracle::AckPut(const std::string& key, const std::string& value) {
  model_.insert_or_assign(key, value);
}

void ModelOracle::AckDelete(const std::string& key) { model_.erase(key); }

void ModelOracle::PendingPut(const std::string& key, const std::string& value) {
  pending_[key].push_back(PendingOp{false, value});
}

void ModelOracle::PendingDelete(const std::string& key) {
  pending_[key].push_back(PendingOp{true, {}});
}

Status ModelOracle::CheckLive(const std::map<std::string, std::string>& live) const {
  if (live == model_) {
    return OkStatus();
  }
  for (const auto& [key, value] : model_) {
    auto it = live.find(key);
    if (it == live.end()) {
      return InternalError("oracle: live state lost acknowledged key " + key);
    }
    if (it->second != value) {
      return InternalError("oracle: live value of " + key + " is \"" + it->second +
                           "\", expected \"" + value + "\"");
    }
  }
  for (const auto& [key, value] : live) {
    if (model_.count(key) == 0) {
      return InternalError("oracle: live state grew phantom key " + key + " = \"" +
                           value + "\"");
    }
  }
  return InternalError("oracle: live state diverged from model");
}

Status ModelOracle::CheckRecovered(
    const std::map<std::string, std::string>& recovered) const {
  auto pending_explains = [this](const std::string& key, const std::string* value) {
    auto it = pending_.find(key);
    if (it == pending_.end()) {
      return false;
    }
    for (const PendingOp& op : it->second) {
      if (value == nullptr ? op.is_delete : (!op.is_delete && op.value == *value)) {
        return true;
      }
    }
    return false;
  };

  for (const auto& [key, value] : model_) {
    auto it = recovered.find(key);
    if (it == recovered.end()) {
      if (!pending_explains(key, nullptr)) {
        return InternalError("oracle: recovery lost acknowledged key " + key +
                             " (was \"" + value + "\")");
      }
      continue;
    }
    if (it->second != value && !pending_explains(key, &it->second)) {
      return InternalError("oracle: recovered value of " + key + " is \"" + it->second +
                           "\", expected \"" + value +
                           "\" and no unacknowledged update explains it");
    }
  }
  for (const auto& [key, value] : recovered) {
    if (model_.count(key) == 0 && !pending_explains(key, &value)) {
      return InternalError("oracle: recovery produced phantom key " + key + " = \"" +
                           value + "\"");
    }
  }
  return OkStatus();
}

void ModelOracle::Adopt(const std::map<std::string, std::string>& recovered) {
  model_ = recovered;
  pending_.clear();
}

std::size_t ModelOracle::pending_ops() const {
  std::size_t n = 0;
  for (const auto& [key, ops] : pending_) {
    n += ops.size();
  }
  return n;
}

}  // namespace sdb::sim
