#include "src/sim/oracle.h"

namespace sdb::sim {

void ModelOracle::AckPut(const std::string& key, const std::string& value) {
  model_.insert_or_assign(key, value);
}

void ModelOracle::AckDelete(const std::string& key) { model_.erase(key); }

void ModelOracle::PendingPut(const std::string& key, const std::string& value) {
  pending_[key].push_back(PendingOp{false, value});
}

void ModelOracle::PendingDelete(const std::string& key) {
  pending_[key].push_back(PendingOp{true, {}});
}

Status ModelOracle::CheckLive(const std::map<std::string, std::string>& live) const {
  if (live == model_) {
    return OkStatus();
  }
  for (const auto& [key, value] : model_) {
    auto it = live.find(key);
    if (it == live.end()) {
      return InternalError("oracle: live state lost acknowledged key " + key);
    }
    if (it->second != value) {
      return InternalError("oracle: live value of " + key + " is \"" + it->second +
                           "\", expected \"" + value + "\"");
    }
  }
  for (const auto& [key, value] : live) {
    if (model_.count(key) == 0) {
      return InternalError("oracle: live state grew phantom key " + key + " = \"" +
                           value + "\"");
    }
  }
  return InternalError("oracle: live state diverged from model");
}

bool ModelOracle::PendingExplains(const std::string& key,
                                  const std::string* value) const {
  auto it = pending_.find(key);
  if (it == pending_.end()) {
    return false;
  }
  for (const PendingOp& op : it->second) {
    if (value == nullptr ? op.is_delete : (!op.is_delete && op.value == *value)) {
      return true;
    }
  }
  return false;
}

Status ModelOracle::CheckRecovered(
    const std::map<std::string, std::string>& recovered) const {
  auto pending_explains = [this](const std::string& key, const std::string* value) {
    return PendingExplains(key, value);
  };

  for (const auto& [key, value] : model_) {
    auto it = recovered.find(key);
    if (it == recovered.end()) {
      if (!pending_explains(key, nullptr)) {
        return InternalError("oracle: recovery lost acknowledged key " + key +
                             " (was \"" + value + "\")");
      }
      continue;
    }
    if (it->second != value && !pending_explains(key, &it->second)) {
      return InternalError("oracle: recovered value of " + key + " is \"" + it->second +
                           "\", expected \"" + value +
                           "\" and no unacknowledged update explains it");
    }
  }
  for (const auto& [key, value] : recovered) {
    if (model_.count(key) == 0 && !pending_explains(key, &value)) {
      return InternalError("oracle: recovery produced phantom key " + key + " = \"" +
                           value + "\"");
    }
  }
  return OkStatus();
}

Status ModelOracle::CheckLiveRelaxed(
    const std::map<std::string, std::string>& live) const {
  // Same explanation rule as CheckRecovered — live state may have absorbed
  // unacknowledged updates, which is exactly what the pending set models.
  Status status = CheckRecovered(live);
  if (!status.ok()) {
    return InternalError("live (network) " + status.ToString());
  }
  return OkStatus();
}

Status ModelOracle::CheckKeyRelaxed(const std::string& key, bool found,
                                    const std::string& value) const {
  auto it = model_.find(key);
  if (it != model_.end()) {
    if (found && value == it->second) {
      return OkStatus();
    }
    if (found) {
      if (PendingExplains(key, &value)) {
        return OkStatus();
      }
      return InternalError("oracle: live value of " + key + " is \"" + value +
                           "\", expected \"" + it->second +
                           "\" and no unacknowledged update explains it");
    }
    if (PendingExplains(key, nullptr)) {
      return OkStatus();
    }
    return InternalError("oracle: live state lost acknowledged key " + key);
  }
  if (!found) {
    return OkStatus();
  }
  if (PendingExplains(key, &value)) {
    return OkStatus();
  }
  return InternalError("oracle: live state grew phantom key " + key + " = \"" + value +
                       "\"");
}

void ModelOracle::Adopt(const std::map<std::string, std::string>& recovered) {
  model_ = recovered;
  pending_.clear();
}

std::size_t ModelOracle::pending_ops() const {
  std::size_t n = 0;
  for (const auto& [key, ops] : pending_) {
    n += ops.size();
  }
  return n;
}

}  // namespace sdb::sim
