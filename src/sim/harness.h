// The simulation harness: runs a seeded workload against a Database on SimFs under a
// fault schedule, checking every observable state against the ModelOracle.
//
// The loop is the FoundationDB recipe scaled to this engine: generate a workload from
// the seed, execute it step by step, and whenever a fault cuts power, recover, verify
// the recovered state against the model, adopt it, and continue — many crash/recover
// cycles per run. The run is a pure function of (seed, options): the disk clock is
// simulated, fault decisions are stateless hashes of op ordinals, and the workload is
// seeded, so two runs of the same seed produce the identical trace hash. A failing
// seed therefore reproduces with `sim_fuzz --seed=N`, and the (steps, fired fault
// points) pair is replayable — and shrinkable — via RunScript.
#ifndef SMALLDB_SRC_SIM_HARNESS_H_
#define SMALLDB_SRC_SIM_HARNESS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/fault_schedule.h"
#include "src/sim/net_sim.h"
#include "src/sim/workload.h"

namespace sdb::sim {

// FNV-1a over everything deterministic a run observes: step outcomes, fault firings,
// and the full recovered state after every reboot. Asserting equal hashes across two
// runs of one seed is the reproducibility check.
class TraceHasher {
 public:
  void Mix(std::string_view text) {
    for (char c : text) {
      MixByte(static_cast<unsigned char>(c));
    }
    MixByte(0xFF);  // delimiter so Mix("ab"),Mix("c") != Mix("a"),Mix("bc")
  }
  void Mix(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      MixByte(static_cast<unsigned char>(value >> (i * 8)));
    }
  }
  std::uint64_t hash() const { return hash_; }

 private:
  void MixByte(unsigned char byte) {
    hash_ ^= byte;
    hash_ *= 1099511628211ull;
  }
  std::uint64_t hash_ = 14695981039346656037ull;
};

// Named fault-probability presets — the vocabulary `sim_fuzz --schedule=` accepts.
enum class ScheduleKind {
  kNone,        // no faults: workload + final reboot only
  kMultiCrash,  // repeated power failures, including crash-during-recovery
  kTransient,   // non-crashing I/O errors on writes and reads
  kTornSwitch,  // torn metadata syncs concentrated on the checkpoint switch
  kMixed,       // everything at once
};

std::string ScheduleKindName(ScheduleKind kind);
bool ParseScheduleKind(std::string_view name, ScheduleKind* out);
RandomFaultOptions FaultOptionsFor(ScheduleKind kind);

// The network-fault preset each schedule maps to when options.network is set (the
// disk-fault preset above still applies — network runs fuzz both at once).
NetFaultOptions NetFaultOptionsFor(ScheduleKind kind);

struct HarnessOptions {
  WorkloadOptions workload;
  ScheduleKind schedule = ScheduleKind::kMixed;
  std::size_t disk_page_size = 512;

  // > 1 runs the workload against ShardedDatabase: keys hash across `shards`
  // key-routed shards over one shared log and the cross-shard coalescer. The
  // oracle checks the MERGED per-shard state after every crash/recover, plus the
  // routing invariant (every recovered key lives on its home shard). Checkpoint
  // steps rotate through shards; backup steps become log-rotation attempts (the
  // sharded flushing rule under fault fire). Everything stays deterministic:
  // recovery is forced sequential and rotation attempts checkpoint shards in
  // index order on the harness thread.
  int shards = 1;
  // Routes the KV workload's puts/deletes/lookups/enumerates through a SimNetChannel
  // + RpcServer pair instead of direct engine calls: every op crosses the real wire
  // codec and the batch-ingest registration (RegisterUpdate -> Database::UpdateMany)
  // under the schedule's NetFaultOptionsFor() preset — drops, half-open connections
  // (executed but unacknowledged, the oracle's pending state), corrupt and truncated
  // frames (decoder-rejection canaries), partitions, slow peers. Checkpoint, backup
  // and restart steps stay local. Database mode only (shards must be 1).
  bool network = false;
  // Database-mode replay thread count. Parallel replay is deterministic under the
  // simulation: the log (and its faultable page reads) is consumed sequentially on
  // the recovery thread, workers only apply already-read records in memory, and the
  // recovered state is equivalent to serial replay by construction — so the trace
  // hash is a pure function of the seed at ANY thread count. Sharded mode ignores
  // this and stays sequential (parallel checkpoint loads would permute SimDisk op
  // ordinals).
  int recovery_threads = 1;
  // Delta-checkpoint thresholds forwarded to the engine (Database mode only). The
  // runner always forces background_compaction = false: every harness checkpoint
  // is a synchronous Checkpoint() call on the harness thread, so compaction runs
  // inline at deterministic points and the trace hash stays a pure function of the
  // seed. The compaction-heavy mix shrinks these so chains grow and collapse many
  // times per run.
  std::uint64_t compact_after_deltas = 8;
  double compact_delta_base_ratio = 0.5;

  // Safety rails; fault budgets make runs terminate long before these.
  int max_reboots = 64;
  int max_recovery_attempts = 64;
  // Forced reboot after this many consecutive non-crash step failures (a transient
  // error can wedge an in-flight log switch; power-cycling restores a known state).
  int max_soft_failures = 8;
};

struct RunReport {
  bool ok = false;
  std::string failure;  // oracle violation or non-convergence, empty when ok

  std::uint64_t seed = 0;
  ScheduleKind schedule = ScheduleKind::kNone;
  int shards = 1;  // engine the run drove: 1 = Database, > 1 = ShardedDatabase
  bool network = false;  // KV steps crossed the simulated wire
  std::uint64_t trace_hash = 0;

  std::uint64_t reboots = 0;             // power cycles, incl. the boot and final verify
  std::uint64_t recovery_attempts = 0;   // recover+reopen tries (faults retry them)
  std::uint64_t transient_errors = 0;    // delivered by the disk
  std::size_t steps_executed = 0;

  // Replay material: RunScript(steps, fired_points, ...) reproduces this run.
  std::vector<WorkloadStep> steps;
  std::vector<FaultPoint> fired_points;
};

// One-line repro plus the shrunk script, printable by drivers and CI logs.
std::string ReportToString(const RunReport& report);

// Executes seed-derived workload + schedule. Pure function of (seed, options).
RunReport RunSeed(std::uint64_t seed, const HarnessOptions& options);

// Replays an explicit step list under an explicit fault script (shrinker vehicle).
// `seed` and `schedule` label the report only; options.schedule is ignored.
RunReport RunScript(const std::vector<WorkloadStep>& steps,
                    const std::vector<FaultPoint>& points, const HarnessOptions& options,
                    std::uint64_t seed = 0);

}  // namespace sdb::sim

#endif  // SMALLDB_SRC_SIM_HARNESS_H_
