#include "src/sim/net_sim.h"

namespace sdb::sim {

namespace {

// SplitMix64 finalizer, as in RandomFaultSchedule: decisions are pure functions of
// (seed, op ordinal, lane), independent of call timing.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

double SimNetChannel::Draw(std::uint64_t ordinal, std::uint64_t lane) const {
  std::uint64_t h = Mix64(seed_ ^ Mix64(ordinal ^ (lane << 56)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

void SimNetChannel::Fire(std::string_view event) {
  ++faults_;
  if (on_event_) {
    on_event_(event);
  }
}

Result<Bytes> SimNetChannel::RoundTrip(ByteSpan request) {
  const std::uint64_t n = ++ops_;

  // An open partition swallows the op before anything is sent.
  if (partition_left_ > 0) {
    --partition_left_;
    if (on_event_) {
      on_event_("net-partitioned");
    }
    return UnavailableError("network partition");
  }
  const bool budget = faults_ < options_.max_faults;
  if (budget && Draw(n, 1) < options_.partition_start) {
    partition_left_ = options_.partition_ops;
    Fire("net-partition-start");
    if (partition_left_ > 0) {
      --partition_left_;
    }
    return UnavailableError("network partition");
  }

  // The request leg: encode through the real codec.
  net::Frame out;
  out.type = net::FrameType::kRequest;
  out.request_id = n;
  out.payload.assign(request.begin(), request.end());
  Bytes wire = net::EncodeFrame(out);

  if (budget && Draw(n, 2) < options_.drop_request) {
    // Lost before delivery: the server never saw it; the op did NOT execute.
    Fire("net-drop-request");
    return UnavailableError("request lost in transit");
  }
  if (budget && Draw(n, 4) < options_.corrupt_frame) {
    // A byte flips in flight. The server-side decoder must reject the frame and
    // condemn the stream; if it ever accepts the mutated bytes as a frame, that is
    // a codec bug and the canary InternalError fails the run.
    Fire("net-corrupt-frame");
    std::size_t pos = static_cast<std::size_t>(Draw(n, 5) * static_cast<double>(wire.size()));
    if (pos >= wire.size()) {
      pos = wire.size() - 1;
    }
    std::uint8_t flip =
        static_cast<std::uint8_t>(1u << (static_cast<unsigned>(Draw(n, 6) * 8) & 7));
    wire[pos] ^= flip;
    net::FrameDecoder decoder;
    decoder.Feed(AsSpan(wire));
    Result<std::optional<net::Frame>> decoded = decoder.Next();
    if (decoded.ok() && decoded->has_value()) {
      // The flip landed somewhere the CRC should have caught. Never acceptable.
      return InternalError("canary: corrupted wire frame was accepted by the decoder");
    }
    return UnavailableError("connection reset: peer rejected corrupt frame");
  }
  if (budget && Draw(n, 7) < options_.truncate_frame) {
    // The connection dies mid-frame. A partial frame must never decode.
    Fire("net-truncate-frame");
    std::size_t keep = 1 + static_cast<std::size_t>(Draw(n, 8) *
                                                    static_cast<double>(wire.size() - 1));
    net::FrameDecoder decoder;
    decoder.Feed(ByteSpan(wire.data(), keep));
    Result<std::optional<net::Frame>> decoded = decoder.Next();
    if (decoded.ok() && decoded->has_value()) {
      return InternalError("canary: truncated wire frame decoded as complete");
    }
    return UnavailableError("connection closed mid-frame");
  }

  // Delivery: decode server-side (must round-trip cleanly), dispatch, and carry the
  // response back through chunking + reassembly.
  net::FrameDecoder server_decoder;
  server_decoder.Feed(AsSpan(wire));
  Result<std::optional<net::Frame>> delivered = server_decoder.Next();
  if (!delivered.ok()) {
    return InternalError("canary: clean wire frame failed to decode: " +
                         delivered.status().ToString());
  }
  if (!delivered->has_value()) {
    return InternalError("canary: clean wire frame decoded as incomplete");
  }
  if (server_ == nullptr) {
    return UnavailableError("server not running");
  }
  Bytes encoded_response = server_->Dispatch(AsSpan((**delivered).payload));

  if (budget && Draw(n, 9) < options_.slow_peer) {
    Fire("net-slow-peer");
    clock_->Charge(options_.slow_peer_micros);
  }
  if (budget && Draw(n, 3) < options_.drop_response) {
    // The half-open failure: executed and committed server-side, reply lost. The
    // caller cannot distinguish this from drop_request — that asymmetry is the point.
    Fire("net-drop-response");
    return UnavailableError("connection lost after send: response dropped");
  }

  Bytes response_wire;
  for (const net::Frame& frame :
       net::ChunkResponse(n, AsSpan(encoded_response), options_.chunk_payload)) {
    net::AppendFrame(frame, response_wire);
  }
  net::FrameDecoder client_decoder;
  client_decoder.Feed(AsSpan(response_wire));
  Bytes assembled;
  for (;;) {
    Result<std::optional<net::Frame>> next = client_decoder.Next();
    if (!next.ok()) {
      return InternalError("canary: clean response frame failed to decode: " +
                           next.status().ToString());
    }
    if (!next->has_value()) {
      return InternalError("canary: response stream ended before the final chunk");
    }
    net::Frame frame = std::move(**next);
    assembled.insert(assembled.end(), frame.payload.begin(), frame.payload.end());
    if (frame.type == net::FrameType::kResponse || frame.final_chunk()) {
      break;
    }
  }
  return assembled;
}

}  // namespace sdb::sim
