#include "src/sim/workload.h"

#include <cstdio>

#include "src/common/rng.h"

namespace sdb::sim {

namespace {

// snprintf instead of std::to_string concatenation: GCC 12's -Wrestrict false
// positive (PR 105329) fires on the inlined string ops otherwise.
std::string KeyName(std::uint64_t n) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "k%llu", static_cast<unsigned long long>(n));
  return buf;
}

std::string ValueTag(int client, int step) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "c%d-s%d-", client, step);
  return buf;
}

}  // namespace

std::vector<WorkloadStep> GenerateWorkload(std::uint64_t seed,
                                           const WorkloadOptions& options) {
  // Salted so the workload stream and a RandomFaultSchedule built from the same seed
  // draw from unrelated sequences.
  Rng rng(seed ^ 0x574F524B4C4F4144ull);  // "WORKLOAD"

  const double weights[] = {options.put_weight,        options.delete_weight,
                            options.lookup_weight,     options.enumerate_weight,
                            options.checkpoint_weight, options.backup_weight,
                            options.restart_weight};
  double total = 0;
  for (double w : weights) {
    total += w;
  }

  std::vector<WorkloadStep> steps;
  steps.reserve(static_cast<std::size_t>(options.steps));
  for (int i = 0; i < options.steps; ++i) {
    WorkloadStep step;
    step.client = static_cast<int>(rng.NextBelow(static_cast<std::uint64_t>(
        options.clients > 0 ? options.clients : 1)));

    double dice = rng.NextDouble() * total;
    int kind = 0;
    for (; kind < 6; ++kind) {
      if (dice < weights[kind]) {
        break;
      }
      dice -= weights[kind];
    }
    step.kind = static_cast<StepKind>(kind);

    switch (step.kind) {
      case StepKind::kPut:
        step.key = KeyName(rng.NextBelow(static_cast<std::uint64_t>(options.keyspace)));
        // Client/step-tagged values: any value the oracle ever sees is attributable.
        step.value = ValueTag(step.client, i);
        step.value += rng.NextString(1 + rng.NextBelow(options.max_value_bytes));
        break;
      case StepKind::kDelete:
      case StepKind::kLookup:
        step.key = KeyName(rng.NextBelow(static_cast<std::uint64_t>(options.keyspace)));
        break;
      case StepKind::kEnumerate:
      case StepKind::kCheckpoint:
      case StepKind::kBackup:
      case StepKind::kRestart:
        break;
    }
    steps.push_back(std::move(step));
  }
  return steps;
}

WorkloadOptions CheckpointHeavyWorkload() {
  WorkloadOptions options;
  options.put_weight = 0.40;
  options.delete_weight = 0.10;
  options.lookup_weight = 0.06;
  options.enumerate_weight = 0.04;
  options.checkpoint_weight = 0.32;
  options.backup_weight = 0.04;
  options.restart_weight = 0.04;
  return options;
}

WorkloadOptions RestartHeavyWorkload() {
  WorkloadOptions options;
  options.put_weight = 0.48;
  options.delete_weight = 0.16;
  options.lookup_weight = 0.08;
  options.enumerate_weight = 0.04;
  options.checkpoint_weight = 0.03;  // rare: logs stay long, replays stay deep
  options.backup_weight = 0.01;
  options.restart_weight = 0.20;
  return options;
}

WorkloadOptions CompactionHeavyWorkload() {
  WorkloadOptions options;
  options.keyspace = 8;  // small: each delta re-dirties keys the chain already holds
  options.put_weight = 0.42;
  options.delete_weight = 0.08;
  options.lookup_weight = 0.05;
  options.enumerate_weight = 0.05;
  options.checkpoint_weight = 0.25;  // chains grow fast, compaction fires often
  options.backup_weight = 0.05;      // backups must copy live chains, not just bases
  options.restart_weight = 0.10;     // every reboot recomposes base ∘ deltas + log
  return options;
}

std::string StepKindName(StepKind kind) {
  switch (kind) {
    case StepKind::kPut:
      return "put";
    case StepKind::kDelete:
      return "delete";
    case StepKind::kLookup:
      return "lookup";
    case StepKind::kEnumerate:
      return "enumerate";
    case StepKind::kCheckpoint:
      return "checkpoint";
    case StepKind::kBackup:
      return "backup";
    case StepKind::kRestart:
      return "restart";
  }
  return "?";
}

std::string StepToString(const WorkloadStep& step) {
  std::string out = "client" + std::to_string(step.client) + " " + StepKindName(step.kind);
  if (!step.key.empty()) {
    out += " " + step.key;
  }
  if (!step.value.empty()) {
    out += " = " + step.value;
  }
  return out;
}

}  // namespace sdb::sim
