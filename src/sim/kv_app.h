// KvApp: the Application the simulation harness drives — a string map whose update
// records carry an op byte (put / delete), so workloads can exercise both growth and
// erasure through the engine's log.
#ifndef SMALLDB_SRC_SIM_KV_APP_H_
#define SMALLDB_SRC_SIM_KV_APP_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>

#include "src/core/database.h"
#include "src/pickle/pickle.h"
#include "src/pickle/traits.h"

namespace sdb::sim {

struct KvRecord {
  std::uint8_t op = 0;  // 0 = put, 1 = delete
  std::string key;
  std::string value;
  SDB_PICKLE_FIELDS(KvRecord, op, key, value)
};

// One delta level: the keys dirtied since the previous capture, as last-effect
// upserts + tombstones. Composition over a base map is apply-in-order.
struct KvDelta {
  std::map<std::string, std::string> puts;
  std::set<std::string> deletes;
  SDB_PICKLE_FIELDS(KvDelta, puts, deletes)
};

class KvApp final : public Application {
 public:
  static constexpr std::uint8_t kPut = 0;
  static constexpr std::uint8_t kDelete = 1;

  Status ResetState() override {
    state.clear();
    std::lock_guard<std::mutex> lock(dirty_mu_);
    dirty_.clear();
    staged_.reset();
    return OkStatus();
  }

  Result<Bytes> SerializeState() override {
    PickleWriter writer;
    writer.Write(state);
    return std::move(writer).FinishEnvelope("sim.KvApp.state");
  }

  Status DeserializeState(ByteSpan data) override {
    SDB_ASSIGN_OR_RETURN(PickleReader reader,
                         PickleReader::FromEnvelope(data, "sim.KvApp.state"));
    SDB_RETURN_IF_ERROR(reader.Read(state));
    // The loaded state is chain-covered: nothing is dirty relative to it.
    std::lock_guard<std::mutex> lock(dirty_mu_);
    dirty_.clear();
    staged_.reset();
    return OkStatus();
  }

  Status ApplyUpdate(ByteSpan record) override {
    SDB_ASSIGN_OR_RETURN(KvRecord update, PickleRead<KvRecord>(record));
    if (update.op == kDelete) {
      state.erase(update.key);
    } else {
      state.insert_or_assign(update.key, update.value);
    }
    MarkDirty(update.key);
    return OkStatus();
  }

  // Parallel replay: each batch folds its records to a per-key last effect (value
  // or tombstone); the merge replays those effects onto the live map. Correct
  // because the replayer keeps same-key records in one batch, in log order, so the
  // last effect in a batch IS the key's final state.
  class Batch final : public ReplayBatch {
   public:
    Status Apply(ByteSpan record) override {
      SDB_ASSIGN_OR_RETURN(KvRecord update, PickleRead<KvRecord>(record));
      if (update.op == kDelete) {
        effects.insert_or_assign(std::move(update.key), std::nullopt);
      } else {
        effects.insert_or_assign(std::move(update.key), std::move(update.value));
      }
      return OkStatus();
    }
    std::map<std::string, std::optional<std::string>> effects;
  };

  bool ReplayKeyOf(ByteSpan record, std::string* key) override {
    Result<KvRecord> update = PickleRead<KvRecord>(record);
    if (!update.ok()) {
      return false;  // undecodable: force the in-order path, which surfaces the error
    }
    *key = std::move(update->key);
    return true;
  }

  std::unique_ptr<ReplayBatch> StartReplayBatch() override {
    return std::make_unique<Batch>();
  }

  Status MergeReplayBatch(ReplayBatch& batch) override {
    for (auto& [key, value] : static_cast<Batch&>(batch).effects) {
      if (value.has_value()) {
        state.insert_or_assign(key, std::move(*value));
      } else {
        state.erase(key);
      }
      MarkDirty(key);
    }
    return OkStatus();
  }

  // Delta checkpoints: the dirty window is the keys ApplyUpdate / replay touched
  // since the last successful capture. Capture copies their live effect (value or
  // tombstone) under the update lock, so the closure never reads live state.
  Result<std::function<Result<DeltaSnapshot>()>> CaptureDeltaSnapshot() override {
    auto staged = std::make_shared<KvDelta>();
    {
      std::lock_guard<std::mutex> lock(dirty_mu_);
      for (const std::string& key : dirty_) {
        auto it = state.find(key);
        if (it != state.end()) {
          staged->puts.emplace(key, it->second);
        } else {
          staged->deletes.insert(key);
        }
      }
      dirty_.clear();
      staged_ = staged;
    }
    return std::function<Result<DeltaSnapshot>()>([staged]() -> Result<DeltaSnapshot> {
      PickleWriter writer;
      writer.Write(*staged);
      DeltaSnapshot snapshot;
      snapshot.bytes = std::move(writer).FinishEnvelope("sim.KvApp.delta");
      snapshot.objects = staged->puts.size() + staged->deletes.size();
      return snapshot;
    });
  }

  void CommitDeltaCapture() override {
    std::lock_guard<std::mutex> lock(dirty_mu_);
    staged_.reset();
  }

  void AbandonDeltaCapture() override {
    // Fold the staged window back so the next capture re-covers it (keys touched
    // since the failed capture are already dirty again; union is exactly right).
    std::lock_guard<std::mutex> lock(dirty_mu_);
    if (staged_ == nullptr) {
      return;
    }
    for (const auto& [key, value] : staged_->puts) {
      dirty_.insert(key);
    }
    dirty_.insert(staged_->deletes.begin(), staged_->deletes.end());
    staged_.reset();
  }

  Result<Bytes> ComposeCheckpoint(ByteSpan base,
                                  const std::vector<ByteSpan>& deltas) override {
    SDB_ASSIGN_OR_RETURN(PickleReader reader,
                         PickleReader::FromEnvelope(base, "sim.KvApp.state"));
    std::map<std::string, std::string> composed;
    SDB_RETURN_IF_ERROR(reader.Read(composed));
    for (ByteSpan delta_bytes : deltas) {
      SDB_ASSIGN_OR_RETURN(PickleReader delta_reader,
                           PickleReader::FromEnvelope(delta_bytes, "sim.KvApp.delta"));
      KvDelta delta;
      SDB_RETURN_IF_ERROR(delta_reader.Read(delta));
      for (auto& [key, value] : delta.puts) {
        composed.insert_or_assign(key, std::move(value));
      }
      for (const std::string& key : delta.deletes) {
        composed.erase(key);
      }
    }
    PickleWriter writer;
    writer.Write(composed);
    return std::move(writer).FinishEnvelope("sim.KvApp.state");
  }

  std::function<Result<Bytes>()> PreparePut(std::string key, std::string value) {
    return [key = std::move(key), value = std::move(value)]() -> Result<Bytes> {
      return PickleWrite(KvRecord{kPut, key, value});
    };
  }

  std::function<Result<Bytes>()> PrepareDelete(std::string key) {
    return [key = std::move(key)]() -> Result<Bytes> {
      return PickleWrite(KvRecord{kDelete, key, {}});
    };
  }

  std::map<std::string, std::string> state;

 private:
  void MarkDirty(const std::string& key) {
    std::lock_guard<std::mutex> lock(dirty_mu_);
    dirty_.insert(key);
  }

  // Guards the dirty window and the staged delta: ApplyUpdate runs under the
  // engine's exclusive lock, but Commit/AbandonDeltaCapture run on the background
  // persist thread with no engine lock held.
  std::mutex dirty_mu_;
  std::set<std::string> dirty_;
  std::shared_ptr<KvDelta> staged_;
};

}  // namespace sdb::sim

#endif  // SMALLDB_SRC_SIM_KV_APP_H_
