// KvApp: the Application the simulation harness drives — a string map whose update
// records carry an op byte (put / delete), so workloads can exercise both growth and
// erasure through the engine's log.
#ifndef SMALLDB_SRC_SIM_KV_APP_H_
#define SMALLDB_SRC_SIM_KV_APP_H_

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "src/core/database.h"
#include "src/pickle/pickle.h"
#include "src/pickle/traits.h"

namespace sdb::sim {

struct KvRecord {
  std::uint8_t op = 0;  // 0 = put, 1 = delete
  std::string key;
  std::string value;
  SDB_PICKLE_FIELDS(KvRecord, op, key, value)
};

class KvApp final : public Application {
 public:
  static constexpr std::uint8_t kPut = 0;
  static constexpr std::uint8_t kDelete = 1;

  Status ResetState() override {
    state.clear();
    return OkStatus();
  }

  Result<Bytes> SerializeState() override {
    PickleWriter writer;
    writer.Write(state);
    return std::move(writer).FinishEnvelope("sim.KvApp.state");
  }

  Status DeserializeState(ByteSpan data) override {
    SDB_ASSIGN_OR_RETURN(PickleReader reader,
                         PickleReader::FromEnvelope(data, "sim.KvApp.state"));
    return reader.Read(state);
  }

  Status ApplyUpdate(ByteSpan record) override {
    SDB_ASSIGN_OR_RETURN(KvRecord update, PickleRead<KvRecord>(record));
    if (update.op == kDelete) {
      state.erase(update.key);
    } else {
      state.insert_or_assign(update.key, update.value);
    }
    return OkStatus();
  }

  // Parallel replay: each batch folds its records to a per-key last effect (value
  // or tombstone); the merge replays those effects onto the live map. Correct
  // because the replayer keeps same-key records in one batch, in log order, so the
  // last effect in a batch IS the key's final state.
  class Batch final : public ReplayBatch {
   public:
    Status Apply(ByteSpan record) override {
      SDB_ASSIGN_OR_RETURN(KvRecord update, PickleRead<KvRecord>(record));
      if (update.op == kDelete) {
        effects.insert_or_assign(std::move(update.key), std::nullopt);
      } else {
        effects.insert_or_assign(std::move(update.key), std::move(update.value));
      }
      return OkStatus();
    }
    std::map<std::string, std::optional<std::string>> effects;
  };

  bool ReplayKeyOf(ByteSpan record, std::string* key) override {
    Result<KvRecord> update = PickleRead<KvRecord>(record);
    if (!update.ok()) {
      return false;  // undecodable: force the in-order path, which surfaces the error
    }
    *key = std::move(update->key);
    return true;
  }

  std::unique_ptr<ReplayBatch> StartReplayBatch() override {
    return std::make_unique<Batch>();
  }

  Status MergeReplayBatch(ReplayBatch& batch) override {
    for (auto& [key, value] : static_cast<Batch&>(batch).effects) {
      if (value.has_value()) {
        state.insert_or_assign(key, std::move(*value));
      } else {
        state.erase(key);
      }
    }
    return OkStatus();
  }

  std::function<Result<Bytes>()> PreparePut(std::string key, std::string value) {
    return [key = std::move(key), value = std::move(value)]() -> Result<Bytes> {
      return PickleWrite(KvRecord{kPut, key, value});
    };
  }

  std::function<Result<Bytes>()> PrepareDelete(std::string key) {
    return [key = std::move(key)]() -> Result<Bytes> {
      return PickleWrite(KvRecord{kDelete, key, {}});
    };
  }

  std::map<std::string, std::string> state;
};

}  // namespace sdb::sim

#endif  // SMALLDB_SRC_SIM_KV_APP_H_
