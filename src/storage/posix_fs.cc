#include "src/storage/posix_fs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "src/common/clock.h"
#include "src/storage/vfs_metrics.h"

namespace sdb {
namespace {

VfsOpMetrics& Metrics() {
  static VfsOpMetrics m = VfsOpMetrics::Register(obs::GlobalRegistry(), "vfs.posix");
  return m;
}

WallClock& SyncClock() {
  static WallClock clock;
  return clock;
}

Status ErrnoStatus(std::string_view op, std::string_view path, int err) {
  std::string message = std::string(op) + " " + std::string(path) + ": " + std::strerror(err);
  switch (err) {
    case ENOENT:
      return NotFoundError(message);
    case EEXIST:
      return AlreadyExistsError(message);
    case ENOSPC:
      return OutOfSpaceError(message);
    case EIO:
      return UnreadableError(message);
    default:
      return IoError(message);
  }
}

class PosixFile final : public File {
 public:
  PosixFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  ~PosixFile() override {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }

  Result<Bytes> ReadAt(std::uint64_t offset, std::size_t length) override {
    Bytes out(length);
    std::size_t total = 0;
    while (total < length) {
      ssize_t n = ::pread(fd_, out.data() + total, length - total,
                          static_cast<off_t>(offset + total));
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return ErrnoStatus("pread", path_, errno);
      }
      if (n == 0) {
        break;  // end of file
      }
      total += static_cast<std::size_t>(n);
    }
    out.resize(total);
    Metrics().reads->Increment();
    Metrics().read_bytes->Add(total);
    return out;
  }

  Status Append(ByteSpan data) override {
    SDB_ASSIGN_OR_RETURN(std::uint64_t size, Size());
    return WriteAt(size, data);
  }

  Status WriteAt(std::uint64_t offset, ByteSpan data) override {
    std::size_t total = 0;
    while (total < data.size()) {
      ssize_t n = ::pwrite(fd_, data.data() + total, data.size() - total,
                           static_cast<off_t>(offset + total));
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return ErrnoStatus("pwrite", path_, errno);
      }
      total += static_cast<std::size_t>(n);
    }
    Metrics().writes->Increment();
    Metrics().write_bytes->Add(data.size());
    return OkStatus();
  }

  Status Truncate(std::uint64_t new_size) override {
    if (::ftruncate(fd_, static_cast<off_t>(new_size)) != 0) {
      return ErrnoStatus("ftruncate", path_, errno);
    }
    return OkStatus();
  }

  Status Sync() override {
    Metrics().syncs->Increment();
    if (!obs::Enabled()) {
      if (::fsync(fd_) != 0) {
        return ErrnoStatus("fsync", path_, errno);
      }
      return OkStatus();
    }
    Stopwatch watch(SyncClock());
    int rc = ::fsync(fd_);
    Metrics().sync_us->Record(watch.ElapsedMicros());
    if (rc != 0) {
      return ErrnoStatus("fsync", path_, errno);
    }
    return OkStatus();
  }

  Result<std::uint64_t> Size() override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      return ErrnoStatus("fstat", path_, errno);
    }
    return static_cast<std::uint64_t>(st.st_size);
  }

  Status Close() override {
    if (fd_ >= 0) {
      int fd = fd_;
      fd_ = -1;
      if (::close(fd) != 0) {
        return ErrnoStatus("close", path_, errno);
      }
    }
    return OkStatus();
  }

 private:
  int fd_;
  std::string path_;
};

}  // namespace

PosixFs::PosixFs(std::string root) : root_(std::move(root)) {}

std::string PosixFs::Resolve(std::string_view path) const {
  if (root_.empty()) {
    return std::string(path);
  }
  return JoinPath(root_, path);
}

Result<std::unique_ptr<File>> PosixFs::Open(std::string_view path, OpenMode mode) {
  std::string full = Resolve(path);
  int flags = 0;
  switch (mode) {
    case OpenMode::kRead:
      flags = O_RDONLY;
      break;
    case OpenMode::kReadWrite:
      flags = O_RDWR;
      break;
    case OpenMode::kCreate:
      flags = O_RDWR | O_CREAT;
      break;
    case OpenMode::kCreateExclusive:
      flags = O_RDWR | O_CREAT | O_EXCL;
      break;
    case OpenMode::kTruncate:
      flags = O_RDWR | O_CREAT | O_TRUNC;
      break;
  }
  int fd = ::open(full.c_str(), flags, 0644);
  if (fd < 0) {
    return ErrnoStatus("open", full, errno);
  }
  Metrics().opens->Increment();
  return {std::make_unique<PosixFile>(fd, full)};
}

Status PosixFs::Delete(std::string_view path) {
  std::string full = Resolve(path);
  if (::unlink(full.c_str()) != 0) {
    return ErrnoStatus("unlink", full, errno);
  }
  Metrics().metadata_ops->Increment();
  return OkStatus();
}

Status PosixFs::Rename(std::string_view from, std::string_view to) {
  std::string full_from = Resolve(from);
  std::string full_to = Resolve(to);
  if (::rename(full_from.c_str(), full_to.c_str()) != 0) {
    return ErrnoStatus("rename", full_from, errno);
  }
  Metrics().metadata_ops->Increment();
  return OkStatus();
}

Result<bool> PosixFs::Exists(std::string_view path) {
  struct stat st;
  if (::stat(Resolve(path).c_str(), &st) != 0) {
    if (errno == ENOENT) {
      return false;
    }
    return ErrnoStatus("stat", path, errno);
  }
  return true;
}

Result<std::vector<std::string>> PosixFs::List(std::string_view dir) {
  std::error_code ec;
  std::vector<std::string> out;
  std::filesystem::directory_iterator it(Resolve(dir), ec);
  if (ec) {
    return NotFoundError("list " + std::string(dir) + ": " + ec.message());
  }
  for (const auto& entry : it) {
    out.push_back(entry.path().filename().string());
  }
  return out;
}

Status PosixFs::CreateDir(std::string_view path) {
  std::error_code ec;
  std::filesystem::create_directories(Resolve(path), ec);
  if (ec) {
    return IoError("mkdir " + std::string(path) + ": " + ec.message());
  }
  Metrics().metadata_ops->Increment();
  return OkStatus();
}

Status PosixFs::SyncDir(std::string_view dir) {
  std::string full = Resolve(dir);
  if (full.empty()) {
    full = ".";
  }
  int fd = ::open(full.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return ErrnoStatus("open dir", full, errno);
  }
  Status status = OkStatus();
  if (::fsync(fd) != 0) {
    status = ErrnoStatus("fsync dir", full, errno);
  }
  ::close(fd);
  Metrics().metadata_ops->Increment();
  return status;
}

}  // namespace sdb
