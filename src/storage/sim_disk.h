// SimDisk: a page-addressed simulated disk.
//
// Provides exactly the failure and timing semantics the paper assumes of its hardware:
//   - "a partially written page will report an error when it is read" (Section 4):
//     every page carries a checksum; a torn write leaves the page unreadable.
//   - "we assume that our disks ... give either correct data or an error": reads either
//     return the exact bytes written or ErrorCode::kUnreadable — never silent garbage.
//   - a calibrated timing model (seek + transfer charged to a Clock) so benchmarks can
//     reproduce the paper's MicroVAX-era disk costs (~15 ms seek, ~200 KB/s).
//
// Hard-failure experiments mark individual pages unreadable (MarkPageUnreadable), the
// paper's "some data in the disk structures becomes unreadable".
#ifndef SMALLDB_SRC_STORAGE_SIM_DISK_H_
#define SMALLDB_SRC_STORAGE_SIM_DISK_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/storage/fault.h"

namespace sdb {

using PageId = std::uint64_t;

struct SimDiskOptions {
  std::size_t page_size = 512;
  std::size_t capacity_pages = 1 << 20;  // 512 MB at the default page size

  // Timing model, charged to `clock` if non-null. Defaults reproduce the paper's disk:
  // a small synchronous write costs ~15 ms + transfer; 1 MB streams at ~200 KB/s.
  Clock* clock = nullptr;
  Micros seek_micros = 15'000;
  Micros transfer_micros_per_byte = 5;  // 200 KB/s
  // Consecutive-page transfers after the first in one call avoid the seek.
  bool sequential_discount = true;
};

struct SimDiskStats {
  std::uint64_t page_reads = 0;
  std::uint64_t page_writes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t seeks = 0;
  std::uint64_t torn_writes = 0;
  std::uint64_t transient_errors = 0;  // kTransientError faults delivered (any op kind)
};

class SimDisk {
 public:
  explicit SimDisk(SimDiskOptions options = {});

  SimDisk(const SimDisk&) = delete;
  SimDisk& operator=(const SimDisk&) = delete;

  std::size_t page_size() const { return options_.page_size; }
  std::size_t capacity_pages() const { return options_.capacity_pages; }

  // Writes one page durably. `data` must be at most page_size bytes (short writes are
  // zero-padded). Consults the fault injector; on a crash action the disk transitions
  // to the crashed state and the call returns kIoError; on kTransientError the call
  // returns kIoError with the medium untouched and the disk still healthy.
  Status WritePage(PageId page, ByteSpan data);

  // Reads one page into `out` (resized to page_size). Unwritten pages read as zeroes.
  // Torn or hard-failed pages return kUnreadable. The fault injector is consulted with
  // a kPageRead op (its own sequence): kTransientError fails just this read (a retry
  // re-consults the injector at the next read ordinal); any crash action cuts power.
  Status ReadPage(PageId page, Bytes& out);

  // Allocation of page numbers: the file system above asks the disk for fresh pages.
  Result<PageId> AllocatePage();
  void FreePage(PageId page);

  // --- failure control ---

  // Installs/clears the fault injector consulted on every durable write.
  void SetFaultInjector(FaultInjector injector);

  // True once a crash action has fired; all I/O fails with kIoError until ClearCrash.
  bool crashed() const;

  // Simulates power restoration: I/O works again. Torn pages remain unreadable until
  // they are rewritten (as on real hardware).
  void ClearCrash();

  // Forces an immediate crash (power cut between durable operations).
  void Crash();

  // Hard failure: the page will return kUnreadable on reads until rewritten.
  void MarkPageUnreadable(PageId page);

  // Marks the end of a streaming burst: the next access pays a seek even if it happens
  // to touch the next sequential page. The file system calls this at each fsync
  // boundary, so every synchronous commit pays at least one positioning delay (the
  // behaviour behind the paper's ~20 ms log write) while one large streamed sync (a
  // checkpoint) still pays only one.
  void EndBurst();

  // Counts a file-system metadata sync (directory fsync) as a durable operation and
  // consults the injector. On a crash action the disk enters the crashed state. The
  // file system above decides, from the returned action, whether its pending metadata
  // became durable (kCrashAfter) or was lost (kCrashBefore / kCrashTorn).
  FaultAction BeginMetadataSync(const std::string& target);

  // Ordinal that the *next* durable operation will carry (1-based). Tests use the count
  // after a scripted run to size their crash-point enumeration.
  std::uint64_t next_durable_op_sequence() const;

  // Ordinal that the next page read will carry (1-based, independent of the durable
  // sequence above).
  std::uint64_t next_read_op_sequence() const;

  SimDiskStats stats() const;
  void ResetStats();

 private:
  struct Page {
    Bytes data;
    bool written = false;
    bool unreadable = false;
  };

  // Charges transfer time; a seek is charged unless `page` immediately follows the last
  // accessed page (streaming I/O pays one seek, then pure transfer — the behaviour the
  // checkpoint calibration depends on). Rewriting the same page (log-tail fsync) pays a
  // rotational delay, modelled as a seek.
  void ChargeAccess(PageId page, std::size_t bytes);

  static constexpr PageId kNoPage = ~PageId{0};

  SimDiskOptions options_;
  mutable std::mutex mutex_;
  std::vector<Page> pages_;
  std::vector<PageId> free_list_;
  PageId next_unallocated_ = 0;
  FaultInjector injector_;
  std::uint64_t durable_op_counter_ = 0;
  std::uint64_t read_op_counter_ = 0;
  bool crashed_ = false;
  PageId last_page_ = kNoPage;
  SimDiskStats stats_;
};

}  // namespace sdb

#endif  // SMALLDB_SRC_STORAGE_SIM_DISK_H_
