#include "src/storage/vfs.h"

namespace sdb {

Result<Bytes> ReadWholeFile(Vfs& vfs, std::string_view path) {
  SDB_ASSIGN_OR_RETURN(std::unique_ptr<File> file, vfs.Open(path, OpenMode::kRead));
  SDB_ASSIGN_OR_RETURN(std::uint64_t size, file->Size());
  SDB_ASSIGN_OR_RETURN(Bytes data, file->ReadAt(0, static_cast<std::size_t>(size)));
  SDB_RETURN_IF_ERROR(file->Close());
  return data;
}

Status WriteWholeFile(Vfs& vfs, std::string_view path, ByteSpan data) {
  SDB_ASSIGN_OR_RETURN(std::unique_ptr<File> file, vfs.Open(path, OpenMode::kTruncate));
  SDB_RETURN_IF_ERROR(file->Append(data));
  SDB_RETURN_IF_ERROR(file->Sync());
  return file->Close();
}

Status AtomicWriteFile(Vfs& vfs, std::string_view dir, std::string_view path, ByteSpan data) {
  std::string tmp = std::string(path) + ".tmp";
  SDB_RETURN_IF_ERROR(WriteWholeFile(vfs, tmp, data));
  SDB_RETURN_IF_ERROR(vfs.Rename(tmp, path));
  return vfs.SyncDir(dir);
}

std::string JoinPath(std::string_view dir, std::string_view name) {
  if (dir.empty()) {
    return std::string(name);
  }
  std::string out(dir);
  if (out.back() != '/') {
    out.push_back('/');
  }
  out += name;
  return out;
}

}  // namespace sdb
