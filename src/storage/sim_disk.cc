#include "src/storage/sim_disk.h"

#include <string>

namespace sdb {

SimDisk::SimDisk(SimDiskOptions options) : options_(options) {}

void SimDisk::ChargeAccess(PageId page, std::size_t bytes) {
  bool sequential =
      options_.sequential_discount && last_page_ != kNoPage && page == last_page_ + 1;
  last_page_ = page;
  if (!sequential) {
    ++stats_.seeks;
  }
  if (options_.clock == nullptr) {
    return;
  }
  if (!sequential) {
    options_.clock->Charge(options_.seek_micros);
  }
  options_.clock->Charge(options_.transfer_micros_per_byte * static_cast<Micros>(bytes));
}

Status SimDisk::WritePage(PageId page, ByteSpan data) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (crashed_) {
    return IoError("disk is crashed");
  }
  if (page >= options_.capacity_pages) {
    return InvalidArgumentError("page id beyond disk capacity");
  }
  if (data.size() > options_.page_size) {
    return InvalidArgumentError("write larger than page size");
  }

  DurableOp op;
  op.kind = DurableOp::Kind::kPageWrite;
  op.target = "page:" + std::to_string(page);
  op.sequence = ++durable_op_counter_;
  FaultAction action = injector_ ? injector_(op) : FaultAction::kNone;

  if (page >= pages_.size()) {
    pages_.resize(page + 1);
  }
  Page& p = pages_[page];

  switch (action) {
    case FaultAction::kTransientError:
      // The controller hiccupped: nothing reached the medium, nothing crashed, and an
      // identical retry will be consulted afresh (at a new durable-op ordinal).
      ++stats_.transient_errors;
      return IoError("simulated transient write error");
    case FaultAction::kCrashBefore:
      crashed_ = true;
      return IoError("simulated crash before page write");
    case FaultAction::kCrashTorn: {
      // Half the new bytes land; the page checksum can no longer match, so the page is
      // unreadable — exactly the disk property the paper relies on.
      p.data.assign(options_.page_size, 0);
      std::size_t half = data.size() / 2;
      std::copy(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(half), p.data.begin());
      p.written = true;
      p.unreadable = true;
      ++stats_.torn_writes;
      crashed_ = true;
      return IoError("simulated crash during page write (torn)");
    }
    case FaultAction::kCrashAfter:
    case FaultAction::kNone:
      break;
  }

  p.data.assign(data.begin(), data.end());
  p.data.resize(options_.page_size, 0);
  p.written = true;
  p.unreadable = false;
  ++stats_.page_writes;
  stats_.bytes_written += options_.page_size;
  ChargeAccess(page, options_.page_size);

  if (action == FaultAction::kCrashAfter) {
    crashed_ = true;
    return IoError("simulated crash after page write");
  }
  return OkStatus();
}

Status SimDisk::ReadPage(PageId page, Bytes& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (crashed_) {
    return IoError("disk is crashed");
  }
  if (page >= options_.capacity_pages) {
    return InvalidArgumentError("page id beyond disk capacity");
  }
  if (injector_) {
    DurableOp op;
    op.kind = DurableOp::Kind::kPageRead;
    op.target = "page:" + std::to_string(page);
    op.sequence = ++read_op_counter_;
    switch (injector_(op)) {
      case FaultAction::kNone:
        break;
      case FaultAction::kTransientError:
        ++stats_.transient_errors;
        return IoError("simulated transient read error");
      case FaultAction::kCrashBefore:
      case FaultAction::kCrashTorn:
      case FaultAction::kCrashAfter:
        // Any crash flavour on a read is simply power failing mid-read; the medium is
        // untouched either way.
        crashed_ = true;
        return IoError("simulated crash during page read");
    }
  }
  ++stats_.page_reads;
  stats_.bytes_read += options_.page_size;
  ChargeAccess(page, options_.page_size);
  if (page >= pages_.size() || !pages_[page].written) {
    out.assign(options_.page_size, 0);
    return OkStatus();
  }
  const Page& p = pages_[page];
  if (p.unreadable) {
    return UnreadableError("page " + std::to_string(page) + " is unreadable");
  }
  out = p.data;
  return OkStatus();
}

Result<PageId> SimDisk::AllocatePage() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!free_list_.empty()) {
    PageId id = free_list_.back();
    free_list_.pop_back();
    return id;
  }
  if (next_unallocated_ >= options_.capacity_pages) {
    return OutOfSpaceError("simulated disk full");
  }
  return next_unallocated_++;
}

void SimDisk::FreePage(PageId page) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (page < pages_.size()) {
    pages_[page] = Page{};
  }
  free_list_.push_back(page);
}

void SimDisk::SetFaultInjector(FaultInjector injector) {
  std::lock_guard<std::mutex> lock(mutex_);
  injector_ = std::move(injector);
}

bool SimDisk::crashed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return crashed_;
}

void SimDisk::ClearCrash() {
  std::lock_guard<std::mutex> lock(mutex_);
  crashed_ = false;
}

void SimDisk::Crash() {
  std::lock_guard<std::mutex> lock(mutex_);
  crashed_ = true;
}

void SimDisk::MarkPageUnreadable(PageId page) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (page >= pages_.size()) {
    pages_.resize(page + 1);
  }
  pages_[page].written = true;
  pages_[page].unreadable = true;
}

void SimDisk::EndBurst() {
  std::lock_guard<std::mutex> lock(mutex_);
  last_page_ = kNoPage;
}

FaultAction SimDisk::BeginMetadataSync(const std::string& target) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (crashed_) {
    return FaultAction::kCrashBefore;
  }
  DurableOp op;
  op.kind = DurableOp::Kind::kMetadataSync;
  op.target = target;
  op.sequence = ++durable_op_counter_;
  FaultAction action = injector_ ? injector_(op) : FaultAction::kNone;
  if (action == FaultAction::kTransientError) {
    ++stats_.transient_errors;
  } else if (action != FaultAction::kNone) {
    crashed_ = true;
  }
  if (options_.clock != nullptr && action == FaultAction::kNone) {
    options_.clock->Charge(options_.seek_micros);
  }
  return action;
}

std::uint64_t SimDisk::next_read_op_sequence() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return read_op_counter_ + 1;
}

std::uint64_t SimDisk::next_durable_op_sequence() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return durable_op_counter_ + 1;
}

SimDiskStats SimDisk::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void SimDisk::ResetStats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = SimDiskStats{};
}

}  // namespace sdb
