#include "src/storage/sim_fs.h"

#include <algorithm>
#include <utility>

#include "src/common/clock.h"
#include "src/storage/vfs_metrics.h"

namespace sdb {

namespace {

std::size_t PagesFor(std::uint64_t size, std::size_t page_size) {
  return static_cast<std::size_t>((size + page_size - 1) / page_size);
}

VfsOpMetrics& Metrics() {
  static VfsOpMetrics m = VfsOpMetrics::Register(obs::GlobalRegistry(), "vfs.sim");
  return m;
}

WallClock& SyncClock() {
  static WallClock clock;
  return clock;
}

}  // namespace

// A handle onto a SimFs inode. All operations take the file-system lock; a handle
// opened before a crash is refused after Recover() (stale epoch).
class SimFsFile final : public File {
 public:
  SimFsFile(SimFs* fs, SimFs::InodePtr inode, std::uint64_t epoch, bool writable)
      : fs_(fs), inode_(std::move(inode)), epoch_(epoch), writable_(writable) {}

  Result<Bytes> ReadAt(std::uint64_t offset, std::size_t length) override {
    std::lock_guard<std::mutex> lock(fs_->mutex_);
    SDB_RETURN_IF_ERROR(CheckUsableLocked());
    Metrics().reads->Increment();
    const Bytes& cache = inode_->cache;
    if (offset >= cache.size()) {
      return Bytes{};
    }
    std::size_t end = static_cast<std::size_t>(
        std::min<std::uint64_t>(offset + length, cache.size()));
    // A read that covers an unreadable (torn / decayed) page reports an error — the
    // disk property the paper's partial-log-entry detection relies on.
    if (!inode_->bad_pages.empty()) {
      std::size_t page_size = fs_->disk_->page_size();
      std::size_t first_page = static_cast<std::size_t>(offset) / page_size;
      std::size_t last_page = (end - 1) / page_size;
      for (std::size_t p = first_page; p <= last_page; ++p) {
        if (inode_->bad_pages.count(p) != 0) {
          return UnreadableError("file page " + std::to_string(p) + " is unreadable");
        }
      }
    }
    Metrics().read_bytes->Add(end - static_cast<std::size_t>(offset));
    return Bytes(cache.begin() + static_cast<std::ptrdiff_t>(offset),
                 cache.begin() + static_cast<std::ptrdiff_t>(end));
  }

  Status Append(ByteSpan data) override {
    std::lock_guard<std::mutex> lock(fs_->mutex_);
    SDB_RETURN_IF_ERROR(CheckWritableLocked());
    std::uint64_t offset = inode_->cache.size();
    return WriteAtLocked(offset, data);
  }

  Status WriteAt(std::uint64_t offset, ByteSpan data) override {
    std::lock_guard<std::mutex> lock(fs_->mutex_);
    SDB_RETURN_IF_ERROR(CheckWritableLocked());
    return WriteAtLocked(offset, data);
  }

  Status Truncate(std::uint64_t new_size) override {
    std::lock_guard<std::mutex> lock(fs_->mutex_);
    SDB_RETURN_IF_ERROR(CheckWritableLocked());
    std::size_t page_size = fs_->disk_->page_size();
    Bytes& cache = inode_->cache;
    if (new_size < cache.size()) {
      cache.resize(static_cast<std::size_t>(new_size));
      // The final partial page (if any) now has different durable content.
      if (new_size % page_size != 0) {
        inode_->dirty.insert(static_cast<std::size_t>(new_size) / page_size);
      }
      std::size_t keep = PagesFor(new_size, page_size);
      inode_->dirty.erase(inode_->dirty.upper_bound(keep == 0 ? 0 : keep - 1),
                          inode_->dirty.end());
      if (keep == 0) {
        inode_->dirty.clear();
      }
    } else if (new_size > cache.size()) {
      std::size_t first_new = cache.size() / page_size;
      cache.resize(static_cast<std::size_t>(new_size), 0);
      for (std::size_t p = first_new; p < PagesFor(new_size, page_size); ++p) {
        inode_->dirty.insert(p);
      }
    }
    return OkStatus();
  }

  Status Sync() override {
    std::lock_guard<std::mutex> lock(fs_->mutex_);
    SDB_RETURN_IF_ERROR(CheckWritableLocked());
    Metrics().syncs->Increment();
    if (!obs::Enabled()) {
      return fs_->SyncInodeLocked(*inode_);
    }
    Stopwatch watch(SyncClock());
    Status status = fs_->SyncInodeLocked(*inode_);
    Metrics().sync_us->Record(watch.ElapsedMicros());
    return status;
  }

  Result<std::uint64_t> Size() override {
    std::lock_guard<std::mutex> lock(fs_->mutex_);
    SDB_RETURN_IF_ERROR(CheckUsableLocked());
    return static_cast<std::uint64_t>(inode_->cache.size());
  }

  Status Close() override {
    closed_ = true;
    return OkStatus();
  }

 private:
  Status CheckUsableLocked() const {
    if (closed_) {
      return InvalidArgumentError("file handle is closed");
    }
    if (epoch_ != fs_->epoch_ || fs_->crashed_) {
      return IoError("stale file handle (file system crashed)");
    }
    return OkStatus();
  }

  Status CheckWritableLocked() const {
    SDB_RETURN_IF_ERROR(CheckUsableLocked());
    if (!writable_) {
      return InvalidArgumentError("file handle is read-only");
    }
    return OkStatus();
  }

  Status WriteAtLocked(std::uint64_t offset, ByteSpan data) {
    if (data.empty()) {
      return OkStatus();
    }
    Metrics().writes->Increment();
    Metrics().write_bytes->Add(data.size());
    std::size_t page_size = fs_->disk_->page_size();
    Bytes& cache = inode_->cache;
    std::uint64_t end = offset + data.size();
    if (end > cache.size()) {
      cache.resize(static_cast<std::size_t>(end), 0);
    }
    std::copy(data.begin(), data.end(), cache.begin() + static_cast<std::ptrdiff_t>(offset));
    std::size_t first_page = static_cast<std::size_t>(offset) / page_size;
    std::size_t last_page = static_cast<std::size_t>(end - 1) / page_size;
    for (std::size_t p = first_page; p <= last_page; ++p) {
      inode_->dirty.insert(p);
      inode_->bad_pages.erase(p);  // rewriting repairs an unreadable page
    }
    return OkStatus();
  }

  SimFs* fs_;
  SimFs::InodePtr inode_;
  std::uint64_t epoch_;
  bool writable_;
  bool closed_ = false;
};

SimFs::SimFs(SimDisk* disk) : disk_(disk) {}

Status SimFs::CheckAlive() const {
  if (crashed_ || disk_->crashed()) {
    return IoError("file system is crashed");
  }
  return OkStatus();
}

Result<std::unique_ptr<File>> SimFs::Open(std::string_view path, OpenMode mode) {
  std::lock_guard<std::mutex> lock(mutex_);
  SDB_RETURN_IF_ERROR(CheckAlive());
  Metrics().opens->Increment();
  auto it = names_.find(path);
  bool exists = it != names_.end();
  bool writable = mode != OpenMode::kRead;

  switch (mode) {
    case OpenMode::kRead:
    case OpenMode::kReadWrite:
      if (!exists) {
        return NotFoundError("no such file: " + std::string(path));
      }
      return {std::make_unique<SimFsFile>(this, it->second, epoch_, writable)};
    case OpenMode::kCreateExclusive:
      if (exists) {
        return AlreadyExistsError("file exists: " + std::string(path));
      }
      [[fallthrough]];
    case OpenMode::kCreate:
      if (exists) {
        return {std::make_unique<SimFsFile>(this, it->second, epoch_, writable)};
      }
      break;
    case OpenMode::kTruncate:
      if (exists) {
        names_.erase(it);
        ++pending_meta_ops_;
      }
      break;
  }

  auto inode = std::make_shared<Inode>();
  names_.emplace(std::string(path), inode);
  ++pending_meta_ops_;
  return {std::make_unique<SimFsFile>(this, std::move(inode), epoch_, writable)};
}

Status SimFs::Delete(std::string_view path) {
  std::lock_guard<std::mutex> lock(mutex_);
  SDB_RETURN_IF_ERROR(CheckAlive());
  auto it = names_.find(path);
  if (it == names_.end()) {
    return NotFoundError("no such file: " + std::string(path));
  }
  names_.erase(it);
  ++pending_meta_ops_;
  Metrics().metadata_ops->Increment();
  return OkStatus();
}

Status SimFs::Rename(std::string_view from, std::string_view to) {
  std::lock_guard<std::mutex> lock(mutex_);
  SDB_RETURN_IF_ERROR(CheckAlive());
  auto it = names_.find(from);
  if (it == names_.end()) {
    return NotFoundError("no such file: " + std::string(from));
  }
  InodePtr inode = it->second;
  names_.erase(it);
  names_.insert_or_assign(std::string(to), std::move(inode));
  ++pending_meta_ops_;
  Metrics().metadata_ops->Increment();
  return OkStatus();
}

Result<bool> SimFs::Exists(std::string_view path) {
  std::lock_guard<std::mutex> lock(mutex_);
  SDB_RETURN_IF_ERROR(CheckAlive());
  return names_.count(path) != 0 || dirs_.count(path) != 0;
}

Result<std::vector<std::string>> SimFs::List(std::string_view dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  SDB_RETURN_IF_ERROR(CheckAlive());
  std::string prefix(dir);
  if (!prefix.empty() && prefix.back() != '/') {
    prefix.push_back('/');
  }
  std::vector<std::string> out;
  for (auto it = names_.lower_bound(prefix); it != names_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    out.push_back(it->first.substr(prefix.size()));
  }
  return out;
}

Status SimFs::CreateDir(std::string_view path) {
  std::lock_guard<std::mutex> lock(mutex_);
  SDB_RETURN_IF_ERROR(CheckAlive());
  dirs_.insert(std::string(path));
  ++pending_meta_ops_;
  Metrics().metadata_ops->Increment();
  return OkStatus();
}

Status SimFs::SyncDir(std::string_view dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  SDB_RETURN_IF_ERROR(CheckAlive());
  Metrics().metadata_ops->Increment();
  FaultAction action = disk_->BeginMetadataSync(std::string(dir));
  switch (action) {
    case FaultAction::kTransientError:
      // The sync failed but nothing crashed: the namespace changes are still pending
      // (not durable) and a retry of SyncDir may succeed.
      return IoError("simulated transient directory sync error");
    case FaultAction::kCrashBefore:
    case FaultAction::kCrashTorn:
      // Power failed before the directory blocks hit the medium: the pending namespace
      // changes are lost (Crash() will roll the namespace back to durable_names_).
      crashed_ = true;
      return IoError("simulated crash during directory sync");
    case FaultAction::kCrashAfter:
      durable_names_ = names_;
      pending_meta_ops_ = 0;
      crashed_ = true;
      return IoError("simulated crash after directory sync");
    case FaultAction::kNone: {
      std::map<std::string, InodePtr, std::less<>> old_durable = std::move(durable_names_);
      durable_names_ = names_;
      pending_meta_ops_ = 0;
      ReclaimDeadInodesLocked(old_durable);
      return OkStatus();
    }
  }
  return InternalError("unreachable");
}

Status SimFs::SyncInodeLocked(Inode& inode) {
  std::size_t page_size = disk_->page_size();
  std::size_t needed_pages = PagesFor(inode.cache.size(), page_size);
  // Each fsync is a fresh positioning of the head (see SimDisk::EndBurst).
  if (!inode.dirty.empty()) {
    disk_->EndBurst();
  }

  while (!inode.dirty.empty()) {
    std::size_t index = *inode.dirty.begin();
    if (index >= needed_pages) {
      inode.dirty.erase(inode.dirty.begin());
      continue;
    }
    while (inode.pages.size() <= index) {
      SDB_ASSIGN_OR_RETURN(PageId fresh, disk_->AllocatePage());
      inode.pages.push_back(fresh);
    }
    std::size_t begin = index * page_size;
    std::size_t end = std::min(begin + page_size, inode.cache.size());
    ByteSpan slice(inode.cache.data() + begin, end - begin);
    Status status = disk_->WritePage(inode.pages[index], slice);
    if (!status.ok()) {
      crashed_ = crashed_ || disk_->crashed();
      return status;
    }
    inode.dirty.erase(inode.dirty.begin());
  }

  // Shrink the backing store if the file got smaller.
  while (inode.pages.size() > needed_pages) {
    disk_->FreePage(inode.pages.back());
    inode.pages.pop_back();
  }
  // The size update is the last step of the fsync; it only lands if every page write
  // above succeeded. A crash mid-sync therefore leaves the old durable size, and the
  // incompletely-written tail is invisible after recovery (or unreadable, if torn
  // within the old size).
  inode.durable_size = inode.cache.size();
  return OkStatus();
}

Status SimFs::ReloadInodeLocked(Inode& inode) {
  std::size_t page_size = disk_->page_size();
  inode.dirty.clear();
  inode.bad_pages.clear();
  inode.cache.assign(static_cast<std::size_t>(inode.durable_size), 0);
  std::size_t needed_pages = PagesFor(inode.durable_size, page_size);
  Bytes page_data;
  for (std::size_t i = 0; i < needed_pages; ++i) {
    if (i >= inode.pages.size()) {
      continue;  // never written: reads as zeroes
    }
    Status status = disk_->ReadPage(inode.pages[i], page_data);
    if (status.Is(ErrorCode::kUnreadable)) {
      inode.bad_pages.insert(i);
      continue;
    }
    SDB_RETURN_IF_ERROR(status);
    std::size_t begin = i * page_size;
    std::size_t end = std::min(begin + page_size, inode.cache.size());
    std::copy(page_data.begin(), page_data.begin() + static_cast<std::ptrdiff_t>(end - begin),
              inode.cache.begin() + static_cast<std::ptrdiff_t>(begin));
  }
  return OkStatus();
}

void SimFs::FreeInodePagesLocked(Inode& inode) {
  for (PageId page : inode.pages) {
    disk_->FreePage(page);
  }
  inode.pages.clear();
}

void SimFs::ReclaimDeadInodesLocked(const std::map<std::string, InodePtr, std::less<>>& old_map) {
  // Frees disk pages of inodes that were reachable through `old_map` but are no longer
  // reachable from the current namespace (they can never be read again).
  for (const auto& [name, inode] : old_map) {
    bool live = false;
    for (const auto& [current_name, current_inode] : names_) {
      if (current_inode == inode) {
        live = true;
        break;
      }
    }
    if (!live) {
      FreeInodePagesLocked(*inode);
    }
  }
}

void SimFs::Crash() {
  std::lock_guard<std::mutex> lock(mutex_);
  crashed_ = true;
  disk_->Crash();
}

Status SimFs::Recover() {
  std::lock_guard<std::mutex> lock(mutex_);
  disk_->ClearCrash();
  std::map<std::string, InodePtr, std::less<>> old_volatile = std::move(names_);
  names_ = durable_names_;
  ReclaimDeadInodesLocked(old_volatile);
  pending_meta_ops_ = 0;
  ++epoch_;
  crashed_ = false;
  for (auto& [name, inode] : names_) {
    SDB_RETURN_IF_ERROR(ReloadInodeLocked(*inode).WithContext("reloading " + name));
  }
  return OkStatus();
}

Status SimFs::DropCaches() {
  std::lock_guard<std::mutex> lock(mutex_);
  SDB_RETURN_IF_ERROR(CheckAlive());
  if (pending_meta_ops_ != 0) {
    return FailedPreconditionError("unsynced metadata would be lost");
  }
  for (auto& [name, inode] : names_) {
    if (!inode->dirty.empty() || inode->cache.size() != inode->durable_size) {
      return FailedPreconditionError("unsynced data in " + name + " would be lost");
    }
  }
  ++epoch_;
  for (auto& [name, inode] : names_) {
    SDB_RETURN_IF_ERROR(ReloadInodeLocked(*inode).WithContext("reloading " + name));
  }
  return OkStatus();
}

Status SimFs::InjectBadFilePage(std::string_view path, std::size_t page_index) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = names_.find(path);
  if (it == names_.end()) {
    return NotFoundError("no such file: " + std::string(path));
  }
  Inode& inode = *it->second;
  if (page_index >= inode.pages.size()) {
    return InvalidArgumentError("file has no page " + std::to_string(page_index));
  }
  disk_->MarkPageUnreadable(inode.pages[page_index]);
  inode.bad_pages.insert(page_index);
  return OkStatus();
}

std::size_t SimFs::pending_metadata_ops() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_meta_ops_;
}

}  // namespace sdb
