// SimFs: a simulated Unix-like file system over SimDisk, with an honest write-back
// cache and fsync semantics.
//
// Durability rules (matching what the paper's Section 3 protocol must cope with):
//   - File *content* written through a handle is volatile until File::Sync() succeeds.
//   - Namespace operations (create, delete, rename) are visible immediately but become
//     durable only when SyncDir() succeeds — the "appropriate number of Unix fsync
//     calls" the paper mentions for its commit point.
//   - Crash() simulates a power failure: all volatile state is discarded. Recover()
//     restores service; files then contain exactly their durable content, and any page
//     torn by a mid-write crash reads back as kUnreadable.
//
// Reads are served from the cache and charge no disk time (the paper's enquiries never
// touch the disk); disk time is charged on Sync and on the post-crash reload, which is
// what makes restart-time benchmarks meaningful.
#ifndef SMALLDB_SRC_STORAGE_SIM_FS_H_
#define SMALLDB_SRC_STORAGE_SIM_FS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/storage/sim_disk.h"
#include "src/storage/vfs.h"

namespace sdb {

class SimFs final : public Vfs {
 public:
  explicit SimFs(SimDisk* disk);

  SimFs(const SimFs&) = delete;
  SimFs& operator=(const SimFs&) = delete;

  // --- Vfs interface ---
  Result<std::unique_ptr<File>> Open(std::string_view path, OpenMode mode) override;
  Status Delete(std::string_view path) override;
  Status Rename(std::string_view from, std::string_view to) override;
  Result<bool> Exists(std::string_view path) override;
  Result<std::vector<std::string>> List(std::string_view dir) override;
  Status CreateDir(std::string_view path) override;
  Status SyncDir(std::string_view dir) override;

  // --- crash control ---

  // Power failure: discards all volatile state. Subsequent file operations fail until
  // Recover(). (The disk may already be in the crashed state if a fault injector fired;
  // this also covers a crash between durable operations.)
  void Crash();

  // Power restoration + remount: reloads every durable file from disk, charging disk
  // read time. Open handles from before the crash become permanently invalid.
  Status Recover();

  // Remount without power failure: drops clean caches so the next reads hit the disk
  // (used to measure cold restarts and to surface injected hard errors). It is an error
  // to call this with unsynced data; such data would be silently lost, so this returns
  // kFailedPrecondition instead.
  Status DropCaches();

  // Hard-failure injection: marks the page_index'th page of `path` unreadable, as if
  // the medium decayed (the paper's "hard error"). Takes effect immediately.
  Status InjectBadFilePage(std::string_view path, std::size_t page_index);

  // Number of namespace operations not yet made durable by SyncDir.
  std::size_t pending_metadata_ops() const;

  SimDisk& disk() { return *disk_; }

 private:
  friend class SimFsFile;

  struct Inode {
    Bytes cache;                       // volatile content (full file)
    std::set<std::size_t> dirty;       // page indices differing from disk
    std::set<std::size_t> bad_pages;   // unreadable regions (after crash / hard error)
    std::vector<PageId> pages;         // on-disk backing pages
    std::uint64_t durable_size = 0;    // content size as of the last successful Sync
  };
  using InodePtr = std::shared_ptr<Inode>;

  Status SyncInodeLocked(Inode& inode);
  Status ReloadInodeLocked(Inode& inode);
  void FreeInodePagesLocked(Inode& inode);
  void ReclaimDeadInodesLocked(const std::map<std::string, InodePtr, std::less<>>& old_map);
  Status CheckAlive() const;

  SimDisk* disk_;
  mutable std::mutex mutex_;
  std::map<std::string, InodePtr, std::less<>> names_;          // volatile namespace
  std::map<std::string, InodePtr, std::less<>> durable_names_;  // survives a crash
  std::set<std::string, std::less<>> dirs_;
  std::uint64_t pending_meta_ops_ = 0;
  std::uint64_t epoch_ = 1;  // bumped on Recover; stale handles are refused
  bool crashed_ = false;
};

}  // namespace sdb

#endif  // SMALLDB_SRC_STORAGE_SIM_FS_H_
