// SimEnv: the standard simulated environment bundle — one SimClock driving a SimDisk, a
// SimFs mounted on it, and a MicroVAX-calibrated CostModel. Tests and benchmarks build
// one of these and hand its parts to the engine.
#ifndef SMALLDB_SRC_STORAGE_SIM_ENV_H_
#define SMALLDB_SRC_STORAGE_SIM_ENV_H_

#include <memory>

#include "src/common/clock.h"
#include "src/common/cost_model.h"
#include "src/storage/sim_disk.h"
#include "src/storage/sim_fs.h"

namespace sdb {

struct SimEnvOptions {
  SimDiskOptions disk;
  bool microvax_cost_model = true;
};

class SimEnv {
 public:
  explicit SimEnv(SimEnvOptions options = {}) {
    options.disk.clock = &clock_;
    disk_ = std::make_unique<SimDisk>(options.disk);
    fs_ = std::make_unique<SimFs>(disk_.get());
    cost_model_ =
        options.microvax_cost_model ? CostModel::MicroVax(&clock_) : CostModel{&clock_};
  }

  SimClock& clock() { return clock_; }
  SimDisk& disk() { return *disk_; }
  SimFs& fs() { return *fs_; }
  const CostModel& cost_model() const { return cost_model_; }

  // Simulated milliseconds elapsed since construction.
  double ElapsedMillis() const { return static_cast<double>(clock_.NowMicros()) / 1000.0; }

 private:
  SimClock clock_;
  std::unique_ptr<SimDisk> disk_;
  std::unique_ptr<SimFs> fs_;
  CostModel cost_model_;
};

}  // namespace sdb

#endif  // SMALLDB_SRC_STORAGE_SIM_ENV_H_
