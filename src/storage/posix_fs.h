// PosixFs: Vfs backend over the host file system (POSIX fds, fsync, rename).
//
// This is the backend a real deployment uses; paths given to the engine are interpreted
// relative to an optional root directory. Examples run on it; tests and benchmarks
// mostly use SimFs for determinism and crash injection.
#ifndef SMALLDB_SRC_STORAGE_POSIX_FS_H_
#define SMALLDB_SRC_STORAGE_POSIX_FS_H_

#include <string>

#include "src/storage/vfs.h"

namespace sdb {

class PosixFs final : public Vfs {
 public:
  // All paths passed to this Vfs are joined under `root` ("" = process cwd).
  explicit PosixFs(std::string root = "");

  Result<std::unique_ptr<File>> Open(std::string_view path, OpenMode mode) override;
  Status Delete(std::string_view path) override;
  Status Rename(std::string_view from, std::string_view to) override;
  Result<bool> Exists(std::string_view path) override;
  Result<std::vector<std::string>> List(std::string_view dir) override;
  Status CreateDir(std::string_view path) override;
  Status SyncDir(std::string_view dir) override;

 private:
  std::string Resolve(std::string_view path) const;

  std::string root_;
};

}  // namespace sdb

#endif  // SMALLDB_SRC_STORAGE_POSIX_FS_H_
