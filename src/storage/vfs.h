// Vfs: the file-system interface the database engine is written against.
//
// Two implementations exist: SimFs (a simulated Unix-like file system over SimDisk,
// with honest write-back caching, fsync semantics and crash injection — used by tests
// and benchmarks) and PosixFs (a passthrough to the host file system — used by the
// examples and by anyone adopting the library for real data).
//
// The engine uses exactly the primitives the paper's Section 3 protocol needs: create,
// append, read, fsync, atomic rename, delete, list, plus a directory sync to make
// metadata durable ("after an appropriate number of Unix fsync calls").
#ifndef SMALLDB_SRC_STORAGE_VFS_H_
#define SMALLDB_SRC_STORAGE_VFS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/common/status.h"

namespace sdb {

// An open file handle. Handles are not thread-safe; the engine serializes access.
class File {
 public:
  virtual ~File() = default;

  // Reads up to `length` bytes at `offset`. Short reads happen only at end-of-file.
  // Reading a region that covers a torn/hard-failed page returns kUnreadable.
  virtual Result<Bytes> ReadAt(std::uint64_t offset, std::size_t length) = 0;

  // Appends at end-of-file. Buffered until Sync (like the OS page cache).
  virtual Status Append(ByteSpan data) = 0;

  // Overwrites in place (the ad-hoc baseline's update-in-place path).
  virtual Status WriteAt(std::uint64_t offset, ByteSpan data) = 0;

  virtual Status Truncate(std::uint64_t new_size) = 0;

  // Forces buffered data to the medium (fsync). The commit point of every update.
  virtual Status Sync() = 0;

  virtual Result<std::uint64_t> Size() = 0;

  virtual Status Close() = 0;
};

enum class OpenMode : std::uint8_t {
  kRead,            // must exist
  kReadWrite,       // must exist
  kCreate,          // create if missing, keep contents if present
  kCreateExclusive, // fail with kAlreadyExists if present
  kTruncate,        // create or wipe
};

class Vfs {
 public:
  virtual ~Vfs() = default;

  virtual Result<std::unique_ptr<File>> Open(std::string_view path, OpenMode mode) = 0;

  virtual Status Delete(std::string_view path) = 0;

  // Atomically replaces `to` with `from` (POSIX rename semantics). Durability of the
  // rename itself requires SyncDir on SimFs, matching real directory-fsync rules.
  virtual Status Rename(std::string_view from, std::string_view to) = 0;

  virtual Result<bool> Exists(std::string_view path) = 0;

  // Names (not paths) of files whose path begins with `dir` + "/".
  virtual Result<std::vector<std::string>> List(std::string_view dir) = 0;

  virtual Status CreateDir(std::string_view path) = 0;

  // Makes pending metadata (creates/deletes/renames under `dir`) durable.
  virtual Status SyncDir(std::string_view dir) = 0;
};

// --- convenience helpers shared by all backends ---

// Reads an entire file into memory.
Result<Bytes> ReadWholeFile(Vfs& vfs, std::string_view path);

// Creates/truncates `path`, writes `data`, fsyncs, closes.
Status WriteWholeFile(Vfs& vfs, std::string_view path, ByteSpan data);

// The classic reliable-replace idiom: write to `path`.tmp, fsync, rename over `path`,
// sync the directory. Used by the text-file baseline and by VersionStore.
Status AtomicWriteFile(Vfs& vfs, std::string_view dir, std::string_view path, ByteSpan data);

// Joins a directory and a file name with '/'.
std::string JoinPath(std::string_view dir, std::string_view name);

}  // namespace sdb

#endif  // SMALLDB_SRC_STORAGE_VFS_H_
