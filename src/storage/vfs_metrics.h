// Per-backend Vfs operation metrics, registered in the process-wide registry
// (obs::GlobalRegistry()) under "vfs.<backend>.*". Each backend keeps one lazily
// initialized bundle; data-path counters are always live, sync latency is recorded
// only while timing instrumentation is enabled (obs::Enabled()).
#ifndef SMALLDB_SRC_STORAGE_VFS_METRICS_H_
#define SMALLDB_SRC_STORAGE_VFS_METRICS_H_

#include <string>

#include "src/obs/metrics.h"

namespace sdb {

struct VfsOpMetrics {
  obs::Counter* opens = nullptr;
  obs::Counter* reads = nullptr;
  obs::Counter* read_bytes = nullptr;
  obs::Counter* writes = nullptr;
  obs::Counter* write_bytes = nullptr;
  obs::Counter* syncs = nullptr;
  obs::Counter* metadata_ops = nullptr;  // delete, rename, mkdir, dir sync
  obs::Histogram* sync_us = nullptr;     // wall-clock fsync latency

  static VfsOpMetrics Register(obs::Registry& registry, const std::string& prefix) {
    VfsOpMetrics m;
    m.opens = &registry.GetCounter(prefix + ".opens");
    m.reads = &registry.GetCounter(prefix + ".reads");
    m.read_bytes = &registry.GetCounter(prefix + ".read_bytes");
    m.writes = &registry.GetCounter(prefix + ".writes");
    m.write_bytes = &registry.GetCounter(prefix + ".write_bytes");
    m.syncs = &registry.GetCounter(prefix + ".syncs");
    m.metadata_ops = &registry.GetCounter(prefix + ".metadata_ops");
    m.sync_us = &registry.GetHistogram(prefix + ".sync_us");
    return m;
  }
};

}  // namespace sdb

#endif  // SMALLDB_SRC_STORAGE_VFS_METRICS_H_
