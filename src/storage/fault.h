// Fault injection for the simulated storage stack.
//
// The paper's reliability argument (Section 4) is stated in terms of *where* a transient
// failure lands: before the log write, during it (torn page), after it, or anywhere in
// the checkpoint-switch sequence. CrashPlan lets a test enumerate exactly those points:
// it counts durable operations (page writes and metadata syncs) and triggers a crash on
// the Nth one, optionally tearing the page being written.
#ifndef SMALLDB_SRC_STORAGE_FAULT_H_
#define SMALLDB_SRC_STORAGE_FAULT_H_

#include <cstdint>
#include <functional>
#include <string>

namespace sdb {

// What the injector decides for one durable operation.
enum class FaultAction : std::uint8_t {
  kNone = 0,       // proceed normally
  kCrashBefore,    // power fails before the medium is touched
  kCrashTorn,      // power fails mid-write: page is partially written and unreadable
  kCrashAfter,     // power fails just after the write completes durably
};

// Description of a durable operation, passed to the injector for each decision.
struct DurableOp {
  enum class Kind : std::uint8_t { kPageWrite, kMetadataSync } kind = Kind::kPageWrite;
  std::string target;       // file path (page writes) or directory (metadata syncs)
  std::uint64_t sequence = 0;  // global ordinal of this durable op, starting at 1
};

// Injector callback: inspect the op, return an action. Must be deterministic for
// reproducibility; CrashPlan below is the standard implementation.
using FaultInjector = std::function<FaultAction(const DurableOp& op)>;

// Crashes on the Nth durable operation with the given action. N is 1-based; a plan with
// crash_at_op == 0 never fires.
class CrashPlan {
 public:
  CrashPlan() = default;
  CrashPlan(std::uint64_t crash_at_op, FaultAction action)
      : crash_at_op_(crash_at_op), action_(action) {}

  FaultAction Decide(const DurableOp& op) {
    if (crash_at_op_ != 0 && op.sequence == crash_at_op_) {
      fired_ = true;
      return action_;
    }
    return FaultAction::kNone;
  }

  bool fired() const { return fired_; }

  FaultInjector AsInjector() {
    return [this](const DurableOp& op) { return Decide(op); };
  }

 private:
  std::uint64_t crash_at_op_ = 0;
  FaultAction action_ = FaultAction::kNone;
  bool fired_ = false;
};

}  // namespace sdb

#endif  // SMALLDB_SRC_STORAGE_FAULT_H_
