// Fault injection for the simulated storage stack.
//
// The paper's reliability argument (Section 4) is stated in terms of *where* a transient
// failure lands: before the log write, during it (torn page), after it, or anywhere in
// the checkpoint-switch sequence. CrashPlan lets a test enumerate exactly those points:
// it counts durable operations (page writes and metadata syncs) and triggers a crash on
// the Nth one, optionally tearing the page being written.
//
// Richer schedules — repeated crashes, crash-during-recovery, seeded-probabilistic
// faults, transient (non-crashing) I/O errors — live in src/sim/fault_schedule.h and
// plug in through the same FaultInjector hook.
#ifndef SMALLDB_SRC_STORAGE_FAULT_H_
#define SMALLDB_SRC_STORAGE_FAULT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

namespace sdb {

// What the injector decides for one disk operation.
enum class FaultAction : std::uint8_t {
  kNone = 0,       // proceed normally
  kCrashBefore,    // power fails before the medium is touched
  kCrashTorn,      // power fails mid-write: page is partially written and unreadable
  kCrashAfter,     // power fails just after the write completes durably
  kTransientError, // the operation fails with kIoError but nothing crashes: the
                   // medium is untouched and an identical retry may succeed (a
                   // controller hiccup, not a power failure)
};

// Description of a disk operation, passed to the injector for each decision.
struct DurableOp {
  enum class Kind : std::uint8_t {
    kPageWrite,     // durable: a page reaching the medium
    kMetadataSync,  // durable: a directory fsync
    kPageRead,      // not durable: a page fetched from the medium (post-crash reload,
                    // cold restarts) — lets schedules fault recovery itself
  };
  Kind kind = Kind::kPageWrite;
  std::string target;       // file path (page writes) or directory (metadata syncs)
  // Ordinal of this op, starting at 1. Durable ops (page writes + metadata syncs)
  // share one sequence; page reads count on their own independent sequence, so adding
  // read injection did not renumber the crash points existing tests enumerate.
  std::uint64_t sequence = 0;
};

// Injector callback: inspect the op, return an action. Must be deterministic for
// reproducibility; CrashPlan below is the standard one-shot implementation.
using FaultInjector = std::function<FaultAction(const DurableOp& op)>;

// Crashes on the Nth durable operation with the given action. N is 1-based; a plan with
// crash_at_op == 0 never fires. Reads are ignored (they carry a different sequence).
//
// Thread-safe: Decide may be consulted from concurrent group-commit leaders racing
// through SimDisk and SimFs; the configuration is immutable after construction and
// fired() is an atomic, so concurrent decisions are deterministic per op.
class CrashPlan {
 public:
  CrashPlan() = default;
  CrashPlan(std::uint64_t crash_at_op, FaultAction action)
      : crash_at_op_(crash_at_op), action_(action) {}

  FaultAction Decide(const DurableOp& op) {
    if (op.kind == DurableOp::Kind::kPageRead) {
      return FaultAction::kNone;
    }
    if (crash_at_op_ != 0 && op.sequence == crash_at_op_) {
      fired_.store(true, std::memory_order_relaxed);
      return action_;
    }
    return FaultAction::kNone;
  }

  bool fired() const { return fired_.load(std::memory_order_relaxed); }

  FaultInjector AsInjector() {
    return [this](const DurableOp& op) { return Decide(op); };
  }

 private:
  std::uint64_t crash_at_op_ = 0;
  FaultAction action_ = FaultAction::kNone;
  std::atomic<bool> fired_{false};
};

}  // namespace sdb

#endif  // SMALLDB_SRC_STORAGE_FAULT_H_
