#include "src/obs/trace.h"

namespace sdb::obs {

const char* CommitStageName(CommitStage stage) {
  switch (stage) {
    case CommitStage::kLockWait:
      return "lock_wait";
    case CommitStage::kQueueWait:
      return "queue_wait";
    case CommitStage::kPrepare:
      return "prepare";
    case CommitStage::kAppend:
      return "append";
    case CommitStage::kFsync:
      return "fsync";
    case CommitStage::kExclusiveWait:
      return "excl_wait";
    case CommitStage::kApply:
      return "apply";
    case CommitStage::kAck:
      return "ack";
  }
  return "unknown";
}

std::string CommitTrace::ToString() const {
  std::string out = "epoch=" + std::to_string(epoch) +
                    " records=" + std::to_string(records) +
                    " total=" + std::to_string(total_micros) + "us";
  for (std::size_t i = 0; i < kCommitStageCount; ++i) {
    out += std::string(" ") + CommitStageName(static_cast<CommitStage>(i)) + "=" +
           std::to_string(stage_micros[i]);
  }
  return out;
}

void TraceRing::Record(const CommitTrace& trace) {
  if (capacity_ == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(trace);
  } else {
    ring_[next_] = trace;
  }
  next_ = (next_ + 1) % capacity_;
  ++recorded_;
}

std::vector<CommitTrace> TraceRing::Dump() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CommitTrace> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // next_ is the oldest once the ring has wrapped.
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

std::uint64_t TraceRing::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

CommitStageMetrics CommitStageMetrics::Register(Registry& registry, TraceRing* ring) {
  CommitStageMetrics metrics;
  for (std::size_t i = 0; i < kCommitStageCount; ++i) {
    metrics.stage[i] = &registry.GetHistogram(
        std::string("commit.stage.") + CommitStageName(static_cast<CommitStage>(i)) + "_us");
  }
  metrics.total = &registry.GetHistogram("commit.total_us");
  metrics.batch_records = &registry.GetHistogram("commit.batch_records");
  metrics.batches = &registry.GetCounter("commit.batches");
  metrics.fsyncs = &registry.GetCounter("commit.fsyncs");
  metrics.ring = ring;
  return metrics;
}

void CommitStageMetrics::RecordBatch(const CommitTrace& trace) {
  for (std::size_t i = 0; i < kCommitStageCount; ++i) {
    // Ack and queue wait are recorded per request by the pipeline itself (the trace
    // only carries the batch's worst queue wait); everything else is per batch.
    CommitStage s = static_cast<CommitStage>(i);
    if (s == CommitStage::kAck || s == CommitStage::kQueueWait) {
      continue;
    }
    stage[i]->Record(trace.stage_micros[i]);
  }
  total->Record(trace.total_micros);
  batch_records->Record(static_cast<std::int64_t>(trace.records));
  batches->Increment();
  if (ring != nullptr) {
    ring->Record(trace);
  }
}

}  // namespace sdb::obs
