// Commit-pipeline stage tracing.
//
// Every committed batch (or serial update) produces one CommitTrace: a per-stage
// timing breakdown of the paper's update protocol as this engine executes it —
//
//   lock_wait   acquiring the update lock (paper: "An update lock is held...")
//   queue_wait  waiting in the group-commit queue for a leader (max over the batch)
//   prepare     precondition checks + record pickling, under the update lock
//   append      streaming the batch's records into the OS cache
//   fsync       padding + the Sync() that IS the commit point, no lock held
//   excl_wait   upgrading to exclusive (draining in-flight enquiries)
//   apply       the in-memory modification, exclusive mode
//   ack         from batch completion to a rider thread observing it (histogram
//               only; a trace event is recorded by the leader before riders wake)
//
// Traces aggregate into per-stage histograms in the owning Database's registry
// ("commit.stage.<name>_us") and, optionally, into a bounded ring buffer of raw
// per-commit events for inspection via Database::DumpTrace().
#ifndef SMALLDB_SRC_OBS_TRACE_H_
#define SMALLDB_SRC_OBS_TRACE_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace sdb::obs {

enum class CommitStage : int {
  kLockWait = 0,
  kQueueWait,
  kPrepare,
  kAppend,
  kFsync,
  kExclusiveWait,
  kApply,
  kAck,
};
constexpr std::size_t kCommitStageCount = 8;

// Short stage name as used in metric names ("lock_wait", "fsync", ...).
const char* CommitStageName(CommitStage stage);

struct CommitTrace {
  std::uint64_t epoch = 0;    // Database::commit_epoch() of the batch
  std::uint64_t records = 0;  // records committed by the batch
  std::int64_t start_micros = 0;  // clock timestamp when the batch started
  std::array<std::int64_t, kCommitStageCount> stage_micros{};
  std::int64_t total_micros = 0;  // lock acquire -> apply complete

  std::int64_t stage(CommitStage s) const { return stage_micros[static_cast<int>(s)]; }
  void set_stage(CommitStage s, std::int64_t v) { stage_micros[static_cast<int>(s)] = v; }

  // One line per trace: "epoch=5 records=3 total=812us lock_wait=0 ...".
  std::string ToString() const;
};

// Fixed-capacity ring of the most recent commit traces. Recording happens once per
// batch (not per record), so a mutex is fine; Dump() returns oldest-first.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity) : capacity_(capacity) {}

  void Record(const CommitTrace& trace);
  std::vector<CommitTrace> Dump() const;

  std::uint64_t total_recorded() const;  // including events already overwritten
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<CommitTrace> ring_;  // grows to capacity_, then wraps
  std::size_t next_ = 0;
  std::uint64_t recorded_ = 0;
};

// The per-stage aggregation targets the commit pipeline records into: one histogram
// per stage plus batch-level totals, all owned by the database's registry, and an
// optional raw-event ring. Cheap to copy (it is a bundle of stable pointers).
struct CommitStageMetrics {
  std::array<Histogram*, kCommitStageCount> stage{};
  Histogram* total = nullptr;          // commit.total_us
  Histogram* batch_records = nullptr;  // commit.batch_records (size of each batch)
  Counter* batches = nullptr;          // commit.batches
  Counter* fsyncs = nullptr;           // commit.fsyncs
  TraceRing* ring = nullptr;           // may be null (tracing disabled)

  // Registers the stage histograms in `registry` under "commit.stage.<name>_us".
  static CommitStageMetrics Register(Registry& registry, TraceRing* ring);

  // Records one completed batch: the per-batch stage histograms, the totals, and the
  // ring. Ack and queue wait are per-request stages, recorded by the pipeline itself;
  // the trace only carries the batch's worst queue wait for DumpTrace().
  void RecordBatch(const CommitTrace& trace);
};

}  // namespace sdb::obs

#endif  // SMALLDB_SRC_OBS_TRACE_H_
