// Observability: a low-overhead metrics layer for the whole engine.
//
// The paper justifies its design with measured per-stage costs (a 20 ms log write,
// a 5 s checkpoint disk pass, 13/62 ms remote operations). This module is the
// reproduction's instrument for producing the same table from a live process:
//
//   - Counter / Gauge: lock-free monotonic counts and set-able values.
//   - Histogram: lock-free log-linear latency histogram with bounded relative
//     error, queried as p50/p95/p99/max snapshots.
//   - Registry: a name -> metric directory, dumpable as aligned human-readable
//     text or machine-readable JSON. Every subsystem registers its metrics here
//     (commit stages under the owning Database's registry; process-wide subsystems
//     — Vfs backends, RPC stubs, the typed heap's GC, pickling — under
//     GlobalRegistry()).
//
// Overhead contract (see docs/OBSERVABILITY.md):
//   - Counters and gauges are single relaxed atomic ops and are ALWAYS live: the
//     engine's stats()/checkpoint-policy logic depends on them.
//   - Timing instrumentation (histogram recording driven by clock reads, trace
//     capture) is gated on Enabled(): a relaxed atomic bool, flipped at runtime
//     with SetTimingEnabled(false), and compiled out entirely with -DSDB_OBS_DISABLED
//     (Enabled() becomes constant false and dead code folds away).
#ifndef SMALLDB_SRC_OBS_METRICS_H_
#define SMALLDB_SRC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sdb::obs {

// --- the timing kill switch ---

#ifdef SDB_OBS_DISABLED
constexpr bool Enabled() { return false; }
inline void SetTimingEnabled(bool) {}
#else
namespace internal {
inline std::atomic<bool> g_timing_enabled{true};
}  // namespace internal
inline bool Enabled() {
  return internal::g_timing_enabled.load(std::memory_order_relaxed);
}
inline void SetTimingEnabled(bool enabled) {
  internal::g_timing_enabled.store(enabled, std::memory_order_relaxed);
}
#endif

// --- scalar metrics ---

class Counter {
 public:
  void Add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// --- histogram ---

// Log-linear bucketing (the HdrHistogram idea, sized for microsecond latencies):
// values 0..7 get unit-width buckets; each further power-of-two range [2^m, 2^(m+1))
// is split into 4 linear sub-buckets of width 2^(m-2). A bucket's width is therefore
// at most 1/4 of the smallest value it can hold, so any quantile estimated at a
// bucket midpoint is within +/-12.5% of the true value. Values at or above 2^40 us
// (~13 days) land in one final overflow bucket.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::vector<std::uint64_t> buckets;

  double mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / count; }

  // Quantile estimate, q in [0,1]. Linear interpolation inside the covering bucket;
  // relative error bounded by half the bucket width (<= 12.5%).
  double Quantile(double q) const;
  double p50() const { return Quantile(0.50); }
  double p95() const { return Quantile(0.95); }
  double p99() const { return Quantile(0.99); }
};

class Histogram {
 public:
  static constexpr int kSubBucketBits = 3;                   // 8 unit buckets
  static constexpr std::uint64_t kSubBuckets = 1u << kSubBucketBits;
  static constexpr int kMaxMagnitude = 40;                   // overflow at 2^40
  // 8 unit buckets + 4 sub-buckets per magnitude 3..39 + 1 overflow bucket.
  static constexpr std::size_t kBucketCount =
      kSubBuckets + 4 * (kMaxMagnitude - kSubBucketBits) + 1;

  // Maps a value to its bucket index. Exposed for the bucket-math tests.
  static std::size_t BucketIndex(std::uint64_t v) {
    if (v < kSubBuckets) {
      return static_cast<std::size_t>(v);
    }
    int msb = 63 - std::countl_zero(v);
    if (msb >= kMaxMagnitude) {
      return kBucketCount - 1;  // overflow bucket
    }
    std::size_t offset = static_cast<std::size_t>((v >> (msb - 2)) - 4);
    return kSubBuckets + 4 * static_cast<std::size_t>(msb - kSubBucketBits) + offset;
  }

  // Smallest value mapping to bucket `i` (the overflow bucket's lower bound is 2^40).
  static std::uint64_t BucketLowerBound(std::size_t i);
  // One past the largest value mapping to bucket `i`.
  static std::uint64_t BucketUpperBound(std::size_t i);

  void Record(std::int64_t value) {
    std::uint64_t v = value < 0 ? 0 : static_cast<std::uint64_t>(value);
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen && !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  HistogramSnapshot Snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

// --- registry ---

// Thread-safe name -> metric directory. Get* registers on first use and returns a
// reference that stays valid for the registry's lifetime; metric updates after
// registration never take the registry lock.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  // Lookup without registration; nullptr when absent. For tests and reports.
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;

  // Human-readable dump: one aligned line per metric, histograms with
  // count/mean/p50/p95/p99/max.
  std::string DumpText() const;

  // Machine-readable dump:
  //   {"counters":{..}, "gauges":{..},
  //    "histograms":{"name":{"count":..,"sum":..,"mean":..,"p50":..,"p95":..,
  //                          "p99":..,"max":..}}}
  std::string DumpJson() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// The process-wide registry for subsystems without a natural owner (Vfs backends,
// RPC stubs, typed-heap GC, pickling, name-server operation counts).
Registry& GlobalRegistry();

// Appends a JSON string literal (quoted, escaped) to `out`. Shared by the registry
// dump and the bench JSON emitters.
void AppendJsonString(std::string& out, std::string_view s);

}  // namespace sdb::obs

#endif  // SMALLDB_SRC_OBS_METRICS_H_
