#include "src/obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace sdb::obs {

// --- histogram bucket bounds ---

std::uint64_t Histogram::BucketLowerBound(std::size_t i) {
  if (i < kSubBuckets) {
    return i;
  }
  if (i >= kBucketCount - 1) {
    return std::uint64_t{1} << kMaxMagnitude;  // overflow bucket
  }
  std::size_t rel = i - kSubBuckets;
  int msb = kSubBucketBits + static_cast<int>(rel / 4);
  std::uint64_t offset = rel % 4;
  return (std::uint64_t{4} + offset) << (msb - 2);
}

std::uint64_t Histogram::BucketUpperBound(std::size_t i) {
  if (i >= kBucketCount - 1) {
    return ~std::uint64_t{0};
  }
  return BucketLowerBound(i + 1);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.resize(kBucketCount);
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based), then walk the cumulative counts.
  double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) {
      continue;
    }
    std::uint64_t next = cumulative + buckets[i];
    if (static_cast<double>(next) >= rank) {
      double lower = static_cast<double>(Histogram::BucketLowerBound(i));
      double upper = static_cast<double>(
          std::min(Histogram::BucketUpperBound(i), max == 0 ? std::uint64_t{1} : max + 1));
      if (upper < lower) {
        upper = lower;
      }
      double within = rank - static_cast<double>(cumulative);
      double fraction = within / static_cast<double>(buckets[i]);
      return lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
    }
    cumulative = next;
  }
  return static_cast<double>(max);
}

// --- registry ---

namespace {

template <typename Map>
auto& GetOrCreate(std::mutex& mutex, Map& map, std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name),
                     std::make_unique<typename Map::mapped_type::element_type>())
             .first;
  }
  return *it->second;
}

template <typename Map>
auto* Find(std::mutex& mutex, const Map& map, std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex);
  auto it = map.find(name);
  return it == map.end() ? nullptr : it->second.get();
}

std::string FormatDouble(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.1f", v);
  return buffer;
}

}  // namespace

Counter& Registry::GetCounter(std::string_view name) {
  return GetOrCreate(mutex_, counters_, name);
}
Gauge& Registry::GetGauge(std::string_view name) { return GetOrCreate(mutex_, gauges_, name); }
Histogram& Registry::GetHistogram(std::string_view name) {
  return GetOrCreate(mutex_, histograms_, name);
}

const Counter* Registry::FindCounter(std::string_view name) const {
  return Find(mutex_, counters_, name);
}
const Gauge* Registry::FindGauge(std::string_view name) const {
  return Find(mutex_, gauges_, name);
}
const Histogram* Registry::FindHistogram(std::string_view name) const {
  return Find(mutex_, histograms_, name);
}

std::string Registry::DumpText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  std::size_t width = 0;
  for (const auto& [name, metric] : counters_) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, metric] : gauges_) {
    width = std::max(width, name.size());
  }
  for (const auto& [name, metric] : histograms_) {
    width = std::max(width, name.size());
  }
  auto pad = [width](const std::string& name) {
    return name + std::string(width - name.size() + 2, ' ');
  };
  for (const auto& [name, metric] : counters_) {
    out += pad(name) + std::to_string(metric->value()) + "\n";
  }
  for (const auto& [name, metric] : gauges_) {
    out += pad(name) + std::to_string(metric->value()) + "\n";
  }
  for (const auto& [name, metric] : histograms_) {
    HistogramSnapshot snap = metric->Snapshot();
    out += pad(name) + "count=" + std::to_string(snap.count) +
           " mean=" + FormatDouble(snap.mean()) + " p50=" + FormatDouble(snap.p50()) +
           " p95=" + FormatDouble(snap.p95()) + " p99=" + FormatDouble(snap.p99()) +
           " max=" + std::to_string(snap.max) + "\n";
  }
  return out;
}

void AppendJsonString(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string Registry::DumpJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, metric] : counters_) {
    if (!first) {
      out += ',';
    }
    first = false;
    AppendJsonString(out, name);
    out += ':' + std::to_string(metric->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, metric] : gauges_) {
    if (!first) {
      out += ',';
    }
    first = false;
    AppendJsonString(out, name);
    out += ':' + std::to_string(metric->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, metric] : histograms_) {
    if (!first) {
      out += ',';
    }
    first = false;
    HistogramSnapshot snap = metric->Snapshot();
    AppendJsonString(out, name);
    out += ":{\"count\":" + std::to_string(snap.count) +
           ",\"sum\":" + std::to_string(snap.sum) +
           ",\"mean\":" + FormatDouble(snap.mean()) +
           ",\"p50\":" + FormatDouble(snap.p50()) +
           ",\"p95\":" + FormatDouble(snap.p95()) +
           ",\"p99\":" + FormatDouble(snap.p99()) +
           ",\"max\":" + std::to_string(snap.max) + "}";
  }
  out += "}}";
  return out;
}

Registry& GlobalRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

}  // namespace sdb::obs
