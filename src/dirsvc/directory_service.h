// DirectoryService: a second complete application built on the core engine — the
// "file directories" database from the paper's opening list of operating-system
// databases ("records of user accounts, network name servers, network configuration
// information and file directories").
//
// Where the name server shows a tree of hash tables on the typed heap, this service
// shows a conventional strongly typed C++ structure (nested structs/maps) persisted
// through the same three-step update discipline. Its most interesting operation is
// Rename: a two-path single-shot transaction whose precondition spans both the source
// (must exist) and destination (parent must exist; must not clobber a non-empty
// directory) — demonstrating that the paper's "no multi-step transactions" restriction
// still covers realistic metadata operations, because the whole precondition is
// evaluated atomically under the update lock.
#ifndef SMALLDB_SRC_DIRSVC_DIRECTORY_SERVICE_H_
#define SMALLDB_SRC_DIRSVC_DIRECTORY_SERVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/database.h"
#include "src/pickle/pickle.h"
#include "src/pickle/traits.h"

namespace sdb::dirsvc {

enum class EntryType : std::uint8_t {
  kFile = 1,
  kDirectory = 2,
};

struct EntryAttrs {
  std::uint8_t type = 0;  // EntryType
  std::uint64_t size = 0;
  std::uint64_t mtime = 0;  // caller-supplied timestamp (the engine stays clock-free)
  std::string owner;

  SDB_PICKLE_FIELDS(EntryAttrs, type, size, mtime, owner)
  bool operator==(const EntryAttrs&) const = default;
};

// One directory level: name -> attributes, plus child directories.
struct DirNode {
  std::map<std::string, EntryAttrs, std::less<>> entries;          // files AND dirs
  std::map<std::string, std::shared_ptr<DirNode>, std::less<>> subdirs;

  SDB_PICKLE_FIELDS(DirNode, entries, subdirs)
};

struct DirectoryServiceOptions {
  DatabaseOptions db;
  const CostModel* cost = nullptr;
};

class DirectoryService final : public Application {
 public:
  static Result<std::unique_ptr<DirectoryService>> Open(DirectoryServiceOptions options);

  ~DirectoryService() override = default;

  // --- enquiries ---

  Result<EntryAttrs> Stat(std::string_view path);

  // Entry names in the directory at `path`, sorted ("" = root).
  Result<std::vector<std::string>> ReadDir(std::string_view path);

  bool Exists(std::string_view path);

  // --- updates (single-shot transactions) ---

  // Creates a directory. Precondition: parent exists, name free.
  Status MkDir(std::string_view path, std::string_view owner, std::uint64_t mtime);

  // Creates a file. Precondition: parent exists, name free.
  Status CreateFile(std::string_view path, std::string_view owner, std::uint64_t size,
                    std::uint64_t mtime);

  // Updates a file's size/mtime. Precondition: the file exists.
  Status SetAttrs(std::string_view path, std::uint64_t size, std::uint64_t mtime);

  // Removes a file, or an EMPTY directory. Precondition: exists (and empty if a dir).
  Status Unlink(std::string_view path);

  // Atomically moves `from` to `to` (files or whole directory subtrees).
  // Preconditions: `from` exists; `to`'s parent exists; `to` is free or replaceable
  // (a file, or an empty directory being replaced by a directory); `to` is not inside
  // `from`'s subtree. One log entry; all-or-nothing.
  Status Rename(std::string_view from, std::string_view to);

  Status Checkpoint() { return db_->Checkpoint(); }
  Database& database() { return *db_; }
  std::uint64_t entry_count();

  // --- Application interface ---
  Status ResetState() override;
  Result<Bytes> SerializeState() override;
  Status DeserializeState(ByteSpan data) override;
  Status ApplyUpdate(ByteSpan record) override;

 private:
  explicit DirectoryService(DirectoryServiceOptions options)
      : options_(std::move(options)) {}

  // Navigation within the in-memory tree (no locking: callers hold the engine lock).
  DirNode* WalkDir(const std::vector<std::string>& parts);
  Result<DirNode*> ParentOf(const std::vector<std::string>& parts);

  DirectoryServiceOptions options_;
  std::shared_ptr<DirNode> root_ = std::make_shared<DirNode>();
  std::unique_ptr<Database> db_;
};

}  // namespace sdb::dirsvc

#endif  // SMALLDB_SRC_DIRSVC_DIRECTORY_SERVICE_H_
