#include "src/dirsvc/directory_service_rpc.h"

namespace sdb::dirsvc {

void RegisterDirectoryService(rpc::RpcServer& rpc_server, DirectoryService& service) {
  rpc::RegisterMethod<StatRequest, StatResponse>(
      rpc_server, std::string(kDirectoryService), "Stat",
      [&service](const StatRequest& request) -> Result<StatResponse> {
        SDB_ASSIGN_OR_RETURN(EntryAttrs attrs, service.Stat(request.path));
        return StatResponse{attrs};
      });
  rpc::RegisterMethod<ReadDirRequest, ReadDirResponse>(
      rpc_server, std::string(kDirectoryService), "ReadDir",
      [&service](const ReadDirRequest& request) -> Result<ReadDirResponse> {
        SDB_ASSIGN_OR_RETURN(std::vector<std::string> names, service.ReadDir(request.path));
        return ReadDirResponse{std::move(names)};
      });
  rpc::RegisterMethod<MkDirRequest, DirAck>(
      rpc_server, std::string(kDirectoryService), "MkDir",
      [&service](const MkDirRequest& request) -> Result<DirAck> {
        SDB_RETURN_IF_ERROR(service.MkDir(request.path, request.owner, request.mtime));
        return DirAck{};
      });
  rpc::RegisterMethod<CreateFileRequest, DirAck>(
      rpc_server, std::string(kDirectoryService), "CreateFile",
      [&service](const CreateFileRequest& request) -> Result<DirAck> {
        SDB_RETURN_IF_ERROR(
            service.CreateFile(request.path, request.owner, request.size, request.mtime));
        return DirAck{};
      });
  rpc::RegisterMethod<SetAttrsRequest, DirAck>(
      rpc_server, std::string(kDirectoryService), "SetAttrs",
      [&service](const SetAttrsRequest& request) -> Result<DirAck> {
        SDB_RETURN_IF_ERROR(service.SetAttrs(request.path, request.size, request.mtime));
        return DirAck{};
      });
  rpc::RegisterMethod<UnlinkRequest, DirAck>(
      rpc_server, std::string(kDirectoryService), "Unlink",
      [&service](const UnlinkRequest& request) -> Result<DirAck> {
        SDB_RETURN_IF_ERROR(service.Unlink(request.path));
        return DirAck{};
      });
  rpc::RegisterMethod<RenameRequest, DirAck>(
      rpc_server, std::string(kDirectoryService), "Rename",
      [&service](const RenameRequest& request) -> Result<DirAck> {
        SDB_RETURN_IF_ERROR(service.Rename(request.from, request.to));
        return DirAck{};
      });
}

Result<EntryAttrs> DirectoryServiceClient::Stat(std::string_view path) {
  SDB_ASSIGN_OR_RETURN(StatResponse response,
                       (rpc::CallMethod<StatRequest, StatResponse>(
                           channel_, kDirectoryService, "Stat",
                           StatRequest{std::string(path)})));
  return response.attrs;
}

Result<std::vector<std::string>> DirectoryServiceClient::ReadDir(std::string_view path) {
  SDB_ASSIGN_OR_RETURN(ReadDirResponse response,
                       (rpc::CallMethod<ReadDirRequest, ReadDirResponse>(
                           channel_, kDirectoryService, "ReadDir",
                           ReadDirRequest{std::string(path)})));
  return response.names;
}

Status DirectoryServiceClient::MkDir(std::string_view path, std::string_view owner,
                                     std::uint64_t mtime) {
  return rpc::CallMethod<MkDirRequest, DirAck>(
             channel_, kDirectoryService, "MkDir",
             MkDirRequest{std::string(path), std::string(owner), mtime})
      .status();
}

Status DirectoryServiceClient::CreateFile(std::string_view path, std::string_view owner,
                                          std::uint64_t size, std::uint64_t mtime) {
  return rpc::CallMethod<CreateFileRequest, DirAck>(
             channel_, kDirectoryService, "CreateFile",
             CreateFileRequest{std::string(path), std::string(owner), size, mtime})
      .status();
}

Status DirectoryServiceClient::SetAttrs(std::string_view path, std::uint64_t size,
                                        std::uint64_t mtime) {
  return rpc::CallMethod<SetAttrsRequest, DirAck>(
             channel_, kDirectoryService, "SetAttrs",
             SetAttrsRequest{std::string(path), size, mtime})
      .status();
}

Status DirectoryServiceClient::Unlink(std::string_view path) {
  return rpc::CallMethod<UnlinkRequest, DirAck>(channel_, kDirectoryService, "Unlink",
                                                UnlinkRequest{std::string(path)})
      .status();
}

Status DirectoryServiceClient::Rename(std::string_view from, std::string_view to) {
  return rpc::CallMethod<RenameRequest, DirAck>(
             channel_, kDirectoryService, "Rename",
             RenameRequest{std::string(from), std::string(to)})
      .status();
}

}  // namespace sdb::dirsvc
