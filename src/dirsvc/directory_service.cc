#include "src/dirsvc/directory_service.h"

#include "src/nameserver/name_tree.h"  // SplitPath

namespace sdb::dirsvc {
namespace {

using ns::SplitPath;

enum class Op : std::uint8_t {
  kMkDir = 1,
  kCreateFile = 2,
  kSetAttrs = 3,
  kUnlink = 4,
  kRename = 5,
};

// Every mutation pickles into one of these (the parameters of the update).
struct DirUpdate {
  std::uint8_t op = 0;
  std::string path;
  std::string to_path;  // Rename only
  EntryAttrs attrs;     // creation/SetAttrs parameters

  SDB_PICKLE_FIELDS(DirUpdate, op, path, to_path, attrs)
};

}  // namespace

Result<std::unique_ptr<DirectoryService>> DirectoryService::Open(
    DirectoryServiceOptions options) {
  std::unique_ptr<DirectoryService> service(new DirectoryService(std::move(options)));
  SDB_ASSIGN_OR_RETURN(service->db_, Database::Open(*service, service->options_.db));
  return service;
}

DirNode* DirectoryService::WalkDir(const std::vector<std::string>& parts) {
  DirNode* node = root_.get();
  for (const std::string& part : parts) {
    if (options_.cost != nullptr) {
      options_.cost->ChargeExplore(1);
    }
    auto it = node->subdirs.find(part);
    if (it == node->subdirs.end()) {
      return nullptr;
    }
    node = it->second.get();
  }
  return node;
}

Result<DirNode*> DirectoryService::ParentOf(const std::vector<std::string>& parts) {
  if (parts.empty()) {
    return InvalidArgumentError("the root has no parent");
  }
  std::vector<std::string> parent_parts(parts.begin(), parts.end() - 1);
  DirNode* parent = WalkDir(parent_parts);
  if (parent == nullptr) {
    return NotFoundError("no such directory");
  }
  return parent;
}

// --- enquiries ---

Result<EntryAttrs> DirectoryService::Stat(std::string_view path) {
  Result<EntryAttrs> out = NotFoundError("");
  SDB_RETURN_IF_ERROR(db_->Enquire([this, path, &out] {
    out = [&]() -> Result<EntryAttrs> {
      SDB_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
      if (parts.empty()) {
        return InvalidArgumentError("cannot stat the root");
      }
      SDB_ASSIGN_OR_RETURN(DirNode * parent, ParentOf(parts));
      auto it = parent->entries.find(parts.back());
      if (it == parent->entries.end()) {
        return NotFoundError("no such entry: " + std::string(path));
      }
      return it->second;
    }();
    return OkStatus();
  }));
  return out;
}

Result<std::vector<std::string>> DirectoryService::ReadDir(std::string_view path) {
  Result<std::vector<std::string>> out = NotFoundError("");
  SDB_RETURN_IF_ERROR(db_->Enquire([this, path, &out] {
    out = [&]() -> Result<std::vector<std::string>> {
      SDB_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
      DirNode* dir = WalkDir(parts);
      if (dir == nullptr) {
        return NotFoundError("no such directory: " + std::string(path));
      }
      std::vector<std::string> names;
      names.reserve(dir->entries.size());
      for (const auto& [name, attrs] : dir->entries) {
        names.push_back(name);
      }
      return names;
    }();
    return OkStatus();
  }));
  return out;
}

bool DirectoryService::Exists(std::string_view path) {
  return Stat(path).ok();
}

// --- updates ---

Status DirectoryService::MkDir(std::string_view path, std::string_view owner,
                               std::uint64_t mtime) {
  return db_->Update([&]() -> Result<Bytes> {
    SDB_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
    if (parts.empty()) {
      return InvalidArgumentError("the root already exists");
    }
    SDB_ASSIGN_OR_RETURN(DirNode * parent, ParentOf(parts));
    if (parent->entries.count(parts.back()) != 0) {
      return AlreadyExistsError("entry exists: " + std::string(path));
    }
    DirUpdate update;
    update.op = static_cast<std::uint8_t>(Op::kMkDir);
    update.path = std::string(path);
    update.attrs = EntryAttrs{static_cast<std::uint8_t>(EntryType::kDirectory), 0, mtime,
                              std::string(owner)};
    return PickleWrite(update, options_.cost);
  });
}

Status DirectoryService::CreateFile(std::string_view path, std::string_view owner,
                                    std::uint64_t size, std::uint64_t mtime) {
  return db_->Update([&]() -> Result<Bytes> {
    SDB_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
    if (parts.empty()) {
      return InvalidArgumentError("invalid file path");
    }
    SDB_ASSIGN_OR_RETURN(DirNode * parent, ParentOf(parts));
    if (parent->entries.count(parts.back()) != 0) {
      return AlreadyExistsError("entry exists: " + std::string(path));
    }
    DirUpdate update;
    update.op = static_cast<std::uint8_t>(Op::kCreateFile);
    update.path = std::string(path);
    update.attrs = EntryAttrs{static_cast<std::uint8_t>(EntryType::kFile), size, mtime,
                              std::string(owner)};
    return PickleWrite(update, options_.cost);
  });
}

Status DirectoryService::SetAttrs(std::string_view path, std::uint64_t size,
                                  std::uint64_t mtime) {
  return db_->Update([&]() -> Result<Bytes> {
    SDB_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
    if (parts.empty()) {
      return InvalidArgumentError("invalid file path");
    }
    SDB_ASSIGN_OR_RETURN(DirNode * parent, ParentOf(parts));
    auto it = parent->entries.find(parts.back());
    if (it == parent->entries.end()) {
      return NotFoundError("no such entry: " + std::string(path));
    }
    if (it->second.type != static_cast<std::uint8_t>(EntryType::kFile)) {
      return FailedPreconditionError("not a file: " + std::string(path));
    }
    DirUpdate update;
    update.op = static_cast<std::uint8_t>(Op::kSetAttrs);
    update.path = std::string(path);
    update.attrs.size = size;
    update.attrs.mtime = mtime;
    return PickleWrite(update, options_.cost);
  });
}

Status DirectoryService::Unlink(std::string_view path) {
  return db_->Update([&]() -> Result<Bytes> {
    SDB_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
    if (parts.empty()) {
      return InvalidArgumentError("cannot unlink the root");
    }
    SDB_ASSIGN_OR_RETURN(DirNode * parent, ParentOf(parts));
    auto it = parent->entries.find(parts.back());
    if (it == parent->entries.end()) {
      return NotFoundError("no such entry: " + std::string(path));
    }
    if (it->second.type == static_cast<std::uint8_t>(EntryType::kDirectory)) {
      auto sub = parent->subdirs.find(parts.back());
      if (sub != parent->subdirs.end() &&
          (!sub->second->entries.empty() || !sub->second->subdirs.empty())) {
        return FailedPreconditionError("directory not empty: " + std::string(path));
      }
    }
    DirUpdate update;
    update.op = static_cast<std::uint8_t>(Op::kUnlink);
    update.path = std::string(path);
    return PickleWrite(update, options_.cost);
  });
}

Status DirectoryService::Rename(std::string_view from, std::string_view to) {
  return db_->Update([&]() -> Result<Bytes> {
    // The two-path precondition, all evaluated atomically under the update lock.
    SDB_ASSIGN_OR_RETURN(std::vector<std::string> from_parts, SplitPath(from));
    SDB_ASSIGN_OR_RETURN(std::vector<std::string> to_parts, SplitPath(to));
    if (from_parts.empty() || to_parts.empty()) {
      return InvalidArgumentError("cannot rename the root");
    }
    if (from_parts == to_parts) {
      return InvalidArgumentError("rename source equals destination");
    }
    // `to` inside `from`'s subtree would orphan the subtree.
    if (to_parts.size() > from_parts.size() &&
        std::equal(from_parts.begin(), from_parts.end(), to_parts.begin())) {
      return FailedPreconditionError("cannot move a directory into itself");
    }
    SDB_ASSIGN_OR_RETURN(DirNode * from_parent, ParentOf(from_parts));
    auto source = from_parent->entries.find(from_parts.back());
    if (source == from_parent->entries.end()) {
      return NotFoundError("no such entry: " + std::string(from));
    }
    SDB_ASSIGN_OR_RETURN(DirNode * to_parent, ParentOf(to_parts));
    auto target = to_parent->entries.find(to_parts.back());
    if (target != to_parent->entries.end()) {
      bool source_is_dir =
          source->second.type == static_cast<std::uint8_t>(EntryType::kDirectory);
      bool target_is_dir =
          target->second.type == static_cast<std::uint8_t>(EntryType::kDirectory);
      if (source_is_dir != target_is_dir) {
        return FailedPreconditionError("rename type mismatch at " + std::string(to));
      }
      if (target_is_dir) {
        auto sub = to_parent->subdirs.find(to_parts.back());
        if (sub != to_parent->subdirs.end() &&
            (!sub->second->entries.empty() || !sub->second->subdirs.empty())) {
          return FailedPreconditionError("destination directory not empty: " +
                                         std::string(to));
        }
      }
    }
    DirUpdate update;
    update.op = static_cast<std::uint8_t>(Op::kRename);
    update.path = std::string(from);
    update.to_path = std::string(to);
    return PickleWrite(update, options_.cost);
  });
}

std::uint64_t DirectoryService::entry_count() {
  std::uint64_t count = 0;
  (void)db_->Enquire([this, &count] {
    std::vector<const DirNode*> stack{root_.get()};
    while (!stack.empty()) {
      const DirNode* node = stack.back();
      stack.pop_back();
      count += node->entries.size();
      for (const auto& [name, child] : node->subdirs) {
        stack.push_back(child.get());
      }
    }
    return OkStatus();
  });
  return count;
}

// --- Application interface ---

Status DirectoryService::ResetState() {
  root_ = std::make_shared<DirNode>();
  return OkStatus();
}

Result<Bytes> DirectoryService::SerializeState() {
  return PickleWrite(root_, options_.cost);
}

Status DirectoryService::DeserializeState(ByteSpan data) {
  SDB_ASSIGN_OR_RETURN(root_, PickleRead<std::shared_ptr<DirNode>>(data, options_.cost));
  if (root_ == nullptr) {
    root_ = std::make_shared<DirNode>();
  }
  return OkStatus();
}

Status DirectoryService::ApplyUpdate(ByteSpan record) {
  SDB_ASSIGN_OR_RETURN(DirUpdate update, PickleRead<DirUpdate>(record, options_.cost));
  SDB_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(update.path));
  if (parts.empty()) {
    return CorruptionError("logged update targets the root");
  }
  SDB_ASSIGN_OR_RETURN(DirNode * parent, ParentOf(parts));
  const std::string& name = parts.back();

  switch (static_cast<Op>(update.op)) {
    case Op::kMkDir:
      parent->entries[name] = update.attrs;
      parent->subdirs[name] = std::make_shared<DirNode>();
      return OkStatus();
    case Op::kCreateFile:
      parent->entries[name] = update.attrs;
      return OkStatus();
    case Op::kSetAttrs: {
      auto it = parent->entries.find(name);
      if (it == parent->entries.end()) {
        return CorruptionError("SetAttrs target vanished during replay");
      }
      it->second.size = update.attrs.size;
      it->second.mtime = update.attrs.mtime;
      return OkStatus();
    }
    case Op::kUnlink:
      parent->entries.erase(name);
      parent->subdirs.erase(name);
      return OkStatus();
    case Op::kRename: {
      SDB_ASSIGN_OR_RETURN(std::vector<std::string> to_parts, SplitPath(update.to_path));
      SDB_ASSIGN_OR_RETURN(DirNode * to_parent, ParentOf(to_parts));
      auto it = parent->entries.find(name);
      if (it == parent->entries.end()) {
        return CorruptionError("rename source vanished during replay");
      }
      to_parent->entries[to_parts.back()] = it->second;
      auto sub = parent->subdirs.find(name);
      if (sub != parent->subdirs.end()) {
        to_parent->subdirs[to_parts.back()] = sub->second;
        parent->subdirs.erase(name);  // invalidates `sub`
      } else {
        to_parent->subdirs.erase(to_parts.back());
      }
      // Re-find: `to_parent` insertion cannot invalidate `parent`'s map iterators
      // unless they alias; erase by key to be safe when parent == to_parent.
      parent = nullptr;
      SDB_ASSIGN_OR_RETURN(DirNode * from_parent_again, ParentOf(parts));
      from_parent_again->entries.erase(name);
      return OkStatus();
    }
  }
  return CorruptionError("unknown directory update op");
}

}  // namespace sdb::dirsvc
