// RPC surface for the directory service — like every database in the paper's opening
// list, file-directory metadata is served to remote clients over strongly typed RPC.
#ifndef SMALLDB_SRC_DIRSVC_DIRECTORY_SERVICE_RPC_H_
#define SMALLDB_SRC_DIRSVC_DIRECTORY_SERVICE_RPC_H_

#include "src/dirsvc/directory_service.h"
#include "src/rpc/client.h"
#include "src/rpc/server.h"

namespace sdb::dirsvc {

inline constexpr std::string_view kDirectoryService = "DirectoryService";

struct StatRequest {
  std::string path;
  SDB_PICKLE_FIELDS(StatRequest, path)
};
struct StatResponse {
  EntryAttrs attrs;
  SDB_PICKLE_FIELDS(StatResponse, attrs)
};
struct ReadDirRequest {
  std::string path;
  SDB_PICKLE_FIELDS(ReadDirRequest, path)
};
struct ReadDirResponse {
  std::vector<std::string> names;
  SDB_PICKLE_FIELDS(ReadDirResponse, names)
};
struct MkDirRequest {
  std::string path;
  std::string owner;
  std::uint64_t mtime = 0;
  SDB_PICKLE_FIELDS(MkDirRequest, path, owner, mtime)
};
struct CreateFileRequest {
  std::string path;
  std::string owner;
  std::uint64_t size = 0;
  std::uint64_t mtime = 0;
  SDB_PICKLE_FIELDS(CreateFileRequest, path, owner, size, mtime)
};
struct SetAttrsRequest {
  std::string path;
  std::uint64_t size = 0;
  std::uint64_t mtime = 0;
  SDB_PICKLE_FIELDS(SetAttrsRequest, path, size, mtime)
};
struct UnlinkRequest {
  std::string path;
  SDB_PICKLE_FIELDS(UnlinkRequest, path)
};
struct RenameRequest {
  std::string from;
  std::string to;
  SDB_PICKLE_FIELDS(RenameRequest, from, to)
};
struct DirAck {
  std::uint8_t ok = 1;
  SDB_PICKLE_FIELDS(DirAck, ok)
};

// Registers every DirectoryService method on `rpc_server`.
void RegisterDirectoryService(rpc::RpcServer& rpc_server, DirectoryService& service);

class DirectoryServiceClient {
 public:
  explicit DirectoryServiceClient(rpc::Channel& channel) : channel_(channel) {}

  Result<EntryAttrs> Stat(std::string_view path);
  Result<std::vector<std::string>> ReadDir(std::string_view path);
  Status MkDir(std::string_view path, std::string_view owner, std::uint64_t mtime);
  Status CreateFile(std::string_view path, std::string_view owner, std::uint64_t size,
                    std::uint64_t mtime);
  Status SetAttrs(std::string_view path, std::uint64_t size, std::uint64_t mtime);
  Status Unlink(std::string_view path);
  Status Rename(std::string_view from, std::string_view to);

 private:
  rpc::Channel& channel_;
};

}  // namespace sdb::dirsvc

#endif  // SMALLDB_SRC_DIRSVC_DIRECTORY_SERVICE_RPC_H_
