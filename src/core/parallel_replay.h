// ParallelReplayer: multi-core redo-log replay.
//
// The paper replays the log serially at restart ("about 20 msecs per log entry");
// at any real scale, restart time IS the availability story. A REDO-only log admits
// dependency-free parallel replay: two updates commute unless they touch the same
// key, so one sequential pass over the log can partition entries into key-disjoint
// batches (same key => same batch, per-key log order preserved) and a bounded pool
// of workers can apply the batches concurrently — the final state is identical to
// serial replay by construction.
//
// Protocol (three phases):
//   1. Partition pass (caller thread, sequential): the log is read in order — the
//      disk access pattern is unchanged — and each entry is routed to the batch
//      owning hash(key). Entries whose key cannot be extracted force the owning
//      application into a serial fallback (applied in log order at Finish).
//   2. Batch apply (workers): each batch applies its entries, in log order, into a
//      private ReplayBatch context obtained from the application — never into the
//      live state. Any worker failure sets a shared flag; the other workers stop at
//      the next entry boundary and Finish returns the first error in task order.
//   3. Merge (caller thread, only if every batch succeeded): per-batch effects are
//      folded into the application state. Because batches are key-disjoint, merge
//      order cannot change the result; because nothing merged before all batches
//      succeeded, a failed replay never leaves a partially-applied batch behind.
//
// Multiple applications can register with one replayer so composed engines (the
// sharded ensemble) share a single bounded pool: the unit of parallelism is then
// (application, key-batch), and one hot shard no longer bounds recovery time.
//
// threads <= 1 is a strict serial mode: Add() applies straight through
// Application::ApplyUpdate in log order, byte-for-byte the pre-parallel behaviour —
// the deterministic fallback the simulation harness requires.
#ifndef SMALLDB_SRC_CORE_PARALLEL_REPLAY_H_
#define SMALLDB_SRC_CORE_PARALLEL_REPLAY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/common/status.h"

namespace sdb {

class Application;

struct ParallelReplayOptions {
  // Worker pool bound. <= 1 replays serially on the calling thread (deterministic).
  int threads = 1;

  // Key-batch granularity: each application partitions into up to
  // threads * batches_per_thread batches. More batches smooth skew (a hot batch
  // strands less work behind it) at the cost of more merge contexts.
  int batches_per_thread = 4;

  // Timing source for the stats below. Null uses a process WallClock.
  Clock* clock = nullptr;
};

struct ParallelReplayStats {
  std::uint64_t entries = 0;       // records fed through Add()
  std::uint64_t batches = 0;       // apply tasks dispatched (0 in serial mode)
  std::uint64_t threads_used = 0;  // workers actually spawned (1 in serial mode)
  // Wall time of the sequential partition pass: first Add() to dispatch. Includes
  // the log read itself — the pass is the replay pipeline's sequential fraction.
  Micros partition_pass_micros = 0;
  // Worker apply time summed across the pool — aggregate CPU, not wall clock.
  Micros batch_apply_micros = 0;
  // Applications that fell back to in-order apply (no batch support, or a record
  // whose key could not be extracted).
  std::uint64_t serial_fallbacks = 0;
};

class ParallelReplayer {
 public:
  explicit ParallelReplayer(ParallelReplayOptions options);
  ~ParallelReplayer();
  ParallelReplayer(const ParallelReplayer&) = delete;
  ParallelReplayer& operator=(const ParallelReplayer&) = delete;

  // Registers an application; the returned index names it in Add(). All
  // registrations must precede the first Add().
  std::size_t AddApplication(Application& app);

  // Feeds one log entry, in log order (across Add calls, per application). Serial
  // mode applies immediately; parallel mode buffers for Finish(). The span need only
  // be valid for the duration of the call.
  Status Add(std::size_t app_index, ByteSpan record);

  // Parallel mode: dispatches batches, joins the pool, merges effects. A worker
  // failure aborts without merging anything and returns the first error in task
  // order. Serial mode: no-op. Must be called exactly once, after the last Add.
  Status Finish();

  const ParallelReplayStats& stats() const { return stats_; }

 private:
  struct PerApp;

  ParallelReplayOptions options_;
  WallClock wall_clock_;
  Clock* clock_;
  std::vector<PerApp> apps_;
  ParallelReplayStats stats_;
  Micros pass_start_ = -1;  // first Add() timestamp (parallel mode)
  bool finished_ = false;
};

}  // namespace sdb

#endif  // SMALLDB_SRC_CORE_PARALLEL_REPLAY_H_
