#include "src/core/shared_log.h"

#include <algorithm>
#include <charconv>

#include "src/core/log_reader.h"
#include "src/core/parallel_replay.h"
#include "src/pickle/pickle.h"
#include "src/pickle/traits.h"

namespace sdb {
namespace {

struct PartitionMeta {
  std::uint64_t checkpoint_version = 0;
  std::uint64_t replay_from = 0;
  SDB_PICKLE_FIELDS(PartitionMeta, checkpoint_version, replay_from)
};

std::optional<std::uint64_t> ParseDecimal(std::string_view text) {
  std::uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

}  // namespace

// The atomic-rename-committed record binding the whole ensemble together.
struct SharedLogDatabase::Manifest {
  std::uint64_t log_generation = 1;
  std::vector<PartitionMeta> partitions;
  SDB_PICKLE_FIELDS(Manifest, log_generation, partitions)
};

SharedLogDatabase::SharedLogDatabase(SharedLogOptions options)
    : options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock : &wall_clock_) {}

SharedLogDatabase::~SharedLogDatabase() {
  if (log_ != nullptr) {
    (void)log_->Close();
  }
}

std::string SharedLogDatabase::LogPath(std::uint64_t generation) const {
  return JoinPath(options_.dir, "logfile" + std::to_string(generation));
}

std::string SharedLogDatabase::CheckpointPath(std::size_t p, std::uint64_t version) const {
  return JoinPath(options_.dir,
                  "p" + std::to_string(p) + ".checkpoint" + std::to_string(version));
}

std::string SharedLogDatabase::ManifestPath() const {
  return JoinPath(options_.dir, "manifest");
}

Result<std::unique_ptr<SharedLogDatabase>> SharedLogDatabase::Open(
    std::vector<Application*> apps, SharedLogOptions options) {
  if (options.vfs == nullptr || options.dir.empty() || apps.empty()) {
    return InvalidArgumentError("SharedLogOptions requires vfs, dir and >= 1 app");
  }
  std::unique_ptr<SharedLogDatabase> db(new SharedLogDatabase(std::move(options)));
  SDB_RETURN_IF_ERROR(db->Recover(apps).WithContext("opening shared-log ensemble"));
  return db;
}

Status SharedLogDatabase::WriteManifest() {
  Manifest manifest;
  manifest.log_generation = log_generation_;
  manifest.partitions.reserve(partitions_.size());
  for (const Partition& partition : partitions_) {
    manifest.partitions.push_back(
        PartitionMeta{partition.checkpoint_version, partition.replay_from});
  }
  Bytes bytes = PickleWrite(manifest);
  return AtomicWriteFile(*options_.vfs, options_.dir, ManifestPath(), AsSpan(bytes));
}

Result<std::unique_ptr<LogWriter>> SharedLogDatabase::OpenLogForAppend(
    std::uint64_t generation) {
  SDB_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                       options_.vfs->Open(LogPath(generation), OpenMode::kReadWrite));
  SDB_ASSIGN_OR_RETURN(std::uint64_t size, file->Size());
  if (options_.log_writer.pad_to_page_boundary &&
      size % options_.log_writer.page_size != 0) {
    size = (size / options_.log_writer.page_size) * options_.log_writer.page_size;
    SDB_RETURN_IF_ERROR(file->Truncate(size));
    SDB_RETURN_IF_ERROR(file->Sync());
  }
  return std::make_unique<LogWriter>(std::move(file), size, options_.log_writer);
}

Status SharedLogDatabase::Recover(std::vector<Application*>& apps) {
  Vfs& vfs = *options_.vfs;
  SDB_RETURN_IF_ERROR(vfs.CreateDir(options_.dir));

  partitions_.resize(apps.size());
  for (std::size_t p = 0; p < apps.size(); ++p) {
    partitions_[p].app = apps[p];
    partitions_[p].lock = std::make_unique<SueLock>();
  }

  SDB_ASSIGN_OR_RETURN(bool has_manifest, vfs.Exists(ManifestPath()));
  if (!has_manifest) {
    // Fresh ensemble: version-1 checkpoints of the empty states, empty log,
    // then the manifest commit.
    for (std::size_t p = 0; p < partitions_.size(); ++p) {
      SDB_RETURN_IF_ERROR(partitions_[p].app->ResetState());
      SDB_ASSIGN_OR_RETURN(Bytes snapshot, partitions_[p].app->SerializeState());
      SDB_RETURN_IF_ERROR(WriteWholeFile(vfs, CheckpointPath(p, 1), AsSpan(snapshot)));
      partitions_[p].checkpoint_version = 1;
      partitions_[p].replay_from = 0;
    }
    SDB_RETURN_IF_ERROR(WriteWholeFile(vfs, LogPath(1), ByteSpan{}));
    SDB_RETURN_IF_ERROR(vfs.SyncDir(options_.dir));
    SDB_RETURN_IF_ERROR(WriteManifest());
  } else {
    SDB_ASSIGN_OR_RETURN(Bytes manifest_bytes, ReadWholeFile(vfs, ManifestPath()));
    SDB_ASSIGN_OR_RETURN(Manifest manifest, PickleRead<Manifest>(AsSpan(manifest_bytes)));
    if (manifest.partitions.size() != partitions_.size()) {
      return InvalidArgumentError(
          "partition count mismatch: directory has " +
          std::to_string(manifest.partitions.size()) + ", caller supplied " +
          std::to_string(partitions_.size()));
    }
    log_generation_ = manifest.log_generation;
    for (std::size_t p = 0; p < partitions_.size(); ++p) {
      partitions_[p].checkpoint_version = manifest.partitions[p].checkpoint_version;
      partitions_[p].replay_from = manifest.partitions[p].replay_from;
      SDB_ASSIGN_OR_RETURN(
          Bytes snapshot,
          ReadWholeFile(vfs, CheckpointPath(p, partitions_[p].checkpoint_version)));
      SDB_RETURN_IF_ERROR(partitions_[p].app->ResetState());
      SDB_RETURN_IF_ERROR(partitions_[p].app->DeserializeState(AsSpan(snapshot))
                              .WithContext("partition " + std::to_string(p)));
    }

    // Replay the shared log: route each entry to its partition, skipping entries the
    // partition's checkpoint already covers. All partitions share one replayer (and
    // thus one worker pool); with recovery_threads = 1 entries apply serially in
    // shared-log order, exactly as before.
    LogReplayOptions replay_options;
    replay_options.page_size = options_.log_replay_page_size;
    ParallelReplayOptions parallel_options;
    parallel_options.threads = options_.recovery_threads;
    parallel_options.clock = clock_;
    ParallelReplayer replayer(parallel_options);
    for (Partition& partition : partitions_) {
      (void)replayer.AddApplication(*partition.app);
    }
    SDB_ASSIGN_OR_RETURN(std::unique_ptr<File> log_file,
                         vfs.Open(LogPath(log_generation_), OpenMode::kRead));
    SDB_ASSIGN_OR_RETURN(
        LogReplayStats replay_stats,
        ReplayLogWithOffsets(
            *log_file, replay_options,
            [this, &replayer](std::uint64_t offset, ByteSpan payload) -> Status {
              ByteReader in(payload);
              SDB_ASSIGN_OR_RETURN(std::uint64_t pid, in.ReadVarint());
              if (pid >= partitions_.size()) {
                return CorruptionError("log entry for unknown partition " +
                                       std::to_string(pid));
              }
              SDB_ASSIGN_OR_RETURN(ByteSpan record,
                                   in.ReadBytes(in.remaining()));
              if (offset < partitions_[pid].replay_from) {
                std::lock_guard<std::mutex> stats_lock(stats_mutex_);
                ++stats_.replay_skipped_entries;
                return OkStatus();
              }
              {
                std::lock_guard<std::mutex> stats_lock(stats_mutex_);
                ++stats_.replayed_entries;
              }
              return replayer.Add(pid, record);
            }));
    (void)replay_stats;
    SDB_RETURN_IF_ERROR(log_file->Close());
    SDB_RETURN_IF_ERROR(replayer.Finish().WithContext("replaying shared log"));
  }

  // Delete stray files from interrupted checkpoints/rotations (anything versioned but
  // not referenced by the manifest).
  SDB_ASSIGN_OR_RETURN(std::vector<std::string> names, vfs.List(options_.dir));
  for (const std::string& name : names) {
    bool stale = false;
    if (name.rfind("logfile", 0) == 0) {
      std::optional<std::uint64_t> generation = ParseDecimal(name.substr(7));
      stale = generation.has_value() && *generation != log_generation_;
    } else if (name[0] == 'p') {
      std::size_t dot = name.find(".checkpoint");
      if (dot != std::string::npos) {
        std::optional<std::uint64_t> pid = ParseDecimal(name.substr(1, dot - 1));
        std::optional<std::uint64_t> version = ParseDecimal(name.substr(dot + 11));
        stale = pid.has_value() && version.has_value() &&
                (*pid >= partitions_.size() ||
                 *version != partitions_[*pid].checkpoint_version);
      }
    } else if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      stale = true;
    }
    if (stale) {
      SDB_RETURN_IF_ERROR(vfs.Delete(JoinPath(options_.dir, name)));
    }
  }
  SDB_RETURN_IF_ERROR(vfs.SyncDir(options_.dir));

  SDB_ASSIGN_OR_RETURN(log_, OpenLogForAppend(log_generation_));
  return OkStatus();
}

Status SharedLogDatabase::Update(std::size_t p,
                                 const std::function<Result<Bytes>()>& prepare) {
  if (p >= partitions_.size()) {
    return InvalidArgumentError("partition index out of range");
  }
  Partition& partition = partitions_[p];
  SueLock::UpdateGuard guard(*partition.lock);

  SDB_ASSIGN_OR_RETURN(Bytes record, prepare());

  {
    std::lock_guard<std::mutex> log_lock(log_mutex_);
    ByteWriter framed;
    framed.PutVarint(p);
    framed.PutBytes(AsSpan(record));
    SDB_RETURN_IF_ERROR(log_->Append(AsSpan(framed.buffer())));
    SDB_RETURN_IF_ERROR(log_->Commit());  // the shared commit point
  }

  guard.Upgrade();
  SDB_RETURN_IF_ERROR(
      partition.app->ApplyUpdate(AsSpan(record)).WithContext("applying committed update"));
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.updates;
  }
  return OkStatus();
}

Status SharedLogDatabase::Enquire(std::size_t p, const std::function<Status()>& enquiry) {
  if (p >= partitions_.size()) {
    return InvalidArgumentError("partition index out of range");
  }
  SueLock::SharedGuard guard(*partitions_[p].lock);
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.enquiries;
  }
  return enquiry();
}

Status SharedLogDatabase::Checkpoint(std::size_t p) {
  if (p >= partitions_.size()) {
    return InvalidArgumentError("partition index out of range");
  }
  Partition& partition = partitions_[p];
  SueLock::UpdateGuard guard(*partition.lock);

  SDB_ASSIGN_OR_RETURN(Bytes snapshot, partition.app->SerializeState());
  std::uint64_t new_version = partition.checkpoint_version + 1;
  SDB_RETURN_IF_ERROR(
      WriteWholeFile(*options_.vfs, CheckpointPath(p, new_version), AsSpan(snapshot)));
  SDB_RETURN_IF_ERROR(options_.vfs->SyncDir(options_.dir));

  std::uint64_t old_version;
  {
    // The manifest rename is the commit point; partition metadata and the manifest
    // write are serialized with log appends.
    std::lock_guard<std::mutex> log_lock(log_mutex_);
    old_version = partition.checkpoint_version;
    partition.checkpoint_version = new_version;
    // Every committed entry of p is below the current log size (p's update lock is
    // held, so none is in flight).
    partition.replay_from = log_->size();
    SDB_RETURN_IF_ERROR(WriteManifest());
  }
  SDB_RETURN_IF_ERROR(options_.vfs->Delete(CheckpointPath(p, old_version)));
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.checkpoints;
  }

  if (options_.rotate_log_bytes != 0 && log_bytes() >= options_.rotate_log_bytes) {
    SDB_RETURN_IF_ERROR(MaybeRotateLog().status());
  }
  return OkStatus();
}

Result<bool> SharedLogDatabase::MaybeRotateLog() {
  std::lock_guard<std::mutex> log_lock(log_mutex_);
  std::uint64_t log_size = log_->size();
  for (const Partition& partition : partitions_) {
    if (partition.replay_from < log_size) {
      return false;  // someone still needs the log's tail: the flushing rule says no
    }
  }
  std::uint64_t new_generation = log_generation_ + 1;
  SDB_RETURN_IF_ERROR(WriteWholeFile(*options_.vfs, LogPath(new_generation), ByteSpan{}));
  SDB_RETURN_IF_ERROR(options_.vfs->SyncDir(options_.dir));

  std::uint64_t old_generation = log_generation_;
  log_generation_ = new_generation;
  for (Partition& partition : partitions_) {
    partition.replay_from = 0;  // the fresh log starts empty; everyone is current
  }
  SDB_RETURN_IF_ERROR(WriteManifest());  // commit point of the rotation

  SDB_RETURN_IF_ERROR(log_->Close());
  SDB_ASSIGN_OR_RETURN(log_, OpenLogForAppend(new_generation));
  SDB_RETURN_IF_ERROR(options_.vfs->Delete(LogPath(old_generation)));
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.log_rotations;
  }
  return true;
}

std::uint64_t SharedLogDatabase::reclaimable_log_bytes() const {
  std::lock_guard<std::mutex> log_lock(log_mutex_);
  std::uint64_t min_offset = log_->size();
  for (const Partition& partition : partitions_) {
    min_offset = std::min(min_offset, partition.replay_from);
  }
  return min_offset;
}

std::uint64_t SharedLogDatabase::log_bytes() const {
  std::lock_guard<std::mutex> log_lock(log_mutex_);
  return log_->size();
}

SharedLogStats SharedLogDatabase::stats() const {
  std::lock_guard<std::mutex> stats_lock(stats_mutex_);
  return stats_;
}

}  // namespace sdb
