#include "src/core/log_reader.h"

#include <cstdlib>

#include "src/core/log_format.h"

namespace sdb {
namespace {

// Pattern substituted for unreadable pages. 0xFF can never start a valid entry (the
// sync marker's low byte is 0x5A) nor look like padding (zeros), so the framing layer
// classifies poisoned regions as corruption, which is exactly what a hard error is.
constexpr std::uint8_t kPoisonByte = 0xFF;

// SDB_SIM_CANARY=1 plants a bug: replay silently drops the final log entry — a lost
// acknowledged update. It exists so the simulation harness can prove its oracle
// catches exactly this class of bug (tests/harness). Re-read on every replay so tests
// can flip it with setenv() in-process.
bool CanaryDropsLastEntry() {
  const char* canary = std::getenv("SDB_SIM_CANARY");
  return canary != nullptr && canary[0] == '1' && canary[1] == '\0';
}

}  // namespace

Result<LogReplayStats> ReplayLog(File& file, const LogReplayOptions& options,
                                 const std::function<Status(ByteSpan)>& apply) {
  return ReplayLogWithOffsets(
      file, options, [&apply](std::uint64_t, ByteSpan payload) { return apply(payload); });
}

Result<LogReplayStats> ReplayLogWithOffsets(
    File& file, const LogReplayOptions& options,
    const std::function<Status(std::uint64_t offset, ByteSpan)>& apply) {
  LogReplayStats stats;
  SDB_ASSIGN_OR_RETURN(std::uint64_t size, file.Size());

  // Assemble the log image page by page so one unreadable page poisons only itself.
  Bytes log;
  log.reserve(static_cast<std::size_t>(size));
  for (std::uint64_t offset = 0; offset < size; offset += options.page_size) {
    std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(options.page_size, size - offset));
    Result<Bytes> chunk = file.ReadAt(offset, want);
    if (!chunk.ok()) {
      if (!chunk.status().Is(ErrorCode::kUnreadable)) {
        return chunk.status();
      }
      ++stats.unreadable_pages;
      log.insert(log.end(), want, kPoisonByte);
      continue;
    }
    if (chunk->size() != want) {
      return CorruptionError("short read inside log file");
    }
    log.insert(log.end(), chunk->begin(), chunk->end());
  }

  // Canary mode applies entries one behind, so the final entry can be dropped.
  const bool canary = CanaryDropsLastEntry();
  bool have_held = false;
  std::uint64_t held_offset = 0;
  Bytes held_payload;

  ByteSpan view = AsSpan(log);
  std::size_t offset = 0;
  while (offset < view.size()) {
    // Zero padding between commits: skip to the next page boundary.
    if (view[offset] == 0) {
      std::size_t boundary = (offset / options.page_size + 1) * options.page_size;
      std::size_t skip_to = std::min(boundary, view.size());
      bool all_zero = true;
      for (std::size_t i = offset; i < skip_to; ++i) {
        if (view[i] != 0) {
          all_zero = false;
          break;
        }
      }
      if (all_zero) {
        offset = skip_to;
        continue;
      }
      // Nonzero garbage inside the padding region: treat as a damaged entry below.
    }

    LogDecodeResult decoded = DecodeLogEntry(view, offset);
    switch (decoded.outcome) {
      case LogDecodeOutcome::kEntry:
        if (canary) {
          if (have_held) {
            SDB_RETURN_IF_ERROR(apply(held_offset, AsSpan(held_payload)));
            ++stats.entries_replayed;
          }
          held_offset = offset;
          held_payload.assign(decoded.payload.begin(), decoded.payload.end());
          have_held = true;
        } else {
          SDB_RETURN_IF_ERROR(apply(offset, decoded.payload));
          ++stats.entries_replayed;
        }
        offset = decoded.next_offset;
        continue;
      case LogDecodeOutcome::kCleanEnd:
        offset = view.size();
        continue;
      case LogDecodeOutcome::kPartialTail:
      case LogDecodeOutcome::kCorrupt: {
        std::size_t resync = ResyncLog(view, offset);
        bool more_entries_follow = resync < view.size();
        if (more_entries_follow && options.skip_damaged_entries) {
          // A damaged entry in the middle: ignore just this entry (paper Section 4's
          // hard-error suggestion) and continue at the next valid marker.
          ++stats.entries_skipped;
          offset = resync;
          continue;
        }
        if (!more_entries_follow && decoded.outcome == LogDecodeOutcome::kPartialTail) {
          // The normal transient-failure case: a torn final entry is discarded.
          stats.partial_tail_discarded = true;
          offset = view.size();
          continue;
        }
        if (!more_entries_follow && options.skip_damaged_entries) {
          // Damaged final region (e.g. unreadable last page): nothing follows, drop it.
          ++stats.entries_skipped;
          offset = view.size();
          continue;
        }
        return CorruptionError("damaged log entry at offset " + std::to_string(offset));
      }
    }
  }
  stats.bytes_consumed = view.size();
  return stats;
}

Result<LogReplayStats> ReplayLogFile(Vfs& vfs, std::string_view path,
                                     const LogReplayOptions& options,
                                     const std::function<Status(ByteSpan)>& apply) {
  SDB_ASSIGN_OR_RETURN(std::unique_ptr<File> file, vfs.Open(path, OpenMode::kRead));
  Result<LogReplayStats> stats = ReplayLog(*file, options, apply);
  SDB_RETURN_IF_ERROR(file->Close());
  return stats;
}

}  // namespace sdb
