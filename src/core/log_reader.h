// LogReader: replays the redo log at restart.
//
// Normal recovery (paper Section 4): complete, CRC-valid entries are delivered in
// order; a partially written trailing entry is detected and discarded. With hard-error
// tolerance enabled, a damaged entry in the *middle* of the log (unreadable page or CRC
// failure) is skipped by resynchronizing at the next entry marker — "recovery from a
// hard error in the log could consist of ignoring just the damaged log entry".
#ifndef SMALLDB_SRC_CORE_LOG_READER_H_
#define SMALLDB_SRC_CORE_LOG_READER_H_

#include <cstdint>
#include <functional>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/storage/vfs.h"

namespace sdb {

struct LogReplayOptions {
  // If true, damaged middle entries are skipped (resync at next marker); if false, any
  // damage that is not a clean partial tail fails the replay with kCorruption.
  bool skip_damaged_entries = false;

  // Page granularity for reading (localizes unreadable regions) and for recognizing
  // inter-commit zero padding. Must match the LogWriterOptions used to write the log.
  std::size_t page_size = 512;
};

struct LogReplayStats {
  std::uint64_t entries_replayed = 0;
  std::uint64_t entries_skipped = 0;     // damaged entries ignored (hard-error mode)
  std::uint64_t unreadable_pages = 0;    // file pages that reported errors
  bool partial_tail_discarded = false;   // a torn final entry was dropped
  std::uint64_t bytes_consumed = 0;
};

// Reads the whole log file (tolerating unreadable pages by substituting a poison
// pattern that cannot CRC-validate, so damaged regions are handled by the framing
// layer) and invokes `apply` for each valid entry payload. Stops and returns an error
// if `apply` fails.
Result<LogReplayStats> ReplayLog(File& file, const LogReplayOptions& options,
                                 const std::function<Status(ByteSpan)>& apply);

// As ReplayLog, but the callback also receives each entry's byte offset within the
// log file (used by the shared-log partitioned engine, whose partitions replay from
// different positions).
Result<LogReplayStats> ReplayLogWithOffsets(
    File& file, const LogReplayOptions& options,
    const std::function<Status(std::uint64_t offset, ByteSpan)>& apply);

// Convenience: replays from a Vfs path.
Result<LogReplayStats> ReplayLogFile(Vfs& vfs, std::string_view path,
                                     const LogReplayOptions& options,
                                     const std::function<Status(ByteSpan)>& apply);

}  // namespace sdb

#endif  // SMALLDB_SRC_CORE_LOG_READER_H_
