// SueLock: the paper's three-mode lock (Section 3).
//
//              shared      update      exclusive
//   shared     compatible  compatible  conflict
//   update     compatible  conflict    conflict
//   exclusive  conflict    conflict    conflict
//
// An enquiry runs in *shared*. An update acquires *update* (excluding other updates but
// not enquiries), verifies its preconditions and commits its log record to disk, then
// converts to *exclusive* (excluding enquiries) only while it modifies the virtual
// memory structures. A checkpoint holds *update* for its whole duration. "These rules
// never exclude enquiry operations during disk transfers, only during virtual memory
// operations."
#ifndef SMALLDB_SRC_CORE_SUE_LOCK_H_
#define SMALLDB_SRC_CORE_SUE_LOCK_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace sdb {

class SueLock {
 public:
  SueLock() = default;
  SueLock(const SueLock&) = delete;
  SueLock& operator=(const SueLock&) = delete;

  // --- shared (enquiry) mode ---
  void AcquireShared();
  void ReleaseShared();

  // --- update mode: at most one holder, compatible with shared ---
  void AcquireUpdate();
  void ReleaseUpdate();

  // Non-blocking acquisition, for availability-sensitive callers (e.g. a maintenance
  // job that should skip its checkpoint rather than queue behind a long update).
  // Returns false if update or exclusive mode is currently held.
  bool TryAcquireUpdate();

  // --- upgrade/downgrade, only valid while holding update ---
  // Waits for in-flight shared holders to drain; new shared requests queue behind the
  // upgrade so it cannot starve.
  void UpgradeToExclusive();
  void DowngradeToUpdate();

  // Introspection for tests and stats.
  struct Snapshot {
    std::uint32_t shared_holders;
    bool update_held;
    bool exclusive_held;
  };
  Snapshot snapshot() const;

  // RAII guards.
  class SharedGuard {
   public:
    explicit SharedGuard(SueLock& lock) : lock_(lock) { lock_.AcquireShared(); }
    ~SharedGuard() { lock_.ReleaseShared(); }
    SharedGuard(const SharedGuard&) = delete;
    SharedGuard& operator=(const SharedGuard&) = delete;

   private:
    SueLock& lock_;
  };

  class UpdateGuard {
   public:
    explicit UpdateGuard(SueLock& lock) : lock_(lock) { lock_.AcquireUpdate(); }
    ~UpdateGuard() {
      if (upgraded_) {
        lock_.DowngradeToUpdate();
      }
      lock_.ReleaseUpdate();
    }
    UpdateGuard(const UpdateGuard&) = delete;
    UpdateGuard& operator=(const UpdateGuard&) = delete;

    // Enters exclusive mode for the in-memory apply step.
    void Upgrade() {
      lock_.UpgradeToExclusive();
      upgraded_ = true;
    }
    void Downgrade() {
      lock_.DowngradeToUpdate();
      upgraded_ = false;
    }

   private:
    SueLock& lock_;
    bool upgraded_ = false;
  };

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::uint32_t shared_holders_ = 0;
  bool update_held_ = false;
  bool exclusive_held_ = false;
  bool upgrade_waiting_ = false;
};

}  // namespace sdb

#endif  // SMALLDB_SRC_CORE_SUE_LOCK_H_
