#include "src/core/sue_lock.h"

namespace sdb {

void SueLock::AcquireShared() {
  std::unique_lock<std::mutex> lock(mutex_);
  // New readers queue behind a pending upgrade so the upgrading updater cannot starve;
  // they also wait out exclusive mode itself.
  cv_.wait(lock, [this] { return !exclusive_held_ && !upgrade_waiting_; });
  ++shared_holders_;
}

void SueLock::ReleaseShared() {
  std::lock_guard<std::mutex> lock(mutex_);
  --shared_holders_;
  if (shared_holders_ == 0) {
    cv_.notify_all();
  }
}

void SueLock::AcquireUpdate() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return !update_held_ && !exclusive_held_; });
  update_held_ = true;
}

bool SueLock::TryAcquireUpdate() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (update_held_ || exclusive_held_) {
    return false;
  }
  update_held_ = true;
  return true;
}

void SueLock::ReleaseUpdate() {
  std::lock_guard<std::mutex> lock(mutex_);
  update_held_ = false;
  cv_.notify_all();
}

void SueLock::UpgradeToExclusive() {
  std::unique_lock<std::mutex> lock(mutex_);
  upgrade_waiting_ = true;
  cv_.wait(lock, [this] { return shared_holders_ == 0; });
  upgrade_waiting_ = false;
  exclusive_held_ = true;
}

void SueLock::DowngradeToUpdate() {
  std::lock_guard<std::mutex> lock(mutex_);
  exclusive_held_ = false;
  cv_.notify_all();
}

SueLock::Snapshot SueLock::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Snapshot{shared_holders_, update_held_, exclusive_held_};
}

}  // namespace sdb
