#include "src/core/audit.h"

#include "src/core/log_reader.h"

namespace sdb {

Result<std::vector<AuditEntry>> ReadAuditTrail(Vfs& vfs, std::string_view log_path,
                                               std::size_t page_size) {
  std::vector<AuditEntry> entries;
  LogReplayOptions options;
  options.page_size = page_size;
  SDB_ASSIGN_OR_RETURN(LogReplayStats stats,
                       ReplayLogFile(vfs, log_path, options, [&entries](ByteSpan record) {
                         AuditEntry entry;
                         entry.index = entries.size();
                         entry.record.assign(record.begin(), record.end());
                         entries.push_back(std::move(entry));
                         return OkStatus();
                       }));
  (void)stats;
  return entries;
}

}  // namespace sdb
