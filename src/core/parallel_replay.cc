#include "src/core/parallel_replay.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <string_view>
#include <thread>

#include "src/core/database.h"

namespace sdb {
namespace {

// Batch routing hash. FNV-1a with an avalanche finalizer (same construction as the
// shard router): raw FNV clusters keys that differ only in trailing characters, and
// a skewed batch distribution is a skewed worker schedule.
std::uint64_t HashReplayKey(std::string_view key) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

}  // namespace

struct ParallelReplayer::PerApp {
  Application* app = nullptr;
  bool batchable = false;       // StartReplayBatch() returned a context at probe time
  bool serial_required = false; // a record's key could not be extracted: apply in order
  std::vector<Bytes> records;   // buffered in log order (parallel mode only)
  std::vector<std::uint64_t> key_hashes;  // aligned with records (batchable apps)
};

ParallelReplayer::ParallelReplayer(ParallelReplayOptions options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : &wall_clock_) {}

ParallelReplayer::~ParallelReplayer() = default;

std::size_t ParallelReplayer::AddApplication(Application& app) {
  PerApp entry;
  entry.app = &app;
  // Probe once: an application without per-batch apply contexts replays through
  // plain ApplyUpdate (as one in-order task when parallel).
  entry.batchable = app.StartReplayBatch() != nullptr;
  apps_.push_back(std::move(entry));
  return apps_.size() - 1;
}

Status ParallelReplayer::Add(std::size_t app_index, ByteSpan record) {
  PerApp& entry = apps_[app_index];
  ++stats_.entries;
  if (options_.threads <= 1) {
    // Serial mode: the pre-parallel replay path, byte for byte. No buffering, no
    // worker threads, applies in global log order — the deterministic fallback.
    return entry.app->ApplyUpdate(record);
  }
  if (pass_start_ < 0) {
    pass_start_ = clock_->NowMicros();
  }
  if (entry.batchable && !entry.serial_required) {
    std::string key;
    if (entry.app->ReplayKeyOf(record, &key)) {
      entry.key_hashes.push_back(HashReplayKey(key));
    } else {
      // Unknown footprint: this application's whole stream must apply in log
      // order. Hashes computed so far are dropped; the records stay.
      entry.serial_required = true;
      entry.key_hashes.clear();
    }
  }
  entry.records.emplace_back(record.begin(), record.end());
  return OkStatus();
}

Status ParallelReplayer::Finish() {
  if (finished_) {
    return FailedPreconditionError("ParallelReplayer::Finish called twice");
  }
  finished_ = true;
  if (options_.threads <= 1) {
    stats_.threads_used = 1;
    return OkStatus();
  }
  stats_.partition_pass_micros =
      pass_start_ < 0 ? 0 : clock_->NowMicros() - pass_start_;

  // One task = one key-batch with its apply context, or one whole application
  // replayed in order (serial fallback). Tasks are ordered app-major, batch-minor,
  // so "first error in task order" is stable across thread schedules.
  struct Task {
    PerApp* owner = nullptr;
    std::vector<std::uint32_t> indices;  // into owner->records, ascending = log order
    std::unique_ptr<Application::ReplayBatch> context;  // null => serial fallback
    Status result;
  };
  std::vector<Task> tasks;
  const std::size_t batches_per_app = static_cast<std::size_t>(
      std::max(1, options_.threads) * std::max(1, options_.batches_per_thread));
  for (PerApp& entry : apps_) {
    if (entry.records.empty()) {
      continue;
    }
    if (!entry.batchable || entry.serial_required) {
      ++stats_.serial_fallbacks;
      Task task;
      task.owner = &entry;
      task.indices.resize(entry.records.size());
      for (std::uint32_t i = 0; i < entry.records.size(); ++i) {
        task.indices[i] = i;
      }
      tasks.push_back(std::move(task));
      continue;
    }
    const std::size_t batches = std::min(batches_per_app, entry.records.size());
    std::vector<std::vector<std::uint32_t>> buckets(batches);
    for (std::uint32_t i = 0; i < entry.records.size(); ++i) {
      buckets[entry.key_hashes[i] % batches].push_back(i);
    }
    for (std::vector<std::uint32_t>& bucket : buckets) {
      if (bucket.empty()) {
        continue;
      }
      Task task;
      task.owner = &entry;
      task.indices = std::move(bucket);
      task.context = entry.app->StartReplayBatch();
      if (task.context == nullptr) {
        return InternalError("StartReplayBatch returned null after a successful probe");
      }
      tasks.push_back(std::move(task));
    }
  }
  stats_.batches = tasks.size();
  if (tasks.empty()) {
    stats_.threads_used = 0;
    return OkStatus();
  }

  // Bounded pool, work-stealing via an atomic cursor. The failure flag is a
  // cooperative stop: workers poll it at entry boundaries, so an error in one
  // batch ends the whole replay promptly instead of after a full pass.
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(options_.threads), tasks.size());
  stats_.threads_used = workers;
  std::atomic<bool> failed{false};
  std::atomic<std::size_t> next{0};
  std::atomic<std::int64_t> apply_micros{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      Micros busy = 0;
      for (std::size_t t = next.fetch_add(1); t < tasks.size(); t = next.fetch_add(1)) {
        if (failed.load(std::memory_order_relaxed)) {
          break;
        }
        Task& task = tasks[t];
        Stopwatch watch(*clock_);
        for (std::uint32_t index : task.indices) {
          if (failed.load(std::memory_order_relaxed)) {
            break;
          }
          ByteSpan record = AsSpan(task.owner->records[index]);
          Status applied = task.context != nullptr
                               ? task.context->Apply(record)
                               : task.owner->app->ApplyUpdate(record);
          if (!applied.ok()) {
            task.result = std::move(applied);
            failed.store(true, std::memory_order_relaxed);
            break;
          }
        }
        busy += watch.ElapsedMicros();
      }
      apply_micros.fetch_add(busy, std::memory_order_relaxed);
    });
  }
  for (std::thread& t : pool) {
    t.join();
  }
  stats_.batch_apply_micros = apply_micros.load(std::memory_order_relaxed);

  if (failed.load(std::memory_order_relaxed)) {
    // Fail-stop: nothing merges. Batched applications' states are untouched (all
    // their effects live in discarded contexts); the caller abandons the open, so
    // serial-fallback applies never become visible either.
    for (Task& task : tasks) {
      if (!task.result.ok()) {
        return task.result.WithContext("parallel replay batch failed");
      }
    }
    return InternalError("parallel replay failed without a recorded status");
  }

  // Merge phase: single-threaded, in task order. Batches are key-disjoint so the
  // order is immaterial to the result, but a fixed order keeps any application-side
  // bookkeeping deterministic.
  for (Task& task : tasks) {
    if (task.context == nullptr) {
      continue;  // serial fallback already applied into live state
    }
    SDB_RETURN_IF_ERROR(task.owner->app->MergeReplayBatch(*task.context)
                            .WithContext("merging replay batch"));
  }
  return OkStatus();
}

}  // namespace sdb
