#include "src/core/sharded.h"

#include <algorithm>
#include <charconv>
#include <thread>

#include "src/common/logging.h"
#include "src/core/log_reader.h"
#include "src/core/parallel_replay.h"
#include "src/pickle/pickle.h"
#include "src/pickle/traits.h"

namespace sdb {
namespace {

struct ShardMeta {
  std::uint64_t checkpoint_version = 0;
  std::uint64_t replay_from = 0;
  // The shard's checkpoint chain. chain_deltas empty means the checkpoint is
  // self-contained (chain_base == checkpoint_version); otherwise the state is
  // p.checkpoint<chain_base> composed with each p.delta<v> in order, and the
  // last delta version equals checkpoint_version.
  std::uint64_t chain_base = 0;
  std::vector<std::uint64_t> chain_deltas;
  SDB_PICKLE_FIELDS(ShardMeta, checkpoint_version, replay_from, chain_base, chain_deltas)
};

std::optional<std::uint64_t> ParseDecimal(std::string_view text) {
  std::uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

// Resumes a paused pipeline on every exit path of checkpoint Phase A.
class PipelineResumer {
 public:
  explicit PipelineResumer(GroupCommitter* committer) : committer_(committer) {}
  ~PipelineResumer() { committer_->Resume(); }
  PipelineResumer(const PipelineResumer&) = delete;
  PipelineResumer& operator=(const PipelineResumer&) = delete;

 private:
  GroupCommitter* committer_;
};

}  // namespace

// --- ShardRouter ---

std::uint64_t ShardRouter::HashKey(std::string_view key) {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a 64 offset basis
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  // Avalanche finalizer (MurmurHash3 fmix64). Raw FNV-1a runs only one multiply
  // after the final byte, so keys differing in trailing characters land within a
  // tiny arc of the ring and lower_bound routes them to the same shard; mixing the
  // low bits back into the high bits restores uniform dispersion.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

ShardRouter::ShardRouter(std::size_t shards, std::size_t vnodes_per_shard)
    : shards_(shards) {
  std::size_t vnodes = std::max<std::size_t>(vnodes_per_shard, 1);
  ring_.reserve(shards * vnodes);
  for (std::size_t s = 0; s < shards; ++s) {
    for (std::size_t v = 0; v < vnodes; ++v) {
      std::string label = "shard:" + std::to_string(s) + ":" + std::to_string(v);
      ring_.emplace_back(HashKey(label), static_cast<std::uint32_t>(s));
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::size_t ShardRouter::Route(std::string_view key) const {
  if (shards_ <= 1) {
    return 0;
  }
  std::uint64_t h = HashKey(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const std::pair<std::uint64_t, std::uint32_t>& point, std::uint64_t hash) {
        return point.first < hash;
      });
  if (it == ring_.end()) {
    it = ring_.begin();  // the ring wraps
  }
  return it->second;
}

// --- ShardSink ---

Status ShardedDatabase::ShardSink::AppendRecords(std::span<const ByteSpan> payloads) {
  framed_.clear();
  spans_.clear();
  framed_.reserve(payloads.size());
  spans_.reserve(payloads.size());
  for (ByteSpan payload : payloads) {
    ByteWriter framed;
    framed.PutVarint(shard_);
    framed.PutBytes(payload);
    framed_.push_back(std::move(framed).Take());
    spans_.push_back(AsSpan(framed_.back()));
  }
  SDB_ASSIGN_OR_RETURN(ticket_, coalescer_->AppendBatch(spans_));
  return OkStatus();
}

Result<std::uint64_t> ShardedDatabase::ShardSink::SyncRecords() {
  return coalescer_->AwaitDurable(ticket_);
}

// --- ShardUnit ---

Result<std::uint64_t> ShardedDatabase::ShardUnit::BatchBegin() {
  if (ensemble_poisoned->load(std::memory_order_relaxed)) {
    return InternalError(
        "sharded ensemble fail-stopped by an aborted log rotation; reopen to recover");
  }
  if (poisoned.load(std::memory_order_relaxed)) {
    return InternalError("shard poisoned by an earlier apply failure; reopen to recover");
  }
  return commit_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
}

Status ShardedDatabase::ShardUnit::BatchApply(ByteSpan record) {
  return app->ApplyUpdate(record);
}

void ShardedDatabase::ShardUnit::BatchPoisoned(const Status& cause) {
  (void)cause;
  poisoned.store(true, std::memory_order_relaxed);
}

void ShardedDatabase::ShardUnit::BatchCommitted(const UpdateBreakdown& breakdown) {
  (void)breakdown;  // per-stage histograms already aggregated via stage_metrics
}

void ShardedDatabase::ShardUnit::AcquireCheckpointSlot() {
  std::unique_lock<std::mutex> gate(ckpt_mu);
  ckpt_cv.wait(gate, [this] { return !ckpt_in_flight; });
  ckpt_in_flight = true;
}

void ShardedDatabase::ShardUnit::ReleaseCheckpointSlot() {
  {
    std::lock_guard<std::mutex> gate(ckpt_mu);
    ckpt_in_flight = false;
  }
  ckpt_cv.notify_all();
}

// --- ShardedDatabase ---

// The atomic-rename-committed record binding the ensemble together: the live log
// generation plus, per shard, the checkpoint version and the shared-log offset the
// checkpoint is current to. Its rename is every checkpoint's and rotation's commit
// point (the same scheme SharedLogDatabase established).
struct ShardedDatabase::Manifest {
  std::uint64_t log_generation = 1;
  std::vector<ShardMeta> shards;
  SDB_PICKLE_FIELDS(Manifest, log_generation, shards)
};

ShardedDatabase::ShardedDatabase(std::size_t shards, ShardedOptions options)
    : options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock : &wall_clock_),
      router_(shards, options_.vnodes_per_shard) {}

ShardedDatabase::~ShardedDatabase() {
  // Pipelines first (batches reference the sinks and coalescer), then the
  // coalescer, then the log they all wrote to.
  for (auto& unit : units_) {
    unit->committer.reset();
  }
  coalescer_.reset();
  if (log_ != nullptr) {
    Status closed = log_->Close();
    if (!closed.ok()) {
      SDB_LOG(kWarning) << "closing shared log: " << closed;
    }
  }
}

std::string ShardedDatabase::LogPath(std::uint64_t generation) const {
  return JoinPath(options_.dir, "logfile" + std::to_string(generation));
}

std::string ShardedDatabase::CheckpointPath(std::size_t p, std::uint64_t version) const {
  return JoinPath(options_.dir,
                  "p" + std::to_string(p) + ".checkpoint" + std::to_string(version));
}

std::string ShardedDatabase::DeltaPath(std::size_t p, std::uint64_t version) const {
  return JoinPath(options_.dir,
                  "p" + std::to_string(p) + ".delta" + std::to_string(version));
}

std::string ShardedDatabase::ManifestPath() const {
  return JoinPath(options_.dir, "manifest");
}

Result<std::unique_ptr<ShardedDatabase>> ShardedDatabase::Open(
    std::vector<Application*> apps, ShardedOptions options) {
  if (options.vfs == nullptr || options.dir.empty() || apps.empty()) {
    return InvalidArgumentError("ShardedOptions requires vfs, dir and >= 1 shard app");
  }
  std::unique_ptr<ShardedDatabase> db(
      new ShardedDatabase(apps.size(), std::move(options)));
  SDB_RETURN_IF_ERROR(
      db->Recover(apps).WithContext("opening sharded ensemble in " + db->options_.dir));
  return db;
}

Status ShardedDatabase::WriteManifestLocked() {
  Manifest manifest;
  manifest.log_generation = log_generation_;
  manifest.shards.reserve(units_.size());
  for (const auto& unit : units_) {
    manifest.shards.push_back(ShardMeta{unit->checkpoint_version, unit->replay_from,
                                        unit->chain.base, unit->chain.deltas});
  }
  Bytes bytes = PickleWrite(manifest);
  return AtomicWriteFile(*options_.vfs, options_.dir, ManifestPath(), AsSpan(bytes));
}

Result<std::unique_ptr<LogWriter>> ShardedDatabase::OpenLogForAppend(
    std::uint64_t generation) {
  SDB_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                       options_.vfs->Open(LogPath(generation), OpenMode::kReadWrite));
  SDB_ASSIGN_OR_RETURN(std::uint64_t size, file->Size());
  if (options_.log_writer.pad_to_page_boundary &&
      size % options_.log_writer.page_size != 0) {
    size = (size / options_.log_writer.page_size) * options_.log_writer.page_size;
    SDB_RETURN_IF_ERROR(file->Truncate(size));
    SDB_RETURN_IF_ERROR(file->Sync());
  }
  return std::make_unique<LogWriter>(std::move(file), size, options_.log_writer);
}

Status ShardedDatabase::ForEachShardParallel(
    const std::function<Status(std::size_t)>& fn) {
  const std::size_t n = units_.size();
  if (options_.recovery_threads <= 1 || n <= 1) {
    for (std::size_t p = 0; p < n; ++p) {
      SDB_RETURN_IF_ERROR(fn(p));
    }
    return OkStatus();
  }
  std::vector<Status> results(n, OkStatus());
  std::atomic<std::size_t> next{0};
  std::size_t workers =
      std::min(static_cast<std::size_t>(options_.recovery_threads), n);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (std::size_t p = next.fetch_add(1); p < n; p = next.fetch_add(1)) {
        results[p] = fn(p);
      }
    });
  }
  for (std::thread& t : pool) {
    t.join();
  }
  for (std::size_t p = 0; p < n; ++p) {
    SDB_RETURN_IF_ERROR(results[p]);
  }
  return OkStatus();
}

Status ShardedDatabase::Recover(std::vector<Application*>& apps) {
  Vfs& vfs = *options_.vfs;
  SDB_RETURN_IF_ERROR(vfs.CreateDir(options_.dir));

  units_.reserve(apps.size());
  for (std::size_t p = 0; p < apps.size(); ++p) {
    auto unit = std::make_unique<ShardUnit>();
    unit->app = apps[p];
    unit->ensemble_poisoned = &poisoned_;
    unit->stage_metrics = obs::CommitStageMetrics::Register(unit->registry, nullptr);
    unit->counters.updates = &unit->registry.GetCounter("db.updates");
    unit->counters.precondition_failures =
        &unit->registry.GetCounter("db.update_precondition_failures");
    unit->counters.commit_failures = &unit->registry.GetCounter("db.update_commit_failures");
    unit->counters.log_entries_since_checkpoint =
        &unit->registry.GetGauge("db.log_entries_since_checkpoint");
    unit->counters.log_bytes = &unit->registry.GetGauge("db.log_bytes");
    unit->enquiries = &unit->registry.GetCounter("db.enquiries");
    unit->checkpoints = &unit->registry.GetCounter("db.checkpoints");
    unit->delta_checkpoints = &unit->registry.GetCounter("db.delta_checkpoints");
    unit->compaction_runs = &unit->registry.GetCounter("compaction.runs");
    unit->compaction_bytes = &unit->registry.GetCounter("compaction.bytes");
    units_.push_back(std::move(unit));
  }

  SDB_ASSIGN_OR_RETURN(bool has_manifest, vfs.Exists(ManifestPath()));
  if (!has_manifest) {
    // Fresh ensemble: version-1 checkpoints of the empty states, empty log, then
    // the manifest commit.
    for (std::size_t p = 0; p < units_.size(); ++p) {
      SDB_RETURN_IF_ERROR(units_[p]->app->ResetState());
      SDB_ASSIGN_OR_RETURN(Bytes snapshot, units_[p]->app->SerializeState());
      SDB_RETURN_IF_ERROR(WriteWholeFile(vfs, CheckpointPath(p, 1), AsSpan(snapshot)));
      units_[p]->checkpoint_version = 1;
      units_[p]->replay_from = 0;
      units_[p]->chain = DeltaChain{1, {}};
      units_[p]->chain_base_bytes = snapshot.size();
      units_[p]->chain_delta_bytes = 0;
    }
    SDB_RETURN_IF_ERROR(WriteWholeFile(vfs, LogPath(1), ByteSpan{}));
    SDB_RETURN_IF_ERROR(vfs.SyncDir(options_.dir));
    SDB_RETURN_IF_ERROR(WriteManifestLocked());
  } else {
    SDB_ASSIGN_OR_RETURN(Bytes manifest_bytes, ReadWholeFile(vfs, ManifestPath()));
    SDB_ASSIGN_OR_RETURN(Manifest manifest, PickleRead<Manifest>(AsSpan(manifest_bytes)));
    if (manifest.shards.size() != units_.size()) {
      return InvalidArgumentError("shard count mismatch: directory has " +
                                  std::to_string(manifest.shards.size()) +
                                  ", caller supplied " + std::to_string(units_.size()));
    }
    log_generation_ = manifest.log_generation;
    for (std::size_t p = 0; p < units_.size(); ++p) {
      const ShardMeta& meta = manifest.shards[p];
      units_[p]->checkpoint_version = meta.checkpoint_version;
      units_[p]->replay_from = meta.replay_from;
      if (meta.chain_deltas.empty()) {
        units_[p]->chain = DeltaChain{meta.checkpoint_version, {}};
      } else {
        // A chained shard: the manifest must name a well-formed chain whose top
        // IS the shard's checkpoint version — anything else is corruption, not
        // something to guess around.
        std::uint64_t prev = meta.chain_base;
        for (std::uint64_t v : meta.chain_deltas) {
          if (v <= prev) {
            return CorruptionError("shard " + std::to_string(p) +
                                   " manifest chain is not ascending");
          }
          prev = v;
        }
        if (meta.chain_deltas.back() != meta.checkpoint_version) {
          return CorruptionError("shard " + std::to_string(p) +
                                 " manifest chain does not end at the checkpoint version");
        }
        units_[p]->chain = DeltaChain{meta.chain_base, meta.chain_deltas};
      }
    }

    // Shards are independent recovery units: checkpoint loads run in parallel on
    // the recovery pool (each touches only its own files and its own application).
    // A chained shard composes base + deltas through the application before
    // deserializing.
    Status loaded = ForEachShardParallel([&](std::size_t p) -> Status {
      ShardUnit& unit = *units_[p];
      SDB_ASSIGN_OR_RETURN(Bytes base,
                           ReadWholeFile(vfs, CheckpointPath(p, unit.chain.base)));
      unit.chain_base_bytes = base.size();
      unit.chain_delta_bytes = 0;
      SDB_RETURN_IF_ERROR(unit.app->ResetState());
      if (!unit.chain.has_deltas()) {
        return unit.app->DeserializeState(AsSpan(base))
            .WithContext("shard " + std::to_string(p));
      }
      std::vector<Bytes> deltas;
      std::vector<ByteSpan> delta_spans;
      deltas.reserve(unit.chain.deltas.size());
      delta_spans.reserve(unit.chain.deltas.size());
      for (std::uint64_t v : unit.chain.deltas) {
        SDB_ASSIGN_OR_RETURN(Bytes delta, ReadWholeFile(vfs, DeltaPath(p, v)));
        unit.chain_delta_bytes += delta.size();
        deltas.push_back(std::move(delta));
        delta_spans.push_back(AsSpan(deltas.back()));
      }
      Result<Bytes> composed = unit.app->ComposeCheckpoint(AsSpan(base), delta_spans);
      if (!composed.ok()) {
        return composed.status().WithContext("composing shard " + std::to_string(p) +
                                             " chain");
      }
      return unit.app->DeserializeState(AsSpan(*composed))
          .WithContext("shard " + std::to_string(p));
    });
    SDB_RETURN_IF_ERROR(loaded);

    SDB_RETURN_IF_ERROR(ReplayShardedLog());
  }

  // Delete stray files from interrupted checkpoints/rotations (anything versioned
  // but not referenced by the manifest).
  SDB_ASSIGN_OR_RETURN(std::vector<std::string> names, vfs.List(options_.dir));
  for (const std::string& name : names) {
    bool stale = false;
    if (name.rfind("logfile", 0) == 0) {
      std::optional<std::uint64_t> generation = ParseDecimal(name.substr(7));
      stale = generation.has_value() && *generation != log_generation_;
    } else if (name[0] == 'p') {
      std::size_t dot = name.find(".checkpoint");
      if (dot != std::string::npos) {
        // A checkpoint file is live only as its shard's chain base (== the
        // checkpoint version when the chain has no deltas). An orphan at the
        // chain top is the residue of an interrupted compaction.
        std::optional<std::uint64_t> pid = ParseDecimal(name.substr(1, dot - 1));
        std::optional<std::uint64_t> version = ParseDecimal(name.substr(dot + 11));
        stale = pid.has_value() && version.has_value() &&
                (*pid >= units_.size() || *version != units_[*pid]->chain.base);
      } else {
        std::size_t delta_dot = name.find(".delta");
        if (delta_dot != std::string::npos) {
          std::optional<std::uint64_t> pid = ParseDecimal(name.substr(1, delta_dot - 1));
          std::optional<std::uint64_t> version = ParseDecimal(name.substr(delta_dot + 6));
          if (pid.has_value() && version.has_value()) {
            stale = *pid >= units_.size() ||
                    std::find(units_[*pid]->chain.deltas.begin(),
                              units_[*pid]->chain.deltas.end(),
                              *version) == units_[*pid]->chain.deltas.end();
          }
        }
      }
    } else if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      stale = true;
    }
    if (stale) {
      SDB_RETURN_IF_ERROR(vfs.Delete(JoinPath(options_.dir, name)));
    }
  }
  SDB_RETURN_IF_ERROR(vfs.SyncDir(options_.dir));

  SDB_ASSIGN_OR_RETURN(log_, OpenLogForAppend(log_generation_));

  // A checkpoint records replay_from = the in-memory log size, which can run
  // ahead of the durable log end when an append's covering fsync failed (the
  // failed batch was never acknowledged or applied, so the checkpoint holds
  // nothing from that region and the manifest's claim is vacuous). After a crash
  // the log rewinds to its durable end; without a clamp the writer would refill
  // [durable end, replay_from) with NEW acknowledged entries that every later
  // replay then skips as "checkpoint-covered" — losing them. Clamp and republish
  // the manifest before any append can land in the reclaimed region.
  bool replay_from_clamped = false;
  for (auto& unit : units_) {
    if (unit->replay_from > log_->size()) {
      unit->replay_from = log_->size();
      replay_from_clamped = true;
    }
  }
  if (replay_from_clamped) {
    SDB_RETURN_IF_ERROR(WriteManifestLocked());
  }

  coalescer_ = std::make_unique<CrossShardCoalescer>(log_.get());
  for (std::size_t p = 0; p < units_.size(); ++p) {
    ShardUnit& unit = *units_[p];
    unit.sink.Init(coalescer_.get(), p);
    unit.counters.log_bytes->Set(static_cast<std::int64_t>(log_->size()));
    unit.committer = std::make_unique<GroupCommitter>(
        unit.lock, *clock_, unit, &unit.sink, &unit.counters, unit.stage_metrics,
        options_.group_commit);
  }
  return OkStatus();
}

Status ShardedDatabase::ReplayShardedLog() {
  LogReplayOptions replay_options;
  replay_options.page_size = options_.log_replay_page_size;
  SDB_ASSIGN_OR_RETURN(std::unique_ptr<File> log_file,
                       options_.vfs->Open(LogPath(log_generation_), OpenMode::kRead));

  // One sequential pass routes entries into the replayer (the disk read order is
  // fixed — and deterministic under the sim harness). The replayer partitions each
  // shard's stream into key-disjoint batches and applies every (shard, key-batch)
  // task on ONE pool of recovery_threads workers: within-shard parallelism composes
  // with across-shard parallelism instead of competing, so a hot shard no longer
  // bounds recovery. Shard apps without batch support replay as one in-order task
  // per shard — the previous per-shard behaviour.
  ParallelReplayOptions parallel_options;
  parallel_options.threads = options_.recovery_threads;
  parallel_options.clock = clock_;
  ParallelReplayer replayer(parallel_options);
  for (auto& unit : units_) {
    (void)replayer.AddApplication(*unit->app);
  }
  std::uint64_t skipped = 0;
  SDB_ASSIGN_OR_RETURN(
      LogReplayStats replay_stats,
      ReplayLogWithOffsets(
          *log_file, replay_options,
          [&](std::uint64_t offset, ByteSpan payload) -> Status {
            ByteReader in(payload);
            SDB_ASSIGN_OR_RETURN(std::uint64_t pid, in.ReadVarint());
            if (pid >= units_.size()) {
              return CorruptionError("log entry for unknown shard " + std::to_string(pid));
            }
            SDB_ASSIGN_OR_RETURN(ByteSpan record, in.ReadBytes(in.remaining()));
            if (offset < units_[pid]->replay_from) {
              ++skipped;  // the shard's checkpoint already covers this entry
              return OkStatus();
            }
            return replayer.Add(pid, record);
          }));
  (void)replay_stats;
  SDB_RETURN_IF_ERROR(log_file->Close());
  SDB_RETURN_IF_ERROR(replayer.Finish().WithContext("replaying sharded log"));

  const ParallelReplayStats& parallel = replayer.stats();
  stats_.replayed_entries = parallel.entries;
  stats_.replay_skipped_entries = skipped;
  stats_.replay_batches = parallel.batches;
  stats_.replay_threads_used = parallel.threads_used;
  registry_.GetGauge("restart.replay.batches")
      .Set(static_cast<std::int64_t>(parallel.batches));
  registry_.GetGauge("restart.replay.threads_used")
      .Set(static_cast<std::int64_t>(parallel.threads_used));
  registry_.GetGauge("restart.replay.partition_pass_us")
      .Set(parallel.partition_pass_micros);
  registry_.GetGauge("restart.replay.batch_apply_us").Set(parallel.batch_apply_micros);
  return OkStatus();
}

Status ShardedDatabase::CheckPoisoned() const {
  if (poisoned_.load(std::memory_order_relaxed)) {
    return InternalError(
        "sharded ensemble fail-stopped by an aborted log rotation; reopen to recover");
  }
  return OkStatus();
}

Status ShardedDatabase::Update(std::size_t p,
                               const std::function<Result<Bytes>()>& prepare) {
  if (p >= units_.size()) {
    return InvalidArgumentError("shard index out of range");
  }
  SDB_RETURN_IF_ERROR(CheckPoisoned());
  GroupCommitter::PrepareFn fn = prepare;
  return units_[p]->committer->Submit({&fn, 1});
}

Status ShardedDatabase::UpdateKey(std::string_view key,
                                  const std::function<Result<Bytes>()>& prepare) {
  return Update(router_.Route(key), prepare);
}

Status ShardedDatabase::Enquire(std::size_t p, const std::function<Status()>& enquiry) {
  if (p >= units_.size()) {
    return InvalidArgumentError("shard index out of range");
  }
  ShardUnit& unit = *units_[p];
  SueLock::SharedGuard guard(unit.lock);
  SDB_RETURN_IF_ERROR(CheckPoisoned());
  if (unit.poisoned.load(std::memory_order_relaxed)) {
    return InternalError("shard poisoned by an earlier apply failure; reopen to recover");
  }
  Status status = enquiry();
  unit.enquiries->Increment();
  return status;
}

Status ShardedDatabase::EnquireKey(std::string_view key,
                                   const std::function<Status()>& enquiry) {
  return Enquire(router_.Route(key), enquiry);
}

Status ShardedDatabase::EnquireAll(const std::function<Status()>& enquiry) {
  for (auto& unit : units_) {
    unit->lock.AcquireShared();
  }
  Status status = CheckPoisoned();
  for (auto& unit : units_) {
    if (status.ok() && unit->poisoned.load(std::memory_order_relaxed)) {
      status = InternalError("shard poisoned by an earlier apply failure; reopen to recover");
    }
  }
  if (status.ok()) {
    status = enquiry();
  }
  for (auto it = units_.rbegin(); it != units_.rend(); ++it) {
    (*it)->enquiries->Increment();
    (*it)->lock.ReleaseShared();
  }
  return status;
}

Status ShardedDatabase::CheckpointPhaseA(std::size_t p, ShardRotation* rotation) {
  ShardUnit& unit = *units_[p];
  // Pause BEFORE the update lock: an in-flight batch needs the lock to finish, so
  // pausing after acquiring it would deadlock. With the pipeline paused, every
  // committed record of shard p is already applied (or belongs to a failed,
  // unacknowledged batch — which replay is allowed to skip), so the log size read
  // below is a safe replay-from offset for the snapshot.
  unit.committer->Pause();
  PipelineResumer resumer(unit.committer.get());
  SueLock::UpdateGuard guard(unit.lock);
  SDB_RETURN_IF_ERROR(CheckPoisoned());
  if (unit.poisoned.load(std::memory_order_relaxed)) {
    return InternalError("shard poisoned by an earlier apply failure; reopen to recover");
  }
  bool want_delta = options_.delta_checkpoint.enabled;
  if (want_delta) {
    std::lock_guard<std::mutex> manifest_lock(manifest_mu_);
    // Ceiling: if compaction kept failing, force a full checkpoint to collapse
    // the chain through the ordinary path.
    want_delta =
        unit.chain.length() < options_.delta_checkpoint.force_full_at_chain_length;
  }
  if (want_delta) {
    SDB_ASSIGN_OR_RETURN(rotation->serialize_delta, unit.app->CaptureDeltaSnapshot());
    rotation->is_delta = rotation->serialize_delta != nullptr;
  }
  if (!rotation->is_delta) {
    SDB_ASSIGN_OR_RETURN(rotation->serialize, unit.app->CaptureSnapshot());
  }
  {
    // (generation, offset) must be one instant: a rotation swaps both together
    // under manifest_mu_.
    std::lock_guard<std::mutex> manifest_lock(manifest_mu_);
    rotation->generation = log_generation_;
    rotation->replay_from = log_->size();
  }
  unit.commit_epoch.fetch_add(1, std::memory_order_relaxed);
  return OkStatus();
}

Status ShardedDatabase::CheckpointPhaseB(std::size_t p, ShardRotation rotation) {
  ShardUnit& unit = *units_[p];
  if (rotation.is_delta) {
    SDB_RETURN_IF_ERROR(PersistShardDelta(p, std::move(rotation)));
  } else {
    SDB_ASSIGN_OR_RETURN(Bytes snapshot, rotation.serialize());

    std::uint64_t old_version;
    {
      std::lock_guard<std::mutex> manifest_lock(manifest_mu_);
      old_version = unit.checkpoint_version;
    }
    std::uint64_t new_version = old_version + 1;
    SDB_RETURN_IF_ERROR(
        WriteWholeFile(*options_.vfs, CheckpointPath(p, new_version), AsSpan(snapshot)));
    SDB_RETURN_IF_ERROR(options_.vfs->SyncDir(options_.dir));

    DeltaChain old_chain;
    {
      std::lock_guard<std::mutex> manifest_lock(manifest_mu_);
      old_chain = unit.chain;
      unit.checkpoint_version = new_version;
      unit.chain = DeltaChain{new_version, {}};
      unit.chain_base_bytes = snapshot.size();
      unit.chain_delta_bytes = 0;
      if (log_generation_ == rotation.generation) {
        unit.replay_from = std::max(unit.replay_from, rotation.replay_from);
      }
      // A failed manifest write leaves the rename ambiguous, but either outcome
      // is consistent: the old chain is only deleted below, after a confirmed
      // commit, so whichever state the manifest names still exists on disk.
      SDB_RETURN_IF_ERROR(WriteManifestLocked());
    }
    // A full checkpoint supersedes the shard's whole previous chain.
    SDB_RETURN_IF_ERROR(options_.vfs->Delete(CheckpointPath(p, old_chain.base))
                            .WithContext("removing superseded checkpoint"));
    for (std::uint64_t v : old_chain.deltas) {
      SDB_RETURN_IF_ERROR(options_.vfs->Delete(DeltaPath(p, v))
                              .WithContext("removing superseded chain delta"));
    }
    unit.checkpoints->Increment();
  }
  unit.counters.log_entries_since_checkpoint->Set(0);

  if (options_.rotate_log_bytes != 0 && log_bytes() >= options_.rotate_log_bytes) {
    SDB_RETURN_IF_ERROR(MaybeRotateLog().status());
  }
  return OkStatus();
}

Status ShardedDatabase::PersistShardDelta(std::size_t p, ShardRotation rotation) {
  ShardUnit& unit = *units_[p];
  Result<Application::DeltaSnapshot> delta = rotation.serialize_delta();
  if (!delta.ok()) {
    unit.app->AbandonDeltaCapture();
    return delta.status();
  }

  std::uint64_t old_version;
  {
    std::lock_guard<std::mutex> manifest_lock(manifest_mu_);
    old_version = unit.checkpoint_version;
  }
  std::uint64_t new_version = old_version + 1;
  Status written =
      WriteWholeFile(*options_.vfs, DeltaPath(p, new_version), AsSpan(delta->bytes));
  if (written.ok()) {
    written = options_.vfs->SyncDir(options_.dir);
  }
  if (!written.ok()) {
    // Unambiguous failure: nothing references the (possibly partial) delta file
    // yet, so reclaim it and put the dirty window back for the next capture.
    (void)options_.vfs->Delete(DeltaPath(p, new_version));
    unit.app->AbandonDeltaCapture();
    return written;
  }

  Status committed;
  {
    std::lock_guard<std::mutex> manifest_lock(manifest_mu_);
    unit.checkpoint_version = new_version;
    unit.chain.deltas.push_back(new_version);
    unit.chain_delta_bytes += delta->bytes.size();
    if (log_generation_ == rotation.generation) {
      unit.replay_from = std::max(unit.replay_from, rotation.replay_from);
    }
    // Same ambiguity stance as the full path: the delta file is durable and the
    // in-memory chain now includes it, so EITHER manifest outcome is consistent
    // — if the rename landed recovery composes the delta; if it did not, the
    // entries it covers are still above the manifest's replay_from and replay
    // re-derives them from the log (the delta file is swept as an orphan).
    committed = WriteManifestLocked();
  }
  // The in-memory chain includes the delta on every path past the file write, so
  // the capture is committed even when the manifest rename is ambiguous — the
  // next capture's window must NOT re-cover keys this delta already holds.
  unit.app->CommitDeltaCapture();
  SDB_RETURN_IF_ERROR(committed);

  unit.checkpoints->Increment();
  unit.delta_checkpoints->Increment();

  bool compaction_due;
  {
    std::lock_guard<std::mutex> manifest_lock(manifest_mu_);
    compaction_due = CompactionDueLocked(unit);
  }
  if (compaction_due) {
    // Inline, while this shard's checkpoint slot is still held (our caller
    // releases it). Compaction failure never fails the checkpoint: the chain is
    // intact and simply compacts later.
    Status compacted = CompactShardChain(p);
    if (!compacted.ok()) {
      SDB_LOG(kWarning) << "shard " << p << " chain compaction failed (will retry): "
                        << compacted;
    }
  }
  return OkStatus();
}

bool ShardedDatabase::CompactionDueLocked(const ShardUnit& unit) const {
  if (!unit.chain.has_deltas()) {
    return false;
  }
  const DeltaCheckpointOptions& opts = options_.delta_checkpoint;
  if (opts.compact_after_deltas != 0 &&
      unit.chain.deltas.size() >= opts.compact_after_deltas) {
    return true;
  }
  return opts.compact_delta_base_ratio > 0 && unit.chain_base_bytes > 0 &&
         static_cast<double>(unit.chain_delta_bytes) >=
             opts.compact_delta_base_ratio * static_cast<double>(unit.chain_base_bytes);
}

Status ShardedDatabase::CompactShardChain(std::size_t p) {
  ShardUnit& unit = *units_[p];
  DeltaChain chain;
  {
    std::lock_guard<std::mutex> manifest_lock(manifest_mu_);
    chain = unit.chain;
  }
  if (!chain.has_deltas()) {
    return OkStatus();
  }

  // Compose from the on-disk chain (not live state): ComposeCheckpoint is pure,
  // so no shard lock is needed and updates proceed throughout.
  SDB_ASSIGN_OR_RETURN(Bytes base,
                       ReadWholeFile(*options_.vfs, CheckpointPath(p, chain.base)));
  std::vector<Bytes> deltas;
  std::vector<ByteSpan> delta_spans;
  deltas.reserve(chain.deltas.size());
  delta_spans.reserve(chain.deltas.size());
  for (std::uint64_t v : chain.deltas) {
    SDB_ASSIGN_OR_RETURN(Bytes delta, ReadWholeFile(*options_.vfs, DeltaPath(p, v)));
    deltas.push_back(std::move(delta));
    delta_spans.push_back(AsSpan(deltas.back()));
  }
  SDB_ASSIGN_OR_RETURN(Bytes composed,
                       unit.app->ComposeCheckpoint(AsSpan(base), delta_spans));

  std::uint64_t top = chain.top();
  Status written =
      WriteWholeFile(*options_.vfs, CheckpointPath(p, top), AsSpan(composed));
  if (written.ok()) {
    written = options_.vfs->SyncDir(options_.dir);
  }
  if (!written.ok()) {
    (void)options_.vfs->Delete(CheckpointPath(p, top));
    return written;
  }

  {
    std::lock_guard<std::mutex> manifest_lock(manifest_mu_);
    // The chain cannot have changed (the shard's checkpoint slot is held), so
    // collapse it and publish. A failed rename is ambiguous but consistent
    // either way — checkpoint(top) and the full old chain both exist on disk —
    // so keep the collapsed view and just skip reclaiming the old files (the
    // reopen sweep finishes the job).
    unit.chain = DeltaChain{top, {}};
    unit.chain_base_bytes = composed.size();
    unit.chain_delta_bytes = 0;
    SDB_RETURN_IF_ERROR(WriteManifestLocked());
  }

  Status reclaimed = options_.vfs->Delete(CheckpointPath(p, chain.base));
  for (std::uint64_t v : chain.deltas) {
    Status deleted = options_.vfs->Delete(DeltaPath(p, v));
    if (reclaimed.ok()) {
      reclaimed = deleted;
    }
  }
  if (!reclaimed.ok()) {
    SDB_LOG(kWarning) << "reclaiming compacted chain files for shard " << p << ": "
                      << reclaimed;
  }
  unit.compaction_runs->Increment();
  unit.compaction_bytes->Add(composed.size());
  return OkStatus();
}

Status ShardedDatabase::Checkpoint(std::size_t p) {
  if (p >= units_.size()) {
    return InvalidArgumentError("shard index out of range");
  }
  ShardUnit& unit = *units_[p];
  unit.AcquireCheckpointSlot();
  ShardRotation rotation;
  Status status = CheckpointPhaseA(p, &rotation);
  if (status.ok()) {
    status = CheckpointPhaseB(p, std::move(rotation));
  }
  unit.ReleaseCheckpointSlot();
  return status;
}

Status ShardedDatabase::CheckpointAll() {
  std::lock_guard<std::mutex> all(checkpoint_all_mu_);
  std::vector<Status> results(units_.size(), OkStatus());
  std::thread persist;
  for (std::size_t p = 0; p < units_.size(); ++p) {
    units_[p]->AcquireCheckpointSlot();
    ShardRotation rotation;
    Status phase_a = CheckpointPhaseA(p, &rotation);
    // Shard p's stall (Phase A) overlapped shard p-1's background persist; join it
    // before spawning p's so at most one persist thread is alive.
    if (persist.joinable()) {
      persist.join();
    }
    if (!phase_a.ok()) {
      units_[p]->ReleaseCheckpointSlot();
      results[p] = phase_a;
      continue;
    }
    persist = std::thread([this, p, &results, rot = std::move(rotation)]() mutable {
      results[p] = CheckpointPhaseB(p, std::move(rot));
      units_[p]->ReleaseCheckpointSlot();
    });
  }
  if (persist.joinable()) {
    persist.join();
  }
  for (std::size_t p = 0; p < units_.size(); ++p) {
    SDB_RETURN_IF_ERROR(
        results[p].WithContext("checkpointing shard " + std::to_string(p)));
  }
  return OkStatus();
}

Result<bool> ShardedDatabase::MaybeRotateLog() {
  // Lock order: manifest_mu_ THEN Freeze (AwaitDurable never takes manifest_mu_).
  std::lock_guard<std::mutex> manifest_lock(manifest_mu_);
  SDB_RETURN_IF_ERROR(CheckPoisoned());
  coalescer_->Freeze();
  // Under the freeze no appends can land, so the size is stable; if every shard
  // has checkpointed past it, no batch is awaiting durability either (a shard's
  // Phase A pauses its pipeline, so replay_from never covers an in-flight batch) —
  // the freeze blocks nobody mid-commit and the swap is safe.
  std::uint64_t log_size = log_->size();
  for (const auto& unit : units_) {
    if (unit->replay_from < log_size) {
      coalescer_->Unfreeze();
      return false;  // someone still needs the log's tail: the flushing rule says no
    }
  }

  std::uint64_t new_generation = log_generation_ + 1;
  Status prepared = WriteWholeFile(*options_.vfs, LogPath(new_generation), ByteSpan{});
  if (prepared.ok()) {
    prepared = options_.vfs->SyncDir(options_.dir);
  }
  if (!prepared.ok()) {
    coalescer_->Unfreeze();  // nothing committed; the stray file is swept at reopen
    return prepared;
  }

  std::uint64_t old_generation = log_generation_;
  log_generation_ = new_generation;
  for (auto& unit : units_) {
    unit->replay_from = 0;  // the fresh log starts empty; everyone is current
  }
  Status committed = WriteManifestLocked();  // commit point of the rotation
  if (!committed.ok()) {
    // The rename is ambiguous: the manifest may name the new generation while the
    // writer is still on the old one. Fail-stop rather than acknowledge updates
    // recovery might replay from the wrong file.
    poisoned_.store(true, std::memory_order_relaxed);
    coalescer_->Poison();
    coalescer_->Unfreeze();
    return committed.WithContext(
        "log rotation commit ambiguous; ensemble fail-stops until reopened");
  }

  Status closed = log_->Close();
  if (!closed.ok()) {
    SDB_LOG(kWarning) << "closing rotated-out shared log: " << closed;
  }
  Result<std::unique_ptr<LogWriter>> new_log = OpenLogForAppend(new_generation);
  if (!new_log.ok()) {
    // Manifest already names the (empty, durable) new generation but nothing can
    // append to it. Everything acknowledged is safe in the checkpoints; fail-stop.
    poisoned_.store(true, std::memory_order_relaxed);
    coalescer_->Poison();
    coalescer_->Unfreeze();
    return new_log.status().WithContext(
        "opening rotated shared log; ensemble fail-stops until reopened");
  }
  log_ = std::move(*new_log);
  coalescer_->set_log(log_.get());
  coalescer_->Unfreeze();

  Status deleted = options_.vfs->Delete(LogPath(old_generation));
  if (!deleted.ok()) {
    // Rotation is committed; the orphaned file is swept at the next reopen.
    SDB_LOG(kWarning) << "deleting rotated-out shared log: " << deleted;
  }
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.log_rotations;
  }
  return true;
}

std::uint64_t ShardedDatabase::log_bytes() const { return coalescer_->log_bytes(); }

std::uint64_t ShardedDatabase::log_generation() const {
  std::lock_guard<std::mutex> manifest_lock(manifest_mu_);
  return log_generation_;
}

std::uint64_t ShardedDatabase::reclaimable_log_bytes() const {
  std::lock_guard<std::mutex> manifest_lock(manifest_mu_);
  std::uint64_t min_offset = log_->size();
  for (const auto& unit : units_) {
    min_offset = std::min(min_offset, unit->replay_from);
  }
  return min_offset;
}

ShardedStats ShardedDatabase::stats() const {
  ShardedStats snapshot;
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    snapshot = stats_;
  }
  for (const auto& unit : units_) {
    snapshot.updates += unit->counters.updates->value();
    snapshot.enquiries += unit->enquiries->value();
    snapshot.checkpoints += unit->checkpoints->value();
    snapshot.delta_checkpoints += unit->delta_checkpoints->value();
    snapshot.compactions += unit->compaction_runs->value();
  }
  CrossShardCoalescer::Stats coalescer = coalescer_->stats();
  snapshot.covering_fsyncs = coalescer.covering_fsyncs;
  snapshot.batches_coalesced = coalescer.batches_coalesced;
  snapshot.max_batches_per_fsync = coalescer.max_batches_per_fsync;
  return snapshot;
}

GroupCommitStats ShardedDatabase::shard_commit_stats(std::size_t p) const {
  return units_[p]->committer->stats();
}

CrossShardCoalescer::Stats ShardedDatabase::coalescer_stats() const {
  return coalescer_->stats();
}

obs::Registry& ShardedDatabase::shard_metrics(std::size_t p) {
  return units_[p]->registry;
}

void ShardedDatabase::RollUpMetrics() {
  ShardedStats aggregate = stats();
  for (std::size_t p = 0; p < units_.size(); ++p) {
    const ShardUnit& unit = *units_[p];
    std::string prefix = "shard." + std::to_string(p) + ".";
    registry_.GetGauge(prefix + "updates")
        .Set(static_cast<std::int64_t>(unit.counters.updates->value()));
    registry_.GetGauge(prefix + "enquiries")
        .Set(static_cast<std::int64_t>(unit.enquiries->value()));
    registry_.GetGauge(prefix + "checkpoints")
        .Set(static_cast<std::int64_t>(unit.checkpoints->value()));
    GroupCommitStats commit = unit.committer->stats();
    registry_.GetGauge(prefix + "batches").Set(static_cast<std::int64_t>(commit.batches));
    registry_.GetGauge(prefix + "fsyncs").Set(static_cast<std::int64_t>(commit.syncs));
  }
  registry_.GetGauge("db.updates").Set(static_cast<std::int64_t>(aggregate.updates));
  registry_.GetGauge("db.enquiries").Set(static_cast<std::int64_t>(aggregate.enquiries));
  registry_.GetGauge("db.checkpoints")
      .Set(static_cast<std::int64_t>(aggregate.checkpoints));
  registry_.GetGauge("db.delta_checkpoints")
      .Set(static_cast<std::int64_t>(aggregate.delta_checkpoints));
  registry_.GetGauge("compaction.runs")
      .Set(static_cast<std::int64_t>(aggregate.compactions));
  registry_.GetGauge("commit.covering_fsyncs")
      .Set(static_cast<std::int64_t>(aggregate.covering_fsyncs));
  registry_.GetGauge("commit.batches_coalesced")
      .Set(static_cast<std::int64_t>(aggregate.batches_coalesced));
  registry_.GetGauge("commit.max_batches_per_fsync")
      .Set(static_cast<std::int64_t>(aggregate.max_batches_per_fsync));
  // Parts-per-million: the « 1 ratio survives the integer gauge (125000 = 0.125).
  registry_.GetGauge("commit.fsyncs_per_update_ppm")
      .Set(static_cast<std::int64_t>(aggregate.fsyncs_per_update() * 1e6));
  registry_.GetGauge("log.bytes").Set(static_cast<std::int64_t>(log_bytes()));
  registry_.GetGauge("log.generation").Set(static_cast<std::int64_t>(log_generation()));
}

std::string ShardedDatabase::MetricsReportJson() {
  RollUpMetrics();
  return registry_.DumpJson();
}

}  // namespace sdb
