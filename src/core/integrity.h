// Offline integrity verification of a database directory.
//
// Walks the on-disk structures without an Application: resolves the current version
// (via the same newversion/version rules recovery uses, but read-only), verifies the
// checkpoint's pickle-envelope CRC, and decodes every log entry's framing and CRC.
// Useful before taking backups, after suspected hardware trouble, and as the engine
// room of the sdb_inspect tool.
#ifndef SMALLDB_SRC_CORE_INTEGRITY_H_
#define SMALLDB_SRC_CORE_INTEGRITY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/storage/vfs.h"

namespace sdb {

struct IntegrityReport {
  std::uint64_t version = 0;
  bool pending_switch = false;  // a committed newversion awaits cleanup

  bool checkpoint_ok = false;
  std::uint64_t checkpoint_bytes = 0;
  std::string checkpoint_type;  // the pickled type name stored in the envelope

  // Delta chain: with a live manifest the current state is checkpoint<chain_base>
  // composed with each delta<v> in chain_deltas (ascending, ending at `version`).
  // Without one, chain_base == version and chain_deltas is empty. chain_ok covers
  // manifest consistency AND every chain file's presence + envelope CRC.
  std::uint64_t chain_base = 0;
  std::vector<std::uint64_t> chain_deltas;
  std::uint64_t chain_delta_bytes = 0;
  bool chain_ok = true;

  bool log_ok = false;
  std::uint64_t log_bytes = 0;
  std::uint64_t log_entries = 0;
  bool log_has_partial_tail = false;  // torn final entry (harmless: discarded at replay)
  std::uint64_t log_damaged_entries = 0;  // mid-log damage (hard error territory)

  // Pending rotation chain: a concurrent checkpoint rotated the live log to
  // `live_log_version` (recorded in the `pending` marker) but its switch has not
  // committed. The logs in `pending_logs` hold acknowledged updates and are
  // verified exactly like the main log (their entries are included in the log
  // totals above).
  std::uint64_t live_log_version = 0;  // == version when no rotation is pending
  std::vector<std::uint64_t> pending_logs;

  std::optional<std::uint64_t> previous_version;  // retained generation, if present
  std::vector<std::uint64_t> audit_logs;          // retained audit trail versions
  std::vector<std::string> problems;              // human-readable findings

  bool healthy() const {
    return checkpoint_ok && chain_ok && log_ok && log_damaged_entries == 0;
  }
};

// Verifies the database in `dir`. Returns a report even when damage is found; fails
// only if no version can be established at all.
Result<IntegrityReport> VerifyDatabaseDir(Vfs& vfs, const std::string& dir,
                                          std::size_t log_page_size = 512);

}  // namespace sdb

#endif  // SMALLDB_SRC_CORE_INTEGRITY_H_
