#include "src/core/version_store.h"

#include <algorithm>
#include <charconv>

namespace sdb {
namespace {

constexpr std::string_view kVersionFile = "version";
constexpr std::string_view kNewVersionFile = "newversion";
constexpr std::string_view kPendingFile = "pending";
constexpr std::string_view kManifestFile = "manifest";
constexpr std::string_view kCheckpointPrefix = "checkpoint";
constexpr std::string_view kLogPrefix = "logfile";
constexpr std::string_view kAuditPrefix = "audit";
constexpr std::string_view kDeltaPrefix = "delta";

std::optional<std::uint64_t> ParseDecimal(std::string_view text) {
  if (text.empty() || text.size() > 19) {
    return std::nullopt;
  }
  std::uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size() || value == 0) {
    return std::nullopt;
  }
  return value;
}

// If `name` is prefix + digits, returns the digits' value.
std::optional<std::uint64_t> ParseVersionedName(std::string_view name, std::string_view prefix) {
  if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix) != 0) {
    return std::nullopt;
  }
  return ParseDecimal(name.substr(prefix.size()));
}

}  // namespace

VersionStore::VersionStore(Vfs& vfs, std::string dir, VersionStoreOptions options)
    : vfs_(vfs), dir_(std::move(dir)), options_(options) {}

std::string VersionStore::CheckpointPath(std::uint64_t version) const {
  return JoinPath(dir_, std::string(kCheckpointPrefix) + std::to_string(version));
}

std::string VersionStore::LogPath(std::uint64_t version) const {
  return JoinPath(dir_, std::string(kLogPrefix) + std::to_string(version));
}

std::string VersionStore::AuditPath(std::uint64_t version) const {
  return JoinPath(dir_, std::string(kAuditPrefix) + std::to_string(version));
}

std::string VersionStore::DeltaPath(std::uint64_t version) const {
  return JoinPath(dir_, std::string(kDeltaPrefix) + std::to_string(version));
}

std::string VersionStore::ManifestPath() const { return JoinPath(dir_, kManifestFile); }

Result<std::vector<std::uint64_t>> VersionStore::ListAuditLogs() {
  SDB_ASSIGN_OR_RETURN(std::vector<std::string> entries, vfs_.List(dir_));
  std::vector<std::uint64_t> versions;
  for (const std::string& name : entries) {
    if (std::optional<std::uint64_t> version = ParseVersionedName(name, kAuditPrefix)) {
      versions.push_back(*version);
    }
  }
  std::sort(versions.begin(), versions.end());
  return versions;
}

Result<std::optional<std::uint64_t>> VersionStore::ReadVersionFile(std::string_view name) {
  std::string path = JoinPath(dir_, name);
  SDB_ASSIGN_OR_RETURN(bool exists, vfs_.Exists(path));
  if (!exists) {
    return {std::optional<std::uint64_t>{}};
  }
  Result<Bytes> content = ReadWholeFile(vfs_, path);
  if (!content.ok()) {
    if (content.status().Is(ErrorCode::kUnreadable)) {
      // A torn/decayed version file is "not a valid version number" — fall through to
      // the other version file rather than failing recovery.
      return {std::optional<std::uint64_t>{}};
    }
    return content.status();
  }
  return {ParseDecimal(AsStringView(AsSpan(*content)))};
}

std::string VersionStore::PendingMarkerPath() const {
  return JoinPath(dir_, kPendingFile);
}

Status VersionStore::WritePendingMarker(std::uint64_t live_version) {
  std::string digits = std::to_string(live_version);
  return AtomicWriteFile(vfs_, dir_, PendingMarkerPath(), AsSpan(digits));
}

Result<std::optional<std::uint64_t>> VersionStore::ReadPendingMarker() {
  std::string path = PendingMarkerPath();
  SDB_ASSIGN_OR_RETURN(bool exists, vfs_.Exists(path));
  if (!exists) {
    return {std::optional<std::uint64_t>{}};
  }
  // The marker was written atomically (content synced before the rename), so it is
  // never torn; an unreadable or garbled one means media decay and must fail loudly.
  SDB_ASSIGN_OR_RETURN(Bytes content, ReadWholeFile(vfs_, path));
  std::optional<std::uint64_t> value = ParseDecimal(AsStringView(AsSpan(content)));
  if (!value.has_value()) {
    return CorruptionError("pending marker " + path + " holds no valid version");
  }
  return {value};
}

Result<std::optional<DeltaChain>> VersionStore::ReadManifest() {
  std::string path = ManifestPath();
  SDB_ASSIGN_OR_RETURN(bool exists, vfs_.Exists(path));
  if (!exists) {
    return {std::optional<DeltaChain>{}};
  }
  // Published atomically (content synced before the rename), so never torn; anything
  // unreadable or unparseable is media decay and must fail loudly — guessing would
  // recover the base checkpoint as if it were the whole current state.
  Result<Bytes> content = ReadWholeFile(vfs_, path);
  if (!content.ok()) {
    if (content.status().Is(ErrorCode::kUnreadable)) {
      return CorruptionError("delta manifest " + path + " is unreadable");
    }
    return content.status();
  }
  DeltaChain chain;
  std::string_view text = AsStringView(AsSpan(*content));
  bool first = true;
  std::uint64_t last = 0;
  while (!text.empty()) {
    std::size_t eol = text.find('\n');
    std::string_view line = text.substr(0, eol);
    text = eol == std::string_view::npos ? std::string_view{} : text.substr(eol + 1);
    if (line.empty()) {
      continue;
    }
    std::string_view keyword = first ? "base " : "delta ";
    if (line.size() <= keyword.size() || line.compare(0, keyword.size(), keyword) != 0) {
      return CorruptionError("delta manifest " + path + " is garbled");
    }
    std::optional<std::uint64_t> value = ParseDecimal(line.substr(keyword.size()));
    if (!value.has_value() || (!first && *value <= last)) {
      return CorruptionError("delta manifest " + path + " is garbled");
    }
    if (first) {
      chain.base = *value;
      first = false;
    } else {
      chain.deltas.push_back(*value);
    }
    last = *value;
  }
  if (first) {
    return CorruptionError("delta manifest " + path + " is empty");
  }
  return {std::optional<DeltaChain>(std::move(chain))};
}

Status VersionStore::PublishManifest(const DeltaChain& chain) {
  std::string text = "base " + std::to_string(chain.base) + "\n";
  for (std::uint64_t v : chain.deltas) {
    text += "delta " + std::to_string(v) + "\n";
  }
  return AtomicWriteFile(vfs_, dir_, ManifestPath(), AsSpan(text));
}

// Resolves the composition chain for state.version from the manifest, applying the
// protocol rules (header comment): absent or superseded manifest => self-contained
// full checkpoint; deltas beyond `version` are truncated as orphans; a version the
// chain cannot produce, or a missing referenced file, is corruption.
Status VersionStore::ResolveDeltaChain(const std::optional<DeltaChain>& manifest,
                                       VersionState& state) {
  state.chain.base = state.version;
  state.chain.deltas.clear();
  if (!manifest.has_value()) {
    return OkStatus();
  }
  if (manifest->top() < state.version) {
    // A full-checkpoint switch committed after the chain was last extended:
    // checkpoint(version) is self-contained and the manifest is stale.
    state.manifest_superseded = true;
    return OkStatus();
  }
  if (state.version < manifest->base) {
    return CorruptionError("delta manifest claims base " +
                           std::to_string(manifest->base) +
                           " ahead of resolved version " + std::to_string(state.version));
  }
  state.chain.base = manifest->base;
  bool found = state.version == manifest->base;
  for (std::uint64_t v : manifest->deltas) {
    if (v <= state.version) {
      state.chain.deltas.push_back(v);
      found |= v == state.version;
    } else {
      state.orphan_deltas.push_back(v);
    }
  }
  if (!found) {
    return CorruptionError("delta manifest chain skips resolved version " +
                           std::to_string(state.version));
  }
  // The manifest was durable before any switch that references it, so every chain
  // file it names at or below `version` must exist.
  SDB_ASSIGN_OR_RETURN(bool base_ok, vfs_.Exists(CheckpointPath(state.chain.base)));
  if (!base_ok) {
    return CorruptionError("delta manifest names base checkpoint " +
                           std::to_string(state.chain.base) + " but " +
                           CheckpointPath(state.chain.base) + " is missing");
  }
  for (std::uint64_t v : state.chain.deltas) {
    SDB_ASSIGN_OR_RETURN(bool delta_ok, vfs_.Exists(DeltaPath(v)));
    if (!delta_ok) {
      return CorruptionError("delta manifest names delta " + std::to_string(v) +
                             " but " + DeltaPath(v) + " is missing");
    }
  }
  return OkStatus();
}

Status VersionStore::ResolvePendingChain(VersionState& state) {
  state.live_log_version = state.version;
  SDB_ASSIGN_OR_RETURN(std::optional<std::uint64_t> pending, ReadPendingMarker());
  if (!pending.has_value() || *pending <= state.version) {
    return OkStatus();  // no marker, or one made stale by a completed switch
  }
  for (std::uint64_t v = state.version + 1; v <= *pending; ++v) {
    SDB_ASSIGN_OR_RETURN(bool log_ok, vfs_.Exists(LogPath(v)));
    if (!log_ok) {
      return CorruptionError("pending marker names live log " + std::to_string(*pending) +
                             " but " + LogPath(v) + " is missing");
    }
    state.pending_log_versions.push_back(v);
  }
  state.live_log_version = *pending;
  return OkStatus();
}

Result<bool> VersionStore::IsFresh() {
  SDB_ASSIGN_OR_RETURN(bool has_version, vfs_.Exists(JoinPath(dir_, kVersionFile)));
  if (has_version) {
    return false;
  }
  SDB_ASSIGN_OR_RETURN(bool has_newversion, vfs_.Exists(JoinPath(dir_, kNewVersionFile)));
  return !has_newversion;
}

Status VersionStore::InitFresh() {
  SDB_RETURN_IF_ERROR(
      WriteWholeFile(vfs_, JoinPath(dir_, kVersionFile), AsSpan(std::string_view("1"))));
  return vfs_.SyncDir(dir_);
}

Result<VersionState> VersionStore::PeekCurrent() {
  VersionState state;
  SDB_ASSIGN_OR_RETURN(std::optional<DeltaChain> manifest, ReadManifest());

  SDB_ASSIGN_OR_RETURN(std::optional<std::uint64_t> from_newversion,
                       ReadVersionFile(kNewVersionFile));
  std::optional<std::uint64_t> chosen;
  if (from_newversion.has_value()) {
    // The switch to *from_newversion committed but was not finished. Verify the new
    // generation actually exists before trusting it (defense in depth; the protocol
    // guarantees it does). A delta switch has no checkpoint file of its own — its
    // state lives at the top of the manifest chain.
    SDB_ASSIGN_OR_RETURN(bool checkpoint_ok, vfs_.Exists(CheckpointPath(*from_newversion)));
    if (!checkpoint_ok && manifest.has_value() && manifest->top() == *from_newversion &&
        manifest->has_deltas()) {
      SDB_ASSIGN_OR_RETURN(checkpoint_ok, vfs_.Exists(DeltaPath(*from_newversion)));
    }
    SDB_ASSIGN_OR_RETURN(bool log_ok, vfs_.Exists(LogPath(*from_newversion)));
    if (checkpoint_ok && log_ok) {
      chosen = from_newversion;
      state.finished_interrupted_switch = true;
    }
  }
  if (!chosen.has_value()) {
    SDB_ASSIGN_OR_RETURN(chosen, ReadVersionFile(kVersionFile));
  }
  if (!chosen.has_value()) {
    return NotFoundError("no valid version in " + dir_);
  }

  state.version = *chosen;
  state.checkpoint_path = CheckpointPath(state.version);
  state.log_path = LogPath(state.version);

  if (options_.keep_previous_checkpoint && state.version > 1) {
    std::uint64_t prev = state.version - 1;
    SDB_ASSIGN_OR_RETURN(bool checkpoint_ok, vfs_.Exists(CheckpointPath(prev)));
    SDB_ASSIGN_OR_RETURN(bool log_ok, vfs_.Exists(LogPath(prev)));
    if (checkpoint_ok && log_ok) {
      state.previous_version = prev;
    }
  }
  SDB_RETURN_IF_ERROR(ResolveDeltaChain(manifest, state));
  SDB_RETURN_IF_ERROR(ResolvePendingChain(state));
  return state;
}

Result<VersionState> VersionStore::Recover() {
  SDB_ASSIGN_OR_RETURN(VersionState state, PeekCurrent());

  // A marker at or below the resolved version is leftover from a switch that already
  // committed (the chain it described was collapsed); sweep it.
  if (state.pending_log_versions.empty()) {
    SDB_ASSIGN_OR_RETURN(bool stale_marker, vfs_.Exists(PendingMarkerPath()));
    if (stale_marker) {
      SDB_RETURN_IF_ERROR(vfs_.Delete(PendingMarkerPath()));
      state.removed_files.push_back(PendingMarkerPath());
    }
  }

  // Repair the manifest before any file is swept: republish the truncated chain (or
  // delete a superseded/empty one) so the durable manifest never references a file a
  // later step removes. Orphan delta files themselves fall to RemoveStaleFiles.
  if (state.manifest_superseded || !state.orphan_deltas.empty()) {
    if (state.chain.has_deltas()) {
      SDB_RETURN_IF_ERROR(PublishManifest(state.chain));
    } else {
      SDB_ASSIGN_OR_RETURN(bool manifest_exists, vfs_.Exists(ManifestPath()));
      if (manifest_exists) {
        SDB_RETURN_IF_ERROR(vfs_.Delete(ManifestPath()));
        state.removed_files.push_back(ManifestPath());
      }
    }
  }

  if (state.finished_interrupted_switch) {
    // Complete the interrupted switch: delete superseded files and the old `version`,
    // then rename newversion -> version.
    SDB_RETURN_IF_ERROR(RemoveStaleFiles(state.version, state));
    SDB_ASSIGN_OR_RETURN(bool has_old_version, vfs_.Exists(JoinPath(dir_, kVersionFile)));
    if (has_old_version) {
      SDB_RETURN_IF_ERROR(vfs_.Delete(JoinPath(dir_, kVersionFile)));
      state.removed_files.push_back(JoinPath(dir_, kVersionFile));
    }
    SDB_RETURN_IF_ERROR(vfs_.Rename(JoinPath(dir_, kNewVersionFile), JoinPath(dir_, kVersionFile)));
    SDB_RETURN_IF_ERROR(vfs_.SyncDir(dir_));
  } else {
    // A stale or invalid newversion (crash before its commit) is redundant.
    SDB_ASSIGN_OR_RETURN(bool has_newversion, vfs_.Exists(JoinPath(dir_, kNewVersionFile)));
    if (has_newversion) {
      SDB_RETURN_IF_ERROR(vfs_.Delete(JoinPath(dir_, kNewVersionFile)));
      state.removed_files.push_back(JoinPath(dir_, kNewVersionFile));
    }
    SDB_RETURN_IF_ERROR(RemoveStaleFiles(state.version, state));
    SDB_RETURN_IF_ERROR(vfs_.SyncDir(dir_));
  }

  if (options_.keep_previous_checkpoint && state.version > 1) {
    std::uint64_t prev = state.version - 1;
    SDB_ASSIGN_OR_RETURN(bool checkpoint_ok, vfs_.Exists(CheckpointPath(prev)));
    SDB_ASSIGN_OR_RETURN(bool log_ok, vfs_.Exists(LogPath(prev)));
    if (checkpoint_ok && log_ok) {
      state.previous_version = prev;
    }
  }
  return state;
}

Status VersionStore::RemoveStaleFiles(std::uint64_t current, VersionState& state) {
  SDB_ASSIGN_OR_RETURN(std::vector<std::string> entries, vfs_.List(dir_));
  for (const std::string& name : entries) {
    std::optional<std::uint64_t> version = ParseVersionedName(name, kCheckpointPrefix);
    bool is_log = false;
    bool is_delta = false;
    if (!version.has_value()) {
      version = ParseVersionedName(name, kLogPrefix);
      is_log = version.has_value();
    }
    if (!version.has_value()) {
      version = ParseVersionedName(name, kDeltaPrefix);
      is_delta = version.has_value();
    }
    bool is_tmp = name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0;
    bool stale = false;
    if (is_delta) {
      // A delta is live only while the resolved chain references it (orphans beyond
      // `current` and files of a compacted-away chain are garbage).
      stale = std::find(state.chain.deltas.begin(), state.chain.deltas.end(), *version) ==
              state.chain.deltas.end();
    } else if (version.has_value()) {
      // Under a delta chain the base checkpoint is the live one; a checkpoint file at
      // `current` is then an orphan from a compaction that crashed before its
      // manifest-delete commit point (possibly torn — the chain stays authoritative).
      bool keep = (is_log && *version == current) ||
                  (!is_log && *version == current && !state.chain.has_deltas()) ||
                  (!is_log && *version == state.chain.base) ||
                  (options_.keep_previous_checkpoint && *version + 1 == current) ||
                  // Rotated-but-unswitched logs hold acknowledged updates.
                  (is_log && *version > current && *version <= state.live_log_version);
      stale = !keep;
    } else if (is_tmp) {
      stale = true;
    }
    if (!stale) {
      continue;
    }
    std::string path = JoinPath(dir_, name);
    if (is_log && options_.retain_logs_for_audit) {
      // Superseded logs become the audit trail rather than garbage.
      SDB_RETURN_IF_ERROR(vfs_.Rename(path, AuditPath(*version)));
    } else {
      SDB_RETURN_IF_ERROR(vfs_.Delete(path));
    }
    state.removed_files.push_back(path);
  }
  return OkStatus();
}

Status VersionStore::CommitSwitch(std::uint64_t current_version, std::uint64_t new_version,
                                  bool* switch_ambiguous) {
  if (switch_ambiguous != nullptr) {
    *switch_ambiguous = false;
  }
  // Read the manifest before the commit point. A *delta* switch (the manifest's top
  // names the new generation) must keep every chain file it references; a *full*
  // switch over an existing chain supersedes the whole chain, manifest included.
  SDB_ASSIGN_OR_RETURN(std::optional<DeltaChain> manifest, ReadManifest());
  bool delta_switch = manifest.has_value() && manifest->has_deltas() &&
                      manifest->top() == new_version;
  auto chain_references = [&](std::uint64_t v, bool as_delta) {
    if (!delta_switch) {
      return false;
    }
    if (as_delta) {
      return std::find(manifest->deltas.begin(), manifest->deltas.end(), v) !=
             manifest->deltas.end();
    }
    return v == manifest->base;
  };
  // The new checkpoint and log files exist and are synced; make their directory
  // entries durable before committing to them.
  SDB_RETURN_IF_ERROR(vfs_.SyncDir(dir_));

  // Commit point: `newversion` durably names the new generation. (A failure inside
  // the write leaves its content unsynced or truncated — either resolves back to the
  // old generation on restart, so the attempt is still cleanly abortable.)
  std::string digits = std::to_string(new_version);
  SDB_RETURN_IF_ERROR(WriteWholeFile(vfs_, JoinPath(dir_, kNewVersionFile), AsSpan(digits)));
  if (switch_ambiguous != nullptr) {
    *switch_ambiguous = true;
  }
  SDB_RETURN_IF_ERROR(vfs_.SyncDir(dir_));

  // Cleanup after the commit point: delete every superseded generation (the old
  // current plus any rotated-but-unswitched logs the new checkpoint collapsed,
  // respecting retention), the pending marker, and `version`; rename
  // newversion -> version.
  std::uint64_t doomed_from = current_version;
  if (options_.keep_previous_checkpoint && current_version > 1) {
    doomed_from = current_version - 1;
  }
  for (std::uint64_t v = doomed_from; v < new_version && v > 0; ++v) {
    SDB_ASSIGN_OR_RETURN(bool checkpoint_exists, vfs_.Exists(CheckpointPath(v)));
    if (options_.keep_previous_checkpoint && v + 1 == new_version && checkpoint_exists) {
      continue;  // this generation becomes the retained previous one
    }
    if (checkpoint_exists && !chain_references(v, /*as_delta=*/false)) {
      SDB_RETURN_IF_ERROR(vfs_.Delete(CheckpointPath(v)));
    }
    SDB_ASSIGN_OR_RETURN(bool delta_exists, vfs_.Exists(DeltaPath(v)));
    if (delta_exists && !chain_references(v, /*as_delta=*/true)) {
      SDB_RETURN_IF_ERROR(vfs_.Delete(DeltaPath(v)));  // orphan from an aborted persist
    }
    SDB_ASSIGN_OR_RETURN(bool log_exists, vfs_.Exists(LogPath(v)));
    if (log_exists) {
      if (options_.retain_logs_for_audit) {
        SDB_RETURN_IF_ERROR(vfs_.Rename(LogPath(v), AuditPath(v)));
      } else {
        SDB_RETURN_IF_ERROR(vfs_.Delete(LogPath(v)));
      }
    }
  }
  if (manifest.has_value() && !delta_switch) {
    // The new full checkpoint supersedes the chain. Manifest first (so a crash never
    // leaves it referencing deleted files), then the chain files the loop above could
    // not reach (base and deltas below the doomed range).
    SDB_RETURN_IF_ERROR(vfs_.Delete(ManifestPath()));
    SDB_ASSIGN_OR_RETURN(bool base_exists, vfs_.Exists(CheckpointPath(manifest->base)));
    if (base_exists && manifest->base != new_version) {
      SDB_RETURN_IF_ERROR(vfs_.Delete(CheckpointPath(manifest->base)));
    }
    for (std::uint64_t v : manifest->deltas) {
      SDB_ASSIGN_OR_RETURN(bool delta_exists, vfs_.Exists(DeltaPath(v)));
      if (delta_exists && v != new_version) {
        SDB_RETURN_IF_ERROR(vfs_.Delete(DeltaPath(v)));
      }
    }
  }
  SDB_ASSIGN_OR_RETURN(bool marker_exists, vfs_.Exists(PendingMarkerPath()));
  if (marker_exists) {
    SDB_RETURN_IF_ERROR(vfs_.Delete(PendingMarkerPath()));
  }
  SDB_ASSIGN_OR_RETURN(bool has_version, vfs_.Exists(JoinPath(dir_, kVersionFile)));
  if (has_version) {
    SDB_RETURN_IF_ERROR(vfs_.Delete(JoinPath(dir_, kVersionFile)));
  }
  SDB_RETURN_IF_ERROR(vfs_.Rename(JoinPath(dir_, kNewVersionFile), JoinPath(dir_, kVersionFile)));
  return vfs_.SyncDir(dir_);
}

}  // namespace sdb
