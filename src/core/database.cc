#include "src/core/database.h"

#include "src/common/logging.h"
#include "src/core/parallel_replay.h"

namespace sdb {

Database::Database(Application& app, DatabaseOptions options)
    : app_(app),
      options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock : &wall_clock_),
      version_store_(*options_.vfs, options_.dir,
                     VersionStoreOptions{options_.keep_previous_checkpoint,
                                         options_.retain_logs_for_audit}) {
  if (options_.trace_ring_capacity > 0) {
    trace_ring_ = std::make_unique<obs::TraceRing>(options_.trace_ring_capacity);
  }
  stage_metrics_ = obs::CommitStageMetrics::Register(registry_, trace_ring_.get());
  counters_.updates = &registry_.GetCounter("db.updates");
  counters_.precondition_failures = &registry_.GetCounter("db.update_precondition_failures");
  counters_.commit_failures = &registry_.GetCounter("db.update_commit_failures");
  counters_.log_entries_since_checkpoint =
      &registry_.GetGauge("db.log_entries_since_checkpoint");
  counters_.log_bytes = &registry_.GetGauge("db.log_bytes");
  enquiries_ = &registry_.GetCounter("db.enquiries");
  checkpoints_ = &registry_.GetCounter("db.checkpoints");
  auto_checkpoints_ = &registry_.GetCounter("db.auto_checkpoints");
  checkpoint_in_progress_ = &registry_.GetGauge("checkpoint.in_progress");
  checkpoint_failures_ = &registry_.GetCounter("db.checkpoint_failures");
  delta_checkpoints_ = &registry_.GetCounter("db.delta_checkpoints");
  compaction_runs_ = &registry_.GetCounter("compaction.runs");
  compaction_bytes_ = &registry_.GetCounter("compaction.bytes");
  compaction_failures_ = &registry_.GetCounter("db.compaction_failures");
  // Delta mode needs self-contained-checkpoint retention OFF: the previous-
  // generation hard-error fallback reloads checkpoint(N-1) directly, which a delta
  // file is not. Application support is probed per rotation (a null capture closure
  // falls back to a full snapshot).
  delta_effective_ = options_.delta_checkpoint.enabled &&
                     !options_.keep_previous_checkpoint &&
                     !options_.fallback_to_previous_checkpoint;
}

Database::~Database() {
  shutting_down_.store(true, std::memory_order_relaxed);
  // Join the compactor before draining the checkpoint slot: the compaction thread
  // acquires the slot itself, so it must be gone before the slot can drain for good.
  // If it is still waiting on the slot it will acquire it, see shutting_down_, and
  // exit without compacting.
  {
    std::lock_guard<std::mutex> gate(compaction_mu_);
    if (compaction_thread_.joinable()) {
      compaction_thread_.join();
    }
  }
  // Drain the checkpoint slot next: a background persist may still be streaming the
  // snapshot, and it must finish (and be joined) before the log and committer go.
  {
    std::unique_lock<std::mutex> gate(checkpoint_mu_);
    checkpoint_cv_.wait(gate, [this] { return !checkpoint_in_flight_; });
    if (checkpoint_thread_.joinable()) {
      checkpoint_thread_.join();
    }
  }
  committer_.reset();  // no batch may outlive the log writer
  if (log_ != nullptr) {
    Status status = log_->Close();
    if (!status.ok()) {
      SDB_LOG(kWarning) << "closing log: " << status;
    }
  }
}

Result<std::unique_ptr<Database>> Database::Open(Application& app, DatabaseOptions options) {
  if (options.vfs == nullptr || options.dir.empty()) {
    return InvalidArgumentError("DatabaseOptions requires vfs and dir");
  }
  std::unique_ptr<Database> db(new Database(app, std::move(options)));
  SDB_RETURN_IF_ERROR(db->Recover().WithContext("opening database in " + db->options_.dir));
  if (db->options_.group_commit.enabled) {
    // The private-base upcast must happen here, inside a member, not in make_unique.
    GroupCommitHost& host = *db;
    db->log_sink_.set_log(db->log_.get());
    db->committer_ = std::make_unique<GroupCommitter>(db->lock_, *db->clock_, host,
                                                      &db->log_sink_, &db->counters_,
                                                      db->stage_metrics_,
                                                      db->options_.group_commit);
  }
  return db;
}

Result<std::unique_ptr<Database>> Database::OpenReadOnly(Application& app,
                                                         DatabaseOptions options) {
  if (options.vfs == nullptr || options.dir.empty()) {
    return InvalidArgumentError("DatabaseOptions requires vfs and dir");
  }
  std::unique_ptr<Database> db(new Database(app, std::move(options)));
  db->read_only_ = true;
  SDB_ASSIGN_OR_RETURN(VersionState state, db->version_store_.PeekCurrent());
  db->version_.store(state.version, std::memory_order_relaxed);
  db->live_log_version_.store(state.live_log_version, std::memory_order_relaxed);
  SDB_RETURN_IF_ERROR(db->LoadCheckpointAndReplay(state).WithContext(
      "opening database read-only in " + db->options_.dir));
  return db;
}

Status Database::Recover() {
  SDB_RETURN_IF_ERROR(options_.vfs->CreateDir(options_.dir));
  SDB_ASSIGN_OR_RETURN(bool fresh, version_store_.IsFresh());
  if (fresh) {
    SDB_RETURN_IF_ERROR(InitFreshDatabase());
    live_log_version_.store(1, std::memory_order_relaxed);
  } else {
    SDB_ASSIGN_OR_RETURN(VersionState state, version_store_.Recover());
    version_.store(state.version, std::memory_order_relaxed);
    // A pending rotation is adopted as-is: updates keep committing to the rotated
    // log (its `pending` marker stays) and the next checkpoint collapses the chain.
    live_log_version_.store(state.live_log_version, std::memory_order_relaxed);
    stats_.restart.finished_interrupted_switch = state.finished_interrupted_switch;
    SDB_RETURN_IF_ERROR(LoadCheckpointAndReplay(state));
  }
  SDB_ASSIGN_OR_RETURN(
      log_, OpenLogForAppend(version_store_.LogPath(
                live_log_version_.load(std::memory_order_relaxed))));
  counters_.log_bytes->Set(static_cast<std::int64_t>(log_->size()));
  last_checkpoint_time_.store(clock_->NowMicros(), std::memory_order_relaxed);
  return OkStatus();
}

Status Database::InitFreshDatabase() {
  version_.store(1, std::memory_order_relaxed);
  SDB_RETURN_IF_ERROR(app_.ResetState());
  SDB_ASSIGN_OR_RETURN(Bytes snapshot, app_.SerializeState());
  SDB_RETURN_IF_ERROR(
      WriteWholeFile(*options_.vfs, version_store_.CheckpointPath(1), AsSpan(snapshot)));
  SDB_RETURN_IF_ERROR(WriteWholeFile(*options_.vfs, version_store_.LogPath(1), ByteSpan{}));
  SDB_RETURN_IF_ERROR(options_.vfs->SyncDir(options_.dir));
  {
    std::lock_guard<std::mutex> chain_lock(chain_mu_);
    chain_ = DeltaChain{1, {}};
    chain_base_bytes_ = snapshot.size();
    chain_delta_bytes_ = 0;
  }
  return version_store_.InitFresh();
}

Status Database::LoadCheckpointAndReplay(const VersionState& state) {
  Stopwatch restart_watch(*clock_);

  LogReplayOptions replay_options;
  replay_options.skip_damaged_entries = options_.skip_damaged_log_entries;
  replay_options.page_size = options_.log_replay_page_size;

  // Every replayed entry — hard-error previous log, current log, pending chain —
  // funnels through one replayer in chain order, so per-key ordering holds across
  // log generations. With recovery_threads = 1 this is exactly the old serial
  // apply; with > 1 the entries buffer during the sequential read pass and apply
  // on the worker pool at Finish.
  ParallelReplayOptions parallel_options;
  parallel_options.threads = options_.recovery_threads;
  parallel_options.clock = clock_;
  ParallelReplayer replayer(parallel_options);
  const std::size_t replay_app = replayer.AddApplication(app_);
  auto apply = [&replayer, replay_app](ByteSpan record) {
    return replayer.Add(replay_app, record);
  };

  // Step 1+2 of the paper's restart: read the current checkpoint to obtain an old
  // version of the virtual memory structure. With a delta chain, "the checkpoint"
  // is checkpoint(base) composed with each delta in manifest order — the
  // application's ComposeCheckpoint must land on bytes identical to the full
  // checkpoint it replaces, so everything downstream (replay, parallel or serial)
  // is oblivious to how the state got here.
  Status load_status = OkStatus();
  if (state.chain.has_deltas()) {
    SDB_ASSIGN_OR_RETURN(
        Bytes base,
        ReadWholeFile(*options_.vfs, version_store_.CheckpointPath(state.chain.base)));
    std::vector<Bytes> delta_bytes;
    delta_bytes.reserve(state.chain.deltas.size());
    std::uint64_t delta_total = 0;
    for (std::uint64_t delta_version : state.chain.deltas) {
      SDB_ASSIGN_OR_RETURN(
          Bytes delta,
          ReadWholeFile(*options_.vfs, version_store_.DeltaPath(delta_version)));
      delta_total += delta.size();
      delta_bytes.push_back(std::move(delta));
    }
    std::vector<ByteSpan> delta_spans;
    delta_spans.reserve(delta_bytes.size());
    for (const Bytes& delta : delta_bytes) {
      delta_spans.push_back(AsSpan(delta));
    }
    Result<Bytes> composed = app_.ComposeCheckpoint(AsSpan(base), delta_spans);
    if (!composed.ok()) {
      return composed.status().WithContext("composing delta checkpoint chain");
    }
    SDB_RETURN_IF_ERROR(app_.ResetState());
    load_status = app_.DeserializeState(AsSpan(*composed));
    {
      std::lock_guard<std::mutex> chain_lock(chain_mu_);
      chain_ = state.chain;
      chain_base_bytes_ = base.size();
      chain_delta_bytes_ = delta_total;
    }
  } else {
    Result<Bytes> snapshot = ReadWholeFile(*options_.vfs, state.checkpoint_path);
    if (snapshot.ok()) {
      SDB_RETURN_IF_ERROR(app_.ResetState());
      load_status = app_.DeserializeState(AsSpan(*snapshot));
      std::lock_guard<std::mutex> chain_lock(chain_mu_);
      chain_ = state.chain;
      chain_base_bytes_ = snapshot->size();
      chain_delta_bytes_ = 0;
    } else {
      load_status = snapshot.status();
    }
  }
  registry_.GetGauge("restart.chain_deltas_composed")
      .Set(static_cast<std::int64_t>(state.chain.deltas.size()));

  bool used_previous = false;
  if (!load_status.ok()) {
    bool hard_error = load_status.Is(ErrorCode::kUnreadable) ||
                      load_status.Is(ErrorCode::kCorruption);
    if (!hard_error || !options_.fallback_to_previous_checkpoint ||
        !state.previous_version.has_value()) {
      return load_status.WithContext("loading checkpoint " + state.checkpoint_path);
    }
    // Hard-error recovery (Section 4): reload the previous checkpoint, replay the
    // previous log, then fall through to replaying the current log.
    std::uint64_t prev = *state.previous_version;
    SDB_ASSIGN_OR_RETURN(Bytes snapshot,
                         ReadWholeFile(*options_.vfs, version_store_.CheckpointPath(prev)));
    SDB_RETURN_IF_ERROR(app_.ResetState());
    SDB_RETURN_IF_ERROR(app_.DeserializeState(AsSpan(snapshot))
                            .WithContext("loading previous checkpoint"));
    SDB_ASSIGN_OR_RETURN(LogReplayStats prev_replay,
                         ReplayLogFile(*options_.vfs, version_store_.LogPath(prev),
                                       replay_options, apply));
    stats_.restart.entries_replayed += prev_replay.entries_replayed;
    stats_.restart.entries_skipped += prev_replay.entries_skipped;
    used_previous = true;
  }
  stats_.restart.checkpoint_read_micros = restart_watch.ElapsedMicros();
  stats_.restart.used_previous_checkpoint = used_previous;

  // Step 3: replay the updates from the log — then any rotated-but-unswitched logs a
  // pending concurrent checkpoint left behind, in generation order (dual-log
  // resolution: acknowledged updates kept committing to the rotated log while the
  // checkpoint that would have covered them was still in flight at the crash).
  Stopwatch replay_watch(*clock_);
  SDB_ASSIGN_OR_RETURN(LogReplayStats replay,
                       ReplayLogFile(*options_.vfs, state.log_path, replay_options, apply));
  std::uint64_t entries_since_checkpoint = replay.entries_replayed;
  stats_.restart.entries_replayed += replay.entries_replayed;
  stats_.restart.entries_skipped += replay.entries_skipped;
  stats_.restart.partial_tail_discarded = replay.partial_tail_discarded;
  for (std::uint64_t pending_version : state.pending_log_versions) {
    SDB_ASSIGN_OR_RETURN(
        LogReplayStats pending_replay,
        ReplayLogFile(*options_.vfs, version_store_.LogPath(pending_version),
                      replay_options, apply));
    entries_since_checkpoint += pending_replay.entries_replayed;
    stats_.restart.entries_replayed += pending_replay.entries_replayed;
    stats_.restart.entries_skipped += pending_replay.entries_skipped;
    stats_.restart.partial_tail_discarded |= pending_replay.partial_tail_discarded;
    ++stats_.restart.pending_logs_replayed;
  }
  SDB_RETURN_IF_ERROR(replayer.Finish().WithContext("parallel log replay"));
  // Wall-clock elapsed for the whole phase (the stopwatch spans reads, batch
  // apply and merge); the CPU aggregate is reported separately so parallel
  // replay never inflates the elapsed number.
  stats_.restart.replay_micros = replay_watch.ElapsedMicros();
  const ParallelReplayStats& parallel = replayer.stats();
  stats_.restart.replay_batches = parallel.batches;
  stats_.restart.replay_threads_used = parallel.threads_used;
  stats_.restart.partition_pass_micros = parallel.partition_pass_micros;
  stats_.restart.batch_apply_micros = parallel.batch_apply_micros;
  stats_.restart.replay_cpu_micros =
      parallel.batches > 0
          ? parallel.partition_pass_micros + parallel.batch_apply_micros
          : stats_.restart.replay_micros;  // serial: one thread, CPU == wall
  counters_.log_entries_since_checkpoint->Set(
      static_cast<std::int64_t>(entries_since_checkpoint));
  // Restart timings, mirrored into the registry for MetricsReport.
  registry_.GetGauge("restart.checkpoint_read_us")
      .Set(stats_.restart.checkpoint_read_micros);
  registry_.GetGauge("restart.replay_us").Set(stats_.restart.replay_micros);
  registry_.GetGauge("restart.replay_cpu_us").Set(stats_.restart.replay_cpu_micros);
  registry_.GetGauge("restart.replay.batches")
      .Set(static_cast<std::int64_t>(stats_.restart.replay_batches));
  registry_.GetGauge("restart.replay.threads_used")
      .Set(static_cast<std::int64_t>(stats_.restart.replay_threads_used));
  registry_.GetGauge("restart.replay.partition_pass_us")
      .Set(stats_.restart.partition_pass_micros);
  registry_.GetGauge("restart.replay.batch_apply_us")
      .Set(stats_.restart.batch_apply_micros);
  registry_.GetGauge("restart.entries_replayed")
      .Set(static_cast<std::int64_t>(stats_.restart.entries_replayed));
  registry_.GetGauge("restart.pending_logs_replayed")
      .Set(static_cast<std::int64_t>(stats_.restart.pending_logs_replayed));
  SDB_LOG(kDebug) << "recovered " << options_.dir << ": checkpoint read in "
                  << stats_.restart.checkpoint_read_micros << " us, "
                  << stats_.restart.entries_replayed << " log entries replayed in "
                  << stats_.restart.replay_micros << " us";
  return OkStatus();
}

Result<std::unique_ptr<LogWriter>> Database::OpenLogForAppend(const std::string& path) {
  SDB_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                       options_.vfs->Open(path, OpenMode::kReadWrite));
  SDB_ASSIGN_OR_RETURN(std::uint64_t size, file->Size());
  // Discard a torn tail so new entries are never appended after garbage. The replay
  // layer already ignored it; physically truncating keeps the file parseable.
  if (options_.log_writer.pad_to_page_boundary &&
      size % options_.log_writer.page_size != 0) {
    size = (size / options_.log_writer.page_size) * options_.log_writer.page_size;
    SDB_RETURN_IF_ERROR(file->Truncate(size));
    SDB_RETURN_IF_ERROR(file->Sync());
  }
  return std::make_unique<LogWriter>(std::move(file), size, options_.log_writer);
}

Status Database::CheckPoisoned() const {
  if (poisoned_) {
    return InternalError(
        "database is poisoned: an applied update diverged from the log; reopen to recover");
  }
  return OkStatus();
}

namespace {

Status ReadOnlyError() {
  return FailedPreconditionError("database was opened read-only");
}

// Quiesces the commit pipeline for the guard's scope (no-op when group commit is
// off). Taken BEFORE the update lock: an in-flight batch needs the lock to finish,
// so pausing after acquiring it would deadlock.
class PipelinePause {
 public:
  explicit PipelinePause(GroupCommitter* committer) : committer_(committer) {
    if (committer_ != nullptr) {
      committer_->Pause();
    }
  }
  ~PipelinePause() {
    if (committer_ != nullptr) {
      committer_->Resume();
    }
  }
  PipelinePause(const PipelinePause&) = delete;
  PipelinePause& operator=(const PipelinePause&) = delete;

 private:
  GroupCommitter* committer_;
};

}  // namespace

Status Database::Enquire(const std::function<Status()>& enquiry) {
  SueLock::SharedGuard guard(lock_);
  SDB_RETURN_IF_ERROR(CheckPoisoned());
  Status status = enquiry();
  enquiries_->Increment();
  return status;
}

Status Database::Update(const std::function<Result<Bytes>()>& prepare) {
  std::vector<std::function<Result<Bytes>()>> one{prepare};
  return UpdateBatch(one);
}

Status Database::UpdateBatch(const std::vector<std::function<Result<Bytes>()>>& prepares) {
  if (prepares.empty()) {
    return InvalidArgumentError("empty update batch");
  }
  if (read_only_) {
    return ReadOnlyError();
  }
  if (committer_ != nullptr) {
    SDB_RETURN_IF_ERROR(committer_->Submit({prepares.data(), prepares.size()}));
    MaybeAutoCheckpoint();
    return OkStatus();
  }
  return UpdateSerial(prepares);
}

std::vector<Status> Database::UpdateMany(
    const std::vector<std::function<Result<Bytes>()>>& prepares) {
  std::vector<Status> out;
  if (prepares.empty()) {
    return out;
  }
  if (read_only_) {
    out.assign(prepares.size(), ReadOnlyError());
    return out;
  }
  if (committer_ != nullptr) {
    out = committer_->SubmitMany({prepares.data(), prepares.size()});
    MaybeAutoCheckpoint();
    return out;
  }
  // Serial fallback: each update is its own one-fsync commit, so per-update
  // outcomes stay independent exactly as they do in the pipeline.
  out.reserve(prepares.size());
  for (const auto& prepare : prepares) {
    std::vector<std::function<Result<Bytes>()>> one{prepare};
    out.push_back(UpdateSerial(one));
  }
  return out;
}

// The paper's base protocol: one commit fsync per UpdateBatch call, the update lock
// held across the disk write. Used when group commit is disabled. Stage timings are
// recorded exactly like the pipeline's (queue wait is structurally zero here).
Status Database::UpdateSerial(const std::vector<std::function<Result<Bytes>()>>& prepares) {
  UpdateBreakdown breakdown;
  const bool timing = obs::Enabled();
  obs::CommitTrace trace;
  {
    Micros t_start = timing ? clock_->NowMicros() : 0;
    SueLock::UpdateGuard guard(lock_);
    Micros t_locked = clock_->NowMicros();
    SDB_RETURN_IF_ERROR(CheckPoisoned());
    trace.epoch = commit_epoch_.fetch_add(1, std::memory_order_relaxed) + 1;

    // Step 1: verify preconditions and gather the parameters of each update into a
    // record, under the update lock (enquiries continue concurrently).
    std::vector<Bytes> records;
    records.reserve(prepares.size());
    for (const auto& prepare : prepares) {
      Result<Bytes> record = prepare();
      if (!record.ok()) {
        counters_.precondition_failures->Increment();
        return record.status();
      }
      records.push_back(std::move(*record));
    }
    Micros t_prepared = clock_->NowMicros();
    breakdown.prepare_micros = t_prepared - t_locked;

    // Step 2: record the updates in the disk log. The fsync is the commit point.
    for (const Bytes& record : records) {
      Status status = log_->Append(AsSpan(record));
      if (!status.ok()) {
        counters_.commit_failures->Increment();
        return status.WithContext("appending log entry");
      }
    }
    Micros t_appended = timing ? clock_->NowMicros() : t_prepared;
    Status commit = log_->Commit();
    Micros t_synced = clock_->NowMicros();
    counters_.log_bytes->Set(static_cast<std::int64_t>(log_->size()));
    if (!commit.ok()) {
      counters_.commit_failures->Increment();
      return commit.WithContext("committing log entry");
    }
    breakdown.log_micros = t_synced - t_prepared;
    stage_metrics_.fsyncs->Increment();

    // Step 3: apply to the virtual memory structure, in exclusive mode (enquiries are
    // excluded only for this in-memory step, never during the disk write).
    guard.Upgrade();
    Micros t_exclusive = clock_->NowMicros();
    for (const Bytes& record : records) {
      Status status = app_.ApplyUpdate(AsSpan(record));
      if (!status.ok()) {
        // The record is durably logged but could not be applied: memory and disk have
        // diverged. Fail closed.
        poisoned_ = true;
        return status.WithContext("applying committed update (database poisoned)");
      }
    }
    Micros t_applied = clock_->NowMicros();
    breakdown.apply_micros = t_applied - t_exclusive;
    breakdown.total_micros =
        breakdown.prepare_micros + breakdown.log_micros + breakdown.apply_micros;

    counters_.updates->Add(records.size());
    counters_.log_entries_since_checkpoint->Add(static_cast<std::int64_t>(records.size()));
    if (timing) {
      trace.records = records.size();
      trace.start_micros = t_start;
      trace.set_stage(obs::CommitStage::kLockWait, t_locked - t_start);
      trace.set_stage(obs::CommitStage::kPrepare, t_prepared - t_locked);
      trace.set_stage(obs::CommitStage::kAppend, t_appended - t_prepared);
      trace.set_stage(obs::CommitStage::kFsync, t_synced - t_appended);
      trace.set_stage(obs::CommitStage::kExclusiveWait, t_exclusive - t_synced);
      trace.set_stage(obs::CommitStage::kApply, t_applied - t_exclusive);
      trace.total_micros = t_applied - t_start;
      stage_metrics_.RecordBatch(trace);
    }
    {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      stats_.last_update = breakdown;
    }
  }
  MaybeAutoCheckpoint();
  return OkStatus();
}

Result<std::uint64_t> Database::BatchBegin() {
  std::uint64_t epoch = commit_epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  SDB_RETURN_IF_ERROR(CheckPoisoned());
  return epoch;
}

Status Database::BatchApply(ByteSpan record) { return app_.ApplyUpdate(record); }

void Database::BatchPoisoned(const Status& cause) {
  // Called under the exclusive lock; readers check via CheckPoisoned under at least
  // the shared lock, so the lock's ordering publishes the flag.
  (void)cause;
  poisoned_ = true;
}

void Database::BatchCommitted(const UpdateBreakdown& breakdown) {
  std::lock_guard<std::mutex> stats_lock(stats_mutex_);
  stats_.last_update = breakdown;
}

Status Database::ReplaceState(ByteSpan state) {
  if (read_only_) {
    return ReadOnlyError();
  }
  AcquireCheckpointSlot();
  Status status = [&]() -> Status {
    PipelinePause pause(committer_.get());
    SueLock::UpdateGuard guard(lock_);
    guard.Upgrade();
    SDB_RETURN_IF_ERROR(app_.ResetState());
    SDB_RETURN_IF_ERROR(
        app_.DeserializeState(state).WithContext("installing replacement state"));
    guard.Downgrade();
    poisoned_ = false;
    CheckpointRotation rotation;
    // Forced full: the replacement state shares no ancestry with the old chain, so
    // a delta over it would compose garbage.
    SDB_RETURN_IF_ERROR(RotateForCheckpointLocked(&rotation, /*force_full=*/true));
    // Persist while still holding the update lock, even with concurrent_checkpoint:
    // an update committed against the replacement state must never land in a log
    // that a pre-switch recovery would replay on top of the OLD state.
    return PersistCheckpoint(std::move(rotation));
  }();
  ReleaseCheckpointSlot();
  return status;
}

Status Database::Checkpoint() {
  if (read_only_) {
    return ReadOnlyError();
  }
  AcquireCheckpointSlot();
  CheckpointRotation rotation;
  Status status;
  bool persist_unlocked = false;
  {
    PipelinePause pause(committer_.get());
    SueLock::UpdateGuard guard(lock_);
    status = CheckPoisoned();
    if (status.ok()) {
      status = RotateForCheckpointLocked(&rotation);
    }
    if (status.ok() && !options_.concurrent_checkpoint) {
      // Paper-original behaviour: the whole write happens under the update lock.
      status = PersistCheckpoint(std::move(rotation));
    } else if (status.ok()) {
      persist_unlocked = true;
    }
  }
  if (persist_unlocked) {
    status = PersistCheckpoint(std::move(rotation));
  }
  ReleaseCheckpointSlot();
  return status;
}

// Phase A. Caller holds the update lock with the pipeline paused. On success the
// live log is generation rotation->target and the durable `pending` marker makes it
// recoverable; on failure the engine keeps running on whatever log was live (a
// durable marker with an aborted rotation is harmless: it only extends the replay
// chain with logs that already exist).
Status Database::RotateForCheckpointLocked(CheckpointRotation* rotation, bool force_full) {
  Stopwatch stall_watch(*clock_);
  rotation->start_micros = clock_->NowMicros();

  // Delta or full? Delta when the mode is effective, the caller didn't force full,
  // and the chain hasn't hit its hard length ceiling (repeatedly failed compaction);
  // then the application gets the final say — a null capture closure means it can't
  // produce deltas and the full path runs as before.
  bool want_delta = delta_effective_ && !force_full;
  if (want_delta &&
      options_.delta_checkpoint.force_full_at_chain_length > 0) {
    std::lock_guard<std::mutex> chain_lock(chain_mu_);
    if (chain_.length() >= options_.delta_checkpoint.force_full_at_chain_length) {
      want_delta = false;
    }
  }

  // Capture a consistent snapshot — the only O(state) work updates must wait for
  // (O(churn) in delta mode).
  Stopwatch capture_watch(*clock_);
  if (want_delta) {
    SDB_ASSIGN_OR_RETURN(rotation->serialize_delta, app_.CaptureDeltaSnapshot());
    rotation->is_delta = static_cast<bool>(rotation->serialize_delta);
  }
  if (!rotation->is_delta) {
    SDB_ASSIGN_OR_RETURN(rotation->serialize, app_.CaptureSnapshot());
  }
  rotation->capture_micros = capture_watch.ElapsedMicros();

  rotation->base = version_.load(std::memory_order_relaxed);
  rotation->target = live_log_version_.load(std::memory_order_relaxed) + 1;

  // Durably create the next log generation and record it as live before any update
  // can commit to it: recovery must know to replay it on top of the base generation
  // while checkpoint `target` does not exist yet. The marker's directory sync also
  // makes the new log's name durable. On any failure from here the rotation aborts
  // with the old log still live — a staged delta window must be abandoned back into
  // the application's dirty set, or the keys it covers would vanish from every
  // future delta (found by the simulation harness: a transient marker-write error
  // during a delta rotation silently lost acknowledged updates from later chains).
  auto abort_rotation = [&](Status status) {
    if (rotation->is_delta) {
      app_.AbandonDeltaCapture();
      rotation->is_delta = false;
      rotation->serialize_delta = nullptr;
    }
    return status;
  };
  Status rotated_log =
      WriteWholeFile(*options_.vfs, version_store_.LogPath(rotation->target), ByteSpan{})
          .WithContext("creating rotated log");
  if (!rotated_log.ok()) {
    return abort_rotation(std::move(rotated_log));
  }
  Status marked = version_store_.WritePendingMarker(rotation->target)
                      .WithContext("recording pending checkpoint rotation");
  if (!marked.ok()) {
    return abort_rotation(std::move(marked));
  }

  // Swap the live writer. The pipeline is paused, so no batch holds the old one.
  Result<std::unique_ptr<LogWriter>> new_log_result =
      OpenLogForAppend(version_store_.LogPath(rotation->target));
  if (!new_log_result.ok()) {
    return abort_rotation(new_log_result.status());
  }
  std::unique_ptr<LogWriter> new_log = std::move(*new_log_result);
  Status closed = log_->Close();
  if (!closed.ok()) {
    SDB_LOG(kWarning) << "closing rotated-out log: " << closed;
  }
  log_ = std::move(new_log);
  if (committer_ != nullptr) {
    log_sink_.set_log(log_.get());
  }
  live_log_version_.store(rotation->target, std::memory_order_relaxed);
  commit_epoch_.fetch_add(1, std::memory_order_relaxed);
  last_checkpoint_time_.store(clock_->NowMicros(), std::memory_order_relaxed);
  counters_.log_bytes->Set(static_cast<std::int64_t>(log_->size()));
  counters_.log_entries_since_checkpoint->Set(0);

  rotation->stall_micros = stall_watch.ElapsedMicros();
  if (obs::Enabled()) {
    registry_.GetHistogram("checkpoint.stall_us").Record(rotation->stall_micros);
    registry_.GetHistogram("checkpoint.snapshot_us").Record(rotation->capture_micros);
  }
  return OkStatus();
}

// Phase B. Needs no engine lock: it touches only the vfs, the version store, and
// atomics/registry. May run on the calling thread (manual checkpoints), under the
// update lock (legacy mode, ReplaceState), or on the background thread (automatic
// checkpoints).
Status Database::PersistCheckpoint(CheckpointRotation rotation) {
  if (rotation.is_delta) {
    return PersistDeltaCheckpoint(std::move(rotation));
  }
  CheckpointBreakdown breakdown;
  breakdown.stall_micros = rotation.stall_micros;

  Stopwatch serialize_watch(*clock_);
  Result<Bytes> snapshot = rotation.serialize();
  if (!snapshot.ok()) {
    checkpoint_failures_->Increment();
    return snapshot.status().WithContext("serializing checkpoint snapshot");
  }
  breakdown.serialize_micros = rotation.capture_micros + serialize_watch.ElapsedMicros();

  Stopwatch disk_watch(*clock_);
  std::string checkpoint_path = version_store_.CheckpointPath(rotation.target);
  Stopwatch write_watch(*clock_);
  Status written = WriteWholeFile(*options_.vfs, checkpoint_path, AsSpan(*snapshot));
  Micros write_micros = write_watch.ElapsedMicros();
  if (!written.ok()) {
    checkpoint_failures_->Increment();
    // Don't leak a partial checkpoint; the rotated log is live and stays.
    Result<bool> partial = options_.vfs->Exists(checkpoint_path);
    if (partial.ok() && *partial) {
      Status removed = options_.vfs->Delete(checkpoint_path);
      if (!removed.ok()) {
        SDB_LOG(kWarning) << "removing partial checkpoint: " << removed;
      }
    }
    return written.WithContext("writing checkpoint");
  }

  bool switch_ambiguous = false;
  Stopwatch switch_watch(*clock_);
  Status switched =
      version_store_.CommitSwitch(rotation.base, rotation.target, &switch_ambiguous);
  Micros switch_micros = switch_watch.ElapsedMicros();
  if (!switched.ok()) {
    checkpoint_failures_->Increment();
    if (switch_ambiguous) {
      // The switch may have committed (or may still commit once pending metadata is
      // flushed): a restart could resolve to the new generation and ignore the old
      // log. Committing further updates to it would lose them, so fail-stop until a
      // reopen re-resolves the version. (Found by the simulation harness: a transient
      // fsync error here, followed by acknowledged updates, is a lost-update bug.)
      poisoned_ = true;
      return switched.WithContext(
          "checkpoint switch outcome ambiguous; database fail-stops until reopened");
    }
    // Clean abort: the base generation plus the pending log chain stays
    // authoritative. Remove the orphaned checkpoint so aborted switches don't leak a
    // generation; the next checkpoint re-targets past it.
    Status removed = options_.vfs->Delete(checkpoint_path);
    if (!removed.ok()) {
      SDB_LOG(kWarning) << "removing checkpoint after aborted switch: " << removed;
    }
    return switched.WithContext("checkpoint switch aborted");
  }

  version_.store(rotation.target, std::memory_order_relaxed);
  // A full switch collapses any delta chain: CommitSwitch already deleted the
  // manifest and the superseded chain files before this point.
  {
    std::lock_guard<std::mutex> chain_lock(chain_mu_);
    chain_ = DeltaChain{rotation.target, {}};
    chain_base_bytes_ = snapshot->size();
    chain_delta_bytes_ = 0;
  }
  breakdown.disk_micros = disk_watch.ElapsedMicros();
  breakdown.total_micros = clock_->NowMicros() - rotation.start_micros;

  checkpoints_->Increment();
  if (obs::Enabled()) {
    registry_.GetHistogram("checkpoint.serialize_us").Record(breakdown.serialize_micros);
    registry_.GetHistogram("checkpoint.write_us").Record(write_micros);
    registry_.GetHistogram("checkpoint.switch_us").Record(switch_micros);
    registry_.GetHistogram("checkpoint.disk_us").Record(breakdown.disk_micros);
    registry_.GetHistogram("checkpoint.total_us").Record(breakdown.total_micros);
    registry_.GetGauge("checkpoint.delta.chain_len").Set(1);
  }
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    stats_.last_checkpoint = breakdown;
  }
  return OkStatus();
}

// Phase B, delta flavour: writes delta<target> extending the current chain instead
// of a self-contained checkpoint. Durable ordering is what makes it crash-safe:
//   1. delta<target> written + synced (content durable, unreferenced);
//   2. manifest republished naming chain + target (atomic rename, durable) — from
//      here any resolution of the switch has its composition recipe on disk;
//   3. CommitSwitch(base, target) — the ordinary commit point.
// A crash after 2 but before 3 leaves target as a manifest orphan, truncated and
// swept by the next open. The staged dirty window is committed only after 3
// succeeds; every failure path abandons it back into the application's dirty set.
Status Database::PersistDeltaCheckpoint(CheckpointRotation rotation) {
  CheckpointBreakdown breakdown;
  breakdown.stall_micros = rotation.stall_micros;

  Stopwatch serialize_watch(*clock_);
  Result<Application::DeltaSnapshot> delta = rotation.serialize_delta();
  if (!delta.ok()) {
    checkpoint_failures_->Increment();
    app_.AbandonDeltaCapture();
    return delta.status().WithContext("serializing delta snapshot");
  }
  breakdown.serialize_micros = rotation.capture_micros + serialize_watch.ElapsedMicros();

  Stopwatch disk_watch(*clock_);
  const std::string delta_path = version_store_.DeltaPath(rotation.target);
  Stopwatch write_watch(*clock_);
  Status written = WriteWholeFile(*options_.vfs, delta_path, AsSpan(delta->bytes));
  Micros write_micros = write_watch.ElapsedMicros();
  if (!written.ok()) {
    checkpoint_failures_->Increment();
    Result<bool> partial = options_.vfs->Exists(delta_path);
    if (partial.ok() && *partial) {
      Status removed = options_.vfs->Delete(delta_path);
      if (!removed.ok()) {
        SDB_LOG(kWarning) << "removing partial delta checkpoint: " << removed;
      }
    }
    app_.AbandonDeltaCapture();
    return written.WithContext("writing delta checkpoint");
  }

  DeltaChain extended;
  {
    std::lock_guard<std::mutex> chain_lock(chain_mu_);
    extended = chain_;
  }
  extended.deltas.push_back(rotation.target);
  Status published = version_store_.PublishManifest(extended);
  if (!published.ok()) {
    checkpoint_failures_->Increment();
    // The manifest may or may not name target now, but either way the switch never
    // happened, so target is at worst an orphan delta entry — truncated by the next
    // open, never corruption. Deleting the delta file under it is therefore safe.
    Status removed = options_.vfs->Delete(delta_path);
    if (!removed.ok()) {
      SDB_LOG(kWarning) << "removing delta after failed manifest publish: " << removed;
    }
    app_.AbandonDeltaCapture();
    return published.WithContext("publishing delta chain manifest");
  }

  bool switch_ambiguous = false;
  Stopwatch switch_watch(*clock_);
  Status switched =
      version_store_.CommitSwitch(rotation.base, rotation.target, &switch_ambiguous);
  Micros switch_micros = switch_watch.ElapsedMicros();
  if (!switched.ok()) {
    checkpoint_failures_->Increment();
    if (switch_ambiguous) {
      // Same fail-stop as the full path. Both resolutions stay consistent: the
      // manifest names target, so a restart that resolves to the new generation
      // composes through the delta, and one that resolves to the old generation
      // truncates it as an orphan. Abandon so a post-reopen capture re-covers the
      // window (replay re-marks it dirty anyway).
      poisoned_ = true;
      app_.AbandonDeltaCapture();
      return switched.WithContext(
          "delta checkpoint switch outcome ambiguous; database fail-stops until reopened");
    }
    // Clean abort: roll the manifest back BEFORE deleting the delta file — the
    // durable manifest must never reference a file we already deleted. A crash in
    // between leaves an orphan manifest entry (truncated), never a broken chain.
    DeltaChain rollback;
    {
      std::lock_guard<std::mutex> chain_lock(chain_mu_);
      rollback = chain_;
    }
    Status unpublished = OkStatus();
    if (rollback.has_deltas()) {
      unpublished = version_store_.PublishManifest(rollback);
    } else {
      // First delta over a bare base: canonical rollback is "no manifest".
      Result<bool> manifest_exists = options_.vfs->Exists(version_store_.ManifestPath());
      if (manifest_exists.ok() && *manifest_exists) {
        unpublished = options_.vfs->Delete(version_store_.ManifestPath());
      }
    }
    if (!unpublished.ok()) {
      SDB_LOG(kWarning) << "rolling back delta manifest after aborted switch: "
                        << unpublished;
    }
    Status removed = options_.vfs->Delete(delta_path);
    if (!removed.ok()) {
      SDB_LOG(kWarning) << "removing delta after aborted switch: " << removed;
    }
    app_.AbandonDeltaCapture();
    return switched.WithContext("delta checkpoint switch aborted");
  }

  version_.store(rotation.target, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> chain_lock(chain_mu_);
    chain_ = extended;
    chain_delta_bytes_ += delta->bytes.size();
  }
  app_.CommitDeltaCapture();
  breakdown.disk_micros = disk_watch.ElapsedMicros();
  breakdown.total_micros = clock_->NowMicros() - rotation.start_micros;

  checkpoints_->Increment();
  delta_checkpoints_->Increment();
  if (obs::Enabled()) {
    registry_.GetHistogram("checkpoint.serialize_us").Record(breakdown.serialize_micros);
    registry_.GetHistogram("checkpoint.write_us").Record(write_micros);
    registry_.GetHistogram("checkpoint.switch_us").Record(switch_micros);
    registry_.GetHistogram("checkpoint.disk_us").Record(breakdown.disk_micros);
    registry_.GetHistogram("checkpoint.total_us").Record(breakdown.total_micros);
    registry_.GetHistogram("checkpoint.delta.bytes")
        .Record(static_cast<Micros>(delta->bytes.size()));
    registry_.GetHistogram("checkpoint.delta.objects")
        .Record(static_cast<Micros>(delta->objects));
    registry_.GetGauge("checkpoint.delta.chain_len")
        .Set(static_cast<std::int64_t>(extended.length()));
  }
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    stats_.last_checkpoint = breakdown;
  }

  if (options_.delta_checkpoint.background_compaction) {
    MaybeScheduleCompaction();
  } else if (CompactionDue()) {
    // Inline (deterministic) mode: compact right here, while the checkpoint slot —
    // which the compactor needs exclusively — is still held by this persist.
    Status compacted = CompactChain();
    if (!compacted.ok()) {
      compaction_failures_->Increment();
      SDB_LOG(kWarning) << "inline chain compaction failed: " << compacted;
    }
  }
  return OkStatus();
}

bool Database::CompactionDue() const {
  const DeltaCheckpointOptions& opts = options_.delta_checkpoint;
  std::lock_guard<std::mutex> chain_lock(chain_mu_);
  if (!chain_.has_deltas()) {
    return false;
  }
  if (opts.compact_after_deltas > 0 && chain_.deltas.size() >= opts.compact_after_deltas) {
    return true;
  }
  return opts.compact_delta_base_ratio > 0 && chain_base_bytes_ > 0 &&
         static_cast<double>(chain_delta_bytes_) >=
             opts.compact_delta_base_ratio * static_cast<double>(chain_base_bytes_);
}

// Collapses base + deltas into a self-contained checkpoint(top). Caller holds the
// checkpoint slot, so the chain cannot move underneath. Durable ordering:
//   1. checkpoint(top) written from the ON-DISK chain (ComposeCheckpoint is pure —
//      the live state has moved on) + directory sync;
//   2. delete the manifest — the commit point: checkpoint(top) is now the
//      generation's authority (before this, it is an orphan the next open sweeps);
//   3. reclaim the old base and delta files (failures just leave swept-later
//      garbage).
// No step poisons: until 2 the chain stays authoritative, after 2 the collapsed
// base is, and both describe the same state.
Status Database::CompactChain() {
  DeltaChain chain;
  {
    std::lock_guard<std::mutex> chain_lock(chain_mu_);
    chain = chain_;
  }
  if (!chain.has_deltas()) {
    return OkStatus();
  }

  Stopwatch compact_watch(*clock_);
  SDB_ASSIGN_OR_RETURN(
      Bytes base, ReadWholeFile(*options_.vfs, version_store_.CheckpointPath(chain.base)));
  std::vector<Bytes> delta_bytes;
  delta_bytes.reserve(chain.deltas.size());
  for (std::uint64_t delta_version : chain.deltas) {
    SDB_ASSIGN_OR_RETURN(
        Bytes delta, ReadWholeFile(*options_.vfs, version_store_.DeltaPath(delta_version)));
    delta_bytes.push_back(std::move(delta));
  }
  std::vector<ByteSpan> delta_spans;
  delta_spans.reserve(delta_bytes.size());
  for (const Bytes& delta : delta_bytes) {
    delta_spans.push_back(AsSpan(delta));
  }
  Result<Bytes> composed = app_.ComposeCheckpoint(AsSpan(base), delta_spans);
  if (!composed.ok()) {
    return composed.status().WithContext("composing chain for compaction");
  }

  const std::string new_base_path = version_store_.CheckpointPath(chain.top());
  auto remove_partial = [&] {
    Status removed = options_.vfs->Delete(new_base_path);
    if (!removed.ok()) {
      SDB_LOG(kWarning) << "removing partial compacted checkpoint: " << removed;
    }
  };
  Status written = WriteWholeFile(*options_.vfs, new_base_path, AsSpan(*composed));
  if (!written.ok()) {
    Result<bool> partial = options_.vfs->Exists(new_base_path);
    if (partial.ok() && *partial) {
      remove_partial();
    }
    return written.WithContext("writing compacted checkpoint");
  }
  Status synced = options_.vfs->SyncDir(options_.dir);
  if (!synced.ok()) {
    remove_partial();
    return synced.WithContext("syncing compacted checkpoint");
  }

  // The commit point. On failure the manifest — and with it the chain — simply
  // stays authoritative; checkpoint(top) is an orphan the next open sweeps.
  Status committed = options_.vfs->Delete(version_store_.ManifestPath());
  if (!committed.ok()) {
    remove_partial();
    return committed.WithContext("retiring delta manifest after compaction");
  }
  Status commit_synced = options_.vfs->SyncDir(options_.dir);
  if (!commit_synced.ok()) {
    // The deletion may or may not be durable, but BOTH resolutions now describe the
    // same state (chain composition == checkpoint(top)), so don't fail the engine —
    // just skip reclamation: the chain files must survive in case the manifest does.
    SDB_LOG(kWarning) << "syncing manifest retirement: " << commit_synced
                      << " (chain files retained)";
  } else {
    for (std::uint64_t delta_version : chain.deltas) {
      Status removed = options_.vfs->Delete(version_store_.DeltaPath(delta_version));
      if (!removed.ok()) {
        SDB_LOG(kWarning) << "reclaiming chain delta: " << removed;
      }
    }
    Status removed = options_.vfs->Delete(version_store_.CheckpointPath(chain.base));
    if (!removed.ok()) {
      SDB_LOG(kWarning) << "reclaiming chain base: " << removed;
    }
    Status reclaim_synced = options_.vfs->SyncDir(options_.dir);
    if (!reclaim_synced.ok()) {
      SDB_LOG(kWarning) << "syncing chain reclamation: " << reclaim_synced;
    }
  }

  {
    std::lock_guard<std::mutex> chain_lock(chain_mu_);
    chain_ = DeltaChain{chain.top(), {}};
    chain_base_bytes_ = composed->size();
    chain_delta_bytes_ = 0;
  }
  compaction_runs_->Increment();
  compaction_bytes_->Add(composed->size());
  if (obs::Enabled()) {
    registry_.GetHistogram("compaction.duration_us").Record(compact_watch.ElapsedMicros());
    registry_.GetGauge("checkpoint.delta.chain_len").Set(1);
  }
  SDB_LOG(kDebug) << "compacted delta chain of " << chain.length() << " levels into "
                  << new_base_path;
  return OkStatus();
}

void Database::MaybeScheduleCompaction() {
  if (read_only_ || shutting_down_.load(std::memory_order_relaxed) || !CompactionDue()) {
    return;
  }
  // Single-flight: the flag is cleared as the compaction thread's LAST action, after
  // it released the checkpoint slot — so winning the exchange proves the previous
  // thread is past everything that could block, and joining it here (possibly while
  // this caller holds the slot) cannot deadlock.
  if (compaction_in_flight_.exchange(true, std::memory_order_acq_rel)) {
    return;  // one already running; the next delta persist re-checks
  }
  std::lock_guard<std::mutex> gate(compaction_mu_);
  if (compaction_thread_.joinable()) {
    compaction_thread_.join();
  }
  compaction_thread_ = std::thread([this] {
    AcquireCheckpointSlot();
    if (!shutting_down_.load(std::memory_order_relaxed) && CompactionDue()) {
      Status compacted = CompactChain();
      if (!compacted.ok()) {
        compaction_failures_->Increment();
        SDB_LOG(kWarning) << "background chain compaction failed: " << compacted;
      }
    }
    ReleaseCheckpointSlot();
    compaction_in_flight_.store(false, std::memory_order_release);
  });
}

bool Database::AutoCheckpointDue() const {
  const CheckpointPolicy& policy = options_.checkpoint_policy;
  if (policy.every_n_updates != 0 &&
      static_cast<std::uint64_t>(counters_.log_entries_since_checkpoint->value()) >=
          policy.every_n_updates) {
    return true;
  }
  if (policy.log_bytes_threshold != 0 && log_bytes() >= policy.log_bytes_threshold) {
    return true;
  }
  if (policy.interval_micros != 0 &&
      clock_->NowMicros() - last_checkpoint_time_.load(std::memory_order_relaxed) >=
          policy.interval_micros) {
    return true;
  }
  return false;
}

void Database::AcquireCheckpointSlot() {
  std::unique_lock<std::mutex> gate(checkpoint_mu_);
  checkpoint_cv_.wait(gate, [this] { return !checkpoint_in_flight_; });
  if (checkpoint_thread_.joinable()) {
    checkpoint_thread_.join();  // already released the slot; reap it
  }
  checkpoint_in_flight_ = true;
  checkpoint_in_progress_->Set(1);
}

void Database::ReleaseCheckpointSlot() {
  {
    std::lock_guard<std::mutex> gate(checkpoint_mu_);
    checkpoint_in_flight_ = false;
    checkpoint_in_progress_->Set(0);
  }
  checkpoint_cv_.notify_all();
}

void Database::MaybeAutoCheckpoint() {
  if (!AutoCheckpointDue()) {
    return;
  }
  // One checkpoint at a time: with concurrent updaters, every waiter of the
  // triggering batch would otherwise pile in back-to-back. Waiting (rather than
  // skipping) keeps the policy exact — and the wait is for the previous
  // checkpoint's background persist, not for a lock-holding stall.
  AcquireCheckpointSlot();
  if (!AutoCheckpointDue()) {  // the checkpoint we waited on reset the trigger
    ReleaseCheckpointSlot();
    return;
  }
  CheckpointRotation rotation;
  Status status;
  {
    PipelinePause pause(committer_.get());
    SueLock::UpdateGuard guard(lock_);
    status = CheckPoisoned();
    if (status.ok()) {
      status = RotateForCheckpointLocked(&rotation);
    }
  }
  if (!status.ok()) {
    ReleaseCheckpointSlot();
    SDB_LOG(kWarning) << "automatic checkpoint failed: " << status;
    return;
  }
  auto_checkpoints_->Increment();
  if (!options_.concurrent_checkpoint) {
    Status persisted = PersistCheckpoint(std::move(rotation));
    ReleaseCheckpointSlot();
    if (!persisted.ok()) {
      SDB_LOG(kWarning) << "automatic checkpoint failed: " << persisted;
    }
    return;
  }
  // Hand the slot to a background thread: the triggering updater returns while the
  // snapshot streams to disk. The thread is reaped by the next slot acquirer (or the
  // destructor).
  std::lock_guard<std::mutex> gate(checkpoint_mu_);
  checkpoint_thread_ = std::thread([this, r = std::move(rotation)]() mutable {
    Status persisted = PersistCheckpoint(std::move(r));
    if (!persisted.ok()) {
      SDB_LOG(kWarning) << "background checkpoint persist failed: " << persisted;
    }
    ReleaseCheckpointSlot();
  });
}

std::uint64_t Database::current_version() const {
  return version_.load(std::memory_order_relaxed);
}

std::uint64_t Database::live_log_version() const {
  return live_log_version_.load(std::memory_order_relaxed);
}

DeltaChain Database::delta_chain() const {
  std::lock_guard<std::mutex> chain_lock(chain_mu_);
  return chain_;
}

std::uint64_t Database::log_bytes() const {
  return static_cast<std::uint64_t>(counters_.log_bytes->value());
}

LogWriterStats Database::log_writer_stats() const {
  return log_ != nullptr ? log_->stats() : LogWriterStats{};
}

DatabaseStats Database::stats() const {
  DatabaseStats snapshot;
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    snapshot = stats_;
  }
  snapshot.enquiries = enquiries_->value();
  snapshot.updates = counters_.updates->value();
  snapshot.update_precondition_failures = counters_.precondition_failures->value();
  snapshot.update_commit_failures = counters_.commit_failures->value();
  snapshot.checkpoints = checkpoints_->value();
  snapshot.auto_checkpoints = auto_checkpoints_->value();
  snapshot.log_entries_since_checkpoint =
      static_cast<std::uint64_t>(counters_.log_entries_since_checkpoint->value());
  if (committer_ != nullptr) {
    snapshot.group_commit = committer_->stats();
  }
  return snapshot;
}

std::string Database::MetricsReport() const {
  std::string out = "== database metrics: " + options_.dir + " ==\n";
  out += registry_.DumpText();
  return out;
}

std::string Database::MetricsReportJson() const { return registry_.DumpJson(); }

std::vector<obs::CommitTrace> Database::DumpTrace() const {
  if (trace_ring_ == nullptr) {
    return {};
  }
  return trace_ring_->Dump();
}

}  // namespace sdb
