#include "src/core/database.h"

#include "src/common/logging.h"

namespace sdb {

Database::Database(Application& app, DatabaseOptions options)
    : app_(app),
      options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock : &wall_clock_),
      version_store_(*options_.vfs, options_.dir,
                     VersionStoreOptions{options_.keep_previous_checkpoint,
                                         options_.retain_logs_for_audit}) {
  if (options_.trace_ring_capacity > 0) {
    trace_ring_ = std::make_unique<obs::TraceRing>(options_.trace_ring_capacity);
  }
  stage_metrics_ = obs::CommitStageMetrics::Register(registry_, trace_ring_.get());
  counters_.updates = &registry_.GetCounter("db.updates");
  counters_.precondition_failures = &registry_.GetCounter("db.update_precondition_failures");
  counters_.commit_failures = &registry_.GetCounter("db.update_commit_failures");
  counters_.log_entries_since_checkpoint =
      &registry_.GetGauge("db.log_entries_since_checkpoint");
  counters_.log_bytes = &registry_.GetGauge("db.log_bytes");
  enquiries_ = &registry_.GetCounter("db.enquiries");
  checkpoints_ = &registry_.GetCounter("db.checkpoints");
  auto_checkpoints_ = &registry_.GetCounter("db.auto_checkpoints");
}

Database::~Database() {
  committer_.reset();  // no batch may outlive the log writer
  if (log_ != nullptr) {
    Status status = log_->Close();
    if (!status.ok()) {
      SDB_LOG(kWarning) << "closing log: " << status;
    }
  }
}

Result<std::unique_ptr<Database>> Database::Open(Application& app, DatabaseOptions options) {
  if (options.vfs == nullptr || options.dir.empty()) {
    return InvalidArgumentError("DatabaseOptions requires vfs and dir");
  }
  std::unique_ptr<Database> db(new Database(app, std::move(options)));
  SDB_RETURN_IF_ERROR(db->Recover().WithContext("opening database in " + db->options_.dir));
  if (db->options_.group_commit.enabled) {
    // The private-base upcast must happen here, inside a member, not in make_unique.
    GroupCommitHost& host = *db;
    db->committer_ = std::make_unique<GroupCommitter>(db->lock_, *db->clock_, host,
                                                      db->log_.get(), &db->counters_,
                                                      db->stage_metrics_,
                                                      db->options_.group_commit);
  }
  return db;
}

Result<std::unique_ptr<Database>> Database::OpenReadOnly(Application& app,
                                                         DatabaseOptions options) {
  if (options.vfs == nullptr || options.dir.empty()) {
    return InvalidArgumentError("DatabaseOptions requires vfs and dir");
  }
  std::unique_ptr<Database> db(new Database(app, std::move(options)));
  db->read_only_ = true;
  SDB_ASSIGN_OR_RETURN(VersionState state, db->version_store_.PeekCurrent());
  db->version_.store(state.version, std::memory_order_relaxed);
  SDB_RETURN_IF_ERROR(db->LoadCheckpointAndReplay(state).WithContext(
      "opening database read-only in " + db->options_.dir));
  return db;
}

Status Database::Recover() {
  SDB_RETURN_IF_ERROR(options_.vfs->CreateDir(options_.dir));
  SDB_ASSIGN_OR_RETURN(bool fresh, version_store_.IsFresh());
  if (fresh) {
    SDB_RETURN_IF_ERROR(InitFreshDatabase());
  } else {
    SDB_ASSIGN_OR_RETURN(VersionState state, version_store_.Recover());
    version_.store(state.version, std::memory_order_relaxed);
    stats_.restart.finished_interrupted_switch = state.finished_interrupted_switch;
    SDB_RETURN_IF_ERROR(LoadCheckpointAndReplay(state));
  }
  SDB_ASSIGN_OR_RETURN(log_, OpenLogForAppend(version_store_.LogPath(version_)));
  counters_.log_bytes->Set(static_cast<std::int64_t>(log_->size()));
  last_checkpoint_time_.store(clock_->NowMicros(), std::memory_order_relaxed);
  return OkStatus();
}

Status Database::InitFreshDatabase() {
  version_.store(1, std::memory_order_relaxed);
  SDB_RETURN_IF_ERROR(app_.ResetState());
  SDB_ASSIGN_OR_RETURN(Bytes snapshot, app_.SerializeState());
  SDB_RETURN_IF_ERROR(
      WriteWholeFile(*options_.vfs, version_store_.CheckpointPath(1), AsSpan(snapshot)));
  SDB_RETURN_IF_ERROR(WriteWholeFile(*options_.vfs, version_store_.LogPath(1), ByteSpan{}));
  SDB_RETURN_IF_ERROR(options_.vfs->SyncDir(options_.dir));
  return version_store_.InitFresh();
}

Status Database::LoadCheckpointAndReplay(const VersionState& state) {
  Stopwatch restart_watch(*clock_);

  LogReplayOptions replay_options;
  replay_options.skip_damaged_entries = options_.skip_damaged_log_entries;
  replay_options.page_size = options_.log_replay_page_size;
  auto apply = [this](ByteSpan record) { return app_.ApplyUpdate(record); };

  // Step 1+2 of the paper's restart: read the current checkpoint to obtain an old
  // version of the virtual memory structure.
  Status load_status = OkStatus();
  {
    Result<Bytes> snapshot = ReadWholeFile(*options_.vfs, state.checkpoint_path);
    if (snapshot.ok()) {
      SDB_RETURN_IF_ERROR(app_.ResetState());
      load_status = app_.DeserializeState(AsSpan(*snapshot));
    } else {
      load_status = snapshot.status();
    }
  }

  bool used_previous = false;
  if (!load_status.ok()) {
    bool hard_error = load_status.Is(ErrorCode::kUnreadable) ||
                      load_status.Is(ErrorCode::kCorruption);
    if (!hard_error || !options_.fallback_to_previous_checkpoint ||
        !state.previous_version.has_value()) {
      return load_status.WithContext("loading checkpoint " + state.checkpoint_path);
    }
    // Hard-error recovery (Section 4): reload the previous checkpoint, replay the
    // previous log, then fall through to replaying the current log.
    std::uint64_t prev = *state.previous_version;
    SDB_ASSIGN_OR_RETURN(Bytes snapshot,
                         ReadWholeFile(*options_.vfs, version_store_.CheckpointPath(prev)));
    SDB_RETURN_IF_ERROR(app_.ResetState());
    SDB_RETURN_IF_ERROR(app_.DeserializeState(AsSpan(snapshot))
                            .WithContext("loading previous checkpoint"));
    SDB_ASSIGN_OR_RETURN(LogReplayStats prev_replay,
                         ReplayLogFile(*options_.vfs, version_store_.LogPath(prev),
                                       replay_options, apply));
    stats_.restart.entries_replayed += prev_replay.entries_replayed;
    stats_.restart.entries_skipped += prev_replay.entries_skipped;
    used_previous = true;
  }
  stats_.restart.checkpoint_read_micros = restart_watch.ElapsedMicros();
  stats_.restart.used_previous_checkpoint = used_previous;

  // Step 3: replay the updates from the log.
  Stopwatch replay_watch(*clock_);
  SDB_ASSIGN_OR_RETURN(LogReplayStats replay,
                       ReplayLogFile(*options_.vfs, state.log_path, replay_options, apply));
  stats_.restart.replay_micros = replay_watch.ElapsedMicros();
  stats_.restart.entries_replayed += replay.entries_replayed;
  stats_.restart.entries_skipped += replay.entries_skipped;
  stats_.restart.partial_tail_discarded = replay.partial_tail_discarded;
  counters_.log_entries_since_checkpoint->Set(
      static_cast<std::int64_t>(replay.entries_replayed));
  // Restart timings, mirrored into the registry for MetricsReport.
  registry_.GetGauge("restart.checkpoint_read_us")
      .Set(stats_.restart.checkpoint_read_micros);
  registry_.GetGauge("restart.replay_us").Set(stats_.restart.replay_micros);
  registry_.GetGauge("restart.entries_replayed")
      .Set(static_cast<std::int64_t>(stats_.restart.entries_replayed));
  SDB_LOG(kDebug) << "recovered " << options_.dir << ": checkpoint read in "
                  << stats_.restart.checkpoint_read_micros << " us, "
                  << stats_.restart.entries_replayed << " log entries replayed in "
                  << stats_.restart.replay_micros << " us";
  return OkStatus();
}

Result<std::unique_ptr<LogWriter>> Database::OpenLogForAppend(const std::string& path) {
  SDB_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                       options_.vfs->Open(path, OpenMode::kReadWrite));
  SDB_ASSIGN_OR_RETURN(std::uint64_t size, file->Size());
  // Discard a torn tail so new entries are never appended after garbage. The replay
  // layer already ignored it; physically truncating keeps the file parseable.
  if (options_.log_writer.pad_to_page_boundary &&
      size % options_.log_writer.page_size != 0) {
    size = (size / options_.log_writer.page_size) * options_.log_writer.page_size;
    SDB_RETURN_IF_ERROR(file->Truncate(size));
    SDB_RETURN_IF_ERROR(file->Sync());
  }
  return std::make_unique<LogWriter>(std::move(file), size, options_.log_writer);
}

Status Database::CheckPoisoned() const {
  if (poisoned_) {
    return InternalError(
        "database is poisoned: an applied update diverged from the log; reopen to recover");
  }
  return OkStatus();
}

namespace {

Status ReadOnlyError() {
  return FailedPreconditionError("database was opened read-only");
}

// Quiesces the commit pipeline for the guard's scope (no-op when group commit is
// off). Taken BEFORE the update lock: an in-flight batch needs the lock to finish,
// so pausing after acquiring it would deadlock.
class PipelinePause {
 public:
  explicit PipelinePause(GroupCommitter* committer) : committer_(committer) {
    if (committer_ != nullptr) {
      committer_->Pause();
    }
  }
  ~PipelinePause() {
    if (committer_ != nullptr) {
      committer_->Resume();
    }
  }
  PipelinePause(const PipelinePause&) = delete;
  PipelinePause& operator=(const PipelinePause&) = delete;

 private:
  GroupCommitter* committer_;
};

}  // namespace

Status Database::Enquire(const std::function<Status()>& enquiry) {
  SueLock::SharedGuard guard(lock_);
  SDB_RETURN_IF_ERROR(CheckPoisoned());
  Status status = enquiry();
  enquiries_->Increment();
  return status;
}

Status Database::Update(const std::function<Result<Bytes>()>& prepare) {
  std::vector<std::function<Result<Bytes>()>> one{prepare};
  return UpdateBatch(one);
}

Status Database::UpdateBatch(const std::vector<std::function<Result<Bytes>()>>& prepares) {
  if (prepares.empty()) {
    return InvalidArgumentError("empty update batch");
  }
  if (read_only_) {
    return ReadOnlyError();
  }
  if (committer_ != nullptr) {
    SDB_RETURN_IF_ERROR(committer_->Submit({prepares.data(), prepares.size()}));
    MaybeAutoCheckpoint();
    return OkStatus();
  }
  return UpdateSerial(prepares);
}

// The paper's base protocol: one commit fsync per UpdateBatch call, the update lock
// held across the disk write. Used when group commit is disabled. Stage timings are
// recorded exactly like the pipeline's (queue wait is structurally zero here).
Status Database::UpdateSerial(const std::vector<std::function<Result<Bytes>()>>& prepares) {
  UpdateBreakdown breakdown;
  const bool timing = obs::Enabled();
  obs::CommitTrace trace;
  {
    Micros t_start = timing ? clock_->NowMicros() : 0;
    SueLock::UpdateGuard guard(lock_);
    Micros t_locked = clock_->NowMicros();
    SDB_RETURN_IF_ERROR(CheckPoisoned());
    trace.epoch = commit_epoch_.fetch_add(1, std::memory_order_relaxed) + 1;

    // Step 1: verify preconditions and gather the parameters of each update into a
    // record, under the update lock (enquiries continue concurrently).
    std::vector<Bytes> records;
    records.reserve(prepares.size());
    for (const auto& prepare : prepares) {
      Result<Bytes> record = prepare();
      if (!record.ok()) {
        counters_.precondition_failures->Increment();
        return record.status();
      }
      records.push_back(std::move(*record));
    }
    Micros t_prepared = clock_->NowMicros();
    breakdown.prepare_micros = t_prepared - t_locked;

    // Step 2: record the updates in the disk log. The fsync is the commit point.
    for (const Bytes& record : records) {
      Status status = log_->Append(AsSpan(record));
      if (!status.ok()) {
        counters_.commit_failures->Increment();
        return status.WithContext("appending log entry");
      }
    }
    Micros t_appended = timing ? clock_->NowMicros() : t_prepared;
    Status commit = log_->Commit();
    Micros t_synced = clock_->NowMicros();
    counters_.log_bytes->Set(static_cast<std::int64_t>(log_->size()));
    if (!commit.ok()) {
      counters_.commit_failures->Increment();
      return commit.WithContext("committing log entry");
    }
    breakdown.log_micros = t_synced - t_prepared;
    stage_metrics_.fsyncs->Increment();

    // Step 3: apply to the virtual memory structure, in exclusive mode (enquiries are
    // excluded only for this in-memory step, never during the disk write).
    guard.Upgrade();
    Micros t_exclusive = clock_->NowMicros();
    for (const Bytes& record : records) {
      Status status = app_.ApplyUpdate(AsSpan(record));
      if (!status.ok()) {
        // The record is durably logged but could not be applied: memory and disk have
        // diverged. Fail closed.
        poisoned_ = true;
        return status.WithContext("applying committed update (database poisoned)");
      }
    }
    Micros t_applied = clock_->NowMicros();
    breakdown.apply_micros = t_applied - t_exclusive;
    breakdown.total_micros =
        breakdown.prepare_micros + breakdown.log_micros + breakdown.apply_micros;

    counters_.updates->Add(records.size());
    counters_.log_entries_since_checkpoint->Add(static_cast<std::int64_t>(records.size()));
    if (timing) {
      trace.records = records.size();
      trace.start_micros = t_start;
      trace.set_stage(obs::CommitStage::kLockWait, t_locked - t_start);
      trace.set_stage(obs::CommitStage::kPrepare, t_prepared - t_locked);
      trace.set_stage(obs::CommitStage::kAppend, t_appended - t_prepared);
      trace.set_stage(obs::CommitStage::kFsync, t_synced - t_appended);
      trace.set_stage(obs::CommitStage::kExclusiveWait, t_exclusive - t_synced);
      trace.set_stage(obs::CommitStage::kApply, t_applied - t_exclusive);
      trace.total_micros = t_applied - t_start;
      stage_metrics_.RecordBatch(trace);
    }
    {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      stats_.last_update = breakdown;
    }
  }
  MaybeAutoCheckpoint();
  return OkStatus();
}

Result<std::uint64_t> Database::BatchBegin() {
  std::uint64_t epoch = commit_epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  SDB_RETURN_IF_ERROR(CheckPoisoned());
  return epoch;
}

Status Database::BatchApply(ByteSpan record) { return app_.ApplyUpdate(record); }

void Database::BatchPoisoned(const Status& cause) {
  // Called under the exclusive lock; readers check via CheckPoisoned under at least
  // the shared lock, so the lock's ordering publishes the flag.
  (void)cause;
  poisoned_ = true;
}

void Database::BatchCommitted(const UpdateBreakdown& breakdown) {
  std::lock_guard<std::mutex> stats_lock(stats_mutex_);
  stats_.last_update = breakdown;
}

Status Database::ReplaceState(ByteSpan state) {
  if (read_only_) {
    return ReadOnlyError();
  }
  PipelinePause pause(committer_.get());
  SueLock::UpdateGuard guard(lock_);
  guard.Upgrade();
  SDB_RETURN_IF_ERROR(app_.ResetState());
  SDB_RETURN_IF_ERROR(app_.DeserializeState(state).WithContext("installing replacement state"));
  guard.Downgrade();
  poisoned_ = false;
  return CheckpointLocked();
}

Status Database::Checkpoint() {
  if (read_only_) {
    return ReadOnlyError();
  }
  PipelinePause pause(committer_.get());
  SueLock::UpdateGuard guard(lock_);
  SDB_RETURN_IF_ERROR(CheckPoisoned());
  return CheckpointLocked();
}

Status Database::CheckpointLocked() {
  CheckpointBreakdown breakdown;
  Stopwatch total_watch(*clock_);

  // Serialize the entire state. Holding update (not exclusive) mode: the state cannot
  // change, but enquiries proceed throughout.
  Stopwatch serialize_watch(*clock_);
  SDB_ASSIGN_OR_RETURN(Bytes snapshot, app_.SerializeState());
  breakdown.serialize_micros = serialize_watch.ElapsedMicros();

  Stopwatch disk_watch(*clock_);
  std::uint64_t new_version = version_.load(std::memory_order_relaxed) + 1;
  SDB_RETURN_IF_ERROR(WriteWholeFile(*options_.vfs, version_store_.CheckpointPath(new_version),
                                     AsSpan(snapshot))
                          .WithContext("writing checkpoint"));
  SDB_RETURN_IF_ERROR(
      WriteWholeFile(*options_.vfs, version_store_.LogPath(new_version), ByteSpan{})
          .WithContext("creating empty log"));
  bool switch_ambiguous = false;
  Status switched = version_store_.CommitSwitch(version_.load(std::memory_order_relaxed),
                                                new_version, &switch_ambiguous);
  if (!switched.ok()) {
    if (switch_ambiguous) {
      // The switch may have committed (or may still commit once pending metadata is
      // flushed): a restart could resolve to the new generation and ignore the old
      // log. Committing further updates to it would lose them, so fail-stop until a
      // reopen re-resolves the version. (Found by the simulation harness: a transient
      // fsync error here, followed by acknowledged updates, is a lost-update bug.)
      poisoned_ = true;
      return switched.WithContext(
          "checkpoint switch outcome ambiguous; database fail-stops until reopened");
    }
    return switched.WithContext("checkpoint switch aborted");
  }

  // Swap the live log writer to the new (empty) log. The pipeline is paused, so no
  // batch can be holding the old writer. The switch has committed, so failing to open
  // the new log is also fail-stop: the old writer must not be used again.
  Result<std::unique_ptr<LogWriter>> new_log_result =
      OpenLogForAppend(version_store_.LogPath(new_version));
  if (!new_log_result.ok()) {
    poisoned_ = true;
    return new_log_result.status().WithContext(
        "opening log after committed switch; database fail-stops until reopened");
  }
  std::unique_ptr<LogWriter> new_log = std::move(new_log_result).value();
  Status closed = log_->Close();
  if (!closed.ok()) {
    SDB_LOG(kWarning) << "closing old log: " << closed;
  }
  log_ = std::move(new_log);
  if (committer_ != nullptr) {
    committer_->set_log(log_.get());
  }
  version_.store(new_version, std::memory_order_relaxed);
  commit_epoch_.fetch_add(1, std::memory_order_relaxed);
  last_checkpoint_time_.store(clock_->NowMicros(), std::memory_order_relaxed);
  counters_.log_bytes->Set(static_cast<std::int64_t>(log_->size()));
  counters_.log_entries_since_checkpoint->Set(0);
  breakdown.disk_micros = disk_watch.ElapsedMicros();
  breakdown.total_micros = total_watch.ElapsedMicros();

  checkpoints_->Increment();
  if (obs::Enabled()) {
    registry_.GetHistogram("checkpoint.serialize_us").Record(breakdown.serialize_micros);
    registry_.GetHistogram("checkpoint.disk_us").Record(breakdown.disk_micros);
    registry_.GetHistogram("checkpoint.total_us").Record(breakdown.total_micros);
  }
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    stats_.last_checkpoint = breakdown;
  }
  return OkStatus();
}

void Database::MaybeAutoCheckpoint() {
  const CheckpointPolicy& policy = options_.checkpoint_policy;
  bool trigger = false;
  if (policy.every_n_updates != 0 &&
      static_cast<std::uint64_t>(counters_.log_entries_since_checkpoint->value()) >=
          policy.every_n_updates) {
    trigger = true;
  }
  if (!trigger && policy.log_bytes_threshold != 0 && log_bytes() >= policy.log_bytes_threshold) {
    trigger = true;
  }
  if (!trigger && policy.interval_micros != 0 &&
      clock_->NowMicros() - last_checkpoint_time_.load(std::memory_order_relaxed) >=
          policy.interval_micros) {
    trigger = true;
  }
  if (!trigger) {
    return;
  }
  // One auto-checkpoint at a time: with concurrent updaters, every waiter of the
  // triggering batch would otherwise pile into Checkpoint back-to-back.
  bool expected = false;
  if (!auto_checkpoint_running_.compare_exchange_strong(expected, true)) {
    return;
  }
  Status status = Checkpoint();
  auto_checkpoint_running_.store(false);
  if (status.ok()) {
    auto_checkpoints_->Increment();
  } else {
    SDB_LOG(kWarning) << "automatic checkpoint failed: " << status;
  }
}

std::uint64_t Database::current_version() const {
  return version_.load(std::memory_order_relaxed);
}

std::uint64_t Database::log_bytes() const {
  return static_cast<std::uint64_t>(counters_.log_bytes->value());
}

LogWriterStats Database::log_writer_stats() const {
  return log_ != nullptr ? log_->stats() : LogWriterStats{};
}

DatabaseStats Database::stats() const {
  DatabaseStats snapshot;
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    snapshot = stats_;
  }
  snapshot.enquiries = enquiries_->value();
  snapshot.updates = counters_.updates->value();
  snapshot.update_precondition_failures = counters_.precondition_failures->value();
  snapshot.update_commit_failures = counters_.commit_failures->value();
  snapshot.checkpoints = checkpoints_->value();
  snapshot.auto_checkpoints = auto_checkpoints_->value();
  snapshot.log_entries_since_checkpoint =
      static_cast<std::uint64_t>(counters_.log_entries_since_checkpoint->value());
  if (committer_ != nullptr) {
    snapshot.group_commit = committer_->stats();
  }
  return snapshot;
}

std::string Database::MetricsReport() const {
  std::string out = "== database metrics: " + options_.dir + " ==\n";
  out += registry_.DumpText();
  return out;
}

std::string Database::MetricsReportJson() const { return registry_.DumpJson(); }

std::vector<obs::CommitTrace> Database::DumpTrace() const {
  if (trace_ring_ == nullptr) {
    return {};
  }
  return trace_ring_->Dump();
}

}  // namespace sdb
