#include "src/core/database.h"

#include "src/common/logging.h"

namespace sdb {

Database::Database(Application& app, DatabaseOptions options)
    : app_(app),
      options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock : &wall_clock_),
      version_store_(*options_.vfs, options_.dir,
                     VersionStoreOptions{options_.keep_previous_checkpoint,
                                         options_.retain_logs_for_audit}) {}

Database::~Database() {
  if (log_ != nullptr) {
    Status status = log_->Close();
    if (!status.ok()) {
      SDB_LOG(kWarning) << "closing log: " << status;
    }
  }
}

Result<std::unique_ptr<Database>> Database::Open(Application& app, DatabaseOptions options) {
  if (options.vfs == nullptr || options.dir.empty()) {
    return InvalidArgumentError("DatabaseOptions requires vfs and dir");
  }
  std::unique_ptr<Database> db(new Database(app, std::move(options)));
  SDB_RETURN_IF_ERROR(db->Recover().WithContext("opening database in " + db->options_.dir));
  return db;
}

Result<std::unique_ptr<Database>> Database::OpenReadOnly(Application& app,
                                                         DatabaseOptions options) {
  if (options.vfs == nullptr || options.dir.empty()) {
    return InvalidArgumentError("DatabaseOptions requires vfs and dir");
  }
  std::unique_ptr<Database> db(new Database(app, std::move(options)));
  db->read_only_ = true;
  SDB_ASSIGN_OR_RETURN(VersionState state, db->version_store_.PeekCurrent());
  db->version_ = state.version;
  SDB_RETURN_IF_ERROR(db->LoadCheckpointAndReplay(state).WithContext(
      "opening database read-only in " + db->options_.dir));
  return db;
}

Status Database::Recover() {
  SDB_RETURN_IF_ERROR(options_.vfs->CreateDir(options_.dir));
  SDB_ASSIGN_OR_RETURN(bool fresh, version_store_.IsFresh());
  if (fresh) {
    SDB_RETURN_IF_ERROR(InitFreshDatabase());
  } else {
    SDB_ASSIGN_OR_RETURN(VersionState state, version_store_.Recover());
    version_ = state.version;
    stats_.restart.finished_interrupted_switch = state.finished_interrupted_switch;
    SDB_RETURN_IF_ERROR(LoadCheckpointAndReplay(state));
  }
  SDB_ASSIGN_OR_RETURN(log_, OpenLogForAppend(version_store_.LogPath(version_)));
  last_checkpoint_time_ = clock_->NowMicros();
  return OkStatus();
}

Status Database::InitFreshDatabase() {
  version_ = 1;
  SDB_RETURN_IF_ERROR(app_.ResetState());
  SDB_ASSIGN_OR_RETURN(Bytes snapshot, app_.SerializeState());
  SDB_RETURN_IF_ERROR(
      WriteWholeFile(*options_.vfs, version_store_.CheckpointPath(1), AsSpan(snapshot)));
  SDB_RETURN_IF_ERROR(WriteWholeFile(*options_.vfs, version_store_.LogPath(1), ByteSpan{}));
  SDB_RETURN_IF_ERROR(options_.vfs->SyncDir(options_.dir));
  return version_store_.InitFresh();
}

Status Database::LoadCheckpointAndReplay(const VersionState& state) {
  Stopwatch restart_watch(*clock_);

  LogReplayOptions replay_options;
  replay_options.skip_damaged_entries = options_.skip_damaged_log_entries;
  replay_options.page_size = options_.log_replay_page_size;
  auto apply = [this](ByteSpan record) { return app_.ApplyUpdate(record); };

  // Step 1+2 of the paper's restart: read the current checkpoint to obtain an old
  // version of the virtual memory structure.
  Status load_status = OkStatus();
  {
    Result<Bytes> snapshot = ReadWholeFile(*options_.vfs, state.checkpoint_path);
    if (snapshot.ok()) {
      SDB_RETURN_IF_ERROR(app_.ResetState());
      load_status = app_.DeserializeState(AsSpan(*snapshot));
    } else {
      load_status = snapshot.status();
    }
  }

  bool used_previous = false;
  if (!load_status.ok()) {
    bool hard_error = load_status.Is(ErrorCode::kUnreadable) ||
                      load_status.Is(ErrorCode::kCorruption);
    if (!hard_error || !options_.fallback_to_previous_checkpoint ||
        !state.previous_version.has_value()) {
      return load_status.WithContext("loading checkpoint " + state.checkpoint_path);
    }
    // Hard-error recovery (Section 4): reload the previous checkpoint, replay the
    // previous log, then fall through to replaying the current log.
    std::uint64_t prev = *state.previous_version;
    SDB_ASSIGN_OR_RETURN(Bytes snapshot,
                         ReadWholeFile(*options_.vfs, version_store_.CheckpointPath(prev)));
    SDB_RETURN_IF_ERROR(app_.ResetState());
    SDB_RETURN_IF_ERROR(app_.DeserializeState(AsSpan(snapshot))
                            .WithContext("loading previous checkpoint"));
    SDB_ASSIGN_OR_RETURN(LogReplayStats prev_replay,
                         ReplayLogFile(*options_.vfs, version_store_.LogPath(prev),
                                       replay_options, apply));
    stats_.restart.entries_replayed += prev_replay.entries_replayed;
    stats_.restart.entries_skipped += prev_replay.entries_skipped;
    used_previous = true;
  }
  stats_.restart.checkpoint_read_micros = restart_watch.ElapsedMicros();
  stats_.restart.used_previous_checkpoint = used_previous;

  // Step 3: replay the updates from the log.
  Stopwatch replay_watch(*clock_);
  SDB_ASSIGN_OR_RETURN(LogReplayStats replay,
                       ReplayLogFile(*options_.vfs, state.log_path, replay_options, apply));
  stats_.restart.replay_micros = replay_watch.ElapsedMicros();
  stats_.restart.entries_replayed += replay.entries_replayed;
  stats_.restart.entries_skipped += replay.entries_skipped;
  stats_.restart.partial_tail_discarded = replay.partial_tail_discarded;
  stats_.log_entries_since_checkpoint = replay.entries_replayed;
  return OkStatus();
}

Result<std::unique_ptr<LogWriter>> Database::OpenLogForAppend(const std::string& path) {
  SDB_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                       options_.vfs->Open(path, OpenMode::kReadWrite));
  SDB_ASSIGN_OR_RETURN(std::uint64_t size, file->Size());
  // Discard a torn tail so new entries are never appended after garbage. The replay
  // layer already ignored it; physically truncating keeps the file parseable.
  if (options_.log_writer.pad_to_page_boundary &&
      size % options_.log_writer.page_size != 0) {
    size = (size / options_.log_writer.page_size) * options_.log_writer.page_size;
    SDB_RETURN_IF_ERROR(file->Truncate(size));
    SDB_RETURN_IF_ERROR(file->Sync());
  }
  return std::make_unique<LogWriter>(std::move(file), size, options_.log_writer);
}

Status Database::CheckPoisoned() const {
  if (poisoned_) {
    return InternalError(
        "database is poisoned: an applied update diverged from the log; reopen to recover");
  }
  return OkStatus();
}

namespace {
Status ReadOnlyError() {
  return FailedPreconditionError("database was opened read-only");
}
}  // namespace

Status Database::Enquire(const std::function<Status()>& enquiry) {
  SueLock::SharedGuard guard(lock_);
  SDB_RETURN_IF_ERROR(CheckPoisoned());
  Status status = enquiry();
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.enquiries;
  }
  return status;
}

Status Database::Update(const std::function<Result<Bytes>()>& prepare) {
  std::vector<std::function<Result<Bytes>()>> one{prepare};
  return UpdateBatch(one);
}

Status Database::UpdateBatch(const std::vector<std::function<Result<Bytes>()>>& prepares) {
  if (prepares.empty()) {
    return InvalidArgumentError("empty update batch");
  }
  if (read_only_) {
    return ReadOnlyError();
  }
  UpdateBreakdown breakdown;
  {
    SueLock::UpdateGuard guard(lock_);
    SDB_RETURN_IF_ERROR(CheckPoisoned());

    // Step 1: verify preconditions and gather the parameters of each update into a
    // record, under the update lock (enquiries continue concurrently).
    Stopwatch prepare_watch(*clock_);
    std::vector<Bytes> records;
    records.reserve(prepares.size());
    for (const auto& prepare : prepares) {
      Result<Bytes> record = prepare();
      if (!record.ok()) {
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.update_precondition_failures;
        return record.status();
      }
      records.push_back(std::move(*record));
    }
    breakdown.prepare_micros = prepare_watch.ElapsedMicros();

    // Step 2: record the updates in the disk log. The fsync is the commit point.
    Stopwatch log_watch(*clock_);
    for (const Bytes& record : records) {
      Status status = log_->Append(AsSpan(record));
      if (!status.ok()) {
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.update_commit_failures;
        return status.WithContext("appending log entry");
      }
    }
    Status commit = log_->Commit();
    if (!commit.ok()) {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.update_commit_failures;
      return commit.WithContext("committing log entry");
    }
    breakdown.log_micros = log_watch.ElapsedMicros();

    // Step 3: apply to the virtual memory structure, in exclusive mode (enquiries are
    // excluded only for this in-memory step, never during the disk write).
    Stopwatch apply_watch(*clock_);
    guard.Upgrade();
    for (const Bytes& record : records) {
      Status status = app_.ApplyUpdate(AsSpan(record));
      if (!status.ok()) {
        // The record is durably logged but could not be applied: memory and disk have
        // diverged. Fail closed.
        poisoned_ = true;
        return status.WithContext("applying committed update (database poisoned)");
      }
    }
    breakdown.apply_micros = apply_watch.ElapsedMicros();
    breakdown.total_micros =
        breakdown.prepare_micros + breakdown.log_micros + breakdown.apply_micros;

    {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      stats_.updates += records.size();
      stats_.log_entries_since_checkpoint += records.size();
      stats_.last_update = breakdown;
    }
  }
  MaybeAutoCheckpoint();
  return OkStatus();
}

Status Database::ReplaceState(ByteSpan state) {
  if (read_only_) {
    return ReadOnlyError();
  }
  SueLock::UpdateGuard guard(lock_);
  guard.Upgrade();
  SDB_RETURN_IF_ERROR(app_.ResetState());
  SDB_RETURN_IF_ERROR(app_.DeserializeState(state).WithContext("installing replacement state"));
  guard.Downgrade();
  poisoned_ = false;
  return CheckpointLocked();
}

Status Database::Checkpoint() {
  if (read_only_) {
    return ReadOnlyError();
  }
  SueLock::UpdateGuard guard(lock_);
  SDB_RETURN_IF_ERROR(CheckPoisoned());
  return CheckpointLocked();
}

Status Database::CheckpointLocked() {
  CheckpointBreakdown breakdown;
  Stopwatch total_watch(*clock_);

  // Serialize the entire state. Holding update (not exclusive) mode: the state cannot
  // change, but enquiries proceed throughout.
  Stopwatch serialize_watch(*clock_);
  SDB_ASSIGN_OR_RETURN(Bytes snapshot, app_.SerializeState());
  breakdown.serialize_micros = serialize_watch.ElapsedMicros();

  Stopwatch disk_watch(*clock_);
  std::uint64_t new_version = version_ + 1;
  SDB_RETURN_IF_ERROR(WriteWholeFile(*options_.vfs, version_store_.CheckpointPath(new_version),
                                     AsSpan(snapshot))
                          .WithContext("writing checkpoint"));
  SDB_RETURN_IF_ERROR(
      WriteWholeFile(*options_.vfs, version_store_.LogPath(new_version), ByteSpan{})
          .WithContext("creating empty log"));
  SDB_RETURN_IF_ERROR(version_store_.CommitSwitch(version_, new_version));

  // Swap the live log writer to the new (empty) log.
  SDB_ASSIGN_OR_RETURN(std::unique_ptr<LogWriter> new_log,
                       OpenLogForAppend(version_store_.LogPath(new_version)));
  Status closed = log_->Close();
  if (!closed.ok()) {
    SDB_LOG(kWarning) << "closing old log: " << closed;
  }
  log_ = std::move(new_log);
  version_ = new_version;
  last_checkpoint_time_ = clock_->NowMicros();
  breakdown.disk_micros = disk_watch.ElapsedMicros();
  breakdown.total_micros = total_watch.ElapsedMicros();

  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.checkpoints;
    stats_.log_entries_since_checkpoint = 0;
    stats_.last_checkpoint = breakdown;
  }
  return OkStatus();
}

void Database::MaybeAutoCheckpoint() {
  const CheckpointPolicy& policy = options_.checkpoint_policy;
  bool trigger = false;
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    if (policy.every_n_updates != 0 &&
        stats_.log_entries_since_checkpoint >= policy.every_n_updates) {
      trigger = true;
    }
  }
  if (!trigger && policy.log_bytes_threshold != 0 && log_bytes() >= policy.log_bytes_threshold) {
    trigger = true;
  }
  if (!trigger && policy.interval_micros != 0 &&
      clock_->NowMicros() - last_checkpoint_time_ >= policy.interval_micros) {
    trigger = true;
  }
  if (!trigger) {
    return;
  }
  Status status = Checkpoint();
  if (status.ok()) {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.auto_checkpoints;
  } else {
    SDB_LOG(kWarning) << "automatic checkpoint failed: " << status;
  }
}

std::uint64_t Database::current_version() const { return version_; }

std::uint64_t Database::log_bytes() const { return log_ != nullptr ? log_->size() : 0; }

DatabaseStats Database::stats() const {
  std::lock_guard<std::mutex> stats_lock(stats_mutex_);
  return stats_;
}

}  // namespace sdb
