#include "src/core/integrity.h"

#include <charconv>

#include "src/core/log_reader.h"
#include "src/core/version_store.h"
#include "src/pickle/pickle.h"

namespace sdb {
namespace {

std::optional<std::uint64_t> ParseDecimal(std::string_view text) {
  if (text.empty() || text.size() > 19) {
    return std::nullopt;
  }
  std::uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size() || value == 0) {
    return std::nullopt;
  }
  return value;
}

// Read-only version resolution: the same rules recovery uses, minus the cleanup.
Result<std::optional<std::uint64_t>> ReadVersionNumber(Vfs& vfs, const std::string& dir,
                                                       std::string_view name) {
  std::string path = JoinPath(dir, name);
  SDB_ASSIGN_OR_RETURN(bool exists, vfs.Exists(path));
  if (!exists) {
    return {std::optional<std::uint64_t>{}};
  }
  Result<Bytes> content = ReadWholeFile(vfs, path);
  if (!content.ok()) {
    if (content.status().Is(ErrorCode::kUnreadable)) {
      return {std::optional<std::uint64_t>{}};
    }
    return content.status();
  }
  return {ParseDecimal(AsStringView(AsSpan(*content)))};
}

}  // namespace

Result<IntegrityReport> VerifyDatabaseDir(Vfs& vfs, const std::string& dir,
                                          std::size_t log_page_size) {
  IntegrityReport report;
  VersionStore names(vfs, dir);  // used only for path naming + audit listing

  SDB_ASSIGN_OR_RETURN(std::optional<std::uint64_t> from_newversion,
                       ReadVersionNumber(vfs, dir, "newversion"));
  if (from_newversion.has_value()) {
    SDB_ASSIGN_OR_RETURN(bool checkpoint_exists,
                         vfs.Exists(names.CheckpointPath(*from_newversion)));
    SDB_ASSIGN_OR_RETURN(bool log_exists, vfs.Exists(names.LogPath(*from_newversion)));
    if (checkpoint_exists && log_exists) {
      report.version = *from_newversion;
      report.pending_switch = true;
    }
  }
  if (report.version == 0) {
    SDB_ASSIGN_OR_RETURN(std::optional<std::uint64_t> from_version,
                         ReadVersionNumber(vfs, dir, "version"));
    if (!from_version.has_value()) {
      return NotFoundError("no valid version in " + dir);
    }
    report.version = *from_version;
  }

  // Delta chain resolution: the same read-only rules recovery uses. A live
  // manifest redirects checkpoint verification to the chain's base, and every
  // delta in the chain must be present with an intact envelope — a missing or
  // damaged link makes the whole composed state unrecoverable.
  report.chain_base = report.version;
  {
    Result<std::optional<DeltaChain>> manifest = names.ReadManifest();
    if (!manifest.ok()) {
      report.chain_ok = false;
      report.problems.push_back("delta manifest unreadable or garbled: " +
                                manifest.status().ToString());
    } else if (manifest->has_value()) {
      const DeltaChain& chain = **manifest;
      if (chain.top() < report.version) {
        // Superseded by a later full checkpoint; recovery sweeps it silently.
        report.problems.push_back(
            "stale delta manifest (superseded by a full checkpoint); swept at next open");
      } else if (report.version < chain.base) {
        report.chain_ok = false;
        report.problems.push_back("delta manifest names base " +
                                  std::to_string(chain.base) +
                                  " beyond the current version");
      } else {
        report.chain_base = chain.base;
        bool found = chain.base == report.version;
        std::uint64_t orphans = 0;
        for (std::uint64_t v : chain.deltas) {
          if (v <= report.version) {
            report.chain_deltas.push_back(v);
            found |= v == report.version;
          } else {
            ++orphans;  // beyond the committed version: truncated at next open
          }
        }
        if (!found) {
          report.chain_ok = false;
          report.problems.push_back("delta manifest skips the current version " +
                                    std::to_string(report.version));
        }
        if (orphans > 0) {
          report.problems.push_back(
              std::to_string(orphans) +
              " orphan delta(s) beyond the current version; truncated at next open");
        }
      }
    }
  }

  // Checkpoint: envelope CRC + stored type name (the chain's base when a manifest
  // is live, the self-contained checkpoint otherwise).
  {
    Result<Bytes> snapshot = ReadWholeFile(vfs, names.CheckpointPath(report.chain_base));
    if (!snapshot.ok()) {
      report.problems.push_back("checkpoint unreadable: " + snapshot.status().ToString());
    } else {
      report.checkpoint_bytes = snapshot->size();
      Result<std::string> type_name = PeekEnvelopeType(AsSpan(*snapshot));
      if (!type_name.ok()) {
        report.problems.push_back("checkpoint damaged: " + type_name.status().ToString());
      } else {
        report.checkpoint_ok = true;
        report.checkpoint_type = *type_name;
      }
    }
  }

  // Chain deltas: every link must be present and pass its envelope CRC, in
  // composition order.
  for (std::uint64_t v : report.chain_deltas) {
    Result<Bytes> delta = ReadWholeFile(vfs, names.DeltaPath(v));
    if (!delta.ok()) {
      report.chain_ok = false;
      report.problems.push_back("chain delta" + std::to_string(v) +
                                " unreadable: " + delta.status().ToString());
      continue;
    }
    report.chain_delta_bytes += delta->size();
    Result<std::string> type_name = PeekEnvelopeType(AsSpan(*delta));
    if (!type_name.ok()) {
      report.chain_ok = false;
      report.problems.push_back("chain delta" + std::to_string(v) +
                                " damaged: " + type_name.status().ToString());
    }
  }

  // Log: decode every entry (tolerating unreadable pages so damage is counted, not
  // fatal).
  auto verify_log = [&](std::uint64_t version, const char* label) {
    LogReplayOptions options;
    options.skip_damaged_entries = true;
    options.page_size = log_page_size;
    Result<LogReplayStats> stats = ReplayLogFile(vfs, names.LogPath(version), options,
                                                 [](ByteSpan) { return OkStatus(); });
    if (!stats.ok()) {
      report.log_ok = false;
      report.problems.push_back(std::string(label) + " unreadable: " +
                                stats.status().ToString());
      return;
    }
    report.log_entries += stats->entries_replayed;
    report.log_bytes += stats->bytes_consumed;
    report.log_has_partial_tail |= stats->partial_tail_discarded;
    report.log_damaged_entries += stats->entries_skipped;
    if (stats->entries_skipped > 0) {
      report.problems.push_back(std::to_string(stats->entries_skipped) + " damaged " +
                                label + " entr(y/ies): hard-error recovery needed");
    }
  };
  report.log_ok = true;
  verify_log(report.version, "log");

  // Pending rotation chain (concurrent checkpointing): logs version+1..marker hold
  // acknowledged updates that recovery replays after the main log — verify them
  // with the same rigor.
  report.live_log_version = report.version;
  {
    std::string marker_path = JoinPath(dir, "pending");
    SDB_ASSIGN_OR_RETURN(bool marker_exists, vfs.Exists(marker_path));
    if (marker_exists) {
      Result<Bytes> content = ReadWholeFile(vfs, marker_path);
      std::optional<std::uint64_t> live;
      if (content.ok()) {
        live = ParseDecimal(AsStringView(AsSpan(*content)));
      }
      if (!live.has_value()) {
        report.log_ok = false;
        report.problems.push_back(
            "pending marker unreadable or garbled: acknowledged updates may hide in "
            "rotated logs");
      } else if (*live > report.version) {
        report.live_log_version = *live;
        for (std::uint64_t v = report.version + 1; v <= *live; ++v) {
          SDB_ASSIGN_OR_RETURN(bool chain_log_exists, vfs.Exists(names.LogPath(v)));
          if (!chain_log_exists) {
            report.log_ok = false;
            report.problems.push_back("pending marker names live log " +
                                      std::to_string(*live) + " but logfile" +
                                      std::to_string(v) + " is missing");
            continue;
          }
          report.pending_logs.push_back(v);
          verify_log(v, "pending log");
        }
      }
      // A marker at or below the current version is stale: recovery deletes it.
    }
  }

  // Retained previous generation?
  if (report.version > 1) {
    SDB_ASSIGN_OR_RETURN(bool prev_checkpoint,
                         vfs.Exists(names.CheckpointPath(report.version - 1)));
    SDB_ASSIGN_OR_RETURN(bool prev_log, vfs.Exists(names.LogPath(report.version - 1)));
    if (prev_checkpoint && prev_log) {
      report.previous_version = report.version - 1;
    }
  }
  SDB_ASSIGN_OR_RETURN(report.audit_logs, names.ListAuditLogs());
  return report;
}

}  // namespace sdb
