// GroupCommitter: the automatic cross-thread group-commit pipeline.
//
// The paper's Section 5 observes that the only way past one-fsync-per-update
// throughput is "arranging to record multiple commit records in a single log entry".
// The engine's manual Database::UpdateBatch does that for updates a single caller
// already holds in hand; this subsystem does it for *concurrent* callers with no API
// change: N threads calling Database::Update() at once share one log disk write.
//
// Protocol (leader election among waiters; no background thread):
//   - Each caller enqueues its prepare callback(s) and blocks.
//   - When no batch is in flight, one waiter elects itself leader, seals the whole
//     queue as a batch, and drives the batch through three phases:
//       1. prepare  — under the UPDATE lock: run every request's prepare callbacks in
//          queue order, collecting the pickled records. A request whose prepare fails
//          is dropped from the batch (its caller gets the error); the rest proceed.
//       2. commit   — with NO lock held: append every surviving record to the log as
//          one contiguous write, pad once, fsync ONCE. This is the commit point for
//          the entire batch. Enquiries and new Update() arrivals run concurrently.
//       3. apply    — under the EXCLUSIVE lock: apply the records in log order.
//   - The leader completes every request in the batch and wakes its waiters; one of
//     the waiters that arrived during the flush leads the next batch.
//
// Invariants preserved from the paper's Section 3 discipline:
//   - A caller's Update() returns OK only after its record is durable (the batch
//     fsync precedes every acknowledgement).
//   - ApplyUpdate runs only for durable records, in exactly log order, so replay
//     after a crash reconstructs the same state.
//   - No disk transfer happens while the exclusive lock is held: enquiries are never
//     blocked during disk writes. (The fsync holds no lock at all.)
//   - Batches are strictly sequential: batch N+1's prepares run only after batch N's
//     applies, so a prepare always sees every earlier-logged update applied — the
//     same serializability a single update lock gave the one-at-a-time path.
//
// Within one batch, prepares run back-to-back before any of the batch's applies
// (exactly like the pre-existing manual UpdateBatch): a prepare does not see the
// effects of earlier records *of the same batch*. Applications whose records carry
// state derived from the in-memory database (e.g. the name server's replication
// sequence numbers) can detect batch boundaries via Database::commit_epoch() and
// reserve against in-flight records; see NameServer::SyncReservations.
#ifndef SMALLDB_SRC_CORE_GROUP_COMMIT_H_
#define SMALLDB_SRC_CORE_GROUP_COMMIT_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/core/log_writer.h"
#include "src/core/sue_lock.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace sdb {

struct GroupCommitOptions {
  // When false, Database::Update falls back to the one-fsync-per-update serial path
  // (the paper's base protocol). Used by benchmarks as the baseline and available as
  // an escape hatch.
  bool enabled = true;

  // Upper bound on records sealed into one batch (one fsync). 0 = unlimited. Bounds
  // both the single contiguous log write and the exclusive-mode apply span.
  std::size_t max_batch_records = 1024;
};

struct GroupCommitStats {
  std::uint64_t batches = 0;             // batches that reached the disk phase
  // Physical fsyncs this pipeline issued. With the default LogWriterSink this equals
  // successful batches; behind a CrossShardCoalescer a batch whose durability was
  // covered by an fsync led on another shard's behalf contributes 0 here, so summing
  // `syncs` across shard pipelines yields exactly the coalescer's covering fsyncs —
  // never an overstatement.
  std::uint64_t syncs = 0;
  std::uint64_t records_committed = 0;   // records made durable
  std::uint64_t sync_waits = 0;          // requests completed by a batch they did not lead
  std::uint64_t max_records_per_sync = 0;
  // Histogram of records per sync: buckets 1, 2, 3-4, 5-8, 9-16, 17+.
  std::array<std::uint64_t, 6> records_per_sync_hist{};

  double records_per_sync() const {
    return syncs == 0 ? 0.0 : static_cast<double>(records_committed) / static_cast<double>(syncs);
  }
  double fsyncs_per_record() const {
    return records_committed == 0 ? 0.0
                                  : static_cast<double>(syncs) / static_cast<double>(records_committed);
  }
};

// Hot-path counters shared between the Database and the committer: lock-free
// registry-owned metrics (the Database registers them in its own obs::Registry, so
// DatabaseStats and MetricsReport read the same source of truth). These stay live
// even under SDB_OBS_DISABLED — the checkpoint policy depends on them.
struct UpdateCounters {
  obs::Counter* updates = nullptr;
  obs::Counter* precondition_failures = nullptr;
  obs::Counter* commit_failures = nullptr;
  obs::Gauge* log_entries_since_checkpoint = nullptr;
  // Mirror of the live log's size, refreshed after every batch/serial commit, so
  // Database::log_bytes() needs no lock while a batch is streaming to disk.
  obs::Gauge* log_bytes = nullptr;
};

// Where a sealed batch's records go to become durable. The committer drives the
// disk phase through this interface so the same pipeline serves both a private log
// (LogWriterSink: append, pad, one fsync per batch) and a log shared across shards
// (ShardedDatabase's sink: tagged appends into one file, durability awaited from the
// CrossShardCoalescer so one fsync covers batches from many shards). Append and Sync
// are separate calls because they are separate trace stages (kAppend / kFsync).
// All calls are made by one batch leader at a time (batches are sequential within a
// pipeline) with no engine lock held.
class CommitSink {
 public:
  virtual ~CommitSink() = default;

  // Buffers the batch's records into the log (not yet durable).
  virtual Status AppendRecords(std::span<const ByteSpan> payloads) = 0;

  // Makes everything this sink appended so far durable. Returns the number of
  // physical fsyncs issued on behalf of this batch: 1 when the sink syncs its own
  // log, 0 when a covering fsync led for another batch already did the work. The
  // pipeline adds the result to its fsync counters, so aggregate fsync accounting
  // stays truthful under coalescing.
  virtual Result<std::uint64_t> SyncRecords() = 0;

  // Current byte size of the underlying log (mirrors into the log_bytes gauge).
  virtual std::uint64_t log_bytes() const = 0;
};

// The default sink: the database's own live LogWriter.
class LogWriterSink final : public CommitSink {
 public:
  explicit LogWriterSink(LogWriter* log = nullptr) : log_(log) {}

  // Only while the owning pipeline is paused (checkpoint rotation swaps the log).
  void set_log(LogWriter* log) { log_ = log; }

  Status AppendRecords(std::span<const ByteSpan> payloads) override {
    return log_->AppendBatch(payloads);
  }
  Result<std::uint64_t> SyncRecords() override {
    SDB_RETURN_IF_ERROR(log_->Commit());
    return std::uint64_t{1};
  }
  std::uint64_t log_bytes() const override { return log_->size(); }

 private:
  LogWriter* log_;
};

// CrossShardCoalescer: the global flush pipeline behind a sharded engine.
//
// N shards each run their own GroupCommitter (per-shard update lock, per-shard
// batches), but all of them append to ONE shared log. The coalescer extends the
// group-commit idea one level up: instead of each shard's batch paying its own
// fsync, batch leaders append (serialized, ticketed) and then await coverage; the
// first awaiting thread elects itself the flush leader and issues a single fsync
// that covers every batch appended before it — typically batches from several
// shards at once. Per-shard acks release as soon as the covering fsync returns, so
// N shards multiply throughput without multiplying disk syncs.
//
// Protocol (single mutex; the fsync itself runs with the mutex held, so at most one
// fsync is ever in flight and appends from other shards queue behind it exactly the
// way riders queue behind a group-commit leader):
//   - AppendBatch buffers the batch's (already shard-tagged) records as one
//     contiguous write and returns a monotone ticket.
//   - AwaitDurable(ticket) returns once some successful fsync started after that
//     ticket's append. If none has, the caller leads: it snapshots the newest
//     ticket (`cover`), fsyncs, and publishes durable_seq = cover.
//   - A failed fsync does not advance durable_seq and fails only its leader (whose
//     records may or may not have reached the medium — the same possibly-durable
//     verdict a failed single-database commit yields); every other batch retries
//     with a fresh fsync of its own, so each gets a definitive verdict.
//
// Freeze()/Unfreeze() quiesce the whole flush pipeline (no appends, no new fsyncs)
// so the shared log can be rotated; the caller must already know no batch is awaiting
// durability (the rotation rule guarantees it — see ShardedDatabase::MaybeRotateLog).
class CrossShardCoalescer {
 public:
  struct Stats {
    std::uint64_t covering_fsyncs = 0;   // successful fsyncs issued
    std::uint64_t failed_fsyncs = 0;
    std::uint64_t batches_appended = 0;
    std::uint64_t batches_coalesced = 0;  // batches made durable by a covering fsync
                                          // they did not lead
    std::uint64_t max_batches_per_fsync = 0;
  };

  // `coalesce_window`: how long a would-be flush leader lingers for more batches
  // before issuing its covering fsync. The window re-arms while traffic keeps
  // arriving and closes on the first quiet interval, so under load one sync commits
  // every pipeline's batch, while a solo committer pays at most one idle window.
  // Zero disables the linger (the leader still defers to mid-append batches).
  explicit CrossShardCoalescer(
      LogWriter* log,
      std::chrono::microseconds coalesce_window = std::chrono::microseconds(50))
      : log_(log), coalesce_window_(coalesce_window) {}
  CrossShardCoalescer(const CrossShardCoalescer&) = delete;
  CrossShardCoalescer& operator=(const CrossShardCoalescer&) = delete;

  // Appends the batch's framed records as one contiguous write and returns the
  // ticket AwaitDurable needs. Blocks while the log is frozen or an fsync is in
  // flight (the append itself is a buffered write — cheap next to the fsync).
  Result<std::uint64_t> AppendBatch(std::span<const ByteSpan> payloads);

  // Blocks until a covering fsync succeeds (returns the number of physical fsyncs
  // this caller issued: 1 if it led, 0 if it rode) or the covering attempt fails
  // (returns that error; the records are possibly durable).
  Result<std::uint64_t> AwaitDurable(std::uint64_t ticket);

  // Quiesces the pipeline for a log rotation: appends and fsyncs block until
  // Unfreeze. Returns with no fsync in flight. Not reentrant.
  void Freeze();
  void Unfreeze();

  // Fail-stops the pipeline: every subsequent AppendBatch (and any AwaitDurable not
  // already covered) returns kInternal. Used when an aborted log rotation leaves the
  // manifest and the live writer possibly naming different files — committing more
  // batches could acknowledge updates recovery would replay from the wrong log.
  void Poison();

  // Only meaningful between Freeze and Unfreeze.
  void set_log(LogWriter* log);

  std::uint64_t log_bytes() const;
  Stats stats() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  LogWriter* log_;
  std::chrono::microseconds coalesce_window_;
  bool frozen_ = false;
  bool poisoned_ = false;
  // Shard pipelines that have entered AppendBatch but not yet appended. A would-be
  // flush leader defers its fsync while this doorway is occupied, so one covering
  // sync picks up every batch already racing toward the log instead of each batch
  // paying a private sync because the leader beat it to the mutex. Atomic because
  // it is incremented before mu_ is taken; every decrement happens under mu_ and
  // notifies, so a deferring leader always re-checks.
  std::atomic<std::uint64_t> arriving_{0};
  std::uint64_t appended_seq_ = 0;  // tickets issued (one per appended batch)
  std::uint64_t durable_seq_ = 0;   // highest ticket covered by a successful fsync
  Stats stats_;
};

// Per-batch phase timing (also the shape of DatabaseStats::last_update; with the
// pipeline enabled it describes the last *batch*).
struct UpdateBreakdown {
  Micros prepare_micros = 0;  // precondition checks + pickling, under the update lock
  Micros log_micros = 0;      // the batch disk write + fsync (the commit), no lock held
  Micros apply_micros = 0;    // exclusive-mode in-memory modification
  Micros total_micros = 0;
};

// What the committer needs from the Database. All methods are called on a leader
// thread under the locking regime stated for each.
class GroupCommitHost {
 public:
  virtual ~GroupCommitHost() = default;

  // Called under the update lock before a batch's prepares: bump the commit epoch and
  // return its new value (stamped into the batch's trace event), or refuse the batch
  // (poisoned database) by returning non-OK.
  virtual Result<std::uint64_t> BatchBegin() = 0;

  // Called under the exclusive lock for each durable record, in log order.
  virtual Status BatchApply(ByteSpan record) = 0;

  // Called under the exclusive lock when BatchApply failed: memory and log have
  // diverged; the database must fail closed until reopened.
  virtual void BatchPoisoned(const Status& cause) = 0;

  // Called with no lock held after a batch commits, with the phase breakdown.
  virtual void BatchCommitted(const UpdateBreakdown& breakdown) = 0;
};

class GroupCommitter {
 public:
  using PrepareFn = std::function<Result<Bytes>()>;

  // `sink` is where sealed batches go to become durable; the committer uses it only
  // inside a batch, so its underlying log may be swapped (LogWriterSink::set_log)
  // whenever the pipeline is paused (checkpoint switch). `stage_metrics` is the
  // owning database's per-stage aggregation (histograms + optional trace ring); the
  // committer records one CommitTrace per committed batch.
  GroupCommitter(SueLock& lock, Clock& clock, GroupCommitHost& host, CommitSink* sink,
                 UpdateCounters* counters, obs::CommitStageMetrics stage_metrics,
                 GroupCommitOptions options);

  GroupCommitter(const GroupCommitter&) = delete;
  GroupCommitter& operator=(const GroupCommitter&) = delete;

  // Submits one request (one or more prepares, all-or-nothing at prepare time) and
  // blocks until it is durable and applied, or failed. Returns the request's outcome:
  // the prepare's own error, the disk error that aborted the commit, or kInternal if
  // the database was poisoned before/while applying.
  Status Submit(std::span<const PrepareFn> prepares);

  // The transport-side batch ingest hook: submits N *independent* single-prepare
  // requests — decoded updates from many client connections, carried by one server
  // thread — enqueued under one lock acquisition so a single seal catches them all
  // and one fsync covers every socket's request. Unlike Submit's all-or-nothing
  // span, each request succeeds or fails on its own; the returned statuses are in
  // input order. Blocks until every request is durable and applied, or failed.
  std::vector<Status> SubmitMany(std::span<const PrepareFn> prepares);

  // Quiesces the pipeline: returns once no batch is in flight, and prevents new
  // batches from starting until Resume(). Queued requests simply wait. Used by
  // checkpoint/state-replacement so the log is never switched under an in-flight
  // batch (records already fsynced into the old log must be applied and acknowledged
  // before the log is reset). Not reentrant.
  void Pause();
  void Resume();

  GroupCommitStats stats() const;

 private:
  struct Request {
    explicit Request(std::span<const PrepareFn> p) : prepares(p) {}
    std::span<const PrepareFn> prepares;
    std::vector<Bytes> records;  // filled by the leader's prepare phase
    Status status;
    bool prepared_ok = false;  // part of the batch write set
    bool done = false;
    bool rode_along = false;  // completed by a leader other than itself
    Micros enqueued_micros = 0;   // stamp at Submit (queue-wait stage), obs only
    Micros completed_micros = 0;  // stamp when the leader publishes done (ack stage)
  };

  // Seals `queue_` (up to max_batch_records) into a batch and runs it to completion.
  // Called with `lock` held; releases it for the batch's duration and reacquires it
  // to publish completion.
  void LeadBatch(std::unique_lock<std::mutex>& lock, Request& self);
  void RunBatch(const std::vector<Request*>& batch, Micros queue_wait_max);

  SueLock& lock_;
  Clock& clock_;
  GroupCommitHost& host_;
  UpdateCounters* counters_;
  obs::CommitStageMetrics stage_metrics_;
  const GroupCommitOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request*> queue_;
  CommitSink* sink_;
  bool batch_in_progress_ = false;
  bool paused_ = false;
  GroupCommitStats stats_;
};

}  // namespace sdb

#endif  // SMALLDB_SRC_CORE_GROUP_COMMIT_H_
