// LogWriter: appends update records to the redo log. The fsync inside Commit() is the
// database's commit point (paper Section 3: "The commit point is the disk write").
//
// Group commit (Section 5: "arranging to record multiple commit records in a single
// log entry") is supported by appending several records and syncing once.
#ifndef SMALLDB_SRC_CORE_LOG_WRITER_H_
#define SMALLDB_SRC_CORE_LOG_WRITER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/storage/vfs.h"

namespace sdb {

// Snapshot of a LogWriter's counters. The writer keeps these internally as relaxed
// atomics — they are mutated by whichever thread leads a commit batch and read
// lock-free by observers (Database::log_writer_stats) while batches are in flight.
struct LogWriterStats {
  std::uint64_t entries_appended = 0;
  std::uint64_t commits = 0;  // fsyncs
  std::uint64_t bytes_appended = 0;
  std::uint64_t padding_bytes = 0;
};

struct LogWriterOptions {
  // Each Commit pads the log to a page boundary, so the next commit never rewrites a
  // page containing already-committed data. Without this, a torn write of the shared
  // final page could destroy a previously acknowledged update — the one failure the
  // paper's commit-point argument must exclude. (The paper's own framing — "the log
  // entry's length on the first page of the entry" — implies the same alignment.)
  bool pad_to_page_boundary = true;
  std::size_t page_size = 512;
};

class LogWriter {
 public:
  // Takes ownership of an open, append-positioned log file.
  LogWriter(std::unique_ptr<File> file, std::uint64_t initial_size,
            LogWriterOptions options = {})
      : file_(std::move(file)), size_(initial_size), options_(options) {}

  // Buffers one framed entry into the OS cache (not yet durable).
  Status Append(ByteSpan payload) { return AppendBatch({&payload, 1}); }

  // Buffers several framed entries as ONE contiguous file append (not yet durable).
  // The group-commit pipeline hands a whole batch here so the file system sees a
  // single streaming write instead of one syscall per record. The internal encode
  // buffer is reused across calls, so a steady-state commit allocates nothing.
  Status AppendBatch(std::span<const ByteSpan> payloads);

  // Makes everything appended so far durable. Returns only after the data is on the
  // medium — or an error, in which case nothing appended since the last successful
  // Commit may be assumed durable.
  Status Commit();

  // Append + Commit: the common single-update path.
  Status AppendAndCommit(ByteSpan payload) {
    SDB_RETURN_IF_ERROR(Append(payload));
    return Commit();
  }

  std::uint64_t size() const { return size_.load(std::memory_order_relaxed); }

  // By-value snapshot, safe to call from any thread at any time.
  LogWriterStats stats() const {
    LogWriterStats snapshot;
    snapshot.entries_appended = entries_appended_.load(std::memory_order_relaxed);
    snapshot.commits = commits_.load(std::memory_order_relaxed);
    snapshot.bytes_appended = bytes_appended_.load(std::memory_order_relaxed);
    snapshot.padding_bytes = padding_bytes_.load(std::memory_order_relaxed);
    return snapshot;
  }

  Status Close() { return file_->Close(); }

 private:
  Status PadToPageBoundary();

  std::unique_ptr<File> file_;
  std::atomic<std::uint64_t> size_;
  LogWriterOptions options_;
  std::atomic<std::uint64_t> entries_appended_{0};
  std::atomic<std::uint64_t> commits_{0};
  std::atomic<std::uint64_t> bytes_appended_{0};
  std::atomic<std::uint64_t> padding_bytes_{0};
  Bytes scratch_;  // reusable encode buffer (capacity persists across batches)
  Bytes padding_;  // reusable zero page for PadToPageBoundary
};

}  // namespace sdb

#endif  // SMALLDB_SRC_CORE_LOG_WRITER_H_
