#include "src/core/log_format.h"

#include "src/common/crc.h"

namespace sdb {

void EncodeLogEntry(ByteSpan payload, ByteWriter& out) {
  ByteWriter body;
  body.PutVarint(payload.size());
  body.PutBytes(payload);
  std::uint32_t crc = Crc32c(AsSpan(body.buffer()));
  out.PutU16(kLogSyncMarker);
  out.PutU32(MaskCrc(crc));
  out.PutBytes(AsSpan(body.buffer()));
}

std::size_t EncodedLogEntrySize(std::size_t payload_size) {
  std::size_t varint_size = 1;
  for (std::uint64_t v = payload_size; v >= 0x80; v >>= 7) {
    ++varint_size;
  }
  return 2 + 4 + varint_size + payload_size;
}

LogDecodeResult DecodeLogEntry(ByteSpan log, std::size_t offset) {
  LogDecodeResult result;
  if (offset == log.size()) {
    result.outcome = LogDecodeOutcome::kCleanEnd;
    return result;
  }
  ByteReader reader(log.subspan(offset));

  auto marker = reader.ReadU16();
  if (!marker.ok()) {
    result.outcome = LogDecodeOutcome::kPartialTail;
    return result;
  }
  if (*marker != kLogSyncMarker) {
    result.outcome = LogDecodeOutcome::kCorrupt;
    return result;
  }
  auto stored_crc = reader.ReadU32();
  if (!stored_crc.ok()) {
    result.outcome = LogDecodeOutcome::kPartialTail;
    return result;
  }
  std::size_t body_begin = reader.position();
  auto length = reader.ReadVarint();
  if (!length.ok()) {
    result.outcome = LogDecodeOutcome::kPartialTail;
    return result;
  }
  if (*length > kMaxLogEntryPayload) {
    result.outcome = LogDecodeOutcome::kCorrupt;
    return result;
  }
  if (*length > reader.remaining()) {
    // The length prefix promises more bytes than exist: a torn final entry — unless the
    // length itself is garbage from a damaged middle entry, which the caller
    // distinguishes by whether anything follows after resync.
    result.outcome = LogDecodeOutcome::kPartialTail;
    return result;
  }
  auto payload = reader.ReadBytes(static_cast<std::size_t>(*length));
  std::size_t body_end = reader.position();
  ByteSpan body = log.subspan(offset + body_begin, body_end - body_begin);
  if (UnmaskCrc(*stored_crc) != Crc32c(body)) {
    result.outcome = LogDecodeOutcome::kCorrupt;
    return result;
  }
  result.outcome = LogDecodeOutcome::kEntry;
  result.payload = *payload;
  result.next_offset = offset + body_end;
  return result;
}

std::size_t ResyncLog(ByteSpan log, std::size_t offset) {
  // Skip at least one byte so a corrupt entry at `offset` is not found again.
  for (std::size_t pos = offset + 1; pos + 2 <= log.size(); ++pos) {
    if (log[pos] != static_cast<std::uint8_t>(kLogSyncMarker & 0xFF) ||
        log[pos + 1] != static_cast<std::uint8_t>(kLogSyncMarker >> 8)) {
      continue;
    }
    LogDecodeResult probe = DecodeLogEntry(log, pos);
    if (probe.outcome == LogDecodeOutcome::kEntry ||
        probe.outcome == LogDecodeOutcome::kPartialTail) {
      return pos;
    }
  }
  return log.size();
}

}  // namespace sdb
