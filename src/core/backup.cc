#include "src/core/backup.h"

#include <charconv>

#include "src/core/version_store.h"

namespace sdb {
namespace {

Status CopyFile(Vfs& src_vfs, const std::string& src_path, Vfs& dst_vfs,
                const std::string& dst_path, std::uint64_t* bytes_out) {
  SDB_ASSIGN_OR_RETURN(Bytes data, ReadWholeFile(src_vfs, src_path));
  if (bytes_out != nullptr) {
    *bytes_out = data.size();
  }
  return WriteWholeFile(dst_vfs, dst_path, AsSpan(data));
}

// Copies one generation between directories; the shared body of backup and restore.
Result<BackupInfo> CopyGeneration(Vfs& src_vfs, const std::string& src_dir, Vfs& dst_vfs,
                                  const std::string& dst_dir) {
  VersionStore src_names(src_vfs, src_dir);
  VersionStore dst_names(dst_vfs, dst_dir);

  SDB_RETURN_IF_ERROR(dst_vfs.CreateDir(dst_dir));
  SDB_ASSIGN_OR_RETURN(bool dst_fresh, dst_names.IsFresh());
  if (!dst_fresh) {
    return FailedPreconditionError("destination already contains a database: " + dst_dir);
  }

  // Resolve the source generation (read-only: consult version, then newversion as the
  // fallback the protocol allows).
  Result<Bytes> version_bytes = ReadWholeFile(src_vfs, JoinPath(src_dir, "version"));
  if (!version_bytes.ok()) {
    version_bytes = ReadWholeFile(src_vfs, JoinPath(src_dir, "newversion"));
  }
  if (!version_bytes.ok()) {
    return NotFoundError("no database in " + src_dir);
  }
  std::uint64_t version = 0;
  {
    std::string_view text = AsStringView(AsSpan(*version_bytes));
    auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), version);
    if (ec != std::errc() || ptr != text.data() + text.size() || version == 0) {
      return CorruptionError("unparseable version file in " + src_dir);
    }
  }

  BackupInfo info;
  info.version = version;

  // Resolve the generation's delta chain: with a live manifest covering `version`,
  // the checkpoint is checkpoint(base) + delta files, all of which must travel.
  // (Same rules as recovery: a manifest whose top is below `version` was superseded
  // by a full switch; `version` outside the chain is corruption.)
  DeltaChain chain{version, {}};
  SDB_ASSIGN_OR_RETURN(std::optional<DeltaChain> manifest, src_names.ReadManifest());
  if (manifest.has_value() && manifest->top() >= version) {
    if (version < manifest->base) {
      return CorruptionError("delta manifest in " + src_dir +
                             " names a base beyond the current version");
    }
    chain.base = manifest->base;
    bool found = version == manifest->base;
    for (std::uint64_t v : manifest->deltas) {
      if (v <= version) {
        chain.deltas.push_back(v);
        found |= v == version;
      }
    }
    if (!found) {
      return CorruptionError("delta manifest in " + src_dir +
                             " skips the current version");
    }
  }

  SDB_RETURN_IF_ERROR(CopyFile(src_vfs, src_names.CheckpointPath(chain.base), dst_vfs,
                               dst_names.CheckpointPath(chain.base), &info.checkpoint_bytes)
                          .WithContext("copying checkpoint"));
  for (std::uint64_t v : chain.deltas) {
    std::uint64_t delta_bytes = 0;
    SDB_RETURN_IF_ERROR(CopyFile(src_vfs, src_names.DeltaPath(v), dst_vfs,
                                 dst_names.DeltaPath(v), &delta_bytes)
                            .WithContext("copying chain delta"));
    info.checkpoint_bytes += delta_bytes;
  }
  if (chain.has_deltas()) {
    SDB_RETURN_IF_ERROR(
        dst_names.PublishManifest(chain).WithContext("publishing backup manifest"));
  }
  SDB_RETURN_IF_ERROR(CopyFile(src_vfs, src_names.LogPath(version), dst_vfs,
                               dst_names.LogPath(version), &info.log_bytes)
                          .WithContext("copying log"));
  // A pending concurrent-checkpoint rotation extends the generation with rotated
  // logs; copy the chain and the marker so the restored directory replays them too.
  SDB_ASSIGN_OR_RETURN(std::optional<std::uint64_t> pending, src_names.ReadPendingMarker());
  if (pending.has_value() && *pending > version) {
    for (std::uint64_t v = version + 1; v <= *pending; ++v) {
      std::uint64_t chain_bytes = 0;
      SDB_RETURN_IF_ERROR(CopyFile(src_vfs, src_names.LogPath(v), dst_vfs,
                                   dst_names.LogPath(v), &chain_bytes)
                              .WithContext("copying rotated log"));
      info.log_bytes += chain_bytes;
    }
    SDB_RETURN_IF_ERROR(WriteWholeFile(dst_vfs, dst_names.PendingMarkerPath(),
                                       AsSpan(std::to_string(*pending))));
  }
  SDB_RETURN_IF_ERROR(dst_vfs.SyncDir(dst_dir));
  SDB_RETURN_IF_ERROR(WriteWholeFile(dst_vfs, JoinPath(dst_dir, "version"),
                                     AsSpan(std::to_string(version))));
  SDB_RETURN_IF_ERROR(dst_vfs.SyncDir(dst_dir));
  return info;
}

}  // namespace

// Reads a directory's current version number (version, falling back to newversion),
// or nullopt if there is no database there.
Result<std::optional<std::uint64_t>> ReadCurrentVersion(Vfs& vfs, const std::string& dir) {
  for (const char* name : {"version", "newversion"}) {
    std::string path = JoinPath(dir, name);
    SDB_ASSIGN_OR_RETURN(bool exists, vfs.Exists(path));
    if (!exists) {
      continue;
    }
    Result<Bytes> content = ReadWholeFile(vfs, path);
    if (!content.ok()) {
      continue;
    }
    std::string_view text = AsStringView(AsSpan(*content));
    std::uint64_t version = 0;
    auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), version);
    if (ec == std::errc() && ptr == text.data() + text.size() && version != 0) {
      return {std::optional<std::uint64_t>{version}};
    }
  }
  return {std::optional<std::uint64_t>{}};
}

Result<BackupInfo> BackupDatabaseDir(Vfs& src_vfs, const std::string& src_dir, Vfs& dst_vfs,
                                     const std::string& dst_dir) {
  return CopyGeneration(src_vfs, src_dir, dst_vfs, dst_dir);
}

Result<IncrementalBackupInfo> IncrementalBackupDatabaseDir(Vfs& src_vfs,
                                                           const std::string& src_dir,
                                                           Vfs& dst_vfs,
                                                           const std::string& dst_dir) {
  IncrementalBackupInfo result;
  SDB_RETURN_IF_ERROR(dst_vfs.CreateDir(dst_dir));
  SDB_ASSIGN_OR_RETURN(std::optional<std::uint64_t> src_version,
                       ReadCurrentVersion(src_vfs, src_dir));
  if (!src_version.has_value()) {
    return NotFoundError("no database in " + src_dir);
  }
  SDB_ASSIGN_OR_RETURN(std::optional<std::uint64_t> dst_version,
                       ReadCurrentVersion(dst_vfs, dst_dir));

  VersionStore src_names(src_vfs, src_dir);
  VersionStore dst_names(dst_vfs, dst_dir);

  // Same version is only "checkpoint unchanged" if the delta chain also matches:
  // compaction collapses a chain without bumping the version, so a stale backup
  // manifest could otherwise reference files the refresh never copied.
  bool chain_matches = false;
  if (dst_version.has_value() && *dst_version == *src_version) {
    SDB_ASSIGN_OR_RETURN(std::optional<DeltaChain> src_manifest, src_names.ReadManifest());
    SDB_ASSIGN_OR_RETURN(std::optional<DeltaChain> dst_manifest, dst_names.ReadManifest());
    chain_matches = src_manifest.has_value() == dst_manifest.has_value() &&
                    (!src_manifest.has_value() ||
                     (src_manifest->base == dst_manifest->base &&
                      src_manifest->deltas == dst_manifest->deltas));
  }
  if (chain_matches) {
    // Incremental: the checkpoint (chain) is unchanged; only the log grew.
    result.incremental = true;
    result.info.version = *src_version;
    SDB_RETURN_IF_ERROR(CopyFile(src_vfs, src_names.LogPath(*src_version), dst_vfs,
                                 dst_names.LogPath(*src_version), &result.info.log_bytes)
                            .WithContext("refreshing backup log"));
    SDB_ASSIGN_OR_RETURN(std::optional<std::uint64_t> pending, src_names.ReadPendingMarker());
    if (pending.has_value() && *pending > *src_version) {
      for (std::uint64_t v = *src_version + 1; v <= *pending; ++v) {
        std::uint64_t chain_bytes = 0;
        SDB_RETURN_IF_ERROR(CopyFile(src_vfs, src_names.LogPath(v), dst_vfs,
                                     dst_names.LogPath(v), &chain_bytes)
                                .WithContext("refreshing rotated log"));
        result.info.log_bytes += chain_bytes;
      }
      SDB_RETURN_IF_ERROR(WriteWholeFile(dst_vfs, dst_names.PendingMarkerPath(),
                                         AsSpan(std::to_string(*pending))));
    }
    SDB_RETURN_IF_ERROR(dst_vfs.SyncDir(dst_dir));
    auto checkpoint = ReadWholeFile(dst_vfs, dst_names.CheckpointPath(*src_version));
    if (checkpoint.ok()) {
      result.info.checkpoint_bytes = checkpoint->size();
    }
    return result;
  }

  // Full refresh: clear any previous backup generation, then copy.
  SDB_ASSIGN_OR_RETURN(std::vector<std::string> names, dst_vfs.List(dst_dir));
  for (const std::string& name : names) {
    if (name.rfind("checkpoint", 0) == 0 || name.rfind("logfile", 0) == 0 ||
        name.rfind("delta", 0) == 0 || name == "manifest" || name == "version" ||
        name == "newversion" || name == "pending") {
      SDB_RETURN_IF_ERROR(dst_vfs.Delete(JoinPath(dst_dir, name)));
    }
  }
  SDB_RETURN_IF_ERROR(dst_vfs.SyncDir(dst_dir));
  SDB_ASSIGN_OR_RETURN(result.info, CopyGeneration(src_vfs, src_dir, dst_vfs, dst_dir));
  return result;
}

Result<BackupInfo> RestoreDatabaseDir(Vfs& src_vfs, const std::string& src_dir,
                                      Vfs& dst_vfs, const std::string& dst_dir) {
  return CopyGeneration(src_vfs, src_dir, dst_vfs, dst_dir);
}

}  // namespace sdb
