#include "src/core/partitioned.h"

namespace sdb {

Result<std::unique_ptr<PartitionedDatabase>> PartitionedDatabase::Open(
    std::vector<PartitionSpec> partitions, DatabaseOptions base_options) {
  if (partitions.empty()) {
    return InvalidArgumentError("at least one partition required");
  }
  std::vector<std::unique_ptr<Database>> databases;
  databases.reserve(partitions.size());
  for (const PartitionSpec& spec : partitions) {
    if (spec.app == nullptr || spec.dir.empty()) {
      return InvalidArgumentError("partition requires app and dir");
    }
    DatabaseOptions options = base_options;
    options.dir = spec.dir;
    SDB_ASSIGN_OR_RETURN(std::unique_ptr<Database> db, Database::Open(*spec.app, options));
    databases.push_back(std::move(db));
  }
  return std::unique_ptr<PartitionedDatabase>(new PartitionedDatabase(std::move(databases)));
}

Status PartitionedDatabase::Enquire(std::size_t partition,
                                    const std::function<Status()>& enquiry) {
  if (partition >= databases_.size()) {
    return InvalidArgumentError("partition index out of range");
  }
  return databases_[partition]->Enquire(enquiry);
}

Status PartitionedDatabase::Update(std::size_t partition,
                                   const std::function<Result<Bytes>()>& prepare) {
  if (partition >= databases_.size()) {
    return InvalidArgumentError("partition index out of range");
  }
  return databases_[partition]->Update(prepare);
}

Status PartitionedDatabase::CheckpointAll() {
  for (const auto& db : databases_) {
    SDB_RETURN_IF_ERROR(db->Checkpoint());
  }
  return OkStatus();
}

PartitionedDatabase::AggregateStats PartitionedDatabase::aggregate_stats() const {
  AggregateStats aggregate;
  for (const auto& db : databases_) {
    DatabaseStats stats = db->stats();
    aggregate.updates += stats.updates;
    aggregate.enquiries += stats.enquiries;
    aggregate.checkpoints += stats.checkpoints;
    aggregate.log_bytes += db->log_bytes();
    // Serial-path partitions (group commit off) never populate GroupCommitStats;
    // there every acknowledged update committed with its own private fsync.
    aggregate.fsyncs += stats.group_commit.batches > 0 ? stats.group_commit.syncs
                                                       : stats.updates;
  }
  return aggregate;
}

}  // namespace sdb
