// Audit trail over the redo log (paper Section 4: "the log files form a complete audit
// trail for the database, and could be retained if desired").
#ifndef SMALLDB_SRC_CORE_AUDIT_H_
#define SMALLDB_SRC_CORE_AUDIT_H_

#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/storage/vfs.h"

namespace sdb {

struct AuditEntry {
  std::uint64_t index = 0;  // position within its log file
  Bytes record;             // the pickled update parameters, exactly as logged
};

// Reads every valid entry of one log file (current or retained) in commit order.
Result<std::vector<AuditEntry>> ReadAuditTrail(Vfs& vfs, std::string_view log_path,
                                               std::size_t page_size = 512);

}  // namespace sdb

#endif  // SMALLDB_SRC_CORE_AUDIT_H_
