// SharedLogDatabase: the paper's second Section 7 variant — multiple sub-databases
// sharing ONE log.
//
// "It seems likely that many larger databases ... could be handled by considering them
// as multiple separate databases for the purpose of writing checkpoints. In that case,
// we could either use multiple log files or a single log file with more complicated
// rules for flushing the log."
//
// Design:
//   - Every update of every partition appends to one shared log; entries carry a
//     varint partition index before the application record, so one fsync stream
//     serves the whole ensemble.
//   - Each partition checkpoints independently: its checkpoint file records the log
//     offset it is current to ("replay-from"), so restart replays to partition p only
//     the shared-log entries at offsets >= p's replay-from.
//   - A `manifest` file (written with the atomic temp+rename idiom) binds together the
//     log generation and, per partition, the checkpoint version + replay-from offset.
//     The manifest rename is every checkpoint's commit point.
//   - The "more complicated rules for flushing the log": the shared log can be rotated
//     (replaced by an empty generation) only when every partition's replay-from offset
//     has reached the end of the log — i.e. all partitions have checkpointed since the
//     last entry. MaybeRotateLog applies the rule; the slowest-checkpointing partition
//     gates reclamation, which is precisely the complication the paper alludes to.
//
// Concurrency: one SueLock per partition (enquiries and the precondition/apply steps
// are per-partition), plus an internal mutex serializing shared-log appends.
#ifndef SMALLDB_SRC_CORE_SHARED_LOG_H_
#define SMALLDB_SRC_CORE_SHARED_LOG_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/database.h"
#include "src/core/log_writer.h"
#include "src/core/sue_lock.h"
#include "src/storage/vfs.h"

namespace sdb {

struct SharedLogOptions {
  Vfs* vfs = nullptr;
  std::string dir;
  Clock* clock = nullptr;
  LogWriterOptions log_writer;
  std::size_t log_replay_page_size = 512;

  // Rotate the shared log automatically inside Checkpoint() when the rule allows and
  // the log exceeds this size (0 = only rotate explicitly).
  std::uint64_t rotate_log_bytes = 0;

  // Restart replay worker pool shared across all partitions (the unit of
  // parallelism is (partition, key-batch); see src/core/parallel_replay.h).
  // 1 = fully serial replay in shared-log order.
  int recovery_threads = 1;
};

struct SharedLogStats {
  std::uint64_t updates = 0;
  std::uint64_t enquiries = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t log_rotations = 0;
  std::uint64_t replayed_entries = 0;
  std::uint64_t replay_skipped_entries = 0;  // entries older than a partition's offset
};

class SharedLogDatabase {
 public:
  // Opens the ensemble: `apps[i]` is partition i's application. The partition count is
  // fixed at creation and must match on reopen.
  static Result<std::unique_ptr<SharedLogDatabase>> Open(std::vector<Application*> apps,
                                                         SharedLogOptions options);

  ~SharedLogDatabase();
  SharedLogDatabase(const SharedLogDatabase&) = delete;
  SharedLogDatabase& operator=(const SharedLogDatabase&) = delete;

  std::size_t partition_count() const { return partitions_.size(); }

  // The paper's three-step update against partition `p`; the commit point is the
  // shared log's fsync.
  Status Update(std::size_t p, const std::function<Result<Bytes>()>& prepare);

  // Enquiry under partition p's shared lock.
  Status Enquire(std::size_t p, const std::function<Status()>& enquiry);

  // Checkpoints partition p only: other partitions' updates proceed (they take the log
  // append mutex briefly but never p's update lock). Afterwards, applies the rotation
  // rule if rotate_log_bytes is configured.
  Status Checkpoint(std::size_t p);

  // Rotates the shared log if and only if every partition has checkpointed past its
  // end. Returns true if a rotation happened.
  Result<bool> MaybeRotateLog();

  // Bytes in the shared log that precede the slowest partition's replay-from offset —
  // dead weight the next eligible rotation reclaims.
  std::uint64_t reclaimable_log_bytes() const;
  std::uint64_t log_bytes() const;
  std::uint64_t log_generation() const { return log_generation_; }
  SharedLogStats stats() const;

 private:
  struct Partition {
    Application* app = nullptr;
    std::unique_ptr<SueLock> lock;
    std::uint64_t checkpoint_version = 0;
    std::uint64_t replay_from = 0;  // shared-log offset this partition is current to
  };

  struct Manifest;  // defined in the .cc: the pickled on-disk record

  explicit SharedLogDatabase(SharedLogOptions options);

  std::string LogPath(std::uint64_t generation) const;
  std::string CheckpointPath(std::size_t p, std::uint64_t version) const;
  std::string ManifestPath() const;

  Status Recover(std::vector<Application*>& apps);
  Status WriteManifest();
  Result<std::unique_ptr<LogWriter>> OpenLogForAppend(std::uint64_t generation);

  SharedLogOptions options_;
  WallClock wall_clock_;
  Clock* clock_;
  std::vector<Partition> partitions_;

  mutable std::mutex log_mutex_;  // guards log_, log_generation_, replay offsets
  std::unique_ptr<LogWriter> log_;
  std::uint64_t log_generation_ = 1;

  mutable std::mutex stats_mutex_;
  SharedLogStats stats_;
};

}  // namespace sdb

#endif  // SMALLDB_SRC_CORE_SHARED_LOG_H_
