// ShardedDatabase: the engine that composes the paper's two Section 7 sketches.
//
// "It seems likely that many larger databases ... could be handled by considering them
// as multiple separate databases for the purpose of writing checkpoints. In that case,
// we could either use multiple log files or a single log file with more complicated
// rules for flushing the log."
//
// PartitionedDatabase demonstrates the first half (independent engines, per-partition
// logs) and SharedLogDatabase the second (one log, the rotation rule) — each in
// isolation and each with a serial commit path. This engine is the composition at
// full concurrency:
//
//   - N shards, each a complete per-shard unit: application state, SueLock,
//     group-commit pipeline (PR 1's GroupCommitter, unchanged), metrics registry,
//     commit epoch, poison flag. A key router (consistent hashing; shard count fixed
//     at open) assigns every key a home shard, so shard-local operations never touch
//     another shard's lock.
//   - ONE shared physical log. Each shard's batches are framed with a varint shard
//     id and appended through the CrossShardCoalescer (group_commit.h): batch
//     leaders from many shards append concurrently, and a single elected flush
//     leader issues one fsync covering all of them. N shards multiply throughput
//     without multiplying disk syncs — aggregate fsyncs/update stays well below 1.
//   - Each shard checkpoints independently (its checkpoint records the shared-log
//     offset it is current to), CheckpointAll staggers the per-shard snapshot stalls
//     so at most one shard is stalled at an instant, and the shared log rotates only
//     when every shard has checkpointed past its end — the paper's "more complicated
//     rules for flushing the log".
//   - Restart opens shards in parallel on a small thread pool: per-shard checkpoint
//     loads, then one pass over the shared log bucketing entries per shard, then
//     per-shard replay — shards are independent recovery units.
//
// Cross-shard reads: EnquireAll holds every shard's shared lock at once (acquired in
// index order), giving callers a consistent multi-shard snapshot to merge-iterate
// over; ShardedNameServer builds its globally-ordered Enumerate on top of it.
// Cross-shard transactions are out of scope, exactly as multi-step transactions are
// out of scope for the paper.
#ifndef SMALLDB_SRC_CORE_SHARDED_H_
#define SMALLDB_SRC_CORE_SHARDED_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/database.h"
#include "src/core/group_commit.h"
#include "src/core/log_writer.h"
#include "src/core/sue_lock.h"
#include "src/core/version_store.h"
#include "src/obs/metrics.h"
#include "src/storage/vfs.h"

namespace sdb {

// Consistent-hash key router: each shard owns `vnodes_per_shard` pseudo-random
// points on a 64-bit ring; a key routes to the shard owning the first point at or
// after the key's hash. The shard count is fixed at open, so plain modulo would
// work today — the ring exists so a future elastic engine can move vnode spans
// between shards without rehashing every key, and so that related keys spread
// instead of clustering by insertion order. Deterministic across processes (FNV-1a,
// no seeding): the same key routes to the same shard on every open.
class ShardRouter {
 public:
  ShardRouter(std::size_t shards, std::size_t vnodes_per_shard);

  std::size_t shard_count() const { return shards_; }
  std::size_t Route(std::string_view key) const;

  static std::uint64_t HashKey(std::string_view key);  // FNV-1a 64 + fmix64 finalizer

 private:
  std::size_t shards_;
  // Sorted ring points: (hash, shard).
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
};

struct ShardedOptions {
  Vfs* vfs = nullptr;
  std::string dir;
  Clock* clock = nullptr;

  LogWriterOptions log_writer;
  std::size_t log_replay_page_size = 512;

  // Per-shard commit pipelines (always on: the sharded engine IS the group-commit
  // composition). max_batch_records applies per shard.
  GroupCommitOptions group_commit;

  // Rotate the shared log automatically inside Checkpoint() when the rotation rule
  // allows and the log exceeds this size (0 = only rotate explicitly).
  std::uint64_t rotate_log_bytes = 0;

  // Restart worker-pool bound, used twice: checkpoint loads run per-shard on it,
  // and shared-log replay dispatches (shard, key-batch) apply tasks onto ONE pool
  // of this size (src/core/parallel_replay.h) — so within-shard parallelism
  // composes with across-shard parallelism instead of competing for threads, and
  // one hot shard no longer bounds recovery time. 1 = fully sequential — required
  // under the deterministic sim harness, where parallel disk reads would permute
  // SimDisk op ordinals.
  int recovery_threads = 4;

  // Ring points per shard for the consistent-hash router.
  std::size_t vnodes_per_shard = 64;

  // Incremental (delta) checkpoints, per shard: when the shard app supports
  // CaptureDeltaSnapshot, Checkpoint(p) writes p<p>.delta<v> composing over the
  // shard's base checkpoint, and the chain is recorded in the ensemble manifest.
  // Unlike the single-engine database there is no background compactor:
  // compaction runs inline at the end of the shard's Phase B when a threshold
  // crosses (the persist already runs off the stall path, so inline compaction
  // costs no extra stall) — background_compaction is ignored.
  DeltaCheckpointOptions delta_checkpoint;
};

struct ShardedStats {
  std::uint64_t updates = 0;
  std::uint64_t enquiries = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t delta_checkpoints = 0;  // checkpoints written as delta levels
  std::uint64_t compactions = 0;        // chains collapsed back into full bases
  std::uint64_t log_rotations = 0;
  std::uint64_t replayed_entries = 0;
  std::uint64_t replay_skipped_entries = 0;
  std::uint64_t replay_batches = 0;       // (shard, key-batch) tasks last restart
  std::uint64_t replay_threads_used = 0;  // pool width the replay actually used

  // The coalescer's truth, not a per-shard sum (satellite of ISSUE 6: summing
  // per-shard fsync counters would overstate physical syncs under coalescing —
  // though with SyncRecords() accounting the sum now matches this exactly).
  std::uint64_t covering_fsyncs = 0;
  std::uint64_t batches_coalesced = 0;
  std::uint64_t max_batches_per_fsync = 0;

  // Physical fsyncs per acknowledged update: the headline number. « 1 under
  // concurrent writers (one covering fsync serves batches from many shards).
  double fsyncs_per_update() const {
    return updates == 0 ? 0.0
                        : static_cast<double>(covering_fsyncs) / static_cast<double>(updates);
  }
};

class ShardedDatabase {
 public:
  // Opens the ensemble: `apps[p]` is shard p's application (not owned; must outlive
  // the database). The shard count is fixed at creation and must match on reopen.
  static Result<std::unique_ptr<ShardedDatabase>> Open(std::vector<Application*> apps,
                                                       ShardedOptions options);

  ~ShardedDatabase();
  ShardedDatabase(const ShardedDatabase&) = delete;
  ShardedDatabase& operator=(const ShardedDatabase&) = delete;

  std::size_t shard_count() const { return units_.size(); }
  const ShardRouter& router() const { return router_; }
  std::size_t ShardForKey(std::string_view key) const { return router_.Route(key); }

  // The paper's three-step update against shard p, through p's group-commit
  // pipeline; the commit point is a coalescer fsync covering p's batch.
  Status Update(std::size_t p, const std::function<Result<Bytes>()>& prepare);
  Status UpdateKey(std::string_view key, const std::function<Result<Bytes>()>& prepare);

  // Enquiry under shard p's shared lock (never blocked by other shards).
  Status Enquire(std::size_t p, const std::function<Status()>& enquiry);
  Status EnquireKey(std::string_view key, const std::function<Status()>& enquiry);

  // Runs `enquiry` with EVERY shard's shared lock held (acquired in index order):
  // a consistent cross-shard read instant for merge-iteration (Enumerate/Export).
  Status EnquireAll(const std::function<Status()>& enquiry);

  // Checkpoints shard p only. Phase A (the stall): p's pipeline paused + update
  // lock held just long enough to capture a consistent snapshot and record the
  // shared-log offset p is current to. Phase B (no engine lock): serialize, write
  // the checkpoint file, commit via the manifest rename. Other shards' updates
  // proceed throughout. Afterwards applies the rotation rule if rotate_log_bytes
  // is configured.
  Status Checkpoint(std::size_t p);

  // Checkpoints every shard with the stalls staggered: shard p+1's Phase A runs
  // while shard p's Phase B persists in the background, so at most one shard is
  // snapshotting (stalled) at any instant but the disk work still overlaps.
  Status CheckpointAll();

  // Rotates the shared log iff every shard has checkpointed past its end (the
  // flushing rule). Freezes the coalescer for the swap. Returns true on rotation.
  Result<bool> MaybeRotateLog();

  std::uint64_t log_bytes() const;
  std::uint64_t log_generation() const;
  // Bytes below the slowest shard's replay-from offset — reclaimed by rotation.
  std::uint64_t reclaimable_log_bytes() const;

  ShardedStats stats() const;
  GroupCommitStats shard_commit_stats(std::size_t p) const;
  CrossShardCoalescer::Stats coalescer_stats() const;

  // --- observability ---

  // The ensemble registry: roll-up target for per-shard metrics. RollUpMetrics
  // refreshes `shard.<p>.*` gauges plus the aggregated commit.* gauges (notably
  // commit.fsyncs_per_update_ppm: parts-per-million so the « 1 ratio survives the
  // integer gauge). MetricsReportJson = RollUpMetrics + dump.
  obs::Registry& metrics() { return registry_; }
  obs::Registry& shard_metrics(std::size_t p);
  void RollUpMetrics();
  std::string MetricsReportJson();

 private:
  // Frames a shard's batch with its varint shard id and makes it durable through
  // the coalescer. One instance per shard, used only by that shard's (sequential)
  // batch leaders, so the ticket handoff between AppendRecords and SyncRecords
  // needs no synchronization.
  class ShardSink final : public CommitSink {
   public:
    void Init(CrossShardCoalescer* coalescer, std::size_t shard) {
      coalescer_ = coalescer;
      shard_ = shard;
    }

    Status AppendRecords(std::span<const ByteSpan> payloads) override;
    Result<std::uint64_t> SyncRecords() override;
    std::uint64_t log_bytes() const override { return coalescer_->log_bytes(); }

   private:
    CrossShardCoalescer* coalescer_ = nullptr;
    std::size_t shard_ = 0;
    std::uint64_t ticket_ = 0;
    std::vector<Bytes> framed_;      // reused batch scratch
    std::vector<ByteSpan> spans_;
  };

  // One shard: state + lock + pipeline + metrics. Also the pipeline's host (the
  // committer calls back into the shard, not the ensemble — batch apply and
  // poisoning are shard-local).
  struct ShardUnit final : GroupCommitHost {
    Application* app = nullptr;
    SueLock lock;

    obs::Registry registry;
    obs::CommitStageMetrics stage_metrics;
    UpdateCounters counters;
    obs::Counter* enquiries = nullptr;
    obs::Counter* checkpoints = nullptr;
    obs::Counter* delta_checkpoints = nullptr;
    obs::Counter* compaction_runs = nullptr;
    obs::Counter* compaction_bytes = nullptr;

    ShardSink sink;
    std::unique_ptr<GroupCommitter> committer;

    std::atomic<std::uint64_t> commit_epoch{0};
    std::atomic<bool> poisoned{false};
    // Set once at Open: the ensemble's fail-stop flag, checked in BatchBegin so a
    // batch queued before an aborted rotation is refused rather than committed to
    // a log the manifest may no longer name.
    const std::atomic<bool>* ensemble_poisoned = nullptr;

    // Single-flight checkpoint per shard. A cv-guarded flag, not a mutex, because
    // CheckpointAll releases the slot from the background persist thread.
    std::mutex ckpt_mu;
    std::condition_variable ckpt_cv;
    bool ckpt_in_flight = false;
    void AcquireCheckpointSlot();
    void ReleaseCheckpointSlot();

    // Guarded by the ensemble's manifest_mu_ (except during single-threaded Open).
    std::uint64_t checkpoint_version = 0;
    std::uint64_t replay_from = 0;  // shared-log offset this shard is current to
    // The shard's checkpoint chain: p<p>.checkpoint<chain.base> plus
    // p<p>.delta<v> for each v in chain.deltas. Invariant: chain.top() ==
    // checkpoint_version. Byte tallies feed the compaction ratio trigger.
    DeltaChain chain;
    std::uint64_t chain_base_bytes = 0;
    std::uint64_t chain_delta_bytes = 0;

    Result<std::uint64_t> BatchBegin() override;
    Status BatchApply(ByteSpan record) override;
    void BatchPoisoned(const Status& cause) override;
    void BatchCommitted(const UpdateBreakdown& breakdown) override;
  };

  struct Manifest;  // defined in the .cc: the pickled on-disk record

  // Checkpoint Phase A output: what Phase B needs to persist and publish.
  struct ShardRotation {
    std::function<Result<Bytes>()> serialize;
    // Delta capture: when the shard app granted a delta closure in Phase A,
    // Phase B writes p<p>.delta<v> instead of a full checkpoint. Every Phase B
    // failure path before the manifest mutation must AbandonDeltaCapture.
    bool is_delta = false;
    std::function<Result<Application::DeltaSnapshot>()> serialize_delta;
    // The (generation, offset) instant the snapshot is current to. Phase B only
    // raises replay_from if the generation is unchanged — a rotation in between
    // already reset the offset for the fresh log.
    std::uint64_t generation = 0;
    std::uint64_t replay_from = 0;
  };

  ShardedDatabase(std::size_t shards, ShardedOptions options);

  std::string LogPath(std::uint64_t generation) const;
  std::string CheckpointPath(std::size_t p, std::uint64_t version) const;
  std::string DeltaPath(std::size_t p, std::uint64_t version) const;
  std::string ManifestPath() const;

  Status Recover(std::vector<Application*>& apps);
  Status ReplayShardedLog();
  // Runs fn(p) for every shard on up to options_.recovery_threads threads
  // (sequential when 1); returns the first failure by shard index.
  Status ForEachShardParallel(const std::function<Status(std::size_t)>& fn);
  Status WriteManifestLocked();  // caller holds manifest_mu_
  Result<std::unique_ptr<LogWriter>> OpenLogForAppend(std::uint64_t generation);
  Status CheckpointPhaseA(std::size_t p, ShardRotation* rotation);
  Status CheckpointPhaseB(std::size_t p, ShardRotation rotation);
  Status PersistShardDelta(std::size_t p, ShardRotation rotation);
  // True iff shard p's chain crossed a compaction threshold (caller holds
  // manifest_mu_).
  bool CompactionDueLocked(const ShardUnit& unit) const;
  // Collapses shard p's chain into a full base at chain.top(). Called with p's
  // checkpoint slot held; failures leave the chain intact (retried next time).
  Status CompactShardChain(std::size_t p);
  Status CheckPoisoned() const;

  ShardedOptions options_;
  WallClock wall_clock_;
  Clock* clock_;
  ShardRouter router_;

  // Ensemble registry (roll-up target). Declared before the units so per-shard
  // metric pointers never dangle relative to it.
  obs::Registry registry_;

  std::vector<std::unique_ptr<ShardUnit>> units_;

  std::unique_ptr<LogWriter> log_;
  std::unique_ptr<CrossShardCoalescer> coalescer_;

  // Guards the manifest (generation, per-shard checkpoint_version/replay_from) and
  // its on-disk commit. Lock order: manifest_mu_ THEN coalescer Freeze — never the
  // reverse (AwaitDurable holds the coalescer mutex and never takes manifest_mu_).
  mutable std::mutex manifest_mu_;
  std::uint64_t log_generation_ = 1;

  // Serializes CheckpointAll runs (individual Checkpoint(p) calls only contend on
  // their shard's checkpoint_mu).
  std::mutex checkpoint_all_mu_;

  // A failed rotation can leave the manifest naming a log the writer is not on;
  // the ensemble fail-stops rather than risk committing updates recovery replays
  // from the wrong file.
  std::atomic<bool> poisoned_{false};

  mutable std::mutex stats_mutex_;
  ShardedStats stats_;
};

}  // namespace sdb

#endif  // SMALLDB_SRC_CORE_SHARDED_H_
