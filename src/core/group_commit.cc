#include "src/core/group_commit.h"

namespace sdb {

GroupCommitter::GroupCommitter(SueLock& lock, Clock& clock, GroupCommitHost& host,
                               LogWriter* log, UpdateCounters* counters,
                               GroupCommitOptions options)
    : lock_(lock),
      clock_(clock),
      host_(host),
      counters_(counters),
      options_(options),
      log_(log) {}

Status GroupCommitter::Submit(std::span<const PrepareFn> prepares) {
  Request req(prepares);
  std::unique_lock<std::mutex> lock(mu_);
  queue_.push_back(&req);
  for (;;) {
    if (req.done) {
      if (req.rode_along) {
        ++stats_.sync_waits;
      }
      return req.status;
    }
    if (!batch_in_progress_ && !paused_) {
      LeadBatch(lock, req);
      continue;  // re-check done: the led batch normally contained our request
    }
    cv_.wait(lock);
  }
}

void GroupCommitter::LeadBatch(std::unique_lock<std::mutex>& lock, Request& self) {
  std::vector<Request*> batch;
  std::size_t records = 0;
  while (!queue_.empty()) {
    Request* next = queue_.front();
    std::size_t next_records = next->prepares.size();
    if (!batch.empty() && options_.max_batch_records != 0 &&
        records + next_records > options_.max_batch_records) {
      break;  // the tail of the queue rides the next batch
    }
    batch.push_back(next);
    records += next_records;
    queue_.pop_front();
  }
  batch_in_progress_ = true;
  lock.unlock();

  RunBatch(batch);

  lock.lock();
  batch_in_progress_ = false;
  for (Request* request : batch) {
    request->rode_along = request != &self;
    request->done = true;
  }
  cv_.notify_all();
}

void GroupCommitter::RunBatch(const std::vector<Request*>& batch) {
  UpdateBreakdown breakdown;

  // Phase 1: preconditions + record gathering, under the update lock. Enquiries run
  // concurrently; other updaters queue behind us in the pipeline, not on this lock.
  lock_.AcquireUpdate();
  Stopwatch prepare_watch(clock_);
  Status ready = host_.BatchBegin();
  std::vector<ByteSpan> payloads;
  std::size_t write_set = 0;
  for (Request* request : batch) {
    if (!ready.ok()) {
      request->status = ready;
      continue;
    }
    request->records.reserve(request->prepares.size());
    Status failed = OkStatus();
    for (const PrepareFn& prepare : request->prepares) {
      Result<Bytes> record = prepare();
      if (!record.ok()) {
        failed = record.status();
        break;
      }
      request->records.push_back(std::move(*record));
    }
    if (!failed.ok()) {
      // All-or-nothing per request (the manual UpdateBatch contract): none of this
      // request's records reach the log. Other requests in the batch are unaffected.
      request->status = failed;
      request->records.clear();
      counters_->precondition_failures.fetch_add(1, std::memory_order_relaxed);
    } else {
      request->prepared_ok = true;
      ++write_set;
    }
  }
  breakdown.prepare_micros = prepare_watch.ElapsedMicros();
  lock_.ReleaseUpdate();
  if (write_set == 0) {
    return;  // nothing to commit; every caller already has its error
  }

  for (Request* request : batch) {
    if (request->prepared_ok) {
      for (const Bytes& record : request->records) {
        payloads.push_back(AsSpan(record));
      }
    }
  }

  // Phase 2: the commit point. One contiguous append, one padding, one fsync — and no
  // lock of any mode held, so enquiries and next-batch arrivals proceed throughout.
  Stopwatch log_watch(clock_);
  Status committed = log_->AppendBatch(payloads);
  if (!committed.ok()) {
    committed = committed.WithContext("appending log entry");
  } else {
    committed = log_->Commit();
    if (!committed.ok()) {
      committed = committed.WithContext("committing log entry");
    }
  }
  breakdown.log_micros = log_watch.ElapsedMicros();
  counters_->log_bytes.store(log_->size(), std::memory_order_relaxed);
  if (!committed.ok()) {
    for (Request* request : batch) {
      if (request->prepared_ok) {
        request->status = committed;
        counters_->commit_failures.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return;
  }

  // Phase 3: apply in log order, in exclusive mode — the only step that excludes
  // enquiries, and it is purely an in-memory modification.
  lock_.AcquireUpdate();
  lock_.UpgradeToExclusive();
  Stopwatch apply_watch(clock_);
  Status poisoned = OkStatus();
  for (Request* request : batch) {
    if (!request->prepared_ok) {
      continue;
    }
    if (!poisoned.ok()) {
      // A durable record could not be applied: every later record in the batch is
      // also durable but must not be applied out of order. Fail them all.
      request->status = InternalError(
          "database poisoned by an earlier apply failure in this commit batch");
      continue;
    }
    for (const Bytes& record : request->records) {
      Status applied = host_.BatchApply(AsSpan(record));
      if (!applied.ok()) {
        poisoned = applied;
        host_.BatchPoisoned(applied);
        request->status = applied.WithContext("applying committed update (database poisoned)");
        break;
      }
    }
    if (poisoned.ok()) {
      request->status = OkStatus();
      counters_->updates.fetch_add(request->records.size(), std::memory_order_relaxed);
      counters_->log_entries_since_checkpoint.fetch_add(request->records.size(),
                                                        std::memory_order_relaxed);
    }
  }
  breakdown.apply_micros = apply_watch.ElapsedMicros();
  lock_.DowngradeToUpdate();
  lock_.ReleaseUpdate();

  breakdown.total_micros =
      breakdown.prepare_micros + breakdown.log_micros + breakdown.apply_micros;
  host_.BatchCommitted(breakdown);

  std::lock_guard<std::mutex> stats_lock(mu_);
  ++stats_.batches;
  ++stats_.syncs;
  stats_.records_committed += payloads.size();
  stats_.max_records_per_sync = std::max<std::uint64_t>(stats_.max_records_per_sync,
                                                        payloads.size());
  std::size_t bucket = payloads.size() <= 2   ? payloads.size() - 1
                       : payloads.size() <= 4 ? 2
                       : payloads.size() <= 8 ? 3
                       : payloads.size() <= 16 ? 4
                                               : 5;
  ++stats_.records_per_sync_hist[bucket];
}

void GroupCommitter::Pause() {
  std::unique_lock<std::mutex> lock(mu_);
  paused_ = true;
  cv_.wait(lock, [this] { return !batch_in_progress_; });
}

void GroupCommitter::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void GroupCommitter::set_log(LogWriter* log) {
  std::lock_guard<std::mutex> lock(mu_);
  log_ = log;
}

GroupCommitStats GroupCommitter::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace sdb
