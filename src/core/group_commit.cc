#include "src/core/group_commit.h"

#include <algorithm>

namespace sdb {

GroupCommitter::GroupCommitter(SueLock& lock, Clock& clock, GroupCommitHost& host,
                               CommitSink* sink, UpdateCounters* counters,
                               obs::CommitStageMetrics stage_metrics,
                               GroupCommitOptions options)
    : lock_(lock),
      clock_(clock),
      host_(host),
      counters_(counters),
      stage_metrics_(stage_metrics),
      options_(options),
      sink_(sink) {}

Status GroupCommitter::Submit(std::span<const PrepareFn> prepares) {
  Request req(prepares);
  const bool timing = obs::Enabled();
  if (timing) {
    req.enqueued_micros = clock_.NowMicros();
  }
  std::unique_lock<std::mutex> lock(mu_);
  queue_.push_back(&req);
  for (;;) {
    if (req.done) {
      if (req.rode_along) {
        ++stats_.sync_waits;
        // Ack stage: the gap between the leader finishing the batch and this rider
        // thread observing completion (scheduler + condvar latency).
        if (timing && req.completed_micros != 0) {
          stage_metrics_.stage[static_cast<int>(obs::CommitStage::kAck)]->Record(
              clock_.NowMicros() - req.completed_micros);
        }
      }
      return req.status;
    }
    if (!batch_in_progress_ && !paused_) {
      LeadBatch(lock, req);
      continue;  // re-check done: the led batch normally contained our request
    }
    cv_.wait(lock);
  }
}

std::vector<Status> GroupCommitter::SubmitMany(std::span<const PrepareFn> prepares) {
  std::vector<Status> out(prepares.size());
  if (prepares.empty()) {
    return out;
  }
  // One Request per prepare: each is acknowledged independently (a precondition
  // failure drops only its own update from the batch). A deque keeps the addresses
  // stable while they sit in queue_.
  std::deque<Request> requests;
  const bool timing = obs::Enabled();
  Micros enqueued = timing ? clock_.NowMicros() : 0;
  for (std::size_t i = 0; i < prepares.size(); ++i) {
    requests.emplace_back(std::span<const PrepareFn>(&prepares[i], 1));
    requests.back().enqueued_micros = enqueued;
  }

  std::unique_lock<std::mutex> lock(mu_);
  for (Request& request : requests) {
    queue_.push_back(&request);
  }
  for (;;) {
    Request* undone = nullptr;
    for (Request& request : requests) {
      if (!request.done) {
        undone = &request;
        break;
      }
    }
    if (undone == nullptr) {
      break;
    }
    if (!batch_in_progress_ && !paused_) {
      LeadBatch(lock, *undone);
      continue;
    }
    cv_.wait(lock);
  }
  Micros now = timing ? clock_.NowMicros() : 0;
  obs::Histogram* ack_hist =
      stage_metrics_.stage[static_cast<int>(obs::CommitStage::kAck)];
  for (std::size_t i = 0; i < prepares.size(); ++i) {
    Request& request = requests[i];
    out[i] = request.status;
    if (request.rode_along) {
      ++stats_.sync_waits;
      if (timing && request.completed_micros != 0) {
        ack_hist->Record(now - request.completed_micros);
      }
    }
  }
  return out;
}

void GroupCommitter::LeadBatch(std::unique_lock<std::mutex>& lock, Request& self) {
  std::vector<Request*> batch;
  std::size_t records = 0;
  while (!queue_.empty()) {
    Request* next = queue_.front();
    std::size_t next_records = next->prepares.size();
    if (!batch.empty() && options_.max_batch_records != 0 &&
        records + next_records > options_.max_batch_records) {
      break;  // the tail of the queue rides the next batch
    }
    batch.push_back(next);
    records += next_records;
    queue_.pop_front();
  }
  batch_in_progress_ = true;

  // Queue-wait stage: how long each sealed request sat in the queue before a leader
  // picked it up. The batch's trace event carries the worst (oldest) wait.
  Micros queue_wait_max = 0;
  if (obs::Enabled()) {
    Micros now = clock_.NowMicros();
    obs::Histogram* hist =
        stage_metrics_.stage[static_cast<int>(obs::CommitStage::kQueueWait)];
    for (Request* request : batch) {
      Micros wait = now - request->enqueued_micros;
      hist->Record(wait);
      queue_wait_max = std::max(queue_wait_max, wait);
    }
  }
  lock.unlock();

  RunBatch(batch, queue_wait_max);

  lock.lock();
  batch_in_progress_ = false;
  Micros completed = obs::Enabled() ? clock_.NowMicros() : 0;
  for (Request* request : batch) {
    request->rode_along = request != &self;
    request->completed_micros = completed;
    request->done = true;
  }
  cv_.notify_all();
}

void GroupCommitter::RunBatch(const std::vector<Request*>& batch, Micros queue_wait_max) {
  UpdateBreakdown breakdown;
  const bool timing = obs::Enabled();

  // Phase 1: preconditions + record gathering, under the update lock. Enquiries run
  // concurrently; other updaters queue behind us in the pipeline, not on this lock.
  // Stage timestamps are chained (each boundary is read once) to keep the enabled
  // path at ~8 clock reads per batch.
  Micros t_start = timing ? clock_.NowMicros() : 0;
  lock_.AcquireUpdate();
  Micros t_locked = clock_.NowMicros();
  Result<std::uint64_t> ready = host_.BatchBegin();
  std::uint64_t epoch = ready.ok() ? *ready : 0;
  std::vector<ByteSpan> payloads;
  std::size_t write_set = 0;
  for (Request* request : batch) {
    if (!ready.ok()) {
      request->status = ready.status();
      continue;
    }
    request->records.reserve(request->prepares.size());
    Status failed = OkStatus();
    for (const PrepareFn& prepare : request->prepares) {
      Result<Bytes> record = prepare();
      if (!record.ok()) {
        failed = record.status();
        break;
      }
      request->records.push_back(std::move(*record));
    }
    if (!failed.ok()) {
      // All-or-nothing per request (the manual UpdateBatch contract): none of this
      // request's records reach the log. Other requests in the batch are unaffected.
      request->status = failed;
      request->records.clear();
      counters_->precondition_failures->Increment();
    } else {
      request->prepared_ok = true;
      ++write_set;
    }
  }
  Micros t_prepared = clock_.NowMicros();
  breakdown.prepare_micros = t_prepared - t_locked;
  lock_.ReleaseUpdate();
  if (write_set == 0) {
    return;  // nothing to commit; every caller already has its error
  }

  for (Request* request : batch) {
    if (request->prepared_ok) {
      for (const Bytes& record : request->records) {
        payloads.push_back(AsSpan(record));
      }
    }
  }

  // Phase 2: the commit point. One contiguous append, then the sink's durability
  // step (a private fsync, or a wait on a covering cross-shard fsync) — and no lock
  // of any mode held, so enquiries and next-batch arrivals proceed throughout.
  Micros t_log_start = clock_.NowMicros();
  Status committed = sink_->AppendRecords(payloads);
  Micros t_appended = timing ? clock_.NowMicros() : t_log_start;
  std::uint64_t physical_syncs = 0;
  if (!committed.ok()) {
    committed = committed.WithContext("appending log entry");
  } else {
    Result<std::uint64_t> synced = sink_->SyncRecords();
    if (synced.ok()) {
      physical_syncs = *synced;
    } else {
      committed = synced.status().WithContext("committing log entry");
    }
  }
  Micros t_synced = clock_.NowMicros();
  breakdown.log_micros = t_synced - t_log_start;
  counters_->log_bytes->Set(static_cast<std::int64_t>(sink_->log_bytes()));
  if (!committed.ok()) {
    for (Request* request : batch) {
      if (request->prepared_ok) {
        request->status = committed;
        counters_->commit_failures->Increment();
      }
    }
    return;
  }

  // Phase 3: apply in log order, in exclusive mode — the only step that excludes
  // enquiries, and it is purely an in-memory modification.
  lock_.AcquireUpdate();
  lock_.UpgradeToExclusive();
  Micros t_exclusive = clock_.NowMicros();
  Status poisoned = OkStatus();
  for (Request* request : batch) {
    if (!request->prepared_ok) {
      continue;
    }
    if (!poisoned.ok()) {
      // A durable record could not be applied: every later record in the batch is
      // also durable but must not be applied out of order. Fail them all.
      request->status = InternalError(
          "database poisoned by an earlier apply failure in this commit batch");
      continue;
    }
    for (const Bytes& record : request->records) {
      Status applied = host_.BatchApply(AsSpan(record));
      if (!applied.ok()) {
        poisoned = applied;
        host_.BatchPoisoned(applied);
        request->status = applied.WithContext("applying committed update (database poisoned)");
        break;
      }
    }
    if (poisoned.ok()) {
      request->status = OkStatus();
      counters_->updates->Add(request->records.size());
      counters_->log_entries_since_checkpoint->Add(
          static_cast<std::int64_t>(request->records.size()));
    }
  }
  Micros t_applied = clock_.NowMicros();
  breakdown.apply_micros = t_applied - t_exclusive;
  lock_.DowngradeToUpdate();
  lock_.ReleaseUpdate();

  breakdown.total_micros =
      breakdown.prepare_micros + breakdown.log_micros + breakdown.apply_micros;
  host_.BatchCommitted(breakdown);

  if (timing) {
    obs::CommitTrace trace;
    trace.records = payloads.size();
    trace.start_micros = t_start;
    trace.set_stage(obs::CommitStage::kLockWait, t_locked - t_start);
    trace.set_stage(obs::CommitStage::kQueueWait, queue_wait_max);
    trace.set_stage(obs::CommitStage::kPrepare, t_prepared - t_locked);
    trace.set_stage(obs::CommitStage::kAppend, t_appended - t_log_start);
    trace.set_stage(obs::CommitStage::kFsync, t_synced - t_appended);
    trace.set_stage(obs::CommitStage::kExclusiveWait, t_exclusive - t_synced);
    trace.set_stage(obs::CommitStage::kApply, t_applied - t_exclusive);
    trace.total_micros = t_applied - t_start;
    trace.epoch = epoch;
    stage_metrics_.RecordBatch(trace);
  }
  stage_metrics_.fsyncs->Add(physical_syncs);

  std::lock_guard<std::mutex> stats_lock(mu_);
  ++stats_.batches;
  stats_.syncs += physical_syncs;
  stats_.records_committed += payloads.size();
  stats_.max_records_per_sync = std::max<std::uint64_t>(stats_.max_records_per_sync,
                                                        payloads.size());
  std::size_t bucket = payloads.size() <= 2   ? payloads.size() - 1
                       : payloads.size() <= 4 ? 2
                       : payloads.size() <= 8 ? 3
                       : payloads.size() <= 16 ? 4
                                               : 5;
  ++stats_.records_per_sync_hist[bucket];
}

void GroupCommitter::Pause() {
  std::unique_lock<std::mutex> lock(mu_);
  paused_ = true;
  cv_.wait(lock, [this] { return !batch_in_progress_; });
}

void GroupCommitter::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

GroupCommitStats GroupCommitter::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

// --- CrossShardCoalescer ---

Result<std::uint64_t> CrossShardCoalescer::AppendBatch(
    std::span<const ByteSpan> payloads) {
  arriving_.fetch_add(1, std::memory_order_acq_rel);
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return !frozen_ || poisoned_; });
  auto leave_doorway = [this] {
    arriving_.fetch_sub(1, std::memory_order_acq_rel);
    cv_.notify_all();  // a deferring flush leader may be waiting on the doorway
  };
  if (poisoned_) {
    leave_doorway();
    return InternalError("cross-shard flush pipeline fail-stopped by an aborted log rotation");
  }
  Status appended = log_->AppendBatch(payloads);
  leave_doorway();
  SDB_RETURN_IF_ERROR(appended);
  ++stats_.batches_appended;
  return ++appended_seq_;
}

Result<std::uint64_t> CrossShardCoalescer::AwaitDurable(std::uint64_t ticket) {
  std::unique_lock<std::mutex> lock(mu_);
  bool window_open = coalesce_window_.count() > 0;
  for (;;) {
    if (durable_seq_ >= ticket) {
      // An fsync led on behalf of a later-arriving batch covered our append while
      // we queued on the mutex: the whole point of the coalescer.
      ++stats_.batches_coalesced;
      return std::uint64_t{0};
    }
    if (poisoned_) {
      return InternalError(
          "cross-shard flush pipeline fail-stopped by an aborted log rotation");
    }
    if (!frozen_) {
      if (arriving_.load(std::memory_order_acquire) > 0) {
        // Batches from other shards are mid-append: defer the fsync (releasing mu_
        // so they can get through) and let one covering sync commit all of us.
        // Bounded wait: every doorway occupant appends (or bails) and notifies, and
        // whoever arrives after we finally lead simply rides the next sync.
        cv_.wait(lock);
        continue;
      }
      if (window_open) {
        // Batch window: linger briefly for pipelines still finishing their apply
        // phase. Re-arms while appends keep landing; the first quiet interval
        // closes it for good, so under sustained load the linger is bounded by the
        // number of concurrent pipelines and a lone committer pays one window.
        std::uint64_t before = appended_seq_;
        cv_.wait_for(lock, coalesce_window_);
        window_open = appended_seq_ != before ||
                      arriving_.load(std::memory_order_acquire) > 0;
        continue;  // re-check: a covering fsync may have landed while we lingered
      }
      // Lead: one fsync covering every batch appended so far — ours and, typically,
      // batches from other shards. The fsync runs with mu_ held, so appends and
      // competing leads queue on the mutex behind it and the next leader's fsync
      // covers them all at once. A failed fsync does not advance durable_seq_, so
      // every batch always gets a definitive fsync attempt covering it: either a
      // covering success (OK) or its own led failure (possibly-durable verdict —
      // the same outcome a failed private fsync yields).
      std::uint64_t cover = appended_seq_;
      std::uint64_t covered_batches = cover - durable_seq_;
      Status synced = log_->Commit();
      if (!synced.ok()) {
        ++stats_.failed_fsyncs;
        return synced;
      }
      durable_seq_ = std::max(durable_seq_, cover);
      ++stats_.covering_fsyncs;
      stats_.max_batches_per_fsync =
          std::max(stats_.max_batches_per_fsync, covered_batches);
      return std::uint64_t{1};
    }
    cv_.wait(lock);
  }
}

void CrossShardCoalescer::Freeze() {
  std::lock_guard<std::mutex> lock(mu_);
  frozen_ = true;  // acquiring mu_ already waited out any in-flight fsync
}

void CrossShardCoalescer::Unfreeze() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    frozen_ = false;
  }
  cv_.notify_all();
}

void CrossShardCoalescer::Poison() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    poisoned_ = true;
  }
  cv_.notify_all();
}

void CrossShardCoalescer::set_log(LogWriter* log) {
  std::lock_guard<std::mutex> lock(mu_);
  log_ = log;
}

std::uint64_t CrossShardCoalescer::log_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_->size();
}

CrossShardCoalescer::Stats CrossShardCoalescer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace sdb
