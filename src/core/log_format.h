// The redo-log entry format.
//
// Each entry is framed as:
//   u16 sync marker (0xDB5A) | u32 masked CRC32C of (length||payload) |
//   varint payload length | payload
//
// The paper detects a partially written trailing entry "by including the log entry's
// length on the first page of the entry, combined with the known property of our disk
// hardware that a partially written page will report an error when it is read". Our
// framing keeps the length prefix and adds a CRC, which additionally catches torn
// writes that happen to read back (stale sectors) and lets hard-error recovery resync
// at the next marker and skip just the damaged entry (Section 4's suggestion).
#ifndef SMALLDB_SRC_CORE_LOG_FORMAT_H_
#define SMALLDB_SRC_CORE_LOG_FORMAT_H_

#include <cstdint>

#include "src/common/bytes.h"
#include "src/common/result.h"

namespace sdb {

inline constexpr std::uint16_t kLogSyncMarker = 0xDB5A;

// Maximum payload we will believe from a length prefix, guarding against interpreting
// garbage as a multi-gigabyte entry. Far above any real update record.
inline constexpr std::uint64_t kMaxLogEntryPayload = 64ull << 20;

// Appends the framing + payload to `out`.
void EncodeLogEntry(ByteSpan payload, ByteWriter& out);

// Size in bytes that EncodeLogEntry will emit for a payload of `payload_size` bytes.
std::size_t EncodedLogEntrySize(std::size_t payload_size);

// Outcome of decoding one entry from a position in the log.
enum class LogDecodeOutcome : std::uint8_t {
  kEntry,       // a complete, CRC-valid entry was decoded
  kCleanEnd,    // exactly at end-of-buffer: log ends cleanly
  kPartialTail, // framing started but the buffer ended: a torn final entry
  kCorrupt,     // bad marker or CRC mismatch: damaged entry (hard error / garbage)
};

struct LogDecodeResult {
  LogDecodeOutcome outcome = LogDecodeOutcome::kCleanEnd;
  ByteSpan payload;             // valid iff outcome == kEntry
  std::size_t next_offset = 0;  // position after the consumed bytes (kEntry only)
};

// Decodes the entry starting at `offset` in `log`. Never fails hard: every anomaly is
// reported through the outcome so recovery can decide what to do.
LogDecodeResult DecodeLogEntry(ByteSpan log, std::size_t offset);

// Scans forward from `offset` for the next position whose bytes decode as a valid
// entry. Returns the offset, or the log size if none. Used by skip-damaged-entry
// recovery after a hard error.
std::size_t ResyncLog(ByteSpan log, std::size_t offset);

}  // namespace sdb

#endif  // SMALLDB_SRC_CORE_LOG_FORMAT_H_
