// PartitionedDatabase: the paper's Section 7 suggestion for larger databases —
// "considering them as multiple separate databases for the purpose of writing
// checkpoints", with per-partition logs.
//
// Each partition is an independent Database (own directory, checkpoint and log);
// checkpointing one partition stalls only that partition's updates, and restart reads
// k small checkpoints instead of one large one. Cross-partition transactions are out
// of scope, exactly as multi-step transactions are out of scope for the paper.
#ifndef SMALLDB_SRC_CORE_PARTITIONED_H_
#define SMALLDB_SRC_CORE_PARTITIONED_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/database.h"

namespace sdb {

class PartitionedDatabase {
 public:
  struct PartitionSpec {
    Application* app = nullptr;  // not owned; must outlive the database
    std::string dir;
  };

  // Opens every partition; fails if any fails. `base_options.dir` is ignored (each
  // partition carries its own); everything else applies to all partitions.
  static Result<std::unique_ptr<PartitionedDatabase>> Open(std::vector<PartitionSpec> partitions,
                                                           DatabaseOptions base_options);

  std::size_t partition_count() const { return databases_.size(); }
  Database& partition(std::size_t index) { return *databases_[index]; }

  // Routes by index; callers hash keys to partitions however suits their data.
  Status Enquire(std::size_t partition, const std::function<Status()>& enquiry);
  Status Update(std::size_t partition, const std::function<Result<Bytes>()>& prepare);

  // Checkpoints all partitions, one at a time, so at most one partition's updates are
  // stalled at any moment (the availability benefit the paper's suggestion is after).
  Status CheckpointAll();

  // Aggregate statistics over all partitions.
  struct AggregateStats {
    std::uint64_t updates = 0;
    std::uint64_t enquiries = 0;
    std::uint64_t checkpoints = 0;
    std::uint64_t log_bytes = 0;

    // Physical fsyncs, summed from each partition's GroupCommitStats.syncs — the
    // pipeline's own count of syncs it actually issued. Partitions here own private
    // logs, so the sum is exact; under a shared-log coalescer the same field still
    // sums truthfully because covered batches report 0 (see GroupCommitStats::syncs).
    std::uint64_t fsyncs = 0;

    // Physical fsyncs per acknowledged update. 1.0 for serial writers on private
    // logs; below 1 only when batching or coalescing shares a sync.
    double fsyncs_per_update() const {
      return updates == 0 ? 0.0
                          : static_cast<double>(fsyncs) / static_cast<double>(updates);
    }
  };
  AggregateStats aggregate_stats() const;

 private:
  explicit PartitionedDatabase(std::vector<std::unique_ptr<Database>> databases)
      : databases_(std::move(databases)) {}

  std::vector<std::unique_ptr<Database>> databases_;
};

}  // namespace sdb

#endif  // SMALLDB_SRC_CORE_PARTITIONED_H_
