#include "src/core/log_writer.h"

#include "src/core/log_format.h"

namespace sdb {

Status LogWriter::AppendBatch(std::span<const ByteSpan> payloads) {
  scratch_.clear();
  ByteWriter framed(std::move(scratch_));
  for (ByteSpan payload : payloads) {
    EncodeLogEntry(payload, framed);
  }
  scratch_ = std::move(framed).Take();
  SDB_RETURN_IF_ERROR(file_->Append(AsSpan(scratch_)));
  size_.fetch_add(scratch_.size(), std::memory_order_relaxed);
  entries_appended_.fetch_add(payloads.size(), std::memory_order_relaxed);
  bytes_appended_.fetch_add(scratch_.size(), std::memory_order_relaxed);
  return OkStatus();
}

Status LogWriter::PadToPageBoundary() {
  if (!options_.pad_to_page_boundary) {
    return OkStatus();
  }
  std::size_t remainder = static_cast<std::size_t>(size() % options_.page_size);
  if (remainder == 0) {
    return OkStatus();
  }
  std::size_t pad = options_.page_size - remainder;
  if (padding_.size() < pad) {
    padding_.assign(options_.page_size, 0);
  }
  SDB_RETURN_IF_ERROR(file_->Append(ByteSpan(padding_.data(), pad)));
  size_.fetch_add(pad, std::memory_order_relaxed);
  padding_bytes_.fetch_add(pad, std::memory_order_relaxed);
  return OkStatus();
}

Status LogWriter::Commit() {
  SDB_RETURN_IF_ERROR(PadToPageBoundary());
  SDB_RETURN_IF_ERROR(file_->Sync());
  commits_.fetch_add(1, std::memory_order_relaxed);
  return OkStatus();
}

}  // namespace sdb
