#include "src/core/log_writer.h"

#include "src/core/log_format.h"

namespace sdb {

Status LogWriter::Append(ByteSpan payload) {
  ByteWriter framed;
  EncodeLogEntry(payload, framed);
  SDB_RETURN_IF_ERROR(file_->Append(AsSpan(framed.buffer())));
  size_ += framed.size();
  ++stats_.entries_appended;
  stats_.bytes_appended += framed.size();
  return OkStatus();
}

Status LogWriter::PadToPageBoundary() {
  if (!options_.pad_to_page_boundary) {
    return OkStatus();
  }
  std::size_t remainder = static_cast<std::size_t>(size_ % options_.page_size);
  if (remainder == 0) {
    return OkStatus();
  }
  std::size_t pad = options_.page_size - remainder;
  Bytes zeros(pad, 0);
  SDB_RETURN_IF_ERROR(file_->Append(AsSpan(zeros)));
  size_ += pad;
  stats_.padding_bytes += pad;
  return OkStatus();
}

Status LogWriter::Commit() {
  SDB_RETURN_IF_ERROR(PadToPageBoundary());
  SDB_RETURN_IF_ERROR(file_->Sync());
  ++stats_.commits;
  return OkStatus();
}

}  // namespace sdb
