// Offline backup and restore of a database directory.
//
// The paper's Section 2 baselines depend on backups ("recovery from hard errors
// depends entirely on keeping backup copies"); this design needs them only as
// belt-and-braces (Section 4 offers cheaper options), but operators want them anyway.
// A backup captures one consistent generation: the current checkpoint, the log as of
// the copy, and a version file naming them. Restore materializes a fresh directory
// that Database::Open recovers normally.
//
// Safety: run against a quiescent database (closed, or no checkpoint concurrently).
// The copy reads `version` first and the generation's files after, so a concurrent
// *update* merely truncates the backup's log at a clean entry boundary (replay
// discards any torn tail); a concurrent *checkpoint switch* can make the named
// generation disappear mid-copy, which fails the backup cleanly.
#ifndef SMALLDB_SRC_CORE_BACKUP_H_
#define SMALLDB_SRC_CORE_BACKUP_H_

#include <cstdint>
#include <string>

#include "src/common/result.h"
#include "src/storage/vfs.h"

namespace sdb {

struct BackupInfo {
  std::uint64_t version = 0;
  std::uint64_t checkpoint_bytes = 0;
  std::uint64_t log_bytes = 0;
};

// Copies the current generation of `src_dir` into `dst_dir` (created; must not already
// contain a database). Source and destination may live on different Vfs instances
// (e.g. SimFs -> PosixFs for exporting a simulation, or a second disk for the paper's
// "preferably on a separate disk with a separate controller").
Result<BackupInfo> BackupDatabaseDir(Vfs& src_vfs, const std::string& src_dir,
                                     Vfs& dst_vfs, const std::string& dst_dir);

// Restores a backup into `dst_dir` (created; must not already contain a database).
// The result is a normal database directory.
Result<BackupInfo> RestoreDatabaseDir(Vfs& src_vfs, const std::string& src_dir,
                                      Vfs& dst_vfs, const std::string& dst_dir);

// Refreshes an existing backup cheaply. If the destination already holds the source's
// current generation, only the log is re-copied (the incremental case: log appends are
// all that changed since the last backup). If the source has checkpointed past the
// backup's generation, the old backup contents are replaced by a full copy.
// `incremental` in the result says which happened.
struct IncrementalBackupInfo {
  BackupInfo info;
  bool incremental = false;
};
Result<IncrementalBackupInfo> IncrementalBackupDatabaseDir(Vfs& src_vfs,
                                                           const std::string& src_dir,
                                                           Vfs& dst_vfs,
                                                           const std::string& dst_dir);

}  // namespace sdb

#endif  // SMALLDB_SRC_CORE_BACKUP_H_
