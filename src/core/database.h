// Database: the paper's design in one engine.
//
// "At all times the database is represented as an ordinary data structure in virtual
// memory. Its counterpart on disk has two components: a checkpoint of some previous
// (consistent) state of the entire database, and a log recording each subsequent
// update." (Section 3)
//
//   - A read access is purely a lookup in the virtual memory structure (Enquire).
//   - An update is made in three steps: verify preconditions against the in-memory
//     state, record the update's parameters as a log entry on disk (the commit point),
//     then apply the update to the in-memory state (Update).
//   - From time to time the entire state is checkpointed and the log reset
//     (Checkpoint; also automatic via CheckpointPolicy).
//   - Restart = load checkpoint, replay log (Open).
//
// Concurrent updates are coalesced by the group-commit pipeline (GroupCommitter):
// N simultaneous Update() callers share one log disk write and one fsync, and the
// fsync happens with no lock held — enquiries are never excluded during disk
// transfers (Section 3's rule), and updaters queue in the pipeline instead of on
// the update lock.
//
// The engine is application-agnostic: the Application interface supplies state
// (de)serialization and update application; the engine owns locking, logging,
// checkpointing and recovery.
#ifndef SMALLDB_SRC_CORE_DATABASE_H_
#define SMALLDB_SRC_CORE_DATABASE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/common/cost_model.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/core/group_commit.h"
#include "src/core/log_reader.h"
#include "src/core/log_writer.h"
#include "src/core/sue_lock.h"
#include "src/core/version_store.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/storage/vfs.h"

namespace sdb {

// What the application supplies. All calls are made with appropriate engine locking:
// SerializeState under at least update mode (state cannot change underneath it),
// ApplyUpdate under exclusive mode (or during single-threaded recovery), the rest
// during Open only.
class Application {
 public:
  virtual ~Application() = default;

  // Resets the in-memory state to the initial (empty) database.
  virtual Status ResetState() = 0;

  // Converts the entire in-memory state to checkpoint bytes (PickleWrite of the root).
  virtual Result<Bytes> SerializeState() = 0;

  // Replaces the in-memory state from checkpoint bytes (PickleRead).
  virtual Status DeserializeState(ByteSpan data) = 0;

  // Applies one logged update record to the in-memory state. Called both for live
  // updates (after their log entry committed) and during restart replay. Must be
  // deterministic and must succeed for any record that passed its precondition check;
  // a failure here poisons the database (see Database::Update).
  virtual Status ApplyUpdate(ByteSpan record) = 0;

  // --- parallel replay (optional; see src/core/parallel_replay.h) ---
  //
  // A REDO-only log admits key-partitioned parallel replay: entries touching
  // different keys commute, so restart can apply key-disjoint batches on multiple
  // cores and still land on the exact serial-replay state. An application opts in
  // by overriding the three hooks below; the defaults keep replay fully serial.

  // A private apply context for one key-batch. Workers call Apply concurrently on
  // DIFFERENT contexts (never the live state); each context sees its batch's
  // records in log order. Implementations accumulate effects locally — typically a
  // key -> last-effect map — for MergeReplayBatch to fold in later.
  class ReplayBatch {
   public:
    virtual ~ReplayBatch() = default;
    virtual Status Apply(ByteSpan record) = 0;
  };

  // Extracts the logged update's target key into *key. Returning false declares
  // the record's footprint unknown; the replayer then applies this application's
  // whole stream in log order (correct for any record mix, just not parallel).
  virtual bool ReplayKeyOf(ByteSpan record, std::string* key) {
    (void)record;
    (void)key;
    return false;
  }

  // Creates an empty per-batch context. Null (the default) means the application
  // does not support batched replay.
  virtual std::unique_ptr<ReplayBatch> StartReplayBatch() { return nullptr; }

  // Folds one batch's effects into the live state. Called single-threaded, only
  // after every batch of the replay applied cleanly (fail-stop: a failed replay
  // merges nothing). Batches are key-disjoint, so merge order cannot matter.
  virtual Status MergeReplayBatch(ReplayBatch& batch) {
    (void)batch;
    return UnimplementedError("application does not support batched replay");
  }

  // Captures a consistent snapshot under the update lock and returns a closure that
  // produces the checkpoint bytes later, with no engine lock held (the concurrent
  // checkpoint's background phase). The default captures eagerly: it serializes the
  // whole state up front — a memory-speed stall with no disk I/O under the lock — and
  // the closure just hands the bytes over. Applications with cheaper consistent-
  // snapshot machinery (copy-on-write structures, frozen delta layers) override this
  // so the stall is O(recent changes) instead of O(database). The closure is invoked
  // at most once, possibly from a background thread; it must not touch engine state.
  virtual Result<std::function<Result<Bytes>()>> CaptureSnapshot() {
    SDB_ASSIGN_OR_RETURN(Bytes snapshot, SerializeState());
    auto holder = std::make_shared<Bytes>(std::move(snapshot));
    return std::function<Result<Bytes>()>(
        [holder]() -> Result<Bytes> { return std::move(*holder); });
  }

  // --- incremental (delta) checkpoints (optional; see DESIGN.md delta chains) ---
  //
  // An application that tracks which objects changed since the last capture can make
  // checkpoints O(churn): CaptureDeltaSnapshot stages just the dirty window and the
  // engine writes it as a delta composing over the previous checkpoint chain. The
  // dirty-tracking contract:
  //   - ApplyUpdate AND MergeReplayBatch mark touched objects dirty (replay at
  //     recovery must repopulate the window: the first post-restart delta covers
  //     exactly the log entries replayed on top of the chain).
  //   - DeserializeState clears the tracking (the loaded state is chain-covered).
  //   - A full CaptureSnapshot leaves the window untouched — a later delta may then
  //     be a superset of the churn, which is harmless (re-captured objects carry
  //     their current values; deletions are idempotent tombstones).
  // Commit/Abandon may run on a background persist thread concurrently with
  // ApplyUpdate, so implementations guard their dirty structures with a small mutex.

  struct DeltaSnapshot {
    Bytes bytes;
    std::uint64_t objects = 0;  // dirty objects captured (metrics only)
  };

  // Stages the dirty window under the update lock and returns a closure producing
  // the delta bytes later with no engine lock held (same shape as CaptureSnapshot —
  // the closure must copy values at capture time, never read live state). Clears the
  // dirty tracking: the staged window is now the engine's to persist. Returning a
  // null function (the default) declares delta capture unsupported; the engine falls
  // back to a full CaptureSnapshot.
  virtual Result<std::function<Result<DeltaSnapshot>()>> CaptureDeltaSnapshot() {
    return std::function<Result<DeltaSnapshot>()>{};
  }

  // The staged delta is durable and referenced by the chain; drop the staged window.
  virtual void CommitDeltaCapture() {}

  // The persist failed or aborted: fold the staged window back into the dirty set so
  // the next capture re-covers it.
  virtual void AbandonDeltaCapture() {}

  // Pure composition: applies each delta (in order) over the base checkpoint bytes
  // and returns the equivalent full-checkpoint bytes. Must not touch live state —
  // both background compaction and restart use it, and the result must be
  // byte-identical to what SerializeState would have produced for the composed
  // state. Required once CaptureDeltaSnapshot returns a closure.
  virtual Result<Bytes> ComposeCheckpoint(ByteSpan base,
                                          const std::vector<ByteSpan>& deltas) {
    (void)base;
    (void)deltas;
    return UnimplementedError("application does not support delta checkpoints");
  }
};

// When to take an automatic checkpoint (checked after each update). All triggers are
// OR-ed; zero disables a trigger. Default: manual checkpoints only — the paper's
// recommendation for its target workloads is a single nightly checkpoint.
struct CheckpointPolicy {
  std::uint64_t every_n_updates = 0;
  std::uint64_t log_bytes_threshold = 0;
  Micros interval_micros = 0;
};

// Incremental (delta) checkpointing: when the application supports
// CaptureDeltaSnapshot, checkpoints write only the dirty window as delta<N>
// composing over the previous base (see version_store.h for the on-disk chain
// protocol), and a background compactor collapses the chain into a new full base
// when it grows past the thresholds below.
struct DeltaCheckpointOptions {
  // Master switch. Even when true, delta mode only engages if the application
  // supports delta capture AND neither keep_previous_checkpoint nor
  // fallback_to_previous_checkpoint is set (the previous-generation hard-error
  // fallback assumes self-contained checkpoints).
  bool enabled = true;

  // Compact once the chain holds this many deltas...
  std::uint64_t compact_after_deltas = 8;
  // ...or once accumulated delta bytes reach this fraction of the base's bytes.
  double compact_delta_base_ratio = 0.5;

  // Hard ceiling: if a chain somehow reaches this length (compaction kept
  // failing), the next checkpoint is forced full, collapsing the chain through
  // the ordinary full-switch path.
  std::uint64_t force_full_at_chain_length = 32;

  // Run compaction on a background thread (sharing the single-flight checkpoint
  // slot). When false, compaction runs synchronously at the end of the
  // checkpoint that crossed the threshold — the deterministic mode the sim
  // harness uses.
  bool background_compaction = true;
};

struct DatabaseOptions {
  Vfs* vfs = nullptr;
  std::string dir;

  // Clock used for phase timing and the interval checkpoint policy. If null, a
  // process-wide WallClock is used.
  Clock* clock = nullptr;

  // Simulated-cost charging (passed through to benchmark Applications via their own
  // construction; the engine itself charges nothing).
  CheckpointPolicy checkpoint_policy;

  // Retain one previous checkpoint generation for hard-error recovery (Section 4).
  bool keep_previous_checkpoint = false;

  // Keep superseded logs as an audit trail (renamed to audit<N>; Section 4). Read them
  // back with ReadAuditTrail (src/core/audit.h) via version_store().AuditPath(n).
  bool retain_logs_for_audit = false;

  // Recovery behaviour.
  bool skip_damaged_log_entries = false;   // hard-error mode: ignore damaged entries
  bool fallback_to_previous_checkpoint = false;  // hard-error mode: use version N-1

  // Cross-thread group commit (Section 5). Enabled by default; disable to get the
  // one-fsync-per-update serial path.
  GroupCommitOptions group_commit;

  LogWriterOptions log_writer;
  std::size_t log_replay_page_size = 512;

  // Restart replay worker pool (src/core/parallel_replay.h). 1 = the paper's serial
  // replay, entry by entry in log order — also the deterministic mode the sim
  // harness's sharded runs require. > 1 partitions the log into key-disjoint
  // batches applied on up to this many threads; the recovered state is byte-
  // identical to serial replay (tests/parallel_recovery_test.cc proves it).
  // Applications that do not override the replay-batch hooks replay serially
  // regardless.
  int recovery_threads = 1;

  // Capacity of the per-commit trace ring buffer (DumpTrace). 0 disables raw trace
  // capture; per-stage histograms keep aggregating either way.
  std::size_t trace_ring_capacity = 256;

  // Concurrent checkpointing: the update lock is held only for the snapshot-and-log-
  // rotate step; the checkpoint bytes are produced and persisted with updates running
  // (automatic checkpoints persist on a background thread, Checkpoint() persists on
  // the calling thread but without the lock). When false, the paper's original
  // behaviour — the lock is held across the whole serialize + write + switch — which
  // is the benchmark baseline and an escape hatch.
  bool concurrent_checkpoint = true;

  // Incremental checkpoints (delta chains + background compaction).
  DeltaCheckpointOptions delta_checkpoint;
};

struct CheckpointBreakdown {
  Micros stall_micros = 0;      // update-lock hold: snapshot capture + log rotation
  Micros serialize_micros = 0;  // PickleWrite of the whole state (capture + closure)
  Micros disk_micros = 0;       // checkpoint + log file writes and the switch commit
  Micros total_micros = 0;
};

struct RestartBreakdown {
  Micros checkpoint_read_micros = 0;
  // Wall-clock elapsed across the whole replay phase (partition pass + batch apply
  // + merge). NOT a per-worker sum: under parallel replay, summed worker time would
  // overstate elapsed time by up to the thread count — that aggregate is
  // replay_cpu_micros below.
  Micros replay_micros = 0;
  // Aggregate replay work: the sequential partition pass plus apply time summed
  // across all workers. Equals replay_micros under serial replay; exceeds it when
  // parallel replay achieves real overlap (the ratio is the effective speedup).
  Micros replay_cpu_micros = 0;
  std::uint64_t replay_batches = 0;       // key-batches dispatched (0 = serial)
  std::uint64_t replay_threads_used = 0;  // workers the replay actually ran on
  Micros partition_pass_micros = 0;       // sequential pass: read + key partition
  Micros batch_apply_micros = 0;          // worker apply time, summed (CPU aggregate)
  std::uint64_t entries_replayed = 0;
  bool partial_tail_discarded = false;
  std::uint64_t entries_skipped = 0;
  bool used_previous_checkpoint = false;
  bool finished_interrupted_switch = false;
  // Rotated logs beyond the checkpoint's generation replayed because a concurrent
  // checkpoint was still pending at crash time (dual-log resolution).
  std::uint64_t pending_logs_replayed = 0;
};

// Compatibility view over the database's metrics registry: every counter below is
// backed by a registry metric (see Database::metrics()); stats() snapshots them into
// this struct so existing callers keep working. New code should prefer the registry.
struct DatabaseStats {
  std::uint64_t enquiries = 0;
  std::uint64_t updates = 0;
  std::uint64_t update_precondition_failures = 0;
  std::uint64_t update_commit_failures = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t auto_checkpoints = 0;
  std::uint64_t log_entries_since_checkpoint = 0;

  UpdateBreakdown last_update;
  CheckpointBreakdown last_checkpoint;
  RestartBreakdown restart;
  GroupCommitStats group_commit;
};

class Database : private GroupCommitHost {
 public:
  // Opens (or creates) the database in options.dir, recovering state into `app`:
  // determine the current version, load its checkpoint, replay its log. The
  // application must outlive the database.
  static Result<std::unique_ptr<Database>> Open(Application& app, DatabaseOptions options);

  // Opens an existing database for reading only: the current state is recovered into
  // `app` with zero side effects on the directory (no fresh-init, no cleanup, no log
  // writer, interrupted switches left for the next writable open). Update, Checkpoint
  // and ReplaceState fail with kFailedPrecondition. Useful for inspection, reporting
  // and backups of a quiescent database.
  static Result<std::unique_ptr<Database>> OpenReadOnly(Application& app,
                                                        DatabaseOptions options);

  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Runs `enquiry` under the shared lock. The callback reads the in-memory state
  // through the application; the disk is never involved.
  Status Enquire(const std::function<Status()>& enquiry);

  // Executes one update. `prepare` runs under the update lock: it verifies the
  // update's preconditions against the in-memory state and, if they hold, returns the
  // pickled update record (gathering "all the parameters of the update"). The engine
  // then appends the record to the log and forces it to disk — the commit point —
  // upgrades to exclusive, and applies the record through the application.
  //
  // With group commit enabled (the default), concurrent callers' records share one
  // log write and one fsync; this never weakens the contract below — Update returns
  // OK only after this update's record is durable and applied, in log order.
  //
  // If `prepare` fails, nothing is logged and the state is untouched. If the disk
  // write fails, the update is not applied (and will not be visible after restart).
  // If ApplyUpdate fails after a successful commit, the in-memory state can no longer
  // be trusted to match the log: the database becomes poisoned and every subsequent
  // operation fails with kInternal until reopened.
  Status Update(const std::function<Result<Bytes>()>& prepare);

  // Group commit (Section 5): several updates share one log disk write. Prepares run
  // in order under the update lock; if any fails, the whole batch aborts unlogged.
  Status UpdateBatch(const std::vector<std::function<Result<Bytes>()>>& prepares);

  // Batch ingest: N *independent* updates — decoded requests from many client
  // connections, carried into the engine by one transport thread — entering the
  // commit pipeline together so one fsync covers all of them. Unlike UpdateBatch,
  // each update succeeds or fails on its own (statuses returned in input order): a
  // precondition failure drops only that update from the sealed batch. With group
  // commit disabled, each update runs the serial one-fsync-per-update path.
  std::vector<Status> UpdateMany(
      const std::vector<std::function<Result<Bytes>()>>& prepares);

  // Writes a checkpoint of the current state and resets the log. With
  // concurrent_checkpoint (the default) the update lock is held only while a
  // consistent snapshot is captured and the log is rotated to the next generation;
  // the checkpoint bytes are produced and persisted afterwards with updates
  // committing to the already-rotated log (a durable `pending` marker makes the
  // rotated log recoverable before the checkpoint exists). With it off, the paper's
  // rule applies verbatim: "An update lock is held while writing a checkpoint" —
  // enquiries proceed, updates wait for the whole write. Either way the commit
  // pipeline is quiesced around the rotation so the log is never switched under an
  // in-flight batch, and this call returns only after the checkpoint is durable (or
  // failed). At most one checkpoint runs at a time; callers queue.
  Status Checkpoint();

  // Replaces the entire in-memory state and immediately checkpoints it, discarding the
  // old log. This is the hard-error recovery path ("We respond to a hard error on a
  // particular name server replica by restoring its data from another replica") and it
  // also heals a poisoned database.
  Status ReplaceState(ByteSpan state);

  std::uint64_t current_version() const;
  // The log generation updates are committing to: current_version() normally, one
  // (or more, after failed persists) ahead while a checkpoint rotation is pending.
  std::uint64_t live_log_version() const;
  // Snapshot of the live delta chain: base == current_version() with no deltas
  // when the current checkpoint is self-contained.
  DeltaChain delta_chain() const;
  std::uint64_t log_bytes() const;
  DatabaseStats stats() const;

  // --- observability ---

  // This database's metrics registry: commit-stage histograms
  // ("commit.stage.<lock_wait|queue_wait|prepare|append|fsync|excl_wait|apply|ack>_us"),
  // commit totals, checkpoint phase histograms, and the db.* counters DatabaseStats
  // mirrors. Process-wide subsystem metrics (vfs.*, rpc.*, heap.*, pickle.*) live in
  // obs::GlobalRegistry().
  obs::Registry& metrics() { return registry_; }

  // Human-readable report: every metric in this database's registry, one line each,
  // histograms as count/mean/p50/p95/p99/max. The per-stage commit breakdown is the
  // reproduction's answer to the paper's measured-cost table.
  std::string MetricsReport() const;

  // The same data as JSON: {"counters":{..},"gauges":{..},"histograms":{..}}.
  std::string MetricsReportJson() const;

  // The most recent per-commit trace events (oldest first), each a full per-stage
  // timing breakdown of one commit batch.
  std::vector<obs::CommitTrace> DumpTrace() const;

  // Monotone counter bumped at the start of every commit batch (and every serial
  // update / checkpoint). Applications whose prepares derive values from in-memory
  // state that the same batch will modify (e.g. replication sequence numbers) compare
  // this across prepares to detect "the state I read has pending, not-yet-applied
  // records in front of it"; see NameServer::SyncReservations.
  std::uint64_t commit_epoch() const {
    return commit_epoch_.load(std::memory_order_relaxed);
  }

  // Snapshot of the live log writer's counters (entries, fsyncs, bytes). Meaningful
  // only while no update is in flight; benchmarks read it after joining workers.
  LogWriterStats log_writer_stats() const;

  const std::string& dir() const { return options_.dir; }
  VersionStore& version_store() { return version_store_; }

 private:
  Database(Application& app, DatabaseOptions options);

  // One checkpoint in two phases. Phase A (RotateForCheckpointLocked, caller holds
  // the update lock with the pipeline paused) captures the snapshot, durably creates
  // log generation `target` with a `pending` marker, and swaps the live writer.
  // Phase B (PersistCheckpoint, no engine lock required) runs the serialize closure,
  // writes checkpoint `target`, and commits the version switch.
  struct CheckpointRotation {
    std::uint64_t base = 0;    // generation the version files name (unchanged by A)
    std::uint64_t target = 0;  // new generation; the live log after A
    std::function<Result<Bytes>()> serialize;
    // Delta mode: `target` will be written as delta<target> extending the chain
    // instead of a self-contained checkpoint; serialize_delta is set, serialize is
    // null. Phase B publishes the extended manifest before committing the switch.
    bool is_delta = false;
    std::function<Result<Application::DeltaSnapshot>()> serialize_delta;
    Micros start_micros = 0;
    Micros stall_micros = 0;
    Micros capture_micros = 0;
  };

  Status Recover();
  Status InitFreshDatabase();
  Status LoadCheckpointAndReplay(const VersionState& state);
  Result<std::unique_ptr<LogWriter>> OpenLogForAppend(const std::string& path);
  Status UpdateSerial(const std::vector<std::function<Result<Bytes>()>>& prepares);
  Status RotateForCheckpointLocked(CheckpointRotation* rotation, bool force_full = false);
  Status PersistCheckpoint(CheckpointRotation rotation);
  Status PersistDeltaCheckpoint(CheckpointRotation rotation);
  // Delta-chain compaction: with the checkpoint slot held, composes the current
  // base + deltas into a full checkpoint(top) via Application::ComposeCheckpoint,
  // deletes the manifest (the commit point), and reclaims the old chain files.
  // Never poisons: a failure at any point leaves the chain authoritative and at
  // worst some swept-at-next-open garbage.
  Status CompactChain();
  bool CompactionDue() const;  // thresholds vs the chain, under chain_mu_
  // Launches the background compaction thread if compaction is due and none is in
  // flight. Called after a successful delta persist.
  void MaybeScheduleCompaction();
  void MaybeAutoCheckpoint();
  bool AutoCheckpointDue() const;
  // The single-flight checkpoint slot. Acquire blocks until no checkpoint is in
  // flight and joins the previous background persist thread; Release may run on
  // that background thread, which is why this is a cv-guarded flag, not a mutex.
  void AcquireCheckpointSlot();
  void ReleaseCheckpointSlot();
  Status CheckPoisoned() const;

  // GroupCommitHost (called by committer_ on a leader thread; see group_commit.h).
  Result<std::uint64_t> BatchBegin() override;
  Status BatchApply(ByteSpan record) override;
  void BatchPoisoned(const Status& cause) override;
  void BatchCommitted(const UpdateBreakdown& breakdown) override;

  Application& app_;
  DatabaseOptions options_;
  WallClock wall_clock_;
  Clock* clock_;  // options_.clock or &wall_clock_
  VersionStore version_store_;
  SueLock lock_;

  // Per-database metrics: the single source of truth for all hot-path counters (the
  // DatabaseStats struct is a snapshot view over it) and the commit-stage histograms.
  // Declared before everything that holds pointers into it.
  obs::Registry registry_;
  std::unique_ptr<obs::TraceRing> trace_ring_;
  obs::CommitStageMetrics stage_metrics_;

  // The following are mutated only while holding the update lock (or in Open), with
  // the pipeline paused where the live log is swapped.
  std::unique_ptr<LogWriter> log_;
  // The committer's durability sink: a private fsync per batch over log_. Retargeted
  // (set_log) alongside log_ swaps, under the same pipeline pause.
  LogWriterSink log_sink_;
  std::atomic<std::uint64_t> version_{0};  // atomic: read lock-free by observers
  // The log generation updates commit to. Equals version_ except between a
  // checkpoint's rotation (Phase A) and its switch commit (Phase B).
  std::atomic<std::uint64_t> live_log_version_{0};
  // Atomic: set under the update lock (apply divergence, ambiguous checkpoint
  // switch) while enquiries — which only hold shared mode — read it concurrently.
  std::atomic<bool> poisoned_{false};
  bool read_only_ = false;

  // Created after recovery when writable and group commit is enabled. Declared after
  // log_ so it is destroyed first.
  std::unique_ptr<GroupCommitter> committer_;

  // Hot-path counters: registry-owned lock-free metrics so overlapping commits never
  // serialize on the stats mutex. counters_.log_bytes mirrors log_->size() so
  // log_bytes() is readable without any lock while a batch is streaming to disk.
  UpdateCounters counters_;
  obs::Counter* enquiries_ = nullptr;
  obs::Counter* checkpoints_ = nullptr;
  obs::Counter* auto_checkpoints_ = nullptr;
  std::atomic<std::uint64_t> commit_epoch_{0};
  std::atomic<Micros> last_checkpoint_time_{0};

  // Single-flight checkpoint slot + the background persist thread for automatic
  // checkpoints. checkpoint_thread_ is assigned/joined only under checkpoint_mu_
  // while checkpoint_in_flight_ hands off ownership of the slot.
  mutable std::mutex checkpoint_mu_;
  std::condition_variable checkpoint_cv_;
  bool checkpoint_in_flight_ = false;
  std::thread checkpoint_thread_;
  obs::Gauge* checkpoint_in_progress_ = nullptr;
  obs::Counter* checkpoint_failures_ = nullptr;

  // The live delta chain (mirrors the on-disk manifest) and its byte accounting
  // for the compaction thresholds. chain_mu_ is a leaf lock: held only around
  // reads/writes of these fields, never while doing I/O.
  mutable std::mutex chain_mu_;
  DeltaChain chain_;
  std::uint64_t chain_base_bytes_ = 0;
  std::uint64_t chain_delta_bytes_ = 0;
  // Delta mode resolved at Open: options + application support + no previous-
  // generation retention. Immutable afterwards.
  bool delta_effective_ = false;

  // Single-flight background compactor. compaction_in_flight_ is exchanged
  // BEFORE joining compaction_thread_, so only a finished thread (the flag is
  // cleared as its last action, after releasing the checkpoint slot) is ever
  // joined — the joiner can therefore hold the checkpoint slot safely.
  // compaction_mu_ guards the thread handle itself.
  std::atomic<bool> compaction_in_flight_{false};
  std::mutex compaction_mu_;
  std::thread compaction_thread_;
  std::atomic<bool> shutting_down_{false};

  obs::Counter* delta_checkpoints_ = nullptr;
  obs::Counter* compaction_runs_ = nullptr;
  obs::Counter* compaction_bytes_ = nullptr;
  obs::Counter* compaction_failures_ = nullptr;

  // Guards only the cold breakdown structs and checkpoint counters.
  mutable std::mutex stats_mutex_;
  DatabaseStats stats_;
};

}  // namespace sdb

#endif  // SMALLDB_SRC_CORE_DATABASE_H_
