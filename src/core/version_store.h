// VersionStore: the paper's on-disk version-switch protocol (Section 3).
//
// "In the normal quiescent state the directory contains a version-numbered checkpoint,
// with a file title such as checkpoint35, a matching log file named logfile35, and a
// file named version containing the characters '35'. We switch to a new checkpoint by
// writing it to the file checkpoint36, creating an empty file logfile36, then writing
// the characters '36' to a new file called newversion. This is the commit point (after
// an appropriate number of Unix fsync calls). Finally, we delete checkpoint35,
// logfile35 and version, then rename newversion to be version."
//
// "On a restart, we read the version number from newversion if the file exists and has
// a valid version number in it, or from version otherwise, and delete any redundant
// files."
//
// With keep_previous_checkpoint, one older generation (checkpoint + its complete log)
// is retained for hard-error recovery (Section 4): current state = previous checkpoint
// + previous log + current log.
//
// Concurrent checkpointing extends the protocol with a `pending` marker: when the
// engine rotates to log generation N+1 *before* checkpoint N+1 exists (updates keep
// committing while the checkpoint is written in the background), it durably writes
// the characters "N+1" to `pending` first. The recovery invariant: if `pending`
// durably names P and the resolved current version is C < P, then logs C+1..P all
// exist and the authoritative state is checkpoint C + logs C..P replayed in order.
// CommitSwitch removes the marker (and every superseded generation in [C, P)) after
// its commit point; a crash in between leaves a stale marker (P <= C) that recovery
// deletes.
//
// Incremental checkpoints generalize the same invariant to the checkpoint itself: a
// generation may be a *delta* over an earlier base instead of a full snapshot. A text
// `manifest` file (atomic-rename published, so never torn) records the composition
// chain: base version B plus delta versions d1 < ... < dk, all > B. The authoritative
// state for resolved version V is then checkpoint(B) composed with delta(d1)..delta(V)
// plus logs V.. replayed on top. The manifest is published durably BEFORE each delta
// switch commits, so a committed switch always has its composition recipe on disk.
// Rules: no manifest, or manifest top < V, means checkpoint(V) is a self-contained
// full snapshot (a full switch supersedes the chain; recovery sweeps the stale
// manifest and its now-unreferenced chain files). Manifest deltas beyond V are
// orphans from persists that never switched; recovery truncates them. A V strictly
// inside (B, top] that the chain does not list — or an unreadable/garbled manifest,
// or a referenced chain file that is missing — is loud kCorruption: guessing would
// silently drop committed state. Compaction collapses the chain in place: it writes
// a full checkpoint(top), deletes the manifest (the commit point), then reclaims the
// old base and delta files.
#ifndef SMALLDB_SRC_CORE_VERSION_STORE_H_
#define SMALLDB_SRC_CORE_VERSION_STORE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/storage/vfs.h"

namespace sdb {

struct VersionStoreOptions {
  // Retain one previous checkpoint generation for hard-error recovery.
  bool keep_previous_checkpoint = false;

  // Instead of deleting a superseded generation's log, rename it to audit<N> — "the
  // log files form a complete audit trail for the database, and could be retained if
  // desired" (Section 4). Audit files are never deleted by recovery cleanup.
  bool retain_logs_for_audit = false;
};

// The checkpoint composition chain for one generation. With no deltas the generation
// is an ordinary self-contained full checkpoint (base == the resolved version).
struct DeltaChain {
  std::uint64_t base = 0;
  std::vector<std::uint64_t> deltas;  // ascending, every element > base

  std::uint64_t top() const { return deltas.empty() ? base : deltas.back(); }
  std::size_t length() const { return 1 + deltas.size(); }
  bool has_deltas() const { return !deltas.empty(); }
};

struct VersionState {
  std::uint64_t version = 0;
  std::string checkpoint_path;
  std::string log_path;
  // True if restart found a committed `newversion` (a crash interrupted the switch
  // after its commit point) and this recovery completed the switch.
  bool finished_interrupted_switch = false;
  // Redundant files removed during recovery (stale checkpoints, partial switches).
  std::vector<std::string> removed_files;
  // The retained previous generation, when present.
  std::optional<std::uint64_t> previous_version;
  // Rotated-but-unswitched log generations (ascending), from a `pending` marker left
  // by an in-flight concurrent checkpoint. Replay them after `log_path`, in order.
  std::vector<std::uint64_t> pending_log_versions;
  // The generation updates were last committing to: `version` normally, the marker's
  // value while a rotation is pending.
  std::uint64_t live_log_version = 0;
  // Composition recipe for `version`: chain.base == version with no deltas when the
  // checkpoint is self-contained, else checkpoint(chain.base) + delta(chain.deltas...)
  // composed in order. Every referenced file verified present during resolution.
  DeltaChain chain;
  // Deltas the manifest listed beyond `version` (persists that never switched);
  // Recover truncates the manifest past them and sweeps their files.
  std::vector<std::uint64_t> orphan_deltas;
  // The manifest's whole chain was superseded by a full-checkpoint switch (its top is
  // below `version`); Recover deletes the manifest and its unreferenced chain files.
  bool manifest_superseded = false;
};

class VersionStore {
 public:
  VersionStore(Vfs& vfs, std::string dir, VersionStoreOptions options = {});

  // File-name helpers (paths are relative to the store's directory).
  std::string CheckpointPath(std::uint64_t version) const;
  std::string LogPath(std::uint64_t version) const;
  std::string AuditPath(std::uint64_t version) const;
  std::string DeltaPath(std::uint64_t version) const;
  std::string ManifestPath() const;

  // Versions with a retained audit log, ascending. Empty unless retain_logs_for_audit
  // has been producing them.
  Result<std::vector<std::uint64_t>> ListAuditLogs();

  // True if the directory contains no database (fresh start).
  Result<bool> IsFresh();

  // Initializes a fresh directory at version 1. The caller must already have written
  // CheckpointPath(1) (synced) and created LogPath(1) (synced). Writes the `version`
  // file and makes everything durable.
  Status InitFresh();

  // Determines the current version, completing any interrupted switch and deleting
  // redundant files. Fails if no valid version can be established.
  Result<VersionState> Recover();

  // Read-only version resolution: the same newversion/version rules, with no cleanup
  // and no side effects. Used by read-only opens and offline inspection.
  Result<VersionState> PeekCurrent();

  // Commits the switch to `new_version`. The caller must already have written
  // CheckpointPath(new_version) and an empty LogPath(new_version), both synced.
  // Executes: sync dir, write `newversion` (the commit point), delete superseded
  // generation files and `version`, rename `newversion` -> `version`.
  //
  // On failure, *switch_ambiguous reports whether the commit point may already be —
  // or may still become — durable: once `newversion` holds synced content, a later
  // directory sync can make its name durable, after which a restart resolves to the
  // NEW generation. A caller that kept committing to the old log past that point
  // would lose acknowledged updates on the next crash, so it must fail-stop until a
  // restart re-resolves the version. Failures with *switch_ambiguous == false
  // aborted cleanly: the old generation remains authoritative and the orphaned new
  // files are swept by the next open.
  Status CommitSwitch(std::uint64_t current_version, std::uint64_t new_version,
                      bool* switch_ambiguous = nullptr);

  // The delta-chain manifest, or nullopt if absent. Like the pending marker, the
  // manifest is always published atomically (never torn), so an unreadable or garbled
  // one is loud kCorruption: treating it as absent would recover checkpoint(base) as
  // if it were the full current state, silently dropping every delta.
  Result<std::optional<DeltaChain>> ReadManifest();

  // Durably publishes `chain` as the manifest (write tmp, fsync, rename, sync dir).
  // Callers publish BEFORE committing a delta switch — once `newversion` names the
  // delta generation, the manifest is the only composition recipe.
  Status PublishManifest(const DeltaChain& chain);

  // Durably records (write tmp, fsync, rename, sync dir) that LogPath(live_version)
  // is the live log while the version files still name an older generation. Must be
  // called after LogPath(live_version) has been created and synced: the marker's
  // directory sync is also what makes the rotated log's name durable.
  Status WritePendingMarker(std::uint64_t live_version);

  // The marker's value, or nullopt if absent. Unlike the version files, an unreadable
  // or garbled marker is a hard error, not "no marker": treating it as absent would
  // let cleanup sweep rotated logs that hold acknowledged updates.
  Result<std::optional<std::uint64_t>> ReadPendingMarker();

  std::string PendingMarkerPath() const;

  const std::string& dir() const { return dir_; }

 private:
  Result<std::optional<std::uint64_t>> ReadVersionFile(std::string_view name);
  Status RemoveStaleFiles(std::uint64_t current, VersionState& state);
  Status ResolvePendingChain(VersionState& state);
  Status ResolveDeltaChain(const std::optional<DeltaChain>& manifest, VersionState& state);

  Vfs& vfs_;
  std::string dir_;
  VersionStoreOptions options_;
};

}  // namespace sdb

#endif  // SMALLDB_SRC_CORE_VERSION_STORE_H_
