#include "src/baselines/textfile_db.h"

namespace sdb::baselines {
namespace {

std::string Escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

Result<std::string> Unescape(std::string_view escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '\\') {
      out.push_back(escaped[i]);
      continue;
    }
    if (i + 1 == escaped.size()) {
      return CorruptionError("dangling escape in text database");
    }
    switch (escaped[++i]) {
      case '\\':
        out.push_back('\\');
        break;
      case 't':
        out.push_back('\t');
        break;
      case 'n':
        out.push_back('\n');
        break;
      default:
        return CorruptionError("unknown escape in text database");
    }
  }
  return out;
}

}  // namespace

std::string TextFileDb::DataPath() const { return JoinPath(dir_, "data.txt"); }

Result<std::unique_ptr<TextFileDb>> TextFileDb::Open(Vfs& vfs, std::string dir) {
  std::unique_ptr<TextFileDb> db(new TextFileDb(vfs, std::move(dir)));
  SDB_RETURN_IF_ERROR(vfs.CreateDir(db->dir_));
  SDB_ASSIGN_OR_RETURN(bool exists, vfs.Exists(db->DataPath()));
  if (!exists) {
    SDB_RETURN_IF_ERROR(AtomicWriteFile(vfs, db->dir_, db->DataPath(), ByteSpan{}));
  }
  SDB_RETURN_IF_ERROR(db->Load());
  return db;
}

Status TextFileDb::Load() {
  records_.clear();
  SDB_ASSIGN_OR_RETURN(Bytes raw, ReadWholeFile(vfs_, DataPath()));
  std::string_view text = AsStringView(AsSpan(raw));
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) {
      return CorruptionError("text database missing final newline");
    }
    std::string_view line = text.substr(begin, end - begin);
    std::size_t tab = line.find('\t');
    if (tab == std::string_view::npos) {
      return CorruptionError("text database line missing separator");
    }
    SDB_ASSIGN_OR_RETURN(std::string key, Unescape(line.substr(0, tab)));
    SDB_ASSIGN_OR_RETURN(std::string value, Unescape(line.substr(tab + 1)));
    records_.insert_or_assign(std::move(key), std::move(value));
    begin = end + 1;
  }
  return OkStatus();
}

Status TextFileDb::RewriteWholeFile() {
  std::string text;
  for (const auto& [key, value] : records_) {
    text += Escape(key);
    text.push_back('\t');
    text += Escape(value);
    text.push_back('\n');
  }
  SDB_RETURN_IF_ERROR(AtomicWriteFile(vfs_, dir_, DataPath(), AsSpan(text)));
  ++rewrites_;
  return OkStatus();
}

Result<std::string> TextFileDb::Get(std::string_view key) {
  auto it = records_.find(key);
  if (it == records_.end()) {
    return NotFoundError("no such key: " + std::string(key));
  }
  return it->second;
}

Status TextFileDb::Put(std::string_view key, std::string_view value) {
  records_.insert_or_assign(std::string(key), std::string(value));
  return RewriteWholeFile();
}

Status TextFileDb::Delete(std::string_view key) {
  auto it = records_.find(key);
  if (it == records_.end()) {
    return NotFoundError("no such key: " + std::string(key));
  }
  records_.erase(it);
  return RewriteWholeFile();
}

Result<std::vector<std::string>> TextFileDb::Keys() {
  std::vector<std::string> keys;
  keys.reserve(records_.size());
  for (const auto& [key, value] : records_) {
    keys.push_back(key);
  }
  return keys;
}

Status TextFileDb::Verify() {
  // Re-parse from disk; the atomic-rename discipline means the file is always a
  // complete previous or complete new version.
  return Load();
}

}  // namespace sdb::baselines
