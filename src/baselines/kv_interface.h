// KvDatabase: a uniform key-value interface implemented by each of the paper's
// Section 2 comparison techniques and by the paper's own design, so the technique-
// comparison experiment (E7) measures all four against identical workloads on the same
// simulated disk.
#ifndef SMALLDB_SRC_BASELINES_KV_INTERFACE_H_
#define SMALLDB_SRC_BASELINES_KV_INTERFACE_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"

namespace sdb::baselines {

class KvDatabase {
 public:
  virtual ~KvDatabase() = default;

  virtual Result<std::string> Get(std::string_view key) = 0;
  virtual Status Put(std::string_view key, std::string_view value) = 0;
  virtual Status Delete(std::string_view key) = 0;
  virtual Result<std::vector<std::string>> Keys() = 0;

  // Crash-safety self-check: rescans durable structures and reports kCorruption if the
  // database cannot be trusted (the ad-hoc technique fails this after a torn
  // multi-page update; the others never should).
  virtual Status Verify() = 0;

  virtual std::string name() const = 0;
};

}  // namespace sdb::baselines

#endif  // SMALLDB_SRC_BASELINES_KV_INTERFACE_H_
