#include "src/baselines/smalldb_kv.h"

#include "src/pickle/pickle.h"
#include "src/pickle/traits.h"

namespace sdb::baselines {
namespace {

struct KvUpdate {
  std::uint8_t op = 0;  // 1 = put, 2 = delete
  std::string key;
  std::string value;

  SDB_PICKLE_FIELDS(KvUpdate, op, key, value)
};

struct KvState {
  std::map<std::string, std::string, std::less<>> records;

  SDB_PICKLE_FIELDS(KvState, records)
};

constexpr std::uint8_t kOpPut = 1;
constexpr std::uint8_t kOpDelete = 2;

}  // namespace

Result<std::unique_ptr<SmallDbKv>> SmallDbKv::Open(DatabaseOptions options,
                                                   const CostModel* cost) {
  std::unique_ptr<SmallDbKv> kv(new SmallDbKv(cost));
  SDB_ASSIGN_OR_RETURN(kv->db_, Database::Open(*kv, options));
  return kv;
}

Result<std::unique_ptr<SmallDbKv>> SmallDbKv::OpenReadOnly(DatabaseOptions options,
                                                           const CostModel* cost) {
  std::unique_ptr<SmallDbKv> kv(new SmallDbKv(cost));
  SDB_ASSIGN_OR_RETURN(kv->db_, Database::OpenReadOnly(*kv, options));
  return kv;
}

Result<std::string> SmallDbKv::Get(std::string_view key) {
  Result<std::string> value = NotFoundError("");
  SDB_RETURN_IF_ERROR(db_->Enquire([this, key, &value] {
    auto it = state_.find(key);
    value = (it == state_.end())
                ? Result<std::string>(NotFoundError("no such key: " + std::string(key)))
                : Result<std::string>(it->second);
    return OkStatus();
  }));
  return value;
}

Status SmallDbKv::Put(std::string_view key, std::string_view value) {
  return db_->Update([this, key, value]() -> Result<Bytes> {
    KvUpdate update{kOpPut, std::string(key), std::string(value)};
    return PickleWrite(update, cost_);
  });
}

Status SmallDbKv::Delete(std::string_view key) {
  return db_->Update([this, key]() -> Result<Bytes> {
    if (state_.find(key) == state_.end()) {
      return NotFoundError("no such key: " + std::string(key));
    }
    KvUpdate update{kOpDelete, std::string(key), ""};
    return PickleWrite(update, cost_);
  });
}

Result<std::vector<std::string>> SmallDbKv::Keys() {
  std::vector<std::string> keys;
  SDB_RETURN_IF_ERROR(db_->Enquire([this, &keys] {
    keys.reserve(state_.size());
    for (const auto& [key, value] : state_) {
      keys.push_back(key);
    }
    return OkStatus();
  }));
  return keys;
}

Status SmallDbKv::Verify() {
  // The engine's recovery protocol validates everything (CRC-framed log entries,
  // CRC-enveloped checkpoints) at open; a live instance is consistent by construction.
  return OkStatus();
}

Status SmallDbKv::ResetState() {
  state_.clear();
  return OkStatus();
}

Result<Bytes> SmallDbKv::SerializeState() {
  KvState snapshot;
  snapshot.records = state_;
  return PickleWrite(snapshot, cost_);
}

Status SmallDbKv::DeserializeState(ByteSpan data) {
  SDB_ASSIGN_OR_RETURN(KvState snapshot, PickleRead<KvState>(data, cost_));
  state_ = std::move(snapshot.records);
  return OkStatus();
}

Status SmallDbKv::ApplyUpdate(ByteSpan record) {
  SDB_ASSIGN_OR_RETURN(KvUpdate update, PickleRead<KvUpdate>(record, cost_));
  switch (update.op) {
    case kOpPut:
      state_.insert_or_assign(std::move(update.key), std::move(update.value));
      return OkStatus();
    case kOpDelete:
      state_.erase(update.key);
      return OkStatus();
    default:
      return CorruptionError("unknown kv update op");
  }
}

}  // namespace sdb::baselines
