// TextFileDb: the paper's first comparison technique — the Unix way.
//
// "Almost all databases are stored as ordinary text files (for example, /etc/passwd
// ...). Whenever a program wishes to access the data it does so by reading and parsing
// the file ... An update involves rewriting the entire file ... The reliability of
// updates in the face of transient errors can be made quite good, by using an atomic
// file rename operation to install a new version of the file." (Section 2)
//
// Format: one record per line, "key<TAB>value" with backslash escaping. Reads are
// served from an in-memory parse (refreshed at open); every update rewrites and
// renames the whole file.
#ifndef SMALLDB_SRC_BASELINES_TEXTFILE_DB_H_
#define SMALLDB_SRC_BASELINES_TEXTFILE_DB_H_

#include <map>
#include <memory>
#include <string>

#include "src/baselines/kv_interface.h"
#include "src/storage/vfs.h"

namespace sdb::baselines {

class TextFileDb final : public KvDatabase {
 public:
  // Opens (creating if absent) the database at dir/data.txt.
  static Result<std::unique_ptr<TextFileDb>> Open(Vfs& vfs, std::string dir);

  Result<std::string> Get(std::string_view key) override;
  Status Put(std::string_view key, std::string_view value) override;
  Status Delete(std::string_view key) override;
  Result<std::vector<std::string>> Keys() override;
  Status Verify() override;
  std::string name() const override { return "textfile"; }

  std::uint64_t rewrites() const { return rewrites_; }

 private:
  TextFileDb(Vfs& vfs, std::string dir) : vfs_(vfs), dir_(std::move(dir)) {}

  Status Load();
  Status RewriteWholeFile();
  std::string DataPath() const;

  Vfs& vfs_;
  std::string dir_;
  std::map<std::string, std::string, std::less<>> records_;
  std::uint64_t rewrites_ = 0;
};

}  // namespace sdb::baselines

#endif  // SMALLDB_SRC_BASELINES_TEXTFILE_DB_H_
