#include "src/baselines/adhoc_page_db.h"

#include "src/common/crc.h"

namespace sdb::baselines {
namespace {

constexpr std::uint8_t kSlotFree = 0;
constexpr std::uint8_t kSlotHead = 1;
constexpr std::uint8_t kSlotContinuation = 2;
constexpr std::uint32_t kNoContinuation = 0xFFFF;

}  // namespace

std::string AdHocPageDb::DataPath() const { return JoinPath(dir_, "data.adhoc"); }

Result<std::unique_ptr<AdHocPageDb>> AdHocPageDb::Open(Vfs& vfs, std::string dir,
                                                       bool lenient) {
  std::unique_ptr<AdHocPageDb> db(new AdHocPageDb(vfs, std::move(dir), lenient));
  SDB_RETURN_IF_ERROR(vfs.CreateDir(db->dir_));
  SDB_ASSIGN_OR_RETURN(db->file_, vfs.Open(db->DataPath(), OpenMode::kCreate));
  SDB_RETURN_IF_ERROR(db->file_->Sync());
  SDB_RETURN_IF_ERROR(vfs.SyncDir(db->dir_));
  SDB_RETURN_IF_ERROR(db->LoadIndex());
  return db;
}

Status AdHocPageDb::LoadIndex() {
  index_.clear();
  chains_.clear();
  free_slots_.clear();
  SDB_ASSIGN_OR_RETURN(std::uint64_t size, file_->Size());
  slots_ = size / kSlotSize;

  struct RawSlot {
    std::uint8_t used;
    std::string key;
    std::string fragment;
    std::uint32_t continuation;
  };
  std::vector<RawSlot> raw(static_cast<std::size_t>(slots_));

  for (std::uint32_t s = 0; s < slots_; ++s) {
    RawSlot& slot = raw[s];
    slot.used = kSlotFree;

    Result<Bytes> slot_read = file_->ReadAt(std::uint64_t{s} * kSlotSize, kSlotSize);
    if (!slot_read.ok()) {
      if (lenient_ && slot_read.status().Is(ErrorCode::kUnreadable)) {
        free_slots_.push_back(s);
        continue;
      }
      return slot_read.status();
    }
    Bytes& slot_bytes = *slot_read;
    if (slot_bytes.size() != kSlotSize) {
      return CorruptionError("short slot read");
    }
    ByteReader in(AsSpan(slot_bytes));
    SDB_ASSIGN_OR_RETURN(slot.used, in.ReadU8());
    SDB_ASSIGN_OR_RETURN(std::uint8_t key_len, in.ReadU8());
    SDB_ASSIGN_OR_RETURN(std::uint16_t frag_len, in.ReadU16());
    SDB_ASSIGN_OR_RETURN(std::uint16_t continuation, in.ReadU16());
    SDB_ASSIGN_OR_RETURN(std::uint32_t stored_crc, in.ReadU32());
    if (slot.used == kSlotFree) {
      free_slots_.push_back(s);
      continue;
    }
    Status bad = OkStatus();
    if (slot.used != kSlotHead && slot.used != kSlotContinuation) {
      bad = CorruptionError("slot " + std::to_string(s) + " has invalid tag");
    } else if (key_len + frag_len > kSlotDataCapacity) {
      bad = CorruptionError("slot " + std::to_string(s) + " has oversized contents");
    } else {
      ByteSpan data(slot_bytes.data() + kSlotHeaderSize, kSlotDataCapacity);
      std::uint32_t actual_crc = Crc32c(data.subspan(0, key_len + frag_len));
      if (UnmaskCrc(stored_crc) != actual_crc) {
        bad = CorruptionError("slot " + std::to_string(s) + " CRC mismatch (torn update?)");
      } else {
        slot.key.assign(AsStringView(data.subspan(0, key_len)));
        slot.fragment.assign(AsStringView(data.subspan(key_len, frag_len)));
        slot.continuation = continuation;
      }
    }
    if (!bad.ok()) {
      if (!lenient_) {
        return bad;
      }
      slot.used = kSlotFree;
      free_slots_.push_back(s);
    }
  }

  // Stitch chains.
  for (std::uint32_t s = 0; s < slots_; ++s) {
    if (raw[s].used != kSlotHead) {
      continue;
    }
    std::string value = raw[s].fragment;
    std::vector<std::uint32_t> chain{s};
    std::uint32_t next = raw[s].continuation;
    bool broken = false;
    while (next != kNoContinuation) {
      if (next >= slots_ || raw[next].used != kSlotContinuation) {
        if (lenient_) {
          broken = true;
          break;
        }
        return CorruptionError("broken continuation chain at slot " + std::to_string(next));
      }
      value += raw[next].fragment;
      chain.push_back(next);
      next = raw[next].continuation;
    }
    if (broken) {
      continue;  // drop the key; WAL replay will rewrite it
    }
    chains_[raw[s].key] = std::move(chain);
    index_[raw[s].key] = IndexEntry{s, std::move(value)};
  }
  return OkStatus();
}

Result<std::vector<std::uint32_t>> AdHocPageDb::ChainOf(std::string_view key) const {
  auto it = chains_.find(key);
  if (it == chains_.end()) {
    return NotFoundError("no such key: " + std::string(key));
  }
  return it->second;
}

Result<std::uint32_t> AdHocPageDb::AllocateSlot() {
  if (!free_slots_.empty()) {
    std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  std::uint32_t slot = static_cast<std::uint32_t>(slots_);
  ++slots_;
  return slot;
}

Status AdHocPageDb::WriteSlot(std::uint32_t slot, std::uint8_t used, std::string_view key,
                              std::string_view fragment, std::uint32_t continuation) {
  if (key.size() + fragment.size() > kSlotDataCapacity) {
    return InternalError("slot contents oversized");
  }
  ByteWriter out;
  out.PutU8(used);
  out.PutU8(static_cast<std::uint8_t>(key.size()));
  out.PutU16(static_cast<std::uint16_t>(fragment.size()));
  out.PutU16(static_cast<std::uint16_t>(continuation));
  Bytes data;
  data.reserve(kSlotDataCapacity);
  data.insert(data.end(), key.begin(), key.end());
  data.insert(data.end(), fragment.begin(), fragment.end());
  out.PutU32(MaskCrc(Crc32c(AsSpan(data))));
  data.resize(kSlotDataCapacity, 0);
  out.PutBytes(AsSpan(data));
  return file_->WriteAt(std::uint64_t{slot} * kSlotSize, AsSpan(out.buffer()));
}

Status AdHocPageDb::FreeSlotOnDisk(std::uint32_t slot) {
  Bytes zeros(kSlotSize, 0);
  SDB_RETURN_IF_ERROR(file_->WriteAt(std::uint64_t{slot} * kSlotSize, AsSpan(zeros)));
  free_slots_.push_back(slot);
  return OkStatus();
}

Result<std::string> AdHocPageDb::Get(std::string_view key) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    return NotFoundError("no such key: " + std::string(key));
  }
  return it->second.value;
}

Status AdHocPageDb::Put(std::string_view key, std::string_view value) {
  if (key.size() > 255) {
    return InvalidArgumentError("key too long");
  }
  // Reuse the existing chain's slots where possible, extending or freeing as needed —
  // the overwrite-in-place discipline. The fragments are written front to back with a
  // single fsync at the end; a crash mid-sequence leaves a mixed old/new chain, which
  // is the vulnerability this baseline exists to demonstrate.
  std::vector<std::uint32_t> old_chain;
  if (auto chain = ChainOf(key); chain.ok()) {
    old_chain = std::move(*chain);
  }

  // Split the value into fragments: the head slot also carries the key.
  std::vector<std::string_view> fragments;
  std::size_t head_capacity = kSlotDataCapacity - key.size();
  std::size_t offset = std::min(head_capacity, value.size());
  fragments.push_back(value.substr(0, offset));
  while (offset < value.size()) {
    std::size_t take = std::min(kSlotDataCapacity, value.size() - offset);
    fragments.push_back(value.substr(offset, take));
    offset += take;
  }

  std::vector<std::uint32_t> new_chain;
  for (std::size_t i = 0; i < fragments.size(); ++i) {
    if (i < old_chain.size()) {
      new_chain.push_back(old_chain[i]);
    } else {
      SDB_ASSIGN_OR_RETURN(std::uint32_t fresh, AllocateSlot());
      new_chain.push_back(fresh);
    }
  }

  for (std::size_t i = 0; i < fragments.size(); ++i) {
    std::uint32_t continuation =
        (i + 1 < new_chain.size()) ? new_chain[i + 1] : kNoContinuation;
    if (i == 0) {
      SDB_RETURN_IF_ERROR(WriteSlot(new_chain[i], kSlotHead, key, fragments[i], continuation));
    } else {
      SDB_RETURN_IF_ERROR(
          WriteSlot(new_chain[i], kSlotContinuation, "", fragments[i], continuation));
    }
  }
  for (std::size_t i = fragments.size(); i < old_chain.size(); ++i) {
    SDB_RETURN_IF_ERROR(FreeSlotOnDisk(old_chain[i]));
  }
  SDB_RETURN_IF_ERROR(file_->Sync());

  chains_[std::string(key)] = std::move(new_chain);
  index_[std::string(key)] = IndexEntry{chains_[std::string(key)].front(), std::string(value)};
  return OkStatus();
}

Status AdHocPageDb::Delete(std::string_view key) {
  SDB_ASSIGN_OR_RETURN(std::vector<std::uint32_t> chain, ChainOf(key));
  for (std::uint32_t slot : chain) {
    SDB_RETURN_IF_ERROR(FreeSlotOnDisk(slot));
  }
  SDB_RETURN_IF_ERROR(file_->Sync());
  chains_.erase(chains_.find(key));
  index_.erase(index_.find(key));
  return OkStatus();
}

Result<std::vector<std::string>> AdHocPageDb::Keys() {
  std::vector<std::string> keys;
  keys.reserve(index_.size());
  for (const auto& [key, entry] : index_) {
    keys.push_back(key);
  }
  return keys;
}

Status AdHocPageDb::Verify() {
  // Verification is always strict, even for an instance opened leniently: it answers
  // "can the on-disk image be trusted as-is?".
  bool saved = lenient_;
  lenient_ = false;
  Status status = LoadIndex();
  lenient_ = saved;
  if (!status.ok() && saved) {
    // Keep the object usable for its owner (WalCommitDb) by reloading leniently.
    Status reload = LoadIndex();
    if (!reload.ok()) {
      return reload;
    }
  }
  return status;
}

}  // namespace sdb::baselines
