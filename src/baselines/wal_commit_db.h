// WalCommitDb: the paper's third comparison technique — a naive atomic commit.
//
// "A naive implementation of atomic commit will require two disk writes: one for the
// commit record (and log entry) and one for updating the actual data. This is somewhat
// more complicated than a system without atomic commit, has much better reliability,
// and performs about a factor of two worse for updates." (Section 2)
//
// Structure: a write-ahead log (reusing the core log framing) in front of an in-place
// slotted data file. Every update appends + fsyncs its WAL entry (write 1, the commit)
// and then updates the data file in place + fsyncs (write 2). Recovery opens the data
// file leniently and replays the WAL over it, repairing any torn in-place write. The
// WAL is truncated once it exceeds a threshold (all entries are known applied).
#ifndef SMALLDB_SRC_BASELINES_WAL_COMMIT_DB_H_
#define SMALLDB_SRC_BASELINES_WAL_COMMIT_DB_H_

#include <memory>
#include <string>

#include "src/baselines/adhoc_page_db.h"
#include "src/baselines/kv_interface.h"
#include "src/core/log_writer.h"
#include "src/storage/vfs.h"

namespace sdb::baselines {

class WalCommitDb final : public KvDatabase {
 public:
  static Result<std::unique_ptr<WalCommitDb>> Open(Vfs& vfs, std::string dir);

  Result<std::string> Get(std::string_view key) override;
  Status Put(std::string_view key, std::string_view value) override;
  Status Delete(std::string_view key) override;
  Result<std::vector<std::string>> Keys() override;
  Status Verify() override;
  std::string name() const override { return "walcommit"; }

  std::uint64_t wal_bytes() const { return wal_ != nullptr ? wal_->size() : 0; }

 private:
  WalCommitDb(Vfs& vfs, std::string dir) : vfs_(vfs), dir_(std::move(dir)) {}

  Status ReplayWal();
  Status MaybeTruncateWal();
  std::string WalPath() const;

  static constexpr std::uint64_t kWalTruncateThreshold = 1 << 20;

  Vfs& vfs_;
  std::string dir_;
  std::unique_ptr<AdHocPageDb> data_;
  std::unique_ptr<LogWriter> wal_;
};

}  // namespace sdb::baselines

#endif  // SMALLDB_SRC_BASELINES_WAL_COMMIT_DB_H_
