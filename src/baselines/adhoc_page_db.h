// AdHocPageDb: the paper's second comparison technique — the custom on-disk layout
// with update-in-place.
//
// "The corresponding databases in larger scale operating systems are often implemented
// by ad hoc schemes, involving a custom designed data representation in a disk file,
// and specialized code for accessing and modifying the data ... updates are typically
// performed by overwriting existing data in place. This leaves the database quite
// vulnerable to transient errors ... particularly true if the update modifies multiple
// pages." (Section 2)
//
// Layout: a file of fixed 256-byte slots, two per 512-byte disk page. A record whose
// value exceeds one slot spans continuation slots — and updating it rewrites several
// pages in place with no atomicity, which is exactly the multi-page vulnerability the
// crash experiments demonstrate. Each slot carries a CRC so Verify() can detect (but
// not repair) the damage.
#ifndef SMALLDB_SRC_BASELINES_ADHOC_PAGE_DB_H_
#define SMALLDB_SRC_BASELINES_ADHOC_PAGE_DB_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/baselines/kv_interface.h"
#include "src/storage/vfs.h"

namespace sdb::baselines {

class AdHocPageDb final : public KvDatabase {
 public:
  static constexpr std::size_t kSlotSize = 256;
  // Header: u8 used(1=head,2=continuation) | u8 key length | u16 fragment length |
  //         u16 continuation slot (0xFFFF none) | u32 masked CRC of the rest.
  static constexpr std::size_t kSlotHeaderSize = 1 + 1 + 2 + 2 + 4;
  static constexpr std::size_t kSlotDataCapacity = kSlotSize - kSlotHeaderSize;

  // With `lenient` set, damaged slots and broken chains are dropped instead of failing
  // the open — the mode WalCommitDb uses before replaying its write-ahead log over the
  // data file.
  static Result<std::unique_ptr<AdHocPageDb>> Open(Vfs& vfs, std::string dir,
                                                   bool lenient = false);

  Result<std::string> Get(std::string_view key) override;
  Status Put(std::string_view key, std::string_view value) override;
  Status Delete(std::string_view key) override;
  Result<std::vector<std::string>> Keys() override;

  // Rescans every slot from disk, checking CRCs and chain integrity. Returns
  // kCorruption after a torn in-place update — the "restore from backup" moment.
  Status Verify() override;

  std::string name() const override { return "adhoc"; }

  std::uint64_t slot_count() const { return slots_; }

 private:
  struct IndexEntry {
    std::uint32_t head_slot = 0;
    std::string value;  // cached (reads never touch the disk after open)
  };

  AdHocPageDb(Vfs& vfs, std::string dir, bool lenient)
      : vfs_(vfs), dir_(std::move(dir)), lenient_(lenient) {}

  Status LoadIndex();
  Result<std::vector<std::uint32_t>> ChainOf(std::string_view key) const;
  Result<std::uint32_t> AllocateSlot();
  Status WriteSlot(std::uint32_t slot, std::uint8_t used, std::string_view key,
                   std::string_view fragment, std::uint32_t continuation);
  Status FreeSlotOnDisk(std::uint32_t slot);
  std::string DataPath() const;

  Vfs& vfs_;
  std::string dir_;
  bool lenient_ = false;
  std::unique_ptr<File> file_;
  std::uint64_t slots_ = 0;
  std::map<std::string, IndexEntry, std::less<>> index_;
  std::map<std::string, std::vector<std::uint32_t>, std::less<>> chains_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace sdb::baselines

#endif  // SMALLDB_SRC_BASELINES_ADHOC_PAGE_DB_H_
