#include "src/baselines/wal_commit_db.h"

#include "src/core/log_reader.h"

namespace sdb::baselines {
namespace {

constexpr std::uint8_t kOpPut = 1;
constexpr std::uint8_t kOpDelete = 2;

Bytes EncodeWalEntry(std::uint8_t op, std::string_view key, std::string_view value) {
  ByteWriter out;
  out.PutU8(op);
  out.PutLengthPrefixed(key);
  out.PutLengthPrefixed(value);
  return std::move(out).Take();
}

}  // namespace

std::string WalCommitDb::WalPath() const { return JoinPath(dir_, "wal"); }

Result<std::unique_ptr<WalCommitDb>> WalCommitDb::Open(Vfs& vfs, std::string dir) {
  std::unique_ptr<WalCommitDb> db(new WalCommitDb(vfs, std::move(dir)));
  SDB_RETURN_IF_ERROR(vfs.CreateDir(db->dir_));
  SDB_ASSIGN_OR_RETURN(db->data_, AdHocPageDb::Open(vfs, db->dir_, /*lenient=*/true));

  SDB_ASSIGN_OR_RETURN(bool wal_exists, vfs.Exists(db->WalPath()));
  if (!wal_exists) {
    SDB_RETURN_IF_ERROR(WriteWholeFile(vfs, db->WalPath(), ByteSpan{}));
    SDB_RETURN_IF_ERROR(vfs.SyncDir(db->dir_));
  }
  SDB_RETURN_IF_ERROR(db->ReplayWal());

  SDB_ASSIGN_OR_RETURN(std::unique_ptr<File> wal_file,
                       vfs.Open(db->WalPath(), OpenMode::kReadWrite));
  SDB_ASSIGN_OR_RETURN(std::uint64_t wal_size, wal_file->Size());
  // Drop a torn tail (an update that never committed).
  LogWriterOptions wal_options;
  if (wal_size % wal_options.page_size != 0) {
    wal_size = (wal_size / wal_options.page_size) * wal_options.page_size;
    SDB_RETURN_IF_ERROR(wal_file->Truncate(wal_size));
    SDB_RETURN_IF_ERROR(wal_file->Sync());
  }
  db->wal_ = std::make_unique<LogWriter>(std::move(wal_file), wal_size, wal_options);
  return db;
}

Status WalCommitDb::ReplayWal() {
  LogReplayOptions options;  // strict: WAL damage beyond a torn tail is fatal
  SDB_ASSIGN_OR_RETURN(
      LogReplayStats stats,
      ReplayLogFile(vfs_, WalPath(), options, [this](ByteSpan payload) -> Status {
        ByteReader in(payload);
        SDB_ASSIGN_OR_RETURN(std::uint8_t op, in.ReadU8());
        SDB_ASSIGN_OR_RETURN(std::string key, in.ReadLengthPrefixedString());
        SDB_ASSIGN_OR_RETURN(std::string value, in.ReadLengthPrefixedString());
        switch (op) {
          case kOpPut:
            return data_->Put(key, value);
          case kOpDelete: {
            Status status = data_->Delete(key);
            if (status.Is(ErrorCode::kNotFound)) {
              return OkStatus();  // replaying a delete twice is a no-op
            }
            return status;
          }
          default:
            return CorruptionError("unknown WAL op");
        }
      }));
  (void)stats;
  return OkStatus();
}

Result<std::string> WalCommitDb::Get(std::string_view key) { return data_->Get(key); }

Status WalCommitDb::Put(std::string_view key, std::string_view value) {
  // Disk write 1: the commit record.
  SDB_RETURN_IF_ERROR(wal_->AppendAndCommit(AsSpan(EncodeWalEntry(kOpPut, key, value))));
  // Disk write 2: the actual data, in place.
  SDB_RETURN_IF_ERROR(data_->Put(key, value));
  return MaybeTruncateWal();
}

Status WalCommitDb::Delete(std::string_view key) {
  if (Result<std::string> existing = data_->Get(key); !existing.ok()) {
    return existing.status();
  }
  SDB_RETURN_IF_ERROR(wal_->AppendAndCommit(AsSpan(EncodeWalEntry(kOpDelete, key, ""))));
  SDB_RETURN_IF_ERROR(data_->Delete(key));
  return MaybeTruncateWal();
}

Result<std::vector<std::string>> WalCommitDb::Keys() { return data_->Keys(); }

Status WalCommitDb::Verify() { return data_->Verify(); }

Status WalCommitDb::MaybeTruncateWal() {
  if (wal_->size() < kWalTruncateThreshold) {
    return OkStatus();
  }
  // All entries are applied and the data file is synced; the WAL can start over.
  SDB_RETURN_IF_ERROR(wal_->Close());
  SDB_RETURN_IF_ERROR(WriteWholeFile(vfs_, WalPath(), ByteSpan{}));
  SDB_RETURN_IF_ERROR(vfs_.SyncDir(dir_));
  SDB_ASSIGN_OR_RETURN(std::unique_ptr<File> wal_file,
                       vfs_.Open(WalPath(), OpenMode::kReadWrite));
  wal_ = std::make_unique<LogWriter>(std::move(wal_file), 0);
  return OkStatus();
}

}  // namespace sdb::baselines
