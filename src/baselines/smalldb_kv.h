// SmallDbKv: the paper's design behind the same KvDatabase interface as the Section 2
// baselines — a main-memory map made durable by the core engine's log + checkpoint.
// One disk write per update, enquiries never touch the disk.
#ifndef SMALLDB_SRC_BASELINES_SMALLDB_KV_H_
#define SMALLDB_SRC_BASELINES_SMALLDB_KV_H_

#include <map>
#include <memory>
#include <string>

#include "src/baselines/kv_interface.h"
#include "src/core/database.h"

namespace sdb::baselines {

class SmallDbKv final : public KvDatabase, public Application {
 public:
  // `options.vfs` and `options.dir` must be set; other engine options pass through
  // (checkpoint policy, retention, recovery modes).
  static Result<std::unique_ptr<SmallDbKv>> Open(DatabaseOptions options,
                                                 const CostModel* cost = nullptr);

  // Read-only open of an existing database: Gets and Keys work; Put/Delete/Checkpoint
  // fail with kFailedPrecondition; the directory is never modified.
  static Result<std::unique_ptr<SmallDbKv>> OpenReadOnly(DatabaseOptions options,
                                                         const CostModel* cost = nullptr);

  ~SmallDbKv() override = default;

  // --- KvDatabase ---
  Result<std::string> Get(std::string_view key) override;
  Status Put(std::string_view key, std::string_view value) override;
  Status Delete(std::string_view key) override;
  Result<std::vector<std::string>> Keys() override;
  Status Verify() override;
  std::string name() const override { return "smalldb"; }

  Status Checkpoint() { return db_->Checkpoint(); }
  Database& database() { return *db_; }

  // --- Application ---
  Status ResetState() override;
  Result<Bytes> SerializeState() override;
  Status DeserializeState(ByteSpan data) override;
  Status ApplyUpdate(ByteSpan record) override;

 private:
  explicit SmallDbKv(const CostModel* cost) : cost_(cost) {}

  const CostModel* cost_;
  std::map<std::string, std::string, std::less<>> state_;
  std::unique_ptr<Database> db_;
};

}  // namespace sdb::baselines

#endif  // SMALLDB_SRC_BASELINES_SMALLDB_KV_H_
