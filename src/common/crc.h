// CRC32C (Castagnoli) and CRC64 (ECMA-182) checksums.
//
// CRC32C frames every log entry and every SimDisk page; the paper's reliability story
// rests on the property that a partially written page "will report an error when it is
// read", and these checksums are how the simulated disk provides that property. CRC64
// guards whole checkpoint images.
#ifndef SMALLDB_SRC_COMMON_CRC_H_
#define SMALLDB_SRC_COMMON_CRC_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace sdb {

// Computes CRC32C of `data`, optionally chaining from a previous crc (pass the previous
// result to extend a running checksum).
std::uint32_t Crc32c(std::span<const std::uint8_t> data, std::uint32_t seed = 0);
std::uint32_t Crc32c(std::string_view data, std::uint32_t seed = 0);

// Computes CRC64/ECMA of `data`.
std::uint64_t Crc64(std::span<const std::uint8_t> data, std::uint64_t seed = 0);
std::uint64_t Crc64(std::string_view data, std::uint64_t seed = 0);

// A masked CRC32C, so that a CRC stored alongside the data it covers does not itself
// look like valid data when re-CRC'd (the classic LevelDB/HDFS masking trick).
std::uint32_t MaskCrc(std::uint32_t crc);
std::uint32_t UnmaskCrc(std::uint32_t masked);

}  // namespace sdb

#endif  // SMALLDB_SRC_COMMON_CRC_H_
