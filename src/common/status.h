// Status: the error model used throughout smalldb.
//
// Library code does not throw exceptions (os-systems convention); every fallible
// operation returns a Status or a Result<T> (see src/common/result.h). A Status is a
// small value type carrying an error code and an optional human-readable message.
#ifndef SMALLDB_SRC_COMMON_STATUS_H_
#define SMALLDB_SRC_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace sdb {

// Error codes. Kept deliberately close to the failure classes the paper reasons about:
// transient failures (kIoError during a write), hard failures (kCorruption /
// kUnreadable on read-back), and logic/precondition failures surfaced by update
// operations before they reach the log.
enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kNotFound,            // file / name / key does not exist
  kAlreadyExists,       // create-exclusive target exists
  kInvalidArgument,     // caller passed something malformed
  kFailedPrecondition,  // update precondition check failed (paper step 1)
  kCorruption,          // data read back but failed validation (bad CRC, bad magic)
  kUnreadable,          // medium reports an error: the paper's "hard failure"
  kIoError,             // transient I/O failure (interrupted write, crash injection)
  kOutOfSpace,          // simulated disk full
  kAborted,             // operation gave up (lock poisoned, shutdown)
  kUnavailable,         // remote peer not reachable
  kInternal,            // invariant violation inside smalldb itself
  kUnimplemented,
};

// Returns a stable, human-readable name, e.g. "NOT_FOUND".
std::string_view ErrorCodeName(ErrorCode code);

class [[nodiscard]] Status {
 public:
  // Default construction yields OK; OK statuses never allocate.
  Status() = default;
  Status(ErrorCode code, std::string message) : code_(code), message_(std::move(message)) {}
  explicit Status(ErrorCode code) : code_(code) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool Is(ErrorCode code) const { return code_ == code; }

  // Renders "CODE: message" (or "OK").
  std::string ToString() const;

  // Returns a copy of this status with `context` prepended to the message, preserving
  // the code. Used to build error chains as failures propagate upward.
  Status WithContext(std::string_view context) const;

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Convenience factories, mirroring the code enum.
Status OkStatus();
Status NotFoundError(std::string_view message);
Status AlreadyExistsError(std::string_view message);
Status InvalidArgumentError(std::string_view message);
Status FailedPreconditionError(std::string_view message);
Status CorruptionError(std::string_view message);
Status UnreadableError(std::string_view message);
Status IoError(std::string_view message);
Status OutOfSpaceError(std::string_view message);
Status AbortedError(std::string_view message);
Status UnavailableError(std::string_view message);
Status InternalError(std::string_view message);
Status UnimplementedError(std::string_view message);

// Propagates a non-OK status to the caller. Mirrors the common systems-code macro.
#define SDB_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::sdb::Status _sdb_status = (expr);        \
    if (!_sdb_status.ok()) return _sdb_status; \
  } while (false)

}  // namespace sdb

#endif  // SMALLDB_SRC_COMMON_STATUS_H_
