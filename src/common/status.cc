#include "src/common/status.h"

namespace sdb {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kCorruption:
      return "CORRUPTION";
    case ErrorCode::kUnreadable:
      return "UNREADABLE";
    case ErrorCode::kIoError:
      return "IO_ERROR";
    case ErrorCode::kOutOfSpace:
      return "OUT_OF_SPACE";
    case ErrorCode::kAborted:
      return "ABORTED";
    case ErrorCode::kUnavailable:
      return "UNAVAILABLE";
    case ErrorCode::kInternal:
      return "INTERNAL";
    case ErrorCode::kUnimplemented:
      return "UNIMPLEMENTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) {
    return *this;
  }
  std::string combined(context);
  combined += ": ";
  combined += message_;
  return Status(code_, std::move(combined));
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status OkStatus() { return Status(); }
Status NotFoundError(std::string_view message) {
  return Status(ErrorCode::kNotFound, std::string(message));
}
Status AlreadyExistsError(std::string_view message) {
  return Status(ErrorCode::kAlreadyExists, std::string(message));
}
Status InvalidArgumentError(std::string_view message) {
  return Status(ErrorCode::kInvalidArgument, std::string(message));
}
Status FailedPreconditionError(std::string_view message) {
  return Status(ErrorCode::kFailedPrecondition, std::string(message));
}
Status CorruptionError(std::string_view message) {
  return Status(ErrorCode::kCorruption, std::string(message));
}
Status UnreadableError(std::string_view message) {
  return Status(ErrorCode::kUnreadable, std::string(message));
}
Status IoError(std::string_view message) { return Status(ErrorCode::kIoError, std::string(message)); }
Status OutOfSpaceError(std::string_view message) {
  return Status(ErrorCode::kOutOfSpace, std::string(message));
}
Status AbortedError(std::string_view message) {
  return Status(ErrorCode::kAborted, std::string(message));
}
Status UnavailableError(std::string_view message) {
  return Status(ErrorCode::kUnavailable, std::string(message));
}
Status InternalError(std::string_view message) {
  return Status(ErrorCode::kInternal, std::string(message));
}
Status UnimplementedError(std::string_view message) {
  return Status(ErrorCode::kUnimplemented, std::string(message));
}

}  // namespace sdb
