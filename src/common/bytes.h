// Byte-buffer primitives: Bytes (owned), ByteSpan (view), ByteWriter / ByteReader
// (cursor-style little-endian encoders used by the pickle package, the log format and
// the RPC marshaller).
#ifndef SMALLDB_SRC_COMMON_BYTES_H_
#define SMALLDB_SRC_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"

namespace sdb {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;

inline ByteSpan AsSpan(const Bytes& bytes) { return ByteSpan(bytes.data(), bytes.size()); }
inline ByteSpan AsSpan(std::string_view s) {
  return ByteSpan(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}
inline std::string_view AsStringView(ByteSpan span) {
  return std::string_view(reinterpret_cast<const char*>(span.data()), span.size());
}
inline Bytes ToBytes(std::string_view s) {
  return Bytes(reinterpret_cast<const std::uint8_t*>(s.data()),
               reinterpret_cast<const std::uint8_t*>(s.data()) + s.size());
}

// Appends little-endian fixed-width integers, varints and length-prefixed blobs to a
// growable buffer. Writing never fails.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(Bytes initial) : buffer_(std::move(initial)) {}

  void PutU8(std::uint8_t v) { buffer_.push_back(v); }
  void PutU16(std::uint16_t v) { PutFixed(v); }
  void PutU32(std::uint32_t v) { PutFixed(v); }
  void PutU64(std::uint64_t v) { PutFixed(v); }
  void PutI64(std::int64_t v) { PutFixed(static_cast<std::uint64_t>(v)); }
  void PutF64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutFixed(bits);
  }

  // LEB128 unsigned varint.
  void PutVarint(std::uint64_t v);
  // Zigzag-encoded signed varint.
  void PutVarintSigned(std::int64_t v);

  void PutBytes(ByteSpan data) { buffer_.insert(buffer_.end(), data.begin(), data.end()); }
  void PutBytes(std::string_view data) { PutBytes(AsSpan(data)); }

  // varint length + raw bytes.
  void PutLengthPrefixed(ByteSpan data) {
    PutVarint(data.size());
    PutBytes(data);
  }
  void PutLengthPrefixed(std::string_view data) { PutLengthPrefixed(AsSpan(data)); }

  std::size_t size() const { return buffer_.size(); }
  const Bytes& buffer() const { return buffer_; }
  Bytes Take() && { return std::move(buffer_); }

  // Overwrites previously written bytes at `offset` (used to backpatch lengths/CRCs).
  void OverwriteU32(std::size_t offset, std::uint32_t v);

 private:
  template <typename T>
  void PutFixed(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  Bytes buffer_;
};

// Consumes the encodings produced by ByteWriter. All reads are bounds-checked and
// return Status on underflow — a truncated log entry or a torn page must surface as a
// recoverable error, never undefined behaviour.
class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) : data_(data) {}

  Result<std::uint8_t> ReadU8();
  Result<std::uint16_t> ReadU16();
  Result<std::uint32_t> ReadU32();
  Result<std::uint64_t> ReadU64();
  Result<std::int64_t> ReadI64();
  Result<double> ReadF64();
  Result<std::uint64_t> ReadVarint();
  Result<std::int64_t> ReadVarintSigned();

  // Returns a view into the underlying buffer (no copy).
  Result<ByteSpan> ReadBytes(std::size_t n);
  Result<ByteSpan> ReadLengthPrefixed();
  Result<std::string> ReadLengthPrefixedString();

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  Result<T> ReadFixed();

  ByteSpan data_;
  std::size_t pos_ = 0;
};

// Renders bytes as lowercase hex, for diagnostics.
std::string HexDump(ByteSpan data, std::size_t max_bytes = 64);

}  // namespace sdb

#endif  // SMALLDB_SRC_COMMON_BYTES_H_
