// CostModel: charges simulated time for work that our host executes far faster than the
// paper's 1987 MicroVAX II did. Components accept an optional CostModel; when present
// they charge the configured rates to its clock, so benchmark output is comparable in
// *shape* (and roughly in magnitude) to the paper's Section 5 measurements.
//
// Calibration (derived from the paper's own numbers):
//   - PickleWrite: 55 s for the 1 MB checkpoint  =>  ~52 us/byte
//   - PickleRead : 15 s of the 20 s restart      =>  ~14 us/byte
//   - disk       : 5 s of disk writes for 1 MB   =>  ~200 KB/s transfer, ~15 ms seek
//   - enquiry    : 5 ms exploring the VM structure
//   - update     : 6 ms explore + 6 ms modify
#ifndef SMALLDB_SRC_COMMON_COST_MODEL_H_
#define SMALLDB_SRC_COMMON_COST_MODEL_H_

#include <cstdint>

#include "src/common/clock.h"

namespace sdb {

struct CostModel {
  Clock* clock = nullptr;  // not owned; nullptr disables all charging

  // Serialization CPU (the paper's "pickles" dominate update and checkpoint cost).
  double pickle_write_micros_per_byte = 0.0;
  double pickle_read_micros_per_byte = 0.0;

  // In-memory structure costs for the name server (per hash-table probe / mutation).
  Micros explore_micros_per_step = 0;
  Micros modify_micros_per_step = 0;

  void ChargePickleWrite(std::size_t bytes) const {
    ChargeScaled(pickle_write_micros_per_byte, bytes);
  }
  void ChargePickleRead(std::size_t bytes) const {
    ChargeScaled(pickle_read_micros_per_byte, bytes);
  }
  void ChargeExplore(std::size_t steps) const {
    if (clock != nullptr) {
      clock->Charge(explore_micros_per_step * static_cast<Micros>(steps));
    }
  }
  void ChargeModify(std::size_t steps) const {
    if (clock != nullptr) {
      clock->Charge(modify_micros_per_step * static_cast<Micros>(steps));
    }
  }

  // The calibration used by the benchmark harness: reproduces the paper's MicroVAX.
  static CostModel MicroVax(Clock* clock) {
    CostModel m;
    m.clock = clock;
    m.pickle_write_micros_per_byte = 52.0;
    m.pickle_read_micros_per_byte = 14.0;
    m.explore_micros_per_step = 1600;  // ~3 probes per simple enquiry => ~5 ms
    m.modify_micros_per_step = 2000;   // ~3 mutations per update => ~6 ms
    return m;
  }

 private:
  void ChargeScaled(double rate, std::size_t bytes) const {
    if (clock != nullptr && rate > 0.0) {
      clock->Charge(static_cast<Micros>(rate * static_cast<double>(bytes)));
    }
  }
};

}  // namespace sdb

#endif  // SMALLDB_SRC_COMMON_COST_MODEL_H_
