// Deterministic random number generation (xoshiro256**, SplitMix64 seeding).
//
// Crash-injection experiments and workload generators must be reproducible from a seed;
// std::mt19937 would do, but a small self-contained generator keeps results stable
// across standard-library versions.
#ifndef SMALLDB_SRC_COMMON_RNG_H_
#define SMALLDB_SRC_COMMON_RNG_H_

#include <array>
#include <cstdint>
#include <string>

namespace sdb {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t NextU64() {
    std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound) { return NextU64() % bound; }

  // Uniform in [lo, hi].
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(NextBelow(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Uniform in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  bool NextBool(double probability_true) { return NextDouble() < probability_true; }

  // Random lowercase-alphanumeric string of length `length`.
  std::string NextString(std::size_t length) {
    static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
    std::string s;
    s.reserve(length);
    for (std::size_t i = 0; i < length; ++i) {
      s.push_back(kAlphabet[NextBelow(sizeof(kAlphabet) - 1)]);
    }
    return s;
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::array<std::uint64_t, 4> state_;
};

}  // namespace sdb

#endif  // SMALLDB_SRC_COMMON_RNG_H_
