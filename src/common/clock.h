// Clocks. The benchmark harness reproduces the paper's MicroVAX-era timings by charging
// simulated time to a SimClock; production use runs against the wall clock. All times
// are microseconds.
#ifndef SMALLDB_SRC_COMMON_CLOCK_H_
#define SMALLDB_SRC_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>
#include <memory>

namespace sdb {

using Micros = std::int64_t;

constexpr Micros kMicrosPerMilli = 1000;
constexpr Micros kMicrosPerSecond = 1000 * 1000;

class Clock {
 public:
  virtual ~Clock() = default;

  // Current time, microseconds since an arbitrary epoch.
  virtual Micros NowMicros() const = 0;

  // Advances simulated time by `amount`; charges nothing on a wall clock (the elapsed
  // real time *is* the cost there). Simulated components call this to account for work
  // they model but do not perform (disk seeks, MicroVAX CPU cycles).
  virtual void Charge(Micros amount) = 0;
};

// Monotonic wall clock. Charge() is a no-op.
class WallClock final : public Clock {
 public:
  Micros NowMicros() const override;
  void Charge(Micros /*amount*/) override {}
};

// Discrete-event simulated clock: time advances only when charged. Thread-safe.
class SimClock final : public Clock {
 public:
  explicit SimClock(Micros start = 0) : now_(start) {}

  Micros NowMicros() const override { return now_.load(std::memory_order_relaxed); }
  void Charge(Micros amount) override { now_.fetch_add(amount, std::memory_order_relaxed); }

  void Set(Micros now) { now_.store(now, std::memory_order_relaxed); }

 private:
  std::atomic<Micros> now_;
};

// A scoped stopwatch reading from any Clock.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock& clock) : clock_(clock), start_(clock.NowMicros()) {}
  Micros ElapsedMicros() const { return clock_.NowMicros() - start_; }
  void Reset() { start_ = clock_.NowMicros(); }

 private:
  const Clock& clock_;
  Micros start_;
};

}  // namespace sdb

#endif  // SMALLDB_SRC_COMMON_CLOCK_H_
