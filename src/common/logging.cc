#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>

namespace sdb {
namespace {

std::atomic<int> g_threshold{static_cast<int>(LogLevel::kWarning)};
std::mutex g_emit_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

}  // namespace

void SetLogThreshold(LogLevel level) { g_threshold.store(static_cast<int>(level)); }
LogLevel GetLogThreshold() { return static_cast<LogLevel>(g_threshold.load()); }

namespace internal {

void EmitLogLine(LogLevel level, std::string_view file, int line, std::string_view message) {
  // Strip the path down to the basename for readability.
  std::size_t slash = file.rfind('/');
  if (slash != std::string_view::npos) {
    file.remove_prefix(slash + 1);
  }
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s %.*s:%d] %.*s\n", LevelTag(level), static_cast<int>(file.size()),
               file.data(), line, static_cast<int>(message.size()), message.data());
}

}  // namespace internal

}  // namespace sdb
