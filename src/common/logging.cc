#include "src/common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

namespace sdb {
namespace {

std::mutex g_emit_mutex;
LogSinkFn g_sink;  // guarded by g_emit_mutex; empty = stderr

// Initialized on first use so SMALLDB_LOG_LEVEL takes effect no matter which
// translation unit logs first.
std::atomic<int>& Threshold() {
  static std::atomic<int> threshold = [] {
    if (const char* env = std::getenv("SMALLDB_LOG_LEVEL")) {
      if (std::optional<LogLevel> parsed = ParseLogLevel(env)) {
        return static_cast<int>(*parsed);
      }
    }
    return static_cast<int>(LogLevel::kWarning);
  }();
  return threshold;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

// Small per-thread id (t1, t2, ...) in arrival order — stable within a process and
// far more readable than pthread ids when interleaving multi-threaded commit logs.
int ThreadId() {
  static std::atomic<int> next{1};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

void SetLogThreshold(LogLevel level) { Threshold().store(static_cast<int>(level)); }
LogLevel GetLogThreshold() { return static_cast<LogLevel>(Threshold().load()); }

std::optional<LogLevel> ParseLogLevel(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug" || lower == "d") {
    return LogLevel::kDebug;
  }
  if (lower == "info" || lower == "i") {
    return LogLevel::kInfo;
  }
  if (lower == "warning" || lower == "warn" || lower == "w") {
    return LogLevel::kWarning;
  }
  if (lower == "error" || lower == "e") {
    return LogLevel::kError;
  }
  return std::nullopt;
}

void SetLogSinkForTest(LogSinkFn sink) {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  g_sink = std::move(sink);
}

namespace internal {

void EmitLogLine(LogLevel level, std::string_view file, int line, std::string_view message) {
  // Strip the path down to the basename for readability.
  std::size_t slash = file.rfind('/');
  if (slash != std::string_view::npos) {
    file.remove_prefix(slash + 1);
  }
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  if (g_sink) {
    std::string formatted = "[" + std::string(LevelTag(level)) + " t" +
                            std::to_string(ThreadId()) + " " + std::string(file) + ":" +
                            std::to_string(line) + "] " + std::string(message);
    g_sink(level, formatted);
    return;
  }
  std::fprintf(stderr, "[%s t%d %.*s:%d] %.*s\n", LevelTag(level), ThreadId(),
               static_cast<int>(file.size()), file.data(), line,
               static_cast<int>(message.size()), message.data());
}

}  // namespace internal

}  // namespace sdb
