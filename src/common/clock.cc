#include "src/common/clock.h"

#include <chrono>

namespace sdb {

Micros WallClock::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace sdb
