// Result<T>: a Status-or-value type, the return type of every fallible operation that
// produces a value. Minimal std::expected-alike (we target C++20, so std::expected is
// not available), with the accessor vocabulary common in systems codebases.
#ifndef SMALLDB_SRC_COMMON_RESULT_H_
#define SMALLDB_SRC_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace sdb {

template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit from a value (success) and from a Status (failure), so functions can
  // `return value;` or `return SomeError(...);` directly.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "Result constructed from OK status without a value");
    if (status_.ok()) {
      status_ = InternalError("Result constructed from OK status without a value");
    }
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Status& status() const { return status_; }

  // Value accessors. Calling these on a failed Result is a programming error.
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  // Dereferencing an rvalue Result yields a *value*, not a reference into the dying
  // temporary — so `for (auto& x : *SomeCall())` is safe (the materialized prvalue is
  // lifetime-extended by the range-for binding).
  T operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value... inverted: non-OK iff no value.
};

// Assigns the value of a Result expression to `lhs`, or propagates its error status.
#define SDB_ASSIGN_OR_RETURN(lhs, expr)                      \
  SDB_ASSIGN_OR_RETURN_IMPL_(SDB_CONCAT_(_sdb_result_, __LINE__), lhs, expr)

#define SDB_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define SDB_CONCAT_(a, b) SDB_CONCAT_IMPL_(a, b)
#define SDB_CONCAT_IMPL_(a, b) a##b

}  // namespace sdb

#endif  // SMALLDB_SRC_COMMON_RESULT_H_
