// Minimal leveled diagnostic logging. Off by default except warnings/errors; tests and
// examples can raise verbosity, and the SMALLDB_LOG_LEVEL environment variable sets
// the initial threshold (e.g. SMALLDB_LOG_LEVEL=debug). Not to be confused with the
// database redo log.
#ifndef SMALLDB_SRC_COMMON_LOGGING_H_
#define SMALLDB_SRC_COMMON_LOGGING_H_

#include <functional>
#include <optional>
#include <sstream>
#include <string_view>

namespace sdb {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global threshold; messages below it are discarded. The initial value comes from
// SMALLDB_LOG_LEVEL if set and parseable, else kWarning.
void SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

// Parses "debug" / "info" / "warning" / "error" (case-insensitive; "warn" and the
// single letters d/i/w/e also work). Returns nullopt for anything else.
std::optional<LogLevel> ParseLogLevel(std::string_view text);

// Redirects formatted log lines (without the trailing newline) to `sink` instead of
// stderr; pass nullptr to restore stderr. For tests only — not thread-safe against
// concurrent emission while swapping.
using LogSinkFn = std::function<void(LogLevel, std::string_view line)>;
void SetLogSinkForTest(LogSinkFn sink);

namespace internal {

void EmitLogLine(LogLevel level, std::string_view file, int line, std::string_view message);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level), file_(file), line_(line) {}
  ~LogMessage() { EmitLogLine(level_, file_, line_, stream_.str()); }

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal

#define SDB_LOG(level)                                                      \
  if (::sdb::LogLevel::level < ::sdb::GetLogThreshold()) {                  \
  } else                                                                    \
    ::sdb::internal::LogMessage(::sdb::LogLevel::level, __FILE__, __LINE__).stream()

}  // namespace sdb

#endif  // SMALLDB_SRC_COMMON_LOGGING_H_
