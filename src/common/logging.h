// Minimal leveled diagnostic logging. Off by default except warnings/errors; tests and
// examples can raise verbosity. Not to be confused with the database redo log.
#ifndef SMALLDB_SRC_COMMON_LOGGING_H_
#define SMALLDB_SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string_view>

namespace sdb {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global threshold; messages below it are discarded.
void SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

namespace internal {

void EmitLogLine(LogLevel level, std::string_view file, int line, std::string_view message);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level), file_(file), line_(line) {}
  ~LogMessage() { EmitLogLine(level_, file_, line_, stream_.str()); }

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal

#define SDB_LOG(level)                                                      \
  if (::sdb::LogLevel::level < ::sdb::GetLogThreshold()) {                  \
  } else                                                                    \
    ::sdb::internal::LogMessage(::sdb::LogLevel::level, __FILE__, __LINE__).stream()

}  // namespace sdb

#endif  // SMALLDB_SRC_COMMON_LOGGING_H_
