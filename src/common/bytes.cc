#include "src/common/bytes.h"

namespace sdb {

void ByteWriter::PutVarint(std::uint64_t v) {
  while (v >= 0x80) {
    buffer_.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  buffer_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::PutVarintSigned(std::int64_t v) {
  // Zigzag: maps small-magnitude signed values to small unsigned values.
  std::uint64_t encoded =
      (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
  PutVarint(encoded);
}

void ByteWriter::OverwriteU32(std::size_t offset, std::uint32_t v) {
  for (std::size_t i = 0; i < sizeof(v); ++i) {
    buffer_.at(offset + i) = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

template <typename T>
Result<T> ByteReader::ReadFixed() {
  if (remaining() < sizeof(T)) {
    return CorruptionError("byte stream truncated reading fixed-width value");
  }
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += sizeof(T);
  return v;
}

Result<std::uint8_t> ByteReader::ReadU8() { return ReadFixed<std::uint8_t>(); }
Result<std::uint16_t> ByteReader::ReadU16() { return ReadFixed<std::uint16_t>(); }
Result<std::uint32_t> ByteReader::ReadU32() { return ReadFixed<std::uint32_t>(); }
Result<std::uint64_t> ByteReader::ReadU64() { return ReadFixed<std::uint64_t>(); }

Result<std::int64_t> ByteReader::ReadI64() {
  SDB_ASSIGN_OR_RETURN(std::uint64_t bits, ReadU64());
  return static_cast<std::int64_t>(bits);
}

Result<double> ByteReader::ReadF64() {
  SDB_ASSIGN_OR_RETURN(std::uint64_t bits, ReadU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::uint64_t> ByteReader::ReadVarint() {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos_ >= data_.size()) {
      return CorruptionError("byte stream truncated reading varint");
    }
    std::uint8_t byte = data_[pos_++];
    v |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) {
      return v;
    }
  }
  return CorruptionError("varint longer than 10 bytes");
}

Result<std::int64_t> ByteReader::ReadVarintSigned() {
  SDB_ASSIGN_OR_RETURN(std::uint64_t encoded, ReadVarint());
  return static_cast<std::int64_t>((encoded >> 1) ^ (~(encoded & 1) + 1));
}

Result<ByteSpan> ByteReader::ReadBytes(std::size_t n) {
  if (remaining() < n) {
    return CorruptionError("byte stream truncated reading blob");
  }
  ByteSpan view = data_.subspan(pos_, n);
  pos_ += n;
  return view;
}

Result<ByteSpan> ByteReader::ReadLengthPrefixed() {
  SDB_ASSIGN_OR_RETURN(std::uint64_t length, ReadVarint());
  if (length > remaining()) {
    return CorruptionError("length prefix exceeds remaining bytes");
  }
  return ReadBytes(static_cast<std::size_t>(length));
}

Result<std::string> ByteReader::ReadLengthPrefixedString() {
  SDB_ASSIGN_OR_RETURN(ByteSpan view, ReadLengthPrefixed());
  return std::string(AsStringView(view));
}

std::string HexDump(ByteSpan data, std::size_t max_bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  std::size_t n = data.size() < max_bytes ? data.size() : max_bytes;
  out.reserve(n * 2 + 4);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0xF]);
  }
  if (n < data.size()) {
    out += "...";
  }
  return out;
}

}  // namespace sdb
