#include "src/common/crc.h"

#include <array>

namespace sdb {
namespace {

// Table-driven CRC32C (polynomial 0x1EDC6F41, reflected 0x82F63B78).
constexpr std::uint32_t kCrc32cPoly = 0x82F63B78u;

constexpr std::array<std::uint32_t, 256> MakeCrc32cTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kCrc32cPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

// CRC64/ECMA-182 (reflected polynomial 0xC96C5795D7870F42).
constexpr std::uint64_t kCrc64Poly = 0xC96C5795D7870F42ull;

constexpr std::array<std::uint64_t, 256> MakeCrc64Table() {
  std::array<std::uint64_t, 256> table{};
  for (std::uint64_t i = 0; i < 256; ++i) {
    std::uint64_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kCrc64Poly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256> kCrc32cTable = MakeCrc32cTable();
const std::array<std::uint64_t, 256> kCrc64Table = MakeCrc64Table();

}  // namespace

std::uint32_t Crc32c(std::span<const std::uint8_t> data, std::uint32_t seed) {
  std::uint32_t crc = ~seed;
  for (std::uint8_t byte : data) {
    crc = kCrc32cTable[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint32_t Crc32c(std::string_view data, std::uint32_t seed) {
  return Crc32c(
      std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(data.data()),
                                    data.size()),
      seed);
}

std::uint64_t Crc64(std::span<const std::uint8_t> data, std::uint64_t seed) {
  std::uint64_t crc = ~seed;
  for (std::uint8_t byte : data) {
    crc = kCrc64Table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint64_t Crc64(std::string_view data, std::uint64_t seed) {
  return Crc64(
      std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(data.data()),
                                    data.size()),
      seed);
}

std::uint32_t MaskCrc(std::uint32_t crc) {
  constexpr std::uint32_t kMaskDelta = 0xA282EAD8u;
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

std::uint32_t UnmaskCrc(std::uint32_t masked) {
  constexpr std::uint32_t kMaskDelta = 0xA282EAD8u;
  std::uint32_t rot = masked - kMaskDelta;
  return (rot >> 17) | (rot << 15);
}

}  // namespace sdb
