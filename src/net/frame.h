// The wire format: length-prefixed frames over a TCP byte stream.
//
// Every message — request or response — travels as one or more frames:
//
//   offset  size  field
//   0       4     magic  "SDBF" (0x46424453 little-endian)
//   4       1     version (currently 1)
//   5       1     type    (kRequest / kResponse / kResponseChunk)
//   6       2     flags   (bit 0: kFlagFinalChunk)
//   8       8     request id (assigned by the client; echoed by the server)
//   16      4     payload length
//   20      4     CRC32 over bytes [0,20) + the payload
//   24      len   payload
//
// The request id is the multiplexing key: a client may pipeline many requests on one
// connection and the server completes them in ANY order; responses are matched by id,
// never by position. The CRC covers the header fields too, so a bit flip anywhere —
// including in the id or the length — is caught, not silently mis-routed. Responses
// larger than a transport-chosen chunk size are split into kResponseChunk frames
// (same id, last one flagged final), so one giant Enumerate reply never monopolizes a
// connection's buffers; the payload concatenation is the encoded rpc::Response.
//
// FrameDecoder consumes the stream incrementally and is deliberately strict: any
// malformed header or failed CRC is a hard error, because a byte stream that has
// lost framing cannot be resynchronized — the connection must be torn down. Every
// decode path is bounds-checked; garbage must produce a clean error, never a crash
// or an accepted bogus frame (tests/net_frame_fuzz_test.cc holds it to that).
#ifndef SMALLDB_SRC_NET_FRAME_H_
#define SMALLDB_SRC_NET_FRAME_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/common/status.h"

namespace sdb::net {

inline constexpr std::uint32_t kFrameMagic = 0x46424453;  // "SDBF" on the wire
inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 24;

// Frames larger than this are rejected at decode time: a corrupted length field must
// not make the decoder buffer gigabytes waiting for a frame that never completes.
inline constexpr std::size_t kMaxFramePayload = 16u << 20;

enum class FrameType : std::uint8_t {
  kRequest = 1,        // payload: encoded rpc::Request
  kResponse = 2,       // payload: complete encoded rpc::Response
  kResponseChunk = 3,  // payload: a fragment of an encoded rpc::Response
};

// Set on the last kResponseChunk of a chunked response.
inline constexpr std::uint16_t kFlagFinalChunk = 0x0001;

struct Frame {
  FrameType type = FrameType::kRequest;
  std::uint16_t flags = 0;
  std::uint64_t request_id = 0;
  Bytes payload;

  bool final_chunk() const { return (flags & kFlagFinalChunk) != 0; }
};

// CRC-32 (IEEE 802.3 polynomial, the zlib convention). `seed` chains incremental
// computation: FrameCrc32(b, FrameCrc32(a)) == FrameCrc32(a+b).
std::uint32_t FrameCrc32(ByteSpan data, std::uint32_t seed = 0);

Bytes EncodeFrame(const Frame& frame);
void AppendFrame(const Frame& frame, Bytes& out);

// Splits an encoded response into one kResponse frame (when it fits) or a run of
// kResponseChunk frames of at most `chunk_payload` bytes, the last flagged final.
std::vector<Frame> ChunkResponse(std::uint64_t request_id, ByteSpan encoded_response,
                                 std::size_t chunk_payload);

// Incremental decoder over a connection's inbound bytes. Feed() appends; Next()
// yields complete frames until it returns ok+nullopt (need more bytes) or an error
// (stream corrupt — unrecoverable, close the connection; every later call returns
// the same error).
class FrameDecoder {
 public:
  // Caps accepted payload length (≤ kMaxFramePayload); transports set it to their
  // own limit so an oversized request is refused before it is buffered.
  explicit FrameDecoder(std::size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  void Feed(ByteSpan data);
  Result<std::optional<Frame>> Next();

  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::size_t max_payload_;
  Bytes buffer_;
  std::size_t consumed_ = 0;
  Status corrupt_ = OkStatus();  // sticky once a decode fails
};

}  // namespace sdb::net

#endif  // SMALLDB_SRC_NET_FRAME_H_
