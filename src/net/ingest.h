// Glue between the rpc layer's batch-ingest contract and the engine: a
// rpc::UpdateSink whose CommitMany is Database::UpdateMany, i.e. one call carries
// decoded updates from many connections into the group-commit pipeline where a
// single fsync covers them all. Lives in src/net because the rpc layer deliberately
// does not link src/core.
#ifndef SMALLDB_SRC_NET_INGEST_H_
#define SMALLDB_SRC_NET_INGEST_H_

#include <functional>
#include <span>
#include <vector>

#include "src/core/database.h"
#include "src/rpc/server.h"

namespace sdb::net {

class DatabaseUpdateSink final : public rpc::UpdateSink {
 public:
  // `db` must outlive the sink (and every RpcServer registration holding it).
  explicit DatabaseUpdateSink(Database& db) : db_(db) {}

  std::vector<Status> CommitMany(
      std::span<const std::function<Result<Bytes>()>> prepares) override {
    return db_.UpdateMany(
        std::vector<std::function<Result<Bytes>()>>(prepares.begin(), prepares.end()));
  }

 private:
  Database& db_;
};

}  // namespace sdb::net

#endif  // SMALLDB_SRC_NET_INGEST_H_
