// NetServer: the non-blocking event-loop TCP server in front of an RpcServer.
//
// Architecture (one epoll loop + a small dispatch pool):
//
//   sockets --epoll--> event loop --decode frames--> work queue --> dispatch pool
//                         ^                                             |
//                         |   outbox + wakeup eventfd   <--responses----+
//
//   - The event loop owns every socket: non-blocking accepts, reads, and writes,
//     with per-connection FrameDecoders. It never runs a handler and never blocks
//     on the engine, so a thousand idle connections cost one thread.
//   - Dispatch workers drain the work queue in gulps. Requests whose method is
//     registered as a *batchable update* (RpcServer::RegisterUpdate) are planned and
//     committed together through ONE UpdateSink::CommitMany call — decoded updates
//     from many sockets entering the group-commit pipeline as one ingest batch, so
//     one fsync covers all of them. Everything else goes through RpcServer::Dispatch
//     one call at a time. Workers may block (the commit pipeline does); the event
//     loop keeps reading meanwhile, which is what makes pipelining deepen batches.
//   - Responses are matched by frame request id, so completion order is free:
//     a slow Export does not head-of-line-block a fast Lookup on the same socket.
//     Responses above options.chunk_payload stream as kResponseChunk frames.
//
// Backpressure (documented in docs/NETWORK.md): a connection with more than
// max_pipelined_requests in flight, or more than max_outbox_bytes of unsent
// response bytes, stops being read (its EPOLLIN is parked) until it drains. The
// TCP window then pushes back on the client; nothing is ever dropped.
#ifndef SMALLDB_SRC_NET_SERVER_H_
#define SMALLDB_SRC_NET_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/rpc/server.h"

namespace sdb::net {

struct NetServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0: pick an ephemeral port (see NetServer::port())

  // Dispatch pool size. Workers block inside the commit pipeline, so this bounds
  // concurrent engine calls, not throughput: queued updates coalesce into the
  // ingest batches the workers carry (ingest_drain at a time).
  int dispatch_threads = 4;

  // Largest request frame accepted from a client.
  std::size_t max_frame_payload = 1u << 20;
  // Responses above this many bytes stream as chunked frames of this size.
  std::size_t chunk_payload = 64u * 1024;
  // Most requests one worker gulp carries into one ingest batch.
  std::size_t ingest_drain = 256;

  // Per-connection backpressure thresholds.
  std::size_t max_pipelined_requests = 1024;
  std::size_t max_outbox_bytes = 4u << 20;
};

class NetServer {
 public:
  // Binds, listens, and starts the event loop and dispatch pool. `rpc` must outlive
  // the server.
  static Result<std::unique_ptr<NetServer>> Start(rpc::RpcServer& rpc,
                                                  NetServerOptions options = {});

  ~NetServer();
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  // Stops accepting, closes every connection, joins all threads. Idempotent.
  void Stop();

  // The bound port (the ephemeral pick when options.port was 0).
  std::uint16_t port() const;

  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_closed = 0;
    std::uint64_t frames_in = 0;
    std::uint64_t frames_out = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t decode_errors = 0;     // corrupt streams torn down
    std::uint64_t chunked_responses = 0;  // responses that streamed as chunks
    std::uint64_t ingest_batches = 0;     // CommitMany calls issued
    std::uint64_t ingest_updates = 0;     // updates those calls carried
    std::uint64_t read_pauses = 0;        // backpressure engagements
  };
  Stats stats() const;

 private:
  class Impl;
  explicit NetServer(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace sdb::net

#endif  // SMALLDB_SRC_NET_SERVER_H_
