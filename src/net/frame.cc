#include "src/net/frame.h"

#include <array>

namespace sdb::net {

namespace {

std::array<std::uint32_t, 256> BuildCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0xEDB88320u : 0);
    }
    table[i] = crc;
  }
  return table;
}

Status CorruptError(const std::string& what) {
  return CorruptionError("wire frame: " + what);
}

}  // namespace

std::uint32_t FrameCrc32(ByteSpan data, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = BuildCrcTable();
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (std::uint8_t byte : data) {
    crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFF];
  }
  return crc ^ 0xFFFFFFFFu;
}

void AppendFrame(const Frame& frame, Bytes& out) {
  ByteWriter writer(std::move(out));
  std::size_t start = writer.size();
  writer.PutU32(kFrameMagic);
  writer.PutU8(kFrameVersion);
  writer.PutU8(static_cast<std::uint8_t>(frame.type));
  writer.PutU16(frame.flags);
  writer.PutU64(frame.request_id);
  writer.PutU32(static_cast<std::uint32_t>(frame.payload.size()));
  std::size_t crc_offset = writer.size();
  writer.PutU32(0);  // backpatched below
  writer.PutBytes(AsSpan(frame.payload));
  ByteSpan written(writer.buffer().data() + start, writer.size() - start);
  std::uint32_t crc = FrameCrc32(written.subspan(0, crc_offset - start));
  crc = FrameCrc32(written.subspan(kFrameHeaderSize), crc);
  writer.OverwriteU32(crc_offset, crc);
  out = std::move(writer).Take();
}

Bytes EncodeFrame(const Frame& frame) {
  Bytes out;
  out.reserve(kFrameHeaderSize + frame.payload.size());
  AppendFrame(frame, out);
  return out;
}

std::vector<Frame> ChunkResponse(std::uint64_t request_id, ByteSpan encoded_response,
                                 std::size_t chunk_payload) {
  std::vector<Frame> frames;
  if (chunk_payload == 0 || encoded_response.size() <= chunk_payload) {
    Frame frame;
    frame.type = FrameType::kResponse;
    frame.request_id = request_id;
    frame.payload.assign(encoded_response.begin(), encoded_response.end());
    frames.push_back(std::move(frame));
    return frames;
  }
  for (std::size_t offset = 0; offset < encoded_response.size();
       offset += chunk_payload) {
    std::size_t len = std::min(chunk_payload, encoded_response.size() - offset);
    Frame frame;
    frame.type = FrameType::kResponseChunk;
    frame.request_id = request_id;
    if (offset + len == encoded_response.size()) {
      frame.flags |= kFlagFinalChunk;
    }
    ByteSpan piece = encoded_response.subspan(offset, len);
    frame.payload.assign(piece.begin(), piece.end());
    frames.push_back(std::move(frame));
  }
  return frames;
}

void FrameDecoder::Feed(ByteSpan data) {
  if (!corrupt_.ok()) {
    return;  // the stream is already condemned; don't grow the buffer
  }
  // Compact before appending so the buffer never retains consumed prefixes across
  // a long-lived connection.
  if (consumed_ > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

Result<std::optional<Frame>> FrameDecoder::Next() {
  if (!corrupt_.ok()) {
    return corrupt_;
  }
  ByteSpan pending(buffer_.data() + consumed_, buffer_.size() - consumed_);
  if (pending.size() < kFrameHeaderSize) {
    return std::optional<Frame>();  // need more bytes
  }
  ByteReader header(pending.subspan(0, kFrameHeaderSize));
  // Reads from a 24-byte span at fixed offsets cannot underflow; errors are
  // structural (bad magic/version/type), and all of them condemn the stream.
  std::uint32_t magic = header.ReadU32().value();
  std::uint8_t version = header.ReadU8().value();
  std::uint8_t type = header.ReadU8().value();
  std::uint16_t flags = header.ReadU16().value();
  std::uint64_t request_id = header.ReadU64().value();
  std::uint32_t payload_len = header.ReadU32().value();
  std::uint32_t wire_crc = header.ReadU32().value();
  if (magic != kFrameMagic) {
    corrupt_ = CorruptError("bad magic");
    return corrupt_;
  }
  if (version != kFrameVersion) {
    corrupt_ = CorruptError("unsupported version " + std::to_string(version));
    return corrupt_;
  }
  if (type != static_cast<std::uint8_t>(FrameType::kRequest) &&
      type != static_cast<std::uint8_t>(FrameType::kResponse) &&
      type != static_cast<std::uint8_t>(FrameType::kResponseChunk)) {
    corrupt_ = CorruptError("unknown frame type " + std::to_string(type));
    return corrupt_;
  }
  if (payload_len > max_payload_ || payload_len > kMaxFramePayload) {
    corrupt_ = CorruptError("oversized payload (" + std::to_string(payload_len) +
                            " bytes)");
    return corrupt_;
  }
  if (pending.size() < kFrameHeaderSize + payload_len) {
    return std::optional<Frame>();  // header plausible; wait for the payload
  }
  ByteSpan payload = pending.subspan(kFrameHeaderSize, payload_len);
  std::uint32_t crc = FrameCrc32(pending.subspan(0, kFrameHeaderSize - 4));
  crc = FrameCrc32(payload, crc);
  if (crc != wire_crc) {
    corrupt_ = CorruptError("CRC mismatch");
    return corrupt_;
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.flags = flags;
  frame.request_id = request_id;
  frame.payload.assign(payload.begin(), payload.end());
  consumed_ += kFrameHeaderSize + payload_len;
  return std::optional<Frame>(std::move(frame));
}

}  // namespace sdb::net
