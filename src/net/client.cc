#include "src/net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/obs/metrics.h"

namespace sdb::net {

namespace {

Status Errno(const std::string& what) {
  return IoError(what + ": " + std::strerror(errno));
}

struct ClientObs {
  obs::Counter* submits;
  obs::Counter* responses;
  obs::Counter* broken;
  obs::Histogram* rpc_us;  // submit -> response completed (includes queue + batch)
};

ClientObs& Obs() {
  static ClientObs o = [] {
    obs::Registry& r = obs::GlobalRegistry();
    return ClientObs{&r.GetCounter("net.client.submits"),
                     &r.GetCounter("net.client.responses"),
                     &r.GetCounter("net.client.broken_channels"),
                     &r.GetHistogram("net.client.rpc_us")};
  }();
  return o;
}

Micros NowMicros() {
  static WallClock clock;
  return clock.NowMicros();
}

}  // namespace

Result<std::unique_ptr<NetChannel>> NetChannel::Connect(const std::string& host,
                                                        std::uint16_t port,
                                                        NetChannelOptions options) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError("bad address: " + host);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Errno("socket");
  }
  // Non-blocking connect so the timeout is enforceable, then back to blocking:
  // the channel's reads and writes intentionally block (waiters ARE the reader).
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    Status status = Errno("connect " + host + ":" + std::to_string(port));
    ::close(fd);
    return status;
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    int timeout_ms =
        static_cast<int>(options.connect_timeout_micros / kMicrosPerMilli);
    int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready <= 0) {
      ::close(fd);
      return UnavailableError("connect " + host + ":" + std::to_string(port) +
                              ": timed out");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      ::close(fd);
      return IoError("connect " + host + ":" + std::to_string(port) + ": " +
                     std::strerror(err));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<NetChannel>(new NetChannel(fd, std::move(options)));
}

NetChannel::NetChannel(int fd, NetChannelOptions options)
    : options_(std::move(options)), fd_(fd), decoder_(options_.max_frame_payload) {}

NetChannel::~NetChannel() {
  Close();
  // By contract no call may be in flight during destruction, so the fd can be
  // released for real now (Close only shuts it down, keeping the descriptor
  // number alive for any reader mid-recv).
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void NetChannel::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    // shutdown(), not close(): an elected reader blocked in recv() wakes with
    // EOF, and the descriptor number cannot be reused out from under it.
    ::shutdown(fd_, SHUT_RDWR);
  }
  if (broken_.ok()) {
    broken_ = UnavailableError("channel closed");
  }
  cv_.notify_all();
}

void NetChannel::CondemnLocked(const Status& status) {
  if (broken_.ok()) {
    broken_ = status;
    Obs().broken->Increment();
  }
  cv_.notify_all();
}

Result<std::uint64_t> NetChannel::Submit(ByteSpan request) {
  Frame frame;
  frame.type = FrameType::kRequest;
  frame.payload.assign(request.begin(), request.end());
  const bool timing = obs::Enabled();
  int fd;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!broken_.ok()) {
      return broken_;
    }
    frame.request_id = next_id_++;
    pending_.insert(frame.request_id);
    if (timing) {
      submitted_[frame.request_id] = NowMicros();
    }
    fd = fd_;
  }
  Bytes wire = EncodeFrame(frame);
  {
    std::lock_guard<std::mutex> write_lock(write_mu_);
    std::size_t sent = 0;
    while (sent < wire.size()) {
      ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        Status status = Errno("send");
        std::lock_guard<std::mutex> lock(mu_);
        CondemnLocked(status);
        return broken_;
      }
      sent += static_cast<std::size_t>(n);
    }
  }
  Obs().submits->Increment();
  return frame.request_id;
}

Result<Bytes> NetChannel::Await(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = completed_.find(id);
    if (it != completed_.end()) {
      Bytes response = std::move(it->second);
      completed_.erase(it);
      if (obs::Enabled()) {
        auto sub = submitted_.find(id);
        if (sub != submitted_.end()) {
          Obs().rpc_us->Record(NowMicros() - sub->second);
          submitted_.erase(sub);
        }
      } else {
        submitted_.erase(id);
      }
      Obs().responses->Increment();
      if (options_.charge_clock != nullptr) {
        options_.charge_clock->Charge(options_.charge_micros);
      }
      return response;
    }
    if (!broken_.ok()) {
      return broken_;
    }
    if (!reader_active_) {
      // Reader election: this waiter takes a turn at the socket. Others sleep on
      // the cv and are woken when deposits (or the channel's death) arrive.
      reader_active_ = true;
      lock.unlock();
      Status read = ReadAndDeposit();
      lock.lock();
      reader_active_ = false;
      if (!read.ok()) {
        CondemnLocked(read);
      } else {
        cv_.notify_all();
      }
    } else {
      cv_.wait(lock);
    }
  }
}

Status NetChannel::ReadAndDeposit() {
  std::uint8_t buf[64 * 1024];
  int fd;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fd = fd_;
  }
  if (fd < 0) {
    return UnavailableError("channel closed");
  }
  ssize_t n;
  for (;;) {
    n = ::recv(fd, buf, sizeof(buf), 0);
    if (n >= 0 || errno != EINTR) {
      break;
    }
  }
  if (n == 0) {
    return UnavailableError("connection closed by peer");
  }
  if (n < 0) {
    return Errno("recv");
  }
  decoder_.Feed(ByteSpan(buf, static_cast<std::size_t>(n)));
  for (;;) {
    Result<std::optional<Frame>> next = decoder_.Next();
    if (!next.ok()) {
      return next.status();
    }
    if (!next->has_value()) {
      return OkStatus();
    }
    Frame frame = std::move(**next);
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_.find(frame.request_id) == pending_.end()) {
      return InternalError("wire frame: response for unknown request id " +
                           std::to_string(frame.request_id));
    }
    switch (frame.type) {
      case FrameType::kResponse:
        pending_.erase(frame.request_id);
        partial_.erase(frame.request_id);
        completed_[frame.request_id] = std::move(frame.payload);
        break;
      case FrameType::kResponseChunk: {
        Bytes& assembly = partial_[frame.request_id];
        assembly.insert(assembly.end(), frame.payload.begin(), frame.payload.end());
        if (frame.final_chunk()) {
          pending_.erase(frame.request_id);
          completed_[frame.request_id] = std::move(assembly);
          partial_.erase(frame.request_id);
        }
        break;
      }
      case FrameType::kRequest:
        return InternalError("wire frame: server sent a request frame");
    }
  }
}

Result<Bytes> NetChannel::RoundTrip(ByteSpan request) {
  SDB_ASSIGN_OR_RETURN(std::uint64_t id, Submit(request));
  return Await(id);
}

}  // namespace sdb::net
