#include "src/net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"
#include "src/net/frame.h"
#include "src/obs/metrics.h"
#include "src/rpc/message.h"

namespace sdb::net {

namespace {

Status Errno(const std::string& what) {
  return IoError(what + ": " + std::strerror(errno));
}

// Process-wide server metrics ("net.server.*" in obs::GlobalRegistry()). Counters
// are always live; the latency histograms record only while obs::Enabled().
struct ServerObs {
  obs::Counter* accepted;
  obs::Counter* closed;
  obs::Gauge* active;
  obs::Counter* frames_in;
  obs::Counter* frames_out;
  obs::Counter* bytes_in;
  obs::Counter* bytes_out;
  obs::Counter* decode_errors;
  obs::Counter* chunked_responses;
  obs::Counter* ingest_batches;
  obs::Counter* ingest_updates;
  obs::Counter* read_pauses;
  obs::Histogram* queue_us;       // frame decoded -> worker picked it up
  obs::Histogram* commit_us;      // one ingest CommitMany call
  obs::Histogram* dispatch_us;    // one non-batchable Dispatch call
  obs::Histogram* ingest_batch;   // updates per CommitMany call
};

ServerObs& Obs() {
  static ServerObs o = [] {
    obs::Registry& r = obs::GlobalRegistry();
    return ServerObs{&r.GetCounter("net.server.connections_accepted"),
                     &r.GetCounter("net.server.connections_closed"),
                     &r.GetGauge("net.server.connections_active"),
                     &r.GetCounter("net.server.frames_in"),
                     &r.GetCounter("net.server.frames_out"),
                     &r.GetCounter("net.server.bytes_in"),
                     &r.GetCounter("net.server.bytes_out"),
                     &r.GetCounter("net.server.decode_errors"),
                     &r.GetCounter("net.server.chunked_responses"),
                     &r.GetCounter("net.server.ingest_batches"),
                     &r.GetCounter("net.server.ingest_updates"),
                     &r.GetCounter("net.server.read_pauses"),
                     &r.GetHistogram("net.server.queue_us"),
                     &r.GetHistogram("net.server.commit_us"),
                     &r.GetHistogram("net.server.dispatch_us"),
                     &r.GetHistogram("net.server.ingest_batch")};
  }();
  return o;
}

Micros NowMicros() {
  static WallClock clock;
  return clock.NowMicros();
}

}  // namespace

class NetServer::Impl {
 public:
  Impl(rpc::RpcServer& rpc, NetServerOptions options)
      : rpc_(rpc), options_(std::move(options)) {}

  ~Impl() { Stop(); }

  Status Start() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      return Errno("socket");
    }
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
      return InvalidArgumentError("bad listen address: " + options_.host);
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      return Errno("bind " + options_.host + ":" + std::to_string(options_.port));
    }
    if (::listen(listen_fd_, 1024) != 0) {
      return Errno("listen");
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
      return Errno("getsockname");
    }
    port_ = ntohs(addr.sin_port);

    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      return Errno("epoll_create1");
    }
    wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (wake_fd_ < 0) {
      return Errno("eventfd");
    }
    SDB_RETURN_IF_ERROR(Arm(listen_fd_, EPOLLIN));
    SDB_RETURN_IF_ERROR(Arm(wake_fd_, EPOLLIN));

    loop_ = std::thread([this] { EventLoop(); });
    int workers = options_.dispatch_threads > 0 ? options_.dispatch_threads : 1;
    for (int i = 0; i < workers; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
    return OkStatus();
  }

  void Stop() {
    bool expected = false;
    if (!stopped_.compare_exchange_strong(expected, true)) {
      return;
    }
    Wake();
    if (loop_.joinable()) {
      loop_.join();
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      draining_ = true;
    }
    queue_cv_.notify_all();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) {
        worker.join();
      }
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    if (wake_fd_ >= 0) {
      ::close(wake_fd_);
      wake_fd_ = -1;
    }
    if (epoll_fd_ >= 0) {
      ::close(epoll_fd_);
      epoll_fd_ = -1;
    }
  }

  std::uint16_t port() const { return port_; }

  Stats stats() const {
    Stats s;
    s.connections_accepted = accepted_.load();
    s.connections_closed = closed_.load();
    s.frames_in = frames_in_.load();
    s.frames_out = frames_out_.load();
    s.bytes_in = bytes_in_.load();
    s.bytes_out = bytes_out_.load();
    s.decode_errors = decode_errors_.load();
    s.chunked_responses = chunked_.load();
    s.ingest_batches = ingest_batches_.load();
    s.ingest_updates = ingest_updates_.load();
    s.read_pauses = read_pauses_.load();
    return s;
  }

 private:
  struct Connection {
    explicit Connection(int conn_fd, std::size_t max_payload)
        : fd(conn_fd), decoder(max_payload) {}

    // Event-loop-only state.
    const int fd;
    FrameDecoder decoder;
    bool reading_paused = false;
    bool want_write = false;

    // Requests decoded but not yet answered (loop increments, workers decrement).
    std::atomic<std::size_t> in_flight{0};

    // Workers append encoded response bytes; the loop drains them to the socket.
    std::mutex mu;
    std::deque<Bytes> outbox;
    std::size_t outbox_head = 0;   // bytes of outbox.front() already sent
    std::size_t outbox_bytes = 0;  // total unsent bytes across the deque
    bool closed = false;
  };

  struct Work {
    std::shared_ptr<Connection> conn;
    Frame frame;
    Micros enqueued = 0;
  };

  Status Arm(int fd, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      return Errno("epoll_ctl add");
    }
    return OkStatus();
  }

  void Rearm(Connection& conn) {
    epoll_event ev{};
    ev.events = (conn.reading_paused ? 0u : EPOLLIN) |
                (conn.want_write ? EPOLLOUT : 0u);
    ev.data.fd = conn.fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  }

  void Wake() {
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }

  // --- event loop ---

  void EventLoop() {
    std::vector<epoll_event> events(256);
    while (!stopped_.load(std::memory_order_acquire)) {
      int n = ::epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()), -1);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        break;
      }
      for (int i = 0; i < n; ++i) {
        int fd = events[i].data.fd;
        if (fd == listen_fd_) {
          AcceptAll();
        } else if (fd == wake_fd_) {
          std::uint64_t drain;
          while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
          }
          FlushDirty();
        } else {
          auto it = conns_.find(fd);
          if (it == conns_.end()) {
            continue;  // closed earlier in this same wait batch
          }
          std::shared_ptr<Connection> conn = it->second;
          if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
            CloseConn(conn);
            continue;
          }
          if ((events[i].events & EPOLLOUT) != 0) {
            FlushConn(conn);
          }
          if ((events[i].events & EPOLLIN) != 0) {
            ReadConn(conn);
          }
        }
      }
      if (stopped_.load(std::memory_order_acquire)) {
        break;
      }
    }
    // Loop exit: tear down every connection so blocked client reads fail fast.
    std::vector<std::shared_ptr<Connection>> all;
    all.reserve(conns_.size());
    for (auto& [fd, conn] : conns_) {
      all.push_back(conn);
    }
    for (auto& conn : all) {
      CloseConn(conn);
    }
  }

  void AcceptAll() {
    for (;;) {
      int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        return;  // EAGAIN or a transient accept error; epoll will re-report
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto conn = std::make_shared<Connection>(fd, options_.max_frame_payload);
      conns_.emplace(fd, conn);
      if (!Arm(fd, EPOLLIN).ok()) {
        conns_.erase(fd);
        ::close(fd);
        continue;
      }
      accepted_.fetch_add(1);
      Obs().accepted->Increment();
      Obs().active->Add(1);
    }
  }

  void ReadConn(const std::shared_ptr<Connection>& conn) {
    std::uint8_t buf[64 * 1024];
    for (;;) {
      ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
      if (n > 0) {
        bytes_in_.fetch_add(static_cast<std::uint64_t>(n));
        Obs().bytes_in->Add(static_cast<std::uint64_t>(n));
        conn->decoder.Feed(ByteSpan(buf, static_cast<std::size_t>(n)));
        if (!DrainFrames(conn)) {
          return;  // connection closed on protocol error
        }
        if (static_cast<std::size_t>(n) < sizeof(buf)) {
          break;  // short read: the socket is drained
        }
        continue;
      }
      if (n == 0) {
        CloseConn(conn);
        return;
      }
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      }
      CloseConn(conn);
      return;
    }
    MaybePauseReads(*conn);
  }

  // Decodes every complete frame into work items. Returns false when the
  // connection was closed (corrupt stream or a non-request frame).
  bool DrainFrames(const std::shared_ptr<Connection>& conn) {
    std::size_t enqueued = 0;
    for (;;) {
      Result<std::optional<Frame>> next = conn->decoder.Next();
      if (!next.ok()) {
        decode_errors_.fetch_add(1);
        Obs().decode_errors->Increment();
        CloseConn(conn);
        return false;
      }
      if (!next->has_value()) {
        break;
      }
      Frame frame = std::move(**next);
      if (frame.type != FrameType::kRequest) {
        decode_errors_.fetch_add(1);
        Obs().decode_errors->Increment();
        CloseConn(conn);
        return false;
      }
      frames_in_.fetch_add(1);
      Obs().frames_in->Increment();
      conn->in_flight.fetch_add(1);
      Work work;
      work.conn = conn;
      work.frame = std::move(frame);
      work.enqueued = obs::Enabled() ? NowMicros() : 0;
      {
        std::lock_guard<std::mutex> lock(queue_mu_);
        work_.push_back(std::move(work));
      }
      ++enqueued;
    }
    if (enqueued == 1) {
      queue_cv_.notify_one();
    } else if (enqueued > 1) {
      queue_cv_.notify_all();
    }
    return true;
  }

  void MaybePauseReads(Connection& conn) {
    std::size_t outbox_bytes;
    {
      std::lock_guard<std::mutex> lock(conn.mu);
      outbox_bytes = conn.outbox_bytes;
    }
    bool overloaded = conn.in_flight.load() >= options_.max_pipelined_requests ||
                      outbox_bytes >= options_.max_outbox_bytes;
    if (overloaded && !conn.reading_paused) {
      conn.reading_paused = true;
      read_pauses_.fetch_add(1);
      Obs().read_pauses->Increment();
      Rearm(conn);
    } else if (!overloaded && conn.reading_paused) {
      conn.reading_paused = false;
      Rearm(conn);
    }
  }

  void FlushConn(const std::shared_ptr<Connection>& conn) {
    bool fatal = false;
    {
      std::unique_lock<std::mutex> lock(conn->mu);
      while (!conn->outbox.empty()) {
        Bytes& front = conn->outbox.front();
        const std::uint8_t* data = front.data() + conn->outbox_head;
        std::size_t len = front.size() - conn->outbox_head;
        ssize_t n = ::send(conn->fd, data, len, MSG_NOSIGNAL);
        if (n < 0) {
          if (errno == EINTR) {
            continue;
          }
          if (errno == EAGAIN || errno == EWOULDBLOCK) {
            break;
          }
          fatal = true;
          break;
        }
        bytes_out_.fetch_add(static_cast<std::uint64_t>(n));
        Obs().bytes_out->Add(static_cast<std::uint64_t>(n));
        conn->outbox_bytes -= static_cast<std::size_t>(n);
        conn->outbox_head += static_cast<std::size_t>(n);
        if (conn->outbox_head == front.size()) {
          conn->outbox.pop_front();
          conn->outbox_head = 0;
        }
      }
      conn->want_write = !conn->outbox.empty() && !fatal;
    }
    if (fatal) {
      CloseConn(conn);
      return;
    }
    Rearm(*conn);
    MaybePauseReads(*conn);
  }

  void FlushDirty() {
    std::vector<std::shared_ptr<Connection>> dirty;
    {
      std::lock_guard<std::mutex> lock(flush_mu_);
      dirty.swap(flush_list_);
    }
    for (const auto& conn : dirty) {
      bool closed;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        closed = conn->closed;
      }
      if (!closed) {
        FlushConn(conn);
      }
    }
  }

  void CloseConn(const std::shared_ptr<Connection>& conn) {
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->closed) {
        return;
      }
      conn->closed = true;
      conn->outbox.clear();
      conn->outbox_bytes = 0;
      conn->outbox_head = 0;
    }
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
    conns_.erase(conn->fd);
    closed_.fetch_add(1);
    Obs().closed->Increment();
    Obs().active->Add(-1);
  }

  // --- dispatch pool ---

  void WorkerLoop() {
    for (;;) {
      std::vector<Work> gulp;
      {
        std::unique_lock<std::mutex> lock(queue_mu_);
        queue_cv_.wait(lock, [this] { return draining_ || !work_.empty(); });
        if (work_.empty()) {
          return;  // draining and dry
        }
        std::size_t n = std::min(work_.size(), options_.ingest_drain);
        gulp.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
          gulp.push_back(std::move(work_.front()));
          work_.pop_front();
        }
      }
      ProcessGulp(gulp);
    }
  }

  // One ingest cycle: plan every batchable update in the gulp, commit each sink's
  // plans through ONE CommitMany call (one group-commit ingest batch covering
  // requests from many sockets), dispatch everything else individually.
  void ProcessGulp(std::vector<Work>& gulp) {
    const bool timing = obs::Enabled();
    if (timing) {
      Micros now = NowMicros();
      for (const Work& work : gulp) {
        Obs().queue_us->Record(now - work.enqueued);
      }
    }

    struct Planned {
      Work* work = nullptr;
      std::uint64_t call_id = 0;
      rpc::PlannedUpdate plan;
    };
    struct SinkGroup {
      std::shared_ptr<rpc::UpdateSink> sink;
      std::vector<Planned> items;
    };
    std::map<rpc::UpdateSink*, SinkGroup> groups;

    for (Work& work : gulp) {
      ByteSpan payload = AsSpan(work.frame.payload);
      Result<rpc::Request> request = rpc::DecodeRequest(payload);
      if (!request.ok()) {
        rpc::Response response;
        response.status = request.status();
        Respond(work, rpc::EncodeResponse(response));
        continue;
      }
      std::optional<rpc::UpdateEntry> entry =
          rpc_.FindUpdate(request->service, request->method);
      if (!entry.has_value()) {
        Micros start = timing ? NowMicros() : 0;
        Bytes response = rpc_.Dispatch(payload);
        if (timing) {
          Obs().dispatch_us->Record(NowMicros() - start);
        }
        Respond(work, std::move(response));
        continue;
      }
      Result<rpc::PlannedUpdate> plan = entry->planner(AsSpan(request->payload));
      if (!plan.ok()) {
        rpc::Response response;
        response.call_id = request->call_id;
        response.status = plan.status();
        Respond(work, rpc::EncodeResponse(response));
        continue;
      }
      SinkGroup& group = groups[entry->sink.get()];
      group.sink = entry->sink;
      group.items.push_back(Planned{&work, request->call_id, std::move(*plan)});
    }

    for (auto& [key, group] : groups) {
      std::vector<std::function<Result<Bytes>()>> prepares;
      prepares.reserve(group.items.size());
      for (Planned& planned : group.items) {
        prepares.push_back(std::move(planned.plan.prepare));
      }
      Micros start = timing ? NowMicros() : 0;
      std::vector<Status> outcomes =
          group.sink->CommitMany({prepares.data(), prepares.size()});
      if (timing) {
        Obs().commit_us->Record(NowMicros() - start);
        Obs().ingest_batch->Record(static_cast<Micros>(group.items.size()));
      }
      ingest_batches_.fetch_add(1);
      ingest_updates_.fetch_add(group.items.size());
      Obs().ingest_batches->Increment();
      Obs().ingest_updates->Add(group.items.size());
      for (std::size_t i = 0; i < group.items.size(); ++i) {
        Planned& planned = group.items[i];
        rpc::Response response;
        response.call_id = planned.call_id;
        if (i < outcomes.size()) {
          response.status = outcomes[i];
        } else {
          response.status = InternalError("ingest sink returned too few outcomes");
        }
        if (response.status.ok()) {
          response.payload = std::move(planned.plan.response_payload);
        }
        Respond(*planned.work, rpc::EncodeResponse(response));
      }
    }
  }

  // Frames the encoded response (chunking large ones), queues it on the
  // connection's outbox, and wakes the event loop to write it out.
  void Respond(Work& work, Bytes encoded_response) {
    std::shared_ptr<Connection>& conn = work.conn;
    std::vector<Frame> frames = ChunkResponse(
        work.frame.request_id, AsSpan(encoded_response), options_.chunk_payload);
    if (frames.size() > 1) {
      chunked_.fetch_add(1);
      Obs().chunked_responses->Increment();
    }
    Bytes wire;
    for (const Frame& frame : frames) {
      AppendFrame(frame, wire);
    }
    frames_out_.fetch_add(frames.size());
    Obs().frames_out->Add(frames.size());
    conn->in_flight.fetch_sub(1);
    bool enqueued = false;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (!conn->closed) {
        conn->outbox_bytes += wire.size();
        conn->outbox.push_back(std::move(wire));
        enqueued = true;
      }
    }
    if (enqueued) {
      {
        std::lock_guard<std::mutex> lock(flush_mu_);
        flush_list_.push_back(conn);
      }
      Wake();
    }
  }

  rpc::RpcServer& rpc_;
  const NetServerOptions options_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::uint16_t port_ = 0;

  std::thread loop_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};

  // Event-loop-owned connection table (fd -> connection).
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Work> work_;
  bool draining_ = false;

  std::mutex flush_mu_;
  std::vector<std::shared_ptr<Connection>> flush_list_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> closed_{0};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> frames_out_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};
  std::atomic<std::uint64_t> decode_errors_{0};
  std::atomic<std::uint64_t> chunked_{0};
  std::atomic<std::uint64_t> ingest_batches_{0};
  std::atomic<std::uint64_t> ingest_updates_{0};
  std::atomic<std::uint64_t> read_pauses_{0};
};

NetServer::NetServer(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}

NetServer::~NetServer() = default;

Result<std::unique_ptr<NetServer>> NetServer::Start(rpc::RpcServer& rpc,
                                                    NetServerOptions options) {
  auto impl = std::make_unique<Impl>(rpc, std::move(options));
  SDB_RETURN_IF_ERROR(impl->Start());
  return std::unique_ptr<NetServer>(new NetServer(std::move(impl)));
}

void NetServer::Stop() { impl_->Stop(); }

std::uint16_t NetServer::port() const { return impl_->port(); }

NetServer::Stats NetServer::stats() const { return impl_->stats(); }

}  // namespace sdb::net
