// NetChannel: the async client side of the TCP transport.
//
// One connection, many requests in flight. Submit() frames a request, assigns it a
// fresh frame id, and writes it out; Await(id) blocks until that id's response
// arrives. RoundTrip() = Submit + Await, which is the synchronous rpc::Channel
// contract every existing client stub (NameServiceClient, DirectoryServiceClient)
// already speaks — point them at a NetChannel and they work over a real socket.
//
// There is no background reader thread. Await'ers elect a reader: whoever is waiting
// when the socket has undelivered bytes takes a turn at recv(), deposits whatever
// frames arrive into the completion map (reassembling chunked responses), wakes the
// other waiters, and goes back to checking for its own id. A thousand channels cost
// a thousand fds, not a thousand threads — which matters on the bench machine.
//
// Any socket or protocol error condemns the channel: every pending and future call
// fails with the same status. A lost response is indistinguishable from a lost
// request (the half-open failure LoopbackChannel::SetDropResponses simulates), so
// callers must treat kUnavailable as "effects unknown".
#ifndef SMALLDB_SRC_NET_CLIENT_H_
#define SMALLDB_SRC_NET_CLIENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <set>
#include <string>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/net/frame.h"
#include "src/pickle/pickle.h"
#include "src/rpc/message.h"
#include "src/rpc/transport.h"

namespace sdb::net {

struct NetChannelOptions {
  Micros connect_timeout_micros = 5 * kMicrosPerSecond;

  // When set, every completed round trip charges `charge_micros` to this clock —
  // the loopback transport's simulated-latency contract, reproduced over a real
  // socket so bench_remote_ops --transport=tcp still does the paper's 8 ms
  // arithmetic while real bytes cross a real connection.
  Clock* charge_clock = nullptr;
  Micros charge_micros = 0;

  std::size_t max_frame_payload = kMaxFramePayload;
};

class NetChannel final : public rpc::Channel {
 public:
  static Result<std::unique_ptr<NetChannel>> Connect(const std::string& host,
                                                     std::uint16_t port,
                                                     NetChannelOptions options = {});

  ~NetChannel() override;
  NetChannel(const NetChannel&) = delete;
  NetChannel& operator=(const NetChannel&) = delete;

  // The synchronous Channel contract: one request, wait for its response.
  Result<Bytes> RoundTrip(ByteSpan request) override;

  // The pipelined API. Submit sends an encoded rpc::Request and returns the frame id
  // to await; many submits may be outstanding. Await blocks until that id completes
  // (responses complete in any order) and returns the encoded rpc::Response bytes.
  Result<std::uint64_t> Submit(ByteSpan request);
  Result<Bytes> Await(std::uint64_t id);

  // Closes the socket; every pending and future call fails with kUnavailable.
  void Close();

 private:
  explicit NetChannel(int fd, NetChannelOptions options);

  // Performs one blocking recv + decode pass, depositing completed responses.
  // Called only by the elected reader (reader_active_ true, no lock held).
  Status ReadAndDeposit();

  void CondemnLocked(const Status& status);

  const NetChannelOptions options_;

  std::mutex write_mu_;  // serializes frame writes from concurrent Submit()s
  int fd_ = -1;          // written only under BOTH write_mu_ and mu_ (in Close)

  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t next_id_ = 1;
  bool reader_active_ = false;
  Status broken_;                              // sticky once the channel dies
  std::set<std::uint64_t> pending_;            // submitted, not yet completed
  std::map<std::uint64_t, Bytes> partial_;     // chunked responses mid-reassembly
  std::map<std::uint64_t, Bytes> completed_;   // ready for Await to collect
  std::map<std::uint64_t, Micros> submitted_;  // id -> submit time (obs only)
  FrameDecoder decoder_;                       // touched only by the elected reader
};

// Typed pipelined helpers mirroring rpc::CallMethod: SubmitCall marshals the request
// and submits it; AwaitCall awaits, unmarshals, and surfaces the response status.
template <typename Req>
Result<std::uint64_t> SubmitCall(NetChannel& channel, const std::string& service,
                                 const std::string& method, const Req& request) {
  rpc::Request wire;
  wire.service = service;
  wire.method = method;
  PickleWriter writer;
  writer.Write(request);
  wire.payload = std::move(writer).TakeRaw();
  return channel.Submit(AsSpan(rpc::EncodeRequest(wire)));
}

template <typename Resp>
Result<Resp> AwaitCall(NetChannel& channel, std::uint64_t id) {
  SDB_ASSIGN_OR_RETURN(Bytes encoded, channel.Await(id));
  SDB_ASSIGN_OR_RETURN(rpc::Response response, rpc::DecodeResponse(AsSpan(encoded)));
  SDB_RETURN_IF_ERROR(response.status);
  PickleReader reader = PickleReader::Raw(AsSpan(response.payload));
  Resp result{};
  SDB_RETURN_IF_ERROR(reader.Read(result).WithContext("unmarshalling RPC response"));
  return result;
}

}  // namespace sdb::net

#endif  // SMALLDB_SRC_NET_CLIENT_H_
