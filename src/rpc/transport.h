// RPC transports. A Channel carries one request to a server and returns its response.
//
// LoopbackChannel dispatches in-process against an RpcServer, charging a configurable
// round-trip latency to a clock — the paper's measured "about 8 msecs" round trip, so
// remote-operation benchmarks reproduce its 13 ms enquiry / 62 ms update arithmetic.
// Fault injection (drop the connection, fail every call) supports the replication
// experiments.
#ifndef SMALLDB_SRC_RPC_TRANSPORT_H_
#define SMALLDB_SRC_RPC_TRANSPORT_H_

#include <atomic>
#include <cstdint>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/common/result.h"

namespace sdb::rpc {

class RpcServer;

class Channel {
 public:
  virtual ~Channel() = default;

  // Sends encoded request bytes; returns encoded response bytes.
  virtual Result<Bytes> RoundTrip(ByteSpan request) = 0;
};

struct LoopbackOptions {
  Clock* clock = nullptr;            // charged with latency if non-null
  Micros round_trip_micros = 8'000;  // the paper's measured RPC round trip
};

class LoopbackChannel final : public Channel {
 public:
  // `server` must outlive the channel.
  LoopbackChannel(RpcServer& server, LoopbackOptions options = {})
      : server_(server), options_(options) {}

  Result<Bytes> RoundTrip(ByteSpan request) override;

  // Simulates a network partition: while disconnected, calls fail with kUnavailable.
  // The request never reaches the server — the symmetric, easy case.
  void SetConnected(bool connected) { connected_.store(connected); }
  bool connected() const { return connected_.load(); }

  // The asymmetric failure a real socket produces: the request IS delivered and
  // executed, but the response is lost (peer died after processing, half-open
  // connection). The caller sees kUnavailable with no way to tell this apart from
  // SetConnected(false) — which is exactly what makes retry/idempotency testable.
  void SetDropResponses(bool drop) { drop_responses_.store(drop); }
  bool dropping_responses() const { return drop_responses_.load(); }

  std::uint64_t calls() const { return calls_.load(); }
  std::uint64_t dropped_responses() const { return dropped_responses_.load(); }

 private:
  RpcServer& server_;
  LoopbackOptions options_;
  std::atomic<bool> connected_{true};
  std::atomic<bool> drop_responses_{false};
  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> dropped_responses_{0};
};

}  // namespace sdb::rpc

#endif  // SMALLDB_SRC_RPC_TRANSPORT_H_
