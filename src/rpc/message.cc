#include "src/rpc/message.h"

namespace sdb::rpc {

Bytes EncodeRequest(const Request& request) {
  ByteWriter out;
  out.PutVarint(request.call_id);
  out.PutLengthPrefixed(request.service);
  out.PutLengthPrefixed(request.method);
  out.PutLengthPrefixed(AsSpan(request.payload));
  return std::move(out).Take();
}

Result<Request> DecodeRequest(ByteSpan data) {
  ByteReader in(data);
  Request request;
  SDB_ASSIGN_OR_RETURN(request.call_id, in.ReadVarint());
  SDB_ASSIGN_OR_RETURN(request.service, in.ReadLengthPrefixedString());
  SDB_ASSIGN_OR_RETURN(request.method, in.ReadLengthPrefixedString());
  SDB_ASSIGN_OR_RETURN(ByteSpan payload, in.ReadLengthPrefixed());
  request.payload.assign(payload.begin(), payload.end());
  if (!in.AtEnd()) {
    return CorruptionError("trailing bytes in RPC request");
  }
  return request;
}

Bytes EncodeResponse(const Response& response) {
  ByteWriter out;
  out.PutVarint(response.call_id);
  out.PutU8(static_cast<std::uint8_t>(response.status.code()));
  if (response.status.ok()) {
    out.PutLengthPrefixed(AsSpan(response.payload));
  } else {
    out.PutLengthPrefixed(response.status.message());
  }
  return std::move(out).Take();
}

Result<Response> DecodeResponse(ByteSpan data) {
  ByteReader in(data);
  Response response;
  SDB_ASSIGN_OR_RETURN(response.call_id, in.ReadVarint());
  SDB_ASSIGN_OR_RETURN(std::uint8_t code, in.ReadU8());
  if (code > static_cast<std::uint8_t>(ErrorCode::kUnimplemented)) {
    return CorruptionError("invalid status code in RPC response");
  }
  SDB_ASSIGN_OR_RETURN(ByteSpan body, in.ReadLengthPrefixed());
  if (!in.AtEnd()) {
    return CorruptionError("trailing bytes in RPC response");
  }
  if (code == 0) {
    response.payload.assign(body.begin(), body.end());
  } else {
    response.status =
        Status(static_cast<ErrorCode>(code), std::string(AsStringView(body)));
  }
  return response;
}

}  // namespace sdb::rpc
