// RPC wire format. Requests and responses are framed with the same ByteWriter
// primitives the pickle package uses; payloads are raw pickles of the request/response
// structs (the statically-typed marshalling the paper's RPC runtime generated —
// "automatically generates 'marshalling' procedures to convert between strongly typed
// data structures and bit representations suitable for transport across the network").
#ifndef SMALLDB_SRC_RPC_MESSAGE_H_
#define SMALLDB_SRC_RPC_MESSAGE_H_

#include <cstdint>
#include <string>

#include "src/common/bytes.h"
#include "src/common/result.h"
#include "src/common/status.h"

namespace sdb::rpc {

struct Request {
  std::uint64_t call_id = 0;
  std::string service;
  std::string method;
  Bytes payload;
};

struct Response {
  std::uint64_t call_id = 0;
  Status status;   // application/dispatch status
  Bytes payload;   // valid iff status.ok()
};

Bytes EncodeRequest(const Request& request);
Result<Request> DecodeRequest(ByteSpan data);

Bytes EncodeResponse(const Response& response);
Result<Response> DecodeResponse(ByteSpan data);

}  // namespace sdb::rpc

#endif  // SMALLDB_SRC_RPC_MESSAGE_H_
