#include "src/rpc/server.h"

#include "src/obs/metrics.h"

namespace sdb::rpc {

namespace {

// Process-wide mirror of the per-server dispatch counters, so MetricsReport-style
// dumps see RPC traffic without access to individual RpcServer instances.
struct ServerMetrics {
  obs::Counter* dispatches;
  obs::Counter* handler_errors;
  obs::Histogram* handler_us;
};

ServerMetrics& Metrics() {
  static ServerMetrics m = [] {
    obs::Registry& registry = obs::GlobalRegistry();
    return ServerMetrics{&registry.GetCounter("rpc.server.dispatches"),
                         &registry.GetCounter("rpc.server.handler_errors"),
                         &registry.GetHistogram("rpc.server.handler_us")};
  }();
  return m;
}

}  // namespace

void RpcServer::Register(std::string service, std::string method, RawHandler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  handlers_.insert_or_assign({std::move(service), std::move(method)}, std::move(handler));
}

void RpcServer::RegisterUpdate(std::string service, std::string method,
                               UpdatePlanner planner, std::shared_ptr<UpdateSink> sink) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    updates_.insert_or_assign({service, method}, UpdateEntry{planner, sink});
  }
  // The Dispatch path serves the method as a batch of one: same plan, same commit
  // pipeline, so loopback and socket transports agree on semantics exactly.
  Register(std::move(service), std::move(method),
           [planner = std::move(planner),
            sink = std::move(sink)](ByteSpan payload) -> Result<Bytes> {
             SDB_ASSIGN_OR_RETURN(PlannedUpdate plan, planner(payload));
             std::vector<Status> outcomes = sink->CommitMany({&plan.prepare, 1});
             SDB_RETURN_IF_ERROR(outcomes.front());
             return std::move(plan.response_payload);
           });
}

std::optional<UpdateEntry> RpcServer::FindUpdate(const std::string& service,
                                                 const std::string& method) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = updates_.find({service, method});
  if (it == updates_.end()) {
    return std::nullopt;
  }
  return it->second;
}

Bytes RpcServer::Dispatch(ByteSpan request_bytes) const {
  Response response;
  Result<Request> request = DecodeRequest(request_bytes);
  if (!request.ok()) {
    response.status = request.status();
    return EncodeResponse(response);
  }
  response.call_id = request->call_id;

  RawHandler handler;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++dispatched_;
    auto it = handlers_.find({request->service, request->method});
    if (it == handlers_.end()) {
      response.status = NotFoundError("no handler for " + request->service + "." +
                                      request->method);
      return EncodeResponse(response);
    }
    handler = it->second;
  }

  Micros start = clock_ != nullptr ? clock_->NowMicros() : 0;
  Result<Bytes> payload = handler(AsSpan(request->payload));
  Micros elapsed = clock_ != nullptr ? clock_->NowMicros() - start : 0;
  Metrics().dispatches->Increment();
  if (!payload.ok()) {
    Metrics().handler_errors->Increment();
    response.status = payload.status();
  } else {
    response.payload = std::move(*payload);
  }
  if (obs::Enabled() && clock_ != nullptr) {
    Metrics().handler_us->Record(elapsed);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MethodMetrics& metrics = metrics_[{request->service, request->method}];
    metrics.service = request->service;
    metrics.method = request->method;
    ++metrics.calls;
    if (!payload.ok()) {
      ++metrics.errors;
    }
    metrics.handler_micros += elapsed;
  }
  return EncodeResponse(response);
}

std::uint64_t RpcServer::dispatched() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dispatched_;
}

std::vector<MethodMetrics> RpcServer::metrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MethodMetrics> out;
  out.reserve(metrics_.size());
  for (const auto& [key, metrics] : metrics_) {
    out.push_back(metrics);
  }
  return out;
}

}  // namespace sdb::rpc
