// Typed RPC stubs: CallMethod marshals a request struct, performs the round trip, and
// unmarshals the response struct; RegisterMethod is its server-side mirror. Together
// they are the reproduction's equivalent of the paper's automatically generated RPC
// stub modules — here the "generation" is done by templates over PickleTraits.
#ifndef SMALLDB_SRC_RPC_CLIENT_H_
#define SMALLDB_SRC_RPC_CLIENT_H_

#include <atomic>
#include <string>

#include "src/pickle/pickle.h"
#include "src/pickle/traits.h"
#include "src/rpc/message.h"
#include "src/rpc/server.h"
#include "src/rpc/transport.h"

namespace sdb::rpc {

namespace internal {
inline std::atomic<std::uint64_t> g_next_call_id{1};
}  // namespace internal

// Client-side stub: pickle the request, round-trip, unpickle the response.
template <typename Req, typename Resp>
Result<Resp> CallMethod(Channel& channel, std::string_view service, std::string_view method,
                        const Req& request_body) {
  Request request;
  request.call_id = internal::g_next_call_id.fetch_add(1);
  request.service = std::string(service);
  request.method = std::string(method);
  {
    PickleWriter writer;
    writer.Write(request_body);
    request.payload = std::move(writer).TakeRaw();
  }

  SDB_ASSIGN_OR_RETURN(Bytes response_bytes, channel.RoundTrip(AsSpan(EncodeRequest(request))));
  SDB_ASSIGN_OR_RETURN(Response response, DecodeResponse(AsSpan(response_bytes)));
  if (response.call_id != request.call_id) {
    return InternalError("RPC response call id mismatch");
  }
  SDB_RETURN_IF_ERROR(response.status);
  PickleReader reader = PickleReader::Raw(AsSpan(response.payload));
  Resp response_body{};
  SDB_RETURN_IF_ERROR(reader.Read(response_body).WithContext("unmarshalling RPC response"));
  return response_body;
}

// Server-side stub: unpickle the request, run the typed handler, pickle the response.
template <typename Req, typename Resp, typename Handler>
void RegisterMethod(RpcServer& server, std::string service, std::string method,
                    Handler handler) {
  server.Register(std::move(service), std::move(method),
                  [handler = std::move(handler)](ByteSpan payload) -> Result<Bytes> {
                    PickleReader reader = PickleReader::Raw(payload);
                    Req request{};
                    SDB_RETURN_IF_ERROR(
                        reader.Read(request).WithContext("unmarshalling RPC request"));
                    Result<Resp> response = handler(request);
                    SDB_RETURN_IF_ERROR(response.status());
                    PickleWriter writer;
                    writer.Write(*response);
                    return std::move(writer).TakeRaw();
                  });
}

}  // namespace sdb::rpc

#endif  // SMALLDB_SRC_RPC_CLIENT_H_
