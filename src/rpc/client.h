// Typed RPC stubs: CallMethod marshals a request struct, performs the round trip, and
// unmarshals the response struct; RegisterMethod is its server-side mirror. Together
// they are the reproduction's equivalent of the paper's automatically generated RPC
// stub modules — here the "generation" is done by templates over PickleTraits.
#ifndef SMALLDB_SRC_RPC_CLIENT_H_
#define SMALLDB_SRC_RPC_CLIENT_H_

#include <atomic>
#include <string>

#include "src/common/clock.h"
#include "src/obs/metrics.h"
#include "src/pickle/pickle.h"
#include "src/pickle/traits.h"
#include "src/rpc/message.h"
#include "src/rpc/server.h"
#include "src/rpc/transport.h"

namespace sdb::rpc {

namespace internal {
inline std::atomic<std::uint64_t> g_next_call_id{1};

// Process-wide client-stub metrics ("rpc.client.*" in obs::GlobalRegistry()):
// call/error/byte counters always, marshal/round-trip/unmarshal latency while
// obs::Enabled(). Shared by every CallMethod instantiation.
struct ClientStubMetrics {
  obs::Counter* calls;
  obs::Counter* errors;
  obs::Counter* request_bytes;
  obs::Counter* response_bytes;
  obs::Histogram* marshal_us;
  obs::Histogram* round_trip_us;
  obs::Histogram* unmarshal_us;
};
ClientStubMetrics& StubMetrics();
Micros StubNowMicros();  // monotonic wall clock for stage timing
}  // namespace internal

// Client-side stub: pickle the request, round-trip, unpickle the response.
template <typename Req, typename Resp>
Result<Resp> CallMethod(Channel& channel, std::string_view service, std::string_view method,
                        const Req& request_body) {
  internal::ClientStubMetrics& metrics = internal::StubMetrics();
  const bool timing = obs::Enabled();
  Micros t_start = timing ? internal::StubNowMicros() : 0;

  Request request;
  request.call_id = internal::g_next_call_id.fetch_add(1);
  request.service = std::string(service);
  request.method = std::string(method);
  {
    PickleWriter writer;
    writer.Write(request_body);
    request.payload = std::move(writer).TakeRaw();
  }
  Bytes encoded = EncodeRequest(request);
  metrics.calls->Increment();
  metrics.request_bytes->Add(encoded.size());
  Micros t_marshalled = timing ? internal::StubNowMicros() : 0;

  Result<Bytes> response_bytes = channel.RoundTrip(AsSpan(encoded));
  Micros t_returned = timing ? internal::StubNowMicros() : 0;
  if (timing) {
    metrics.marshal_us->Record(t_marshalled - t_start);
    metrics.round_trip_us->Record(t_returned - t_marshalled);
  }
  if (!response_bytes.ok()) {
    metrics.errors->Increment();
    return response_bytes.status();
  }
  metrics.response_bytes->Add(response_bytes->size());

  Result<Response> response = DecodeResponse(AsSpan(*response_bytes));
  if (!response.ok()) {
    metrics.errors->Increment();
    return response.status();
  }
  if (response->call_id != request.call_id) {
    metrics.errors->Increment();
    return InternalError("RPC response call id mismatch");
  }
  if (!response->status.ok()) {
    metrics.errors->Increment();
    return response->status;
  }
  PickleReader reader = PickleReader::Raw(AsSpan(response->payload));
  Resp response_body{};
  Status unmarshalled = reader.Read(response_body).WithContext("unmarshalling RPC response");
  if (timing) {
    metrics.unmarshal_us->Record(internal::StubNowMicros() - t_returned);
  }
  if (!unmarshalled.ok()) {
    metrics.errors->Increment();
    return unmarshalled;
  }
  return response_body;
}

// Server-side stub: unpickle the request, run the typed handler, pickle the response.
template <typename Req, typename Resp, typename Handler>
void RegisterMethod(RpcServer& server, std::string service, std::string method,
                    Handler handler) {
  server.Register(std::move(service), std::move(method),
                  [handler = std::move(handler)](ByteSpan payload) -> Result<Bytes> {
                    PickleReader reader = PickleReader::Raw(payload);
                    Req request{};
                    SDB_RETURN_IF_ERROR(
                        reader.Read(request).WithContext("unmarshalling RPC request"));
                    Result<Resp> response = handler(request);
                    SDB_RETURN_IF_ERROR(response.status());
                    PickleWriter writer;
                    writer.Write(*response);
                    return std::move(writer).TakeRaw();
                  });
}

// A typed planner's result: the prepare closure destined for the commit pipeline
// plus the response body to send when it commits.
template <typename Resp>
struct TypedUpdatePlan {
  std::function<Result<Bytes>()> prepare;
  Resp response{};
};

// Server-side stub for a *batchable* update method (see RpcServer::RegisterUpdate):
// unpickles the request, asks `plan` for a prepare + response, and pre-pickles the
// success response so the transport can answer straight from the commit outcome.
template <typename Req, typename Resp, typename Planner>
void RegisterUpdateMethod(RpcServer& server, std::string service, std::string method,
                          std::shared_ptr<UpdateSink> sink, Planner plan) {
  server.RegisterUpdate(
      std::move(service), std::move(method),
      [plan = std::move(plan)](ByteSpan payload) -> Result<PlannedUpdate> {
        PickleReader reader = PickleReader::Raw(payload);
        Req request{};
        SDB_RETURN_IF_ERROR(
            reader.Read(request).WithContext("unmarshalling RPC request"));
        Result<TypedUpdatePlan<Resp>> planned = plan(request);
        SDB_RETURN_IF_ERROR(planned.status());
        PickleWriter writer;
        writer.Write(planned->response);
        return PlannedUpdate{std::move(planned->prepare), std::move(writer).TakeRaw()};
      },
      std::move(sink));
}

}  // namespace sdb::rpc

#endif  // SMALLDB_SRC_RPC_CLIENT_H_
