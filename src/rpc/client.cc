#include "src/rpc/client.h"

#include "src/rpc/transport.h"

namespace sdb::rpc {

namespace internal {

ClientStubMetrics& StubMetrics() {
  static ClientStubMetrics metrics = [] {
    obs::Registry& registry = obs::GlobalRegistry();
    ClientStubMetrics m;
    m.calls = &registry.GetCounter("rpc.client.calls");
    m.errors = &registry.GetCounter("rpc.client.errors");
    m.request_bytes = &registry.GetCounter("rpc.client.request_bytes");
    m.response_bytes = &registry.GetCounter("rpc.client.response_bytes");
    m.marshal_us = &registry.GetHistogram("rpc.client.marshal_us");
    m.round_trip_us = &registry.GetHistogram("rpc.client.round_trip_us");
    m.unmarshal_us = &registry.GetHistogram("rpc.client.unmarshal_us");
    return m;
  }();
  return metrics;
}

Micros StubNowMicros() {
  static WallClock clock;
  return clock.NowMicros();
}

}  // namespace internal

Result<Bytes> LoopbackChannel::RoundTrip(ByteSpan request) {
  if (!connected_.load()) {
    return UnavailableError("network partition: server unreachable");
  }
  calls_.fetch_add(1);
  if (options_.clock != nullptr) {
    options_.clock->Charge(options_.round_trip_micros / 2);
  }
  Bytes response = server_.Dispatch(request);
  if (drop_responses_.load()) {
    // Half-open connection: the server executed the request, the reply died on the
    // way back. No return-leg latency — the caller times out, it doesn't wait.
    dropped_responses_.fetch_add(1);
    return UnavailableError("connection lost after send: response dropped");
  }
  if (options_.clock != nullptr) {
    options_.clock->Charge(options_.round_trip_micros - options_.round_trip_micros / 2);
  }
  return response;
}

}  // namespace sdb::rpc
