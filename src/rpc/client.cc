#include "src/rpc/client.h"

#include "src/rpc/transport.h"

namespace sdb::rpc {

Result<Bytes> LoopbackChannel::RoundTrip(ByteSpan request) {
  if (!connected_.load()) {
    return UnavailableError("network partition: server unreachable");
  }
  calls_.fetch_add(1);
  if (options_.clock != nullptr) {
    options_.clock->Charge(options_.round_trip_micros / 2);
  }
  Bytes response = server_.Dispatch(request);
  if (options_.clock != nullptr) {
    options_.clock->Charge(options_.round_trip_micros - options_.round_trip_micros / 2);
  }
  return response;
}

}  // namespace sdb::rpc
