// RpcServer: dispatches decoded requests to registered method handlers.
//
// Handlers receive the raw request payload and return the raw response payload; the
// typed layer in src/rpc/client.h (RegisterMethod / CallMethod) adds the strongly typed
// marshalling on both sides, playing the role of the paper's automatically generated
// stub modules.
#ifndef SMALLDB_SRC_RPC_SERVER_H_
#define SMALLDB_SRC_RPC_SERVER_H_

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/common/result.h"
#include "src/rpc/message.h"

namespace sdb::rpc {

using RawHandler = std::function<Result<Bytes>(ByteSpan payload)>;

// Per-method serving statistics (calls, application errors, handler time).
struct MethodMetrics {
  std::string service;
  std::string method;
  std::uint64_t calls = 0;
  std::uint64_t errors = 0;
  Micros handler_micros = 0;  // simulated handler time when a clock is attached
};

class RpcServer {
 public:
  // With a clock, per-method handler time is recorded (simulated time in benches).
  explicit RpcServer(Clock* clock = nullptr) : clock_(clock) {}

  // Registers the handler for service.method; replaces any previous registration.
  void Register(std::string service, std::string method, RawHandler handler);

  // Decodes `request`, invokes the handler, encodes the response. Never fails at the
  // transport level: all errors travel inside the encoded response.
  Bytes Dispatch(ByteSpan request) const;

  std::uint64_t dispatched() const;

  // Snapshot of per-method metrics, sorted by (service, method).
  std::vector<MethodMetrics> metrics() const;

 private:
  Clock* clock_;
  mutable std::mutex mutex_;
  std::map<std::pair<std::string, std::string>, RawHandler> handlers_;
  mutable std::map<std::pair<std::string, std::string>, MethodMetrics> metrics_;
  mutable std::uint64_t dispatched_ = 0;
};

}  // namespace sdb::rpc

#endif  // SMALLDB_SRC_RPC_SERVER_H_
