// RpcServer: dispatches decoded requests to registered method handlers.
//
// Handlers receive the raw request payload and return the raw response payload; the
// typed layer in src/rpc/client.h (RegisterMethod / CallMethod) adds the strongly typed
// marshalling on both sides, playing the role of the paper's automatically generated
// stub modules.
#ifndef SMALLDB_SRC_RPC_SERVER_H_
#define SMALLDB_SRC_RPC_SERVER_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/common/result.h"
#include "src/rpc/message.h"

namespace sdb::rpc {

using RawHandler = std::function<Result<Bytes>(ByteSpan payload)>;

// Where batchable update methods go to commit. Implemented over the engine
// (net::DatabaseUpdateSink wraps Database::UpdateMany); the interface lives here so
// the rpc layer stays independent of src/core. CommitMany blocks until every prepare
// is durable and applied or failed, returning per-prepare outcomes in input order —
// the transport may put plans from many connections into ONE call, which is how one
// fsync comes to cover requests from many sockets.
class UpdateSink {
 public:
  virtual ~UpdateSink() = default;
  virtual std::vector<Status> CommitMany(
      std::span<const std::function<Result<Bytes>()>> prepares) = 0;
};

// A decoded update request turned into engine terms: the prepare closure that will
// run under the update lock inside the commit pipeline, and the response payload to
// send if the commit succeeds (updates answer with small acks, so the success
// payload is known at plan time).
struct PlannedUpdate {
  std::function<Result<Bytes>()> prepare;
  Bytes response_payload;
};

// Converts a raw request payload into a PlannedUpdate. Runs on a transport thread
// with no engine lock held: it must only decode and capture, deferring every
// precondition check into the prepare closure.
using UpdatePlanner = std::function<Result<PlannedUpdate>(ByteSpan payload)>;

// A batchable update method's registration, as seen by transports.
struct UpdateEntry {
  UpdatePlanner planner;
  std::shared_ptr<UpdateSink> sink;
};

// Per-method serving statistics (calls, application errors, handler time).
struct MethodMetrics {
  std::string service;
  std::string method;
  std::uint64_t calls = 0;
  std::uint64_t errors = 0;
  Micros handler_micros = 0;  // simulated handler time when a clock is attached
};

class RpcServer {
 public:
  // With a clock, per-method handler time is recorded (simulated time in benches).
  explicit RpcServer(Clock* clock = nullptr) : clock_(clock) {}

  // Registers the handler for service.method; replaces any previous registration.
  void Register(std::string service, std::string method, RawHandler handler);

  // Registers a *batchable* update method: `planner` turns the request payload into
  // a prepare + success response, `sink` is where plans commit. Also installs a
  // normal handler (plan, commit a batch of one, answer), so Dispatch-based
  // transports serve the method identically; batching transports instead call
  // FindUpdate and coalesce many plans into one CommitMany.
  void RegisterUpdate(std::string service, std::string method, UpdatePlanner planner,
                      std::shared_ptr<UpdateSink> sink);

  // The batchable-update registration for service.method, if any. Copies the entry
  // (planner + sink handle), so the caller holds no lock while planning.
  std::optional<UpdateEntry> FindUpdate(const std::string& service,
                                        const std::string& method) const;

  // Decodes `request`, invokes the handler, encodes the response. Never fails at the
  // transport level: all errors travel inside the encoded response.
  Bytes Dispatch(ByteSpan request) const;

  std::uint64_t dispatched() const;

  // Snapshot of per-method metrics, sorted by (service, method).
  std::vector<MethodMetrics> metrics() const;

 private:
  Clock* clock_;
  mutable std::mutex mutex_;
  std::map<std::pair<std::string, std::string>, RawHandler> handlers_;
  std::map<std::pair<std::string, std::string>, UpdateEntry> updates_;
  mutable std::map<std::pair<std::string, std::string>, MethodMetrics> metrics_;
  mutable std::uint64_t dispatched_ = 0;
};

}  // namespace sdb::rpc

#endif  // SMALLDB_SRC_RPC_SERVER_H_
