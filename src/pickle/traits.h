// PickleTraits specializations for scalars, strings, standard containers, smart
// pointers (with pointer swizzling and cycle support), and user structs via the
// SDB_PICKLE_FIELDS macro.
#ifndef SMALLDB_SRC_PICKLE_TRAITS_H_
#define SMALLDB_SRC_PICKLE_TRAITS_H_

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "src/pickle/pickle.h"

namespace sdb {

namespace internal {

template <typename... Ts>
void WriteAll(PickleWriter& writer, const Ts&... values) {
  (writer.Write(values), ...);
}

template <typename... Ts>
Status ReadAll(PickleReader& reader, Ts&... values) {
  Status status;
  bool ok = (((status = reader.Read(values)).ok()) && ...);
  (void)ok;
  return status;
}

template <typename T>
concept HasPickleMembers = requires(const T& cv, T& v, PickleWriter& w, PickleReader& r) {
  { cv.PickleTo(w) };
  { v.PickleFieldsFrom(r) } -> std::same_as<Status>;
  { std::string_view(T::kPickleTypeName) };
};

}  // namespace internal

// Declares pickling for a struct by listing its members, e.g.
//   struct Point { int x; int y; SDB_PICKLE_FIELDS(Point, x, y) };
// The type must be default-constructible.
#define SDB_PICKLE_FIELDS(TypeName, ...)                                   \
  static constexpr std::string_view kPickleTypeName = #TypeName;          \
  void PickleTo(::sdb::PickleWriter& w) const {                           \
    ::sdb::internal::WriteAll(w, __VA_ARGS__);                            \
  }                                                                       \
  ::sdb::Status PickleFieldsFrom(::sdb::PickleReader& r) {                \
    return ::sdb::internal::ReadAll(r, __VA_ARGS__);                      \
  }

// Structs with SDB_PICKLE_FIELDS members.
template <typename T>
struct PickleTraits<T, std::enable_if_t<internal::HasPickleMembers<T>>> {
  static constexpr std::string_view kTypeName = T::kPickleTypeName;
  static void Write(PickleWriter& writer, const T& value) { value.PickleTo(writer); }
  static Status Read(PickleReader& reader, T& out) { return out.PickleFieldsFrom(reader); }
};

// Unsigned integers -> varint; signed -> zigzag varint.
template <typename T>
struct PickleTraits<T, std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>>> {
  static void Write(PickleWriter& writer, T value) {
    if constexpr (std::is_signed_v<T>) {
      writer.bytes().PutVarintSigned(static_cast<std::int64_t>(value));
    } else {
      writer.bytes().PutVarint(static_cast<std::uint64_t>(value));
    }
  }
  static Status Read(PickleReader& reader, T& out) {
    if constexpr (std::is_signed_v<T>) {
      SDB_ASSIGN_OR_RETURN(std::int64_t v, reader.bytes().ReadVarintSigned());
      out = static_cast<T>(v);
    } else {
      SDB_ASSIGN_OR_RETURN(std::uint64_t v, reader.bytes().ReadVarint());
      out = static_cast<T>(v);
    }
    return OkStatus();
  }
};

template <>
struct PickleTraits<bool> {
  static void Write(PickleWriter& writer, bool value) { writer.bytes().PutU8(value ? 1 : 0); }
  static Status Read(PickleReader& reader, bool& out) {
    SDB_ASSIGN_OR_RETURN(std::uint8_t v, reader.bytes().ReadU8());
    if (v > 1) {
      return CorruptionError("invalid bool encoding");
    }
    out = v != 0;
    return OkStatus();
  }
};

template <typename T>
struct PickleTraits<T, std::enable_if_t<std::is_floating_point_v<T>>> {
  static void Write(PickleWriter& writer, T value) {
    writer.bytes().PutF64(static_cast<double>(value));
  }
  static Status Read(PickleReader& reader, T& out) {
    SDB_ASSIGN_OR_RETURN(double v, reader.bytes().ReadF64());
    out = static_cast<T>(v);
    return OkStatus();
  }
};

template <typename T>
struct PickleTraits<T, std::enable_if_t<std::is_enum_v<T>>> {
  static void Write(PickleWriter& writer, T value) {
    writer.bytes().PutVarint(static_cast<std::uint64_t>(value));
  }
  static Status Read(PickleReader& reader, T& out) {
    SDB_ASSIGN_OR_RETURN(std::uint64_t v, reader.bytes().ReadVarint());
    out = static_cast<T>(v);
    return OkStatus();
  }
};

template <>
struct PickleTraits<std::string> {
  static void Write(PickleWriter& writer, const std::string& value) {
    writer.bytes().PutLengthPrefixed(value);
  }
  static Status Read(PickleReader& reader, std::string& out) {
    SDB_ASSIGN_OR_RETURN(out, reader.bytes().ReadLengthPrefixedString());
    return OkStatus();
  }
};

template <>
struct PickleTraits<Bytes> {
  static void Write(PickleWriter& writer, const Bytes& value) {
    writer.bytes().PutLengthPrefixed(AsSpan(value));
  }
  static Status Read(PickleReader& reader, Bytes& out) {
    SDB_ASSIGN_OR_RETURN(ByteSpan view, reader.bytes().ReadLengthPrefixed());
    out.assign(view.begin(), view.end());
    return OkStatus();
  }
};

template <typename T>
struct PickleTraits<std::vector<T>> {
  static void Write(PickleWriter& writer, const std::vector<T>& value) {
    writer.bytes().PutVarint(value.size());
    for (const T& element : value) {
      writer.Write(element);
    }
  }
  static Status Read(PickleReader& reader, std::vector<T>& out) {
    SDB_ASSIGN_OR_RETURN(std::uint64_t count, reader.bytes().ReadVarint());
    if (count > reader.bytes().remaining()) {
      // Each element takes at least one byte; reject absurd counts before allocating.
      return CorruptionError("vector count exceeds remaining payload");
    }
    out.clear();
    out.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      T element{};
      SDB_RETURN_IF_ERROR(reader.Read(element));
      out.push_back(std::move(element));
    }
    return OkStatus();
  }
};

template <typename A, typename B>
struct PickleTraits<std::pair<A, B>> {
  static void Write(PickleWriter& writer, const std::pair<A, B>& value) {
    writer.Write(value.first);
    writer.Write(value.second);
  }
  static Status Read(PickleReader& reader, std::pair<A, B>& out) {
    SDB_RETURN_IF_ERROR(reader.Read(out.first));
    return reader.Read(out.second);
  }
};

namespace internal {

template <typename Map>
void WriteMap(PickleWriter& writer, const Map& value) {
  writer.bytes().PutVarint(value.size());
  for (const auto& [key, mapped] : value) {
    writer.Write(key);
    writer.Write(mapped);
  }
}

template <typename Map>
Status ReadMap(PickleReader& reader, Map& out) {
  SDB_ASSIGN_OR_RETURN(std::uint64_t count, reader.bytes().ReadVarint());
  if (count > reader.bytes().remaining()) {
    return CorruptionError("map count exceeds remaining payload");
  }
  out.clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    typename Map::key_type key{};
    typename Map::mapped_type mapped{};
    SDB_RETURN_IF_ERROR(reader.Read(key));
    SDB_RETURN_IF_ERROR(reader.Read(mapped));
    if (!out.emplace(std::move(key), std::move(mapped)).second) {
      return CorruptionError("duplicate key in pickled map");
    }
  }
  return OkStatus();
}

}  // namespace internal

template <typename K, typename V, typename C>
struct PickleTraits<std::map<K, V, C>> {
  static void Write(PickleWriter& writer, const std::map<K, V, C>& value) {
    internal::WriteMap(writer, value);
  }
  static Status Read(PickleReader& reader, std::map<K, V, C>& out) {
    return internal::ReadMap(reader, out);
  }
};

template <typename K, typename V, typename H, typename E>
struct PickleTraits<std::unordered_map<K, V, H, E>> {
  static void Write(PickleWriter& writer, const std::unordered_map<K, V, H, E>& value) {
    internal::WriteMap(writer, value);
  }
  static Status Read(PickleReader& reader, std::unordered_map<K, V, H, E>& out) {
    return internal::ReadMap(reader, out);
  }
};

template <typename T, typename C>
struct PickleTraits<std::set<T, C>> {
  static void Write(PickleWriter& writer, const std::set<T, C>& value) {
    writer.bytes().PutVarint(value.size());
    for (const T& element : value) {
      writer.Write(element);
    }
  }
  static Status Read(PickleReader& reader, std::set<T, C>& out) {
    SDB_ASSIGN_OR_RETURN(std::uint64_t count, reader.bytes().ReadVarint());
    if (count > reader.bytes().remaining()) {
      return CorruptionError("set count exceeds remaining payload");
    }
    out.clear();
    for (std::uint64_t i = 0; i < count; ++i) {
      T element{};
      SDB_RETURN_IF_ERROR(reader.Read(element));
      if (!out.insert(std::move(element)).second) {
        return CorruptionError("duplicate element in pickled set");
      }
    }
    return OkStatus();
  }
};

template <typename T>
struct PickleTraits<std::optional<T>> {
  static void Write(PickleWriter& writer, const std::optional<T>& value) {
    writer.bytes().PutU8(value.has_value() ? 1 : 0);
    if (value.has_value()) {
      writer.Write(*value);
    }
  }
  static Status Read(PickleReader& reader, std::optional<T>& out) {
    SDB_ASSIGN_OR_RETURN(std::uint8_t present, reader.bytes().ReadU8());
    if (present > 1) {
      return CorruptionError("invalid optional encoding");
    }
    if (present == 0) {
      out.reset();
      return OkStatus();
    }
    T value{};
    SDB_RETURN_IF_ERROR(reader.Read(value));
    out = std::move(value);
    return OkStatus();
  }
};

// shared_ptr: pointer swizzling. Shared structure is written once and re-referenced by
// id; cycles are supported because the object is registered in the read-side swizzle
// table before its fields are read. T must be default-constructible.
template <typename T>
struct PickleTraits<std::shared_ptr<T>> {
  static void Write(PickleWriter& writer, const std::shared_ptr<T>& value) {
    if (value == nullptr) {
      writer.bytes().PutVarint(0);
      return;
    }
    std::uint32_t id = 0;
    bool seen = writer.SwizzleRef(value.get(), &id);
    writer.bytes().PutVarint(id);
    writer.bytes().PutU8(seen ? 0 : 1);
    if (!seen) {
      writer.Write(*value);
    }
  }
  static Status Read(PickleReader& reader, std::shared_ptr<T>& out) {
    SDB_ASSIGN_OR_RETURN(std::uint64_t id, reader.bytes().ReadVarint());
    if (id == 0) {
      out = nullptr;
      return OkStatus();
    }
    SDB_ASSIGN_OR_RETURN(std::uint8_t has_body, reader.bytes().ReadU8());
    if (has_body > 1) {
      return CorruptionError("invalid shared_ptr encoding");
    }
    if (has_body == 0) {
      auto cached = reader.SwizzleGet(static_cast<std::uint32_t>(id));
      if (cached == nullptr) {
        return CorruptionError("dangling swizzle reference");
      }
      out = std::static_pointer_cast<T>(cached);
      return OkStatus();
    }
    auto object = std::make_shared<T>();
    reader.SwizzlePut(static_cast<std::uint32_t>(id), object);
    SDB_RETURN_IF_ERROR(reader.Read(*object));
    out = std::move(object);
    return OkStatus();
  }
};

// std::array: fixed element count, no length prefix needed.
template <typename T, std::size_t N>
struct PickleTraits<std::array<T, N>> {
  static void Write(PickleWriter& writer, const std::array<T, N>& value) {
    for (const T& element : value) {
      writer.Write(element);
    }
  }
  static Status Read(PickleReader& reader, std::array<T, N>& out) {
    for (T& element : out) {
      SDB_RETURN_IF_ERROR(reader.Read(element));
    }
    return OkStatus();
  }
};

template <typename T>
struct PickleTraits<std::deque<T>> {
  static void Write(PickleWriter& writer, const std::deque<T>& value) {
    writer.bytes().PutVarint(value.size());
    for (const T& element : value) {
      writer.Write(element);
    }
  }
  static Status Read(PickleReader& reader, std::deque<T>& out) {
    SDB_ASSIGN_OR_RETURN(std::uint64_t count, reader.bytes().ReadVarint());
    if (count > reader.bytes().remaining()) {
      return CorruptionError("deque count exceeds remaining payload");
    }
    out.clear();
    for (std::uint64_t i = 0; i < count; ++i) {
      T element{};
      SDB_RETURN_IF_ERROR(reader.Read(element));
      out.push_back(std::move(element));
    }
    return OkStatus();
  }
};

template <typename... Ts>
struct PickleTraits<std::tuple<Ts...>> {
  static void Write(PickleWriter& writer, const std::tuple<Ts...>& value) {
    std::apply([&writer](const Ts&... elements) { (writer.Write(elements), ...); }, value);
  }
  static Status Read(PickleReader& reader, std::tuple<Ts...>& out) {
    Status status;
    std::apply(
        [&reader, &status](Ts&... elements) {
          bool ok = (((status = reader.Read(elements)).ok()) && ...);
          (void)ok;
        },
        out);
    return status;
  }
};

// std::variant: a one-byte alternative index followed by the alternative's encoding.
template <typename... Ts>
struct PickleTraits<std::variant<Ts...>> {
  static_assert(sizeof...(Ts) <= 255, "variant too wide for one-byte tag");

  static void Write(PickleWriter& writer, const std::variant<Ts...>& value) {
    writer.bytes().PutU8(static_cast<std::uint8_t>(value.index()));
    std::visit([&writer](const auto& alternative) { writer.Write(alternative); }, value);
  }

  static Status Read(PickleReader& reader, std::variant<Ts...>& out) {
    SDB_ASSIGN_OR_RETURN(std::uint8_t index, reader.bytes().ReadU8());
    if (index >= sizeof...(Ts)) {
      return CorruptionError("variant index out of range");
    }
    return ReadAlternative(reader, out, index, std::index_sequence_for<Ts...>{});
  }

 private:
  template <std::size_t... Is>
  static Status ReadAlternative(PickleReader& reader, std::variant<Ts...>& out,
                                std::uint8_t index, std::index_sequence<Is...>) {
    Status status = CorruptionError("variant dispatch failed");
    auto try_one = [&](auto index_constant) {
      constexpr std::size_t kIndex = decltype(index_constant)::value;
      if (index == kIndex) {
        std::variant_alternative_t<kIndex, std::variant<Ts...>> alternative{};
        status = reader.Read(alternative);
        if (status.ok()) {
          out.template emplace<kIndex>(std::move(alternative));
        }
        return true;
      }
      return false;
    };
    (try_one(std::integral_constant<std::size_t, Is>{}) || ...);
    return status;
  }
};

// unique_ptr: simple presence-prefixed body (no sharing possible by construction).
template <typename T>
struct PickleTraits<std::unique_ptr<T>> {
  static void Write(PickleWriter& writer, const std::unique_ptr<T>& value) {
    writer.bytes().PutU8(value != nullptr ? 1 : 0);
    if (value != nullptr) {
      writer.Write(*value);
    }
  }
  static Status Read(PickleReader& reader, std::unique_ptr<T>& out) {
    SDB_ASSIGN_OR_RETURN(std::uint8_t present, reader.bytes().ReadU8());
    if (present > 1) {
      return CorruptionError("invalid unique_ptr encoding");
    }
    if (present == 0) {
      out = nullptr;
      return OkStatus();
    }
    out = std::make_unique<T>();
    return reader.Read(*out);
  }
};

}  // namespace sdb

#endif  // SMALLDB_SRC_PICKLE_TRAITS_H_
