#include "src/pickle/pickle.h"

#include "src/common/crc.h"
#include "src/obs/metrics.h"

namespace sdb {
namespace {

constexpr std::string_view kMagic = "SDBP";
constexpr std::uint8_t kVersion = 1;

// Process-wide envelope traffic counters ("pickle.*" in obs::GlobalRegistry()):
// how many whole-state pickles were produced/consumed and their byte volume.
struct EnvelopeMetrics {
  obs::Counter* writes;
  obs::Counter* write_bytes;
  obs::Counter* reads;
  obs::Counter* read_bytes;
};

EnvelopeMetrics& Metrics() {
  static EnvelopeMetrics m = [] {
    obs::Registry& registry = obs::GlobalRegistry();
    return EnvelopeMetrics{&registry.GetCounter("pickle.envelope.writes"),
                           &registry.GetCounter("pickle.envelope.write_bytes"),
                           &registry.GetCounter("pickle.envelope.reads"),
                           &registry.GetCounter("pickle.envelope.read_bytes")};
  }();
  return m;
}

}  // namespace

bool PickleWriter::SwizzleRef(const void* ptr, std::uint32_t* id) {
  auto [it, inserted] = swizzle_.try_emplace(ptr, next_swizzle_id_);
  if (inserted) {
    ++next_swizzle_id_;
  }
  *id = it->second;
  return !inserted;
}

Bytes PickleWriter::FinishEnvelope(std::string_view type_name, const CostModel* cost) && {
  Bytes payload = std::move(writer_).Take();
  ByteWriter envelope;
  envelope.PutBytes(kMagic);
  envelope.PutU8(kVersion);
  envelope.PutLengthPrefixed(type_name);
  envelope.PutLengthPrefixed(AsSpan(payload));
  std::uint32_t crc = Crc32c(AsSpan(envelope.buffer()));
  envelope.PutU32(MaskCrc(crc));
  Bytes out = std::move(envelope).Take();
  Metrics().writes->Increment();
  Metrics().write_bytes->Add(out.size());
  if (cost != nullptr) {
    cost->ChargePickleWrite(out.size());
  }
  return out;
}

Result<PickleReader> PickleReader::FromEnvelope(ByteSpan data, std::string_view expected_type,
                                                const CostModel* cost) {
  Metrics().reads->Increment();
  Metrics().read_bytes->Add(data.size());
  if (cost != nullptr) {
    cost->ChargePickleRead(data.size());
  }
  if (data.size() < kMagic.size() + 1 + 4) {
    return CorruptionError("pickle envelope too small");
  }
  // CRC first: a torn pickle must fail closed before any field is interpreted.
  std::size_t body_size = data.size() - 4;
  ByteReader crc_reader(data.subspan(body_size));
  SDB_ASSIGN_OR_RETURN(std::uint32_t stored_masked, crc_reader.ReadU32());
  std::uint32_t actual = Crc32c(data.subspan(0, body_size));
  if (UnmaskCrc(stored_masked) != actual) {
    return CorruptionError("pickle CRC mismatch");
  }

  ByteReader header(data.subspan(0, body_size));
  SDB_ASSIGN_OR_RETURN(ByteSpan magic, header.ReadBytes(kMagic.size()));
  if (AsStringView(magic) != kMagic) {
    return CorruptionError("bad pickle magic");
  }
  SDB_ASSIGN_OR_RETURN(std::uint8_t version, header.ReadU8());
  if (version != kVersion) {
    return CorruptionError("unsupported pickle version " + std::to_string(version));
  }
  SDB_ASSIGN_OR_RETURN(ByteSpan type_name, header.ReadLengthPrefixed());
  if (!expected_type.empty() && expected_type != "?" && AsStringView(type_name) != "?" &&
      AsStringView(type_name) != expected_type) {
    return CorruptionError("pickle type mismatch: stored '" +
                           std::string(AsStringView(type_name)) + "', expected '" +
                           std::string(expected_type) + "'");
  }
  SDB_ASSIGN_OR_RETURN(ByteSpan payload, header.ReadLengthPrefixed());
  if (!header.AtEnd()) {
    return CorruptionError("trailing bytes in pickle envelope");
  }
  return PickleReader(payload);
}

Result<std::string> PeekEnvelopeType(ByteSpan data) {
  if (data.size() < kMagic.size() + 1 + 4) {
    return CorruptionError("pickle envelope too small");
  }
  std::size_t body_size = data.size() - 4;
  ByteReader crc_reader(data.subspan(body_size));
  SDB_ASSIGN_OR_RETURN(std::uint32_t stored_masked, crc_reader.ReadU32());
  if (UnmaskCrc(stored_masked) != Crc32c(data.subspan(0, body_size))) {
    return CorruptionError("pickle CRC mismatch");
  }
  ByteReader header(data.subspan(0, body_size));
  SDB_ASSIGN_OR_RETURN(ByteSpan magic, header.ReadBytes(kMagic.size()));
  if (AsStringView(magic) != kMagic) {
    return CorruptionError("bad pickle magic");
  }
  SDB_ASSIGN_OR_RETURN(std::uint8_t version, header.ReadU8());
  (void)version;
  SDB_ASSIGN_OR_RETURN(std::string type_name, header.ReadLengthPrefixedString());
  return type_name;
}

std::shared_ptr<void> PickleReader::SwizzleGet(std::uint32_t id) const {
  auto it = swizzle_.find(id);
  return it == swizzle_.end() ? nullptr : it->second;
}

void PickleReader::SwizzlePut(std::uint32_t id, std::shared_ptr<void> object) {
  swizzle_[id] = std::move(object);
}

}  // namespace sdb
