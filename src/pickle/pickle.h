// The pickle package: conversion between strongly typed data structures and
// disk/network bit representations — this reproduction's counterpart of the paper's
// Section 6 "pickles" (PickleWrite / PickleRead).
//
// Two layers exist, mirroring the paper's own footnote about its two mechanisms:
//   - This header: a statically typed, template-driven layer (like the paper's RPC
//     marshalling, which "works only by generating code for the marshalling of
//     statically typed values"). Used for log records, RPC messages and plain structs.
//   - src/typedheap/heap_pickle.h: a runtime-type-driven layer for heap graphs, driven
//     by the same runtime type descriptors the garbage collector uses (like the paper's
//     pickles, which "work only by interpreting at run-time the structure of
//     dynamically typed values").
//
// Envelope format (everything little-endian):
//   "SDBP" magic | u8 version | length-prefixed type name | varint payload size |
//   payload | u32 masked CRC32C over everything before the CRC
//
// The CRC makes a truncated or torn pickle detectable, which is what lets recovery
// discard a partially written log entry (paper Section 4).
#ifndef SMALLDB_SRC_PICKLE_PICKLE_H_
#define SMALLDB_SRC_PICKLE_PICKLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/cost_model.h"
#include "src/common/result.h"
#include "src/common/status.h"

namespace sdb {

class PickleWriter;
class PickleReader;

// Primary trait: specialize (or give your type the SDB_PICKLE_FIELDS members) to make a
// type picklable. Specializations for scalars, strings and standard containers live in
// src/pickle/traits.h.
template <typename T, typename Enable = void>
struct PickleTraits;

// --- writer ---

class PickleWriter {
 public:
  PickleWriter() = default;

  ByteWriter& bytes() { return writer_; }

  template <typename T>
  void Write(const T& value) {
    PickleTraits<std::decay_t<T>>::Write(*this, value);
  }

  // Pointer-swizzling support (paper: "identifying the occurrences of addresses in the
  // structure"). Returns true and sets *id if `ptr` was already pickled; otherwise
  // assigns a fresh id, records it, sets *id and returns false (caller then writes the
  // object body once). Ids start at 1; 0 is reserved for null.
  bool SwizzleRef(const void* ptr, std::uint32_t* id);

  std::size_t size() const { return writer_.size(); }

  // Raw payload, no envelope (RPC marshalling uses this).
  Bytes TakeRaw() && { return std::move(writer_).Take(); }

  // Wraps the payload in the self-identifying, CRC-protected envelope.
  Bytes FinishEnvelope(std::string_view type_name, const CostModel* cost = nullptr) &&;

 private:
  ByteWriter writer_;
  std::map<const void*, std::uint32_t> swizzle_;
  std::uint32_t next_swizzle_id_ = 1;
};

// --- reader ---

class PickleReader {
 public:
  // Raw payload reader (no envelope), for RPC messages.
  static PickleReader Raw(ByteSpan payload) { return PickleReader(payload); }

  // Verifies the envelope (magic, version, type name if `expected_type` is non-empty,
  // CRC) and positions the reader at the payload. `data` must outlive the reader.
  static Result<PickleReader> FromEnvelope(ByteSpan data, std::string_view expected_type,
                                           const CostModel* cost = nullptr);

  ByteReader& bytes() { return reader_; }

  template <typename T>
  Status Read(T& out) {
    return PickleTraits<std::decay_t<T>>::Read(*this, out);
  }

  template <typename T>
  Result<T> ReadValue() {
    T out{};
    SDB_RETURN_IF_ERROR(Read(out));
    return out;
  }

  // Swizzle table for read-back: maps ids assigned at write time to reconstructed
  // objects. Registering the object *before* reading its fields supports cycles.
  std::shared_ptr<void> SwizzleGet(std::uint32_t id) const;
  void SwizzlePut(std::uint32_t id, std::shared_ptr<void> object);

  // Schema-evolution helper: reads `out` only if payload bytes remain, returning
  // whether it did. Lets a struct append fields over time — a new reader of an old
  // pickle leaves the new fields at their defaults:
  //
  //   Status PickleFieldsFrom(PickleReader& r) {
  //     SDB_RETURN_IF_ERROR(internal::ReadAll(r, old_field_a, old_field_b));
  //     (void)r.ReadTailField(new_field_c);   // absent in v1 pickles
  //     return OkStatus();
  //   }
  //
  // Tail fields must themselves be appended in order and never removed, and this is
  // only sound for the OUTERMOST value of a pickle payload (nested structs would see
  // the enclosing value's bytes as their own tail).
  template <typename T>
  Result<bool> ReadTailField(T& out) {
    if (reader_.AtEnd()) {
      return false;
    }
    SDB_RETURN_IF_ERROR(Read(out));
    return true;
  }

 private:
  explicit PickleReader(ByteSpan payload) : reader_(payload) {}

  ByteReader reader_;
  std::unordered_map<std::uint32_t, std::shared_ptr<void>> swizzle_;
};

// --- envelope convenience functions (the paper's PickleWrite / PickleRead) ---

namespace internal {

template <typename T>
concept HasPickleTypeName = requires { std::string_view(PickleTraits<T>::kTypeName); };

template <typename T>
constexpr std::string_view PickleTypeNameOf() {
  if constexpr (HasPickleTypeName<T>) {
    return PickleTraits<T>::kTypeName;
  } else {
    return "?";
  }
}

}  // namespace internal

// Reads just the stored type name out of an envelope, verifying magic and CRC first.
// Used by offline inspection tools that do not know the pickled type.
Result<std::string> PeekEnvelopeType(ByteSpan data);

// Converts a strongly typed value into bits suitable for preserving on disk.
template <typename T>
Bytes PickleWrite(const T& value, const CostModel* cost = nullptr) {
  PickleWriter writer;
  writer.Write(value);
  return std::move(writer).FinishEnvelope(internal::PickleTypeNameOf<T>(), cost);
}

// Reads bits from disk and delivers a copy of the original data structure.
template <typename T>
Result<T> PickleRead(ByteSpan data, const CostModel* cost = nullptr) {
  SDB_ASSIGN_OR_RETURN(PickleReader reader, PickleReader::FromEnvelope(
                                                data, internal::PickleTypeNameOf<T>(), cost));
  T out{};
  SDB_RETURN_IF_ERROR(reader.Read(out));
  return out;
}

}  // namespace sdb

#endif  // SMALLDB_SRC_PICKLE_PICKLE_H_
