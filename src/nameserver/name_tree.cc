#include "src/nameserver/name_tree.h"

namespace sdb::ns {

Result<std::vector<std::string>> SplitPath(std::string_view path) {
  std::vector<std::string> parts;
  if (path.empty()) {
    return parts;
  }
  std::size_t begin = 0;
  while (begin <= path.size()) {
    std::size_t end = path.find('/', begin);
    if (end == std::string_view::npos) {
      end = path.size();
    }
    if (end == begin) {
      return InvalidArgumentError("empty component in path '" + std::string(path) + "'");
    }
    parts.emplace_back(path.substr(begin, end - begin));
    begin = end + 1;
    if (begin == path.size() + 1) {
      break;
    }
  }
  return parts;
}

NameTree::NameTree(const CostModel* cost) : cost_(cost) {
  node_type_ = registry_
                   .Register("ns.node",
                             {
                                 {"children", th::FieldKind::kStringRefMap},
                                 {"value", th::FieldKind::kString},
                                 {"has_value", th::FieldKind::kInt},
                                 {"lamport", th::FieldKind::kInt},
                                 {"origin", th::FieldKind::kString},
                                 {"cleared_lamport", th::FieldKind::kInt},
                                 {"cleared_origin", th::FieldKind::kString},
                                 {"live", th::FieldKind::kInt},
                             })
                   .value();
  f_children_ = node_type_->FieldIndex("children").value();
  f_value_ = node_type_->FieldIndex("value").value();
  f_has_value_ = node_type_->FieldIndex("has_value").value();
  f_lamport_ = node_type_->FieldIndex("lamport").value();
  f_origin_ = node_type_->FieldIndex("origin").value();
  f_cleared_lamport_ = node_type_->FieldIndex("cleared_lamport").value();
  f_cleared_origin_ = node_type_->FieldIndex("cleared_origin").value();
  f_live_ = node_type_->FieldIndex("live").value();
  root_ = AllocateNode();
  heap_.AddRoot(root_);
}

th::Object* NameTree::AllocateNode() { return heap_.Allocate(node_type_); }

VersionStamp NameTree::ValueStampOf(const th::Object* node) const {
  return VersionStamp{static_cast<std::uint64_t>(node->GetInt(f_lamport_).value()),
                      *node->GetString(f_origin_).value()};
}

VersionStamp NameTree::ClearedStampOf(const th::Object* node) const {
  return VersionStamp{static_cast<std::uint64_t>(node->GetInt(f_cleared_lamport_).value()),
                      *node->GetString(f_cleared_origin_).value()};
}

void NameTree::SetClearedStamp(th::Object* node, const VersionStamp& stamp) {
  (void)node->SetInt(f_cleared_lamport_, static_cast<std::int64_t>(stamp.lamport));
  (void)node->SetString(f_cleared_origin_, stamp.origin);
}

std::int64_t NameTree::LiveOf(const th::Object* node) const {
  return node->GetInt(f_live_).value();
}

th::Object* NameTree::Walk(const std::vector<std::string>& parts,
                           VersionStamp* floor_out) const {
  th::Object* node = root_;
  VersionStamp floor = ClearedStampOf(node);
  for (const std::string& part : parts) {
    if (cost_ != nullptr) {
      cost_->ChargeExplore(1);
    }
    Result<th::Object*> child = node->MapGet(f_children_, part);
    if (!child.ok()) {
      if (floor_out != nullptr) {
        *floor_out = floor;
      }
      return nullptr;
    }
    node = *child;
    floor = MaxStamp(floor, ClearedStampOf(node));
  }
  if (floor_out != nullptr) {
    *floor_out = floor;
  }
  return node;
}

Result<std::string> NameTree::Lookup(std::string_view path) const {
  SDB_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  th::Object* node = Walk(parts);
  if (node == nullptr) {
    return NotFoundError("no such name: " + std::string(path));
  }
  SDB_ASSIGN_OR_RETURN(std::int64_t has_value, node->GetInt(f_has_value_));
  if (has_value == 0) {
    return NotFoundError("name has no value: " + std::string(path));
  }
  SDB_ASSIGN_OR_RETURN(const std::string* value, node->GetString(f_value_));
  return *value;
}

Result<std::vector<std::string>> NameTree::List(std::string_view path) const {
  SDB_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  th::Object* node = Walk(parts);
  if (node == nullptr || (LiveOf(node) == 0 && !parts.empty())) {
    return NotFoundError("no such name: " + std::string(path));
  }
  SDB_ASSIGN_OR_RETURN(const th::Object::StringRefMap* children, node->MapView(f_children_));
  std::vector<std::string> labels;
  labels.reserve(children->size());
  for (const auto& [label, child] : *children) {
    if (cost_ != nullptr) {
      cost_->ChargeExplore(1);
    }
    if (LiveOf(child) > 0) {
      labels.push_back(label);
    }
  }
  return labels;
}

bool NameTree::Exists(std::string_view path) const {
  Result<std::vector<std::string>> parts = SplitPath(path);
  if (!parts.ok()) {
    return false;
  }
  th::Object* node = Walk(*parts);
  return node != nullptr && LiveOf(node) > 0;
}

Result<std::vector<std::pair<std::string, std::string>>> NameTree::Export(
    std::string_view path) const {
  SDB_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  th::Object* start = Walk(parts);
  if (start == nullptr || (LiveOf(start) == 0 && !parts.empty())) {
    return NotFoundError("no such name: " + std::string(path));
  }
  std::vector<std::pair<std::string, std::string>> bindings;
  // Explicit stack of (node, absolute path); children maps are ordered, so pushing in
  // reverse keeps the output sorted.
  std::vector<std::pair<th::Object*, std::string>> stack{{start, std::string(path)}};
  while (!stack.empty()) {
    auto [node, node_path] = stack.back();
    stack.pop_back();
    SDB_ASSIGN_OR_RETURN(std::int64_t has_value, node->GetInt(f_has_value_));
    if (has_value != 0) {
      SDB_ASSIGN_OR_RETURN(const std::string* value, node->GetString(f_value_));
      bindings.emplace_back(node_path, *value);
    }
    SDB_ASSIGN_OR_RETURN(const th::Object::StringRefMap* children,
                         node->MapView(f_children_));
    for (auto it = children->rbegin(); it != children->rend(); ++it) {
      if (cost_ != nullptr) {
        cost_->ChargeExplore(1);
      }
      if (LiveOf(it->second) == 0) {
        continue;  // dead branch (tombstones only)
      }
      std::string child_path = node_path.empty() ? it->first : node_path + "/" + it->first;
      stack.emplace_back(it->second, std::move(child_path));
    }
  }
  return bindings;
}

Result<bool> NameTree::Set(std::string_view path, std::string_view value,
                           const VersionStamp& stamp) {
  SDB_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  if (parts.empty()) {
    return InvalidArgumentError("cannot set a value on the root");
  }
  // Walk (creating intermediates as needed), remembering the path for the live-count
  // update, and accumulating the cleared floor.
  std::vector<th::Object*> chain{root_};
  VersionStamp floor = ClearedStampOf(root_);
  th::Object* node = root_;
  for (const std::string& part : parts) {
    if (cost_ != nullptr) {
      cost_->ChargeExplore(1);
    }
    Result<th::Object*> child = node->MapGet(f_children_, part);
    if (child.ok()) {
      node = *child;
    } else {
      if (cost_ != nullptr) {
        cost_->ChargeModify(1);
      }
      th::Object* fresh = AllocateNode();
      SDB_RETURN_IF_ERROR(node->MapSet(f_children_, part, fresh));
      node = fresh;
    }
    chain.push_back(node);
    floor = MaxStamp(floor, ClearedStampOf(node));
  }

  VersionStamp current = MaxStamp(ValueStampOf(node), floor);
  if (!(current < stamp)) {
    return false;  // an equal-or-newer write or tombstone already covers this
  }
  if (cost_ != nullptr) {
    cost_->ChargeModify(2);
  }
  SDB_ASSIGN_OR_RETURN(std::int64_t had_value, node->GetInt(f_has_value_));
  SDB_RETURN_IF_ERROR(node->SetString(f_value_, std::string(value)));
  SDB_RETURN_IF_ERROR(node->SetInt(f_has_value_, 1));
  SDB_RETURN_IF_ERROR(node->SetInt(f_lamport_, static_cast<std::int64_t>(stamp.lamport)));
  SDB_RETURN_IF_ERROR(node->SetString(f_origin_, stamp.origin));
  if (had_value == 0) {
    for (th::Object* ancestor : chain) {
      SDB_RETURN_IF_ERROR(ancestor->SetInt(f_live_, LiveOf(ancestor) + 1));
    }
  }
  return true;
}

std::int64_t NameTree::ClearSubtree(th::Object* node, const VersionStamp& stamp,
                                    const VersionStamp& floor, bool* changed) {
  // Clear this node's value if older than the tombstone.
  std::int64_t has_value = node->GetInt(f_has_value_).value();
  if (has_value != 0 && ValueStampOf(node) < stamp) {
    (void)node->SetString(f_value_, "");
    (void)node->SetInt(f_has_value_, 0);
    *changed = true;
  }
  // Recurse; prune children that carry no information afterwards. A child is prunable
  // when it has no value, no children, and its own tombstone is dominated by the
  // cleared floor above it (so dropping it loses nothing).
  VersionStamp child_floor = MaxStamp(floor, MaxStamp(ClearedStampOf(node), stamp));
  const th::Object::StringRefMap* children = node->MapView(f_children_).value();
  std::vector<std::string> prunable;
  std::int64_t live = node->GetInt(f_has_value_).value() != 0 ? 1 : 0;
  for (const auto& [label, child] : *children) {
    std::int64_t child_live =
        ClearSubtree(child, stamp, child_floor, changed);
    live += child_live;
    bool child_empty = child->MapView(f_children_).value()->empty();
    bool tombstone_dominated =
        !(child_floor < ClearedStampOf(child));  // cleared <= floor
    if (child_live == 0 && child_empty && tombstone_dominated) {
      prunable.push_back(label);
    }
  }
  for (const std::string& label : prunable) {
    (void)node->MapErase(f_children_, label);
    *changed = true;
  }
  (void)node->SetInt(f_live_, live);
  return live;
}

Result<bool> NameTree::Remove(std::string_view path, const VersionStamp& stamp) {
  SDB_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  if (parts.empty()) {
    return InvalidArgumentError("cannot remove the root");
  }

  // Walk, creating intermediates as needed: the tombstone must be recorded even if the
  // path does not exist locally yet (replica convergence).
  std::vector<th::Object*> chain{root_};
  VersionStamp floor = ClearedStampOf(root_);
  th::Object* node = root_;
  for (const std::string& part : parts) {
    if (cost_ != nullptr) {
      cost_->ChargeExplore(1);
    }
    Result<th::Object*> child = node->MapGet(f_children_, part);
    if (child.ok()) {
      node = *child;
    } else {
      th::Object* fresh = AllocateNode();
      SDB_RETURN_IF_ERROR(node->MapSet(f_children_, part, fresh));
      node = fresh;
    }
    chain.push_back(node);
    floor = MaxStamp(floor, ClearedStampOf(node));
  }

  if (!(floor < stamp)) {
    // An equal-or-newer tombstone already covers this subtree entirely.
    return false;
  }
  if (cost_ != nullptr) {
    cost_->ChargeModify(1);
  }
  bool changed = false;
  if (ClearedStampOf(node) < stamp) {
    SetClearedStamp(node, stamp);
    changed = true;
  }

  // Clear older values below, prune dead structure, recompute live counts bottom-up.
  std::int64_t old_live = LiveOf(node);
  VersionStamp above_floor = floor;  // floor already includes node's old cleared stamp
  std::int64_t new_live = ClearSubtree(node, stamp, above_floor, &changed);
  std::int64_t delta = new_live - old_live;
  if (delta != 0) {
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
      SDB_RETURN_IF_ERROR(chain[i]->SetInt(f_live_, LiveOf(chain[i]) + delta));
    }
  }
  // The target itself may now be prunable from its parent.
  if (chain.size() >= 2) {
    th::Object* parent = chain[chain.size() - 2];
    VersionStamp parent_floor = ClearedStampOf(root_);
    for (std::size_t i = 1; i + 1 < chain.size(); ++i) {
      parent_floor = MaxStamp(parent_floor, ClearedStampOf(chain[i]));
    }
    bool node_empty = node->MapView(f_children_).value()->empty();
    if (LiveOf(node) == 0 && node_empty && !(parent_floor < ClearedStampOf(node))) {
      SDB_RETURN_IF_ERROR(parent->MapErase(f_children_, parts.back()));
    }
  }

  if (changed && ++removals_since_gc_ >= 256) {
    removals_since_gc_ = 0;
    heap_.Collect();
  }
  return changed;
}

std::size_t NameTree::live_bindings() const {
  return static_cast<std::size_t>(LiveOf(root_));
}

Result<Bytes> NameTree::Serialize() const { return th::PickleHeapGraph(root_, cost_); }

Status NameTree::Deserialize(ByteSpan data) {
  SDB_ASSIGN_OR_RETURN(th::Object * new_root,
                       th::UnpickleHeapGraph(heap_, registry_, data, cost_));
  if (new_root == nullptr) {
    return CorruptionError("checkpoint contains a null root");
  }
  if (&new_root->type() != node_type_) {
    return CorruptionError("checkpoint root is not an ns.node");
  }
  heap_.RemoveRoot(root_);
  root_ = new_root;
  heap_.AddRoot(root_);
  heap_.Collect();
  return OkStatus();
}

Status NameTree::Reset() {
  heap_.RemoveRoot(root_);
  root_ = AllocateNode();
  heap_.AddRoot(root_);
  heap_.Collect();
  return OkStatus();
}

}  // namespace sdb::ns
