// The name service's RPC surface: request/response structs (marshalled by the pickle
// traits — the reproduction of the paper's automatically generated stub modules), the
// server-side registration, and a typed client.
//
// "Clients interact with our name server through a general purpose remote procedure
// call mechanism ... The combined effect of these two facilities is that we can
// implement the name server entirely in a strongly typed language." (Section 6)
#ifndef SMALLDB_SRC_NAMESERVER_NAME_SERVICE_RPC_H_
#define SMALLDB_SRC_NAMESERVER_NAME_SERVICE_RPC_H_

#include <string>
#include <vector>

#include "src/nameserver/name_server.h"
#include "src/rpc/client.h"
#include "src/rpc/server.h"

namespace sdb::ns {

inline constexpr std::string_view kNameService = "NameService";

// --- message types ---

struct LookupRequest {
  std::string path;
  SDB_PICKLE_FIELDS(LookupRequest, path)
};
struct LookupResponse {
  std::string value;
  SDB_PICKLE_FIELDS(LookupResponse, value)
};

struct ListRequest {
  std::string path;
  SDB_PICKLE_FIELDS(ListRequest, path)
};
struct ListResponse {
  std::vector<std::string> labels;
  SDB_PICKLE_FIELDS(ListResponse, labels)
};

struct SetRequest {
  std::string path;
  std::string value;
  SDB_PICKLE_FIELDS(SetRequest, path, value)
};
struct RemoveRequest {
  std::string path;
  SDB_PICKLE_FIELDS(RemoveRequest, path)
};
struct CompareAndSetRequest {
  std::string path;
  std::string expected;
  std::string value;
  SDB_PICKLE_FIELDS(CompareAndSetRequest, path, expected, value)
};
struct ExportRequest {
  std::string path;
  SDB_PICKLE_FIELDS(ExportRequest, path)
};
struct ExportResponse {
  std::vector<std::pair<std::string, std::string>> bindings;
  SDB_PICKLE_FIELDS(ExportResponse, bindings)
};
struct Ack {
  std::uint8_t ok = 1;
  SDB_PICKLE_FIELDS(Ack, ok)
};

// Replication messages.
struct PushUpdateRequest {
  NameServerUpdate update;
  SDB_PICKLE_FIELDS(PushUpdateRequest, update)
};
struct VersionVectorRequest {
  std::uint8_t unused = 0;
  SDB_PICKLE_FIELDS(VersionVectorRequest, unused)
};
struct VersionVectorResponse {
  VersionVector version_vector;
  SDB_PICKLE_FIELDS(VersionVectorResponse, version_vector)
};
struct UpdatesSinceRequest {
  VersionVector have;
  SDB_PICKLE_FIELDS(UpdatesSinceRequest, have)
};
struct UpdatesSinceResponse {
  std::vector<NameServerUpdate> updates;
  SDB_PICKLE_FIELDS(UpdatesSinceResponse, updates)
};
struct FullStateRequest {
  std::uint8_t unused = 0;
  SDB_PICKLE_FIELDS(FullStateRequest, unused)
};
struct FullStateResponse {
  Bytes state;
  SDB_PICKLE_FIELDS(FullStateResponse, state)
};

// Registers every NameService method of `server` on `rpc_server`. The NameServer must
// outlive the RpcServer's use.
void RegisterNameService(rpc::RpcServer& rpc_server, NameServer& server);

// Like the above, but registers Set/Remove/CompareAndSet as *batchable updates*
// (RpcServer::RegisterUpdate) whose plans commit through `update_sink` — normally a
// net::DatabaseUpdateSink over server.database(), so a batching transport coalesces
// updates from many connections into one group-commit batch. Dispatch-based
// transports still serve the methods identically (batch of one).
void RegisterNameService(rpc::RpcServer& rpc_server, NameServer& server,
                         std::shared_ptr<rpc::UpdateSink> update_sink);

// Typed client stub.
class NameServiceClient {
 public:
  explicit NameServiceClient(rpc::Channel& channel) : channel_(channel) {}

  Result<std::string> Lookup(std::string_view path);
  Result<std::vector<std::string>> List(std::string_view path);
  Status Set(std::string_view path, std::string_view value);
  Status Remove(std::string_view path);
  Status CompareAndSet(std::string_view path, std::string_view expected,
                       std::string_view value);
  Result<std::vector<std::pair<std::string, std::string>>> Export(std::string_view path);

  Status PushUpdate(const NameServerUpdate& update);
  Result<VersionVector> GetVersionVector();
  Result<std::vector<NameServerUpdate>> UpdatesSince(const VersionVector& have);
  Result<Bytes> FullState();

 private:
  rpc::Channel& channel_;
};

}  // namespace sdb::ns

#endif  // SMALLDB_SRC_NAMESERVER_NAME_SERVICE_RPC_H_
