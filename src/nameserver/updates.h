// NameServerUpdate: the parameters of one name-server update, exactly what gets
// pickled into a log entry (paper Section 6: "To write the log entry for an update, we
// present the parameters of the update to PickleWrite").
//
// The same record is also what replicas exchange during update propagation, so it
// carries its origin replica and per-origin sequence number, and the LWW stamp that
// makes application order-independent across replicas.
#ifndef SMALLDB_SRC_NAMESERVER_UPDATES_H_
#define SMALLDB_SRC_NAMESERVER_UPDATES_H_

#include <cstdint>
#include <string>

#include "src/common/cost_model.h"
#include "src/nameserver/name_tree.h"
#include "src/pickle/pickle.h"
#include "src/pickle/traits.h"

namespace sdb::ns {

enum class UpdateKind : std::uint8_t {
  kSet = 1,
  kRemove = 2,
};

struct NameServerUpdate {
  std::uint8_t kind = 0;  // UpdateKind
  std::string path;
  std::string value;      // empty for kRemove
  std::uint64_t lamport = 0;
  std::string origin;     // replica id that originated the update
  std::uint64_t sequence = 0;  // per-origin sequence number, starting at 1

  SDB_PICKLE_FIELDS(NameServerUpdate, kind, path, value, lamport, origin, sequence)

  VersionStamp stamp() const { return VersionStamp{lamport, origin}; }
};

// Pickles the update into a log-ready record (the paper's 22 ms step, charged to the
// cost model when one is supplied).
Bytes EncodeUpdate(const NameServerUpdate& update, const CostModel* cost = nullptr);

// Unpickles a log record (replay path; charged as pickle-read).
Result<NameServerUpdate> DecodeUpdate(ByteSpan record, const CostModel* cost = nullptr);

// Applies a decoded update to the tree. Returns whether it changed the state (false
// when superseded by a newer LWW stamp or removing an already-absent name during
// replica convergence).
Result<bool> ApplyUpdateToTree(NameTree& tree, const NameServerUpdate& update);

}  // namespace sdb::ns

#endif  // SMALLDB_SRC_NAMESERVER_UPDATES_H_
