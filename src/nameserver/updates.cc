#include "src/nameserver/updates.h"

namespace sdb::ns {

Bytes EncodeUpdate(const NameServerUpdate& update, const CostModel* cost) {
  return PickleWrite(update, cost);
}

Result<NameServerUpdate> DecodeUpdate(ByteSpan record, const CostModel* cost) {
  return PickleRead<NameServerUpdate>(record, cost);
}

Result<bool> ApplyUpdateToTree(NameTree& tree, const NameServerUpdate& update) {
  switch (static_cast<UpdateKind>(update.kind)) {
    case UpdateKind::kSet:
      return tree.Set(update.path, update.value, update.stamp());
    case UpdateKind::kRemove:
      // Applies the subtree tombstone even if the target does not exist locally yet
      // (a replica may see the Remove before the Sets it supersedes).
      return tree.Remove(update.path, update.stamp());
  }
  return CorruptionError("unknown update kind " + std::to_string(update.kind));
}

}  // namespace sdb::ns
