// ShardedNameServer: the paper's example application on the sharded engine.
//
// N NameTrees, one per shard, behind ShardedDatabase's consistent-hash router. A
// name routes on its FIRST path component, so every subtree below a top-level name
// lives whole within one shard: Set/Remove/Lookup/List on "a/b/c" touch only the
// shard owning "a", and a Remove's subtree tombstone semantics never span shards.
// Only the root is virtual: List("") merges the shard roots' child labels and
// Export("") k-way merges the per-shard exports — both under EnquireAll's
// all-shards read instant, preserving global name order.
//
// Updates reuse the single-engine name server's record format (NameServerUpdate,
// EncodeUpdate/DecodeUpdate/ApplyUpdateToTree), so a shard's log entries are
// bit-compatible with the unsharded engine's. Replication bookkeeping is out of
// scope here — this is the client-facing sharded surface; replicating each shard is
// ROADMAP item 4's transport work.
#ifndef SMALLDB_SRC_NAMESERVER_SHARDED_NAME_SERVER_H_
#define SMALLDB_SRC_NAMESERVER_SHARDED_NAME_SERVER_H_

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/core/sharded.h"
#include "src/nameserver/name_tree.h"
#include "src/nameserver/updates.h"

namespace sdb::ns {

struct ShardedNameServerOptions {
  // db.vfs and db.dir are required; the rest of db tunes the engine (coalescer,
  // rotation threshold, recovery threads).
  ShardedOptions db;
  std::size_t shards = 4;  // fixed at open; must match the directory on reopen
  const CostModel* cost = nullptr;
  std::string replica_id = "replica-1";  // stamped into update records
};

class ShardedNameServer {
 public:
  static Result<std::unique_ptr<ShardedNameServer>> Open(ShardedNameServerOptions options);

  ~ShardedNameServer() = default;
  ShardedNameServer(const ShardedNameServer&) = delete;
  ShardedNameServer& operator=(const ShardedNameServer&) = delete;

  // --- client operations (same surface as NameServer) ---

  Result<std::string> Lookup(std::string_view path);

  // Child labels at `path`, sorted. List("") merges every shard root's children.
  Result<std::vector<std::string>> List(std::string_view path);

  Status Set(std::string_view path, std::string_view value);

  // Precondition: the name exists (checked under the owning shard's update lock).
  Status Remove(std::string_view path);

  Status CompareAndSet(std::string_view path, std::string_view expected,
                       std::string_view value);

  // Every (path, value) binding under `path` in sorted path order. Export("") holds
  // every shard's shared lock at one instant and k-way merges the shard streams.
  Result<std::vector<std::pair<std::string, std::string>>> Export(std::string_view path);

  // --- maintenance ---

  Status Checkpoint(std::size_t shard) { return db_->Checkpoint(shard); }
  Status CheckpointAll() { return db_->CheckpointAll(); }

  // --- introspection ---

  std::size_t shard_count() const { return db_->shard_count(); }
  // The shard owning `path` (by its first component; "" = shard 0, the root's home).
  Result<std::size_t> ShardForPath(std::string_view path) const;
  ShardedDatabase& database() { return *db_; }
  NameTree& shard_tree(std::size_t p) { return trees_[p]->tree(); }

 private:
  // One shard's application: a NameTree behind the engine's Application interface,
  // replaying the standard name-server record format. The checkpoint body carries a
  // lamport watermark ahead of the tree bytes: LWW stamps must restart above every
  // stamp already applied, and the tree itself has no max-stamp query.
  class ShardTree final : public Application {
   public:
    explicit ShardTree(const CostModel* cost) : cost_(cost), tree_(cost) {}

    NameTree& tree() { return tree_; }
    std::uint64_t lamport_watermark() const { return lamport_watermark_; }

    Status ResetState() override;
    Result<Bytes> SerializeState() override;
    Status DeserializeState(ByteSpan data) override;
    Status ApplyUpdate(ByteSpan record) override;

   private:
    const CostModel* cost_;
    NameTree tree_;
    // Highest lamport applied to this shard. Mutated under the shard's exclusive
    // lock (ApplyUpdate) or during single-threaded recovery.
    std::uint64_t lamport_watermark_ = 0;
  };

  explicit ShardedNameServer(ShardedNameServerOptions options);

  // Builds the (stamped, pickled) record for one local update. Called inside a
  // prepare callback, under the owning shard's update lock.
  NameServerUpdate MakeUpdate(UpdateKind kind, std::string_view path,
                              std::string_view value);

  ShardedNameServerOptions options_;
  std::vector<std::unique_ptr<ShardTree>> trees_;
  std::unique_ptr<ShardedDatabase> db_;

  // Lamport stamp source. Atomic, not lock-protected: updates on different shards
  // stamp concurrently; uniqueness per (lamport, origin) pair is all LWW needs, and
  // fetch_add provides it. Recovered to max-over-tree at open.
  std::atomic<std::uint64_t> lamport_{0};
  std::atomic<std::uint64_t> sequence_{0};
};

}  // namespace sdb::ns

#endif  // SMALLDB_SRC_NAMESERVER_SHARDED_NAME_SERVER_H_
