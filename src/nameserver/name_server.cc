#include "src/nameserver/name_server.h"

#include <algorithm>

#include "src/obs/metrics.h"

namespace sdb::ns {
namespace {

// Process-wide name-service operation counters ("ns.*" in obs::GlobalRegistry()),
// one per client-visible verb, aggregated across replicas in this process.
struct OpMetrics {
  obs::Counter* lookups;
  obs::Counter* lists;
  obs::Counter* sets;
  obs::Counter* removes;
  obs::Counter* compare_and_sets;
  obs::Counter* remote_updates;
};

OpMetrics& Metrics() {
  static OpMetrics m = [] {
    obs::Registry& registry = obs::GlobalRegistry();
    return OpMetrics{&registry.GetCounter("ns.lookups"),
                     &registry.GetCounter("ns.lists"),
                     &registry.GetCounter("ns.sets"),
                     &registry.GetCounter("ns.removes"),
                     &registry.GetCounter("ns.compare_and_sets"),
                     &registry.GetCounter("ns.remote_updates")};
  }();
  return m;
}

// What a checkpoint of the name server actually contains: the pickled tree plus the
// replication bookkeeping, so a restart recovers both together.
struct CheckpointBody {
  Bytes tree;
  std::map<std::string, std::uint64_t> version_vector;
  std::uint64_t lamport = 0;
  std::vector<NameServerUpdate> journal;
  std::map<std::string, std::uint64_t> journal_base;

  SDB_PICKLE_FIELDS(CheckpointBody, tree, version_vector, lamport, journal, journal_base)
};

}  // namespace

NameServer::NameServer(NameServerOptions options)
    : options_(std::move(options)), tree_(options_.cost) {}

Result<std::unique_ptr<NameServer>> NameServer::Open(NameServerOptions options) {
  if (options.replica_id.empty()) {
    return InvalidArgumentError("replica_id must be non-empty");
  }
  std::unique_ptr<NameServer> server(new NameServer(std::move(options)));
  SDB_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                       Database::Open(*server, server->options_.db));
  server->db_ = std::move(db);
  return server;
}

// --- client operations ---

Result<std::string> NameServer::Lookup(std::string_view path) {
  Metrics().lookups->Increment();
  Result<std::string> value = NotFoundError("");
  SDB_RETURN_IF_ERROR(db_->Enquire([this, path, &value] {
    value = tree_.Lookup(path);
    return OkStatus();
  }));
  return value;
}

Result<std::vector<std::string>> NameServer::List(std::string_view path) {
  Metrics().lists->Increment();
  Result<std::vector<std::string>> labels = NotFoundError("");
  SDB_RETURN_IF_ERROR(db_->Enquire([this, path, &labels] {
    labels = tree_.List(path);
    return OkStatus();
  }));
  return labels;
}

void NameServer::SyncReservations() {
  std::uint64_t epoch = db_->commit_epoch();
  if (epoch != reserve_epoch_) {
    // A new batch: everything the previous batch sealed is either applied (visible
    // in version_vector_/lamport_) or failed to commit (its numbers may be reused).
    reserve_epoch_ = epoch;
    pending_seen_.clear();
    pending_lamport_ = lamport_;
  }
}

std::uint64_t NameServer::EffectiveSeen(const std::string& origin) const {
  std::uint64_t seen = 0;
  if (auto it = version_vector_.find(origin); it != version_vector_.end()) {
    seen = it->second;
  }
  if (auto it = pending_seen_.find(origin); it != pending_seen_.end()) {
    seen = std::max(seen, it->second);
  }
  return seen;
}

Result<Bytes> NameServer::PrepareLocalUpdate(UpdateKind kind, std::string_view path,
                                             std::string_view value) {
  // Step 1 of the paper's update: verify preconditions against the virtual memory
  // data, then gather the parameters of the update into a (pickled) record.
  SyncReservations();
  SDB_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  if (parts.empty()) {
    return InvalidArgumentError("the root cannot be the target of an update");
  }
  if (kind == UpdateKind::kRemove && !tree_.Exists(path)) {
    return FailedPreconditionError("no such name: " + std::string(path));
  }

  NameServerUpdate update;
  update.kind = static_cast<std::uint8_t>(kind);
  update.path = std::string(path);
  update.value = std::string(value);
  update.lamport = std::max(lamport_, pending_lamport_) + 1;
  update.origin = options_.replica_id;
  update.sequence = EffectiveSeen(options_.replica_id) + 1;
  // Reserve only once the prepare is certain to succeed, so a failed prepare never
  // leaves a sequence gap. (This relies on every name-server request being a single
  // prepare: a successful prepare is exactly a record sealed into the batch.)
  pending_seen_[update.origin] = update.sequence;
  pending_lamport_ = update.lamport;
  return EncodeUpdate(update, options_.cost);
}

std::function<Result<Bytes>()> NameServer::PlanSet(std::string path, std::string value) {
  Metrics().sets->Increment();
  return [this, path = std::move(path), value = std::move(value)] {
    return PrepareLocalUpdate(UpdateKind::kSet, path, value);
  };
}

std::function<Result<Bytes>()> NameServer::PlanRemove(std::string path) {
  Metrics().removes->Increment();
  return [this, path = std::move(path)] {
    return PrepareLocalUpdate(UpdateKind::kRemove, path, "");
  };
}

std::function<Result<Bytes>()> NameServer::PlanCompareAndSet(std::string path,
                                                             std::string expected,
                                                             std::string value) {
  Metrics().compare_and_sets->Increment();
  return [this, path = std::move(path), expected = std::move(expected),
          value = std::move(value)]() -> Result<Bytes> {
    SDB_ASSIGN_OR_RETURN(std::string current, tree_.Lookup(path));
    if (current != expected) {
      return FailedPreconditionError("value mismatch at " + path);
    }
    return PrepareLocalUpdate(UpdateKind::kSet, path, value);
  };
}

Status NameServer::Set(std::string_view path, std::string_view value) {
  return db_->Update(PlanSet(std::string(path), std::string(value)));
}

Status NameServer::Remove(std::string_view path) {
  return db_->Update(PlanRemove(std::string(path)));
}

Status NameServer::CompareAndSet(std::string_view path, std::string_view expected,
                                 std::string_view value) {
  return db_->Update(PlanCompareAndSet(std::string(path), std::string(expected),
                                       std::string(value)));
}

Result<std::vector<std::pair<std::string, std::string>>> NameServer::Export(
    std::string_view path) {
  Result<std::vector<std::pair<std::string, std::string>>> bindings = NotFoundError("");
  SDB_RETURN_IF_ERROR(db_->Enquire([this, path, &bindings] {
    bindings = tree_.Export(path);
    return OkStatus();
  }));
  return bindings;
}

// --- replication surface ---

Status NameServer::ApplyRemoteUpdate(const NameServerUpdate& update) {
  Metrics().remote_updates->Increment();
  Status status = db_->Update([this, &update]() -> Result<Bytes> {
    SyncReservations();
    // Gap/duplicate checks run against the effective horizon: what is applied plus
    // what the current batch already has in flight from this origin.
    std::uint64_t seen = EffectiveSeen(update.origin);
    if (update.sequence <= seen) {
      // Already incorporated (propagation retry / overlapping anti-entropy).
      return AlreadyExistsError("update already applied");
    }
    if (update.sequence != seen + 1) {
      return FailedPreconditionError("sequence gap from origin " + update.origin +
                                     ": have " + std::to_string(seen) + ", got " +
                                     std::to_string(update.sequence));
    }
    pending_seen_[update.origin] = update.sequence;
    pending_lamport_ = std::max(pending_lamport_, update.lamport);
    return EncodeUpdate(update, options_.cost);
  });
  if (status.Is(ErrorCode::kAlreadyExists)) {
    return OkStatus();
  }
  return status;
}

VersionVector NameServer::version_vector() const {
  VersionVector copy;
  // Read under shared lock to avoid racing an in-flight apply.
  Status status = db_->Enquire([this, &copy] {
    copy = version_vector_;
    return OkStatus();
  });
  (void)status;
  return copy;
}

Result<std::vector<NameServerUpdate>> NameServer::UpdatesSince(const VersionVector& peer) const {
  std::vector<NameServerUpdate> missing;
  Status inner = OkStatus();
  SDB_RETURN_IF_ERROR(db_->Enquire([this, &peer, &missing, &inner] {
    // First check the journal reaches back far enough for every origin the peer lags.
    for (const auto& [origin, have] : version_vector_) {
      std::uint64_t peer_seen = 0;
      if (auto it = peer.find(origin); it != peer.end()) {
        peer_seen = it->second;
      }
      if (peer_seen >= have) {
        continue;
      }
      std::uint64_t base = 1;
      if (auto it = journal_base_.find(origin); it != journal_base_.end()) {
        base = it->second;
      }
      if (peer_seen + 1 < base) {
        inner = FailedPreconditionError("journal no longer covers origin " + origin +
                                        " back to sequence " + std::to_string(peer_seen + 1));
        return OkStatus();
      }
    }
    for (const NameServerUpdate& update : journal_) {
      std::uint64_t peer_seen = 0;
      if (auto it = peer.find(update.origin); it != peer.end()) {
        peer_seen = it->second;
      }
      if (update.sequence > peer_seen) {
        missing.push_back(update);
      }
    }
    return OkStatus();
  }));
  SDB_RETURN_IF_ERROR(inner);
  return missing;
}

Result<Bytes> NameServer::FullState() {
  Result<Bytes> state = InternalError("unset");
  SDB_RETURN_IF_ERROR(db_->Enquire([this, &state] {
    state = SerializeState();
    return OkStatus();
  }));
  return state;
}

Status NameServer::InstallFullState(ByteSpan state) { return db_->ReplaceState(state); }

// --- Application interface ---

Status NameServer::ResetState() {
  version_vector_.clear();
  lamport_ = 0;
  journal_.clear();
  journal_base_.clear();
  return tree_.Reset();
}

Result<Bytes> NameServer::SerializeState() {
  CheckpointBody body;
  SDB_ASSIGN_OR_RETURN(body.tree, tree_.Serialize());
  body.version_vector = version_vector_;
  body.lamport = lamport_;
  body.journal.assign(journal_.begin(), journal_.end());
  body.journal_base = journal_base_;
  return PickleWrite(body, options_.cost);
}

Status NameServer::DeserializeState(ByteSpan data) {
  SDB_ASSIGN_OR_RETURN(CheckpointBody body, PickleRead<CheckpointBody>(data, options_.cost));
  SDB_RETURN_IF_ERROR(tree_.Deserialize(AsSpan(body.tree)));
  version_vector_ = std::move(body.version_vector);
  lamport_ = body.lamport;
  journal_.assign(body.journal.begin(), body.journal.end());
  journal_base_ = std::move(body.journal_base);
  return OkStatus();
}

Status NameServer::ApplyUpdate(ByteSpan record) {
  SDB_ASSIGN_OR_RETURN(NameServerUpdate update, DecodeUpdate(record, options_.cost));
  SDB_ASSIGN_OR_RETURN(bool applied, ApplyUpdateToTree(tree_, update));
  (void)applied;  // superseded LWW writes still advance the replication state
  std::uint64_t& seen = version_vector_[update.origin];
  if (update.sequence > seen) {
    seen = update.sequence;
  }
  if (update.lamport > lamport_) {
    lamport_ = update.lamport;
  }
  JournalAppend(update);
  return OkStatus();
}

void NameServer::JournalAppend(const NameServerUpdate& update) {
  journal_.push_back(update);
  if (journal_base_.find(update.origin) == journal_base_.end()) {
    journal_base_[update.origin] = update.sequence;
  }
  while (journal_.size() > options_.journal_capacity) {
    const NameServerUpdate& evicted = journal_.front();
    journal_base_[evicted.origin] = evicted.sequence + 1;
    journal_.pop_front();
  }
}

}  // namespace sdb::ns
