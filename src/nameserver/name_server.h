// NameServer: the paper's example application, assembled from the substrates.
//
// Wraps a NameTree (the strongly typed virtual-memory structure) in the core Database
// engine (log + checkpoint + SUE locking) and adds the replication bookkeeping the
// paper describes: per-origin sequence numbers, a bounded in-memory journal of recent
// updates for propagation, and full-state transfer for hard-error recovery.
//
// All replication state (version vector, lamport clock, journal) is part of the
// pickled database state, so it survives restarts through the normal checkpoint+log
// recovery with no extra machinery.
#ifndef SMALLDB_SRC_NAMESERVER_NAME_SERVER_H_
#define SMALLDB_SRC_NAMESERVER_NAME_SERVER_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/database.h"
#include "src/nameserver/name_tree.h"
#include "src/nameserver/updates.h"

namespace sdb::ns {

using VersionVector = std::map<std::string, std::uint64_t>;

struct NameServerOptions {
  DatabaseOptions db;
  const CostModel* cost = nullptr;
  std::string replica_id = "replica-1";
  // Updates retained in the propagation journal; peers lagging further behind are
  // resynchronized by full state transfer.
  std::size_t journal_capacity = 8192;
};

class NameServer final : public Application {
 public:
  // Opens (or recovers) the name server database under options.db.dir.
  static Result<std::unique_ptr<NameServer>> Open(NameServerOptions options);

  ~NameServer() override = default;

  // --- client operations ---

  // Enquiry: value bound to `path`. Purely a virtual-memory lookup under shared lock.
  Result<std::string> Lookup(std::string_view path);

  // Browsing: child labels at `path`.
  Result<std::vector<std::string>> List(std::string_view path);

  // Update: binds `value` to `path` (creating intermediate names).
  Status Set(std::string_view path, std::string_view value);

  // Update: removes `path` and its whole subtree. Precondition: the name exists.
  Status Remove(std::string_view path);

  // Conditional update (single-shot transaction with a value precondition): binds
  // `value` to `path` only if the current value equals `expected`. Fails with
  // kFailedPrecondition otherwise, logging nothing — the paper's update discipline
  // covers read-modify-write without multi-step transactions.
  Status CompareAndSet(std::string_view path, std::string_view expected,
                       std::string_view value);

  // Enquiry: every (path, value) binding under `path`, sorted ("" = the whole
  // database). The browsing/export operation.
  Result<std::vector<std::pair<std::string, std::string>>> Export(std::string_view path);

  // --- batchable-update planners ---
  // Each returns exactly the prepare closure the corresponding client operation
  // hands to Database::Update, with its arguments captured by value. Set/Remove/
  // CompareAndSet are one-liners over these; batching transports instead collect
  // many planned closures (possibly from many connections) into one
  // Database::UpdateMany call so a single fsync covers them all. The closure runs
  // under the engine's update lock; every precondition check lives inside it.
  std::function<Result<Bytes>()> PlanSet(std::string path, std::string value);
  std::function<Result<Bytes>()> PlanRemove(std::string path);
  std::function<Result<Bytes>()> PlanCompareAndSet(std::string path,
                                                   std::string expected,
                                                   std::string value);

  Status Checkpoint() { return db_->Checkpoint(); }

  // --- replication surface (used by the Replicator and the RPC service) ---

  // Applies an update that originated at another replica. Idempotent: already-seen
  // sequence numbers succeed as no-ops. A gap in the origin's sequence returns
  // kFailedPrecondition — the caller should anti-entropy instead.
  Status ApplyRemoteUpdate(const NameServerUpdate& update);

  VersionVector version_vector() const;

  // Updates the peer (described by its version vector) has not seen, oldest first.
  // kFailedPrecondition if the journal no longer reaches back far enough.
  Result<std::vector<NameServerUpdate>> UpdatesSince(const VersionVector& peer) const;

  // Full database state, for replica restore. (Identical bytes to a checkpoint.)
  Result<Bytes> FullState();

  // Replaces this replica's entire state with `state` from a healthy peer and makes it
  // durable immediately (hard-error recovery).
  Status InstallFullState(ByteSpan state);

  // --- introspection ---
  const std::string& replica_id() const { return options_.replica_id; }
  Database& database() { return *db_; }
  NameTree& tree() { return tree_; }
  std::uint64_t journal_size() const { return journal_.size(); }

  // --- Application interface (called by the engine) ---
  Status ResetState() override;
  Result<Bytes> SerializeState() override;
  Status DeserializeState(ByteSpan data) override;
  Status ApplyUpdate(ByteSpan record) override;

 private:
  explicit NameServer(NameServerOptions options);

  Result<Bytes> PrepareLocalUpdate(UpdateKind kind, std::string_view path,
                                   std::string_view value);
  void JournalAppend(const NameServerUpdate& update);

  // With group commit, several prepares run back-to-back in one batch before any of
  // them is applied, so version_vector_/lamport_ lag the records already sealed into
  // the batch. These helpers maintain a reservation overlay of in-flight sequence
  // numbers, reset whenever Database::commit_epoch() moves (i.e. at every batch
  // boundary). Called only inside prepare callbacks, under the engine's update lock.
  void SyncReservations();
  std::uint64_t EffectiveSeen(const std::string& origin) const;

  NameServerOptions options_;
  NameTree tree_;
  std::unique_ptr<Database> db_;

  // Replication state, mutated only under the engine's update/exclusive lock (inside
  // prepare callbacks and ApplyUpdate) or during single-threaded recovery.
  VersionVector version_vector_;
  std::uint64_t lamport_ = 0;
  std::deque<NameServerUpdate> journal_;
  VersionVector journal_base_;  // per origin: lowest sequence still in the journal

  // Reservation overlay for records prepared but not yet applied in the current
  // commit batch (see SyncReservations). Guarded by the engine's update lock.
  std::uint64_t reserve_epoch_ = 0;
  VersionVector pending_seen_;
  std::uint64_t pending_lamport_ = 0;
};

}  // namespace sdb::ns

#endif  // SMALLDB_SRC_NAMESERVER_NAME_SERVER_H_
