#include "src/nameserver/name_service_rpc.h"

namespace sdb::ns {

void RegisterNameService(rpc::RpcServer& rpc_server, NameServer& server) {
  rpc::RegisterMethod<LookupRequest, LookupResponse>(
      rpc_server, std::string(kNameService), "Lookup",
      [&server](const LookupRequest& request) -> Result<LookupResponse> {
        SDB_ASSIGN_OR_RETURN(std::string value, server.Lookup(request.path));
        return LookupResponse{std::move(value)};
      });
  rpc::RegisterMethod<ListRequest, ListResponse>(
      rpc_server, std::string(kNameService), "List",
      [&server](const ListRequest& request) -> Result<ListResponse> {
        SDB_ASSIGN_OR_RETURN(std::vector<std::string> labels, server.List(request.path));
        return ListResponse{std::move(labels)};
      });
  rpc::RegisterMethod<SetRequest, Ack>(
      rpc_server, std::string(kNameService), "Set",
      [&server](const SetRequest& request) -> Result<Ack> {
        SDB_RETURN_IF_ERROR(server.Set(request.path, request.value));
        return Ack{};
      });
  rpc::RegisterMethod<RemoveRequest, Ack>(
      rpc_server, std::string(kNameService), "Remove",
      [&server](const RemoveRequest& request) -> Result<Ack> {
        SDB_RETURN_IF_ERROR(server.Remove(request.path));
        return Ack{};
      });
  rpc::RegisterMethod<CompareAndSetRequest, Ack>(
      rpc_server, std::string(kNameService), "CompareAndSet",
      [&server](const CompareAndSetRequest& request) -> Result<Ack> {
        SDB_RETURN_IF_ERROR(
            server.CompareAndSet(request.path, request.expected, request.value));
        return Ack{};
      });
  rpc::RegisterMethod<ExportRequest, ExportResponse>(
      rpc_server, std::string(kNameService), "Export",
      [&server](const ExportRequest& request) -> Result<ExportResponse> {
        SDB_ASSIGN_OR_RETURN(auto bindings, server.Export(request.path));
        return ExportResponse{std::move(bindings)};
      });
  rpc::RegisterMethod<PushUpdateRequest, Ack>(
      rpc_server, std::string(kNameService), "PushUpdate",
      [&server](const PushUpdateRequest& request) -> Result<Ack> {
        SDB_RETURN_IF_ERROR(server.ApplyRemoteUpdate(request.update));
        return Ack{};
      });
  rpc::RegisterMethod<VersionVectorRequest, VersionVectorResponse>(
      rpc_server, std::string(kNameService), "GetVersionVector",
      [&server](const VersionVectorRequest&) -> Result<VersionVectorResponse> {
        return VersionVectorResponse{server.version_vector()};
      });
  rpc::RegisterMethod<UpdatesSinceRequest, UpdatesSinceResponse>(
      rpc_server, std::string(kNameService), "UpdatesSince",
      [&server](const UpdatesSinceRequest& request) -> Result<UpdatesSinceResponse> {
        SDB_ASSIGN_OR_RETURN(std::vector<NameServerUpdate> updates,
                             server.UpdatesSince(request.have));
        return UpdatesSinceResponse{std::move(updates)};
      });
  rpc::RegisterMethod<FullStateRequest, FullStateResponse>(
      rpc_server, std::string(kNameService), "FullState",
      [&server](const FullStateRequest&) -> Result<FullStateResponse> {
        SDB_ASSIGN_OR_RETURN(Bytes state, server.FullState());
        return FullStateResponse{std::move(state)};
      });
}

void RegisterNameService(rpc::RpcServer& rpc_server, NameServer& server,
                         std::shared_ptr<rpc::UpdateSink> update_sink) {
  RegisterNameService(rpc_server, server);
  // Re-register the local update methods as batchable: the planner only decodes
  // and captures (preconditions run inside the prepare, under the update lock), so
  // a transport worker can plan requests from many sockets and commit them in one
  // UpdateSink::CommitMany call. ApplyRemoteUpdate stays Dispatch-only: its
  // AlreadyExists-is-OK dedup semantics live above Database::Update.
  rpc::RegisterUpdateMethod<SetRequest, Ack>(
      rpc_server, std::string(kNameService), "Set", update_sink,
      [&server](const SetRequest& request) -> Result<rpc::TypedUpdatePlan<Ack>> {
        return rpc::TypedUpdatePlan<Ack>{server.PlanSet(request.path, request.value),
                                         Ack{}};
      });
  rpc::RegisterUpdateMethod<RemoveRequest, Ack>(
      rpc_server, std::string(kNameService), "Remove", update_sink,
      [&server](const RemoveRequest& request) -> Result<rpc::TypedUpdatePlan<Ack>> {
        return rpc::TypedUpdatePlan<Ack>{server.PlanRemove(request.path), Ack{}};
      });
  rpc::RegisterUpdateMethod<CompareAndSetRequest, Ack>(
      rpc_server, std::string(kNameService), "CompareAndSet", update_sink,
      [&server](const CompareAndSetRequest& request)
          -> Result<rpc::TypedUpdatePlan<Ack>> {
        return rpc::TypedUpdatePlan<Ack>{
            server.PlanCompareAndSet(request.path, request.expected, request.value),
            Ack{}};
      });
}

Result<std::string> NameServiceClient::Lookup(std::string_view path) {
  SDB_ASSIGN_OR_RETURN(LookupResponse response,
                       (rpc::CallMethod<LookupRequest, LookupResponse>(
                           channel_, kNameService, "Lookup", LookupRequest{std::string(path)})));
  return response.value;
}

Result<std::vector<std::string>> NameServiceClient::List(std::string_view path) {
  SDB_ASSIGN_OR_RETURN(ListResponse response,
                       (rpc::CallMethod<ListRequest, ListResponse>(
                           channel_, kNameService, "List", ListRequest{std::string(path)})));
  return response.labels;
}

Status NameServiceClient::Set(std::string_view path, std::string_view value) {
  return rpc::CallMethod<SetRequest, Ack>(channel_, kNameService, "Set",
                                          SetRequest{std::string(path), std::string(value)})
      .status();
}

Status NameServiceClient::Remove(std::string_view path) {
  return rpc::CallMethod<RemoveRequest, Ack>(channel_, kNameService, "Remove",
                                             RemoveRequest{std::string(path)})
      .status();
}

Status NameServiceClient::CompareAndSet(std::string_view path, std::string_view expected,
                                        std::string_view value) {
  return rpc::CallMethod<CompareAndSetRequest, Ack>(
             channel_, kNameService, "CompareAndSet",
             CompareAndSetRequest{std::string(path), std::string(expected),
                                  std::string(value)})
      .status();
}

Result<std::vector<std::pair<std::string, std::string>>> NameServiceClient::Export(
    std::string_view path) {
  SDB_ASSIGN_OR_RETURN(ExportResponse response,
                       (rpc::CallMethod<ExportRequest, ExportResponse>(
                           channel_, kNameService, "Export",
                           ExportRequest{std::string(path)})));
  return response.bindings;
}

Status NameServiceClient::PushUpdate(const NameServerUpdate& update) {
  return rpc::CallMethod<PushUpdateRequest, Ack>(channel_, kNameService, "PushUpdate",
                                                 PushUpdateRequest{update})
      .status();
}

Result<VersionVector> NameServiceClient::GetVersionVector() {
  SDB_ASSIGN_OR_RETURN(VersionVectorResponse response,
                       (rpc::CallMethod<VersionVectorRequest, VersionVectorResponse>(
                           channel_, kNameService, "GetVersionVector", VersionVectorRequest{})));
  return response.version_vector;
}

Result<std::vector<NameServerUpdate>> NameServiceClient::UpdatesSince(
    const VersionVector& have) {
  SDB_ASSIGN_OR_RETURN(UpdatesSinceResponse response,
                       (rpc::CallMethod<UpdatesSinceRequest, UpdatesSinceResponse>(
                           channel_, kNameService, "UpdatesSince", UpdatesSinceRequest{have})));
  return response.updates;
}

Result<Bytes> NameServiceClient::FullState() {
  SDB_ASSIGN_OR_RETURN(FullStateResponse response,
                       (rpc::CallMethod<FullStateRequest, FullStateResponse>(
                           channel_, kNameService, "FullState", FullStateRequest{})));
  return response.state;
}

}  // namespace sdb::ns
