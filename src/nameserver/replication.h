// Replication: update propagation, anti-entropy and replica restore.
//
// The paper replicates the name server database across servers, propagates updates
// between replicas, has "automatic mechanisms for ensuring the long-term consistency
// of the name server replicas", and recovers a replica that suffered a hard error by
// "restoring its data from another replica", losing at most the updates that had not
// yet propagated.
//
// Replicator implements all three against the RPC surface:
//   - Propagate(): push every update a peer has not seen (normal-path propagation);
//   - AntiEntropy(): pull updates this replica is missing (long-term consistency);
//   - RestoreFromPeer(): full-state transfer after a hard error.
#ifndef SMALLDB_SRC_NAMESERVER_REPLICATION_H_
#define SMALLDB_SRC_NAMESERVER_REPLICATION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/nameserver/name_service_rpc.h"

namespace sdb::ns {

struct ReplicationStats {
  std::uint64_t updates_pushed = 0;
  std::uint64_t updates_pulled = 0;
  std::uint64_t full_restores = 0;
  std::uint64_t peers_unreachable = 0;
};

class Replicator {
 public:
  explicit Replicator(NameServer& local) : local_(local) {}

  // Registers a peer reachable over `channel` (not owned; must outlive the
  // replicator).
  void AddPeer(std::string peer_id, rpc::Channel& channel);

  std::size_t peer_count() const { return peers_.size(); }

  // Pushes to every reachable peer all updates it has not seen, in order. Unreachable
  // peers are skipped (they catch up via later propagation or anti-entropy).
  Status Propagate();

  // Pulls from every reachable peer the updates this replica is missing. This is the
  // long-term consistency sweep; it also heals peers' knowledge indirectly since
  // pulled updates are re-propagated on the next Propagate().
  Status AntiEntropy();

  // Hard-error recovery: replaces the local replica's entire state with `peer_id`'s.
  // Local updates not yet propagated to that peer are lost — the paper's accepted
  // cost: "this is unlikely to amount to more than the most recent update".
  Status RestoreFromPeer(std::string_view peer_id);

  const ReplicationStats& stats() const { return stats_; }

 private:
  struct Peer {
    std::string id;
    std::unique_ptr<NameServiceClient> client;
  };

  NameServer& local_;
  std::vector<Peer> peers_;
  ReplicationStats stats_;
};

// Drives a Replicator on a schedule: frequent propagation pushes fresh updates out
// ("update propagation to other replicas"), an occasional anti-entropy sweep pulls
// anything missed ("long-term replica consistency"). Deterministic and clock-driven:
// the owner calls Tick(now) from its event loop (or a test calls it directly), and due
// work runs inline.
class ReplicationScheduler {
 public:
  struct Options {
    Micros propagate_interval = 10 * kMicrosPerSecond;
    Micros anti_entropy_interval = 3600 * kMicrosPerSecond;  // hourly sweep
  };

  ReplicationScheduler(Replicator& replicator, Options options)
      : replicator_(replicator), options_(options) {}

  // Runs whatever is due at `now`. Returns the first error encountered (work that was
  // due still all runs).
  Status Tick(Micros now);

  std::uint64_t propagate_runs() const { return propagate_runs_; }
  std::uint64_t anti_entropy_runs() const { return anti_entropy_runs_; }

 private:
  Replicator& replicator_;
  Options options_;
  Micros last_propagate_ = 0;
  Micros last_anti_entropy_ = 0;
  std::uint64_t propagate_runs_ = 0;
  std::uint64_t anti_entropy_runs_ = 0;
};

}  // namespace sdb::ns

#endif  // SMALLDB_SRC_NAMESERVER_REPLICATION_H_
