#include "src/nameserver/replication.h"

#include "src/common/logging.h"

namespace sdb::ns {

void Replicator::AddPeer(std::string peer_id, rpc::Channel& channel) {
  peers_.push_back(Peer{std::move(peer_id), std::make_unique<NameServiceClient>(channel)});
}

Status Replicator::Propagate() {
  for (Peer& peer : peers_) {
    Result<VersionVector> peer_vv = peer.client->GetVersionVector();
    if (!peer_vv.ok()) {
      if (peer_vv.status().Is(ErrorCode::kUnavailable)) {
        ++stats_.peers_unreachable;
        continue;
      }
      return peer_vv.status().WithContext("querying version vector of " + peer.id);
    }
    Result<std::vector<NameServerUpdate>> missing = local_.UpdatesSince(*peer_vv);
    if (!missing.ok()) {
      // Journal too short for this peer: it must anti-entropy or restore; do not fail
      // the whole propagation round.
      SDB_LOG(kWarning) << "cannot propagate to " << peer.id << ": " << missing.status();
      continue;
    }
    for (const NameServerUpdate& update : *missing) {
      Status pushed = peer.client->PushUpdate(update);
      if (pushed.Is(ErrorCode::kUnavailable)) {
        ++stats_.peers_unreachable;
        break;
      }
      if (!pushed.ok()) {
        return pushed.WithContext("pushing update to " + peer.id);
      }
      ++stats_.updates_pushed;
    }
  }
  return OkStatus();
}

Status Replicator::AntiEntropy() {
  for (Peer& peer : peers_) {
    Result<std::vector<NameServerUpdate>> missing =
        peer.client->UpdatesSince(local_.version_vector());
    if (!missing.ok()) {
      if (missing.status().Is(ErrorCode::kUnavailable)) {
        ++stats_.peers_unreachable;
        continue;
      }
      if (missing.status().Is(ErrorCode::kFailedPrecondition)) {
        // The peer's journal no longer reaches back to our state; only a full restore
        // would close the gap, and that is a destructive operation the operator (or a
        // hard-error handler) must choose explicitly.
        SDB_LOG(kWarning) << "anti-entropy with " << peer.id
                          << " needs full restore: " << missing.status();
        continue;
      }
      return missing.status().WithContext("anti-entropy with " + peer.id);
    }
    for (const NameServerUpdate& update : *missing) {
      Status applied = local_.ApplyRemoteUpdate(update);
      if (applied.Is(ErrorCode::kFailedPrecondition)) {
        // Out-of-order delivery within the batch (shouldn't happen: peers send in
        // order); stop this peer's batch and let the next round retry.
        SDB_LOG(kWarning) << "gap while applying updates from " << peer.id;
        break;
      }
      SDB_RETURN_IF_ERROR(applied);
      ++stats_.updates_pulled;
    }
  }
  return OkStatus();
}

Status ReplicationScheduler::Tick(Micros now) {
  Status first_error = OkStatus();
  if (now - last_propagate_ >= options_.propagate_interval) {
    last_propagate_ = now;
    ++propagate_runs_;
    Status status = replicator_.Propagate();
    if (!status.ok() && first_error.ok()) {
      first_error = status;
    }
  }
  if (now - last_anti_entropy_ >= options_.anti_entropy_interval) {
    last_anti_entropy_ = now;
    ++anti_entropy_runs_;
    Status status = replicator_.AntiEntropy();
    if (!status.ok() && first_error.ok()) {
      first_error = status;
    }
  }
  return first_error;
}

Status Replicator::RestoreFromPeer(std::string_view peer_id) {
  for (Peer& peer : peers_) {
    if (peer.id != peer_id) {
      continue;
    }
    SDB_ASSIGN_OR_RETURN(Bytes state, peer.client->FullState());
    SDB_RETURN_IF_ERROR(local_.InstallFullState(AsSpan(state)));
    ++stats_.full_restores;
    return OkStatus();
  }
  return NotFoundError("no such peer: " + std::string(peer_id));
}

}  // namespace sdb::ns
