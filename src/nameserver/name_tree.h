// NameTree: the name server's virtual-memory database structure.
//
// "The name server offers its clients a general purpose name-to-value mapping, where
// the names are strings and the values are trees whose arcs are labelled by strings
// ... The virtual memory data structure consists primarily of a tree of hash tables.
// The tables are indexed by strings, and deliver values that are further hash tables.
// This data structure is implemented in a normal programming style: it is entirely
// strongly typed and it uses our general purpose string package, memory allocator and
// garbage collector." (Section 3)
//
// Here the tree lives on the typedheap: every node is a th::Object of type "ns.node"
// whose fields the garbage collector and the heap pickler both interpret through the
// same TypeDesc.
//
// Replica convergence. The paper's replicas exchange updates and must agree no matter
// the delivery interleaving across origins. Each node therefore carries two
// last-writer-wins stamps:
//   - a value stamp: the stamp of the Set that produced the current value;
//   - a *cleared* stamp: a subtree tombstone left by Remove, meaning "everything under
//     here older than this is gone".
// A Set applies only if its stamp is newer than both the target's value stamp and the
// maximum cleared stamp along its path; a Remove raises the cleared stamp and erases
// older values beneath it. Both operations are commutative in the set of applied
// updates, so replicas applying the same updates in any (per-origin-ordered)
// interleaving reach identical states — the property test in tests/property_test.cc
// checks exactly this. Dead nodes that carry no tombstone information are pruned
// physically; dominated tombstones are pruned too, so memory stays proportional to
// the live namespace plus undominated tombstones.
#ifndef SMALLDB_SRC_NAMESERVER_NAME_TREE_H_
#define SMALLDB_SRC_NAMESERVER_NAME_TREE_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/cost_model.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/typedheap/heap.h"
#include "src/typedheap/heap_pickle.h"
#include "src/typedheap/type_desc.h"

namespace sdb::ns {

// Splits "a/b/c" into {"a","b","c"}. Empty string -> root (empty vector). Rejects
// empty components ("a//b") and leading/trailing slashes.
Result<std::vector<std::string>> SplitPath(std::string_view path);

struct VersionStamp {
  std::uint64_t lamport = 0;
  std::string origin;

  // Total order: lamport first, origin id as the tie-break. The zero stamp (lamport 0)
  // is older than every real stamp.
  bool operator<(const VersionStamp& other) const {
    if (lamport != other.lamport) {
      return lamport < other.lamport;
    }
    return origin < other.origin;
  }
  bool operator==(const VersionStamp& other) const = default;

  bool IsZero() const { return lamport == 0; }
};

inline VersionStamp MaxStamp(const VersionStamp& a, const VersionStamp& b) {
  return a < b ? b : a;
}

class NameTree {
 public:
  // `cost` may be null (no charging). The registry and heap are owned by the tree.
  explicit NameTree(const CostModel* cost = nullptr);

  NameTree(const NameTree&) = delete;
  NameTree& operator=(const NameTree&) = delete;

  // --- enquiries (pure virtual-memory lookups) ---

  // Value stored at `path`; kNotFound if the node does not exist or holds no value.
  Result<std::string> Lookup(std::string_view path) const;

  // Child arc labels at `path` that lead to live bindings, in sorted order.
  Result<std::vector<std::string>> List(std::string_view path) const;

  // True if `path` leads to at least one live binding (itself or a descendant).
  bool Exists(std::string_view path) const;

  // Enumerates every (path, value) binding in the subtree rooted at `path`, in sorted
  // path order (paths are absolute). The full-tree export is Export("").
  Result<std::vector<std::pair<std::string, std::string>>> Export(
      std::string_view path) const;

  // --- updates (in-memory only; durability is the engine's job) ---

  // Sets the value at `path`, creating intermediate nodes. Applies only if `stamp` is
  // newer than the node's value stamp and every cleared stamp on the path
  // (last-writer-wins); returns whether it applied.
  Result<bool> Set(std::string_view path, std::string_view value, const VersionStamp& stamp);

  // Removes every binding at or below `path` that is older than `stamp`, and leaves a
  // subtree tombstone so older Sets delivered later cannot resurrect them ("update
  // operations for any set of sub-trees"). Returns whether anything changed. Creates
  // the tombstone even if the path does not currently exist (required for replica
  // convergence); the caller enforces any exists-precondition.
  Result<bool> Remove(std::string_view path, const VersionStamp& stamp);

  // --- whole-state operations ---

  // Pickles the entire tree (checkpoint body).
  Result<Bytes> Serialize() const;

  // Replaces the tree from pickled bytes, then collects garbage from the old state.
  Status Deserialize(ByteSpan data);

  // Resets to an empty root.
  Status Reset();

  std::size_t node_count() const { return heap_.live_objects(); }
  std::size_t approximate_bytes() const { return heap_.approximate_bytes(); }
  std::size_t live_bindings() const;
  th::Heap& heap() { return heap_; }

  // Runs a garbage collection (pruned subtrees become unreachable; this reclaims them).
  std::uint64_t CollectGarbage() { return heap_.Collect(); }

 private:
  th::Object* AllocateNode();
  // Walks to the node at `parts`, charging one explore step per component, and
  // accumulating the cleared-stamp floor. Returns nullptr (not an error) if absent.
  th::Object* Walk(const std::vector<std::string>& parts,
                   VersionStamp* floor_out = nullptr) const;

  VersionStamp ValueStampOf(const th::Object* node) const;
  VersionStamp ClearedStampOf(const th::Object* node) const;
  void SetClearedStamp(th::Object* node, const VersionStamp& stamp);
  std::int64_t LiveOf(const th::Object* node) const;

  // Clears values older than `stamp` in the subtree at `node`, prunes dead children
  // (floor = the cleared floor above `node`, used to drop dominated tombstones), and
  // recomputes live counts. Returns the new live count of `node`.
  std::int64_t ClearSubtree(th::Object* node, const VersionStamp& stamp,
                            const VersionStamp& floor, bool* changed);

  const CostModel* cost_;
  th::TypeRegistry registry_;
  const th::TypeDesc* node_type_ = nullptr;
  mutable th::Heap heap_;
  th::Object* root_ = nullptr;
  std::uint64_t removals_since_gc_ = 0;

  // Field indices within "ns.node".
  std::size_t f_children_;
  std::size_t f_value_;
  std::size_t f_has_value_;
  std::size_t f_lamport_;
  std::size_t f_origin_;
  std::size_t f_cleared_lamport_;
  std::size_t f_cleared_origin_;
  std::size_t f_live_;
};

}  // namespace sdb::ns

#endif  // SMALLDB_SRC_NAMESERVER_NAME_TREE_H_
