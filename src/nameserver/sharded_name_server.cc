#include "src/nameserver/sharded_name_server.h"

#include <algorithm>

namespace sdb::ns {

// --- ShardTree ---

Status ShardedNameServer::ShardTree::ResetState() {
  lamport_watermark_ = 0;
  return tree_.Reset();
}

Result<Bytes> ShardedNameServer::ShardTree::SerializeState() {
  SDB_ASSIGN_OR_RETURN(Bytes tree_bytes, tree_.Serialize());
  ByteWriter out;
  out.PutU64(lamport_watermark_);
  out.PutBytes(AsSpan(tree_bytes));
  return std::move(out).Take();
}

Status ShardedNameServer::ShardTree::DeserializeState(ByteSpan data) {
  ByteReader in(data);
  SDB_ASSIGN_OR_RETURN(lamport_watermark_, in.ReadU64());
  SDB_ASSIGN_OR_RETURN(ByteSpan tree_bytes, in.ReadBytes(in.remaining()));
  return tree_.Deserialize(tree_bytes);
}

Status ShardedNameServer::ShardTree::ApplyUpdate(ByteSpan record) {
  SDB_ASSIGN_OR_RETURN(NameServerUpdate update, DecodeUpdate(record, cost_));
  SDB_ASSIGN_OR_RETURN(bool applied, ApplyUpdateToTree(tree_, update));
  (void)applied;  // superseded-by-newer-stamp is a successful no-op
  lamport_watermark_ = std::max(lamport_watermark_, update.lamport);
  return OkStatus();
}

// --- ShardedNameServer ---

ShardedNameServer::ShardedNameServer(ShardedNameServerOptions options)
    : options_(std::move(options)) {}

Result<std::unique_ptr<ShardedNameServer>> ShardedNameServer::Open(
    ShardedNameServerOptions options) {
  if (options.shards == 0) {
    return InvalidArgumentError("ShardedNameServer requires >= 1 shard");
  }
  std::unique_ptr<ShardedNameServer> server(new ShardedNameServer(std::move(options)));
  std::vector<Application*> apps;
  apps.reserve(server->options_.shards);
  for (std::size_t p = 0; p < server->options_.shards; ++p) {
    server->trees_.push_back(std::make_unique<ShardTree>(server->options_.cost));
    apps.push_back(server->trees_.back().get());
  }
  SDB_ASSIGN_OR_RETURN(server->db_,
                       ShardedDatabase::Open(std::move(apps), server->options_.db));
  std::uint64_t lamport = 0;
  for (const auto& shard : server->trees_) {
    lamport = std::max(lamport, shard->lamport_watermark());
  }
  server->lamport_.store(lamport, std::memory_order_relaxed);
  return server;
}

Result<std::size_t> ShardedNameServer::ShardForPath(std::string_view path) const {
  SDB_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  if (parts.empty()) {
    return std::size_t{0};  // the virtual root's home shard
  }
  // Routing on the first component keeps each top-level subtree whole within one
  // shard, so subtree operations (Remove's tombstones, List, Export of "a/...")
  // stay single-shard.
  return db_->ShardForKey(parts.front());
}

NameServerUpdate ShardedNameServer::MakeUpdate(UpdateKind kind, std::string_view path,
                                               std::string_view value) {
  NameServerUpdate update;
  update.kind = static_cast<std::uint8_t>(kind);
  update.path = std::string(path);
  update.value = std::string(value);
  update.lamport = lamport_.fetch_add(1, std::memory_order_relaxed) + 1;
  update.origin = options_.replica_id;
  update.sequence = sequence_.fetch_add(1, std::memory_order_relaxed) + 1;
  return update;
}

Result<std::string> ShardedNameServer::Lookup(std::string_view path) {
  SDB_ASSIGN_OR_RETURN(std::size_t p, ShardForPath(path));
  Result<std::string> value = NotFoundError("");
  SDB_RETURN_IF_ERROR(db_->Enquire(p, [this, p, path, &value] {
    value = trees_[p]->tree().Lookup(path);
    return OkStatus();
  }));
  return value;
}

Result<std::vector<std::string>> ShardedNameServer::List(std::string_view path) {
  SDB_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  if (!parts.empty()) {
    std::size_t p = db_->ShardForKey(parts.front());
    Result<std::vector<std::string>> labels = NotFoundError("");
    SDB_RETURN_IF_ERROR(db_->Enquire(p, [this, p, path, &labels] {
      labels = trees_[p]->tree().List(path);
      return OkStatus();
    }));
    return labels;
  }
  // The root spans every shard: merge the shard roots' child labels. Routing makes
  // the label sets disjoint (a label lives only on its home shard), so this is a
  // concatenation restored to sorted order, not a dedup.
  std::vector<std::string> merged;
  Status status = db_->EnquireAll([this, &merged]() -> Status {
    for (auto& shard : trees_) {
      SDB_ASSIGN_OR_RETURN(std::vector<std::string> labels, shard->tree().List(""));
      merged.insert(merged.end(), std::make_move_iterator(labels.begin()),
                    std::make_move_iterator(labels.end()));
    }
    return OkStatus();
  });
  SDB_RETURN_IF_ERROR(status);
  std::sort(merged.begin(), merged.end());
  return merged;
}

Status ShardedNameServer::Set(std::string_view path, std::string_view value) {
  SDB_ASSIGN_OR_RETURN(std::size_t p, ShardForPath(path));
  return db_->Update(p, [this, path, value]() -> Result<Bytes> {
    SDB_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
    if (parts.empty()) {
      return InvalidArgumentError("the root cannot be the target of an update");
    }
    return EncodeUpdate(MakeUpdate(UpdateKind::kSet, path, value), options_.cost);
  });
}

Status ShardedNameServer::Remove(std::string_view path) {
  SDB_ASSIGN_OR_RETURN(std::size_t p, ShardForPath(path));
  return db_->Update(p, [this, p, path]() -> Result<Bytes> {
    SDB_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
    if (parts.empty()) {
      return InvalidArgumentError("the root cannot be the target of an update");
    }
    if (!trees_[p]->tree().Exists(path)) {
      return FailedPreconditionError("no such name: " + std::string(path));
    }
    return EncodeUpdate(MakeUpdate(UpdateKind::kRemove, path, ""), options_.cost);
  });
}

Status ShardedNameServer::CompareAndSet(std::string_view path, std::string_view expected,
                                        std::string_view value) {
  SDB_ASSIGN_OR_RETURN(std::size_t p, ShardForPath(path));
  return db_->Update(p, [this, p, path, expected, value]() -> Result<Bytes> {
    SDB_ASSIGN_OR_RETURN(std::string current, trees_[p]->tree().Lookup(path));
    if (current != expected) {
      return FailedPreconditionError("value mismatch at " + std::string(path));
    }
    return EncodeUpdate(MakeUpdate(UpdateKind::kSet, path, value), options_.cost);
  });
}

Result<std::vector<std::pair<std::string, std::string>>> ShardedNameServer::Export(
    std::string_view path) {
  SDB_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  if (!parts.empty()) {
    std::size_t p = db_->ShardForKey(parts.front());
    Result<std::vector<std::pair<std::string, std::string>>> bindings = NotFoundError("");
    SDB_RETURN_IF_ERROR(db_->Enquire(p, [this, p, path, &bindings] {
      bindings = trees_[p]->tree().Export(path);
      return OkStatus();
    }));
    return bindings;
  }
  // Whole-database export: one consistent instant across every shard, merged back
  // into global name order. Each shard's stream is already sorted, so this is a
  // k-way merge over per-shard cursors.
  std::vector<std::vector<std::pair<std::string, std::string>>> streams(trees_.size());
  Status status = db_->EnquireAll([this, &streams]() -> Status {
    for (std::size_t p = 0; p < trees_.size(); ++p) {
      SDB_ASSIGN_OR_RETURN(streams[p], trees_[p]->tree().Export(""));
    }
    return OkStatus();
  });
  SDB_RETURN_IF_ERROR(status);

  std::size_t total = 0;
  std::vector<std::size_t> cursor(streams.size(), 0);
  for (const auto& stream : streams) {
    total += stream.size();
  }
  std::vector<std::pair<std::string, std::string>> merged;
  merged.reserve(total);
  while (merged.size() < total) {
    std::size_t best = streams.size();
    for (std::size_t p = 0; p < streams.size(); ++p) {
      if (cursor[p] >= streams[p].size()) {
        continue;
      }
      if (best == streams.size() ||
          streams[p][cursor[p]].first < streams[best][cursor[best]].first) {
        best = p;
      }
    }
    merged.push_back(std::move(streams[best][cursor[best]]));
    ++cursor[best];
  }
  return merged;
}

}  // namespace sdb::ns
